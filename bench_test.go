// Benchmarks regenerating the cost figures of EXPERIMENTS.md: one
// benchmark per experiment (E1..E8) and ablation (A1..A3), measuring the
// operation at that experiment's core, plus micro-benchmarks for the
// cryptographic substrate. Message/crypto *counts* (the other axis of
// Section 6) are produced by `go run ./cmd/benchtab`.
package securestore_test

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"securestore/internal/baseline/masking"
	"securestore/internal/baseline/pbftsm"
	"securestore/internal/bench"
	"securestore/internal/client"
	"securestore/internal/core"
	"securestore/internal/cryptoutil"
	"securestore/internal/fragment"
	"securestore/internal/gossip"
	"securestore/internal/metrics"
	"securestore/internal/server"
	"securestore/internal/simnet"
	"securestore/internal/transport"
	"securestore/internal/wire"
)

// benchEnv assembles a connected client against a fresh cluster.
type benchEnv struct {
	cluster *core.Cluster
	client  *client.Client
}

func newBenchEnv(b *testing.B, n, bb int, group core.GroupSpec) *benchEnv {
	b.Helper()
	cluster, err := core.NewCluster(core.ClusterConfig{
		N: n, B: bb, Seed: b.Name(), DisableAuth: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cluster.Close)
	cluster.RegisterGroup(group)
	cl, err := cluster.NewClient(core.ClientSpec{ID: "bench", Group: group.Name}, group)
	if err != nil {
		b.Fatal(err)
	}
	if err := cl.Connect(context.Background()); err != nil {
		b.Fatal(err)
	}
	return &benchEnv{cluster: cluster, client: cl}
}

// BenchmarkE1ContextQuorum measures one context write + read cycle
// (disconnect/connect), the ⌈(n+b+1)/2⌉-quorum operations of Figure 1.
func BenchmarkE1ContextQuorum(b *testing.B) {
	env := newBenchEnv(b, 7, 2, core.GroupSpec{Name: "g", Consistency: wire.MRC})
	ctx := context.Background()
	if _, err := env.client.Write(ctx, "x", []byte("v")); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := env.client.Disconnect(ctx); err != nil {
			b.Fatal(err)
		}
		if err := env.client.Connect(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2DataOpMessages measures single data operations at the b+1
// write-set / read-quorum sizes of Figure 2.
func BenchmarkE2DataOpMessages(b *testing.B) {
	for _, mode := range []struct {
		name  string
		group core.GroupSpec
	}{
		{"MRC", core.GroupSpec{Name: "g", Consistency: wire.MRC}},
		{"CC", core.GroupSpec{Name: "g", Consistency: wire.CC}},
		{"MultiWriterCC", core.GroupSpec{Name: "g", Consistency: wire.CC, MultiWriter: true}},
	} {
		b.Run(mode.name+"/Write", func(b *testing.B) {
			env := newBenchEnv(b, 7, 2, mode.group)
			ctx := context.Background()
			val := []byte("benchmark value")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := env.client.Write(ctx, "x", val); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(mode.name+"/Read", func(b *testing.B) {
			env := newBenchEnv(b, 7, 2, mode.group)
			ctx := context.Background()
			if _, err := env.client.Write(ctx, "x", []byte("benchmark value")); err != nil {
				b.Fatal(err)
			}
			env.cluster.Converge()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := env.client.Read(ctx, "x"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3CryptoCounts isolates the cryptographic substrate: signing
// and verifying a data write (the per-operation crypto of Section 6).
func BenchmarkE3CryptoCounts(b *testing.B) {
	key := cryptoutil.DeterministicKeyPair("writer", "bench")
	ring := cryptoutil.NewKeyring()
	ring.MustRegister(key.ID, key.Public)
	w := &wire.SignedWrite{Group: "g", Item: "x", Value: make([]byte, 1024)}

	b.Run("Sign", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w.Sign(key, nil)
		}
	})
	w.Sign(key, nil)
	b.Run("Verify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := w.Verify(ring, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE4GossipFreshness measures one anti-entropy round after a
// fresh write — the dissemination unit cost whose frequency E4 sweeps.
func BenchmarkE4GossipFreshness(b *testing.B) {
	env := newBenchEnv(b, 4, 1, core.GroupSpec{Name: "g", Consistency: wire.MRC})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if _, err := env.client.Write(ctx, "x", []byte(fmt.Sprintf("%06d", i))); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		gossip.Converge(env.cluster.Engines, 40)
	}
}

// BenchmarkE5LatencyComparison measures one write per system on an
// instant network — the protocol-logic floor under the E5 latency table.
func BenchmarkE5LatencyComparison(b *testing.B) {
	ctx := context.Background()

	b.Run("SecureStore", func(b *testing.B) {
		env := newBenchEnv(b, 4, 1, core.GroupSpec{Name: "g", Consistency: wire.MRC})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := env.client.Write(ctx, "x", []byte("v")); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("MaskingQuorum", func(b *testing.B) {
		menv := newMaskingBench(b, 5, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := menv.Write(ctx, "x", []byte("v")); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("PBFT", func(b *testing.B) {
		cl := newPBFTBench(b, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := cl.Put(ctx, "x", "v"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE6MultiWriter measures the 2b+1-server multi-writer read.
func BenchmarkE6MultiWriter(b *testing.B) {
	env := newBenchEnv(b, 7, 2, core.GroupSpec{Name: "g", Consistency: wire.CC, MultiWriter: true})
	ctx := context.Background()
	if _, err := env.client.Write(ctx, "x", []byte("v")); err != nil {
		b.Fatal(err)
	}
	env.cluster.Converge()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := env.client.Read(ctx, "x"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7FaultTolerance measures reads while b servers serve stale
// data — the degraded-but-correct path.
func BenchmarkE7FaultTolerance(b *testing.B) {
	env := newBenchEnv(b, 7, 2, core.GroupSpec{Name: "g", Consistency: wire.MRC})
	ctx := context.Background()
	if _, err := env.client.Write(ctx, "x", []byte("v1")); err != nil {
		b.Fatal(err)
	}
	env.cluster.Converge()
	if _, err := env.client.Write(ctx, "x", []byte("v2")); err != nil {
		b.Fatal(err)
	}
	env.cluster.Converge()
	env.cluster.InjectFaults(server.Stale, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := env.client.Read(ctx, "x"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8ConsistencySpectrum measures a write+read pair per
// consistency level on one cluster size.
func BenchmarkE8ConsistencySpectrum(b *testing.B) {
	for _, mode := range []struct {
		name  string
		group core.GroupSpec
	}{
		{"MRC", core.GroupSpec{Name: "g", Consistency: wire.MRC}},
		{"CC", core.GroupSpec{Name: "g", Consistency: wire.CC}},
		{"MultiWriterCC", core.GroupSpec{Name: "g", Consistency: wire.CC, MultiWriter: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			env := newBenchEnv(b, 7, 2, mode.group)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := env.client.Write(ctx, "x", []byte("v")); err != nil {
					b.Fatal(err)
				}
				if _, _, err := env.client.Read(ctx, "x"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkA1CausalGating measures server-side write acceptance with the
// causal-gating check on the hot path.
func BenchmarkA1CausalGating(b *testing.B) {
	env := newBenchEnv(b, 4, 1, core.GroupSpec{Name: "g", Consistency: wire.CC, MultiWriter: true})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.client.Write(ctx, "x", []byte("v")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA2WriteLog measures multi-writer log maintenance under
// sustained writes to one item.
func BenchmarkA2WriteLog(b *testing.B) {
	cluster, err := core.NewCluster(core.ClusterConfig{
		N: 4, B: 1, Seed: b.Name(), DisableAuth: true, LogDepth: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cluster.Close)
	group := core.GroupSpec{Name: "g", Consistency: wire.CC, MultiWriter: true}
	cluster.RegisterGroup(group)
	cl, err := cluster.NewClient(core.ClientSpec{ID: "w", Group: "g"}, group)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if err := cl.Connect(ctx); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Write(ctx, "x", []byte("v")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA3ContextReconstruct measures rebuilding a 16-item context
// from all servers (the crashed-session path of Section 5.1).
func BenchmarkA3ContextReconstruct(b *testing.B) {
	env := newBenchEnv(b, 7, 2, core.GroupSpec{Name: "g", Consistency: wire.CC})
	ctx := context.Background()
	items := make([]string, 16)
	for i := range items {
		items[i] = fmt.Sprintf("item%02d", i)
		if _, err := env.client.Write(ctx, items[i], []byte("v")); err != nil {
			b.Fatal(err)
		}
	}
	env.cluster.Converge()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := env.client.ReconstructContext(ctx, items); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkT1ConcurrentSessions measures end-to-end write throughput of
// concurrent sessions over real loopback TCP, serialized (one in-flight
// request per connection, the pre-multiplexing wire protocol) vs
// multiplexed. Run with -cpu to vary the degree of concurrency.
func BenchmarkT1ConcurrentSessions(b *testing.B) {
	wire.RegisterGob()
	for _, mode := range []struct {
		name string
		opts []transport.CallerOption
	}{
		{"Serialized", []transport.CallerOption{transport.Serialized()}},
		{"Multiplexed", nil},
	} {
		b.Run(mode.name, func(b *testing.B) {
			const n, bb = 4, 1
			ring := cryptoutil.NewKeyring()
			names := make([]string, 0, n)
			addrs := make(map[string]string, n)
			for i := 0; i < n; i++ {
				name := fmt.Sprintf("s%02d", i)
				srv := server.New(server.Config{ID: name, Ring: ring, Metrics: &metrics.Counters{}})
				srv.RegisterGroup("g", server.Policy{Consistency: wire.MRC})
				tcp := transport.NewTCPServer(srv)
				addr, err := tcp.Serve("127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(tcp.Close)
				names = append(names, name)
				addrs[name] = addr
			}
			key := cryptoutil.DeterministicKeyPair("bench", "t1")
			ring.MustRegister(key.ID, key.Public)
			m := &metrics.Counters{}
			caller := transport.NewTCPCaller(key.ID, addrs, m, mode.opts...)
			b.Cleanup(caller.Close)
			cl, err := client.New(client.Config{
				ID: key.ID, Key: key, Ring: ring, Servers: names, B: bb,
				Group: "g", Consistency: wire.MRC, Caller: caller, Metrics: m,
				CallTimeout: 10 * time.Second,
			})
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			if err := cl.Connect(ctx); err != nil {
				b.Fatal(err)
			}
			var seq atomic.Int64
			val := []byte("benchmark value")
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					item := fmt.Sprintf("x%d", seq.Add(1)%64)
					if _, err := cl.Write(ctx, item, val); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkVerifyCache isolates the verified-signature cache: a cache hit
// replaces an Ed25519 verification (~tens of µs) with a map lookup.
func BenchmarkVerifyCache(b *testing.B) {
	key := cryptoutil.DeterministicKeyPair("signer", "bench")
	data := make([]byte, 1024)
	sig := key.Sign(data, nil)

	b.Run("Uncached", func(b *testing.B) {
		ring := cryptoutil.NewKeyring()
		ring.MustRegister(key.ID, key.Public)
		for i := 0; i < b.N; i++ {
			if err := ring.Verify(key.ID, data, sig, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("CachedHit", func(b *testing.B) {
		ring := cryptoutil.NewKeyring()
		ring.MustRegister(key.ID, key.Public)
		ring.EnableVerifyCache(16)
		if err := ring.Verify(key.ID, data, sig, nil); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ring.Verify(key.ID, data, sig, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Micro-benchmarks for the substrates.

func BenchmarkSealOpen(b *testing.B) {
	key := cryptoutil.DeriveDataKey("pass", "bench")
	value := make([]byte, 1024)
	aad := []byte("g/x")
	b.Run("Seal1KiB", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := key.Seal(value, aad, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	sealed, err := key.Seal(value, aad, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Open1KiB", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := key.Open(sealed, aad, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFragmentIDA(b *testing.B) {
	data := make([]byte, 4096)
	b.Run("Split3of5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fragment.Split(data, 3, 5); err != nil {
				b.Fatal(err)
			}
		}
	})
	frags, err := fragment.Split(data, 3, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Reconstruct3of5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fragment.Reconstruct(frags[:3]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Table regeneration smoke-benchmark: runs the full quick-mode experiment
// suite once per iteration so `go test -bench Tables` regenerates every
// table under the benchmark harness.
func BenchmarkTablesQuick(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, exp := range bench.All() {
			if _, err := exp.Run(bench.Options{Quick: true, Seed: "bench"}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// newMaskingBench assembles a masking-quorum deployment for benchmarks.
func newMaskingBench(b *testing.B, n, bb int) *masking.Client {
	b.Helper()
	ring := cryptoutil.NewKeyring()
	bus := transport.NewBus(simnet.New(simnet.Instant, 1))
	m := &metrics.Counters{}
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("m%02d", i)
		bus.Register(name, masking.NewServer(name, ring, m))
		names = append(names, name)
	}
	key := cryptoutil.DeterministicKeyPair("mb", "bench")
	ring.MustRegister(key.ID, key.Public)
	cl, err := masking.NewClient(masking.Config{
		ID: key.ID, Key: key, Ring: ring, Servers: names, B: bb,
		Caller: bus.Caller(key.ID, m), Metrics: m, CallTimeout: 2 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	return cl
}

// newPBFTBench assembles a PBFT baseline deployment for benchmarks.
func newPBFTBench(b *testing.B, f int) *pbftsm.Client {
	b.Helper()
	bus := transport.NewBus(nil)
	m := &metrics.Counters{}
	cluster, err := pbftsm.NewCluster(bus, f, "bench", m)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cluster.Close)
	return cluster.NewClusterClient(bus, "bclient", "bench", m)
}
