#!/bin/sh
# bench_trajectory.sh — concatenate every per-PR benchmark recording
# (BENCH_PR*.json at the repo root) into one trajectory document.
#
# Usage: scripts/bench_trajectory.sh [output]
#   output defaults to BENCH_TRAJECTORY.json in the repo root.
#
# CI runs this on every push so the combined performance history is always
# available as a build artifact without being committed (the per-PR files
# stay the source of truth).
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
out=${1:-"$root/BENCH_TRAJECTORY.json"}

cd "$root"
go run ./cmd/benchcat -o "$out" BENCH_PR*.json
echo "wrote $out"
