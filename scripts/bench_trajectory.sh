#!/bin/sh
# bench_trajectory.sh — concatenate every per-PR benchmark recording
# (BENCH_PR*.json at the repo root) into one trajectory document.
#
# Usage: scripts/bench_trajectory.sh [output]
#   output defaults to BENCH_TRAJECTORY.json in the repo root.
#
# CI runs this on every push so the combined performance history is always
# available as a build artifact without being committed (the per-PR files
# stay the source of truth). Missing recordings are fine (a fresh clone
# has none) and a corrupt or partial one is skipped with a warning rather
# than failing the build: -lenient. bench_record.sh then folds the same
# files into the normalized append-only records document.
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
out=${1:-"$root/BENCH_TRAJECTORY.json"}

cd "$root"
set -- BENCH_PR*.json
if [ ! -e "$1" ]; then
    echo "bench_trajectory: no BENCH_PR*.json recordings, nothing to do" >&2
    exit 0
fi
go run ./cmd/benchcat -lenient -o "$out" "$@"
echo "wrote $out"

"$root/scripts/bench_record.sh"
