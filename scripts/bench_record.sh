#!/bin/sh
# bench_record.sh — fold every per-PR benchmark recording (BENCH_PR*.json
# at the repo root) into the normalized, append-only performance records
# document dev/bench/records.json: one flat (pr, experiment, metric,
# value) record per measured cell, stamped with the current commit and
# date the first time each record appears. Re-running never rewrites
# history — records already present keep their original stamps — so the
# document is a continuous trajectory across PRs.
#
# Usage: scripts/bench_record.sh [output]
#   output defaults to dev/bench/records.json in the repo root.
#
# The regression gate reads the same document:
#   go run ./cmd/benchcat -check -tolerance 10% -lenient \
#       -merge dev/bench/records.json BENCH_PR*.json
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
out=${1:-"$root/dev/bench/records.json"}

cd "$root"
set -- BENCH_PR*.json
if [ ! -e "$1" ]; then
    echo "bench_record: no BENCH_PR*.json recordings, nothing to do" >&2
    exit 0
fi

commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
date=$(git show -s --format=%cs HEAD 2>/dev/null || date +%Y-%m-%d)

mkdir -p "$(dirname -- "$out")"
go run ./cmd/benchcat -records -lenient \
    -merge "$out" -commit "$commit" -date "$date" -o "$out" "$@"
echo "wrote $out"
