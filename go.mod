module securestore

go 1.22
