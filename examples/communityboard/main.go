// Community board: the paper's second application class (Section 2) — a
// single source (a school) disseminates information many families read.
//
// Integrity is what matters here: readers must know bulletins really come
// from the school and see increasingly recent editions (MRC), even while
// a compromised replica rewrites history. Reader keys are managed with
// the LKH key-distribution scheme so bulletins can also be confidential
// to enrolled families, and a family that un-enrolls loses access to
// future editions.
//
//	go run ./examples/communityboard
package main

import (
	"context"
	"fmt"
	"log"

	"securestore/internal/core"
	"securestore/internal/cryptoutil"
	"securestore/internal/keydist"
	"securestore/internal/server"
	"securestore/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	cluster, err := core.NewCluster(core.ClusterConfig{N: 7, B: 2, Seed: "board"})
	if err != nil {
		return err
	}
	defer cluster.Close()

	group := core.GroupSpec{Name: "board", Consistency: wire.MRC}
	cluster.RegisterGroup(group)

	// The school manages the reader group's keys with a logical key
	// hierarchy: O(log n) rekey messages per membership change, and
	// servers never see any of these keys.
	lkh, err := keydist.NewManager(3, nil)
	if err != nil {
		return err
	}
	families := []string{"garcia", "chen", "okafor"}
	members := make(map[string]*keydist.Member, len(families))
	for _, f := range families {
		pers, err := cryptoutil.NewDataKey()
		if err != nil {
			return err
		}
		members[f] = keydist.NewMember(f, pers, nil)
		welcome, broadcast, err := lkh.Join(f, pers)
		if err != nil {
			return err
		}
		members[f].Apply(welcome)
		for _, other := range families {
			if other != f {
				if m, ok := members[other]; ok {
					m.Apply(broadcast)
				}
			}
		}
	}
	groupKey := lkh.GroupKey()
	fmt.Printf("enrolled %d families; group key established via LKH\n", len(families))

	// The school writes bulletins sealed under the group key.
	schoolKey := groupKey
	school, err := cluster.NewClient(core.ClientSpec{
		ID: "school", Group: "board", DataKey: &schoolKey,
	}, group)
	if err != nil {
		return err
	}
	if err := school.Connect(ctx); err != nil {
		return err
	}
	if _, err := school.Write(ctx, "bulletin", []byte("Edition 1: bake sale friday")); err != nil {
		return err
	}
	cluster.Converge()

	// Each family reads with its own client and the LKH-derived key.
	for _, f := range families {
		gk, err := members[f].GroupKey()
		if err != nil {
			return err
		}
		reader, err := cluster.NewClient(core.ClientSpec{
			ID: f, Group: "board", DataKey: &gk,
		}, group)
		if err != nil {
			return err
		}
		if err := reader.Connect(ctx); err != nil {
			return err
		}
		value, _, err := reader.Read(ctx, "bulletin")
		if err != nil {
			return err
		}
		fmt.Printf("  %s family reads: %s\n", f, value)
	}

	// Two replicas turn malicious (b=2): one serves stale editions, one
	// corrupts values. Readers still get the genuine latest edition.
	if _, err := school.Write(ctx, "bulletin", []byte("Edition 2: bake sale moved to saturday")); err != nil {
		return err
	}
	cluster.Converge()
	cluster.Servers[0].SetFault(server.Stale)
	cluster.Servers[1].SetFault(server.CorruptValue)
	fmt.Println("injected: one stale and one corrupting replica")

	gk, err := members["garcia"].GroupKey()
	if err != nil {
		return err
	}
	garcia, err := cluster.NewClient(core.ClientSpec{ID: "garcia-2", Group: "board", DataKey: &gk}, group)
	if err != nil {
		return err
	}
	if err := garcia.Connect(ctx); err != nil {
		return err
	}
	// Read twice: MRC guarantees the second read is never older.
	v1, s1, err := garcia.Read(ctx, "bulletin")
	if err != nil {
		return err
	}
	v2, s2, err := garcia.Read(ctx, "bulletin")
	if err != nil {
		return err
	}
	if s2.Less(s1) {
		return fmt.Errorf("monotonic reads violated: %s then %s", s1, s2)
	}
	fmt.Printf("  garcia reads: %q then %q (never goes backwards)\n", v1, v2)

	// The chen family un-enrolls: LKH rekeys, and their old key no longer
	// opens editions written after the change.
	broadcast, err := lkh.Leave("chen")
	if err != nil {
		return err
	}
	for _, f := range []string{"garcia", "okafor"} {
		members[f].Apply(broadcast)
	}
	// The school rotates its sealing key to the new group key (the paper's
	// owner key-change procedure) and publishes the next edition.
	newKey := lkh.GroupKey()
	school.SetDataKey(&newKey)
	cluster.HealAll()
	if _, err := school.Write(ctx, "bulletin", []byte("Edition 3: enrolled families only")); err != nil {
		return err
	}
	cluster.Converge()

	oldChenKey, err := members["chen"].GroupKey() // stale view from before leaving
	if err != nil {
		return err
	}
	chen, err := cluster.NewClient(core.ClientSpec{ID: "chen-2", Group: "board", DataKey: &oldChenKey}, group)
	if err != nil {
		return err
	}
	if err := chen.Connect(ctx); err != nil {
		return err
	}
	if _, _, err := chen.Read(ctx, "bulletin"); err == nil {
		return fmt.Errorf("departed family still reads new editions")
	}
	fmt.Println("  chen family (departed) can no longer decrypt new editions")

	gk2, err := members["okafor"].GroupKey()
	if err != nil {
		return err
	}
	okafor, err := cluster.NewClient(core.ClientSpec{ID: "okafor-2", Group: "board", DataKey: &gk2}, group)
	if err != nil {
		return err
	}
	if err := okafor.Connect(ctx); err != nil {
		return err
	}
	value, _, err := okafor.Read(ctx, "bulletin")
	if err != nil {
		return err
	}
	fmt.Printf("  okafor family (remaining) reads: %s\n", value)
	return nil
}
