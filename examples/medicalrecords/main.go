// Medical records: the paper's first application class (Section 2) —
// non-shared, confidential data that must stay available in emergencies.
//
// A resident of the Aware Home stores family medical records, encrypted
// client-side so servers only ever hold ciphertext. Byzantine servers are
// then injected — one serving corrupted data, one serving stale data —
// and the records remain both readable and private.
//
//	go run ./examples/medicalrecords
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"securestore/internal/core"
	"securestore/internal/cryptoutil"
	"securestore/internal/server"
	"securestore/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	cluster, err := core.NewCluster(core.ClusterConfig{N: 4, B: 1, Seed: "medical"})
	if err != nil {
		return err
	}
	defer cluster.Close()

	// Medical records form one related group under MRC: the resident is
	// the only writer, so monotonic reads give them the latest record.
	group := core.GroupSpec{Name: "medical", Consistency: wire.MRC}
	cluster.RegisterGroup(group)

	// The data key never leaves the client side; servers cannot decrypt.
	dataKey := cryptoutil.DeriveDataKey("resident-passphrase", "medical")
	resident, err := cluster.NewClient(core.ClientSpec{
		ID:      "resident",
		Group:   "medical",
		DataKey: &dataKey,
		// Random timestamp increments hide how often records change.
		ObfuscateTimestamps: true,
	}, group)
	if err != nil {
		return err
	}
	if err := resident.Connect(ctx); err != nil {
		return err
	}

	records := map[string]string{
		"grandma/conditions":  "hypertension; pacemaker fitted 2019",
		"grandma/medications": "lisinopril 10mg daily",
		"grandma/allergies":   "penicillin",
	}
	for item, record := range records {
		if _, err := resident.Write(ctx, item, []byte(record)); err != nil {
			return fmt.Errorf("store %s: %w", item, err)
		}
	}
	fmt.Printf("stored %d encrypted records\n", len(records))
	cluster.Converge() // dissemination spreads the ciphertext to all replicas

	// Confidentiality check: no replica holds plaintext.
	for _, srv := range cluster.Servers {
		if w := srv.Head("medical", "grandma/conditions"); w != nil {
			if strings.Contains(string(w.Value), "pacemaker") {
				return fmt.Errorf("server %s holds plaintext!", srv.ID())
			}
		}
	}
	fmt.Println("verified: replicas hold only ciphertext")

	// The emergency: two kinds of Byzantine behaviour appear at once —
	// but only b=1 server total, so pick the nastiest.
	cluster.InjectFaults(server.CorruptValue, 1)
	fmt.Println("injected: one replica now serves corrupted data")

	// The emergency responder path: the resident's client (or a medical
	// facility holding a copy of the key) must still read everything.
	for item := range records {
		value, _, err := resident.Read(ctx, item)
		if err != nil {
			return fmt.Errorf("emergency read %s: %w", item, err)
		}
		fmt.Printf("  %-22s -> %s\n", item, value)
	}

	// And a stale replica instead.
	cluster.HealAll()
	if _, err := resident.Write(ctx, "grandma/medications", []byte("lisinopril 20mg daily")); err != nil {
		return err
	}
	cluster.Converge()
	cluster.InjectFaults(server.Stale, 1)
	value, _, err := resident.Read(ctx, "grandma/medications")
	if err != nil {
		return err
	}
	if !strings.Contains(string(value), "20mg") {
		return fmt.Errorf("stale replica served an outdated dose: %s", value)
	}
	fmt.Printf("after dose change, despite a stale replica: %s\n", value)
	return nil
}
