// Fragvault: confidentiality without encryption keys. Values are split
// with Rabin's information dispersal into one fragment per replica; any
// k = b+1 fragments reconstruct, fewer reveal nothing useful. The paper's
// related work (Section 3, refs [14, 15, 18]) positions this
// fragmentation–scattering as a technique the secure store "could benefit
// from" — here it runs on top of the same replicas, signed-write
// machinery and authorization as everything else.
//
//	go run ./examples/fragvault
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"securestore/internal/core"
	"securestore/internal/server"
	"securestore/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	// n=5, b=1: fragments reconstruct from any k=2, and a single
	// compromised server (holding 1 fragment) learns nothing.
	cluster, err := core.NewCluster(core.ClusterConfig{N: 5, B: 1, Seed: "vault"})
	if err != nil {
		return err
	}
	defer cluster.Close()

	group := core.GroupSpec{Name: "vault", Consistency: wire.MRC}
	cluster.RegisterGroup(group)

	vault, err := cluster.NewFragStore(core.ClientSpec{ID: "owner", Group: "vault"}, group, 0)
	if err != nil {
		return err
	}

	will := []byte("LAST WILL: the house goes to the cat")
	if _, err := vault.Write(ctx, "will", will); err != nil {
		return err
	}
	fmt.Printf("dispersed %d bytes into 5 fragments (any %d reconstruct)\n", len(will), vault.K())

	// No single replica holds anything recognisable.
	for _, srv := range cluster.Servers {
		if w := srv.Head("vault", "will"); w != nil {
			if bytes.Contains(w.Value, []byte("LAST WILL")) || bytes.Contains(w.Value, []byte("cat")) {
				return fmt.Errorf("server %s holds recognisable plaintext", srv.ID())
			}
		}
	}
	fmt.Println("verified: no replica holds a recognisable piece of the document")

	// One replica crashes, another starts corrupting — the document is
	// still reconstructible from the remaining honest fragments.
	cluster.Servers[0].SetFault(server.Crash)
	cluster.Servers[1].SetFault(server.CorruptValue)
	fmt.Println("injected: one crashed and one corrupting replica")

	got, _, err := vault.Read(ctx, "will")
	if err != nil {
		return fmt.Errorf("read under faults: %w", err)
	}
	if !bytes.Equal(got, will) {
		return fmt.Errorf("reconstructed document differs")
	}
	fmt.Printf("reconstructed intact: %q\n", got)

	// Updates re-disperse under a fresh timestamp.
	cluster.HealAll()
	update := []byte("LAST WILL (v2): the house goes to the dog after all")
	if _, err := vault.Write(ctx, "will", update); err != nil {
		return err
	}
	got, _, err = vault.Read(ctx, "will")
	if err != nil {
		return err
	}
	fmt.Printf("after update: %q\n", got)
	return nil
}
