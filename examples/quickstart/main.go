// Quickstart: bring up a 4-replica secure store tolerating one Byzantine
// server, run a session, crash a replica mid-flight, and keep going.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"securestore/internal/core"
	"securestore/internal/server"
	"securestore/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	// A secure store is n replicated servers, at most b of which may be
	// compromised. n >= 3b+1 keeps every quorum available.
	cluster, err := core.NewCluster(core.ClusterConfig{N: 4, B: 1, Seed: "quickstart"})
	if err != nil {
		return err
	}
	defer cluster.Close()

	// Data items live in related groups; consistency is fixed per group at
	// creation (here: Monotonic Read Consistency).
	group := core.GroupSpec{Name: "notes", Consistency: wire.MRC}
	cluster.RegisterGroup(group)

	// Mint a client. Its key is registered in the shared key ring and the
	// authorization service issues it a capability token for the group.
	alice, err := cluster.NewClient(core.ClientSpec{ID: "alice", Group: "notes"}, group)
	if err != nil {
		return err
	}

	// A session starts by acquiring the client's stored context from a
	// quorum of ceil((n+b+1)/2) servers.
	if err := alice.Connect(ctx); err != nil {
		return err
	}
	fmt.Println("connected; context:", alice.Context())

	// Writes reach b+1 servers; the signed write makes every copy
	// self-verifying.
	if _, err := alice.Write(ctx, "todo", []byte("water the plants")); err != nil {
		return err
	}
	fmt.Println("wrote todo")

	// Reads contact b+1 servers for timestamps, then fetch the freshest
	// copy and verify its signature.
	value, stamp, err := alice.Read(ctx, "todo")
	if err != nil {
		return err
	}
	fmt.Printf("read todo @ %s: %s\n", stamp, value)

	// Crash one server — within the fault bound, nothing breaks.
	cluster.InjectFaults(server.Crash, 1)
	fmt.Println("crashed one replica")

	if _, err := alice.Write(ctx, "todo", []byte("walk the dog")); err != nil {
		return err
	}
	value, stamp, err = alice.Read(ctx, "todo")
	if err != nil {
		return err
	}
	fmt.Printf("read todo @ %s: %s (with a crashed replica)\n", stamp, value)

	// Ending the session stores the signed context back at a quorum, so
	// the next session resumes exactly where this one left off.
	if err := alice.Disconnect(ctx); err != nil {
		return err
	}
	fmt.Println("disconnected; context stored in the secure store itself")
	return nil
}
