// Collaborative planning: the paper's third application class (Section 2)
// — shared data read AND written by multiple users, here a group of
// citizens drafting a community plan over time.
//
// This is the multi-writer protocol of Section 5.3: timestamps become
// (time, writer, value-digest) tuples, reads contact 2b+1 servers and
// accept only values b+1 of them report identically, and servers gate
// writes on their causal predecessors. The example shows causal
// consistency across items, then mounts two attacks from a *malicious
// client* — equivocation and a spurious context — and shows both blunted.
//
//	go run ./examples/collabplan
package main

import (
	"context"
	"fmt"
	"log"

	"securestore/internal/accessctl"
	"securestore/internal/core"
	"securestore/internal/cryptoutil"
	"securestore/internal/timestamp"
	"securestore/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	cluster, err := core.NewCluster(core.ClusterConfig{N: 4, B: 1, Seed: "collab"})
	if err != nil {
		return err
	}
	defer cluster.Close()

	group := core.GroupSpec{Name: "plan", Consistency: wire.CC, MultiWriter: true}
	cluster.RegisterGroup(group)

	ana, err := cluster.NewClient(core.ClientSpec{ID: "ana", Group: "plan"}, group)
	if err != nil {
		return err
	}
	raj, err := cluster.NewClient(core.ClientSpec{ID: "raj", Group: "plan"}, group)
	if err != nil {
		return err
	}
	for _, c := range []interface{ Connect(context.Context) error }{ana, raj} {
		if err := c.Connect(ctx); err != nil {
			return err
		}
	}

	// Ana drafts the problem statement; Raj reads it and writes a budget
	// that causally depends on it.
	if _, err := ana.Write(ctx, "problem", []byte("playground equipment is unsafe")); err != nil {
		return err
	}
	cluster.Converge()
	problem, _, err := raj.Read(ctx, "problem")
	if err != nil {
		return err
	}
	fmt.Printf("raj read problem: %s\n", problem)
	if _, err := raj.Write(ctx, "budget", []byte("$12,000 for replacement")); err != nil {
		return err
	}
	cluster.Converge()

	// Causal consistency: anyone who sees Raj's budget will see a problem
	// statement at least as recent as the one Raj based it on.
	mia, err := cluster.NewClient(core.ClientSpec{ID: "mia", Group: "plan"}, group)
	if err != nil {
		return err
	}
	if err := mia.Connect(ctx); err != nil {
		return err
	}
	budget, _, err := mia.Read(ctx, "budget")
	if err != nil {
		return err
	}
	problem2, _, err := mia.Read(ctx, "problem")
	if err != nil {
		return err
	}
	fmt.Printf("mia read budget %q and, causally consistent, problem %q\n", budget, problem2)

	// Attack 1 — equivocation: a malicious client signs two different
	// values under the SAME timestamp. The digest inside the timestamp
	// makes the two writes distinguishable, so only one (time, writer,
	// digest) triple can ever gather b+1 matching reports per stamp, and
	// the forged pair exposes the writer.
	evilKey := cryptoutil.DeterministicKeyPair("evil", "collab")
	if err := cluster.Ring.Register("evil", evilKey.Public); err != nil {
		return err
	}
	tok := cluster.Authority.Issue("evil", "plan", accessctl.ReadWrite, nil)
	caller := cluster.Bus.Caller("evil", nil)

	mkWrite := func(value []byte, sameTime uint64, lieDigest bool) *wire.SignedWrite {
		st := timestamp.Stamp{Time: sameTime, Writer: "evil", Digest: cryptoutil.Digest(value)}
		if lieDigest {
			st.Digest = cryptoutil.Digest([]byte("some other value"))
		}
		w := &wire.SignedWrite{
			Group: "plan", Item: "minutes", Stamp: st,
			WriterCtx: map[string]timestamp.Stamp{"minutes": st},
			Value:     value,
		}
		w.Sign(evilKey, nil)
		return w
	}
	// Two values, one timestamp: each server keeps what it first accepts,
	// but the digests differ, so readers can never confuse them.
	wA := mkWrite([]byte("minutes say: approve"), 77, false)
	wB := mkWrite([]byte("minutes say: reject"), 77, false)
	for i, srv := range cluster.ServerNames {
		w := wA
		if i%2 == 1 {
			w = wB
		}
		_, _ = caller.Call(ctx, srv, wire.WriteReq{Write: w, Token: tok})
	}
	if _, _, err := mia.Read(ctx, "minutes"); err != nil {
		fmt.Printf("equivocation detected and rejected: %v\n", err)
	} else {
		// If one variant reached b+1 servers it may be accepted — but only
		// one variant ever can be, which is exactly the guarantee.
		fmt.Println("one equivocation variant reached b+1 servers; the other can never be accepted")
	}

	// Attack 2 — digest mismatch: reusing a timestamp whose digest does
	// not match the value is rejected by every non-faulty server outright.
	bad := mkWrite([]byte("forged minutes"), 78, true)
	accepted := 0
	for _, srv := range cluster.ServerNames {
		if _, err := caller.Call(ctx, srv, wire.WriteReq{Write: bad, Token: tok}); err == nil {
			accepted++
		}
	}
	fmt.Printf("digest-mismatch write accepted by %d/%d servers (signature binds value to stamp)\n",
		accepted, len(cluster.ServerNames))
	if accepted != 0 {
		return fmt.Errorf("servers accepted a digest-mismatched write")
	}

	// Attack 3 — spurious context: a write claiming a causal dependency on
	// a timestamp that corresponds to no real write. Causal gating keeps
	// honest servers from ever reporting it, so readers are unaffected
	// (the paper's Section 5.3 DoS countermeasure).
	ghost := []byte("based on a write that never happened")
	spurious := &wire.SignedWrite{
		Group: "plan", Item: "problem",
		Stamp: timestamp.Stamp{Time: 999, Writer: "evil", Digest: cryptoutil.Digest(ghost)},
		WriterCtx: map[string]timestamp.Stamp{
			"problem": {Time: 999, Writer: "evil", Digest: cryptoutil.Digest(ghost)},
			"budget":  {Time: 888_888, Writer: "evil"},
		},
		Value: ghost,
	}
	spurious.Sign(evilKey, nil)
	for _, srv := range cluster.ServerNames {
		_, _ = caller.Call(ctx, srv, wire.WriteReq{Write: spurious, Token: tok})
	}
	got, _, err := mia.Read(ctx, "problem")
	if err != nil {
		return fmt.Errorf("honest reader harmed by spurious-context write: %w", err)
	}
	fmt.Printf("after spurious-context attack, mia still reads problem: %s\n", got)
	if mia.Context().Get("budget").Time >= 888_888 {
		return fmt.Errorf("mia's context was poisoned")
	}
	fmt.Println("causal gating held: the poisoned write was never reported")
	return nil
}
