package securestore_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestExamplesRunCleanly builds and executes every example program as a
// real subprocess, asserting each exits zero. The examples are the
// repository's living documentation; this keeps them honest.
func TestExamplesRunCleanly(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping example subprocesses in -short mode")
	}
	examples, err := filepath.Glob("examples/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(examples) < 5 {
		t.Fatalf("found %d examples, want >= 5", len(examples))
	}
	binDir := t.TempDir()
	for _, dir := range examples {
		dir := dir
		name := filepath.Base(dir)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(binDir, name)
			build := exec.Command("go", "build", "-o", bin, "./"+dir)
			build.Env = os.Environ()
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build: %v\n%s", err, out)
			}

			run := exec.Command(bin)
			done := make(chan error, 1)
			var output []byte
			go func() {
				out, err := run.CombinedOutput()
				output = out
				done <- err
			}()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("run: %v\n%s", err, output)
				}
			case <-time.After(2 * time.Minute):
				_ = run.Process.Kill()
				t.Fatalf("example %s timed out", name)
			}
			if len(output) == 0 {
				t.Fatalf("example %s produced no output", name)
			}
		})
	}
}
