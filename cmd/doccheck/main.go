// Command doccheck is the repo's documentation gate, run by the CI docs
// job (and `make docs`). It enforces two properties that rot silently:
//
//  1. Markdown link integrity: every relative link or image target in the
//     repo's *.md files must exist on disk (anchors and external URLs are
//     not checked — no network in CI).
//  2. Doc-comment coverage: every exported identifier in the packages
//     listed in docPackages (the observability layer, whose godoc is the
//     operator-facing API reference) must carry a doc comment.
//  3. Benchmark artifact integrity: every BENCH_PR<k>.json filename
//     mentioned in markdown must exist at the repo root — the docs
//     navigate the performance trajectory by these files, and a renamed
//     or deleted recording would break that silently.
//  4. Metric name integrity: every securestore_* metric name mentioned
//     in markdown must appear in the Go source under internal/ — a
//     renamed counter must not leave OPERATIONS.md pointing at a metric
//     that no longer exists.
//
// Usage:
//
//	doccheck [-root DIR]
//
// Exits non-zero listing every violation; prints "doccheck ok" otherwise.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"net/url"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// docPackages are the directories whose exported identifiers must all be
// documented. The observability packages are held to this bar because
// OPERATIONS.md points operators at their godoc.
var docPackages = []string{"internal/trace", "internal/metrics"}

func main() {
	root := flag.String("root", ".", "repository root to check")
	flag.Parse()

	var problems []string
	mdProblems, err := checkMarkdownLinks(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(2)
	}
	problems = append(problems, mdProblems...)

	refProblems, err := checkDocReferences(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(2)
	}
	problems = append(problems, refProblems...)

	for _, pkg := range docPackages {
		pkgProblems, err := checkDocComments(filepath.Join(*root, pkg))
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		problems = append(problems, pkgProblems...)
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Printf("doccheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("doccheck ok")
}

// mdLink matches inline markdown links and images: [text](target) and
// ![alt](target). Reference-style definitions ([id]: target) are rare in
// this repo and skipped.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// checkMarkdownLinks verifies that every relative link target in the
// repo's markdown files points at an existing file or directory.
func checkMarkdownLinks(root string) ([]string, error) {
	var problems []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Skip VCS internals and build/data output directories.
			switch d.Name() {
			case ".git", "node_modules":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for lineNo, line := range strings.Split(string(data), "\n") {
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if skipLinkTarget(target) {
					continue
				}
				// Strip any #anchor; an empty remainder means a
				// same-file anchor, already skipped above.
				if i := strings.IndexByte(target, '#'); i >= 0 {
					target = target[:i]
				}
				resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
				if _, err := os.Stat(resolved); err != nil {
					problems = append(problems,
						fmt.Sprintf("%s:%d: broken relative link %q", path, lineNo+1, m[1]))
				}
			}
		}
		return nil
	})
	return problems, err
}

// benchFileRef matches mentions of per-PR benchmark recordings; metricRef
// matches securestore_* metric names (the underscore after the prefix
// keeps the bare package name out of scope).
var (
	benchFileRef = regexp.MustCompile(`BENCH_PR\d+\.json`)
	metricRef    = regexp.MustCompile(`securestore_[a-z0-9_]+`)
)

// checkDocReferences verifies the benchmark-artifact and metric-name
// mentions in the repo's markdown: every BENCH_PR<k>.json named in a doc
// must exist at the repo root, and every securestore_* metric name must
// appear in the Go source under internal/.
func checkDocReferences(root string) ([]string, error) {
	goSource, err := collectGoSource(filepath.Join(root, "internal"))
	if err != nil {
		return nil, err
	}
	var problems []string
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "node_modules":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for lineNo, line := range strings.Split(string(data), "\n") {
			for _, name := range benchFileRef.FindAllString(line, -1) {
				if _, err := os.Stat(filepath.Join(root, name)); err != nil {
					problems = append(problems,
						fmt.Sprintf("%s:%d: missing benchmark recording %q", path, lineNo+1, name))
				}
			}
			for _, name := range metricRef.FindAllString(line, -1) {
				if !strings.Contains(goSource, name) {
					problems = append(problems,
						fmt.Sprintf("%s:%d: metric %q not found in internal/ Go source", path, lineNo+1, name))
				}
			}
		}
		return nil
	})
	return problems, err
}

// collectGoSource concatenates every non-test .go file under dir, the
// haystack the metric-name check greps.
func collectGoSource(dir string) (string, error) {
	var b strings.Builder
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		b.Write(data)
		b.WriteByte('\n')
		return nil
	})
	return b.String(), err
}

// skipLinkTarget reports whether a link target is outside this checker's
// scope: absolute URLs, mailto, and in-page anchors.
func skipLinkTarget(target string) bool {
	if target == "" || strings.HasPrefix(target, "#") {
		return true
	}
	if u, err := url.Parse(target); err == nil && u.Scheme != "" {
		return true // http:, https:, mailto:, ...
	}
	return false
}

// checkDocComments parses one package directory (tests excluded) and
// reports every exported top-level identifier lacking a doc comment.
// Fields and methods of documented types are not required to be
// individually documented — the type's comment may cover them — but
// exported methods with no comment at all are flagged.
func checkDocComments(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}

	var problems []string
	flag := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		problems = append(problems,
			fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}

	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || d.Doc != nil {
						continue
					}
					kind := "function"
					name := d.Name.Name
					if d.Recv != nil {
						kind = "method"
						name = recvName(d.Recv) + "." + name
					}
					flag(d.Pos(), kind, name)
				case *ast.GenDecl:
					// A doc comment on the grouped declaration covers all
					// its specs (the common `var ( ... )` idiom).
					groupDoc := d.Doc != nil
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
								flag(s.Pos(), "type", s.Name.Name)
							}
						case *ast.ValueSpec:
							if groupDoc || s.Doc != nil || s.Comment != nil {
								continue
							}
							for _, n := range s.Names {
								if n.IsExported() {
									flag(s.Pos(), "value", n.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return problems, nil
}

// recvName renders a method receiver's type name for a diagnostic.
func recvName(fl *ast.FieldList) string {
	if len(fl.List) == 0 {
		return "?"
	}
	t := fl.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch t := t.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		if id, ok := t.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return "?"
}
