// Command benchcat concatenates the per-PR benchmark recordings
// (BENCH_PR<k>.json, each a JSON array of benchtab tables) into one
// trajectory document, so the repository's performance history reads as a
// single artifact instead of a pile of files. Entries are ordered by PR
// number; each carries its source file and the tables it recorded.
//
// Usage:
//
//	benchcat [-o trajectory.json] [file ...]
//
// With no file arguments, benchcat globs BENCH_*.json in the current
// directory. With -o empty (the default) the trajectory is written to
// stdout. scripts/bench_trajectory.sh wraps this for CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"

	"securestore/internal/bench"
)

// entry is one recording in the trajectory.
type entry struct {
	// Source is the file the tables came from (basename).
	Source string `json:"source"`
	// PR is the PR number parsed from the filename (0 when unparseable;
	// such entries sort after numbered ones, in name order).
	PR int `json:"pr,omitempty"`
	// Tables are the file's benchtab tables, verbatim.
	Tables []bench.Table `json:"tables"`
}

// trajectory is the combined output document.
type trajectory struct {
	// Experiments lists every distinct table ID seen, sorted.
	Experiments []string `json:"experiments"`
	Entries     []entry  `json:"entries"`
}

var prPattern = regexp.MustCompile(`(?i)PR(\d+)`)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchcat:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchcat", flag.ContinueOnError)
	out := fs.String("o", "", "output file (empty: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if len(files) == 0 {
		var err error
		files, err = filepath.Glob("BENCH_*.json")
		if err != nil {
			return err
		}
	}
	if len(files) == 0 {
		return fmt.Errorf("no BENCH_*.json files found (pass files explicitly)")
	}

	var traj trajectory
	seen := make(map[string]bool)
	for _, path := range files {
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var tables []bench.Table
		if err := json.Unmarshal(raw, &tables); err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		e := entry{Source: filepath.Base(path), Tables: tables}
		if m := prPattern.FindStringSubmatch(e.Source); m != nil {
			e.PR, _ = strconv.Atoi(m[1])
		}
		for _, t := range tables {
			if !seen[t.ID] {
				seen[t.ID] = true
				traj.Experiments = append(traj.Experiments, t.ID)
			}
		}
		traj.Entries = append(traj.Entries, e)
	}
	sort.Strings(traj.Experiments)
	sort.SliceStable(traj.Entries, func(i, j int) bool {
		a, b := traj.Entries[i], traj.Entries[j]
		if (a.PR == 0) != (b.PR == 0) {
			return b.PR == 0
		}
		if a.PR != b.PR {
			return a.PR < b.PR
		}
		return a.Source < b.Source
	})

	enc, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(*out, enc, 0o644)
}
