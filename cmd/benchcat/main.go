// Command benchcat turns the per-PR benchmark recordings (BENCH_PR<k>.json,
// each a JSON array of benchtab tables) into the repository's continuous
// performance trajectory. It has three modes:
//
//	benchcat [-o trajectory.json] [file ...]
//	    Concatenate the recordings into one trajectory document (entries
//	    ordered by PR number, each carrying its source file and tables).
//
//	benchcat -records [-merge records.json] [-commit C] [-date D] [-o out] [file ...]
//	    Normalize every table into flat (pr, experiment, metric, value)
//	    records — internal/bench.NormalizeTables — and merge them into an
//	    existing records file append-only: records already present keep
//	    their original commit/date stamps. scripts/bench_record.sh wraps
//	    this with git-derived stamps.
//
//	benchcat -check [-tolerance 10%] [-merge records.json] [-waivers W] [file ...]
//	    The regression gate: build the merged records and fail (exit 1)
//	    when any gated metric's newest recording is worse than its
//	    previous one by more than the tolerance. CI runs this on every PR
//	    so a change that tanks a tracked number fails loudly. A known,
//	    accepted regression is waived — not silenced — by an entry in the
//	    waivers file (experiment, metric, pr, reason); waivers are pinned
//	    to the PR that introduced the regression, so a further drop in a
//	    later PR trips the gate again.
//
// With no file arguments, benchcat globs BENCH_*.json in the current
// directory. -lenient skips missing or unparseable files with a warning
// instead of aborting — partial recordings must not take down the whole
// trajectory. scripts/bench_trajectory.sh wraps the trajectory mode for
// CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"securestore/internal/bench"
)

// entry is one recording in the trajectory.
type entry struct {
	// Source is the file the tables came from (basename).
	Source string `json:"source"`
	// PR is the PR number parsed from the filename (0 when unparseable;
	// such entries sort after numbered ones, in name order).
	PR int `json:"pr,omitempty"`
	// Tables are the file's benchtab tables, verbatim.
	Tables []bench.Table `json:"tables"`
}

// trajectory is the combined output document.
type trajectory struct {
	// Experiments lists every distinct table ID seen, sorted.
	Experiments []string `json:"experiments"`
	Entries     []entry  `json:"entries"`
}

var prPattern = regexp.MustCompile(`(?i)PR(\d+)`)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchcat:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchcat", flag.ContinueOnError)
	var (
		out       = fs.String("o", "", "output file (empty: stdout)")
		records   = fs.Bool("records", false, "emit normalized (pr, experiment, metric, value) records instead of the trajectory")
		check     = fs.Bool("check", false, "run the regression gate over the merged records")
		tolerance = fs.String("tolerance", "10%", "allowed regression per gated metric (percent; '%' optional)")
		mergePath = fs.String("merge", "", "existing records file to merge with (append-only; also the gate's history)")
		commit    = fs.String("commit", "", "commit stamp for newly normalized records")
		date      = fs.String("date", "", "date stamp for newly normalized records")
		waivers   = fs.String("waivers", "", "JSON file of accepted regressions the gate skips")
		lenient   = fs.Bool("lenient", false, "skip missing or unparseable input files with a warning")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if len(files) == 0 {
		var err error
		files, err = filepath.Glob("BENCH_*.json")
		if err != nil {
			return err
		}
	}
	entries, err := loadEntries(files, *lenient)
	if err != nil {
		return err
	}
	if len(entries) == 0 && *mergePath == "" {
		return fmt.Errorf("no readable BENCH_*.json files found (pass files explicitly)")
	}

	if *records || *check {
		recs, err := loadRecords(*mergePath, *lenient)
		if err != nil {
			return err
		}
		for _, e := range entries {
			recs = bench.MergeRecords(recs, bench.NormalizeTables(e.Source, e.PR, *commit, *date, e.Tables))
		}
		if *check {
			tol, err := parseTolerance(*tolerance)
			if err != nil {
				return err
			}
			regressions, gated := bench.CheckRecords(recs, tol)
			regressions, err = applyWaivers(regressions, *waivers)
			if err != nil {
				return err
			}
			if len(regressions) > 0 {
				for _, r := range regressions {
					fmt.Fprintln(os.Stderr, "REGRESSION:", r)
				}
				return fmt.Errorf("%d metric(s) regressed beyond %.0f%% (of %d gated)", len(regressions), tol, gated)
			}
			fmt.Printf("benchcat: no regressions beyond %.0f%% across %d gated metric pair(s), %d record(s)\n",
				tol, gated, len(recs))
			return nil
		}
		return writeJSON(*out, recs)
	}

	traj := buildTrajectory(entries)
	return writeJSON(*out, traj)
}

// loadEntries reads and parses the recording files. With lenient set,
// unreadable or unparseable files are skipped with a warning on stderr.
func loadEntries(files []string, lenient bool) ([]entry, error) {
	var entries []entry
	for _, path := range files {
		raw, err := os.ReadFile(path)
		if err != nil {
			if lenient {
				fmt.Fprintf(os.Stderr, "benchcat: skipping %s: %v\n", path, err)
				continue
			}
			return nil, err
		}
		var tables []bench.Table
		if err := json.Unmarshal(raw, &tables); err != nil {
			if lenient {
				fmt.Fprintf(os.Stderr, "benchcat: skipping %s: parse: %v\n", path, err)
				continue
			}
			return nil, fmt.Errorf("parse %s: %w", path, err)
		}
		e := entry{Source: filepath.Base(path), Tables: tables}
		if m := prPattern.FindStringSubmatch(e.Source); m != nil {
			e.PR, _ = strconv.Atoi(m[1])
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// loadRecords reads an existing normalized-records file; a missing file
// is an empty history (the first run creates it), and with lenient set a
// corrupt one is too.
func loadRecords(path string, lenient bool) ([]bench.Record, error) {
	if path == "" {
		return nil, nil
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var recs []bench.Record
	if err := json.Unmarshal(raw, &recs); err != nil {
		if lenient {
			fmt.Fprintf(os.Stderr, "benchcat: ignoring corrupt records file %s: %v\n", path, err)
			return nil, nil
		}
		return nil, fmt.Errorf("parse records %s: %w", path, err)
	}
	return recs, nil
}

// waiver is one accepted regression the gate skips: pinned to the PR
// whose recording introduced it, with a human-readable reason.
type waiver struct {
	Experiment string `json:"experiment"`
	Metric     string `json:"metric"`
	PR         int    `json:"pr"`
	Reason     string `json:"reason"`
}

// applyWaivers drops regressions covered by the waivers file (announcing
// each on stderr so they stay visible); path == "" waives nothing.
func applyWaivers(regressions []bench.Regression, path string) ([]bench.Regression, error) {
	if path == "" {
		return regressions, nil
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return regressions, nil
		}
		return nil, err
	}
	var waivers []waiver
	if err := json.Unmarshal(raw, &waivers); err != nil {
		return nil, fmt.Errorf("parse waivers %s: %w", path, err)
	}
	var kept []bench.Regression
	for _, r := range regressions {
		waived := false
		for _, w := range waivers {
			if w.Experiment == r.Experiment && w.Metric == r.Metric && w.PR == r.LastPR {
				fmt.Fprintf(os.Stderr, "benchcat: waived %s %s @ PR%d: %s\n", r.Experiment, r.Metric, r.LastPR, w.Reason)
				waived = true
				break
			}
		}
		if !waived {
			kept = append(kept, r)
		}
	}
	return kept, nil
}

// buildTrajectory assembles the combined document, PR-ordered.
func buildTrajectory(entries []entry) trajectory {
	var traj trajectory
	seen := make(map[string]bool)
	for _, e := range entries {
		for _, t := range e.Tables {
			if !seen[t.ID] {
				seen[t.ID] = true
				traj.Experiments = append(traj.Experiments, t.ID)
			}
		}
		traj.Entries = append(traj.Entries, e)
	}
	sort.Strings(traj.Experiments)
	sort.SliceStable(traj.Entries, func(i, j int) bool {
		a, b := traj.Entries[i], traj.Entries[j]
		if (a.PR == 0) != (b.PR == 0) {
			return b.PR == 0
		}
		if a.PR != b.PR {
			return a.PR < b.PR
		}
		return a.Source < b.Source
	})
	return traj
}

// parseTolerance accepts "10", "10%", or "7.5%".
func parseTolerance(s string) (float64, error) {
	s = strings.TrimSuffix(strings.TrimSpace(s), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad tolerance %q (want a non-negative percentage)", s)
	}
	return v, nil
}

// writeJSON marshals v to the output file, or stdout when path is empty.
func writeJSON(path string, v any) error {
	enc, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if path == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(path, enc, 0o644)
}
