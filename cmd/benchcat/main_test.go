package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"securestore/internal/bench"
)

// writeTables writes a BENCH_PR<k>.json-style recording.
func writeTables(t *testing.T, path string, tables []bench.Table) {
	t.Helper()
	raw, err := json.Marshal(tables)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func opsTable(opsPerSec string) []bench.Table {
	return []bench.Table{{
		ID:     "T3",
		Title:  "throughput",
		Header: []string{"sessions", "ops/s"},
		Rows:   [][]string{{"8", opsPerSec}},
	}}
}

func TestTrajectoryLenientSkipsPartialFiles(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "BENCH_PR4.json")
	writeTables(t, good, opsTable("10000"))
	corrupt := filepath.Join(dir, "BENCH_PR5.json")
	if err := os.WriteFile(corrupt, []byte(`[{"id": "T3", truncated`), 0o644); err != nil {
		t.Fatal(err)
	}
	missing := filepath.Join(dir, "BENCH_PR6.json")

	out := filepath.Join(dir, "traj.json")
	// Strict mode must fail on the corrupt file...
	if err := run([]string{"-o", out, good, corrupt}); err == nil {
		t.Fatal("strict mode accepted a corrupt recording")
	}
	// ...lenient mode must skip corrupt and missing files and still emit
	// the readable entries.
	if err := run([]string{"-lenient", "-o", out, good, corrupt, missing}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var traj trajectory
	if err := json.Unmarshal(raw, &traj); err != nil {
		t.Fatal(err)
	}
	if len(traj.Entries) != 1 || traj.Entries[0].PR != 4 {
		t.Fatalf("want only the PR4 entry, got %+v", traj.Entries)
	}
}

func TestRecordsMergeAppendOnly(t *testing.T) {
	dir := t.TempDir()
	bench4 := filepath.Join(dir, "BENCH_PR4.json")
	writeTables(t, bench4, opsTable("10000"))
	records := filepath.Join(dir, "records.json")

	if err := run([]string{"-records", "-merge", records, "-commit", "aaa", "-o", records, bench4}); err != nil {
		t.Fatal(err)
	}
	// Re-running with a different commit stamp must not rewrite history.
	if err := run([]string{"-records", "-merge", records, "-commit", "bbb", "-o", records, bench4}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(records)
	if err != nil {
		t.Fatal(err)
	}
	var recs []bench.Record
	if err := json.Unmarshal(raw, &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("want 1 record, got %d: %+v", len(recs), recs)
	}
	if recs[0].Commit != "aaa" {
		t.Fatalf("merge rewrote history: commit = %q", recs[0].Commit)
	}
	if recs[0].Metric != "ops/s[8]" || recs[0].Value != 10000 {
		t.Fatalf("unexpected record %+v", recs[0])
	}
}

func TestCheckGateFlagsRegression(t *testing.T) {
	dir := t.TempDir()
	bench4 := filepath.Join(dir, "BENCH_PR4.json")
	writeTables(t, bench4, opsTable("10000"))

	// A 5% wobble passes the 10% gate.
	wobble := filepath.Join(dir, "BENCH_PR5.json")
	writeTables(t, wobble, opsTable("9500"))
	if err := run([]string{"-check", "-tolerance", "10%", bench4, wobble}); err != nil {
		t.Fatalf("5%% wobble tripped the 10%% gate: %v", err)
	}

	// A 20% drop must fail.
	drop := filepath.Join(dir, "BENCH_PR6.json")
	writeTables(t, drop, opsTable("8000"))
	err := run([]string{"-check", "-tolerance", "10%", bench4, drop})
	if err == nil {
		t.Fatal("20% regression passed the 10% gate")
	}
	if !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("unexpected gate error: %v", err)
	}
}

func TestCheckGateWaivers(t *testing.T) {
	dir := t.TempDir()
	bench4 := filepath.Join(dir, "BENCH_PR4.json")
	writeTables(t, bench4, opsTable("10000"))
	drop := filepath.Join(dir, "BENCH_PR6.json")
	writeTables(t, drop, opsTable("8000"))

	waivers := filepath.Join(dir, "waivers.json")
	if err := os.WriteFile(waivers, []byte(
		`[{"experiment":"T3","metric":"ops/s[8]","pr":6,"reason":"known"}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-check", "-tolerance", "10%", "-waivers", waivers, bench4, drop}); err != nil {
		t.Fatalf("waived regression still tripped the gate: %v", err)
	}

	// A waiver pinned to an earlier PR must not cover a new regression.
	stale := filepath.Join(dir, "stale.json")
	if err := os.WriteFile(stale, []byte(
		`[{"experiment":"T3","metric":"ops/s[8]","pr":5,"reason":"old"}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-check", "-tolerance", "10%", "-waivers", stale, bench4, drop}); err == nil {
		t.Fatal("stale waiver silenced a fresh regression")
	}
}

func TestParseTolerance(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want float64
		ok   bool
	}{
		{"10", 10, true},
		{"10%", 10, true},
		{" 7.5% ", 7.5, true},
		{"-3", 0, false},
		{"ten", 0, false},
	} {
		got, err := parseTolerance(tc.in)
		if tc.ok != (err == nil) || got != tc.want {
			t.Errorf("parseTolerance(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}
