package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs run() with stdout redirected to a pipe.
func capture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	old := os.Stdout
	path := filepath.Join(t.TempDir(), "out")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = f
	runErr := run(args)
	os.Stdout = old
	_ = f.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw), runErr
}

func TestListShowsAllExperiments(t *testing.T) {
	out, err := capture(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "a1", "a2", "a3", "a4"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list output missing %s:\n%s", id, out)
		}
	}
}

func TestRunSingleExperimentQuick(t *testing.T) {
	out, err := capture(t, "-quick", "-exp", "e3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "E3") || !strings.Contains(out, "data write") {
		t.Fatalf("e3 output wrong:\n%s", out)
	}
}

func TestUnknownExperimentRejected(t *testing.T) {
	if _, err := capture(t, "-exp", "nope"); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}
