// Command benchtab regenerates every experiment table of EXPERIMENTS.md:
// the measured reproduction of the paper's Section 6 performance analysis
// plus the design ablations.
//
// Usage:
//
//	benchtab                 # run everything (full sweeps)
//	benchtab -quick          # reduced sweeps, seconds instead of minutes
//	benchtab -exp e5,e8      # only the named experiments
//	benchtab -list           # list experiment ids
//	benchtab -json           # emit the tables as a JSON array instead of text
//
// The `remote` subcommand is the open-loop driver (experiments R1 and
// R2): it spawns — or attaches to, via -cluster — a real multi-process
// cluster over TCP, offers load at fixed arrival rates, and reports
// coordinated-omission-safe latency-vs-offered-load curves. See remote.go
// and BENCHMARKS.md:
//
//	benchtab remote                          # spawn, default replicated sweep
//	benchtab remote -profile all -json       # all three R1 value-shape profiles
//	benchtab remote -suite r2                # access patterns: zipf-hot + read-mostly
//	benchtab remote -rates 500,1000 -sessions 32 -arrival uniform
//	benchtab remote -cpuprofile cpu.pprof    # profile the driver across the sweep
//	benchtab remote -cluster s00=host:7100,s01=host:7101,... -config demo.json
//
// (`benchtab _replica` is the hidden mode spawned replicas re-exec into.)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"securestore/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) > 0 {
		switch args[0] {
		case "remote":
			return runRemote(args[1:])
		case "_replica":
			return runReplicaProc(args[1:])
		}
	}
	fs := flag.NewFlagSet("benchtab", flag.ContinueOnError)
	var (
		quick  = fs.Bool("quick", false, "reduced sweeps for a fast run")
		exps   = fs.String("exp", "", "comma-separated experiment ids (default: all)")
		list   = fs.Bool("list", false, "list experiment ids and exit")
		seed   = fs.String("seed", "benchtab", "seed for reproducible runs")
		asJSON = fs.Bool("json", false, "emit result tables as a JSON array on stdout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	all := bench.All()
	if *list {
		for _, e := range all {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return nil
	}

	want := make(map[string]bool)
	if *exps != "" {
		for _, id := range strings.Split(*exps, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}

	opts := bench.Options{Quick: *quick, Seed: *seed}
	var tables []*bench.Table
	for _, e := range all {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		start := time.Now()
		table, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", e.ID, err)
		}
		tables = append(tables, table)
		if !*asJSON {
			fmt.Println(table.Format())
			fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	if len(tables) == 0 {
		return fmt.Errorf("no experiments matched %q (try -list)", *exps)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(tables)
	}
	return nil
}
