package main

// remote.go implements `benchtab remote` (experiments R1 and R2): an
// open-loop benchmark driver against a real multi-process cluster.
// Unless attached to an already-running deployment with -cluster, it
// spawns one OS process per replica by re-execing itself into the hidden
// `_replica` mode (deploy.ServeReplica — the core of securestored), so
// the measured system pays real process isolation, real TCP, and real
// gossip, not the in-process loopback shortcuts of the closed-loop T
// experiments.
//
// -suite selects the profile set: r1 sweeps value shapes (replicated /
// sharded / fragmented), r2 sweeps access patterns (zipfian hot keys and
// a read-mostly mix) over the replicated shape, exercising the verified-
// signature cache and admission batching under skew.
//
// Requests are issued at a fixed offered rate from -sessions concurrent
// workers and latency is measured from each operation's *intended* send
// time (internal/bench.OpenLoop), making the latency-vs-offered-load
// curves coordinated-omission-safe. See BENCHMARKS.md for methodology and
// EXPERIMENTS.md R1 for the recorded curves.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"securestore/internal/bench"
	"securestore/internal/client"
	"securestore/internal/deploy"
	"securestore/internal/profiling"
	"securestore/internal/workload"
)

// replicaCommand builds the process serving one replica of a spawned
// cluster. The default re-execs this binary's `_replica` mode; tests
// override it to re-exec the test binary instead.
var replicaCommand = func(configPath, name string) *exec.Cmd {
	self, err := os.Executable()
	if err != nil {
		self = os.Args[0]
	}
	return exec.Command(self, "_replica", "-config", configPath, "-name", name)
}

// runReplicaProc is the hidden `benchtab _replica` mode: serve one
// replica of the written config until SIGTERM/SIGINT.
func runReplicaProc(args []string) error {
	fs := flag.NewFlagSet("benchtab _replica", flag.ContinueOnError)
	var (
		configPath = fs.String("config", "", "deployment config path (required)")
		name       = fs.String("name", "", "replica name (required)")
		dataDir    = fs.String("data", "", "durable state directory (empty: in-memory)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *configPath == "" || *name == "" {
		return fmt.Errorf("_replica: -config and -name are required")
	}
	cfg, err := deploy.Load(*configPath)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// SECURESTORE_REPLICA_CPUPROFILE=dir drops a per-replica CPU profile
	// in dir — the replica-side counterpart of the driver's -cpuprofile,
	// for attributing spawned-cluster cost (the processes have no
	// /debug/pprof endpoint to scrape).
	if dir := os.Getenv("SECURESTORE_REPLICA_CPUPROFILE"); dir != "" {
		stopProf, err := profiling.Start(filepath.Join(dir, "replica-"+*name+".prof"), "")
		if err != nil {
			return err
		}
		defer stopProf()
	}
	return deploy.ServeReplica(ctx, cfg, *name, *dataDir)
}

// remoteProfile bundles one workload shape of a remote sweep.
type remoteProfile struct {
	name          string
	groups        int     // replica groups (sharded when > 1)
	valueSize     int     // bytes per written value
	fragThreshold int     // erasure-code values at or above this size
	fragK         int     // erasure-coding threshold (0: b+1)
	extraReplicas int     // servers per group beyond 3b+1 (larger n for k)
	items         int     // > 0 overrides the -items flag
	rates         []int   // default offered-rate sweep (ops/s)
	readFrac      float64 // > 0 overrides the -read flag
	zipfSkew      float64 // > 1 selects zipfian item popularity
	hotFraction   float64 // with hotItems: overlay hot-key traffic share
	hotItems      int     // size of the hot set
}

// remoteProfiles (suite r1) are the three value shapes the R1 curves
// cover: small replicated values on one group, the same spread across
// shards, and large values on the erasure-coded path.
var remoteProfiles = []remoteProfile{
	{name: "replicated", groups: 1, valueSize: 128, rates: []int{250, 500, 1000, 2000, 4000}},
	{name: "sharded", groups: 2, valueSize: 128, rates: []int{250, 500, 1000, 2000, 4000}},
	{name: "fragmented", groups: 1, valueSize: 64 << 10, fragThreshold: 1 << 10, rates: []int{200, 400, 800, 1600}},
}

// r2Profiles (suite r2) keep the replicated value shape and vary the
// access pattern instead: a zipfian hot-key mix (90% of traffic on 4
// items, zipfian tail on the rest) and a 95%-read mix. Skewed repeats of
// the same signed bytes hit the verified-signature cache; the read-heavy
// mix shifts the load from write quorums to read rounds.
var r2Profiles = []remoteProfile{
	{name: "zipf-hot", groups: 1, valueSize: 128, rates: []int{250, 500, 1000, 2000, 4000},
		zipfSkew: 1.2, hotFraction: 0.9, hotItems: 4},
	{name: "read-mostly", groups: 1, valueSize: 128, rates: []int{250, 500, 1000, 2000, 4000},
		readFrac: 0.95},
}

// r3Profiles (suite r3) sweep the large-value spectrum — 64 KiB to 4 MiB
// — on both the replicated and the erasure-coded data path, side by side.
// Fragmented profiles run n=5 (one replica beyond 3b+1) with k=3, so each
// share is ~a third of the value, writes need k+b=4 acks and hedged reads
// fetch shares from k+b=4 servers (3 full, 1 stamp probe) in the healthy
// case. Rates shrink with the value size: the interesting number is the
// per-size saturation knee and the MB/s it implies, not a fixed rate grid.
var r3Profiles = []remoteProfile{
	{name: "repl-64k", groups: 1, valueSize: 64 << 10, items: 16, rates: []int{50, 100, 200}},
	{name: "frag-64k", groups: 1, valueSize: 64 << 10, items: 16, rates: []int{50, 100, 200},
		fragThreshold: 1 << 10, fragK: 3, extraReplicas: 1},
	{name: "repl-256k", groups: 1, valueSize: 256 << 10, items: 16, rates: []int{25, 50, 100}},
	{name: "frag-256k", groups: 1, valueSize: 256 << 10, items: 16, rates: []int{25, 50, 100},
		fragThreshold: 1 << 10, fragK: 3, extraReplicas: 1},
	{name: "repl-1m", groups: 1, valueSize: 1 << 20, items: 8, rates: []int{5, 10, 20}},
	{name: "frag-1m", groups: 1, valueSize: 1 << 20, items: 8, rates: []int{5, 10, 20},
		fragThreshold: 1 << 10, fragK: 3, extraReplicas: 1},
	{name: "repl-4m", groups: 1, valueSize: 4 << 20, items: 4, rates: []int{2, 4, 8}},
	{name: "frag-4m", groups: 1, valueSize: 4 << 20, items: 4, rates: []int{2, 4, 8},
		fragThreshold: 1 << 10, fragK: 3, extraReplicas: 1},
}

// remoteSuites names the profile sets; the key doubles (uppercased) as
// the result table's experiment ID.
var remoteSuites = map[string][]remoteProfile{
	"r1": remoteProfiles,
	"r2": r2Profiles,
	"r3": r3Profiles,
}

// remoteSuiteDefault is each suite's profile selection when -profile is
// empty. r1 keeps its historical single-profile default (the fragmented
// sweep writes 64 KiB values and is slow to run by accident); r2's two
// access patterns are cheap and only meaningful side by side.
var remoteSuiteDefault = map[string]string{
	"r1": "replicated",
	"r2": "all",
	"r3": "all",
}

func profileByName(suite []remoteProfile, name string) (remoteProfile, error) {
	var known []string
	for _, p := range suite {
		if p.name == name {
			return p, nil
		}
		known = append(known, p.name)
	}
	return remoteProfile{}, fmt.Errorf("unknown profile %q (%s, or all)", name, strings.Join(known, ", "))
}

// parseRates parses "-rates 500,1000,2000".
func parseRates(s string) ([]int, error) {
	var rates []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := strconv.Atoi(part)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("bad rate %q (want positive integers, comma-separated)", part)
		}
		rates = append(rates, r)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("no rates given")
	}
	return rates, nil
}

// parseClusterAddrs parses "-cluster s00=127.0.0.1:7100,s01=...".
func parseClusterAddrs(s string) (map[string]string, error) {
	addrs := make(map[string]string)
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, addr, ok := strings.Cut(pair, "=")
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("bad -cluster entry %q (want name=host:port)", pair)
		}
		addrs[name] = addr
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("-cluster: no addresses")
	}
	return addrs, nil
}

// runRemote is the `benchtab remote` entry point.
func runRemote(args []string) error {
	fs := flag.NewFlagSet("benchtab remote", flag.ContinueOnError)
	var (
		configPath = fs.String("config", "", "deployment config to spawn or attach to (empty: synthesize per -profile)")
		cluster    = fs.String("cluster", "", "attach to a running cluster: name=host:port pairs, comma-separated (skips spawning)")
		suite      = fs.String("suite", "r1", "experiment suite: r1 (value shapes), r2 (access patterns) or r3 (large values, replicated vs fragmented)")
		profile    = fs.String("profile", "", "workload profile within the suite, or all (empty: suite default)")
		groups     = fs.Int("groups", 0, "replica-group count for the sharded profile (0: profile default)")
		b          = fs.Int("b", 1, "fault tolerance per replica group (n = 3b+1 servers each)")
		ratesFlag  = fs.String("rates", "", "offered-rate sweep, ops/s, comma-separated (empty: profile default)")
		rateFlag   = fs.Int("rate", 0, "single offered rate, ops/s (overrides -rates)")
		sessions   = fs.Int("sessions", 16, "concurrent driver sessions (bounds in-flight operations)")
		duration   = fs.Duration("duration", 5*time.Second, "dispatch window per rate point")
		arrival    = fs.String("arrival", "poisson", "arrival schedule: poisson or uniform")
		readFrac   = fs.Float64("read", 0.5, "fraction of operations that are reads")
		items      = fs.Int("items", 64, "distinct items per run")
		opTimeout  = fs.Duration("op-timeout", 10*time.Second, "per-operation timeout")
		seed       = fs.Int64("seed", 1, "schedule/workload seed")
		asJSON     = fs.Bool("json", false, "emit the result table as a JSON array on stdout")
		out        = fs.String("o", "", "also write the JSON table array to this file")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile covering the whole sweep to this file (empty: disabled)")
		memProfile = fs.String("memprofile", "", "write a heap profile after the sweep to this file (empty: disabled)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	arrivalMode, err := bench.ParseArrival(*arrival)
	if err != nil {
		return err
	}
	suiteKey := strings.ToLower(*suite)
	suiteProfiles, ok := remoteSuites[suiteKey]
	if !ok {
		return fmt.Errorf("unknown suite %q (r1, r2 or r3)", *suite)
	}
	selected := *profile
	if selected == "" {
		selected = remoteSuiteDefault[suiteKey]
	}
	var profiles []remoteProfile
	if selected == "all" {
		profiles = suiteProfiles
	} else {
		p, err := profileByName(suiteProfiles, selected)
		if err != nil {
			return err
		}
		profiles = []remoteProfile{p}
	}
	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	table := &bench.Table{
		ID:     strings.ToUpper(suiteKey),
		Title:  fmt.Sprintf("open-loop latency vs offered load: multi-process cluster over TCP (b=%d, %s arrivals, %d sessions, %v per rate)", *b, arrivalMode, *sessions, *duration),
		Header: []string{"profile", "offered ops/s", "achieved ops/s", "p50 ms", "p95 ms", "p99 ms", "max ms", "errors"},
		Notes: []string{
			"latency is measured from each op's intended send time (coordinated-omission-safe): queueing delay behind a saturated cluster is charged to the op",
			"achieved < offered marks saturation; past it the p99 column shows the unbounded queue, not a service time",
			"each replica is its own OS process (deploy.ServeReplica) with real TCP transport and gossip between processes",
		},
	}
	switch suiteKey {
	case "r2":
		table.Title = fmt.Sprintf("open-loop latency vs offered load: access-pattern profiles on the replicated shape (b=%d, %s arrivals, %d sessions, %v per rate)", *b, arrivalMode, *sessions, *duration)
		table.Notes = append(table.Notes,
			"zipf-hot: 90% of traffic on 4 hot items, zipfian (s=1.2) tail on the rest, 128 B values",
			"read-mostly: 95% reads, uniform item popularity, 128 B values",
		)
	case "r3":
		table.Title = fmt.Sprintf("large values, replicated vs erasure-coded: open-loop throughput and client rx bytes (b=%d, %s arrivals, %d sessions, %v per rate)", *b, arrivalMode, *sessions, *duration)
		table.Header = []string{"profile", "offered ops/s", "achieved ops/s", "MB/s", "p50 ms", "p99 ms", "rx KB", "hedges", "errors"}
		table.Notes = append(table.Notes,
			"repl-* profiles replicate whole values across n=3b+1 servers; frag-* profiles erasure-code them (k=3, n=3b+2) so each replica stores ~1/3 of the value",
			"MB/s is achieved ops/s times the value size (payload throughput seen by the client)",
			"rx KB is mean wire bytes received by the client per operation: hedged fragmented reads fetch k shares plus stamp probes instead of n full shares",
			"hedges counts fragmented reads whose straggler timer fired; 0 in a healthy cluster means the k+b fan-out completed every read",
		)
	default:
		table.Notes = append(table.Notes,
			fmt.Sprintf("workload: %.0f%% reads over private items, values per profile (replicated/sharded 128 B, fragmented 64 KiB erasure-coded)", *readFrac*100),
		)
	}

	for _, p := range profiles {
		if *groups > 0 {
			p.groups = *groups
		}
		rates := p.rates
		if *ratesFlag != "" {
			if rates, err = parseRates(*ratesFlag); err != nil {
				return err
			}
		}
		if *rateFlag > 0 {
			rates = []int{*rateFlag}
		}
		if err := runRemoteProfile(ctx, table, p, rates, remoteRunConfig{
			configPath: *configPath, cluster: *cluster, suite: suiteKey, b: *b,
			sessions: *sessions, duration: *duration, arrival: arrivalMode,
			readFrac: *readFrac, items: *items, opTimeout: *opTimeout, seed: *seed,
			quiet: *asJSON,
		}); err != nil {
			stopProfiles()
			return fmt.Errorf("profile %s: %w", p.name, err)
		}
	}
	if err := stopProfiles(); err != nil {
		return err
	}

	if !*asJSON {
		fmt.Println(table.Format())
	}
	tables := []*bench.Table{table}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tables); err != nil {
			return err
		}
	}
	if *out != "" {
		raw, err := json.MarshalIndent(tables, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// remoteRunConfig carries the sweep parameters shared by every profile.
type remoteRunConfig struct {
	configPath string
	cluster    string
	suite      string
	b          int
	sessions   int
	duration   time.Duration
	arrival    bench.Arrival
	readFrac   float64
	items      int
	opTimeout  time.Duration
	seed       int64
	quiet      bool
}

// runRemoteProfile brings up (or attaches to) one cluster, sweeps the
// offered rates against it, and appends one table row per rate.
func runRemoteProfile(ctx context.Context, table *bench.Table, p remoteProfile, rates []int, rc remoteRunConfig) error {
	var cfg *deploy.Config
	var err error
	if rc.configPath != "" {
		if cfg, err = deploy.Load(rc.configPath); err != nil {
			return err
		}
	} else {
		fragK := 0
		if p.fragThreshold > 0 {
			fragK = p.fragK
			if fragK == 0 {
				fragK = rc.b + 1
			}
		}
		if cfg, err = deploy.SynthesizeCluster("benchtab-remote", p.groups, rc.b, "bench", p.fragThreshold, fragK, p.extraReplicas); err != nil {
			return err
		}
	}

	attach := rc.cluster != ""
	if attach {
		addrs, err := parseClusterAddrs(rc.cluster)
		if err != nil {
			return err
		}
		cfg.Servers = addrs
	}

	var spawned *deploy.SpawnedCluster
	if !attach {
		dir, err := os.MkdirTemp("", "benchtab-remote-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		if !rc.quiet {
			fmt.Printf("# %s: spawning %d replica processes (%d group(s), b=%d)...\n",
				p.name, len(cfg.Servers), p.groups, rc.b)
		}
		if spawned, err = deploy.Spawn(cfg, dir, deploy.CommandFunc(replicaCommand)); err != nil {
			return err
		}
		defer spawned.Teardown()
	}

	group := "bench"
	if len(cfg.Groups) > 0 {
		group = cfg.Groups[0].Name
	}
	// A synthesized cluster always trusts "bench"; a user-supplied config
	// trusts only its own principals, so borrow the first one.
	clientID := "bench"
	if len(cfg.Clients) > 0 {
		clientID = cfg.Clients[0]
	}
	cl, err := deploy.BuildClient(cfg, clientID, group)
	if err != nil {
		return err
	}
	if err := cl.Connect(ctx); err != nil {
		return fmt.Errorf("connect: %w", err)
	}

	readFrac := rc.readFrac
	if p.readFrac > 0 {
		readFrac = p.readFrac
	}
	items := rc.items
	if p.items > 0 {
		items = p.items
	}
	wcfg := workload.Config{
		Items:        items,
		ItemPrefix:   p.name + "-",
		ReadFraction: readFrac,
		ValueSize:    p.valueSize,
		ZipfSkew:     p.zipfSkew,
		HotFraction:  p.hotFraction,
		HotItems:     p.hotItems,
	}
	if err := prewrite(ctx, cl, wcfg, rc.opTimeout); err != nil {
		return fmt.Errorf("prewrite: %w", err)
	}

	do := func(ctx context.Context, op workload.Op) error {
		ctx, cancel := context.WithTimeout(ctx, rc.opTimeout)
		defer cancel()
		if op.IsRead {
			_, _, err := cl.Read(ctx, op.Item)
			return err
		}
		_, err := cl.Write(ctx, op.Item, op.Value)
		return err
	}

	for _, rate := range rates {
		run := bench.OpenLoop{
			Rate:     float64(rate),
			Duration: rc.duration,
			Sessions: rc.sessions,
			Arrival:  rc.arrival,
			Seed:     rc.seed,
			Workload: wcfg,
			// Give a saturated cluster 6x the dispatch window to drain
			// before the run is cut off — enough to show the overload
			// tail without hanging the sweep.
			DrainTimeout: 6 * rc.duration,
		}
		before := cl.Metrics().Snapshot()
		res, err := run.Run(ctx, do)
		if err != nil {
			return err
		}
		if rc.suite == "r3" {
			// The r3 table reports payload throughput and the client's
			// per-operation wire cost next to the latency columns: the
			// numbers the fragmented data path exists to move.
			delta := cl.Metrics().Snapshot().Delta(before)
			var rxTotal int64
			for _, v := range delta.RxBytes {
				rxTotal += v
			}
			rxKB := "n/a"
			if res.Issued > 0 {
				rxKB = fmt.Sprintf("%.1f", float64(rxTotal)/float64(res.Issued)/1024)
			}
			table.AddRow(
				p.name,
				rate,
				fmt.Sprintf("%.0f", res.Achieved),
				fmt.Sprintf("%.1f", res.Achieved*float64(p.valueSize)/(1<<20)),
				ms(res.Latency.P50), ms(res.Latency.P99),
				rxKB,
				delta.FragReadHedges,
				res.Errors,
			)
		} else {
			table.AddRow(
				p.name,
				rate,
				fmt.Sprintf("%.0f", res.Achieved),
				ms(res.Latency.P50), ms(res.Latency.P95), ms(res.Latency.P99), ms(res.Latency.Max),
				res.Errors,
			)
		}
		if !rc.quiet {
			fmt.Printf("# %s @ %d ops/s: achieved %.0f, p50 %s ms, p99 %s ms, %d errors\n",
				p.name, rate, res.Achieved, ms(res.Latency.P50), ms(res.Latency.P99), res.Errors)
		}
	}
	return nil
}

// prewrite seeds every workload item with one value so measured reads
// never race a missing item.
func prewrite(ctx context.Context, cl *client.Client, wcfg workload.Config, timeout time.Duration) error {
	gen := workload.New(wcfg)
	for _, item := range gen.Items() {
		op := gen.NextWrite()
		wctx, cancel := context.WithTimeout(ctx, timeout)
		_, err := cl.Write(wctx, item, op.Value)
		cancel()
		if err != nil {
			return fmt.Errorf("item %s: %w", item, err)
		}
	}
	return nil
}

// ms renders a duration as fractional milliseconds.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000)
}
