package main

// remote.go implements `benchtab remote` (experiment R1): an open-loop
// benchmark driver against a real multi-process cluster. Unless attached
// to an already-running deployment with -cluster, it spawns one OS
// process per replica by re-execing itself into the hidden `_replica`
// mode (deploy.ServeReplica — the core of securestored), so the measured
// system pays real process isolation, real TCP, and real gossip, not the
// in-process loopback shortcuts of the closed-loop T experiments.
//
// Requests are issued at a fixed offered rate from -sessions concurrent
// workers and latency is measured from each operation's *intended* send
// time (internal/bench.OpenLoop), making the latency-vs-offered-load
// curves coordinated-omission-safe. See BENCHMARKS.md for methodology and
// EXPERIMENTS.md R1 for the recorded curves.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"securestore/internal/bench"
	"securestore/internal/client"
	"securestore/internal/deploy"
	"securestore/internal/workload"
)

// replicaCommand builds the process serving one replica of a spawned
// cluster. The default re-execs this binary's `_replica` mode; tests
// override it to re-exec the test binary instead.
var replicaCommand = func(configPath, name string) *exec.Cmd {
	self, err := os.Executable()
	if err != nil {
		self = os.Args[0]
	}
	return exec.Command(self, "_replica", "-config", configPath, "-name", name)
}

// runReplicaProc is the hidden `benchtab _replica` mode: serve one
// replica of the written config until SIGTERM/SIGINT.
func runReplicaProc(args []string) error {
	fs := flag.NewFlagSet("benchtab _replica", flag.ContinueOnError)
	var (
		configPath = fs.String("config", "", "deployment config path (required)")
		name       = fs.String("name", "", "replica name (required)")
		dataDir    = fs.String("data", "", "durable state directory (empty: in-memory)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *configPath == "" || *name == "" {
		return fmt.Errorf("_replica: -config and -name are required")
	}
	cfg, err := deploy.Load(*configPath)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return deploy.ServeReplica(ctx, cfg, *name, *dataDir)
}

// remoteProfile bundles one workload shape of the R1 sweep.
type remoteProfile struct {
	name          string
	groups        int   // replica groups (sharded when > 1)
	valueSize     int   // bytes per written value
	fragThreshold int   // erasure-code values at or above this size
	rates         []int // default offered-rate sweep (ops/s)
}

// remoteProfiles are the three workload shapes the tentpole curves cover:
// small replicated values on one group, the same spread across shards,
// and large values on the erasure-coded path.
var remoteProfiles = []remoteProfile{
	{name: "replicated", groups: 1, valueSize: 128, rates: []int{250, 500, 1000, 2000, 4000}},
	{name: "sharded", groups: 2, valueSize: 128, rates: []int{250, 500, 1000, 2000, 4000}},
	{name: "fragmented", groups: 1, valueSize: 64 << 10, fragThreshold: 1 << 10, rates: []int{50, 100, 200, 400}},
}

func profileByName(name string) (remoteProfile, error) {
	for _, p := range remoteProfiles {
		if p.name == name {
			return p, nil
		}
	}
	return remoteProfile{}, fmt.Errorf("unknown profile %q (replicated, sharded, fragmented, or all)", name)
}

// parseRates parses "-rates 500,1000,2000".
func parseRates(s string) ([]int, error) {
	var rates []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := strconv.Atoi(part)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("bad rate %q (want positive integers, comma-separated)", part)
		}
		rates = append(rates, r)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("no rates given")
	}
	return rates, nil
}

// parseClusterAddrs parses "-cluster s00=127.0.0.1:7100,s01=...".
func parseClusterAddrs(s string) (map[string]string, error) {
	addrs := make(map[string]string)
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, addr, ok := strings.Cut(pair, "=")
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("bad -cluster entry %q (want name=host:port)", pair)
		}
		addrs[name] = addr
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("-cluster: no addresses")
	}
	return addrs, nil
}

// runRemote is the `benchtab remote` entry point.
func runRemote(args []string) error {
	fs := flag.NewFlagSet("benchtab remote", flag.ContinueOnError)
	var (
		configPath = fs.String("config", "", "deployment config to spawn or attach to (empty: synthesize per -profile)")
		cluster    = fs.String("cluster", "", "attach to a running cluster: name=host:port pairs, comma-separated (skips spawning)")
		profile    = fs.String("profile", "replicated", "workload profile: replicated, sharded, fragmented, or all")
		groups     = fs.Int("groups", 0, "replica-group count for the sharded profile (0: profile default)")
		b          = fs.Int("b", 1, "fault tolerance per replica group (n = 3b+1 servers each)")
		ratesFlag  = fs.String("rates", "", "offered-rate sweep, ops/s, comma-separated (empty: profile default)")
		rateFlag   = fs.Int("rate", 0, "single offered rate, ops/s (overrides -rates)")
		sessions   = fs.Int("sessions", 16, "concurrent driver sessions (bounds in-flight operations)")
		duration   = fs.Duration("duration", 5*time.Second, "dispatch window per rate point")
		arrival    = fs.String("arrival", "poisson", "arrival schedule: poisson or uniform")
		readFrac   = fs.Float64("read", 0.5, "fraction of operations that are reads")
		items      = fs.Int("items", 64, "distinct items per run")
		opTimeout  = fs.Duration("op-timeout", 10*time.Second, "per-operation timeout")
		seed       = fs.Int64("seed", 1, "schedule/workload seed")
		asJSON     = fs.Bool("json", false, "emit the result table as a JSON array on stdout")
		out        = fs.String("o", "", "also write the JSON table array to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	arrivalMode, err := bench.ParseArrival(*arrival)
	if err != nil {
		return err
	}
	var profiles []remoteProfile
	if *profile == "all" {
		profiles = remoteProfiles
	} else {
		p, err := profileByName(*profile)
		if err != nil {
			return err
		}
		profiles = []remoteProfile{p}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	table := &bench.Table{
		ID:     "R1",
		Title:  fmt.Sprintf("open-loop latency vs offered load: multi-process cluster over TCP (b=%d, %s arrivals, %d sessions, %v per rate)", *b, arrivalMode, *sessions, *duration),
		Header: []string{"profile", "offered ops/s", "achieved ops/s", "p50 ms", "p95 ms", "p99 ms", "max ms", "errors"},
		Notes: []string{
			"latency is measured from each op's intended send time (coordinated-omission-safe): queueing delay behind a saturated cluster is charged to the op",
			"achieved < offered marks saturation; past it the p99 column shows the unbounded queue, not a service time",
			fmt.Sprintf("workload: %.0f%% reads over private items, values per profile (replicated/sharded 128 B, fragmented 64 KiB erasure-coded)", *readFrac*100),
			"each replica is its own OS process (deploy.ServeReplica) with real TCP transport and gossip between processes",
		},
	}

	for _, p := range profiles {
		if *groups > 0 {
			p.groups = *groups
		}
		rates := p.rates
		if *ratesFlag != "" {
			if rates, err = parseRates(*ratesFlag); err != nil {
				return err
			}
		}
		if *rateFlag > 0 {
			rates = []int{*rateFlag}
		}
		if err := runRemoteProfile(ctx, table, p, rates, remoteRunConfig{
			configPath: *configPath, cluster: *cluster, b: *b,
			sessions: *sessions, duration: *duration, arrival: arrivalMode,
			readFrac: *readFrac, items: *items, opTimeout: *opTimeout, seed: *seed,
			quiet: *asJSON,
		}); err != nil {
			return fmt.Errorf("profile %s: %w", p.name, err)
		}
	}

	if !*asJSON {
		fmt.Println(table.Format())
	}
	tables := []*bench.Table{table}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tables); err != nil {
			return err
		}
	}
	if *out != "" {
		raw, err := json.MarshalIndent(tables, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// remoteRunConfig carries the sweep parameters shared by every profile.
type remoteRunConfig struct {
	configPath string
	cluster    string
	b          int
	sessions   int
	duration   time.Duration
	arrival    bench.Arrival
	readFrac   float64
	items      int
	opTimeout  time.Duration
	seed       int64
	quiet      bool
}

// runRemoteProfile brings up (or attaches to) one cluster, sweeps the
// offered rates against it, and appends one table row per rate.
func runRemoteProfile(ctx context.Context, table *bench.Table, p remoteProfile, rates []int, rc remoteRunConfig) error {
	var cfg *deploy.Config
	var err error
	if rc.configPath != "" {
		if cfg, err = deploy.Load(rc.configPath); err != nil {
			return err
		}
	} else {
		fragK := 0
		if p.fragThreshold > 0 {
			fragK = rc.b + 1
		}
		if cfg, err = deploy.SynthesizeCluster("benchtab-remote", p.groups, rc.b, "bench", p.fragThreshold, fragK); err != nil {
			return err
		}
	}

	attach := rc.cluster != ""
	if attach {
		addrs, err := parseClusterAddrs(rc.cluster)
		if err != nil {
			return err
		}
		cfg.Servers = addrs
	}

	var spawned *deploy.SpawnedCluster
	if !attach {
		dir, err := os.MkdirTemp("", "benchtab-remote-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		if !rc.quiet {
			fmt.Printf("# %s: spawning %d replica processes (%d group(s), b=%d)...\n",
				p.name, len(cfg.Servers), p.groups, rc.b)
		}
		if spawned, err = deploy.Spawn(cfg, dir, deploy.CommandFunc(replicaCommand)); err != nil {
			return err
		}
		defer spawned.Teardown()
	}

	group := "bench"
	if len(cfg.Groups) > 0 {
		group = cfg.Groups[0].Name
	}
	// A synthesized cluster always trusts "bench"; a user-supplied config
	// trusts only its own principals, so borrow the first one.
	clientID := "bench"
	if len(cfg.Clients) > 0 {
		clientID = cfg.Clients[0]
	}
	cl, err := deploy.BuildClient(cfg, clientID, group)
	if err != nil {
		return err
	}
	if err := cl.Connect(ctx); err != nil {
		return fmt.Errorf("connect: %w", err)
	}

	wcfg := workload.Config{
		Items:        rc.items,
		ItemPrefix:   p.name + "-",
		ReadFraction: rc.readFrac,
		ValueSize:    p.valueSize,
	}
	if err := prewrite(ctx, cl, wcfg, rc.opTimeout); err != nil {
		return fmt.Errorf("prewrite: %w", err)
	}

	do := func(ctx context.Context, op workload.Op) error {
		ctx, cancel := context.WithTimeout(ctx, rc.opTimeout)
		defer cancel()
		if op.IsRead {
			_, _, err := cl.Read(ctx, op.Item)
			return err
		}
		_, err := cl.Write(ctx, op.Item, op.Value)
		return err
	}

	for _, rate := range rates {
		run := bench.OpenLoop{
			Rate:     float64(rate),
			Duration: rc.duration,
			Sessions: rc.sessions,
			Arrival:  rc.arrival,
			Seed:     rc.seed,
			Workload: wcfg,
			// Give a saturated cluster 6x the dispatch window to drain
			// before the run is cut off — enough to show the overload
			// tail without hanging the sweep.
			DrainTimeout: 6 * rc.duration,
		}
		res, err := run.Run(ctx, do)
		if err != nil {
			return err
		}
		table.AddRow(
			p.name,
			rate,
			fmt.Sprintf("%.0f", res.Achieved),
			ms(res.Latency.P50), ms(res.Latency.P95), ms(res.Latency.P99), ms(res.Latency.Max),
			res.Errors,
		)
		if !rc.quiet {
			fmt.Printf("# %s @ %d ops/s: achieved %.0f, p50 %s ms, p99 %s ms, %d errors\n",
				p.name, rate, res.Achieved, ms(res.Latency.P50), ms(res.Latency.P99), res.Errors)
		}
	}
	return nil
}

// prewrite seeds every workload item with one value so measured reads
// never race a missing item.
func prewrite(ctx context.Context, cl *client.Client, wcfg workload.Config, timeout time.Duration) error {
	gen := workload.New(wcfg)
	for _, item := range gen.Items() {
		op := gen.NextWrite()
		wctx, cancel := context.WithTimeout(ctx, timeout)
		_, err := cl.Write(wctx, item, op.Value)
		cancel()
		if err != nil {
			return fmt.Errorf("item %s: %w", item, err)
		}
	}
	return nil
}

// ms renders a duration as fractional milliseconds.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000)
}
