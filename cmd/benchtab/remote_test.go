package main

// remote_test.go exercises `benchtab remote` end to end: the test binary
// re-execs itself as every replica process (TestMain's env guard), so the
// spawn → multi-process cluster → open-loop sweep → teardown path runs
// for real, over real sockets and real OS processes.

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"testing"

	"securestore/internal/bench"
)

func TestMain(m *testing.M) {
	// A spawned replica: serve until SIGTERM, then exit. Guarded by env so
	// normal `go test` runs are unaffected.
	if cfg := os.Getenv("BENCHTAB_TEST_REPLICA_CONFIG"); cfg != "" {
		err := runReplicaProc([]string{"-config", cfg, "-name", os.Getenv("BENCHTAB_TEST_REPLICA_NAME")})
		if err != nil {
			fmt.Fprintln(os.Stderr, "replica:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func TestRemoteOpenLoopSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a multi-process cluster")
	}
	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	orig := replicaCommand
	replicaCommand = func(configPath, name string) *exec.Cmd {
		cmd := exec.Command(self)
		cmd.Env = append(os.Environ(),
			"BENCHTAB_TEST_REPLICA_CONFIG="+configPath,
			"BENCHTAB_TEST_REPLICA_NAME="+name)
		return cmd
	}
	defer func() { replicaCommand = orig }()

	out := t.TempDir() + "/r1.json"
	err = run([]string{"remote",
		"-rates", "50,100", "-duration", "500ms", "-sessions", "4",
		"-items", "8", "-o", out, "-json"})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var tables []bench.Table
	if err := json.Unmarshal(raw, &tables); err != nil {
		t.Fatalf("R1 output not a benchtab table array: %v", err)
	}
	if len(tables) != 1 || tables[0].ID != "R1" {
		t.Fatalf("want one R1 table, got %+v", tables)
	}
	if len(tables[0].Rows) != 2 {
		t.Fatalf("want one row per rate, got %d", len(tables[0].Rows))
	}
	for _, row := range tables[0].Rows {
		if row[len(row)-1] != "0" {
			t.Fatalf("errors in open-loop row %v", row)
		}
	}
}

// TestRemoteR2Sweep smoke-tests the access-pattern suite: the zipfian
// hot-key profile must plumb its workload shape through a real spawned
// cluster and come back error-free under table ID R2.
func TestRemoteR2Sweep(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a multi-process cluster")
	}
	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	orig := replicaCommand
	replicaCommand = func(configPath, name string) *exec.Cmd {
		cmd := exec.Command(self)
		cmd.Env = append(os.Environ(),
			"BENCHTAB_TEST_REPLICA_CONFIG="+configPath,
			"BENCHTAB_TEST_REPLICA_NAME="+name)
		return cmd
	}
	defer func() { replicaCommand = orig }()

	out := t.TempDir() + "/r2.json"
	err = run([]string{"remote", "-suite", "r2", "-profile", "zipf-hot",
		"-rate", "50", "-duration", "500ms", "-sessions", "4",
		"-items", "8", "-o", out, "-json"})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var tables []bench.Table
	if err := json.Unmarshal(raw, &tables); err != nil {
		t.Fatalf("R2 output not a benchtab table array: %v", err)
	}
	if len(tables) != 1 || tables[0].ID != "R2" {
		t.Fatalf("want one R2 table, got %+v", tables)
	}
	if len(tables[0].Rows) != 1 || tables[0].Rows[0][0] != "zipf-hot" {
		t.Fatalf("want one zipf-hot row, got %+v", tables[0].Rows)
	}
	if tables[0].Rows[0][len(tables[0].Rows[0])-1] != "0" {
		t.Fatalf("errors in R2 row %v", tables[0].Rows[0])
	}
}
