// Command securestore is the CLI client for a TCP secure-store
// deployment started with securestored.
//
// Usage:
//
//	securestore -config demo.json -id alice -group notes put key value
//	securestore -config demo.json -id alice -group notes get key
//	securestore -config demo.json -id alice -group notes session
//
// put/get run a full connect → operation → disconnect session. "session"
// opens an interactive loop reading one command per line ("put k v",
// "get k", "quit"), holding the session context across operations.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"securestore/internal/client"
	"securestore/internal/deploy"
	"securestore/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "securestore:", err)
		os.Exit(1)
	}
}

func run(args []string, in *os.File, out *os.File) error {
	fs := flag.NewFlagSet("securestore", flag.ContinueOnError)
	var (
		configPath = fs.String("config", "", "path to the deployment config (required)")
		id         = fs.String("id", "", "client principal name (required)")
		group      = fs.String("group", "", "related item group (required)")
		timeout    = fs.Duration("timeout", 5*time.Second, "per-operation timeout")
		fragThresh = fs.Int("fragment-threshold", -1,
			"erasure-code values of at least this many bytes across the replica group (0 disables; -1 keeps the config's fragmentThresholdBytes)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *configPath == "" || *id == "" || *group == "" {
		return fmt.Errorf("-config, -id and -group are required")
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("command required: put|get|session")
	}

	cfg, err := deploy.Load(*configPath)
	if err != nil {
		return err
	}
	if *fragThresh >= 0 {
		cfg.FragmentThresholdBytes = *fragThresh
	}
	wire.RegisterGob()
	cl, err := deploy.BuildClient(cfg, *id, *group)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := cl.Connect(ctx); err != nil {
		return fmt.Errorf("connect: %w", err)
	}

	switch rest[0] {
	case "put":
		if len(rest) != 3 {
			return fmt.Errorf("usage: put <item> <value>")
		}
		if err := doPut(ctx, cl, out, rest[1], rest[2]); err != nil {
			return err
		}
	case "get":
		if len(rest) != 2 {
			return fmt.Errorf("usage: get <item>")
		}
		if err := doGet(ctx, cl, out, rest[1]); err != nil {
			return err
		}
	case "session":
		if err := session(cl, in, out, *timeout); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown command %q (want put|get|session)", rest[0])
	}

	if err := cl.Disconnect(ctx); err != nil {
		return fmt.Errorf("disconnect: %w", err)
	}
	return nil
}

func doPut(ctx context.Context, cl *client.Client, out *os.File, item, value string) error {
	stamp, err := cl.Write(ctx, item, []byte(value))
	if err != nil {
		return fmt.Errorf("put %s: %w", item, err)
	}
	fmt.Fprintf(out, "stored %s @ %s\n", item, stamp)
	return nil
}

func doGet(ctx context.Context, cl *client.Client, out *os.File, item string) error {
	value, stamp, err := cl.Read(ctx, item)
	if err != nil {
		return fmt.Errorf("get %s: %w", item, err)
	}
	fmt.Fprintf(out, "%s @ %s: %s\n", item, stamp, value)
	return nil
}

func session(cl *client.Client, in *os.File, out *os.File, timeout time.Duration) error {
	fmt.Fprintln(out, "session open; commands: put <item> <value> | get <item> | quit")
	scanner := bufio.NewScanner(in)
	for {
		fmt.Fprint(out, "> ")
		if !scanner.Scan() {
			return scanner.Err()
		}
		fields := strings.Fields(scanner.Text())
		if len(fields) == 0 {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		var err error
		switch fields[0] {
		case "put":
			if len(fields) < 3 {
				err = fmt.Errorf("usage: put <item> <value>")
			} else {
				err = doPut(ctx, cl, out, fields[1], strings.Join(fields[2:], " "))
			}
		case "get":
			if len(fields) != 2 {
				err = fmt.Errorf("usage: get <item>")
			} else {
				err = doGet(ctx, cl, out, fields[1])
			}
		case "quit", "exit":
			cancel()
			return nil
		default:
			err = fmt.Errorf("unknown command %q", fields[0])
		}
		cancel()
		if err != nil {
			fmt.Fprintln(out, "error:", err)
		}
	}
}
