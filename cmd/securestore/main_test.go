package main

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"securestore/internal/deploy"
	"securestore/internal/transport"
	"securestore/internal/wire"
)

// bootDeployment starts a full in-process TCP deployment and returns the
// config path.
func bootDeployment(t *testing.T) string {
	t.Helper()
	wire.RegisterGob()

	addrs := make([]string, 4)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		_ = ln.Close()
	}
	raw := fmt.Sprintf(`{
		"seed": "clitest", "b": 1,
		"servers": {"s00": %q, "s01": %q, "s02": %q, "s03": %q},
		"groups": [{"name": "notes", "consistency": "MRC"}],
		"clients": ["alice"],
		"gossipIntervalMillis": 20
	}`, addrs[0], addrs[1], addrs[2], addrs[3])
	path := filepath.Join(t.TempDir(), "deploy.json")
	if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}

	cfg, err := deploy.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range cfg.ServerNames() {
		srv, engine, err := deploy.BuildServer(cfg, name, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		tcp := transport.NewTCPServer(srv)
		if _, err := tcp.Serve(cfg.Servers[name]); err != nil {
			t.Fatal(err)
		}
		engine.Start()
		t.Cleanup(func() {
			engine.Stop()
			tcp.Close()
		})
	}
	return path
}

// runCLI invokes the CLI's run function capturing stdout.
func runCLI(t *testing.T, stdin string, args ...string) (string, error) {
	t.Helper()
	outPath := filepath.Join(t.TempDir(), "out")
	out, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()

	inPath := filepath.Join(t.TempDir(), "in")
	if err := os.WriteFile(inPath, []byte(stdin), 0o644); err != nil {
		t.Fatal(err)
	}
	in, err := os.Open(inPath)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()

	runErr := run(args, in, out)
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw), runErr
}

func TestCLIPutGet(t *testing.T) {
	config := bootDeployment(t)
	base := []string{"-config", config, "-id", "alice", "-group", "notes"}

	out, err := runCLI(t, "", append(base, "put", "memo", "hello from the cli")...)
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	if !strings.Contains(out, "stored memo") {
		t.Fatalf("put output = %q", out)
	}

	out, err = runCLI(t, "", append(base, "get", "memo")...)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if !strings.Contains(out, "hello from the cli") {
		t.Fatalf("get output = %q", out)
	}
}

func TestCLISession(t *testing.T) {
	config := bootDeployment(t)
	base := []string{"-config", config, "-id", "alice", "-group", "notes"}

	script := "put k session-value\nget k\nquit\n"
	out, err := runCLI(t, script, append(base, "session")...)
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	if !strings.Contains(out, "session-value") {
		t.Fatalf("session output = %q", out)
	}
}

func TestCLIValidation(t *testing.T) {
	if _, err := runCLI(t, "", "put", "a", "b"); err == nil {
		t.Fatal("missing flags accepted")
	}
	config := bootDeployment(t)
	base := []string{"-config", config, "-id", "alice", "-group", "notes"}
	if _, err := runCLI(t, "", append(base, "frobnicate")...); err == nil {
		t.Fatal("unknown command accepted")
	}
	if _, err := runCLI(t, "", append(base, "put", "only-item")...); err == nil {
		t.Fatal("put with missing value accepted")
	}
	if _, err := runCLI(t, "", base...); err == nil {
		t.Fatal("missing command accepted")
	}
	// Unknown principal is rejected by the deployment config.
	bad := []string{"-config", config, "-id", "mallory", "-group", "notes"}
	if _, err := runCLI(t, "", append(bad, "get", "x")...); err == nil {
		t.Fatal("unknown principal accepted")
	}
}
