package main

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"securestore/internal/deploy"
)

func writeTestConfig(t *testing.T) string {
	t.Helper()
	addrs := make([]string, 4)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		_ = ln.Close()
	}
	raw := fmt.Sprintf(`{
		"seed": "daemontest", "b": 1,
		"servers": {"s00": %q, "s01": %q, "s02": %q, "s03": %q},
		"groups": [{"name": "notes", "consistency": "MRC"}],
		"clients": ["alice"],
		"gossipIntervalMillis": 20
	}`, addrs[0], addrs[1], addrs[2], addrs[3])
	path := filepath.Join(t.TempDir(), "deploy.json")
	if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestStartReplicaServesAndShutsDown(t *testing.T) {
	config := writeTestConfig(t)
	cfg, err := deploy.Load(config)
	if err != nil {
		t.Fatal(err)
	}

	var shutdowns []func()
	for _, name := range cfg.ServerNames() {
		bound, shutdown, err := startReplica(config, name, "")
		if err != nil {
			t.Fatalf("start %s: %v", name, err)
		}
		if bound == "" {
			t.Fatalf("start %s: empty bound address", name)
		}
		shutdowns = append(shutdowns, shutdown)
	}

	cl, err := deploy.BuildClient(cfg, "alice", "notes")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := cl.Connect(ctx); err != nil {
		t.Fatalf("connect: %v", err)
	}
	if _, err := cl.Write(ctx, "memo", []byte("served by the daemon path")); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, _, err := cl.Read(ctx, "memo")
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(got) != "served by the daemon path" {
		t.Fatalf("read = %q", got)
	}

	for _, shutdown := range shutdowns {
		shutdown()
	}
	// After shutdown, calls fail.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel2()
	cl2, err := deploy.BuildClient(cfg, "alice", "notes")
	if err != nil {
		t.Fatal(err)
	}
	if err := cl2.Connect(ctx2); err == nil {
		t.Fatal("connect succeeded after every replica shut down")
	}
}

func TestStartReplicaValidation(t *testing.T) {
	config := writeTestConfig(t)
	if _, _, err := startReplica(config, "ghost", ""); err == nil {
		t.Fatal("unknown replica name accepted")
	}
	if _, _, err := startReplica(filepath.Join(t.TempDir(), "missing.json"), "s00", ""); err == nil {
		t.Fatal("missing config accepted")
	}
}

func TestRunFlagValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("missing flags accepted")
	}
	if err := run([]string{"-config", "x"}); err == nil {
		t.Fatal("missing -name accepted")
	}
}
