package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"securestore/internal/deploy"
)

func writeTestConfig(t *testing.T) string {
	t.Helper()
	addrs := make([]string, 4)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		_ = ln.Close()
	}
	raw := fmt.Sprintf(`{
		"seed": "daemontest", "b": 1,
		"servers": {"s00": %q, "s01": %q, "s02": %q, "s03": %q},
		"groups": [{"name": "notes", "consistency": "MRC"}],
		"clients": ["alice"],
		"gossipIntervalMillis": 20
	}`, addrs[0], addrs[1], addrs[2], addrs[3])
	path := filepath.Join(t.TempDir(), "deploy.json")
	if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestStartReplicaServesAndShutsDown(t *testing.T) {
	config := writeTestConfig(t)
	cfg, err := deploy.Load(config)
	if err != nil {
		t.Fatal(err)
	}

	var shutdowns []func()
	var debugBounds []string
	for _, name := range cfg.ServerNames() {
		bound, debugBound, shutdown, err := startReplica(config, name, "", "127.0.0.1:0", "", "")
		if err != nil {
			t.Fatalf("start %s: %v", name, err)
		}
		if bound == "" {
			t.Fatalf("start %s: empty bound address", name)
		}
		if debugBound == "" {
			t.Fatalf("start %s: empty debug address despite -debug-addr", name)
		}
		debugBounds = append(debugBounds, debugBound)
		shutdowns = append(shutdowns, shutdown)
	}

	cl, err := deploy.BuildClient(cfg, "alice", "notes")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := cl.Connect(ctx); err != nil {
		t.Fatalf("connect: %v", err)
	}
	if _, err := cl.Write(ctx, "memo", []byte("served by the daemon path")); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, _, err := cl.Read(ctx, "memo")
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(got) != "served by the daemon path" {
		t.Fatalf("read = %q", got)
	}

	// The debug endpoint serves all three routes, and /metrics reflects
	// the traffic the replica just handled.
	for _, path := range []string{"/healthz", "/metrics", "/metrics?format=json", "/traces"} {
		resp, err := http.Get("http://" + debugBounds[0] + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d, err %v", path, resp.StatusCode, err)
		}
		if path == "/metrics" && !strings.Contains(string(body), "securestore_op_latency_seconds") {
			t.Fatalf("/metrics missing latency histograms:\n%s", body)
		}
	}

	for _, shutdown := range shutdowns {
		shutdown()
	}
	// After shutdown, calls fail.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel2()
	cl2, err := deploy.BuildClient(cfg, "alice", "notes")
	if err != nil {
		t.Fatal(err)
	}
	if err := cl2.Connect(ctx2); err == nil {
		t.Fatal("connect succeeded after every replica shut down")
	}
}

func TestStartReplicaValidation(t *testing.T) {
	config := writeTestConfig(t)
	if _, _, _, err := startReplica(config, "ghost", "", "", "", ""); err == nil {
		t.Fatal("unknown replica name accepted")
	}
	if _, _, _, err := startReplica(filepath.Join(t.TempDir(), "missing.json"), "s00", "", "", "", ""); err == nil {
		t.Fatal("missing config accepted")
	}
	if _, _, _, err := startReplica(config, "s00", "", "256.0.0.1:bogus", "", ""); err == nil {
		t.Fatal("invalid debug address accepted")
	}
}

func TestStartReplicaTraceLog(t *testing.T) {
	config := writeTestConfig(t)
	cfg, err := deploy.Load(config)
	if err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(t.TempDir(), "spans.jsonl")
	var shutdowns []func()
	for _, name := range cfg.ServerNames() {
		tl := ""
		if name == "s00" {
			tl = logPath
		}
		_, _, shutdown, err := startReplica(config, name, "", "", tl, "")
		if err != nil {
			t.Fatalf("start %s: %v", name, err)
		}
		shutdowns = append(shutdowns, shutdown)
	}
	defer func() {
		for _, shutdown := range shutdowns {
			shutdown()
		}
	}()

	cl, err := deploy.BuildClient(cfg, "alice", "notes")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := cl.Connect(ctx); err != nil {
		t.Fatalf("connect: %v", err)
	}
	if _, err := cl.Write(ctx, "memo", []byte("span log check")); err != nil {
		t.Fatalf("write: %v", err)
	}

	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("trace log is empty after served requests")
	}
	var span struct {
		Op string `json:"op"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &span); err != nil {
		t.Fatalf("trace log line not JSON: %v (%q)", err, lines[0])
	}
	if !strings.HasPrefix(span.Op, "server.") {
		t.Fatalf("span op = %q, want server.*", span.Op)
	}
}

func TestRunFlagValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("missing flags accepted")
	}
	if err := run([]string{"-config", "x"}); err == nil {
		t.Fatal("missing -name accepted")
	}
}
