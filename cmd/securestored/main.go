// Command securestored runs one secure-store replica over TCP.
//
// A small deployment is described by a JSON config file shared by all
// replicas and clients:
//
//	{
//	  "seed": "demo",
//	  "b": 1,
//	  "servers": {
//	    "s00": "127.0.0.1:7100",
//	    "s01": "127.0.0.1:7101",
//	    "s02": "127.0.0.1:7102",
//	    "s03": "127.0.0.1:7103"
//	  },
//	  "groups": [
//	    {"name": "notes", "consistency": "MRC", "multiWriter": false}
//	  ],
//	  "clients": ["alice", "bob"]
//	}
//
// Keys are derived deterministically from the seed so that independently
// started processes agree on the key ring — a stand-in for the paper's
// assumption that public keys are well known. Real deployments would
// distribute actual public keys instead.
//
// Usage:
//
//	securestored -config demo.json -name s00
//
// With -debug-addr the replica additionally serves its live observability
// state over HTTP: /metrics (Prometheus text format, or JSON with
// ?format=json), /traces (recent operation spans), and /healthz. With
// -trace-log every completed span is appended to a JSON-lines file. See
// OPERATIONS.md for the full reference.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"securestore/internal/debughttp"
	"securestore/internal/deploy"
	"securestore/internal/profiling"
	"securestore/internal/server"
	"securestore/internal/trace"
	"securestore/internal/transport"
	"securestore/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "securestored:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("securestored", flag.ContinueOnError)
	var (
		configPath = fs.String("config", "", "path to the deployment config (required)")
		name       = fs.String("name", "", "this replica's name from the config (required)")
		dataDir    = fs.String("data", "", "directory for durable replica state (empty: in-memory only)")
		debugAddr  = fs.String("debug-addr", "", "HTTP address for /metrics, /traces and /healthz (empty: disabled)")
		traceLog   = fs.String("trace-log", "", "append completed spans to this JSON-lines file (empty: disabled)")
		shardTable = fs.String("shard-table", "", "JSON shard-table file overriding the config's \"shards\" field (empty: use the config)")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile covering the process lifetime to this file (empty: disabled)")
		memProfile = fs.String("memprofile", "", "write a heap profile at shutdown to this file (empty: disabled)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *configPath == "" || *name == "" {
		return fmt.Errorf("-config and -name are required")
	}
	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}

	bound, debugBound, shutdown, err := startReplica(*configPath, *name, *dataDir, *debugAddr, *traceLog, *shardTable)
	if err != nil {
		return err
	}
	fmt.Printf("securestored %s listening on %s\n", *name, bound)
	if debugBound != "" {
		fmt.Printf("securestored %s debug endpoint on http://%s\n", *name, debugBound)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	shutdown()
	if err := stopProfiles(); err != nil {
		return err
	}
	fmt.Printf("securestored %s stopped\n", *name)
	return nil
}

// startReplica boots one replica process: load config, build the server
// (recovering durable state when dataDir is set), serve TCP, start
// gossip, and — when debugAddr is non-empty — serve the debug HTTP
// endpoint. It returns the bound replica address, the bound debug address
// (empty when disabled), and a shutdown function.
func startReplica(configPath, name, dataDir, debugAddr, traceLog, shardTable string) (string, string, func(), error) {
	cfg, err := deploy.Load(configPath)
	if err != nil {
		return "", "", nil, err
	}
	if shardTable != "" {
		if err := cfg.OverlayShards(shardTable); err != nil {
			return "", "", nil, err
		}
	}
	addr, ok := cfg.Servers[name]
	if !ok {
		return "", "", nil, fmt.Errorf("server %q not in config", name)
	}
	// The shard label rides on securestore_info so an operator can tell at
	// a glance which replica group a scraped process belongs to.
	shardLabel := ""
	if table := cfg.Table(nil); table != nil {
		idx, err := table.ShardOfServer(name)
		if err != nil {
			return "", "", nil, err
		}
		shardLabel = table.Shards[idx].Name
	}

	// The replica is always instrumented: tracing costs well under 3% of
	// the hot path (EXPERIMENTS.md O1) and keeps the debug endpoint and
	// span log ready without a restart.
	var traceOpts []trace.Option
	var traceFile *os.File
	if traceLog != "" {
		traceFile, err = os.OpenFile(traceLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return "", "", nil, fmt.Errorf("open trace log: %w", err)
		}
		traceOpts = append(traceOpts, trace.WithSink(traceFile))
	}
	obs := deploy.NewObs(traceOpts...)

	wire.RegisterGob()
	srv, engine, err := deploy.BuildServer(cfg, name, dataDir, obs)
	if err != nil {
		if traceFile != nil {
			traceFile.Close()
		}
		return "", "", nil, err
	}

	tcp := transport.NewTCPServer(srv, transport.WithServerCounters(obs.Counters))
	bound, err := tcp.Serve(addr)
	if err != nil {
		if traceFile != nil {
			traceFile.Close()
		}
		return "", "", nil, err
	}

	debugBound := ""
	var debugSrv *http.Server
	if debugAddr != "" {
		handler := debughttp.Handler(debughttp.State{
			Counters:  obs.Counters,
			Latencies: obs.Latencies,
			Tracer:    obs.Tracer,
			Health: func() error {
				if f := srv.Fault(); f != server.Healthy {
					return fmt.Errorf("replica %s is %s", name, f)
				}
				return nil
			},
			Info: func() map[string]string {
				info := map[string]string{"server": name, "addr": bound}
				if shardLabel != "" {
					info["shard"] = shardLabel
				}
				return info
			}(),
		})
		ln, err := net.Listen("tcp", debugAddr)
		if err != nil {
			tcp.Close()
			if traceFile != nil {
				traceFile.Close()
			}
			return "", "", nil, fmt.Errorf("debug listen: %w", err)
		}
		debugBound = ln.Addr().String()
		debugSrv = &http.Server{Handler: handler}
		go debugSrv.Serve(ln)
	}

	engine.Start()
	return bound, debugBound, func() {
		engine.Stop()
		if debugSrv != nil {
			debugSrv.Close()
		}
		tcp.Close()
		if traceFile != nil {
			traceFile.Close()
		}
	}, nil
}
