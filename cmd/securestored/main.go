// Command securestored runs one secure-store replica over TCP.
//
// A small deployment is described by a JSON config file shared by all
// replicas and clients:
//
//	{
//	  "seed": "demo",
//	  "b": 1,
//	  "servers": {
//	    "s00": "127.0.0.1:7100",
//	    "s01": "127.0.0.1:7101",
//	    "s02": "127.0.0.1:7102",
//	    "s03": "127.0.0.1:7103"
//	  },
//	  "groups": [
//	    {"name": "notes", "consistency": "MRC", "multiWriter": false}
//	  ],
//	  "clients": ["alice", "bob"]
//	}
//
// Keys are derived deterministically from the seed so that independently
// started processes agree on the key ring — a stand-in for the paper's
// assumption that public keys are well known. Real deployments would
// distribute actual public keys instead.
//
// Usage:
//
//	securestored -config demo.json -name s00
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"securestore/internal/deploy"
	"securestore/internal/transport"
	"securestore/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "securestored:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("securestored", flag.ContinueOnError)
	var (
		configPath = fs.String("config", "", "path to the deployment config (required)")
		name       = fs.String("name", "", "this replica's name from the config (required)")
		dataDir    = fs.String("data", "", "directory for durable replica state (empty: in-memory only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *configPath == "" || *name == "" {
		return fmt.Errorf("-config and -name are required")
	}

	bound, shutdown, err := startReplica(*configPath, *name, *dataDir)
	if err != nil {
		return err
	}
	fmt.Printf("securestored %s listening on %s\n", *name, bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	shutdown()
	fmt.Printf("securestored %s stopped\n", *name)
	return nil
}

// startReplica boots one replica process: load config, build the server
// (recovering durable state when dataDir is set), serve TCP, start
// gossip. It returns the bound address and a shutdown function.
func startReplica(configPath, name, dataDir string) (string, func(), error) {
	cfg, err := deploy.Load(configPath)
	if err != nil {
		return "", nil, err
	}
	addr, ok := cfg.Servers[name]
	if !ok {
		return "", nil, fmt.Errorf("server %q not in config", name)
	}

	wire.RegisterGob()
	srv, engine, err := deploy.BuildServer(cfg, name, dataDir)
	if err != nil {
		return "", nil, err
	}

	tcp := transport.NewTCPServer(srv)
	bound, err := tcp.Serve(addr)
	if err != nil {
		return "", nil, err
	}
	engine.Start()
	return bound, func() {
		engine.Stop()
		tcp.Close()
	}, nil
}
