package storage

import (
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"securestore/internal/cryptoutil"
	"securestore/internal/metrics"
	"securestore/internal/sessionctx"
	"securestore/internal/timestamp"
	"securestore/internal/wire"
)

func tempLog(t *testing.T) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "replica.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return l, path
}

func sampleWrite(item string, ts uint64) *wire.SignedWrite {
	return &wire.SignedWrite{
		Group: "g", Item: item,
		Stamp: timestamp.Stamp{Time: ts},
		Value: []byte("value"),
		Sig:   []byte("sig"),
	}
}

func sampleCtx(owner string, seq uint64) *sessionctx.Signed {
	return &sessionctx.Signed{
		Owner: owner, Group: "g", Seq: seq,
		Vector: sessionctx.Vector{"x": {Time: seq}},
		Sig:    []byte("sig"),
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	l, path := tempLog(t)
	recs := []Record{
		{Kind: KindWrite, Write: sampleWrite("x", 1)},
		{Kind: KindContext, Ctx: sampleCtx("alice", 1)},
		{Kind: KindWrite, Write: sampleWrite("y", 2)},
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	var got []Record
	if err := reopened.Replay(func(r Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("replayed %d records, want 3", len(got))
	}
	if got[0].Write.Item != "x" || got[1].Ctx.Owner != "alice" || got[2].Write.Stamp.Time != 2 {
		t.Fatalf("replayed records wrong: %+v", got)
	}
}

func TestReplayEmptyAndMissing(t *testing.T) {
	l, _ := tempLog(t)
	defer l.Close()
	calls := 0
	if err := l.Replay(func(Record) error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("replayed %d records from empty log", calls)
	}
}

func TestTornTailTolerated(t *testing.T) {
	l, path := tempLog(t)
	if err := l.Append(Record{Kind: KindWrite, Write: sampleWrite("x", 1)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: garbage partial line at the end.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"write","wri`); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	reopened, err := Open(path)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer reopened.Close()
	count := 0
	if err := reopened.Replay(func(Record) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("replayed %d records, want 1 (torn line skipped)", count)
	}
	// The log remains appendable after the torn tail.
	if err := reopened.Append(Record{Kind: KindWrite, Write: sampleWrite("y", 2)}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	l, _ := tempLog(t)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Kind: KindWrite, Write: sampleWrite("x", 1)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestNeedsCompactionAndCompact(t *testing.T) {
	l, path := tempLog(t)
	// 200 overwrites of one item: 200 records, 1 live slot.
	for i := 1; i <= 200; i++ {
		if err := l.Append(Record{Kind: KindWrite, Write: sampleWrite("x", uint64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if !l.NeedsCompaction() {
		t.Fatal("200 records / 1 live slot does not need compaction")
	}
	if err := l.Compact([]Record{{Kind: KindWrite, Write: sampleWrite("x", 200)}}); err != nil {
		t.Fatal(err)
	}
	records, live := l.Stats()
	if records != 1 || live != 1 {
		t.Fatalf("after compact: records=%d live=%d", records, live)
	}
	if l.NeedsCompaction() {
		t.Fatal("compacted log still needs compaction")
	}

	// Appends after compaction land in the new file.
	if err := l.Append(Record{Kind: KindWrite, Write: sampleWrite("y", 1)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	count := 0
	latest := uint64(0)
	if err := reopened.Replay(func(r Record) error {
		count++
		if r.Write != nil && r.Write.Item == "x" {
			latest = r.Write.Stamp.Time
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 2 || latest != 200 {
		t.Fatalf("after compact+append: count=%d latest=%d", count, latest)
	}
}

func TestScanCountsLiveSlots(t *testing.T) {
	l, path := tempLog(t)
	_ = l.Append(Record{Kind: KindWrite, Write: sampleWrite("x", 1)})
	_ = l.Append(Record{Kind: KindWrite, Write: sampleWrite("x", 2)})
	_ = l.Append(Record{Kind: KindWrite, Write: sampleWrite("y", 1)})
	_ = l.Append(Record{Kind: KindContext, Ctx: sampleCtx("alice", 1)})
	_ = l.Close()

	reopened, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	records, live := reopened.Stats()
	if records != 4 || live != 3 {
		t.Fatalf("records=%d live=%d, want 4/3", records, live)
	}
}

func TestRecordKeyUnset(t *testing.T) {
	if _, ok := (Record{Kind: KindWrite}).key(); ok {
		t.Fatal("write record without payload has a key")
	}
	if _, ok := (Record{Kind: "bogus"}).key(); ok {
		t.Fatal("bogus record has a key")
	}
}

// TestServerRecoveryEndToEnd is in internal/server (persist_test.go); this
// package only covers the log itself. The signature fields above are
// placeholders — recovery re-verification is exercised there with real
// signatures.
var _ = cryptoutil.Digest

func TestConcurrentAppends(t *testing.T) {
	l, path := tempLog(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rec := Record{Kind: KindWrite, Write: sampleWrite(
					"item-"+strconv.Itoa(g), uint64(i+1))}
				if err := l.Append(rec); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	count := 0
	if err := reopened.Replay(func(Record) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 400 {
		t.Fatalf("replayed %d records, want 400 (lost or torn writes)", count)
	}
}

// TestGroupCommitCoalesces pins the leader-flushes batching: while one
// committer holds the file lock, every concurrent Append piles into the
// queue, and releasing the lock commits them all in a single write+flush.
func TestGroupCommitCoalesces(t *testing.T) {
	l, _ := tempLog(t)
	m := &metrics.Counters{}
	l.Metrics = m

	// Stall the batch leader: the first appender enqueues itself, then
	// blocks on l.mu (held here) while the rest join the queue.
	l.mu.Lock()
	const writers = 8
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			errs[g] = l.Append(Record{Kind: KindWrite, Write: sampleWrite("item-"+strconv.Itoa(g), 1)})
		}(g)
	}
	for {
		l.qmu.Lock()
		queued := len(l.queue)
		l.qmu.Unlock()
		if queued == writers {
			break
		}
		time.Sleep(time.Millisecond)
	}
	l.mu.Unlock()
	wg.Wait()

	for g, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", g, err)
		}
	}
	if got := m.WALBatchRecords(); got != writers {
		t.Fatalf("committed %d records, want %d", got, writers)
	}
	if got := m.WALBatches(); got != 1 {
		t.Fatalf("%d records committed in %d batches, want 1", writers, got)
	}
	if records, live := l.Stats(); records != writers || live != writers {
		t.Fatalf("after batch: records=%d live=%d, want %d/%d", records, live, writers, writers)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashMidBatchRecovery simulates a crash that persists only a prefix
// of a group commit's single buffered write: every fully-persisted record
// replays, the torn final record is discarded, and — because Open truncates
// the torn bytes — records appended after recovery stay readable instead of
// concatenating onto the fragment.
func TestCrashMidBatchRecovery(t *testing.T) {
	l, path := tempLog(t)
	l.mu.Lock()
	const writers = 5
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_ = l.Append(Record{Kind: KindWrite, Write: sampleWrite("item-"+strconv.Itoa(g), 1)})
		}(g)
	}
	for {
		l.qmu.Lock()
		queued := len(l.queue)
		l.qmu.Unlock()
		if queued == writers {
			break
		}
		time.Sleep(time.Millisecond)
	}
	l.mu.Unlock()
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash: the kernel persisted the batch minus the last few bytes,
	// tearing the final record mid-line.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-10); err != nil {
		t.Fatal(err)
	}

	reopened, err := Open(path)
	if err != nil {
		t.Fatalf("open after crash mid-batch: %v", err)
	}
	defer reopened.Close()
	count := 0
	if err := reopened.Replay(func(Record) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != writers-1 {
		t.Fatalf("replayed %d records, want %d (flushed prefix only)", count, writers-1)
	}

	// Post-recovery appends land on a clean record boundary and survive
	// another replay.
	if err := reopened.Append(Record{Kind: KindWrite, Write: sampleWrite("fresh", 7)}); err != nil {
		t.Fatal(err)
	}
	found := false
	if err := reopened.Replay(func(r Record) error {
		if r.Write != nil && r.Write.Item == "fresh" && r.Write.Stamp.Time == 7 {
			found = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("record appended after torn-tail recovery did not replay")
	}
}

func TestReplayPropagatesCallbackError(t *testing.T) {
	l, _ := tempLog(t)
	defer l.Close()
	if err := l.Append(Record{Kind: KindWrite, Write: sampleWrite("x", 1)}); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("stop")
	if err := l.Replay(func(Record) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("replay error = %v, want sentinel", err)
	}
}

func TestCompactAfterClose(t *testing.T) {
	l, _ := tempLog(t)
	_ = l.Close()
	if err := l.Compact(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("compact after close = %v, want ErrClosed", err)
	}
}
