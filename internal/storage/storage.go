// Package storage gives replicas durable state: an append-only,
// JSON-lines write-ahead log holding every accepted signed write and
// stored client context, with compaction once dead records dominate. The
// paper positions the secure store as the *long-term* home of application
// state ("primarily responsible for safe keeping of data written to it"),
// so a replica must be able to crash and rejoin without losing what it
// acknowledged; recovery is replay, and every replayed record still
// carries its original client signature, so a tampered log is detected
// exactly like a tampered message.
package storage

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"securestore/internal/sessionctx"
	"securestore/internal/wire"
)

// ErrClosed reports use of a closed log.
var ErrClosed = errors.New("storage: log closed")

// RecordKind discriminates log records.
type RecordKind string

// Record kinds.
const (
	KindWrite   RecordKind = "write"
	KindContext RecordKind = "context"
)

// Record is one durable entry.
type Record struct {
	Kind RecordKind `json:"kind"`
	// Write is set for KindWrite records.
	Write *wire.SignedWrite `json:"write,omitempty"`
	// Ctx is set for KindContext records.
	Ctx *sessionctx.Signed `json:"ctx,omitempty"`
}

// key identifies the live-state slot a record occupies (newest wins).
func (r Record) key() (string, bool) {
	switch r.Kind {
	case KindWrite:
		if r.Write == nil {
			return "", false
		}
		return "w/" + r.Write.Group + "/" + r.Write.Item, true
	case KindContext:
		if r.Ctx == nil {
			return "", false
		}
		return "c/" + r.Ctx.Group + "/" + r.Ctx.Owner, true
	default:
		return "", false
	}
}

// Log is a durable append-only record log. Safe for concurrent use.
type Log struct {
	path string

	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	closed  bool
	records int // records in the file
	live    map[string]int
	// CompactThreshold triggers compaction when records exceed live
	// slots by this factor (default 4; minimum spacing of 64 records).
	CompactThreshold int
}

// Open opens (or creates) the log at path.
func Open(path string) (*Log, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("storage: mkdir: %w", err)
	}
	l := &Log{path: path, live: make(map[string]int), CompactThreshold: 4}
	if err := l.scan(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	return l, nil
}

// scan counts records and live slots without retaining contents.
func (l *Log) scan() error {
	f, err := os.Open(l.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: scan %s: %w", l.path, err)
	}
	defer f.Close()

	seen := make(map[string]int)
	records := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			// A torn final line from a crash mid-append is tolerated;
			// anything after it is discarded on the next compaction.
			continue
		}
		records++
		if k, ok := rec.key(); ok {
			seen[k]++
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("storage: scan %s: %w", l.path, err)
	}
	l.records = records
	for k := range seen {
		l.live[k] = 1
	}
	return nil
}

// Append durably adds a record.
func (l *Log) Append(rec Record) error {
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("storage: marshal record: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if _, err := l.w.Write(raw); err != nil {
		return fmt.Errorf("storage: append: %w", err)
	}
	if err := l.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("storage: append: %w", err)
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("storage: flush: %w", err)
	}
	l.records++
	if k, ok := rec.key(); ok {
		l.live[k] = 1
	}
	return nil
}

// Replay streams every decodable record to fn in append order.
func (l *Log) Replay(fn func(Record) error) error {
	l.mu.Lock()
	path := l.path
	l.mu.Unlock()

	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: replay open: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			continue // torn tail line
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("storage: replay: %w", err)
	}
	return nil
}

// NeedsCompaction reports whether dead records dominate the log.
func (l *Log) NeedsCompaction() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	threshold := l.CompactThreshold
	if threshold < 2 {
		threshold = 2
	}
	return l.records >= 64 && l.records > threshold*len(l.live)
}

// Compact rewrites the log atomically with only the supplied records —
// the caller's current live state.
func (l *Log) Compact(liveRecords []Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	tmp := l.path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: compact open: %w", err)
	}
	w := bufio.NewWriter(f)
	live := make(map[string]int)
	for _, rec := range liveRecords {
		raw, err := json.Marshal(rec)
		if err != nil {
			_ = f.Close()
			return fmt.Errorf("storage: compact marshal: %w", err)
		}
		if _, err := w.Write(append(raw, '\n')); err != nil {
			_ = f.Close()
			return fmt.Errorf("storage: compact write: %w", err)
		}
		if k, ok := rec.key(); ok {
			live[k] = 1
		}
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		return fmt.Errorf("storage: compact flush: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("storage: compact sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("storage: compact close: %w", err)
	}

	// Swap in the compacted file and reopen the append handle.
	_ = l.w.Flush()
	_ = l.f.Close()
	if err := os.Rename(tmp, l.path); err != nil {
		return fmt.Errorf("storage: compact rename: %w", err)
	}
	nf, err := os.OpenFile(l.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("storage: compact reopen: %w", err)
	}
	l.f = nf
	l.w = bufio.NewWriter(nf)
	l.records = len(liveRecords)
	l.live = live
	return nil
}

// Stats returns (total records, live slots).
func (l *Log) Stats() (records, live int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records, len(l.live)
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.w.Flush(); err != nil {
		_ = l.f.Close()
		return fmt.Errorf("storage: close flush: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		_ = l.f.Close()
		return fmt.Errorf("storage: close sync: %w", err)
	}
	return l.f.Close()
}
