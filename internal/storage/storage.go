// Package storage gives replicas durable state: an append-only,
// JSON-lines write-ahead log holding every accepted signed write and
// stored client context, with compaction once dead records dominate. The
// paper positions the secure store as the *long-term* home of application
// state ("primarily responsible for safe keeping of data written to it"),
// so a replica must be able to crash and rejoin without losing what it
// acknowledged; recovery is replay, and every replayed record still
// carries its original client signature, so a tampered log is detected
// exactly like a tampered message.
package storage

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"securestore/internal/metrics"
	"securestore/internal/sessionctx"
	"securestore/internal/wire"
)

// ErrClosed reports use of a closed log.
var ErrClosed = errors.New("storage: log closed")

// RecordKind discriminates log records.
type RecordKind string

// Record kinds.
const (
	KindWrite   RecordKind = "write"
	KindContext RecordKind = "context"
)

// Record is one durable entry.
type Record struct {
	Kind RecordKind `json:"kind"`
	// Write is set for KindWrite records.
	Write *wire.SignedWrite `json:"write,omitempty"`
	// Ctx is set for KindContext records.
	Ctx *sessionctx.Signed `json:"ctx,omitempty"`
}

// key identifies the live-state slot a record occupies (newest wins).
func (r Record) key() (string, bool) {
	switch r.Kind {
	case KindWrite:
		if r.Write == nil {
			return "", false
		}
		return "w/" + r.Write.Group + "/" + r.Write.Item, true
	case KindContext:
		if r.Ctx == nil {
			return "", false
		}
		return "c/" + r.Ctx.Group + "/" + r.Ctx.Owner, true
	default:
		return "", false
	}
}

// Log is a durable append-only record log. Safe for concurrent use.
//
// Concurrent Appends group-commit: callers enqueue their marshaled record
// and the first enqueuer of a batch becomes the leader, writing and
// flushing every queued record in one I/O while the followers wait on
// their result channels. Durability cost therefore amortizes across
// however many writers are in flight (leader-flushes pattern).
type Log struct {
	path string

	// Metrics, when non-nil, receives group-commit accounting
	// (AddWALBatch). Set it before the first Append.
	Metrics *metrics.Counters

	// CompactThreshold triggers compaction when records exceed live
	// slots by this factor (default 4; minimum spacing of 64 records).
	// Set it before the log is used concurrently.
	CompactThreshold int

	// qmu guards the group-commit queue. Never held across I/O.
	qmu   sync.Mutex
	queue []*appendWaiter

	// mu guards the file handle and record accounting; the batch leader
	// holds it for the whole batch write+flush.
	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	closed  bool
	records int // records in the file
	live    map[string]int

	// Lock-free mirrors of records/len(live) so NeedsCompaction (polled
	// on every mutating request) never waits behind an in-flight flush.
	recordsApprox atomic.Int64
	liveApprox    atomic.Int64
}

// appendWaiter is one queued record awaiting a group commit.
type appendWaiter struct {
	raw    []byte
	key    string
	hasKey bool
	done   chan error
}

// Open opens (or creates) the log at path.
func Open(path string) (*Log, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("storage: mkdir: %w", err)
	}
	l := &Log{path: path, live: make(map[string]int), CompactThreshold: 4}
	if err := l.scan(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	return l, nil
}

// scan counts records and live slots without retaining contents, and
// truncates a torn tail. A crash mid group-commit can persist any prefix
// of the batch's single buffered write, leaving a final record with no
// terminating newline; every *acknowledged* record has its newline (the
// flush that made it durable wrote it), so cutting the file back to the
// last newline drops only unacknowledged bytes — and keeps the append
// handle on a record boundary instead of concatenating the next record
// onto the torn fragment.
func (l *Log) scan() error {
	f, err := os.Open(l.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: scan %s: %w", l.path, err)
	}
	defer f.Close()

	seen := make(map[string]int)
	records := 0
	r := bufio.NewReaderSize(f, 1<<16)
	var validEnd int64 // offset just past the last newline-terminated line
	for {
		line, rerr := r.ReadBytes('\n')
		if len(line) > 0 && line[len(line)-1] == '\n' {
			validEnd += int64(len(line))
			trimmed := line[:len(line)-1]
			if len(trimmed) > 0 {
				var rec Record
				// A complete line that fails to decode is kept but not
				// counted: crashes only tear the file's suffix, so mid-log
				// damage is tampering, surfaced by signature checks at
				// replay rather than silently dropped here.
				if err := json.Unmarshal(trimmed, &rec); err == nil {
					records++
					if k, ok := rec.key(); ok {
						seen[k]++
					}
				}
			}
		}
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				break
			}
			return fmt.Errorf("storage: scan %s: %w", l.path, rerr)
		}
	}
	if info, err := f.Stat(); err == nil && info.Size() > validEnd {
		if err := os.Truncate(l.path, validEnd); err != nil {
			return fmt.Errorf("storage: truncate torn tail %s: %w", l.path, err)
		}
	}
	l.records = records
	for k := range seen {
		l.live[k] = 1
	}
	l.recordsApprox.Store(int64(l.records))
	l.liveApprox.Store(int64(len(l.live)))
	return nil
}

// Append durably adds a record. The record is marshaled by the caller's
// goroutine (outside every lock), then group-committed: whoever finds the
// queue empty becomes the batch leader and flushes every record queued by
// the time it holds the file lock, so concurrent appends share one
// write+flush. Append returns only once the record is durable (or the
// batch failed).
func (l *Log) Append(rec Record) error {
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("storage: marshal record: %w", err)
	}
	k, hasKey := rec.key()
	wtr := &appendWaiter{raw: raw, key: k, hasKey: hasKey, done: make(chan error, 1)}

	l.qmu.Lock()
	l.queue = append(l.queue, wtr)
	leader := len(l.queue) == 1
	l.qmu.Unlock()

	if !leader {
		return <-wtr.done
	}

	// Leader: take the file lock (possibly waiting out a previous batch's
	// flush, during which more followers pile into the queue), drain the
	// whole queue, and commit it in one write+flush. The drained batch
	// always starts with this leader's own record — followers only ever
	// join a non-empty queue.
	l.mu.Lock()
	l.qmu.Lock()
	batch := l.queue
	l.queue = nil
	l.qmu.Unlock()
	err = l.commitLocked(batch)
	l.mu.Unlock()

	for _, follower := range batch[1:] {
		follower.done <- err
	}
	return err
}

// commitLocked writes and flushes a drained batch; caller holds l.mu.
// The batch succeeds or fails as a unit: on error, nothing in it may be
// treated as durable (a torn tail is skipped at replay).
func (l *Log) commitLocked(batch []*appendWaiter) error {
	if l.closed {
		return ErrClosed
	}
	for _, wtr := range batch {
		if _, err := l.w.Write(wtr.raw); err != nil {
			return fmt.Errorf("storage: append: %w", err)
		}
		if err := l.w.WriteByte('\n'); err != nil {
			return fmt.Errorf("storage: append: %w", err)
		}
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("storage: flush: %w", err)
	}
	l.records += len(batch)
	for _, wtr := range batch {
		if wtr.hasKey {
			l.live[wtr.key] = 1
		}
	}
	l.recordsApprox.Store(int64(l.records))
	l.liveApprox.Store(int64(len(l.live)))
	l.Metrics.AddWALBatch(len(batch))
	return nil
}

// Replay streams every decodable record to fn in append order.
func (l *Log) Replay(fn func(Record) error) error {
	l.mu.Lock()
	path := l.path
	l.mu.Unlock()

	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: replay open: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			continue // torn tail line
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("storage: replay: %w", err)
	}
	return nil
}

// NeedsCompaction reports whether dead records dominate the log. It is
// lock-free (reading mirrors of the record/live counts) so hot paths can
// poll it without queueing behind an in-flight group commit.
func (l *Log) NeedsCompaction() bool {
	threshold := l.CompactThreshold
	if threshold < 2 {
		threshold = 2
	}
	records := l.recordsApprox.Load()
	live := l.liveApprox.Load()
	return records >= 64 && records > int64(threshold)*live
}

// Compact rewrites the log atomically with only the supplied records —
// the caller's current live state.
func (l *Log) Compact(liveRecords []Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	tmp := l.path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: compact open: %w", err)
	}
	w := bufio.NewWriter(f)
	live := make(map[string]int)
	for _, rec := range liveRecords {
		raw, err := json.Marshal(rec)
		if err != nil {
			_ = f.Close()
			return fmt.Errorf("storage: compact marshal: %w", err)
		}
		if _, err := w.Write(append(raw, '\n')); err != nil {
			_ = f.Close()
			return fmt.Errorf("storage: compact write: %w", err)
		}
		if k, ok := rec.key(); ok {
			live[k] = 1
		}
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		return fmt.Errorf("storage: compact flush: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("storage: compact sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("storage: compact close: %w", err)
	}

	// Swap in the compacted file and reopen the append handle.
	_ = l.w.Flush()
	_ = l.f.Close()
	if err := os.Rename(tmp, l.path); err != nil {
		return fmt.Errorf("storage: compact rename: %w", err)
	}
	nf, err := os.OpenFile(l.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("storage: compact reopen: %w", err)
	}
	l.f = nf
	l.w = bufio.NewWriter(nf)
	l.records = len(liveRecords)
	l.live = live
	l.recordsApprox.Store(int64(l.records))
	l.liveApprox.Store(int64(len(l.live)))
	return nil
}

// Stats returns (total records, live slots).
func (l *Log) Stats() (records, live int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records, len(l.live)
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.w.Flush(); err != nil {
		_ = l.f.Close()
		return fmt.Errorf("storage: close flush: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		_ = l.f.Close()
		return fmt.Errorf("storage: close sync: %w", err)
	}
	return l.f.Close()
}
