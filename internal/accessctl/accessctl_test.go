package accessctl

import (
	"errors"
	"testing"

	"securestore/internal/cryptoutil"
)

func newAuthority(t *testing.T) (*Authority, *cryptoutil.Keyring) {
	t.Helper()
	key := cryptoutil.DeterministicKeyPair("authority", "s")
	ring := cryptoutil.NewKeyring()
	ring.MustRegister(key.ID, key.Public)
	return NewAuthority(key), ring
}

func TestIssueVerify(t *testing.T) {
	auth, ring := newAuthority(t)
	tok := auth.Issue("alice", "g", ReadWrite, nil)
	if err := tok.Verify(ring, "alice", "g", ReadWrite, nil); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if err := tok.Verify(ring, "alice", "g", ReadOnly, nil); err != nil {
		t.Fatalf("read with rw token: %v", err)
	}
}

func TestRightsEnforcement(t *testing.T) {
	auth, ring := newAuthority(t)

	ro := auth.Issue("alice", "g", ReadOnly, nil)
	if err := ro.Verify(ring, "alice", "g", WriteOnly, nil); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("write with ro token = %v, want ErrUnauthorized", err)
	}
	wo := auth.Issue("alice", "g", WriteOnly, nil)
	if err := wo.Verify(ring, "alice", "g", ReadOnly, nil); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("read with wo token = %v, want ErrUnauthorized", err)
	}
}

func TestTokenBinding(t *testing.T) {
	auth, ring := newAuthority(t)
	tok := auth.Issue("alice", "g", ReadWrite, nil)

	if err := tok.Verify(ring, "bob", "g", ReadOnly, nil); !errors.Is(err, ErrTokenClient) {
		t.Fatalf("stolen token = %v, want ErrTokenClient", err)
	}
	if err := tok.Verify(ring, "alice", "other", ReadOnly, nil); !errors.Is(err, ErrTokenGroup) {
		t.Fatalf("cross-group token = %v, want ErrTokenGroup", err)
	}
}

func TestForgedTokenRejected(t *testing.T) {
	_, ring := newAuthority(t)
	mallory := cryptoutil.DeterministicKeyPair("mallory", "s")
	ring.MustRegister(mallory.ID, mallory.Public)

	forged := &Token{Issuer: "authority", Client: "mallory", Group: "g", Rights: ReadWrite, Serial: 1}
	forged.Sig = mallory.Sign(forged.SigningBytes(), nil)
	if err := forged.Verify(ring, "mallory", "g", ReadWrite, nil); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("forged token = %v, want ErrUnauthorized", err)
	}
}

func TestTamperedTokenRejected(t *testing.T) {
	auth, ring := newAuthority(t)
	tok := auth.Issue("alice", "g", ReadOnly, nil)
	tok.Rights = ReadWrite // escalate after signing
	if err := tok.Verify(ring, "alice", "g", WriteOnly, nil); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("tampered token = %v, want ErrUnauthorized", err)
	}
}

func TestNilToken(t *testing.T) {
	_, ring := newAuthority(t)
	var tok *Token
	if err := tok.Verify(ring, "alice", "g", ReadOnly, nil); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("nil token = %v, want ErrUnauthorized", err)
	}
}

func TestSerialsIncrease(t *testing.T) {
	auth, _ := newAuthority(t)
	a := auth.Issue("alice", "g", ReadOnly, nil)
	b := auth.Issue("alice", "g", ReadOnly, nil)
	if b.Serial <= a.Serial {
		t.Fatalf("serials not increasing: %d then %d", a.Serial, b.Serial)
	}
}

func TestRightsHelpers(t *testing.T) {
	if !ReadOnly.CanRead() || ReadOnly.CanWrite() {
		t.Fatal("ReadOnly rights wrong")
	}
	if WriteOnly.CanRead() || !WriteOnly.CanWrite() {
		t.Fatal("WriteOnly rights wrong")
	}
	if !ReadWrite.CanRead() || !ReadWrite.CanWrite() {
		t.Fatal("ReadWrite rights wrong")
	}
	for _, r := range []Rights{ReadOnly, WriteOnly, ReadWrite, Rights(99)} {
		if r.String() == "" {
			t.Fatal("empty rights string")
		}
	}
}
