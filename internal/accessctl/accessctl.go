// Package accessctl implements the authorization service the paper assumes
// (Section 4): "a non-faulty server does not accept a write or a read
// request from an unauthorized client. This can be effected by using
// authorization tokens issued to clients by some secure authorization
// service."
//
// An Authority issues signed capability Tokens granting a client read
// and/or write rights over one related group of data items. Servers hold
// the authority's public key (via the shared keyring) and verify tokens on
// every request.
package accessctl

import (
	"encoding/json"
	"errors"
	"fmt"

	"securestore/internal/cryptoutil"
	"securestore/internal/metrics"
)

// Rights is the set of operations a token grants.
type Rights int

// Right values. ReadWrite grants both.
const (
	ReadOnly Rights = iota + 1
	WriteOnly
	ReadWrite
)

// String renders the rights for logs.
func (r Rights) String() string {
	switch r {
	case ReadOnly:
		return "read"
	case WriteOnly:
		return "write"
	case ReadWrite:
		return "read+write"
	default:
		return fmt.Sprintf("rights(%d)", int(r))
	}
}

// CanRead reports whether the rights include reading.
func (r Rights) CanRead() bool { return r == ReadOnly || r == ReadWrite }

// CanWrite reports whether the rights include writing.
func (r Rights) CanWrite() bool { return r == WriteOnly || r == ReadWrite }

// Errors returned by token verification.
var (
	ErrUnauthorized = errors.New("accessctl: unauthorized")
	ErrTokenClient  = errors.New("accessctl: token issued to a different client")
	ErrTokenGroup   = errors.New("accessctl: token covers a different group")
)

// Token is a signed capability: authority Issuer grants Client the Rights
// over data-item group Group. Tokens are presented with every read and
// write request and verified by non-faulty servers.
type Token struct {
	Issuer string `json:"issuer"`
	Client string `json:"client"`
	Group  string `json:"group"`
	Rights Rights `json:"rights"`
	Serial uint64 `json:"serial"`
	Sig    []byte `json:"sig"`
}

// SigningBytes returns the canonical byte string the issuer signs.
func (t *Token) SigningBytes() []byte {
	clone := *t
	clone.Sig = nil
	raw, err := json.Marshal(&clone)
	if err != nil {
		panic(fmt.Sprintf("accessctl: marshal token: %v", err))
	}
	return raw
}

// Verify checks the token's signature and that it actually grants client
// the needed rights over group.
func (t *Token) Verify(ring *cryptoutil.Keyring, client, group string, need Rights, m *metrics.Counters) error {
	if t == nil {
		return fmt.Errorf("%w: no token presented", ErrUnauthorized)
	}
	if t.Client != client {
		return fmt.Errorf("%w: token for %q, request from %q", ErrTokenClient, t.Client, client)
	}
	if t.Group != group {
		return fmt.Errorf("%w: token for %q, request touches %q", ErrTokenGroup, t.Group, group)
	}
	if need.CanRead() && !t.Rights.CanRead() {
		return fmt.Errorf("%w: token grants %s, read required", ErrUnauthorized, t.Rights)
	}
	if need.CanWrite() && !t.Rights.CanWrite() {
		return fmt.Errorf("%w: token grants %s, write required", ErrUnauthorized, t.Rights)
	}
	if err := ring.Verify(t.Issuer, t.SigningBytes(), t.Sig, m); err != nil {
		return fmt.Errorf("%w: %v", ErrUnauthorized, err)
	}
	return nil
}

// Authority issues capability tokens. Its public key must be registered in
// every server's keyring under its ID.
type Authority struct {
	key    cryptoutil.KeyPair
	serial uint64
}

// NewAuthority creates an authority around the given key pair.
func NewAuthority(key cryptoutil.KeyPair) *Authority {
	return &Authority{key: key}
}

// ID returns the authority's principal identifier.
func (a *Authority) ID() string { return a.key.ID }

// PublicKey returns the authority's public key for keyring registration.
func (a *Authority) PublicKey() []byte { return a.key.Public }

// Issue mints a signed token granting client the rights over group.
func (a *Authority) Issue(client, group string, rights Rights, m *metrics.Counters) *Token {
	a.serial++
	t := &Token{
		Issuer: a.key.ID,
		Client: client,
		Group:  group,
		Rights: rights,
		Serial: a.serial,
	}
	t.Sig = a.key.Sign(t.SigningBytes(), m)
	return t
}
