package simnet

import (
	"errors"
	"testing"
	"time"
)

func TestDelayWithinProfile(t *testing.T) {
	p := Profile{Base: 5 * time.Millisecond, Jitter: 2 * time.Millisecond}
	n := New(p, 1)
	for i := 0; i < 200; i++ {
		d, err := n.Delay("a", "b")
		if err != nil {
			t.Fatal(err)
		}
		if d < p.Base || d > p.Base+p.Jitter {
			t.Fatalf("delay %v outside [%v, %v]", d, p.Base, p.Base+p.Jitter)
		}
	}
}

func TestInstantProfile(t *testing.T) {
	n := New(Instant, 1)
	d, err := n.Delay("a", "b")
	if err != nil || d != 0 {
		t.Fatalf("instant delay = %v, %v", d, err)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	p := Profile{Base: time.Millisecond, Jitter: time.Millisecond}
	a := New(p, 42)
	b := New(p, 42)
	for i := 0; i < 50; i++ {
		da, _ := a.Delay("x", "y")
		db, _ := b.Delay("x", "y")
		if da != db {
			t.Fatalf("iteration %d: %v != %v with equal seeds", i, da, db)
		}
	}
}

func TestDropRate(t *testing.T) {
	n := New(Profile{DropRate: 0.5}, 7)
	dropped := 0
	const total = 1000
	for i := 0; i < total; i++ {
		if _, err := n.Delay("a", "b"); errors.Is(err, ErrDropped) {
			dropped++
		}
	}
	if dropped < total/4 || dropped > 3*total/4 {
		t.Fatalf("dropped %d of %d with rate 0.5", dropped, total)
	}
	sent, lost := n.Stats()
	if sent != total || lost != int64(dropped) {
		t.Fatalf("stats = %d/%d, want %d/%d", sent, lost, total, dropped)
	}
}

func TestPerLinkOverride(t *testing.T) {
	n := New(Instant, 1)
	n.SetLink("a", "b", Profile{Base: 10 * time.Millisecond})
	d, err := n.Delay("a", "b")
	if err != nil || d != 10*time.Millisecond {
		t.Fatalf("a->b = %v, %v", d, err)
	}
	// Reverse direction keeps the default.
	d, err = n.Delay("b", "a")
	if err != nil || d != 0 {
		t.Fatalf("b->a = %v, %v", d, err)
	}
}

func TestPartitions(t *testing.T) {
	n := New(Instant, 1)
	n.Partition(1, "a", "b")
	n.Partition(2, "c")

	// Across non-zero partitions: blocked.
	if _, err := n.Delay("a", "c"); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("a->c = %v, want ErrPartitioned", err)
	}
	// Within a partition: fine.
	if _, err := n.Delay("a", "b"); err != nil {
		t.Fatalf("a->b = %v", err)
	}
	// Partition 0 talks to everyone.
	if _, err := n.Delay("d", "a"); err != nil {
		t.Fatalf("d->a = %v", err)
	}

	n.Heal()
	if _, err := n.Delay("a", "c"); err != nil {
		t.Fatalf("after heal a->c = %v", err)
	}
}

func TestSetDefault(t *testing.T) {
	n := New(Instant, 1)
	n.SetDefault(Profile{Base: 3 * time.Millisecond})
	d, err := n.Delay("a", "b")
	if err != nil || d != 3*time.Millisecond {
		t.Fatalf("delay = %v, %v", d, err)
	}
}

func TestResetStats(t *testing.T) {
	n := New(Instant, 1)
	_, _ = n.Delay("a", "b")
	n.ResetStats()
	sent, dropped := n.Stats()
	if sent != 0 || dropped != 0 {
		t.Fatalf("stats after reset = %d/%d", sent, dropped)
	}
}
