// Package simnet simulates the network connecting clients and servers so
// the paper's wide-area claims can be evaluated deterministically on one
// machine. It substitutes for the authors' planned deployment: protocol
// costs in Section 6 are message-count- and round-trip-dominated, so a
// latency/loss model reproduces the relevant behaviour (see DESIGN.md §3).
//
// A Network assigns every ordered pair of node names a one-way delay drawn
// from a configurable profile, can drop messages with a configurable
// probability, and can partition arbitrary node sets. All randomness comes
// from a seeded generator so experiments are reproducible.
package simnet

import (
	"errors"
	"math/rand"
	"sync"
	"time"
)

// ErrDropped reports a message lost by the simulated network.
var ErrDropped = errors.New("simnet: message dropped")

// ErrPartitioned reports a message blocked by a network partition.
var ErrPartitioned = errors.New("simnet: nodes partitioned")

// Profile describes one-way delay between a pair of nodes.
type Profile struct {
	// Base is the minimum one-way delay.
	Base time.Duration
	// Jitter is the maximum extra random delay added to Base.
	Jitter time.Duration
	// DropRate is the probability in [0,1) that a message is lost.
	DropRate float64
}

// Canned profiles. WAN latencies are scaled down ~5x from typical
// intercontinental RTTs so experiments finish quickly; the *ratios* between
// profiles — which drive the paper's comparisons — are preserved.
var (
	// Instant delivers immediately; useful for pure message-count
	// experiments where wall-clock time is irrelevant.
	Instant = Profile{}
	// LAN models a local cluster: sub-millisecond delays.
	LAN = Profile{Base: 200 * time.Microsecond, Jitter: 100 * time.Microsecond}
	// WAN models widely distributed replicas: the environment where the
	// paper argues O(n^2) protocols suffer.
	WAN = Profile{Base: 8 * time.Millisecond, Jitter: 2 * time.Millisecond}
)

// Network is a simulated network. The zero value is not usable; call New.
type Network struct {
	mu         sync.Mutex
	rng        *rand.Rand
	defaultP   Profile
	pairwise   map[pair]Profile
	partitions map[string]int // node -> partition id; nodes in different non-zero partitions cannot talk
	sent       int64
	dropped    int64
}

type pair struct{ from, to string }

// New creates a network whose links all use the given default profile.
// The seed makes delay and drop decisions reproducible.
func New(defaultProfile Profile, seed int64) *Network {
	return &Network{
		rng:        rand.New(rand.NewSource(seed)),
		defaultP:   defaultProfile,
		pairwise:   make(map[pair]Profile),
		partitions: make(map[string]int),
	}
}

// SetLink overrides the profile for messages from -> to (one direction).
func (n *Network) SetLink(from, to string, p Profile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.pairwise[pair{from, to}] = p
}

// SetDefault replaces the default profile for all links without overrides.
func (n *Network) SetDefault(p Profile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.defaultP = p
}

// SetDropRate changes only the loss probability of the default profile,
// keeping its delays — the knob fault-injection harnesses turn for lossy
// phases without disturbing the latency model.
func (n *Network) SetDropRate(rate float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.defaultP.DropRate = rate
}

// Partition places the named nodes in the numbered partition (id > 0).
// Nodes in different non-zero partitions cannot exchange messages; nodes in
// partition 0 (the default) can talk to everyone.
func (n *Network) Partition(id int, nodes ...string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, node := range nodes {
		n.partitions[node] = id
	}
}

// Heal returns every node to partition 0.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitions = make(map[string]int)
}

// Delay computes the fate of one message from -> to: either an error
// (dropped or partitioned) or the one-way delay to apply. It does not
// sleep; transports decide how to apply the delay.
func (n *Network) Delay(from, to string) (time.Duration, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.sent++
	pf, pt := n.partitions[from], n.partitions[to]
	if pf != pt && pf != 0 && pt != 0 {
		n.dropped++
		return 0, ErrPartitioned
	}
	p, ok := n.pairwise[pair{from, to}]
	if !ok {
		p = n.defaultP
	}
	if p.DropRate > 0 && n.rng.Float64() < p.DropRate {
		n.dropped++
		return 0, ErrDropped
	}
	d := p.Base
	if p.Jitter > 0 {
		d += time.Duration(n.rng.Int63n(int64(p.Jitter) + 1))
	}
	return d, nil
}

// Stats returns (messages attempted, messages dropped or partitioned).
func (n *Network) Stats() (sent, dropped int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sent, n.dropped
}

// ResetStats zeroes the message counters.
func (n *Network) ResetStats() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.sent, n.dropped = 0, 0
}
