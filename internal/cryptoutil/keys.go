package cryptoutil

// keys.go derives deterministic keyrings and implements signing and
// verification (see doc.go for the package overview).

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"securestore/internal/metrics"
)

// Errors returned by this package.
var (
	ErrUnknownPrincipal = errors.New("cryptoutil: unknown principal")
	ErrBadSignature     = errors.New("cryptoutil: signature verification failed")
	ErrDuplicateKey     = errors.New("cryptoutil: principal already registered")
)

// KeyPair holds a principal's Ed25519 key pair together with its identity.
type KeyPair struct {
	ID      string
	Public  ed25519.PublicKey
	Private ed25519.PrivateKey
}

// NewKeyPair generates a fresh random key pair for the named principal.
func NewKeyPair(id string) (KeyPair, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return KeyPair{}, fmt.Errorf("generate key for %q: %w", id, err)
	}
	return KeyPair{ID: id, Public: pub, Private: priv}, nil
}

// DeterministicKeyPair derives a key pair from the principal's name and a
// seed string. It is intended for tests and reproducible experiments; real
// deployments must use NewKeyPair.
func DeterministicKeyPair(id, seed string) KeyPair {
	sum := sha256.Sum256([]byte("securestore-key:" + seed + ":" + id))
	priv := ed25519.NewKeyFromSeed(sum[:])
	pub, ok := priv.Public().(ed25519.PublicKey)
	if !ok {
		// ed25519 private keys always yield ed25519 public keys; this is
		// unreachable but keeps the type assertion checked.
		panic("cryptoutil: ed25519 public key type mismatch")
	}
	return KeyPair{ID: id, Public: pub, Private: priv}
}

// Sign produces an Ed25519 signature over the SHA-256 digest of data,
// matching the paper's "signed digest" construction {d(data)}_{K^-1}.
func (k KeyPair) Sign(data []byte, m *metrics.Counters) []byte {
	m.AddSignature()
	digest := sha256.Sum256(data)
	return ed25519.Sign(k.Private, digest[:])
}

// Keyring maps principal identifiers to their well-known public keys. It is
// safe for concurrent use. A Keyring stands in for the paper's assumption
// that "clients and servers own a secure private key for which the public
// key is well known".
type Keyring struct {
	mu    sync.RWMutex
	keys  map[string]ed25519.PublicKey
	cache *VerifyCache
}

// NewKeyring returns an empty keyring.
func NewKeyring() *Keyring {
	return &Keyring{keys: make(map[string]ed25519.PublicKey)}
}

// EnableVerifyCache attaches a bounded LRU of successful verifications to
// the keyring: Verify returns immediately when the exact (data, signer,
// signature) triple has verified before, so repeated deliveries of one
// signed message — gossip re-forwarding, multi-writer b+1-matching reads,
// context re-reads — cost one Ed25519 operation total. Safe because the
// key binds all three inputs: a forged or altered message differs in at
// least one and can never hit. Cache hits and misses are reported on the
// metrics passed to Verify.
func (r *Keyring) EnableVerifyCache(capacity int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cache = NewVerifyCache(capacity)
}

// verifyCache returns the attached cache (nil when disabled).
func (r *Keyring) verifyCache() *VerifyCache {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.cache
}

// Register installs a principal's public key. Registering the same principal
// twice with a different key is an error (key changes are out of scope for
// the paper, which does not address key management).
func (r *Keyring) Register(id string, pub ed25519.PublicKey) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.keys[id]; ok {
		if bytes.Equal(existing, pub) {
			return nil
		}
		return fmt.Errorf("%w: %q", ErrDuplicateKey, id)
	}
	r.keys[id] = append(ed25519.PublicKey(nil), pub...)
	return nil
}

// MustRegister is Register for initialization paths where a duplicate key
// indicates a programming error.
func (r *Keyring) MustRegister(id string, pub ed25519.PublicKey) {
	if err := r.Register(id, pub); err != nil {
		panic(err)
	}
}

// Lookup returns the public key of the named principal.
func (r *Keyring) Lookup(id string) (ed25519.PublicKey, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	pub, ok := r.keys[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPrincipal, id)
	}
	return pub, nil
}

// Principals returns the sorted identifiers of all registered principals.
func (r *Keyring) Principals() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := make([]string, 0, len(r.keys))
	for id := range r.keys {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Verify checks sig over the SHA-256 digest of data against the registered
// public key of principal id. With a verification cache enabled (see
// EnableVerifyCache), a triple that verified before is accepted without
// repeating the Ed25519 operation; only real verifications count toward
// the metrics' verification total.
func (r *Keyring) Verify(id string, data, sig []byte, m *metrics.Counters) error {
	pub, err := r.Lookup(id)
	if err != nil {
		return err
	}
	cache := r.verifyCache()
	var key vcacheKey
	if cache != nil {
		key = cache.key(id, data, sig)
		if cache.seen(key) {
			m.AddVerifyCacheHit()
			return nil
		}
		m.AddVerifyCacheMiss()
	}
	m.AddVerification()
	digest := sha256.Sum256(data)
	if !ed25519.Verify(pub, digest[:], sig) {
		return fmt.Errorf("%w: principal %q", ErrBadSignature, id)
	}
	if cache != nil {
		cache.record(key)
	}
	return nil
}

// Digest returns the SHA-256 digest of data. It is the d(v) of the paper's
// notation, used both in signatures and in multi-writer timestamps.
func Digest(data []byte) [32]byte {
	return sha256.Sum256(data)
}

// DigestHex returns the hex encoding of the SHA-256 digest of data.
func DigestHex(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// RandomBytes returns n cryptographically random bytes.
func RandomBytes(n int) ([]byte, error) {
	buf := make([]byte, n)
	if _, err := io.ReadFull(rand.Reader, buf); err != nil {
		return nil, fmt.Errorf("read random bytes: %w", err)
	}
	return buf, nil
}
