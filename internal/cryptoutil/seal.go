package cryptoutil

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"

	"securestore/internal/metrics"
)

// ErrSealTooShort reports a ciphertext shorter than its nonce prefix.
var ErrSealTooShort = errors.New("cryptoutil: sealed value too short")

// DataKey is a 256-bit symmetric key used for client-side confidentiality.
// Servers never see data keys (paper Section 5.2): owners encrypt values
// before writing and share the key out of band with authorized readers.
type DataKey [32]byte

// NewDataKey generates a random data key.
func NewDataKey() (DataKey, error) {
	var k DataKey
	if _, err := io.ReadFull(rand.Reader, k[:]); err != nil {
		return DataKey{}, fmt.Errorf("generate data key: %w", err)
	}
	return k, nil
}

// DeriveDataKey derives a data key from a passphrase and context label.
// Intended for tests and examples; production users should prefer
// NewDataKey plus a real key-distribution mechanism (see internal/keydist).
func DeriveDataKey(passphrase, label string) DataKey {
	return DataKey(sha256.Sum256([]byte("securestore-datakey:" + label + ":" + passphrase)))
}

// Seal encrypts plaintext under the key with AES-256-GCM, binding the
// additional authenticated data aad (typically the item uid, so a sealed
// value cannot be replayed under a different item). The nonce is prepended
// to the ciphertext.
func (k DataKey) Seal(plaintext, aad []byte, m *metrics.Counters) ([]byte, error) {
	gcm, err := k.aead()
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, fmt.Errorf("generate nonce: %w", err)
	}
	m.AddEncryption()
	return gcm.Seal(nonce, nonce, plaintext, aad), nil
}

// Open decrypts a value produced by Seal, checking integrity and the aad.
func (k DataKey) Open(sealed, aad []byte, m *metrics.Counters) ([]byte, error) {
	gcm, err := k.aead()
	if err != nil {
		return nil, err
	}
	if len(sealed) < gcm.NonceSize() {
		return nil, ErrSealTooShort
	}
	m.AddDecryption()
	plaintext, err := gcm.Open(nil, sealed[:gcm.NonceSize()], sealed[gcm.NonceSize():], aad)
	if err != nil {
		return nil, fmt.Errorf("open sealed value: %w", err)
	}
	return plaintext, nil
}

func (k DataKey) aead() (cipher.AEAD, error) {
	block, err := aes.NewCipher(k[:])
	if err != nil {
		return nil, fmt.Errorf("new cipher: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("new gcm: %w", err)
	}
	return gcm, nil
}
