package cryptoutil

import (
	"errors"
	"fmt"
	"testing"

	"securestore/internal/metrics"
)

func cachedRing(t *testing.T, capacity int) (*Keyring, KeyPair) {
	t.Helper()
	ring := NewKeyring()
	ring.EnableVerifyCache(capacity)
	key := DeterministicKeyPair("alice", "vcache")
	ring.MustRegister(key.ID, key.Public)
	return ring, key
}

func TestVerifyCacheHitSkipsVerification(t *testing.T) {
	ring, key := cachedRing(t, 8)
	m := &metrics.Counters{}
	data := []byte("payload")
	sig := key.Sign(data, m)

	if err := ring.Verify(key.ID, data, sig, m); err != nil {
		t.Fatal(err)
	}
	if err := ring.Verify(key.ID, data, sig, m); err != nil {
		t.Fatal(err)
	}
	if got := m.Verifications(); got != 1 {
		t.Fatalf("real verifications = %d, want 1 (second call should hit the cache)", got)
	}
	if hits, misses := m.VerifyCacheHits(), m.VerifyCacheMisses(); hits != 1 || misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", hits, misses)
	}
}

// TestVerifyCacheRejectsForgeries is the safety property of DESIGN.md
// §7.2: the cache key binds (digest(data), signer, digest(sig)), so a
// message differing in any of the three can never ride a cached success.
func TestVerifyCacheRejectsForgeries(t *testing.T) {
	ring, key := cachedRing(t, 8)
	mallory := DeterministicKeyPair("mallory", "vcache")
	ring.MustRegister(mallory.ID, mallory.Public)
	m := &metrics.Counters{}
	data := []byte("payload")
	sig := key.Sign(data, m)
	// Warm the cache with the genuine triple.
	if err := ring.Verify(key.ID, data, sig, m); err != nil {
		t.Fatal(err)
	}

	// Altered data under the cached signature.
	if err := ring.Verify(key.ID, []byte("payloae"), sig, m); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered data = %v, want ErrBadSignature", err)
	}
	// Same data and signature claimed by a different (registered) signer.
	if err := ring.Verify(mallory.ID, data, sig, m); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("wrong signer = %v, want ErrBadSignature", err)
	}
	// Flipped signature bit over the cached data.
	badSig := append([]byte(nil), sig...)
	badSig[0] ^= 1
	if err := ring.Verify(key.ID, data, badSig, m); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered signature = %v, want ErrBadSignature", err)
	}
	// Failures must not be cached: the same forgery fails again.
	if err := ring.Verify(key.ID, data, badSig, m); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("repeated forgery = %v, want ErrBadSignature", err)
	}
	// And the genuine triple still hits.
	hitsBefore := m.VerifyCacheHits()
	if err := ring.Verify(key.ID, data, sig, m); err != nil {
		t.Fatal(err)
	}
	if m.VerifyCacheHits() != hitsBefore+1 {
		t.Fatal("genuine triple no longer hits after forgery attempts")
	}
}

func TestVerifyCacheEvictsLRU(t *testing.T) {
	ring, key := cachedRing(t, 4)
	m := &metrics.Counters{}
	payload := func(i int) []byte { return []byte(fmt.Sprintf("payload-%d", i)) }
	sigs := make(map[int][]byte)
	for i := 0; i < 6; i++ {
		sigs[i] = key.Sign(payload(i), m)
		if err := ring.Verify(key.ID, payload(i), sigs[i], m); err != nil {
			t.Fatal(err)
		}
	}
	if n := ring.verifyCache().Len(); n != 4 {
		t.Fatalf("cache holds %d entries, want capacity 4", n)
	}
	// 0 and 1 were evicted: verifying them again is a miss (a real
	// verification), not a hit.
	verifs := m.Verifications()
	if err := ring.Verify(key.ID, payload(0), sigs[0], m); err != nil {
		t.Fatal(err)
	}
	if m.Verifications() != verifs+1 {
		t.Fatal("evicted entry still hit the cache")
	}
	// 5 is fresh: still a hit.
	verifs = m.Verifications()
	if err := ring.Verify(key.ID, payload(5), sigs[5], m); err != nil {
		t.Fatal(err)
	}
	if m.Verifications() != verifs {
		t.Fatal("recent entry missed the cache")
	}
}

func TestVerifyCacheConcurrentUse(t *testing.T) {
	ring, key := cachedRing(t, 32)
	data := []byte("shared")
	sig := key.Sign(data, nil)
	done := make(chan error, 16)
	for g := 0; g < 16; g++ {
		go func() {
			m := &metrics.Counters{}
			for i := 0; i < 100; i++ {
				if err := ring.Verify(key.ID, data, sig, m); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 16; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
