package cryptoutil

import (
	"container/list"
	"crypto/sha256"
	"sync"
)

// vcacheKey identifies one successful verification. It binds all three
// inputs — the digest of the signed data, the signer's identity, and the
// digest of the signature bytes — so a cache hit proves the *exact* triple
// was verified before. A forged message necessarily differs in at least one
// component and therefore can never hit.
type vcacheKey struct {
	data   [32]byte
	signer string
	sig    [32]byte
}

// VerifyCache is a bounded LRU of successful signature verifications. The
// secure store re-verifies the same signed write many times — gossip
// re-delivery, multi-writer reads collecting b+1 matching copies, context
// re-reads — and Ed25519 verification dominates those hot paths. The cache
// collapses each distinct signed message to one verification.
//
// Only *successful* verifications are cached: failures stay cheap to retry
// and a negative entry would let a transient lookup error mask a later
// valid registration. The cache is safe for concurrent use.
type VerifyCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[vcacheKey]*list.Element
	order    *list.List // front = most recently used; values are vcacheKey
}

// NewVerifyCache creates a cache holding at most capacity verified triples
// (minimum 1).
func NewVerifyCache(capacity int) *VerifyCache {
	if capacity < 1 {
		capacity = 1
	}
	return &VerifyCache{
		capacity: capacity,
		entries:  make(map[vcacheKey]*list.Element, capacity),
		order:    list.New(),
	}
}

// key derives the cache key for a verification triple. The data and sig
// are digested so entries are fixed-size regardless of message size.
func (c *VerifyCache) key(signer string, data, sig []byte) vcacheKey {
	return vcacheKey{data: sha256.Sum256(data), signer: signer, sig: sha256.Sum256(sig)}
}

// seen reports whether the triple was verified before, refreshing its
// recency on a hit.
func (c *VerifyCache) seen(k vcacheKey) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		return false
	}
	c.order.MoveToFront(el)
	return true
}

// record remembers a successful verification, evicting the least recently
// used entry when full.
func (c *VerifyCache) record(k vcacheKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.entries[k] = c.order.PushFront(k)
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(vcacheKey))
	}
}

// Len returns the number of cached verifications.
func (c *VerifyCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
