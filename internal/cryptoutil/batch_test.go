package cryptoutil

import (
	"fmt"
	"testing"

	"securestore/internal/metrics"
)

// batchFixture builds a keyring with n deterministic principals and one
// signed message each.
func batchFixture(t testing.TB, n int) (*Keyring, []KeyPair, []BatchItem) {
	t.Helper()
	ring := NewKeyring()
	pairs := make([]KeyPair, n)
	items := make([]BatchItem, n)
	for i := range pairs {
		pairs[i] = DeterministicKeyPair(fmt.Sprintf("p%02d", i), "batch-test")
		ring.MustRegister(pairs[i].ID, pairs[i].Public)
		data := []byte(fmt.Sprintf("message %d for batch verification", i))
		items[i] = BatchItem{
			Signer: pairs[i].ID,
			Data:   data,
			Sig:    pairs[i].Sign(data, nil),
		}
	}
	return ring, pairs, items
}

func TestVerifyBatchAllGood(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 32} {
		ring, _, items := batchFixture(t, n)
		m := &metrics.Counters{}
		errs := ring.VerifyBatch(items, m)
		for i, err := range errs {
			if err != nil {
				t.Fatalf("n=%d item %d: unexpected error %v", n, i, err)
			}
		}
		if got := m.Verifications(); got != int64(n) {
			t.Fatalf("n=%d: verifications = %d, want %d", n, got, n)
		}
		if n >= 2 && m.VerifyBatched() != int64(n) {
			t.Fatalf("n=%d: batched = %d, want all %d via one batch", n, m.VerifyBatched(), n)
		}
		if n == 1 && m.VerifyBatched() != 0 {
			t.Fatalf("singleton must use the direct path, batched = %d", m.VerifyBatched())
		}
	}
}

// TestVerifyBatchBisection is the satellite's convergence test: N-1 good
// signatures plus one forged one must converge to exactly one rejection,
// with every other item admitted, regardless of where the forgery sits.
func TestVerifyBatchBisection(t *testing.T) {
	const n = 9
	for bad := 0; bad < n; bad++ {
		ring, _, items := batchFixture(t, n)
		forged := append([]byte(nil), items[bad].Sig...)
		forged[5] ^= 0x40
		items[bad].Sig = forged
		m := &metrics.Counters{}
		errs := ring.VerifyBatch(items, m)
		for i, err := range errs {
			if i == bad && err == nil {
				t.Fatalf("bad=%d: forged item admitted", bad)
			}
			if i != bad && err != nil {
				t.Fatalf("bad=%d: good item %d rejected: %v", bad, i, err)
			}
		}
	}
}

func TestVerifyBatchUnknownPrincipal(t *testing.T) {
	ring, _, items := batchFixture(t, 4)
	items[2].Signer = "nobody"
	errs := ring.VerifyBatch(items, nil)
	for i, err := range errs {
		if i == 2 {
			if err == nil {
				t.Fatal("unknown principal admitted")
			}
			continue
		}
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
	}
}

// TestVerifyBatchMatchesVerify cross-checks per-item verdicts against the
// unbatched Keyring.Verify on a mix of good, forged, truncated and
// wrong-signer items.
func TestVerifyBatchMatchesVerify(t *testing.T) {
	ring, pairs, items := batchFixture(t, 8)
	// forged signature
	items[1].Sig = append([]byte(nil), items[1].Sig...)
	items[1].Sig[0] ^= 1
	// signature by the wrong principal
	items[3].Sig = pairs[4].Sign(items[3].Data, nil)
	// truncated signature
	items[5].Sig = items[5].Sig[:40]
	// altered data
	items[6].Data = append([]byte(nil), items[6].Data...)
	items[6].Data[0] ^= 1

	got := ring.VerifyBatch(items, nil)
	for i, it := range items {
		want := ring.Verify(it.Signer, it.Data, it.Sig, nil)
		if (got[i] == nil) != (want == nil) {
			t.Fatalf("item %d: batch says %v, Verify says %v", i, got[i], want)
		}
	}
}

// TestVerifyBatchPrimesCache: a batch-verified signature must hit the
// LRU on a later unbatched Verify, and cached triples must satisfy a
// batch without crypto.
func TestVerifyBatchPrimesCache(t *testing.T) {
	ring, _, items := batchFixture(t, 6)
	ring.EnableVerifyCache(64)
	m := &metrics.Counters{}
	if errs := ring.VerifyBatch(items, m); errs[0] != nil {
		t.Fatal(errs[0])
	}
	if m.VerifyCacheHits() != 0 {
		t.Fatalf("cold batch hit the cache %d times", m.VerifyCacheHits())
	}
	base := m.Verifications()
	// Unbatched re-verify: all hits, no new crypto.
	for _, it := range items {
		if err := ring.Verify(it.Signer, it.Data, it.Sig, m); err != nil {
			t.Fatal(err)
		}
	}
	if m.Verifications() != base {
		t.Fatalf("cache not primed: verifications %d -> %d", base, m.Verifications())
	}
	// Batched re-verify: consulted first, also no new crypto.
	if errs := ring.VerifyBatch(items, m); errs[0] != nil {
		t.Fatal(errs[0])
	}
	if m.Verifications() != base {
		t.Fatalf("batch ignored the cache: verifications %d -> %d", base, m.Verifications())
	}
}

// TestVerifyBatchDuplicates: the same signed message appearing twice in
// one batch must verify in both slots.
func TestVerifyBatchDuplicates(t *testing.T) {
	ring, _, items := batchFixture(t, 3)
	dup := append(items, items[0], items[1])
	for i, err := range ring.VerifyBatch(dup, nil) {
		if err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
	}
}

// FuzzBatchVerify mixes valid, corrupted and duplicated signatures and
// asserts VerifyBatch's per-item verdicts always agree with the
// unbatched Verify (with caching disabled so every path is crypto).
func FuzzBatchVerify(f *testing.F) {
	f.Add(uint8(3), uint8(0b101), []byte("seed data"))
	f.Add(uint8(8), uint8(0), []byte("all good"))
	f.Add(uint8(1), uint8(1), []byte{0})
	f.Add(uint8(16), uint8(0xff), []byte("every slot corrupted"))
	f.Fuzz(func(t *testing.T, n, corrupt uint8, data []byte) {
		count := int(n%16) + 1
		ring, pairs, _ := batchFixture(t, count)
		items := make([]BatchItem, count)
		for i := range items {
			d := append([]byte(fmt.Sprintf("%d:", i)), data...)
			items[i] = BatchItem{Signer: pairs[i].ID, Data: d, Sig: pairs[i].Sign(d, nil)}
			switch {
			case corrupt&(1<<(i%8)) != 0 && i%3 == 0:
				items[i].Sig = append([]byte(nil), items[i].Sig...)
				items[i].Sig[int(corrupt)%64] ^= 0x80
			case corrupt&(1<<(i%8)) != 0 && i%3 == 1 && i > 0:
				items[i] = items[i-1] // duplicate of the previous slot
			case corrupt&(1<<(i%8)) != 0:
				items[i].Sig = items[i].Sig[:32] // truncated
			}
		}
		got := ring.VerifyBatch(items, nil)
		if len(got) != count {
			t.Fatalf("got %d verdicts for %d items", len(got), count)
		}
		for i, it := range items {
			want := ring.Verify(it.Signer, it.Data, it.Sig, nil)
			if (got[i] == nil) != (want == nil) {
				t.Fatalf("item %d: batch %v, unbatched %v", i, got[i], want)
			}
		}
	})
}

// BenchmarkVerifyBatch measures the per-signature cost of batch sizes 1,
// 8 and 64 against the unbatched baseline.
func BenchmarkVerifyBatch(b *testing.B) {
	for _, n := range []int{1, 8, 64} {
		ring, _, items := batchFixture(b, n)
		b.Run(fmt.Sprintf("batch%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				errs := ring.VerifyBatch(items, nil)
				if errs[0] != nil {
					b.Fatal(errs[0])
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/sig")
		})
	}
	ring, _, items := batchFixture(b, 1)
	b.Run("unbatched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := ring.Verify(items[0].Signer, items[0].Data, items[0].Sig, nil); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/sig")
	})
}
