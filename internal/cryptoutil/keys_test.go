package cryptoutil

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"securestore/internal/metrics"
)

func TestSignVerifyRoundTrip(t *testing.T) {
	key := DeterministicKeyPair("alice", "seed")
	ring := NewKeyring()
	ring.MustRegister("alice", key.Public)

	m := &metrics.Counters{}
	data := []byte("payload")
	sig := key.Sign(data, m)
	if err := ring.Verify("alice", data, sig, m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if m.Signatures() != 1 || m.Verifications() != 1 {
		t.Fatalf("metrics sig=%d verify=%d, want 1/1", m.Signatures(), m.Verifications())
	}
}

func TestVerifyRejectsTamperedData(t *testing.T) {
	key := DeterministicKeyPair("alice", "seed")
	ring := NewKeyring()
	ring.MustRegister("alice", key.Public)

	sig := key.Sign([]byte("payload"), nil)
	if err := ring.Verify("alice", []byte("Payload"), sig, nil); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("verify tampered = %v, want ErrBadSignature", err)
	}
}

func TestVerifyRejectsWrongSigner(t *testing.T) {
	alice := DeterministicKeyPair("alice", "seed")
	bob := DeterministicKeyPair("bob", "seed")
	ring := NewKeyring()
	ring.MustRegister("alice", alice.Public)
	ring.MustRegister("bob", bob.Public)

	sig := bob.Sign([]byte("payload"), nil)
	if err := ring.Verify("alice", []byte("payload"), sig, nil); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("verify wrong signer = %v, want ErrBadSignature", err)
	}
}

func TestVerifyUnknownPrincipal(t *testing.T) {
	ring := NewKeyring()
	if err := ring.Verify("ghost", []byte("x"), []byte("sig"), nil); !errors.Is(err, ErrUnknownPrincipal) {
		t.Fatalf("verify unknown = %v, want ErrUnknownPrincipal", err)
	}
}

func TestKeyringDuplicateRegistration(t *testing.T) {
	alice := DeterministicKeyPair("alice", "seed")
	mallory := DeterministicKeyPair("alice", "other-seed")
	ring := NewKeyring()
	ring.MustRegister("alice", alice.Public)

	// Same key again: idempotent.
	if err := ring.Register("alice", alice.Public); err != nil {
		t.Fatalf("re-register same key: %v", err)
	}
	// Different key for the same principal: rejected (key substitution).
	if err := ring.Register("alice", mallory.Public); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("register substituted key = %v, want ErrDuplicateKey", err)
	}
}

func TestDeterministicKeyPairStable(t *testing.T) {
	a := DeterministicKeyPair("alice", "seed")
	b := DeterministicKeyPair("alice", "seed")
	if !bytes.Equal(a.Private, b.Private) {
		t.Fatal("deterministic keys differ across derivations")
	}
	c := DeterministicKeyPair("alice", "seed2")
	if bytes.Equal(a.Private, c.Private) {
		t.Fatal("different seeds produced the same key")
	}
	d := DeterministicKeyPair("bob", "seed")
	if bytes.Equal(a.Private, d.Private) {
		t.Fatal("different principals produced the same key")
	}
}

func TestNewKeyPairUnique(t *testing.T) {
	a, err := NewKeyPair("x")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewKeyPair("x")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Private, b.Private) {
		t.Fatal("two random key pairs are identical")
	}
}

func TestPrincipalsSorted(t *testing.T) {
	ring := NewKeyring()
	for _, id := range []string{"zoe", "alice", "mid"} {
		ring.MustRegister(id, DeterministicKeyPair(id, "s").Public)
	}
	got := ring.Principals()
	want := []string{"alice", "mid", "zoe"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("principals = %v, want %v", got, want)
		}
	}
}

func TestDigestProperties(t *testing.T) {
	// Determinism and input sensitivity, property-based.
	deterministic := func(data []byte) bool {
		return Digest(data) == Digest(data)
	}
	if err := quick.Check(deterministic, nil); err != nil {
		t.Error(err)
	}
	sensitive := func(data []byte) bool {
		altered := append(append([]byte(nil), data...), 0x01)
		return Digest(data) != Digest(altered)
	}
	if err := quick.Check(sensitive, nil); err != nil {
		t.Error(err)
	}
}

func TestSignVerifyPropertyAnyPayload(t *testing.T) {
	key := DeterministicKeyPair("p", "s")
	ring := NewKeyring()
	ring.MustRegister("p", key.Public)
	prop := func(data []byte) bool {
		sig := key.Sign(data, nil)
		return ring.Verify("p", data, sig, nil) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRandomBytesLengthAndVariety(t *testing.T) {
	a, err := RandomBytes(32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomBytes(32)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 32 || len(b) != 32 {
		t.Fatalf("lengths %d/%d, want 32", len(a), len(b))
	}
	if bytes.Equal(a, b) {
		t.Fatal("two random draws identical")
	}
}

func TestDigestHexLength(t *testing.T) {
	if got := DigestHex([]byte("x")); len(got) != 64 {
		t.Fatalf("hex digest length = %d, want 64", len(got))
	}
}
