package cryptoutil

import (
	"bytes"
	"testing"
	"testing/quick"

	"securestore/internal/metrics"
)

func TestSealOpenRoundTrip(t *testing.T) {
	key := DeriveDataKey("pass", "label")
	m := &metrics.Counters{}
	sealed, err := key.Seal([]byte("secret"), []byte("item"), m)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := key.Open(sealed, []byte("item"), m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, []byte("secret")) {
		t.Fatalf("open = %q, want secret", plain)
	}
	snap := m.Snapshot()
	if snap.Encryptions != 1 || snap.Decryptions != 1 {
		t.Fatalf("metrics enc=%d dec=%d, want 1/1", snap.Encryptions, snap.Decryptions)
	}
}

func TestOpenRejectsWrongKey(t *testing.T) {
	a := DeriveDataKey("pass-a", "l")
	b := DeriveDataKey("pass-b", "l")
	sealed, err := a.Seal([]byte("secret"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Open(sealed, nil, nil); err == nil {
		t.Fatal("wrong key decrypted successfully")
	}
}

func TestOpenRejectsWrongAAD(t *testing.T) {
	key := DeriveDataKey("pass", "l")
	sealed, err := key.Seal([]byte("secret"), []byte("item-a"), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Replaying a ciphertext under a different item must fail.
	if _, err := key.Open(sealed, []byte("item-b"), nil); err == nil {
		t.Fatal("cross-item replay decrypted successfully")
	}
}

func TestOpenRejectsTamperedCiphertext(t *testing.T) {
	key := DeriveDataKey("pass", "l")
	sealed, err := key.Seal([]byte("secret"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sealed[len(sealed)-1] ^= 0xff
	if _, err := key.Open(sealed, nil, nil); err == nil {
		t.Fatal("tampered ciphertext decrypted successfully")
	}
}

func TestOpenTooShort(t *testing.T) {
	key := DeriveDataKey("pass", "l")
	if _, err := key.Open([]byte{1, 2, 3}, nil, nil); err == nil {
		t.Fatal("short ciphertext accepted")
	}
}

func TestSealNondeterministic(t *testing.T) {
	key := DeriveDataKey("pass", "l")
	a, err := key.Seal([]byte("secret"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := key.Seal([]byte("secret"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("two seals of the same plaintext are identical (nonce reuse?)")
	}
}

func TestSealOpenPropertyAnyPlaintext(t *testing.T) {
	key := DeriveDataKey("pass", "l")
	prop := func(plaintext, aad []byte) bool {
		sealed, err := key.Seal(plaintext, aad, nil)
		if err != nil {
			return false
		}
		got, err := key.Open(sealed, aad, nil)
		if err != nil {
			return false
		}
		return bytes.Equal(got, plaintext)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNewDataKeyUnique(t *testing.T) {
	a, err := NewDataKey()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDataKey()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("two random data keys identical")
	}
}

func TestDeriveDataKeyStable(t *testing.T) {
	if DeriveDataKey("p", "l") != DeriveDataKey("p", "l") {
		t.Fatal("derivation not deterministic")
	}
	if DeriveDataKey("p", "l") == DeriveDataKey("p", "l2") {
		t.Fatal("different labels produced the same key")
	}
}
