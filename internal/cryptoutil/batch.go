package cryptoutil

// batch.go implements Ed25519 batch verification: n signatures checked
// with one multi-scalar multiplication instead of n double-scalar
// multiplications (DESIGN.md §7.11). The server's admission stage feeds
// it micro-batches of concurrently arriving signed requests, which is
// where the replica-side CPU bill of the remote-cluster hot path lives.
//
// The check is the standard cofactored batch equation: with random
// 128-bit multipliers z_i, per-signature components R_i (first half of
// the signature), s_i (second half), public keys A_i, and challenge
// h_i = SHA-512(R_i || A_i || M_i) mod L,
//
//	[8](-Σ z_i s_i)B + Σ [8 z_i]R_i + Σ [8 z_i h_i]A_i == identity
//
// accepts iff every individual cofactored equation holds, except with
// probability ~2^-128 over the z_i. The cofactor 8 is folded into the
// scalars (8x mod L distributes over the sum), avoiding a point-level
// cofactor clearing. When the batch equation fails, the batch is
// bisected so one bad signature only costs its own sub-batch; singleton
// sub-batches fall back to crypto/ed25519's Verify, which keeps every
// individual accept/reject decision byte-identical to the unbatched
// path. (The batch equation is cofactored while crypto/ed25519 is
// cofactorless; honestly generated signatures satisfy both, and any
// adversarial signature in the ~2^-125 semantic gap still gets the
// unbatched verdict via bisection whenever it matters — a batch it rides
// in either fails, bisecting down to the stdlib check, or passes, which
// the cofactored equation permits.)

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"crypto/sha512"
	"fmt"
	"io"

	"securestore/internal/edwards25519"
	"securestore/internal/metrics"
)

// BatchItem is one signature-check job for VerifyBatch: principal id,
// the signed data (the signature covers its SHA-256 digest, matching
// KeyPair.Sign), and the 64-byte Ed25519 signature.
type BatchItem struct {
	Signer string
	Data   []byte
	Sig    []byte
}

// VerifyBatch checks every item's signature and returns one error slot
// per item: nil means verified, ErrUnknownPrincipal or ErrBadSignature
// otherwise. Semantics match calling Keyring.Verify per item — the
// verified-signature LRU is consulted first and primed after, and a
// failing item never affects its batch partners — but the signatures
// that miss the cache are checked together with one multi-scalar
// multiplication instead of one Ed25519 operation each.
func (r *Keyring) VerifyBatch(items []BatchItem, m *metrics.Counters) []error {
	errs := make([]error, len(items))
	cache := r.verifyCache()

	// Resolve keys and consult the cache; only misses pay for crypto.
	type job struct {
		idx    int
		pub    ed25519.PublicKey
		digest [32]byte
		key    vcacheKey
	}
	jobs := make([]job, 0, len(items))
	for i, it := range items {
		pub, err := r.Lookup(it.Signer)
		if err != nil {
			errs[i] = err
			continue
		}
		j := job{idx: i, pub: pub, digest: sha256.Sum256(it.Data)}
		if cache != nil {
			j.key = cache.key(it.Signer, it.Data, it.Sig)
			if cache.seen(j.key) {
				m.AddVerifyCacheHit()
				continue
			}
			m.AddVerifyCacheMiss()
		}
		jobs = append(jobs, j)
	}
	if len(jobs) == 0 {
		return errs
	}

	verifyOne := func(j job) {
		m.AddVerification()
		if !ed25519.Verify(j.pub, j.digest[:], items[j.idx].Sig) {
			errs[j.idx] = fmt.Errorf("%w: principal %q", ErrBadSignature, items[j.idx].Signer)
			return
		}
		if cache != nil {
			cache.record(j.key)
		}
	}

	// verifySpan batch-checks jobs[lo:hi], bisecting on failure.
	var verifySpan func(lo, hi int)
	verifySpan = func(lo, hi int) {
		if hi-lo == 1 {
			verifyOne(jobs[lo])
			return
		}
		span := jobs[lo:hi]
		sigs := make([]batchSig, len(span))
		for i, j := range span {
			sigs[i] = batchSig{pub: j.pub, digest: j.digest[:], sig: items[j.idx].Sig}
		}
		ok, err := batchEquation(sigs)
		if err != nil {
			// Malformed point/scalar encodings or a randomizer failure:
			// the batch equation cannot run, so every item gets the exact
			// unbatched verdict instead.
			for _, j := range span {
				verifyOne(j)
			}
			return
		}
		if ok {
			m.AddVerifyBatched(len(span))
			for _, j := range span {
				m.AddVerification()
				if cache != nil {
					cache.record(j.key)
				}
			}
			return
		}
		mid := lo + (hi-lo)/2
		verifySpan(lo, mid)
		verifySpan(mid, hi)
	}
	verifySpan(0, len(jobs))
	return errs
}

// batchSig is one signature for batchEquation: the public key, the
// message (here always a SHA-256 digest, per KeyPair.Sign), and the
// 64-byte signature.
type batchSig struct {
	pub    ed25519.PublicKey
	digest []byte
	sig    []byte
}

// batchEquation evaluates the cofactored batch equation over the span.
// It reports whether the aggregate check passed; a non-nil error means
// the equation could not be evaluated (unparseable signature or key, or
// no entropy for the randomizers) and the caller must fall back to
// per-item verification.
func batchEquation(span []batchSig) (bool, error) {
	// One entropy read covers the whole batch: 16 bytes (128 bits) per
	// randomizer keeps the forgery-survival probability at ~2^-128.
	zraw := make([]byte, 16*len(span))
	if _, err := io.ReadFull(rand.Reader, zraw); err != nil {
		return false, fmt.Errorf("batch randomizers: %w", err)
	}

	var eight edwards25519.Scalar
	if _, err := eight.SetCanonicalBytes(scalarEightBytes()); err != nil {
		return false, err
	}

	scalars := make([]*edwards25519.Scalar, 0, 2*len(span)+1)
	points := make([]*edwards25519.Point, 0, 2*len(span)+1)
	// Slot 0 carries the basepoint term; its scalar is filled in last.
	bScalar := new(edwards25519.Scalar)
	scalars = append(scalars, bScalar)
	points = append(points, edwards25519.NewGeneratorPoint())

	sSum := new(edwards25519.Scalar) // Σ z_i s_i
	var zbuf [64]byte
	for i, item := range span {
		sigBytes := item.sig
		if len(sigBytes) != ed25519.SignatureSize {
			return false, fmt.Errorf("signature %d: bad length %d", i, len(sigBytes))
		}
		if len(item.pub) != ed25519.PublicKeySize {
			return false, fmt.Errorf("public key %d: bad length %d", i, len(item.pub))
		}

		R, err := new(edwards25519.Point).SetBytes(sigBytes[:32])
		if err != nil {
			return false, fmt.Errorf("signature %d: R: %w", i, err)
		}
		A, err := new(edwards25519.Point).SetBytes(item.pub)
		if err != nil {
			return false, fmt.Errorf("public key %d: %w", i, err)
		}
		s, err := new(edwards25519.Scalar).SetCanonicalBytes(sigBytes[32:])
		if err != nil {
			return false, fmt.Errorf("signature %d: s: %w", i, err)
		}

		// h_i = SHA-512(R || A || M) mod L — the Ed25519 challenge. The
		// message M is the SHA-256 digest of the signed data, matching
		// KeyPair.Sign's signed-digest construction.
		hh := sha512.New()
		hh.Write(sigBytes[:32])
		hh.Write(item.pub)
		hh.Write(item.digest)
		h, err := new(edwards25519.Scalar).SetUniformBytes(hh.Sum(nil))
		if err != nil {
			return false, err
		}

		// z_i: 128 random bits zero-extended to the 64 bytes
		// SetUniformBytes wants (values < 2^128 reduce to themselves).
		for j := range zbuf {
			zbuf[j] = 0
		}
		copy(zbuf[:16], zraw[16*i:])
		z, err := new(edwards25519.Scalar).SetUniformBytes(zbuf[:])
		if err != nil {
			return false, err
		}

		sSum.MultiplyAdd(z, s, sSum)

		zh := new(edwards25519.Scalar).Multiply(z, h)
		scalars = append(scalars, z.Multiply(z, &eight), zh.Multiply(zh, &eight))
		points = append(points, R, A)
	}

	bScalar.Negate(sSum)
	bScalar.Multiply(bScalar, &eight)

	sum := new(edwards25519.Point).VarTimeMultiScalarMult(scalars, points)
	return sum.Equal(edwards25519.NewIdentityPoint()) == 1, nil
}

// scalarEightBytes returns the canonical little-endian encoding of 8.
func scalarEightBytes() []byte {
	b := make([]byte, 32)
	b[0] = 8
	return b
}
