// Package cryptoutil supplies the cryptographic substrate the secure store
// assumes to exist (paper Section 4): every client and server owns a private
// key whose public key is well known, writes are accompanied by signed
// digests, and data values may be kept confidential with symmetric
// encryption that the servers never hold keys for.
//
// Primitive choices: Ed25519 signatures over SHA-256 digests, and
// AES-256-GCM for confidentiality. The 2001 paper leaves the algorithms
// abstract ("some agreed-upon digest algorithm"); these modern stdlib
// primitives provide the same abstract properties.
//
// Layout: keys.go derives deterministic keyrings and signs/verifies,
// seal.go is the AES-GCM sealed-value envelope, and vcache.go the bounded
// LRU of verified signatures (design and safety argument in DESIGN.md
// §7.2, measured in EXPERIMENTS.md T2).
package cryptoutil
