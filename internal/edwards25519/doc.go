// Copyright (c) 2021 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package edwards25519 implements group logic for the twisted Edwards curve
//
//	-x^2 + y^2 = 1 + -(121665/121666)*x^2*y^2
//
// This is better known as the Edwards curve equivalent to Curve25519, and is
// the curve used by the Ed25519 signature scheme.
//
// Most users don't need this package, and should instead use crypto/ed25519 for
// signatures, golang.org/x/crypto/curve25519 for Diffie-Hellman, or
// github.com/gtank/ristretto255 for prime order group logic.
//
// However, developers who do need to interact with low-level edwards25519
// operations can use filippo.io/edwards25519, an extended version of this
// package repackaged as an importable module.
//
// (Note that filippo.io/edwards25519 and github.com/gtank/ristretto255 are not
// maintained by the Go team and are not covered by the Go 1 Compatibility Promise.)
//
// securestore provenance: this package (and its field subpackage) is
// vendored from the Go 1.24 standard library tree
// (crypto/internal/fips140/edwards25519) under its BSD-style license —
// see LICENSE in this directory. securestore carries no external module
// dependencies, so the curve arithmetic that batched signature
// verification needs (internal/cryptoutil) is vendored rather than
// imported from filippo.io/edwards25519. Local changes are confined to:
// import-path rewrites (the fips140 wrapper imports — check, subtle,
// byteorder — replaced by their public equivalents) and the added
// multiscalar.go, which implements the VarTimeMultiScalarMult the batch
// verifier builds on. Everything else is byte-identical to upstream,
// including its test suite.
package edwards25519
