// Copyright (c) 2026 the securestore authors. MIT license.

package edwards25519

import (
	"testing"
	"testing/quick"
)

// TestVarTimeMultiScalarMultMatchesDouble cross-checks the n-term Straus
// sum against the upstream two-term VarTimeDoubleScalarBaseMult on random
// scalars: a*A + b*B must agree between the two implementations.
func TestVarTimeMultiScalarMultMatchesDouble(t *testing.T) {
	f := func(a, b Scalar) bool {
		A := (&Point{}).ScalarBaseMult(dalekScalar)
		p := (&Point{}).VarTimeDoubleScalarBaseMult(&a, A, &b)
		q := (&Point{}).VarTimeMultiScalarMult(
			[]*Scalar{&a, &b}, []*Point{A, NewGeneratorPoint()})
		return p.Equal(q) == 1
	}
	if err := quick.Check(f, quickCheckConfig(8)); err != nil {
		t.Error(err)
	}
}

// TestVarTimeMultiScalarMultManyTerms checks that a wide sum matches the
// result of accumulating one-term ScalarMults.
func TestVarTimeMultiScalarMultManyTerms(t *testing.T) {
	f := func(s1, s2, s3, s4, s5 Scalar) bool {
		scalars := []*Scalar{&s1, &s2, &s3, &s4, &s5}
		points := make([]*Point, len(scalars))
		base := NewGeneratorPoint()
		for i := range points {
			// Distinct points: (i+1)*B via repeated addition.
			p := NewIdentityPoint()
			for j := 0; j <= i; j++ {
				p.Add(p, base)
			}
			points[i] = p
		}
		want := NewIdentityPoint()
		for i := range scalars {
			term := (&Point{}).ScalarMult(scalars[i], points[i])
			want.Add(want, term)
		}
		got := (&Point{}).VarTimeMultiScalarMult(scalars, points)
		return want.Equal(got) == 1
	}
	if err := quick.Check(f, quickCheckConfig(4)); err != nil {
		t.Error(err)
	}
}

// TestVarTimeMultiScalarMultZero: the zero scalar contributes nothing.
func TestVarTimeMultiScalarMultZero(t *testing.T) {
	zero := &Scalar{}
	got := (&Point{}).VarTimeMultiScalarMult(
		[]*Scalar{zero}, []*Point{NewGeneratorPoint()})
	if got.Equal(NewIdentityPoint()) != 1 {
		t.Fatalf("0*B != identity")
	}
}
