// Copyright (c) 2026 the securestore authors. MIT license.

package edwards25519

// multiscalar.go is securestore's addition to the vendored edwards25519
// package: a variable-time multi-scalar multiplication (Straus's
// interleaved width-5 NAF method) used by the batched signature
// verification in internal/cryptoutil. The upstream package only exposes
// the two-term VarTimeDoubleScalarBaseMult; batch verification needs the
// general 2n+1-term sum  Σ sᵢ·Pᵢ  computed with one shared doubling
// chain, which is where the batch's per-signature saving comes from.

// VarTimeMultiScalarMult sets v = sum(scalars[i] * points[i]), and
// returns v. Execution time depends on the inputs, so it must only be
// used on public data (signature verification qualifies: signatures,
// public keys and messages are all attacker-visible already).
//
// It panics when len(scalars) != len(points) or when the sum is empty.
func (v *Point) VarTimeMultiScalarMult(scalars []*Scalar, points []*Point) *Point {
	if len(scalars) != len(points) {
		panic("edwards25519: mismatched multiscalar input lengths")
	}
	if len(scalars) == 0 {
		panic("edwards25519: empty multiscalar input")
	}

	// Interleaved Straus: one width-5 NAF and one lookup table per term,
	// a single doubling chain shared by every term. Versus n separate
	// double-and-add passes this trades n*256 doublings for 256, leaving
	// ~256/6 sparse additions per term.
	nafs := make([][256]int8, len(scalars))
	tables := make([]nafLookupTable5, len(points))
	for i := range scalars {
		nafs[i] = scalars[i].nonAdjacentForm(5)
		tables[i].FromP3(points[i])
	}

	// Find the first nonzero coefficient across every NAF so the
	// doubling chain starts at the highest live bit.
	i := 255
	for ; i > 0; i-- {
		nonzero := false
		for j := range nafs {
			if nafs[j][i] != 0 {
				nonzero = true
				break
			}
		}
		if nonzero {
			break
		}
	}

	mult := &projCached{}
	tmp1 := &projP1xP1{}
	tmp2 := &projP2{}
	tmp2.Zero()

	for ; i >= 0; i-- {
		tmp1.Double(tmp2)
		for j := range nafs {
			if nafs[j][i] > 0 {
				v.fromP1xP1(tmp1)
				tables[j].SelectInto(mult, nafs[j][i])
				tmp1.Add(v, mult)
			} else if nafs[j][i] < 0 {
				v.fromP1xP1(tmp1)
				tables[j].SelectInto(mult, -nafs[j][i])
				tmp1.Sub(v, mult)
			}
		}
		tmp2.FromP1xP1(tmp1)
	}

	v.fromP2(tmp2)
	return v
}
