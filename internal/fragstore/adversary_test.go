package fragstore

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"securestore/internal/cryptoutil"
	"securestore/internal/fragment"
	"securestore/internal/metrics"
	"securestore/internal/timestamp"
	"securestore/internal/wire"
)

// storeAs builds a store session for an arbitrary principal with its own
// metrics counters, so adversarial tests can assert on the detection
// counters a read increments.
func (r *rig) storeAs(t *testing.T, id string, b, k int, m *metrics.Counters) *Store {
	t.Helper()
	key := cryptoutil.DeterministicKeyPair(id, "s")
	_ = r.ring.Register(key.ID, key.Public)
	s, err := New(Config{
		ID: key.ID, Key: key, Ring: r.ring, Servers: r.names,
		B: b, K: k, Group: "g",
		Caller:      r.bus.Caller(key.ID, m),
		Metrics:     m,
		CallTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// sharesOf disperses value and returns the n share payloads.
func sharesOf(t *testing.T, value []byte, k, n int) [][]byte {
	t.Helper()
	frags, err := fragment.Split(value, k, n)
	if err != nil {
		t.Fatal(err)
	}
	shares := make([][]byte, n)
	for i, f := range frags {
		shares[i] = f.Data
	}
	return shares
}

// dispersalWrites builds the n per-server SignedWrites of one dispersal at
// logical time `at`, exactly as Store.WriteAbove does — one signature, the
// cross-checksum over the given shares — but without any honesty
// constraint on the shares: tests pass share vectors no single Split
// produced to model an equivocating writer.
func dispersalWrites(t *testing.T, key cryptoutil.KeyPair, item string, at uint64, shares [][]byte, k int) []*wire.SignedWrite {
	t.Helper()
	n := len(shares)
	cross := make([][32]byte, n)
	for i, sh := range shares {
		cross[i] = cryptoutil.Digest(sh)
	}
	writes := make([]*wire.SignedWrite, n)
	var first *wire.SignedWrite
	for i, sh := range shares {
		env := &wire.FragmentEnvelope{Index: i, K: k, N: n, Cross: cross, Share: sh}
		raw, err := env.Encode()
		if err != nil {
			t.Fatal(err)
		}
		w := &wire.SignedWrite{
			Group: "g", Item: item,
			Stamp: timestamp.Stamp{Time: at, Writer: key.ID, Digest: env.CrossDigest()},
			Value: raw,
		}
		if first == nil {
			w.Sign(key, &metrics.Counters{})
			first = w
		} else {
			w.Writer = first.Writer
			w.Sig = first.Sig
		}
		writes[i] = w
	}
	return writes
}

// plant delivers write w to server i through the verifying integration
// path and asserts it was accepted.
func (r *rig) plant(t *testing.T, i int, w *wire.SignedWrite) {
	t.Helper()
	if !r.servers[i].ApplyDisseminated(w) {
		t.Fatalf("server %s rejected planted write for %q", r.names[i], w.Item)
	}
}

// TestEquivocatingCrossChecksumRejected is the attack the re-dispersal
// check exists for: a writer signs ONE cross-checksum vector that no
// single dispersal produced — shares 0,1 come from value A, shares 2,3
// from value B. Every fragment self-verifies (digest(share) == cross[i]),
// so every server accepts its fragment; a reader reconstructing from
// {0,1} would get A while one reconstructing from {2,3} would get B. The
// read must refuse the version instead of returning either value.
func TestEquivocatingCrossChecksumRejected(t *testing.T) {
	r := newRig(t, 4)
	m := &metrics.Counters{}
	s := r.storeAs(t, "owner", 1, 2, m)

	a := sharesOf(t, []byte("value-A: what half the readers would see"), 2, 4)
	b := sharesOf(t, []byte("value-B: what the other half would see.."), 2, 4)
	mixed := [][]byte{a[0], a[1], b[2], b[3]}
	key := cryptoutil.DeterministicKeyPair("owner", "s")
	for i, w := range dispersalWrites(t, key, "doc", 7, mixed, 2) {
		r.plant(t, i, w)
	}

	if _, _, err := s.Read(context.Background(), "doc"); !errors.Is(err, ErrEquivocation) {
		t.Fatalf("read of poisoned dispersal: err = %v, want ErrEquivocation", err)
	}
	if m.Custom(MetricEquivocation) == 0 {
		t.Fatal("equivocation not counted")
	}
}

// TestEquivocatingDoubleDispersalRejected covers the other equivocation
// shape: two complete, individually honest dispersals signed under the
// same (time, writer). Any reader quorum (n-b of n) sees fragments of
// both, so every honest reader detects the digest collision — and must
// refuse both versions rather than let map order decide which one wins.
func TestEquivocatingDoubleDispersalRejected(t *testing.T) {
	r := newRig(t, 4)
	m := &metrics.Counters{}
	s := r.storeAs(t, "owner", 1, 2, m)
	key := cryptoutil.DeterministicKeyPair("owner", "s")

	a := dispersalWrites(t, key, "doc", 7, sharesOf(t, []byte("dispersal A"), 2, 4), 2)
	b := dispersalWrites(t, key, "doc", 7, sharesOf(t, []byte("dispersal B"), 2, 4), 2)
	for i := 0; i < 2; i++ {
		r.plant(t, i, a[i])
	}
	for i := 2; i < 4; i++ {
		r.plant(t, i, b[i])
	}

	if _, _, err := s.Read(context.Background(), "doc"); !errors.Is(err, ErrEquivocation) {
		t.Fatalf("read of double dispersal: err = %v, want ErrEquivocation", err)
	}
	if m.Custom(MetricEquivocation) == 0 {
		t.Fatal("equivocation not counted")
	}
}

// TestEquivocationFallsBackToOlderVersion: when the poisoned version is
// only partially planted and an older honest version still holds k
// fragments, the read skips the poisoned (time, writer) and returns the
// honest version — every correct reader falls back to the same one.
func TestEquivocationFallsBackToOlderVersion(t *testing.T) {
	// n=5, b=0: reads gather every reply, so the read deterministically
	// sees both colliding digests (detection) and all three honest
	// fragments (fallback).
	r := newRig(t, 5)
	m := &metrics.Counters{}
	s := r.storeAs(t, "owner", 0, 2, m)
	key := cryptoutil.DeterministicKeyPair("owner", "s")

	honest := []byte("the last honest version")
	if _, err := s.Write(context.Background(), "doc", honest); err != nil {
		t.Fatal(err)
	}
	// The equivocating pair lands on two servers only (one fragment each):
	// neither reaches k, but both reveal the collision.
	a := dispersalWrites(t, key, "doc", 9, sharesOf(t, []byte("late A"), 2, 5), 2)
	b := dispersalWrites(t, key, "doc", 9, sharesOf(t, []byte("late B"), 2, 5), 2)
	r.plant(t, 0, a[0])
	r.plant(t, 1, b[1])

	got, _, err := s.Read(context.Background(), "doc")
	if err != nil {
		t.Fatalf("read with partial equivocation: %v", err)
	}
	if !bytes.Equal(got, honest) {
		t.Fatalf("read = %q, want the honest version", got)
	}
	if m.Custom(MetricEquivocation) == 0 {
		t.Fatal("equivocation not counted")
	}
}

// TestDuplicateIndexDoesNotDoubleCount: replayed copies of one fragment
// (here: index 0 stored on two servers) must count once toward the
// k-distinct threshold, and the read still reconstructs from the distinct
// indices that remain.
func TestDuplicateIndexDoesNotDoubleCount(t *testing.T) {
	r := newRig(t, 4)
	s := r.storeAs(t, "owner", 1, 2, &metrics.Counters{})
	key := cryptoutil.DeterministicKeyPair("owner", "s")

	value := []byte("reconstructible despite the replay")
	writes := dispersalWrites(t, key, "doc", 7, sharesOf(t, value, 2, 4), 2)
	r.plant(t, 0, writes[0])
	r.plant(t, 1, writes[0]) // replayed duplicate of index 0
	r.plant(t, 2, writes[2])
	r.plant(t, 3, writes[3])

	got, _, err := s.Read(context.Background(), "doc")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, value) {
		t.Fatalf("read = %q", got)
	}
}

// TestForgedIndexRejected: a share relabeled with another fragment's index
// fails self-verification (digest(share) != cross[index]) at every
// verifier — the server refuses to integrate it.
func TestForgedIndexRejected(t *testing.T) {
	r := newRig(t, 4)
	_ = r.storeAs(t, "owner", 1, 2, &metrics.Counters{})
	key := cryptoutil.DeterministicKeyPair("owner", "s")

	shares := sharesOf(t, []byte("honest dispersal"), 2, 4)
	writes := dispersalWrites(t, key, "doc", 7, shares, 2)

	// Relabel share 0 as index 1 under the honest cross-checksum and the
	// shared signature.
	forged := &wire.FragmentEnvelope{Index: 1, K: 2, N: 4,
		Cross: func() [][32]byte {
			cross := make([][32]byte, 4)
			for i, sh := range shares {
				cross[i] = cryptoutil.Digest(sh)
			}
			return cross
		}(), Share: shares[0]}
	raw, err := forged.Encode()
	if err != nil {
		t.Fatal(err)
	}
	w := &wire.SignedWrite{Group: "g", Item: "doc", Stamp: writes[0].Stamp, Value: raw,
		Writer: writes[0].Writer, Sig: writes[0].Sig}
	if w.Verify(r.ring, nil) == nil {
		t.Fatal("forged-index fragment passed verification")
	}
	if r.servers[1].ApplyDisseminated(w) {
		t.Fatal("server integrated a forged-index fragment")
	}
}

// TestMixedKRepliesCounted: fragments dispersed under a different
// reconstruction threshold k do not mix into this store's buckets — they
// are dropped and counted, and the read fails cleanly rather than
// feeding IDA rows from the wrong matrix geometry.
func TestMixedKRepliesCounted(t *testing.T) {
	r := newRig(t, 5)
	writer := r.storeAs(t, "owner", 1, 3, &metrics.Counters{})
	if _, err := writer.Write(context.Background(), "doc", []byte("k=3 dispersal")); err != nil {
		t.Fatal(err)
	}

	m := &metrics.Counters{}
	reader := r.storeAs(t, "owner", 1, 2, m)
	if _, _, err := reader.Read(context.Background(), "doc"); !errors.Is(err, ErrNotEnoughFragments) {
		t.Fatalf("err = %v, want ErrNotEnoughFragments", err)
	}
	if m.Custom(MetricKMismatch) == 0 {
		t.Fatal("k mismatch not counted")
	}
}

// TestStampCollisionDistinctWriters is the stamp-collision regression: two
// writers whose clocks assign the same logical time must land in separate
// buckets (the stamp carries the writer), so a read returns one writer's
// value intact — deterministically the higher writer name — and never an
// interleaving of both dispersals.
func TestStampCollisionDistinctWriters(t *testing.T) {
	// n=5, b=1: reads gather 4 replies, so bob's three fragments always
	// put >= k=2 of them in the read quorum regardless of which reply is
	// missed.
	r := newRig(t, 5)
	s := r.storeAs(t, "alice", 1, 2, &metrics.Counters{})
	aliceKey := cryptoutil.DeterministicKeyPair("alice", "s")
	bobKey := cryptoutil.DeterministicKeyPair("bob", "s")
	_ = r.ring.Register(bobKey.ID, bobKey.Public)

	aliceVal := []byte("alice's view of the document")
	bobVal := []byte("bob's view, exactly as written")
	aw := dispersalWrites(t, aliceKey, "doc", 7, sharesOf(t, aliceVal, 2, 5), 2)
	bw := dispersalWrites(t, bobKey, "doc", 7, sharesOf(t, bobVal, 2, 5), 2)
	// Interleave the two colliding dispersals across the replicas.
	r.plant(t, 0, aw[0])
	r.plant(t, 1, aw[1])
	r.plant(t, 2, bw[2])
	r.plant(t, 3, bw[3])
	r.plant(t, 4, bw[4])

	got, stamp, err := s.Read(context.Background(), "doc")
	if err != nil {
		t.Fatal(err)
	}
	// (7, "bob") > (7, "alice"): bob's bucket is the newest version.
	if stamp.Writer != bobKey.ID {
		t.Fatalf("stamp.Writer = %q, want bob's", stamp.Writer)
	}
	if !bytes.Equal(got, bobVal) {
		t.Fatalf("read = %q, want bob's value intact", got)
	}
}

// TestTornReadDuringOverwrite: a read racing an overwrite must return
// either the old or the new value whole. Deterministically: while the
// overwrite has reached fewer than k servers the old version wins; once k
// hold the new version it wins; and under a live concurrent overwrite
// every read returns one of the two values, never a blend.
func TestTornReadDuringOverwrite(t *testing.T) {
	// n=5, b=1: reads gather 4 replies. One planted v2 fragment can never
	// reach k=2 in a read quorum; three always put >= 2 there — both
	// phases are deterministic regardless of which reply is missed.
	r := newRig(t, 5)
	s := r.storeAs(t, "owner", 1, 2, &metrics.Counters{})
	key := cryptoutil.DeterministicKeyPair("owner", "s")
	ctx := context.Background()

	v1 := []byte("version one, replicated everywhere")
	v2 := []byte("version two, arriving server by server")
	if _, err := s.Write(ctx, "doc", v1); err != nil {
		t.Fatal(err)
	}
	overwrite := dispersalWrites(t, key, "doc", 9, sharesOf(t, v2, 2, 5), 2)

	r.plant(t, 0, overwrite[0]) // 1 < k fragments of v2
	if got, _, err := s.Read(ctx, "doc"); err != nil || !bytes.Equal(got, v1) {
		t.Fatalf("mid-overwrite read = %q, %v; want v1", got, err)
	}
	r.plant(t, 1, overwrite[1])
	r.plant(t, 2, overwrite[2]) // >= k fragments of v2 in every quorum
	if got, _, err := s.Read(ctx, "doc"); err != nil || !bytes.Equal(got, v2) {
		t.Fatalf("post-quorum read = %q, %v; want v2", got, err)
	}

	// Live race: concurrent overwrites vs reads; every read sees a whole
	// version. Run under -race this also exercises the store for data races.
	var wg sync.WaitGroup
	wg.Add(1)
	errCh := make(chan error, 1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if _, err := s.Write(ctx, "doc", v1); err != nil {
				errCh <- err
				return
			}
			if _, err := s.Write(ctx, "doc", v2); err != nil {
				errCh <- err
				return
			}
		}
	}()
	reader := r.storeAs(t, "owner", 1, 2, &metrics.Counters{})
	for i := 0; i < 16; i++ {
		got, _, err := reader.Read(ctx, "doc")
		if errors.Is(err, ErrNotEnoughFragments) {
			// A read overlapping several in-flight overwrites can catch
			// every version below its k-fragment quorum; that is a retry,
			// never a wrong value.
			continue
		}
		if err != nil {
			t.Fatalf("racing read: %v", err)
		}
		if !bytes.Equal(got, v1) && !bytes.Equal(got, v2) {
			t.Fatalf("racing read returned a torn value: %q", got)
		}
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("racing write: %v", err)
	default:
	}
}
