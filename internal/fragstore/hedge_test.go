package fragstore

// hedge_test.go — adversity tests for the hedged fragmented read: the
// partial fan-out must stay correct and live when the servers it chose to
// trust with full-share requests stall or lie, and its cancellation must
// not leak goroutines.

import (
	"bytes"
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"securestore/internal/cryptoutil"
	"securestore/internal/metrics"
	"securestore/internal/server"
	"securestore/internal/transport"
	"securestore/internal/wire"
)

// gateCaller wraps the rig's bus caller with per-server behavior: stalled
// servers block until the call context is cancelled (a silent straggler,
// not a fast failure) and every ValueReq send is counted per server.
type gateCaller struct {
	inner transport.Caller

	mu         sync.Mutex
	stalled    map[string]bool
	valueSends map[string]int
	metaSends  map[string]int
}

func newGateCaller(inner transport.Caller) *gateCaller {
	return &gateCaller{
		inner:      inner,
		stalled:    make(map[string]bool),
		valueSends: make(map[string]int),
		metaSends:  make(map[string]int),
	}
}

func (g *gateCaller) stall(server string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.stalled[server] = true
}

func (g *gateCaller) valueAskedServers() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.valueSends)
}

func (g *gateCaller) contactedServers() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	seen := make(map[string]bool, len(g.valueSends)+len(g.metaSends))
	for s := range g.valueSends {
		seen[s] = true
	}
	for s := range g.metaSends {
		seen[s] = true
	}
	return len(seen)
}

func (g *gateCaller) Call(ctx context.Context, to string, req wire.Request) (wire.Response, error) {
	g.mu.Lock()
	switch req.(type) {
	case wire.ValueReq:
		g.valueSends[to]++
	case wire.MetaReq:
		g.metaSends[to]++
	}
	blocked := g.stalled[to]
	g.mu.Unlock()
	if blocked {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	return g.inner.Call(ctx, to, req)
}

func (g *gateCaller) Origin() string { return g.inner.Origin() }

// hedgeStore builds a store over the rig with an inspectable caller, its
// own counters, and a fixed hedge delay.
func hedgeStore(t *testing.T, r *rig, b, k int, hedge time.Duration) (*Store, *gateCaller, *metrics.Counters) {
	t.Helper()
	key := cryptoutil.DeterministicKeyPair("owner", "s")
	_ = r.ring.Register(key.ID, key.Public)
	m := &metrics.Counters{}
	gc := newGateCaller(r.bus.Caller(key.ID, m))
	s, err := New(Config{
		ID: key.ID, Key: key, Ring: r.ring, Servers: r.names,
		B: b, K: k, Group: "g",
		Caller: gc, Metrics: m,
		CallTimeout: 5 * time.Second,
		HedgeDelay:  hedge,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, gc, m
}

// TestHealthyReadContactsKPlusB: in the common case a fragmented read
// sends full-share requests to exactly k servers and stamp probes to b
// more — never the full n fan-out — the hedge does not fire, and the
// bytes-saved estimate is credited.
func TestHealthyReadContactsKPlusB(t *testing.T) {
	r := newRig(t, 5)
	s, gc, m := hedgeStore(t, r, 1, 3, time.Second)
	ctx := context.Background()
	data := make([]byte, 8<<10)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if _, err := s.Write(ctx, "doc", data); err != nil {
		t.Fatal(err)
	}
	gc.mu.Lock()
	gc.valueSends = make(map[string]int)
	gc.metaSends = make(map[string]int)
	gc.mu.Unlock()

	got, _, err := s.Read(ctx, "doc")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read mismatch")
	}
	if v := gc.valueAskedServers(); v != 3 {
		t.Fatalf("full-share requests went to %d servers, want k=3", v)
	}
	if c := gc.contactedServers(); c != 4 {
		t.Fatalf("read contacted %d servers, want k+b=4", c)
	}
	if h := m.FragReadHedges(); h != 0 {
		t.Fatalf("hedge fired %d times on a healthy read", h)
	}
	if saved := m.FragReadBytesSaved(); saved <= 0 {
		t.Fatal("no bytes-saved credit on a partial fan-out read")
	}
}

// TestHedgeFiresOnStalledServer: when one of the k full-share servers
// stalls silently, the hedge timer (not the call timeout) unblocks the
// read by value-asking the remaining servers, and the hedge is counted.
func TestHedgeFiresOnStalledServer(t *testing.T) {
	r := newRig(t, 5)
	s, gc, m := hedgeStore(t, r, 1, 3, 25*time.Millisecond)
	ctx := context.Background()
	data := []byte("survives one silent straggler among the chosen k")
	if _, err := s.Write(ctx, "doc", data); err != nil {
		t.Fatal(err)
	}
	gc.stall(r.names[0])

	start := time.Now()
	got, _, err := s.Read(ctx, "doc")
	if err != nil {
		t.Fatalf("read with stalled server: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read mismatch")
	}
	if elapsed := time.Since(start); elapsed >= s.cfg.CallTimeout {
		t.Fatalf("read took %v: waited out the call timeout instead of hedging", elapsed)
	}
	if h := m.FragReadHedges(); h != 1 {
		t.Fatalf("hedge count = %d, want 1", h)
	}
}

// TestByzantineSharesEscalate: a Byzantine server among the chosen k
// returns forged share bytes; verification drops them and the read
// escalates to fetch replacement shares from servers beyond the initial
// k+b, still returning the correct value.
func TestByzantineSharesEscalate(t *testing.T) {
	r := newRig(t, 5)
	s, gc, _ := hedgeStore(t, r, 1, 3, time.Second)
	ctx := context.Background()
	data := []byte("forged shares fail their cross-checksum and are replaced")
	if _, err := s.Write(ctx, "doc", data); err != nil {
		t.Fatal(err)
	}
	r.servers[0].SetFault(server.CorruptValue)

	got, _, err := s.Read(ctx, "doc")
	if err != nil {
		t.Fatalf("read with Byzantine server: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read mismatch")
	}
	if v := gc.valueAskedServers(); v <= 3 {
		t.Fatalf("full-share requests went to %d servers, want escalation past k=3", v)
	}
}

// TestHedgedReadCancelsWithoutLeak: goroutines launched for calls that
// never resolve (a stalled server) must exit once the read completes and
// its context is cancelled — run under -race in CI.
func TestHedgedReadCancelsWithoutLeak(t *testing.T) {
	r := newRig(t, 5)
	s, gc, _ := hedgeStore(t, r, 1, 3, 20*time.Millisecond)
	ctx := context.Background()
	data := []byte("no goroutine outlives its read")
	if _, err := s.Write(ctx, "doc", data); err != nil {
		t.Fatal(err)
	}
	gc.stall(r.names[0])
	baseline := runtime.NumGoroutine()

	for i := 0; i < 10; i++ {
		if _, _, err := s.Read(ctx, "doc"); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
