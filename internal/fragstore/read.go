package fragstore

// read.go — the hedged fragmented read. The original read GatherAll-ed a
// full share from all n replicas and waited for n-b, moving n/k times the
// value across the wire to use k shares. This path keeps the same safety
// decisions — nothing is returned before n-b distinct servers respond,
// every poison/equivocation verdict still comes only from
// signature-verified envelopes — but moves the bytes selectively:
//
//   - full ValueReqs go to the k lowest-indexed replicas, cheap MetaReq
//     stamp probes to the rest of the first max(k+b, n-b) servers;
//   - a stamp advert that could supersede the current candidate (newer,
//     or same (time, writer) with a different cross-digest) triggers a
//     targeted ValueReq to the advertiser — adverts are unauthenticated
//     scheduling hints, so they escalate fetches but never poison;
//   - each failed call escalates one more ValueReq, the hedge timer
//     (latency-derived, see Store.hedgeDelay) value-asks every remaining
//     server once, and a no-candidate state at quorum escalates to all;
//   - completion cancels everything still outstanding.
//
// In the healthy case a read therefore receives k shares plus tiny stamp
// messages instead of n shares: ~n/k times fewer value bytes on the wire.

import (
	"context"
	"fmt"
	"time"

	"securestore/internal/fragment"
	"securestore/internal/quorum"
	"securestore/internal/timestamp"
	"securestore/internal/wire"
)

// hedgeWarmupSamples is how many whole-read latency samples the adaptive
// hedge wants before trusting its p99; colder stores hedge at
// CallTimeout/4.
const hedgeWarmupSamples = 16

// hedgeDelay resolves the straggler-hedge delay for one read: the
// configured fixed value when set, hedging disabled when negative, and
// otherwise ~3x the observed whole-read p99 clamped to [1ms,
// CallTimeout/2] so a latency collapse cannot turn every read into a
// full-fan-out one and a latency spike cannot postpone the hedge past the
// call timeout.
func (s *Store) hedgeDelay() time.Duration {
	if s.cfg.HedgeDelay != 0 {
		if s.cfg.HedgeDelay < 0 {
			return 0 // disabled: GatherHedged never arms a non-positive timer
		}
		return s.cfg.HedgeDelay
	}
	snap := s.readDur.Snapshot()
	if snap.Count < hedgeWarmupSamples {
		return s.cfg.CallTimeout / 4
	}
	d := 3 * snap.P99
	if min := time.Millisecond; d < min {
		d = min
	}
	if max := s.cfg.CallTimeout / 2; d > max {
		d = max
	}
	return d
}

// versionKey identifies one writer's version number: the unit of
// equivocation. Two signed dispersals under one key poison both.
type versionKey struct {
	time   uint64
	writer string
}

// supersedes reports whether an advertised stamp, if substantiated by a
// verified envelope, could displace or poison the current candidate:
// strictly newer, or the same version number with a different
// cross-digest.
func supersedes(adv, best timestamp.Stamp) bool {
	return best.Less(adv) ||
		(adv.Time == best.Time && adv.Writer == best.Writer && adv.Digest != best.Digest)
}

// readCollector is the planner behind one hedged fragmented read: it
// absorbs replies, buckets verified fragments exactly as the original
// full-fan-out read did, and decides which servers to contact next.
type readCollector struct {
	s       *Store
	item    string
	servers []string
	n       int

	// Verified-envelope state, identical in meaning to the original read:
	// byStamp buckets fragments by full stamp, crossByStamp keeps each
	// bucket's checksum vector, crossSeen/poisoned implement equivocation
	// detection per (time, writer).
	byStamp      map[timestamp.Stamp]map[int]fragment.Fragment
	crossByStamp map[timestamp.Stamp][][32]byte
	crossSeen    map[versionKey][32]byte
	poisoned     map[versionKey]bool
	equivocated  bool

	// Scheduling state: which servers were sent a ValueReq, which
	// responded at all (any request kind, the n-b floor counts distinct
	// servers), which resolved or failed a ValueReq, and the stamp each
	// meta-only responder advertised.
	valueAsked   map[string]bool
	valueGot     map[string]bool
	valueFailed  map[string]bool
	responded    map[string]bool
	adverts      map[string]timestamp.Stamp
	escalatedAll bool
	errs         []error

	// envBytes/envCount estimate the mean share envelope size for the
	// bytes-saved metric.
	envBytes int64
	envCount int64

	// Result, when got is set by an accepting evaluation.
	value []byte
	stamp timestamp.Stamp
	got   bool
}

func newReadCollector(s *Store, item string, servers []string) *readCollector {
	return &readCollector{
		s: s, item: item, servers: servers, n: len(servers),
		byStamp:      make(map[timestamp.Stamp]map[int]fragment.Fragment),
		crossByStamp: make(map[timestamp.Stamp][][32]byte),
		crossSeen:    make(map[versionKey][32]byte),
		poisoned:     make(map[versionKey]bool),
		valueAsked:   make(map[string]bool),
		valueGot:     make(map[string]bool),
		valueFailed:  make(map[string]bool),
		responded:    make(map[string]bool),
		adverts:      make(map[string]timestamp.Stamp),
	}
}

// valueCall builds (and records) a full-share request to one server.
func (c *readCollector) valueCall(srv string) quorum.Call {
	c.valueAsked[srv] = true
	return quorum.Call{Server: srv, Req: wire.ValueReq{
		Client: c.s.cfg.ID, Group: c.s.cfg.Group, Item: c.item, Token: c.s.cfg.Token,
	}}
}

// metaCall builds a stamp probe to one server.
func (c *readCollector) metaCall(srv string) quorum.Call {
	return quorum.Call{Server: srv, Req: wire.MetaReq{
		Client: c.s.cfg.ID, Group: c.s.cfg.Group, Item: c.item, Token: c.s.cfg.Token,
	}}
}

// initialWave contacts max(k+b, n-b) servers: full shares from the k
// lowest-indexed (enough to reconstruct when all are honest and current),
// stamp probes from the rest (enough distinct responders to clear the
// n-b floor without a second round).
func (c *readCollector) initialWave() []quorum.Call {
	k, b := c.s.cfg.K, c.s.cfg.B
	eager := k + b
	if nb := c.n - b; nb > eager {
		eager = nb
	}
	if eager > c.n {
		eager = c.n
	}
	calls := make([]quorum.Call, 0, eager)
	for _, srv := range c.servers[:k] {
		calls = append(calls, c.valueCall(srv))
	}
	for _, srv := range c.servers[k:eager] {
		calls = append(calls, c.metaCall(srv))
	}
	return calls
}

// askValues value-asks up to limit servers not yet sent a ValueReq, in
// server order (limit < 0 means all).
func (c *readCollector) askValues(limit int) []quorum.Call {
	var calls []quorum.Call
	for _, srv := range c.servers {
		if limit >= 0 && len(calls) >= limit {
			break
		}
		if !c.valueAsked[srv] {
			calls = append(calls, c.valueCall(srv))
		}
	}
	return calls
}

// hedge is the straggler escape hatch: when the timer fires before the
// read completes, fetch a full share from every server not yet asked for
// one.
func (c *readCollector) hedge() []quorum.Call {
	c.s.cfg.Metrics.AddFragReadHedge()
	return c.askValues(-1)
}

// absorb folds one successful reply into the collector. The verification
// pipeline for value replies is the original read's: signature, envelope
// decode, geometry, equivocation bookkeeping, bucket insert.
func (c *readCollector) absorb(r quorum.Reply) {
	c.responded[r.Server] = true
	switch resp := r.Resp.(type) {
	case wire.MetaResp:
		if resp.Has {
			c.adverts[r.Server] = resp.Stamp
		}
	case wire.ValueResp:
		c.valueGot[r.Server] = true
		// The share itself (or proof the server has none worth keeping)
		// supersedes the server's unauthenticated advert.
		delete(c.adverts, r.Server)
		vr := resp
		if vr.Write == nil || vr.Write.Item != c.item || vr.Write.Group != c.s.cfg.Group {
			return
		}
		if err := vr.Write.Verify(c.s.cfg.Ring, c.s.cfg.Metrics); err != nil {
			return // tampered or mislabeled fragment: drop
		}
		env, err := wire.DecodeFragmentEnvelope(vr.Write.Value)
		if err != nil {
			return // not a fragment envelope (e.g. a replicated value)
		}
		if env.K != c.s.cfg.K {
			c.s.cfg.Metrics.AddCustom(MetricKMismatch, 1)
			return
		}
		if env.N != c.n || env.Index < 0 || env.Index >= c.n {
			c.s.cfg.Metrics.AddCustom(MetricBadIndex, 1)
			return
		}
		c.envBytes += int64(len(vr.Write.Value))
		c.envCount++
		key := versionKey{time: vr.Write.Stamp.Time, writer: vr.Write.Stamp.Writer}
		if prev, ok := c.crossSeen[key]; ok && prev != vr.Write.Stamp.Digest {
			// Same (time, writer), two signed cross-checksums: the writer
			// signed two different dispersals under one version number.
			if !c.poisoned[key] {
				c.s.cfg.Metrics.AddCustom(MetricEquivocation, 1)
			}
			c.poisoned[key] = true
			c.equivocated = true
		} else {
			c.crossSeen[key] = vr.Write.Stamp.Digest
		}
		set, ok := c.byStamp[vr.Write.Stamp]
		if !ok {
			set = make(map[int]fragment.Fragment)
			c.byStamp[vr.Write.Stamp] = set
			c.crossByStamp[vr.Write.Stamp] = env.Cross
		}
		set[env.Index] = fragment.Fragment{Index: env.Index, K: env.K, Data: env.Share}
	}
}

// evaluate looks for an acceptable version among the buckets. It returns
// follow-up calls when more information is needed, and sets the result
// fields when a version passes reconstruction plus the cross-checksum
// re-check. With final set (the gather has drained) it neither waits nor
// escalates: it decides on what arrived.
func (c *readCollector) evaluate(final bool) (next []quorum.Call, done bool) {
	k := c.s.cfg.K
	for {
		// Newest non-poisoned bucket holding k index-distinct shares.
		var (
			best      timestamp.Stamp
			bestFrags []fragment.Fragment
		)
		for stamp, set := range c.byStamp {
			if len(set) < k || c.poisoned[versionKey{time: stamp.Time, writer: stamp.Writer}] {
				continue
			}
			if bestFrags == nil || best.Less(stamp) {
				best = stamp
				bestFrags = bestFrags[:0]
				for _, f := range set {
					bestFrags = append(bestFrags, f)
				}
			}
		}
		if bestFrags == nil {
			if !final && !c.escalatedAll {
				// Enough servers responded but no version is
				// reconstructible from what they sent: fetch the shares the
				// stamp probes only hinted at.
				c.escalatedAll = true
				return c.askValues(-1), false
			}
			return nil, false
		}

		if !final {
			// An advert that could supersede the candidate must be
			// substantiated (its signed envelope fetched) or fail before
			// the candidate may win — an advert alone never poisons, but it
			// always forces the fetch that would.
			for srv, adv := range c.adverts {
				if !supersedes(adv, best) {
					continue
				}
				if !c.valueAsked[srv] {
					next = append(next, c.valueCall(srv))
					continue
				}
				if !c.valueGot[srv] && !c.valueFailed[srv] {
					return next, false // fetch in flight: wait for it
				}
			}
			if len(next) > 0 {
				return next, false
			}
		}

		start := time.Now()
		value, err := fragment.Reconstruct(bestFrags)
		ok := err == nil && c.s.crossConsistent(best.Digest, value, c.crossByStamp[best])
		c.s.cfg.Metrics.ObserveFragDecode(time.Since(start))
		if ok {
			c.value, c.stamp, c.got = value, best, true
			return nil, true
		}
		// Reconstruction failed or did not regenerate the signed
		// cross-checksum: the dispersal was never consistent, so any other
		// k-subset could decode differently. Refuse this version and fall
		// back to the next newest.
		c.s.cfg.Metrics.AddCustom(MetricEquivocation, 1)
		c.equivocated = true
		delete(c.byStamp, best)
	}
}

// decide is the GatherHedged planner hook: absorb or escalate, and
// evaluate once the distinct-responder floor is met.
func (c *readCollector) decide(r quorum.Reply, outstanding int) ([]quorum.Call, bool) {
	var next []quorum.Call
	if r.Err != nil {
		c.errs = append(c.errs, r.Err)
		if c.valueAsked[r.Server] {
			c.valueFailed[r.Server] = true
		}
		// One replacement full-share fetch per failure, staged-style.
		next = c.askValues(1)
	} else {
		c.absorb(r)
	}
	if len(c.responded) >= c.n-c.s.cfg.B {
		esc, done := c.evaluate(false)
		if done {
			return nil, true
		}
		next = append(next, esc...)
	}
	if len(next) == 0 && outstanding == 0 && !c.escalatedAll {
		// Nothing in flight and no plan — the engine would drain short of
		// the floor. Last resort: full shares from everyone left.
		c.escalatedAll = true
		next = c.askValues(-1)
	}
	return next, false
}

// Read gathers fragments from the item's replicas and reconstructs the
// newest version for which k verifiable fragments with distinct indices
// exist — then confirms the result re-disperses to the signed
// cross-checksum before returning it. The fan-out is hedged (see the file
// comment): full shares come from k servers in the common case, with
// stamp probes covering the n-b distinct-responder floor.
func (s *Store) Read(ctx context.Context, item string) ([]byte, timestamp.Stamp, error) {
	servers := s.serversFor(item)
	n := len(servers)

	opCtx, cancel := context.WithTimeout(ctx, s.cfg.CallTimeout)
	defer cancel()

	col := newReadCollector(s, item, servers)
	start := time.Now()
	_, engineErr := quorum.GatherHedged(opCtx, s.cfg.Caller, col.initialWave(),
		s.hedgeDelay(), col.hedge, col.decide)
	s.readDur.Observe(time.Since(start))

	// The engine drained (or the context expired) without an accepting
	// evaluation: decide on everything that arrived, still gated on the
	// n-b distinct-responder floor.
	if !col.got && len(col.responded) >= n-s.cfg.B {
		col.evaluate(true)
	}
	if col.got {
		// Estimate the wire bytes the partial fan-out avoided: the mean
		// share envelope observed, for every server never asked for one.
		if col.envCount > 0 && len(col.valueAsked) < n {
			s.cfg.Metrics.AddFragReadBytesSaved(col.envBytes / col.envCount * int64(n-len(col.valueAsked)))
		}
		return col.value, col.stamp, nil
	}
	if len(col.responded) < n-s.cfg.B {
		errs := col.errs
		if engineErr != nil {
			errs = append(errs, engineErr)
		}
		ge := &quorum.GatherError{Need: n - s.cfg.B, Successes: len(col.responded), Servers: n, Errs: errs}
		return nil, timestamp.Stamp{}, fmt.Errorf("fragstore read %s: %w", item, ge)
	}
	if col.equivocated {
		return nil, timestamp.Stamp{}, fmt.Errorf("%w: item %s", ErrEquivocation, item)
	}
	return nil, timestamp.Stamp{}, fmt.Errorf("%w: item %s", ErrNotEnoughFragments, item)
}
