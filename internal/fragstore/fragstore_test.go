package fragstore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"securestore/internal/cryptoutil"
	"securestore/internal/metrics"
	"securestore/internal/server"
	"securestore/internal/transport"
	"securestore/internal/wire"
)

type rig struct {
	bus     *transport.Bus
	ring    *cryptoutil.Keyring
	servers []*server.Server
	names   []string
}

func newRig(t *testing.T, n int) *rig {
	t.Helper()
	r := &rig{bus: transport.NewBus(nil), ring: cryptoutil.NewKeyring()}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("s%02d", i)
		srv := server.New(server.Config{ID: name, Ring: r.ring})
		srv.RegisterGroup("g", server.Policy{Consistency: wire.MRC})
		r.bus.Register(name, srv)
		r.servers = append(r.servers, srv)
		r.names = append(r.names, name)
	}
	return r
}

func (r *rig) store(t *testing.T, b, k int) *Store {
	t.Helper()
	key := cryptoutil.DeterministicKeyPair("owner", "s")
	_ = r.ring.Register(key.ID, key.Public)
	s, err := New(Config{
		ID: key.ID, Key: key, Ring: r.ring, Servers: r.names,
		B: b, K: k, Group: "g",
		Caller:      r.bus.Caller(key.ID, &metrics.Counters{}),
		CallTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWriteReadRoundTrip(t *testing.T) {
	r := newRig(t, 5)
	s := r.store(t, 1, 2)
	ctx := context.Background()

	data := []byte("fragmented but whole: the quick brown fox")
	if _, err := s.Write(ctx, "doc", data); err != nil {
		t.Fatal(err)
	}
	got, _, err := s.Read(ctx, "doc")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read = %q", got)
	}
}

func TestNoServerHoldsWholeValue(t *testing.T) {
	r := newRig(t, 5)
	s := r.store(t, 1, 2)
	ctx := context.Background()
	data := []byte("CONFIDENTIAL-MARKER-abcdefghijklmnop")
	if _, err := s.Write(ctx, "doc", data); err != nil {
		t.Fatal(err)
	}
	for _, srv := range r.servers {
		w := srv.Head("g", "doc")
		if w == nil {
			continue
		}
		if bytes.Contains(w.Value, []byte("CONFIDENTIAL-MARKER")) {
			t.Fatalf("server %s holds recognisable plaintext", srv.ID())
		}
		// Each server's fragment is ~1/k of the value, not the whole.
		if len(w.Value) >= len(data) {
			// The JSON envelope adds overhead; the raw fragment must still
			// be well under the original size for larger payloads.
			t.Logf("fragment envelope %d bytes vs data %d (small payload overhead)", len(w.Value), len(data))
		}
	}
}

func TestBColludingServersCannotReconstruct(t *testing.T) {
	// k = b+1 = 2: any single (b=1) compromised server holds 1 fragment,
	// which is information-theoretically insufficient structure for IDA
	// reconstruction (needs k=2). We check mechanically: fragments held
	// by b servers are fewer than k.
	r := newRig(t, 5)
	s := r.store(t, 1, 2)
	ctx := context.Background()
	if _, err := s.Write(ctx, "doc", []byte("secret")); err != nil {
		t.Fatal(err)
	}
	held := 0
	if r.servers[0].Head("g", "doc") != nil {
		held = 1
	}
	if held >= s.K() {
		t.Fatalf("one server holds %d fragments, >= k=%d", held, s.K())
	}
}

func TestReadSurvivesBFailures(t *testing.T) {
	r := newRig(t, 5)
	s := r.store(t, 1, 2)
	ctx := context.Background()
	data := []byte("still available")
	if _, err := s.Write(ctx, "doc", data); err != nil {
		t.Fatal(err)
	}
	r.servers[0].SetFault(server.Crash)
	got, _, err := s.Read(ctx, "doc")
	if err != nil {
		t.Fatalf("read with crashed server: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read = %q", got)
	}
}

func TestReadSurvivesCorruptFragments(t *testing.T) {
	r := newRig(t, 5)
	s := r.store(t, 1, 3) // k=3: tolerate b=1 corrupt + 1 crash
	ctx := context.Background()
	data := []byte("verified fragment set")
	if _, err := s.Write(ctx, "doc", data); err != nil {
		t.Fatal(err)
	}
	r.servers[1].SetFault(server.CorruptValue)
	got, _, err := s.Read(ctx, "doc")
	if err != nil {
		t.Fatalf("read with corrupting server: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read = %q", got)
	}
}

func TestOverwriteReturnsNewest(t *testing.T) {
	r := newRig(t, 5)
	s := r.store(t, 1, 2)
	ctx := context.Background()
	if _, err := s.Write(ctx, "doc", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write(ctx, "doc", []byte("v2-longer-value")); err != nil {
		t.Fatal(err)
	}
	got, _, err := s.Read(ctx, "doc")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("v2-longer-value")) {
		t.Fatalf("read = %q, want v2", got)
	}
}

func TestReadMissingItem(t *testing.T) {
	r := newRig(t, 5)
	s := r.store(t, 1, 2)
	if _, _, err := s.Read(context.Background(), "ghost"); !errors.Is(err, ErrNotEnoughFragments) {
		t.Fatalf("err = %v, want ErrNotEnoughFragments", err)
	}
}

func TestConfigValidation(t *testing.T) {
	r := newRig(t, 5)
	key := cryptoutil.DeterministicKeyPair("o", "s")
	base := Config{ID: "o", Key: key, Ring: r.ring, Servers: r.names, B: 1, Group: "g",
		Caller: r.bus.Caller("o", nil)}

	// k <= b: colluders could reconstruct.
	bad := base
	bad.K = 1
	if _, err := New(bad); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("k=b accepted: %v", err)
	}
	// k > n-b: reads not live under b failures.
	bad = base
	bad.K = 5
	if _, err := New(bad); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("k>n-b accepted: %v", err)
	}
	// Default k = b+1.
	s, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	if s.K() != 2 {
		t.Fatalf("default k = %d, want b+1 = 2", s.K())
	}
}

func TestLargePayload(t *testing.T) {
	r := newRig(t, 7)
	s := r.store(t, 2, 3)
	ctx := context.Background()
	data := make([]byte, 64*1024)
	for i := range data {
		data[i] = byte(i * 31)
	}
	if _, err := s.Write(ctx, "blob", data); err != nil {
		t.Fatal(err)
	}
	got, _, err := s.Read(ctx, "blob")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("large payload mismatch")
	}
	// Space optimality: each fragment ~ |data|/k.
	for _, srv := range r.servers {
		if w := srv.Head("g", "blob"); w != nil {
			if len(w.Value) > len(data)/s.K()*2 {
				t.Fatalf("fragment %d bytes, want ~%d", len(w.Value), len(data)/s.K())
			}
		}
	}
}

func TestGossipDoesNotConcentrateFragments(t *testing.T) {
	// The confidentiality argument requires that honest servers hold at
	// most one fragment per item version even while gossiping: pushed
	// fragments carry the same stamp as the receiver's own and therefore
	// never replace it. A server missing its fragment may adopt one pushed
	// copy, but never accumulates several.
	r := newRig(t, 5)
	s := r.store(t, 1, 2)
	ctx := context.Background()
	if _, err := s.Write(ctx, "doc", []byte("dispersed secret material")); err != nil {
		t.Fatal(err)
	}

	// Simulate aggressive gossip: every server pushes its head to every
	// other server, repeatedly.
	for round := 0; round < 3; round++ {
		for _, src := range r.servers {
			head := src.Head("g", "doc")
			if head == nil {
				continue
			}
			for _, dst := range r.servers {
				if dst != src {
					dst.ApplyDisseminated(head)
				}
			}
		}
	}

	// Each server still holds exactly one fragment (its head), and the
	// fragments remain distinct enough that the value is reconstructible.
	indices := make(map[int]int)
	for _, srv := range r.servers {
		head := srv.Head("g", "doc")
		if head == nil {
			t.Fatalf("server %s lost its fragment", srv.ID())
		}
		env, err := wire.DecodeFragmentEnvelope(head.Value)
		if err != nil {
			t.Fatalf("server %s head is not a fragment envelope: %v", srv.ID(), err)
		}
		indices[env.Index]++
	}
	if len(indices) < s.K() {
		t.Fatalf("only %d distinct fragment indices survive gossip, need >= k=%d", len(indices), s.K())
	}
	got, _, err := s.Read(ctx, "doc")
	if err != nil {
		t.Fatalf("read after gossip: %v", err)
	}
	if !bytes.Equal(got, []byte("dispersed secret material")) {
		t.Fatalf("read = %q", got)
	}
}
