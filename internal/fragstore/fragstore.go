// Package fragstore layers fragmentation–scattering over the secure
// store's replicas: each value is dispersed with Rabin's IDA into n
// fragments, one per server, such that any k reconstruct it and fewer
// than k reveal nothing useful. The paper cites this line of work (Fray
// et al. [18], Rabin [14], Alon et al. [15]) as a complementary technique
// the store "could benefit from": with k >= b+1, even all b compromised
// servers pooling their fragments cannot reconstruct a confidential item,
// without any encryption key to manage, and any n-b healthy servers
// suffice to read.
//
// Fragments travel in ordinary SignedWrites carrying the binary fragment
// envelope (wire.FragmentEnvelope): the share plus the cross-checksum —
// the digest vector of all n shares — whose CrossDigest the writer's one
// signature binds through the stamp. Every fragment therefore
// self-verifies (digest(share) == cross[index]), all n per-server writes
// share a single signature and an identical stamp, and dissemination
// cannot concentrate fragments because equal stamps never overwrite: each
// honest server keeps exactly the one share addressed to it.
//
// Reads gather n-b replies, bucket verified fragments by their full stamp
// (time, writer, cross-digest), reconstruct the newest bucket holding k
// index-distinct shares, and then re-disperse the result to confirm it
// regenerates the signed cross-checksum. That last check is what defeats
// an equivocating *writer*: a client that signs a checksum vector not
// produced by any single dispersal could otherwise make two honest
// readers — reaching different k-subsets — reconstruct different values.
package fragstore

import (
	"context"
	"errors"
	"fmt"
	"time"

	"securestore/internal/accessctl"
	"securestore/internal/cryptoutil"
	"securestore/internal/fragment"
	"securestore/internal/metrics"
	"securestore/internal/quorum"
	"securestore/internal/sharding"
	"securestore/internal/timestamp"
	"securestore/internal/transport"
	"securestore/internal/wire"
)

// Errors returned by the fragmented store.
var (
	ErrNotEnoughFragments = errors.New("fragstore: not enough fragments to reconstruct")
	ErrInfeasible         = errors.New("fragstore: infeasible configuration")
	// ErrEquivocation reports that the only reconstructible version was
	// poisoned: its signed cross-checksum does not correspond to any
	// single dispersal, so different reader quorums could decode
	// different values and the store refuses to return any of them.
	ErrEquivocation = errors.New("fragstore: writer equivocation detected")
)

// Metric names counted by reads (exported for tests and the /metrics
// exporter's custom-counter section).
const (
	// MetricKMismatch counts replies whose envelope carried a threshold
	// k different from the store's — misconfigured or Byzantine servers.
	MetricKMismatch = "fragstore.read.kmismatch"
	// MetricBadIndex counts replies whose fragment index or share count
	// is out of range for the item's replica set.
	MetricBadIndex = "fragstore.read.badindex"
	// MetricEquivocation counts detected writer equivocations: either two
	// distinct cross-checksums under one (time, writer) stamp, or a
	// reconstruction that fails to regenerate its signed cross-checksum.
	MetricEquivocation = "fragstore.equivocation.detected"
)

// Config assembles a fragmented store client.
type Config struct {
	// ID and Key identify and sign for the client.
	ID  string
	Key cryptoutil.KeyPair
	// Ring holds all well-known public keys.
	Ring *cryptoutil.Keyring
	// Servers lists the replicas of a single-group deployment; one
	// fragment goes to each. Ignored when Table is set.
	Servers []string
	// Table, when non-nil, routes each item to its owning replica group:
	// the item's fragments are dispersed across that group's servers.
	Table *sharding.Table
	// B is the fault bound.
	B int
	// K is the reconstruction threshold. It must satisfy b < K <= n-b for
	// every replica group: the lower bound keeps b colluding servers from
	// reconstructing, the upper keeps reads live with b unavailable.
	// Default b+1.
	K int
	// Group names the related item group at the servers.
	Group string
	// Caller is the client's transport.
	Caller transport.Caller
	// Token authorizes access (may be nil without an authority).
	Token *accessctl.Token
	// Metrics receives cost accounting.
	Metrics *metrics.Counters
	// CallTimeout bounds each scatter/gather (default 2s).
	CallTimeout time.Duration
}

// Store is a fragmented-store client session.
type Store struct {
	cfg   Config
	clock timestamp.Clock
}

// New validates the configuration: the feasibility bound b < k <= n-b
// must hold for every replica group fragments can land on.
func New(cfg Config) (*Store, error) {
	if cfg.K == 0 {
		cfg.K = cfg.B + 1
	}
	if cfg.Caller == nil {
		return nil, errors.New("fragstore: caller required")
	}
	check := func(where string, n int) error {
		if cfg.K <= cfg.B || cfg.K > n-cfg.B {
			return fmt.Errorf("%w: need b < k <= n-b, have %s n=%d b=%d k=%d", ErrInfeasible, where, n, cfg.B, cfg.K)
		}
		return nil
	}
	if cfg.Table != nil {
		for _, shard := range cfg.Table.Shards {
			if err := check("shard "+shard.Name, len(shard.Servers)); err != nil {
				return nil, err
			}
		}
	} else if err := check("cluster", len(cfg.Servers)); err != nil {
		return nil, err
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 2 * time.Second
	}
	return &Store{cfg: cfg}, nil
}

// K returns the reconstruction threshold in use.
func (s *Store) K() int { return s.cfg.K }

// serversFor resolves the replica set an item's fragments live on: its
// owning group under the shard table, or the flat server list.
func (s *Store) serversFor(item string) []string {
	if s.cfg.Table != nil {
		return s.cfg.Table.ShardFor(item).Servers
	}
	return s.cfg.Servers
}

// Write disperses value into n fragments and stores one at each of the
// item's replicas. It succeeds once k+b servers hold their fragment,
// which guarantees that a later read reaching all-but-b servers finds at
// least k.
func (s *Store) Write(ctx context.Context, item string, value []byte) (timestamp.Stamp, error) {
	return s.WriteAbove(ctx, item, value, 0)
}

// WriteAbove is Write with a timestamp floor: the new version's time
// exceeds both the store's clock and floor, letting an embedding client
// keep fragment writes ordered after the session context it has observed.
func (s *Store) WriteAbove(ctx context.Context, item string, value []byte, floor uint64) (timestamp.Stamp, error) {
	servers := s.serversFor(item)
	n := len(servers)
	frags, err := fragment.Split(value, s.cfg.K, n)
	if err != nil {
		return timestamp.Stamp{}, fmt.Errorf("fragstore write %s: %w", item, err)
	}

	// Cross-checksum: the digest of every share, identical in all n
	// envelopes. The stamp's digest commits to it (and through it to each
	// share), so one signature covers the whole dispersal.
	cross := make([][32]byte, n)
	for i, f := range frags {
		cross[i] = cryptoutil.Digest(f.Data)
	}
	envs := make([]*wire.FragmentEnvelope, n)
	for i, f := range frags {
		envs[i] = &wire.FragmentEnvelope{Index: f.Index, K: s.cfg.K, N: n, Cross: cross, Share: f.Data}
	}
	stamp := timestamp.Stamp{
		Time:   s.clock.Next(floor),
		Writer: s.cfg.Key.ID,
		Digest: envs[0].CrossDigest(),
	}

	// One signature for all n writes: the envelopes differ only in index
	// and share, neither of which the signing bytes cover directly — the
	// cross-digest in the stamp binds them all. Sign the first write and
	// share its signature; SignedWrite.Verify accepts each copy because
	// every envelope reproduces the identical signing core.
	writes := make(map[string]*wire.SignedWrite, n)
	var first *wire.SignedWrite
	for i, srv := range servers {
		raw, err := envs[i].Encode()
		if err != nil {
			return timestamp.Stamp{}, fmt.Errorf("fragstore write %s: %w", item, err)
		}
		w := &wire.SignedWrite{Group: s.cfg.Group, Item: item, Stamp: stamp, Value: raw}
		if first == nil {
			w.Sign(s.cfg.Key, s.cfg.Metrics)
			first = w
		} else {
			w.Writer = first.Writer
			w.Sig = first.Sig
		}
		writes[srv] = w
	}

	opCtx, cancel := context.WithTimeout(ctx, s.cfg.CallTimeout)
	defer cancel()

	need := s.cfg.K + s.cfg.B
	replies, err := quorum.GatherAll(opCtx, s.cfg.Caller, servers, func(srv string) wire.Request {
		return wire.WriteReq{Write: writes[srv], Token: s.cfg.Token}
	}, need)
	if err != nil {
		return timestamp.Stamp{}, fmt.Errorf("fragstore write %s: %w", item, err)
	}
	if len(quorum.Successes(replies)) < need {
		return timestamp.Stamp{}, fmt.Errorf("fragstore write %s: %w", item, quorum.ErrInsufficient)
	}
	return stamp, nil
}

// Read gathers fragments from the item's replicas and reconstructs the
// newest version for which k verifiable fragments with distinct indices
// exist — then confirms the result re-disperses to the signed
// cross-checksum before returning it.
func (s *Store) Read(ctx context.Context, item string) ([]byte, timestamp.Stamp, error) {
	servers := s.serversFor(item)
	n := len(servers)

	opCtx, cancel := context.WithTimeout(ctx, s.cfg.CallTimeout)
	defer cancel()

	replies, err := quorum.GatherAll(opCtx, s.cfg.Caller, servers, func(string) wire.Request {
		return wire.ValueReq{Client: s.cfg.ID, Group: s.cfg.Group, Item: item, Token: s.cfg.Token}
	}, n-s.cfg.B)
	if err != nil {
		return nil, timestamp.Stamp{}, fmt.Errorf("fragstore read %s: %w", item, err)
	}

	// Bucket verified fragments by their full stamp — (time, writer,
	// cross-digest). Verify has already pinned each reply to its signer
	// (stamp.Writer == signature), its cross-checksum (stamp.Digest ==
	// CrossDigest) and its own share (digest(share) == cross[index]), so
	// a bucket can only ever mix shares of one writer's one dispersal:
	// concurrent writers with colliding times land in separate buckets
	// instead of reconstructing interleaved garbage. Keying by fragment
	// index keeps a replayed duplicate from counting twice.
	type versionKey struct {
		time   uint64
		writer string
	}
	byStamp := make(map[timestamp.Stamp]map[int]fragment.Fragment)
	// crossByStamp keeps each bucket's full cross-checksum vector for the
	// post-reconstruction consistency check. All envelopes in one bucket
	// carry the same vector: the stamp's digest commits to it.
	crossByStamp := make(map[timestamp.Stamp][][32]byte)
	crossSeen := make(map[versionKey][32]byte)
	// poisoned marks (time, writer) pairs under which the writer signed two
	// different dispersals. Neither may be returned: any two reader quorums
	// (n-b each) overlap in enough servers that both readers see both
	// digests, so refusing every bucket of the pair keeps honest readers
	// consistent with each other — they fall back to the same older version.
	poisoned := make(map[versionKey]bool)
	equivocated := false
	for _, r := range quorum.Successes(replies) {
		vr, ok := r.Resp.(wire.ValueResp)
		if !ok || vr.Write == nil || vr.Write.Item != item || vr.Write.Group != s.cfg.Group {
			continue
		}
		if err := vr.Write.Verify(s.cfg.Ring, s.cfg.Metrics); err != nil {
			continue // tampered or mislabeled fragment: drop
		}
		env, err := wire.DecodeFragmentEnvelope(vr.Write.Value)
		if err != nil {
			continue // not a fragment envelope (e.g. a replicated value)
		}
		if env.K != s.cfg.K {
			s.cfg.Metrics.AddCustom(MetricKMismatch, 1)
			continue
		}
		if env.N != n || env.Index < 0 || env.Index >= n {
			// Geometry from some other replica set: its indices do not
			// name rows of this item's n-row dispersal matrix, so letting
			// them into a bucket would corrupt the k-distinct count.
			s.cfg.Metrics.AddCustom(MetricBadIndex, 1)
			continue
		}
		key := versionKey{time: vr.Write.Stamp.Time, writer: vr.Write.Stamp.Writer}
		if prev, ok := crossSeen[key]; ok && prev != vr.Write.Stamp.Digest {
			// Same (time, writer), two cross-checksums: the writer signed
			// two different dispersals under one version number.
			if !poisoned[key] {
				s.cfg.Metrics.AddCustom(MetricEquivocation, 1)
			}
			poisoned[key] = true
			equivocated = true
		} else {
			crossSeen[key] = vr.Write.Stamp.Digest
		}
		set, ok := byStamp[vr.Write.Stamp]
		if !ok {
			set = make(map[int]fragment.Fragment)
			byStamp[vr.Write.Stamp] = set
			crossByStamp[vr.Write.Stamp] = env.Cross
		}
		set[env.Index] = fragment.Fragment{Index: env.Index, K: env.K, Data: env.Share}
	}

	// Walk candidate versions newest-first: reconstruct, then re-disperse
	// and compare against the signed cross-checksum. A version that fails
	// the re-check was poisoned by its writer and is skipped (counted),
	// falling back to the newest honest version below it.
	for {
		var (
			best      timestamp.Stamp
			bestFrags []fragment.Fragment
		)
		for stamp, set := range byStamp {
			if len(set) < s.cfg.K || poisoned[versionKey{time: stamp.Time, writer: stamp.Writer}] {
				continue
			}
			if bestFrags == nil || best.Less(stamp) {
				best = stamp
				bestFrags = bestFrags[:0]
				for _, f := range set {
					bestFrags = append(bestFrags, f)
				}
			}
		}
		if bestFrags == nil {
			if equivocated {
				return nil, timestamp.Stamp{}, fmt.Errorf("%w: item %s", ErrEquivocation, item)
			}
			return nil, timestamp.Stamp{}, fmt.Errorf("%w: item %s", ErrNotEnoughFragments, item)
		}

		value, err := fragment.Reconstruct(bestFrags)
		if err == nil && s.crossConsistent(value, crossByStamp[best]) {
			return value, best, nil
		}
		// Reconstruction failed or did not regenerate the signed
		// cross-checksum: the dispersal was never consistent, so any
		// other k-subset could decode differently. Refuse this version.
		s.cfg.Metrics.AddCustom(MetricEquivocation, 1)
		equivocated = true
		delete(byStamp, best)
	}
}

// crossConsistent re-disperses a reconstructed value and checks that ALL
// n regenerated shares match the cross-checksum the writer signed — not
// just the k shares this read happened to use, which any reconstruction
// regenerates trivially. Only a checksum vector produced by one honest
// Split passes at every index, so two correct readers reaching different
// k-subsets either both accept the same value or both reject the version.
func (s *Store) crossConsistent(value []byte, cross [][32]byte) bool {
	refrags, err := fragment.Split(value, s.cfg.K, len(cross))
	if err != nil {
		return false
	}
	for i, f := range refrags {
		if cryptoutil.Digest(f.Data) != cross[i] {
			return false
		}
	}
	return true
}
