// Package fragstore layers fragmentation–scattering over the secure
// store's replicas: each value is dispersed with Rabin's IDA into n
// fragments, one per server, such that any k reconstruct it and fewer
// than k reveal nothing useful. The paper cites this line of work (Fray
// et al. [18], Rabin [14], Alon et al. [15]) as a complementary technique
// the store "could benefit from": with k >= b+1, even all b compromised
// servers pooling their fragments cannot reconstruct a confidential item,
// without any encryption key to manage, and any n-b healthy servers
// suffice to read.
//
// Fragments travel in ordinary SignedWrites carrying the binary fragment
// envelope (wire.FragmentEnvelope): the share plus the cross-checksum —
// the digest vector of all n shares — whose CrossDigest the writer's one
// signature binds through the stamp. Every fragment therefore
// self-verifies (digest(share) == cross[index]), all n per-server writes
// share a single signature and an identical stamp, and dissemination
// cannot concentrate fragments because equal stamps never overwrite: each
// honest server keeps exactly the one share addressed to it.
//
// Reads wait for n-b distinct replies but fetch full shares selectively
// (read.go): k servers are asked for shares and the rest of the first
// max(k+b, n-b) for cheap stamp probes, with targeted escalation and a
// latency-derived hedge covering stragglers and adversaries. Verified
// fragments are bucketed by their full stamp (time, writer,
// cross-digest), the newest bucket holding k index-distinct shares is
// reconstructed, and the result re-dispersed to confirm it regenerates
// the signed cross-checksum. That last check is what defeats
// an equivocating *writer*: a client that signs a checksum vector not
// produced by any single dispersal could otherwise make two honest
// readers — reaching different k-subsets — reconstruct different values.
package fragstore

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"securestore/internal/accessctl"
	"securestore/internal/cryptoutil"
	"securestore/internal/fragment"
	"securestore/internal/metrics"
	"securestore/internal/quorum"
	"securestore/internal/sharding"
	"securestore/internal/timestamp"
	"securestore/internal/transport"
	"securestore/internal/wire"
)

// Errors returned by the fragmented store.
var (
	ErrNotEnoughFragments = errors.New("fragstore: not enough fragments to reconstruct")
	ErrInfeasible         = errors.New("fragstore: infeasible configuration")
	// ErrEquivocation reports that the only reconstructible version was
	// poisoned: its signed cross-checksum does not correspond to any
	// single dispersal, so different reader quorums could decode
	// different values and the store refuses to return any of them.
	ErrEquivocation = errors.New("fragstore: writer equivocation detected")
)

// Metric names counted by reads (exported for tests and the /metrics
// exporter's custom-counter section).
const (
	// MetricKMismatch counts replies whose envelope carried a threshold
	// k different from the store's — misconfigured or Byzantine servers.
	MetricKMismatch = "fragstore.read.kmismatch"
	// MetricBadIndex counts replies whose fragment index or share count
	// is out of range for the item's replica set.
	MetricBadIndex = "fragstore.read.badindex"
	// MetricEquivocation counts detected writer equivocations: either two
	// distinct cross-checksums under one (time, writer) stamp, or a
	// reconstruction that fails to regenerate its signed cross-checksum.
	MetricEquivocation = "fragstore.equivocation.detected"
)

// Config assembles a fragmented store client.
type Config struct {
	// ID and Key identify and sign for the client.
	ID  string
	Key cryptoutil.KeyPair
	// Ring holds all well-known public keys.
	Ring *cryptoutil.Keyring
	// Servers lists the replicas of a single-group deployment; one
	// fragment goes to each. Ignored when Table is set.
	Servers []string
	// Table, when non-nil, routes each item to its owning replica group:
	// the item's fragments are dispersed across that group's servers.
	Table *sharding.Table
	// B is the fault bound.
	B int
	// K is the reconstruction threshold. It must satisfy b < K <= n-b for
	// every replica group: the lower bound keeps b colluding servers from
	// reconstructing, the upper keeps reads live with b unavailable.
	// Default b+1.
	K int
	// Group names the related item group at the servers.
	Group string
	// Caller is the client's transport.
	Caller transport.Caller
	// Token authorizes access (may be nil without an authority).
	Token *accessctl.Token
	// Metrics receives cost accounting.
	Metrics *metrics.Counters
	// CallTimeout bounds each scatter/gather (default 2s).
	CallTimeout time.Duration
	// HedgeDelay tunes the fragmented read's straggler hedge: zero
	// (default) derives the delay from the store's observed whole-read
	// latency (~3x p99, clamped to [1ms, CallTimeout/2], CallTimeout/4
	// until warmed up), a positive value fixes it, and a negative value
	// disables hedging — a stalled initial wave then waits out
	// CallTimeout.
	HedgeDelay time.Duration
}

// Store is a fragmented-store client session.
type Store struct {
	cfg   Config
	clock timestamp.Clock
	// readDur samples whole-read gather durations; the adaptive hedge
	// delay derives from its p99.
	readDur metrics.Histogram
	// verifiedCross memoizes cross-checksum digests whose full-vector
	// re-dispersal check passed (crossConsistent). The digest commits to
	// (k, n, cross), and any k-subset of a passing version decodes the
	// same value, so a hit soundly skips the per-read re-encode + n-share
	// hash — the dominant CPU of steady-state reads. FIFO-bounded; only
	// passing vectors enter, so a poisoned dispersal is re-checked (and
	// re-refused) every time.
	verifiedMu    sync.Mutex
	verifiedCross map[[32]byte]struct{}
	verifiedOrder [][32]byte
	verifiedNext  int
}

// verifiedCrossSize bounds the verified cross-checksum memo: entries are
// 32 bytes, and a client's working set of fragmented items rarely has
// more than a few hundred live versions at once.
const verifiedCrossSize = 512

// crossVerified reports whether digest's dispersal already passed the
// full-vector check.
func (s *Store) crossVerified(digest [32]byte) bool {
	s.verifiedMu.Lock()
	_, ok := s.verifiedCross[digest]
	s.verifiedMu.Unlock()
	return ok
}

// markCrossVerified records a passing dispersal, evicting FIFO at the
// bound.
func (s *Store) markCrossVerified(digest [32]byte) {
	s.verifiedMu.Lock()
	defer s.verifiedMu.Unlock()
	if _, ok := s.verifiedCross[digest]; ok {
		return
	}
	if len(s.verifiedOrder) < verifiedCrossSize {
		s.verifiedOrder = append(s.verifiedOrder, digest)
	} else {
		delete(s.verifiedCross, s.verifiedOrder[s.verifiedNext])
		s.verifiedOrder[s.verifiedNext] = digest
		s.verifiedNext = (s.verifiedNext + 1) % verifiedCrossSize
	}
	s.verifiedCross[digest] = struct{}{}
}

// New validates the configuration: the feasibility bound b < k <= n-b
// must hold for every replica group fragments can land on.
func New(cfg Config) (*Store, error) {
	if cfg.K == 0 {
		cfg.K = cfg.B + 1
	}
	if cfg.Caller == nil {
		return nil, errors.New("fragstore: caller required")
	}
	check := func(where string, n int) error {
		if cfg.K <= cfg.B || cfg.K > n-cfg.B {
			return fmt.Errorf("%w: need b < k <= n-b, have %s n=%d b=%d k=%d", ErrInfeasible, where, n, cfg.B, cfg.K)
		}
		return nil
	}
	if cfg.Table != nil {
		for _, shard := range cfg.Table.Shards {
			if err := check("shard "+shard.Name, len(shard.Servers)); err != nil {
				return nil, err
			}
		}
	} else if err := check("cluster", len(cfg.Servers)); err != nil {
		return nil, err
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 2 * time.Second
	}
	return &Store{cfg: cfg, verifiedCross: make(map[[32]byte]struct{})}, nil
}

// K returns the reconstruction threshold in use.
func (s *Store) K() int { return s.cfg.K }

// serversFor resolves the replica set an item's fragments live on: its
// owning group under the shard table, or the flat server list.
func (s *Store) serversFor(item string) []string {
	if s.cfg.Table != nil {
		return s.cfg.Table.ShardFor(item).Servers
	}
	return s.cfg.Servers
}

// Write disperses value into n fragments and stores one at each of the
// item's replicas. It succeeds once k+b servers hold their fragment,
// which guarantees that a later read reaching all-but-b servers finds at
// least k.
func (s *Store) Write(ctx context.Context, item string, value []byte) (timestamp.Stamp, error) {
	return s.WriteAbove(ctx, item, value, 0)
}

// WriteAbove is Write with a timestamp floor: the new version's time
// exceeds both the store's clock and floor, letting an embedding client
// keep fragment writes ordered after the session context it has observed.
func (s *Store) WriteAbove(ctx context.Context, item string, value []byte, floor uint64) (timestamp.Stamp, error) {
	servers := s.serversFor(item)
	n := len(servers)
	encStart := time.Now()
	frags, err := fragment.Split(value, s.cfg.K, n)
	if err != nil {
		return timestamp.Stamp{}, fmt.Errorf("fragstore write %s: %w", item, err)
	}

	// Cross-checksum: the digest of every share, identical in all n
	// envelopes. The stamp's digest commits to it (and through it to each
	// share), so one signature covers the whole dispersal.
	cross := make([][32]byte, n)
	for i, f := range frags {
		cross[i] = cryptoutil.Digest(f.Data)
	}
	s.cfg.Metrics.ObserveFragEncode(time.Since(encStart))
	envs := make([]*wire.FragmentEnvelope, n)
	for i, f := range frags {
		envs[i] = &wire.FragmentEnvelope{Index: f.Index, K: s.cfg.K, N: n, Cross: cross, Share: f.Data}
	}
	stamp := timestamp.Stamp{
		Time:   s.clock.Next(floor),
		Writer: s.cfg.Key.ID,
		Digest: envs[0].CrossDigest(),
	}
	// One honest Split produced this vector, so it is consistent by
	// construction: seed the memo and the writer's own read-back skips
	// the re-dispersal check.
	s.markCrossVerified(stamp.Digest)

	// One signature for all n writes: the envelopes differ only in index
	// and share, neither of which the signing bytes cover directly — the
	// cross-digest in the stamp binds them all. Sign the first write and
	// share its signature; SignedWrite.Verify accepts each copy because
	// every envelope reproduces the identical signing core.
	writes := make(map[string]*wire.SignedWrite, n)
	var first *wire.SignedWrite
	for i, srv := range servers {
		raw, err := envs[i].Encode()
		if err != nil {
			return timestamp.Stamp{}, fmt.Errorf("fragstore write %s: %w", item, err)
		}
		w := &wire.SignedWrite{Group: s.cfg.Group, Item: item, Stamp: stamp, Value: raw}
		if first == nil {
			w.Sign(s.cfg.Key, s.cfg.Metrics)
			first = w
		} else {
			w.Writer = first.Writer
			w.Sig = first.Sig
		}
		writes[srv] = w
	}

	opCtx, cancel := context.WithTimeout(ctx, s.cfg.CallTimeout)
	defer cancel()

	need := s.cfg.K + s.cfg.B
	replies, err := quorum.GatherAll(opCtx, s.cfg.Caller, servers, func(srv string) wire.Request {
		return wire.WriteReq{Write: writes[srv], Token: s.cfg.Token}
	}, need)
	if err != nil {
		return timestamp.Stamp{}, fmt.Errorf("fragstore write %s: %w", item, err)
	}
	if len(quorum.Successes(replies)) < need {
		return timestamp.Stamp{}, fmt.Errorf("fragstore write %s: %w", item, quorum.ErrInsufficient)
	}
	return stamp, nil
}

// crossConsistent re-disperses a reconstructed value and checks that ALL
// n regenerated shares match the cross-checksum the writer signed — not
// just the k shares this read happened to use, which any reconstruction
// regenerates trivially. Only a checksum vector produced by one honest
// Split passes at every index, so two correct readers reaching different
// k-subsets either both accept the same value or both reject the version.
// digest is the stamp's cross-digest — H(magic, k, n, cross) — used to
// memoize passing vectors (see verifiedCross): a version's first read
// pays the full re-dispersal, steady-state re-reads skip it.
func (s *Store) crossConsistent(digest [32]byte, value []byte, cross [][32]byte) bool {
	if s.crossVerified(digest) {
		return true
	}
	refrags, err := fragment.Split(value, s.cfg.K, len(cross))
	if err != nil {
		return false
	}
	for i, f := range refrags {
		if cryptoutil.Digest(f.Data) != cross[i] {
			return false
		}
	}
	s.markCrossVerified(digest)
	return true
}
