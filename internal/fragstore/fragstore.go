// Package fragstore layers fragmentation–scattering over the secure
// store's replicas: each value is dispersed with Rabin's IDA into n
// fragments, one per server, such that any k reconstruct it and fewer
// than k reveal nothing useful. The paper cites this line of work (Fray
// et al. [18], Rabin [14], Alon et al. [15]) as a complementary technique
// the store "could benefit from": with k >= b+1, even all b compromised
// servers pooling their fragments cannot reconstruct a confidential item,
// without any encryption key to manage, and any n-b healthy servers
// suffice to read.
//
// Fragments are carried in ordinary SignedWrites (one per server, same
// item and stamp, fragment index inside the signed payload), so all of
// the store's integrity machinery applies unchanged. Fragment writes are
// deliberately delivered point-to-point: dissemination ignores them
// because equal stamps never overwrite, so honest servers hold at most
// one fragment per item version.
package fragstore

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"securestore/internal/accessctl"
	"securestore/internal/cryptoutil"
	"securestore/internal/fragment"
	"securestore/internal/metrics"
	"securestore/internal/quorum"
	"securestore/internal/timestamp"
	"securestore/internal/transport"
	"securestore/internal/wire"
)

// Errors returned by the fragmented store.
var (
	ErrNotEnoughFragments = errors.New("fragstore: not enough fragments to reconstruct")
	ErrInfeasible         = errors.New("fragstore: infeasible configuration")
)

// Config assembles a fragmented store client.
type Config struct {
	// ID and Key identify and sign for the client.
	ID  string
	Key cryptoutil.KeyPair
	// Ring holds all well-known public keys.
	Ring *cryptoutil.Keyring
	// Servers lists the replicas; one fragment goes to each.
	Servers []string
	// B is the fault bound.
	B int
	// K is the reconstruction threshold. It must satisfy b < K <= n-b:
	// the lower bound keeps b colluding servers from reconstructing, the
	// upper keeps reads live with b unavailable. Default b+1.
	K int
	// Group names the related item group at the servers.
	Group string
	// Caller is the client's transport.
	Caller transport.Caller
	// Token authorizes access (may be nil without an authority).
	Token *accessctl.Token
	// Metrics receives cost accounting.
	Metrics *metrics.Counters
	// CallTimeout bounds each scatter/gather (default 2s).
	CallTimeout time.Duration
}

// Store is a fragmented-store client session.
type Store struct {
	cfg   Config
	n     int
	clock timestamp.Clock
}

// payload is the signed fragment envelope carried in SignedWrite.Value.
type payload struct {
	Index int    `json:"index"`
	K     int    `json:"k"`
	Data  []byte `json:"data"`
}

// New validates the configuration.
func New(cfg Config) (*Store, error) {
	n := len(cfg.Servers)
	if cfg.K == 0 {
		cfg.K = cfg.B + 1
	}
	if cfg.K <= cfg.B || cfg.K > n-cfg.B {
		return nil, fmt.Errorf("%w: need b < k <= n-b, have n=%d b=%d k=%d", ErrInfeasible, n, cfg.B, cfg.K)
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 2 * time.Second
	}
	if cfg.Caller == nil {
		return nil, errors.New("fragstore: caller required")
	}
	return &Store{cfg: cfg, n: n}, nil
}

// K returns the reconstruction threshold in use.
func (s *Store) K() int { return s.cfg.K }

// Write disperses value into n fragments and stores one at each server.
// It succeeds once k+b servers hold their fragment, which guarantees that
// a later read reaching all-but-b servers finds at least k.
func (s *Store) Write(ctx context.Context, item string, value []byte) (timestamp.Stamp, error) {
	frags, err := fragment.Split(value, s.cfg.K, s.n)
	if err != nil {
		return timestamp.Stamp{}, fmt.Errorf("fragstore write %s: %w", item, err)
	}
	stamp := timestamp.Stamp{Time: s.clock.Next(0)}

	opCtx, cancel := context.WithTimeout(ctx, s.cfg.CallTimeout)
	defer cancel()

	// One distinct signed write per server: the fragment index is inside
	// the signed payload, so a faulty server cannot pass off another
	// server's fragment as its own index.
	writes := make(map[string]*wire.SignedWrite, s.n)
	for i, srv := range s.cfg.Servers {
		raw, err := json.Marshal(payload{Index: frags[i].Index, K: frags[i].K, Data: frags[i].Data})
		if err != nil {
			return timestamp.Stamp{}, fmt.Errorf("fragstore write %s: %w", item, err)
		}
		w := &wire.SignedWrite{Group: s.cfg.Group, Item: item, Stamp: stamp, Value: raw}
		w.Sign(s.cfg.Key, s.cfg.Metrics)
		writes[srv] = w
	}

	need := s.cfg.K + s.cfg.B
	replies, err := quorum.GatherAll(opCtx, s.cfg.Caller, s.cfg.Servers, func(srv string) wire.Request {
		return wire.WriteReq{Write: writes[srv], Token: s.cfg.Token}
	}, need)
	if err != nil {
		return timestamp.Stamp{}, fmt.Errorf("fragstore write %s: %w", item, err)
	}
	if len(quorum.Successes(replies)) < need {
		return timestamp.Stamp{}, fmt.Errorf("fragstore write %s: %w", item, quorum.ErrInsufficient)
	}
	return stamp, nil
}

// Read gathers fragments from the servers and reconstructs the newest
// version for which k verifiable fragments with distinct indices exist.
func (s *Store) Read(ctx context.Context, item string) ([]byte, timestamp.Stamp, error) {
	opCtx, cancel := context.WithTimeout(ctx, s.cfg.CallTimeout)
	defer cancel()

	replies, err := quorum.GatherAll(opCtx, s.cfg.Caller, s.cfg.Servers, func(string) wire.Request {
		return wire.ValueReq{Client: s.cfg.ID, Group: s.cfg.Group, Item: item, Token: s.cfg.Token}
	}, s.n-s.cfg.B)
	if err != nil {
		return nil, timestamp.Stamp{}, fmt.Errorf("fragstore read %s: %w", item, err)
	}

	// Bucket verified fragments by stamp, keyed by fragment index so a
	// replayed duplicate cannot count twice.
	byStamp := make(map[timestamp.Stamp]map[int]fragment.Fragment)
	for _, r := range quorum.Successes(replies) {
		vr, ok := r.Resp.(wire.ValueResp)
		if !ok || vr.Write == nil || vr.Write.Item != item || vr.Write.Group != s.cfg.Group {
			continue
		}
		if err := vr.Write.Verify(s.cfg.Ring, s.cfg.Metrics); err != nil {
			continue // tampered fragment: drop
		}
		var p payload
		if err := json.Unmarshal(vr.Write.Value, &p); err != nil || p.K != s.cfg.K {
			continue
		}
		set, ok := byStamp[vr.Write.Stamp]
		if !ok {
			set = make(map[int]fragment.Fragment)
			byStamp[vr.Write.Stamp] = set
		}
		set[p.Index] = fragment.Fragment{Index: p.Index, K: p.K, Data: p.Data}
	}

	// Newest stamp with at least k distinct fragments wins.
	var (
		best      timestamp.Stamp
		bestFrags []fragment.Fragment
	)
	for stamp, set := range byStamp {
		if len(set) < s.cfg.K {
			continue
		}
		if bestFrags == nil || best.Less(stamp) {
			best = stamp
			bestFrags = bestFrags[:0]
			for _, f := range set {
				bestFrags = append(bestFrags, f)
			}
		}
	}
	if bestFrags == nil {
		return nil, timestamp.Stamp{}, fmt.Errorf("%w: item %s", ErrNotEnoughFragments, item)
	}

	value, err := fragment.Reconstruct(bestFrags[:s.cfg.K])
	if err != nil {
		return nil, timestamp.Stamp{}, fmt.Errorf("fragstore read %s: %w", item, err)
	}
	return value, best, nil
}
