package quorum

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"securestore/internal/wire"
)

// scriptCaller routes each call through a per-server handler; handlers
// run on the engine's goroutines and may block on ctx.
type scriptCaller struct {
	handlers map[string]func(ctx context.Context, req wire.Request) (wire.Response, error)
}

func (c *scriptCaller) Call(ctx context.Context, to string, req wire.Request) (wire.Response, error) {
	h, ok := c.handlers[to]
	if !ok {
		return nil, errors.New("no handler for " + to)
	}
	return h(ctx, req)
}

func (c *scriptCaller) Origin() string { return "test" }

func ping() wire.Request { return wire.MetaReq{Client: "test", Group: "g", Item: "x"} }

func ok(ctx context.Context, req wire.Request) (wire.Response, error) {
	return wire.MetaResp{Has: true}, nil
}

func stalled(ctx context.Context, req wire.Request) (wire.Response, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestGatherHedgedCompletesWithoutHedge: the initial wave answers, decide
// declares done, the hedge never fires.
func TestGatherHedgedCompletesWithoutHedge(t *testing.T) {
	caller := &scriptCaller{handlers: map[string]func(context.Context, wire.Request) (wire.Response, error){
		"a": ok, "b": ok,
	}}
	var hedges atomic.Int32
	got := 0
	res, err := GatherHedged(context.Background(), caller,
		[]Call{{"a", ping()}, {"b", ping()}},
		time.Hour, func() []Call { hedges.Add(1); return nil },
		func(r Reply, outstanding int) ([]Call, bool) {
			if r.Err != nil {
				t.Fatalf("unexpected error: %v", r.Err)
			}
			got++
			return nil, got == 2
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hedged || hedges.Load() != 0 {
		t.Fatal("hedge fired on a healthy wave")
	}
	if len(res.Replies) != 2 {
		t.Fatalf("collected %d replies, want 2", len(res.Replies))
	}
}

// TestGatherHedgedFiresOnStall: one initial call stalls, the hedge wave
// completes the operation, and the stalled goroutine exits on cancel.
func TestGatherHedgedFiresOnStall(t *testing.T) {
	caller := &scriptCaller{handlers: map[string]func(context.Context, wire.Request) (wire.Response, error){
		"a": ok, "slow": stalled, "c": ok,
	}}
	start := time.Now()
	res, err := GatherHedged(context.Background(), caller,
		[]Call{{"a", ping()}, {"slow", ping()}},
		20*time.Millisecond, func() []Call { return []Call{{"c", ping()}} },
		func(r Reply, outstanding int) ([]Call, bool) {
			return nil, r.Err == nil && r.Server == "c"
		})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hedged {
		t.Fatal("hedge did not fire")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("stalled call blocked completion for %v", elapsed)
	}
}

// TestGatherHedgedEscalatesFromDecide: decide launches a follow-up call
// on failure and the engine keeps the outstanding count straight.
func TestGatherHedgedEscalatesFromDecide(t *testing.T) {
	fail := func(ctx context.Context, req wire.Request) (wire.Response, error) {
		return nil, errors.New("boom")
	}
	caller := &scriptCaller{handlers: map[string]func(context.Context, wire.Request) (wire.Response, error){
		"a": fail, "b": ok,
	}}
	var done bool
	_, err := GatherHedged(context.Background(), caller,
		[]Call{{"a", ping()}}, 0, nil,
		func(r Reply, outstanding int) ([]Call, bool) {
			if r.Err != nil {
				return []Call{{"b", ping()}}, false
			}
			done = true
			return nil, true
		})
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("escalated call never resolved")
	}
}

// TestGatherHedgedDrainsWithoutDone: when every call resolves and the
// planner never declares done, the engine returns all replies without an
// error — completion semantics belong to the planner.
func TestGatherHedgedDrainsWithoutDone(t *testing.T) {
	fail := func(ctx context.Context, req wire.Request) (wire.Response, error) {
		return nil, errors.New("boom")
	}
	caller := &scriptCaller{handlers: map[string]func(context.Context, wire.Request) (wire.Response, error){
		"a": ok, "b": fail,
	}}
	res, err := GatherHedged(context.Background(), caller,
		[]Call{{"a", ping()}, {"b", ping()}}, 0, nil,
		func(r Reply, outstanding int) ([]Call, bool) { return nil, false })
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Replies) != 2 {
		t.Fatalf("collected %d replies, want 2", len(res.Replies))
	}
}

// TestGatherHedgedContextCancel: an expired context surfaces as the
// engine error with the partial reply set.
func TestGatherHedgedContextCancel(t *testing.T) {
	caller := &scriptCaller{handlers: map[string]func(context.Context, wire.Request) (wire.Response, error){
		"slow": stalled,
	}}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := GatherHedged(ctx, caller, []Call{{"slow", ping()}}, 0, nil,
		func(r Reply, outstanding int) ([]Call, bool) { return nil, false })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}
