package quorum

// hedged.go — a planner-driven scatter for partial fan-out reads. Where
// GatherAll contacts every server and GatherStaged expands one server per
// failure, GatherHedged lets the caller steer the fan-out reply by reply:
// an initial wave of per-server calls (possibly of different request
// kinds — full-share fetches to some servers, cheap metadata probes to
// others), follow-up calls decided from each resolution, and a one-shot
// hedge wave launched when a latency-derived delay elapses before the
// operation completes. The fragmented read path (internal/fragstore) uses
// it to contact k+b replicas instead of all n in the common case.

import (
	"context"
	"sync"
	"time"

	"securestore/internal/transport"
	"securestore/internal/wire"
)

// Call names one request to send to one server.
type Call struct {
	Server string
	Req    wire.Request
}

// HedgeResult is the outcome of a GatherHedged run.
type HedgeResult struct {
	// Replies holds every resolution collected before completion, in
	// arrival order.
	Replies []Reply
	// Hedged reports whether the hedge timer fired and its wave was
	// launched.
	Hedged bool
}

// GatherHedged launches the initial calls concurrently and then lets
// decide steer: after every resolution (success or failure) decide
// receives the reply plus the number of still-outstanding calls and
// returns follow-up calls to launch and whether the operation is
// complete. When hedgeDelay elapses before completion (and hedge is
// non-nil), hedge() is invoked exactly once and its calls are launched —
// the slow-straggler escape hatch. The engine returns when decide reports
// done, when every launched call has resolved, or when ctx expires;
// outstanding calls are cancelled on return and their goroutines exit
// without blocking. Completion semantics live entirely in the planner:
// a drained engine without done is not an error here.
func GatherHedged(ctx context.Context, caller transport.Caller, initial []Call,
	hedgeDelay time.Duration, hedge func() []Call,
	decide func(r Reply, outstanding int) (next []Call, done bool)) (HedgeResult, error) {

	callCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Senders offer their reply under the call context so that a
	// goroutine resolving after completion never blocks on the channel —
	// cancel() releases it and the reply is dropped.
	replies := make(chan Reply)
	var wg sync.WaitGroup
	launch := func(c Call) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := call(callCtx, caller, c.Server, c.Req)
			select {
			case replies <- Reply{Server: c.Server, Resp: resp, Err: err}:
			case <-callCtx.Done():
			}
		}()
	}

	var res HedgeResult
	for _, c := range initial {
		launch(c)
	}
	outstanding := len(initial)

	var hedgeCh <-chan time.Time
	if hedge != nil && hedgeDelay > 0 {
		timer := time.NewTimer(hedgeDelay)
		defer timer.Stop()
		hedgeCh = timer.C
	}

	for outstanding > 0 {
		select {
		case r := <-replies:
			outstanding--
			res.Replies = append(res.Replies, r)
			next, done := decide(r, outstanding)
			if done {
				return res, nil
			}
			for _, c := range next {
				launch(c)
				outstanding++
			}
		case <-hedgeCh:
			hedgeCh = nil
			res.Hedged = true
			for _, c := range hedge() {
				launch(c)
				outstanding++
			}
		case <-ctx.Done():
			return res, ctx.Err()
		}
	}
	return res, nil
}
