// Package quorum provides the quorum arithmetic of the paper and a
// scatter–gather engine for executing quorum operations against replica
// servers.
//
// Sizes (n servers, at most b faulty):
//
//   - context read/write quorum: ⌈(n+b+1)/2⌉ — two such quorums intersect in
//     at least b+1 servers, so at least one non-faulty server that holds the
//     latest stored context participates in every context read (Section 5.1).
//     Smaller than a masking quorum because contexts are self-verifying
//     (signed by their single writer): the client can pick the latest valid
//     context from a single server's reply.
//   - masking quorum (baseline, Phalanx/Fleet style): ⌈(n+2b+1)/2⌉, whose
//     pairwise intersections have at least 2b+1 servers so that b+1 correct
//     servers vouch for any accepted value (Section 3).
//   - data write set: b+1 servers, guaranteeing at least one non-faulty
//     server stores each write (Section 5.2).
//   - multi-writer read set: 2b+1 servers with b+1 matching replies
//     (Section 5.3).
package quorum

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"securestore/internal/trace"
	"securestore/internal/transport"
	"securestore/internal/wire"
)

// call performs one per-server RPC under an "rpc" span (a no-op when ctx
// carries no tracer), annotated with the target server and request kind.
func call(ctx context.Context, caller transport.Caller, srv string, req wire.Request) (wire.Response, error) {
	sp := trace.Leaf(ctx, "rpc")
	sp.SetAttr("server", srv)
	sp.SetAttr("req", wire.RequestName(req))
	resp, err := caller.Call(ctx, srv, req)
	sp.SetError(err)
	sp.End()
	return resp, err
}

// ErrInsufficient reports that a quorum operation could not collect enough
// successful replies.
var ErrInsufficient = errors.New("quorum: insufficient replies")

// ErrInfeasible reports an (n, b) combination for which the required quorum
// cannot be guaranteed available with b faulty servers.
var ErrInfeasible = errors.New("quorum: infeasible configuration")

// ceilDiv returns ⌈a/d⌉ for non-negative a and positive d.
func ceilDiv(a, d int) int { return (a + d - 1) / d }

// ContextQuorum returns ⌈(n+b+1)/2⌉, the context read/write quorum size.
func ContextQuorum(n, b int) int { return ceilDiv(n+b+1, 2) }

// MaskingQuorum returns ⌈(n+2b+1)/2⌉, the Byzantine masking quorum size
// used by the strong-consistency baseline.
func MaskingQuorum(n, b int) int { return ceilDiv(n+2*b+1, 2) }

// WriteSet returns b+1, the number of servers a data write must reach.
func WriteSet(b int) int { return b + 1 }

// MultiReadSet returns 2b+1, the number of servers queried by a
// multi-writer read.
func MultiReadSet(b int) int { return 2*b + 1 }

// MatchThreshold returns b+1, the number of identical replies a
// multi-writer read requires before accepting a value.
func MatchThreshold(b int) int { return b + 1 }

// PBFTReplicas returns 3f+1, the replica count of the state-machine
// baseline tolerating f Byzantine faults.
func PBFTReplicas(f int) int { return 3*f + 1 }

// Validate checks that with n servers of which b may be faulty, every
// quorum the secure store uses is guaranteed to be available (reachable
// using only non-faulty servers): n-b ≥ ⌈(n+b+1)/2⌉, which simplifies to
// n ≥ 3b+1, and n-b ≥ 2b+1 for multi-writer reads (same bound).
func Validate(n, b int) error {
	if b < 0 || n <= 0 {
		return fmt.Errorf("%w: n=%d b=%d", ErrInfeasible, n, b)
	}
	if n-b < ContextQuorum(n, b) || n-b < MultiReadSet(b) {
		return fmt.Errorf("%w: n=%d b=%d (need n >= 3b+1)", ErrInfeasible, n, b)
	}
	return nil
}

// GatherError reports a failed quorum operation together with every
// per-server failure observed, so callers can classify the overall
// failure: a read that found only timeouts is worth retrying, while one
// rejected as unauthorized by more than b servers is doomed (at least one
// honest server rejected it) and should fail fast.
type GatherError struct {
	// Need is the number of successful replies required; Successes how
	// many arrived before the operation gave up; Servers the size of the
	// contacted server set.
	Need, Successes, Servers int
	// Errs holds the per-server (or context) errors observed.
	Errs []error
}

// Error renders the failure.
func (e *GatherError) Error() string {
	return fmt.Sprintf("quorum: insufficient replies: got %d of %d needed replies from %d servers",
		e.Successes, e.Need, e.Servers)
}

// Unwrap exposes ErrInsufficient plus every per-server error, so both
// errors.Is(err, ErrInsufficient) and errors.Is(err, <server cause>)
// hold.
func (e *GatherError) Unwrap() []error {
	return append([]error{ErrInsufficient}, e.Errs...)
}

// CountCause returns how many per-server errors match target under
// errors.Is. Callers use it to decide whether a failure is attributable
// to more than b servers (and therefore to at least one honest one).
func (e *GatherError) CountCause(target error) int {
	n := 0
	for _, err := range e.Errs {
		if errors.Is(err, target) {
			n++
		}
	}
	return n
}

// gatherError assembles a GatherError from collected replies plus any
// extra errors (e.g. a context cancellation).
func gatherError(need, servers int, collected []Reply, extra ...error) *GatherError {
	ge := &GatherError{Need: need, Servers: servers}
	for _, r := range collected {
		if r.Err != nil {
			ge.Errs = append(ge.Errs, r.Err)
		} else {
			ge.Successes++
		}
	}
	for _, err := range extra {
		if err != nil {
			ge.Errs = append(ge.Errs, err)
		}
	}
	return ge
}

// Reply is one server's answer to a scattered request.
type Reply struct {
	Server string
	Resp   wire.Response
	Err    error
}

// Successes filters the replies that carry a response.
func Successes(replies []Reply) []Reply {
	var ok []Reply
	for _, r := range replies {
		if r.Err == nil {
			ok = append(ok, r)
		}
	}
	return ok
}

// GatherAll sends the request to every listed server concurrently and
// returns as soon as need servers replied successfully (or all servers have
// answered or failed, or ctx expired). All replies collected so far are
// returned; outstanding calls are cancelled. This is the pattern of the
// context protocols: "request ... from all servers; wait for at least
// ⌈(n+b+1)/2⌉ responses" (Figure 1).
func GatherAll(ctx context.Context, caller transport.Caller, servers []string, build func(server string) wire.Request, need int) ([]Reply, error) {
	if need > len(servers) {
		return nil, fmt.Errorf("%w: need %d of %d servers", ErrInsufficient, need, len(servers))
	}
	callCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	replies := make(chan Reply, len(servers))
	var wg sync.WaitGroup
	for _, srv := range servers {
		wg.Add(1)
		go func(srv string) {
			defer wg.Done()
			resp, err := call(callCtx, caller, srv, build(srv))
			replies <- Reply{Server: srv, Resp: resp, Err: err}
		}(srv)
	}
	go func() {
		wg.Wait()
		close(replies)
	}()

	var collected []Reply
	successes := 0
	for r := range replies {
		collected = append(collected, r)
		if r.Err == nil {
			successes++
			if successes >= need {
				return collected, nil
			}
		}
	}
	return collected, gatherError(need, len(servers), collected)
}

// GatherStaged contacts exactly need servers first and expands to
// additional servers one at a time as calls fail, stopping when need
// successes are in hand or the server list is exhausted. This is the data
// read/write pattern: "send ... to b+1 or more servers", contacting
// additional servers only when necessary (Figure 2, Section 6).
func GatherStaged(ctx context.Context, caller transport.Caller, servers []string, build func(server string) wire.Request, need int) ([]Reply, error) {
	if need > len(servers) {
		return nil, fmt.Errorf("%w: need %d of %d servers", ErrInsufficient, need, len(servers))
	}
	callCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	replies := make(chan Reply, len(servers))
	var wg sync.WaitGroup
	launch := func(srv string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := call(callCtx, caller, srv, build(srv))
			replies <- Reply{Server: srv, Resp: resp, Err: err}
		}()
	}

	next := 0
	for ; next < need; next++ {
		launch(servers[next])
	}

	var collected []Reply
	successes, inFlight := 0, need
	for inFlight > 0 {
		select {
		case r := <-replies:
			inFlight--
			collected = append(collected, r)
			if r.Err == nil {
				successes++
				if successes >= need {
					// Drain happens via cancel; remaining goroutines exit.
					go func() { wg.Wait(); close(replies) }()
					return collected, nil
				}
			} else if next < len(servers) {
				launch(servers[next])
				next++
				inFlight++
			}
		case <-ctx.Done():
			go func() { wg.Wait(); close(replies) }()
			return collected, gatherError(need, len(servers), collected, ctx.Err())
		}
	}
	go func() { wg.Wait(); close(replies) }()
	return collected, gatherError(need, len(servers), collected)
}
