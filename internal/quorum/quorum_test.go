package quorum

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"securestore/internal/metrics"
	"securestore/internal/transport"
	"securestore/internal/wire"
)

func TestQuorumSizes(t *testing.T) {
	tests := []struct {
		n, b                 int
		wantCtx, wantMasking int
	}{
		{4, 1, 3, 4},
		{7, 2, 5, 6},
		{10, 3, 7, 9},
		{13, 4, 9, 11},
		{5, 1, 4, 4},
	}
	for _, tt := range tests {
		if got := ContextQuorum(tt.n, tt.b); got != tt.wantCtx {
			t.Errorf("ContextQuorum(%d,%d) = %d, want %d", tt.n, tt.b, got, tt.wantCtx)
		}
		if got := MaskingQuorum(tt.n, tt.b); got != tt.wantMasking {
			t.Errorf("MaskingQuorum(%d,%d) = %d, want %d", tt.n, tt.b, got, tt.wantMasking)
		}
	}
	if WriteSet(3) != 4 || MultiReadSet(3) != 7 || MatchThreshold(3) != 4 || PBFTReplicas(3) != 10 {
		t.Fatal("derived set sizes wrong")
	}
}

func TestContextQuorumIntersection(t *testing.T) {
	// Property (Section 5.1): two context quorums intersect in >= b+1
	// servers, so at least one non-faulty holder of the latest context
	// participates in every read.
	prop := func(nRaw, bRaw uint8) bool {
		b := int(bRaw%5) + 1
		n := 3*b + 1 + int(nRaw%10)
		q := ContextQuorum(n, b)
		// Worst-case intersection of two size-q subsets of n elements.
		intersection := 2*q - n
		return intersection >= b+1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMaskingQuorumIntersection(t *testing.T) {
	// Masking quorums intersect in >= 2b+1 (Section 3).
	prop := func(nRaw, bRaw uint8) bool {
		b := int(bRaw%4) + 1
		n := 4*b + 1 + int(nRaw%10)
		q := MaskingQuorum(n, b)
		return 2*q-n >= 2*b+1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestValidate(t *testing.T) {
	valid := [][2]int{{4, 1}, {7, 2}, {10, 3}, {4, 0}, {1, 0}}
	for _, nb := range valid {
		if err := Validate(nb[0], nb[1]); err != nil {
			t.Errorf("Validate(%d,%d) = %v, want nil", nb[0], nb[1], err)
		}
	}
	invalid := [][2]int{{3, 1}, {6, 2}, {0, 0}, {4, -1}, {2, 1}}
	for _, nb := range invalid {
		if err := Validate(nb[0], nb[1]); !errors.Is(err, ErrInfeasible) {
			t.Errorf("Validate(%d,%d) = %v, want ErrInfeasible", nb[0], nb[1], err)
		}
	}
}

// fakeServer counts calls and fails when told to.
type fakeServer struct {
	fail  bool
	slow  bool
	calls atomic.Int64
}

func (f *fakeServer) ServeRequest(ctx context.Context, _ string, _ wire.Request) (wire.Response, error) {
	f.calls.Add(1)
	if f.slow {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(5 * time.Second):
		}
	}
	if f.fail {
		return nil, errors.New("boom")
	}
	return wire.Ack{}, nil
}

func setup(t *testing.T, servers map[string]*fakeServer) (transport.Caller, []string) {
	t.Helper()
	bus := transport.NewBus(nil)
	var names []string
	for name, srv := range servers {
		bus.Register(name, srv)
		names = append(names, name)
	}
	// Deterministic order.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return bus.Caller("client", &metrics.Counters{}), names
}

func buildReq(string) wire.Request { return wire.MetaReq{} }

func TestGatherAllCollectsNeeded(t *testing.T) {
	servers := map[string]*fakeServer{
		"a": {}, "b": {}, "c": {}, "d": {},
	}
	caller, names := setup(t, servers)
	replies, err := GatherAll(context.Background(), caller, names, buildReq, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(Successes(replies)); got < 3 {
		t.Fatalf("successes = %d, want >= 3", got)
	}
}

func TestGatherAllInsufficient(t *testing.T) {
	servers := map[string]*fakeServer{
		"a": {}, "b": {fail: true}, "c": {fail: true}, "d": {fail: true},
	}
	caller, names := setup(t, servers)
	_, err := GatherAll(context.Background(), caller, names, buildReq, 3)
	if !errors.Is(err, ErrInsufficient) {
		t.Fatalf("err = %v, want ErrInsufficient", err)
	}
}

func TestGatherAllNeedExceedsServers(t *testing.T) {
	caller, names := setup(t, map[string]*fakeServer{"a": {}})
	if _, err := GatherAll(context.Background(), caller, names, buildReq, 2); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("err = %v, want ErrInsufficient", err)
	}
}

func TestGatherStagedContactsMinimum(t *testing.T) {
	servers := map[string]*fakeServer{
		"a": {}, "b": {}, "c": {}, "d": {},
	}
	caller, names := setup(t, servers)
	replies, err := GatherStaged(context.Background(), caller, names, buildReq, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(Successes(replies)) != 2 {
		t.Fatalf("successes = %d, want exactly 2", len(Successes(replies)))
	}
	var total int64
	for _, s := range servers {
		total += s.calls.Load()
	}
	if total != 2 {
		t.Fatalf("servers contacted = %d, want exactly 2 (staged contact)", total)
	}
}

func TestGatherStagedExpandsOnFailure(t *testing.T) {
	servers := map[string]*fakeServer{
		"a": {fail: true}, "b": {}, "c": {}, "d": {},
	}
	caller, names := setup(t, servers)
	replies, err := GatherStaged(context.Background(), caller, names, buildReq, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(Successes(replies)) != 2 {
		t.Fatalf("successes = %d, want 2", len(Successes(replies)))
	}
	if servers["c"].calls.Load() != 1 {
		t.Fatal("expansion server c was not contacted after a's failure")
	}
}

func TestGatherStagedExhaustsServers(t *testing.T) {
	servers := map[string]*fakeServer{
		"a": {fail: true}, "b": {fail: true}, "c": {}, "d": {fail: true},
	}
	caller, names := setup(t, servers)
	_, err := GatherStaged(context.Background(), caller, names, buildReq, 2)
	if !errors.Is(err, ErrInsufficient) {
		t.Fatalf("err = %v, want ErrInsufficient", err)
	}
	for name, s := range servers {
		if s.calls.Load() != 1 {
			t.Fatalf("server %s called %d times, want 1", name, s.calls.Load())
		}
	}
}

func TestGatherStagedTimeoutOnSlowServers(t *testing.T) {
	servers := map[string]*fakeServer{
		"a": {slow: true}, "b": {slow: true}, "c": {}, "d": {},
	}
	caller, names := setup(t, servers)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := GatherStaged(ctx, caller, names, buildReq, 3)
	if err == nil {
		t.Fatal("gather succeeded with only 2 responsive servers reachable in stage")
	}
	if time.Since(start) > time.Second {
		t.Fatal("gather did not respect the context deadline")
	}
}

func TestSuccessesFilters(t *testing.T) {
	replies := []Reply{
		{Server: "a"},
		{Server: "b", Err: errors.New("x")},
		{Server: "c"},
	}
	ok := Successes(replies)
	if len(ok) != 2 || ok[0].Server != "a" || ok[1].Server != "c" {
		t.Fatalf("successes = %v", ok)
	}
}
