package deploy

// spawn.go — multi-process cluster helpers for `benchtab remote` and any
// other harness that needs a real securestored-style cluster rather than
// the in-process loopback deployments of internal/bench: reserve loopback
// ports, write the shared config, start one OS process per replica, wait
// until every replica accepts TCP connections, and tear the fleet down
// (SIGTERM, then SIGKILL after a grace period). The replica process
// itself is whatever command the caller builds — benchtab re-execs itself
// into ServeReplica, but the same helpers drive a prebuilt securestored.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"securestore/internal/transport"
	"securestore/internal/wire"
)

// FreeLoopbackAddrs reserves n distinct loopback TCP addresses by
// binding ephemeral ports and releasing them. The usual caveat applies —
// another process could grab a port between release and reuse — which is
// acceptable for a local benchmark harness (the spawn's readiness check
// catches the collision as a startup failure).
func FreeLoopbackAddrs(n int) ([]string, error) {
	addrs := make([]string, 0, n)
	listeners := make([]net.Listener, 0, n)
	defer func() {
		for _, l := range listeners {
			l.Close()
		}
	}()
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("reserve port: %w", err)
		}
		listeners = append(listeners, l)
		addrs = append(addrs, l.Addr().String())
	}
	return addrs, nil
}

// SynthesizeCluster builds a loopback deployment config for spawn-mode
// benchmarking: groups replica groups of 3b+1+extraPerGroup servers each
// on freshly reserved ports, one client principal, and one single-writer
// group named "bench". extraPerGroup widens groups beyond the quorum
// minimum — erasure-coded profiles use it to reach n large enough for
// b < k <= n-b at the k under test (e.g. n=5 for k=3, b=1). groups == 1
// leaves the config unsharded; groups > 1 partitions the servers into
// that many shards (g<G>-s<K> naming, one shard each).
func SynthesizeCluster(seed string, groups, b int, clientID string, fragThreshold, fragK, extraPerGroup int) (*Config, error) {
	if groups < 1 {
		groups = 1
	}
	if extraPerGroup < 0 {
		extraPerGroup = 0
	}
	perGroup := 3*b + 1 + extraPerGroup
	addrs, err := FreeLoopbackAddrs(groups * perGroup)
	if err != nil {
		return nil, err
	}
	cfg := &Config{
		Seed:    seed,
		B:       b,
		Servers: make(map[string]string, groups*perGroup),
		Groups:  []GroupConfig{{Name: "bench", Consistency: "MRC"}},
		Clients: []string{clientID},
		// Fast dissemination keeps read freshness high at benchmark rates.
		GossipIntervalMillis:   100,
		FragmentThresholdBytes: fragThreshold,
		FragmentK:              fragK,
	}
	i := 0
	for g := 0; g < groups; g++ {
		var shard ShardConfig
		for k := 0; k < perGroup; k++ {
			name := fmt.Sprintf("s%02d", i)
			if groups > 1 {
				name = fmt.Sprintf("g%02d-s%02d", g, k)
			}
			cfg.Servers[name] = addrs[i]
			shard.Servers = append(shard.Servers, name)
			i++
		}
		if groups > 1 {
			shard.Name = fmt.Sprintf("g%02d", g)
			cfg.Shards = append(cfg.Shards, shard)
		}
	}
	return cfg, nil
}

// WriteConfig serializes the config into dir/config.json and returns the
// path — the shared artifact every spawned replica process loads.
func WriteConfig(cfg *Config, dir string) (string, error) {
	raw, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "config.json")
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// Proc is one spawned replica process.
type Proc struct {
	// Name is the replica's name in the config.
	Name string
	cmd  *exec.Cmd
	// stderr accumulates the process's stderr for failure diagnostics.
	stderr bytes.Buffer
	// done receives the process's Wait result exactly once.
	done chan error
	// waitErr holds the consumed Wait result once exited is set.
	waitErr error
	exited  bool
}

// Exited reports whether the process has terminated (non-blocking).
func (p *Proc) Exited() bool {
	if p.exited {
		return true
	}
	select {
	case err := <-p.done:
		p.waitErr = err
		p.exited = true
		return true
	default:
		return false
	}
}

// CommandFunc builds the command serving one replica of a written config.
type CommandFunc func(configPath, name string) *exec.Cmd

// SpawnedCluster is a running multi-process deployment.
type SpawnedCluster struct {
	// Config is the deployment the processes were started from.
	Config *Config
	// ConfigPath is the shared config file the processes loaded.
	ConfigPath string
	// Procs holds one entry per replica process, in ServerNames order.
	Procs []*Proc
}

// Spawn writes the config into dir and starts one replica process per
// configured server via command, then blocks until every replica accepts
// TCP connections (or the timeout hits, tearing everything down). The
// returned cluster must be Teardown()-ed.
func Spawn(cfg *Config, dir string, command CommandFunc) (*SpawnedCluster, error) {
	path, err := WriteConfig(cfg, dir)
	if err != nil {
		return nil, err
	}
	c := &SpawnedCluster{Config: cfg, ConfigPath: path}
	for _, name := range cfg.ServerNames() {
		p := &Proc{Name: name, cmd: command(path, name), done: make(chan error, 1)}
		if p.cmd.Stderr == nil {
			p.cmd.Stderr = &p.stderr
		}
		if err := p.cmd.Start(); err != nil {
			c.Teardown()
			return nil, fmt.Errorf("start replica %s: %w", name, err)
		}
		cmd := p.cmd
		done := p.done
		go func() { done <- cmd.Wait() }()
		c.Procs = append(c.Procs, p)
	}
	if err := c.waitReady(15 * time.Second); err != nil {
		c.Teardown()
		return nil, err
	}
	return c, nil
}

// waitReady dials every replica address until it accepts or the timeout
// expires; a replica process dying first fails fast with its stderr.
func (c *SpawnedCluster) waitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for _, p := range c.Procs {
		addr := c.Config.Servers[p.Name]
		for {
			if p.Exited() {
				return fmt.Errorf("replica %s exited during startup: %v\n%s",
					p.Name, p.waitErr, strings.TrimSpace(p.stderr.String()))
			}
			conn, err := net.DialTimeout("tcp", addr, 250*time.Millisecond)
			if err == nil {
				conn.Close()
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("replica %s (%s) not ready after %v: %v", p.Name, addr, timeout, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	return nil
}

// Teardown stops every replica process: SIGTERM, a grace period, then
// SIGKILL. Normal termination (clean exit or death-by-signal) is not an
// error.
func (c *SpawnedCluster) Teardown() error {
	var firstErr error
	for _, p := range c.Procs {
		if p.Exited() || p.cmd.Process == nil {
			continue
		}
		_ = p.cmd.Process.Signal(syscall.SIGTERM)
	}
	for _, p := range c.Procs {
		if p.exited || p.cmd.Process == nil {
			continue
		}
		select {
		case err := <-p.done:
			p.waitErr = err
			p.exited = true
		case <-time.After(5 * time.Second):
			_ = p.cmd.Process.Kill()
			p.waitErr = <-p.done
			p.exited = true
			if firstErr == nil {
				firstErr = fmt.Errorf("replica %s needed SIGKILL", p.Name)
			}
		}
	}
	return firstErr
}

// ServeReplica runs one replica process of the config until ctx is
// cancelled: build the server (with durable state when dataDir is
// non-empty), serve TCP on the config's address for name, and run the
// gossip engine. It blocks until cancellation, then stops gossip and
// closes the listener. This is the in-process core of securestored that
// spawned benchmark replicas re-exec into.
func ServeReplica(ctx context.Context, cfg *Config, name, dataDir string) error {
	addr, ok := cfg.Servers[name]
	if !ok {
		return fmt.Errorf("server %q not in config", name)
	}
	wire.RegisterGob()
	obs := NewObs()
	srv, engine, err := BuildServer(cfg, name, dataDir, obs)
	if err != nil {
		return err
	}
	tcp := transport.NewTCPServer(srv, transport.WithServerCounters(obs.Counters))
	if _, err := tcp.Serve(addr); err != nil {
		return err
	}
	engine.Start()
	<-ctx.Done()
	engine.Stop()
	tcp.Close()
	return nil
}
