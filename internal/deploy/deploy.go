// Package deploy assembles secure-store processes (replicas and clients)
// over real TCP from a shared JSON deployment config. It is the glue used
// by cmd/securestored and cmd/securestore; tests and experiments use the
// in-memory core.Cluster instead.
//
// Keys for every principal are derived deterministically from the config
// seed, standing in for the paper's assumption of well-known public keys;
// a production deployment would exchange real public keys.
package deploy

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"securestore/internal/accessctl"
	"securestore/internal/client"
	"securestore/internal/cryptoutil"
	"securestore/internal/fragment"
	"securestore/internal/gossip"
	"securestore/internal/metrics"
	"securestore/internal/server"
	"securestore/internal/sharding"
	"securestore/internal/storage"
	"securestore/internal/trace"
	"securestore/internal/transport"
	"securestore/internal/wire"
)

// GroupConfig declares one related item group.
type GroupConfig struct {
	Name        string `json:"name"`
	Consistency string `json:"consistency"` // "MRC" or "CC"
	MultiWriter bool   `json:"multiWriter"`
}

// ShardConfig declares one replica group of a sharded deployment: a shard
// name and the subset of the config's servers forming that group. Every
// shard independently satisfies n >= 3b+1.
type ShardConfig struct {
	Name    string   `json:"name"`
	Servers []string `json:"servers"`
}

// Config is the shared deployment description.
type Config struct {
	Seed    string            `json:"seed"`
	B       int               `json:"b"`
	Servers map[string]string `json:"servers"` // name -> host:port
	Groups  []GroupConfig     `json:"groups"`
	Clients []string          `json:"clients"`
	// Shards, when non-empty, partitions the servers into independent
	// replica groups: each replica only gossips within (and answers for)
	// its own shard, and clients route every item to its owning shard
	// through the table built by Table. Empty keeps the classic
	// single-group deployment. cmd/securestored can also overlay this
	// field from a standalone file via -shard-table.
	Shards []ShardConfig `json:"shards,omitempty"`
	// GossipIntervalMillis tunes dissemination (default 200).
	GossipIntervalMillis int `json:"gossipIntervalMillis,omitempty"`
	// FragmentThresholdBytes, when positive, makes clients erasure-code
	// values of at least this many bytes across the item's replica group
	// (one IDA fragment per server, any k reconstruct) instead of
	// replicating them. 0 keeps every value on the replicated path.
	FragmentThresholdBytes int `json:"fragmentThresholdBytes,omitempty"`
	// FragmentK sets the erasure-coding reconstruction threshold for the
	// whole deployment (default b+1; must satisfy b < k <= n-b per
	// group). Every client must use the same k.
	FragmentK int `json:"fragmentK,omitempty"`
	// FragHedgeDelayMillis tunes the fragmented read's straggler hedge:
	// 0 adapts to observed read latency, positive fixes the delay in
	// milliseconds, negative disables hedging.
	FragHedgeDelayMillis int `json:"fragHedgeDelayMillis,omitempty"`
	// FragEncodeParallelism bounds the worker pool the IDA coding kernels
	// chunk large values across (0 = GOMAXPROCS, negative forces the
	// single-threaded path). Process-wide: the last loaded config wins.
	FragEncodeParallelism int `json:"fragEncodeParallelism,omitempty"`
	// VerifyCacheSize sets the verified-signature LRU capacity per
	// process (0 = default 4096, negative disables). Replicas see the
	// same signed write once from the client and again per gossip
	// redelivery; the cache turns the re-verifications into lookups.
	VerifyCacheSize int `json:"verifyCacheSize,omitempty"`
	// VerifyBatch caps the replica admission stage's signature batch (0 =
	// default, negative disables batching).
	VerifyBatch int `json:"verifyBatch,omitempty"`
	// VerifyBatchWaitMicros bounds how long an admission batch leader
	// waits for company while another batch verifies (0 = default 200µs).
	VerifyBatchWaitMicros int `json:"verifyBatchWaitMicros,omitempty"`
}

// defaultVerifyCache is the verified-signature LRU capacity when the
// config does not set one.
const defaultVerifyCache = 4096

// ring derives the deployment's key ring with the configured
// verified-signature cache enabled.
func (c *Config) ring() *cryptoutil.Keyring {
	ring := c.Ring()
	size := c.VerifyCacheSize
	if size == 0 {
		size = defaultVerifyCache
	}
	if size > 0 {
		ring.EnableVerifyCache(size)
	}
	return ring
}

// Load reads and validates a config file.
func Load(path string) (*Config, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read config: %w", err)
	}
	var cfg Config
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return nil, fmt.Errorf("parse config %s: %w", path, err)
	}
	if cfg.Seed == "" {
		cfg.Seed = "deploy"
	}
	if len(cfg.Servers) < 3*cfg.B+1 {
		return nil, fmt.Errorf("config: %d servers cannot tolerate b=%d (need 3b+1)", len(cfg.Servers), cfg.B)
	}
	if err := cfg.validateShards(); err != nil {
		return nil, err
	}
	return &cfg, nil
}

// validateShards checks the shard partition: named shards, every shard
// server present in the deployment, no server in two shards, and every
// shard independently large enough for b faults.
func (c *Config) validateShards() error {
	if len(c.Shards) == 0 {
		return nil
	}
	owner := make(map[string]string)
	for _, s := range c.Shards {
		if s.Name == "" {
			return fmt.Errorf("config: unnamed shard")
		}
		if len(s.Servers) < 3*c.B+1 {
			return fmt.Errorf("config: shard %q has %d servers, cannot tolerate b=%d (need 3b+1 per shard)",
				s.Name, len(s.Servers), c.B)
		}
		for _, srv := range s.Servers {
			if _, ok := c.Servers[srv]; !ok {
				return fmt.Errorf("config: shard %q lists unknown server %q", s.Name, srv)
			}
			if prev, dup := owner[srv]; dup {
				return fmt.Errorf("config: server %q in shards %q and %q (a replica belongs to exactly one group)",
					srv, prev, s.Name)
			}
			owner[srv] = s.Name
		}
	}
	return nil
}

// OverlayShards replaces the config's shard partition with one loaded
// from a standalone JSON file (an array of {"name", "servers"} objects —
// the same shape as the config's "shards" field) and re-validates. This
// lets an operator keep topology in its own artifact and roll it across a
// fleet without touching the base deployment config (securestored's
// -shard-table flag).
func (c *Config) OverlayShards(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("read shard table: %w", err)
	}
	var shards []ShardConfig
	if err := json.Unmarshal(raw, &shards); err != nil {
		return fmt.Errorf("parse shard table %s: %w", path, err)
	}
	if len(shards) == 0 {
		return fmt.Errorf("shard table %s: no shards", path)
	}
	c.Shards = shards
	return c.validateShards()
}

// Table builds the deployment's signed shard table (nil when the config
// is unsharded). The table is signed with the deterministic "shardadmin"
// key — the config seed stands in for a real administrator key exactly as
// it does for every other principal — so clients verify topology against
// the ring instead of trusting whoever handed them the table.
func (c *Config) Table(m *metrics.Counters) *sharding.Table {
	if len(c.Shards) == 0 {
		return nil
	}
	t := &sharding.Table{Version: 1}
	for _, s := range c.Shards {
		t.Shards = append(t.Shards, sharding.Shard{Name: s.Name, Servers: append([]string(nil), s.Servers...)})
	}
	t.Sign(cryptoutil.DeterministicKeyPair("shardadmin", c.Seed), m)
	return t
}

// ServerNames returns the sorted replica names.
func (c *Config) ServerNames() []string {
	names := make([]string, 0, len(c.Servers))
	for name := range c.Servers {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Ring derives the deployment's shared key ring: servers, clients, and
// the authorization authority.
func (c *Config) Ring() *cryptoutil.Keyring {
	ring := cryptoutil.NewKeyring()
	for name := range c.Servers {
		kp := cryptoutil.DeterministicKeyPair(name, c.Seed)
		ring.MustRegister(kp.ID, kp.Public)
	}
	for _, name := range c.Clients {
		kp := cryptoutil.DeterministicKeyPair(name, c.Seed)
		ring.MustRegister(kp.ID, kp.Public)
	}
	auth := cryptoutil.DeterministicKeyPair("authority", c.Seed)
	ring.MustRegister(auth.ID, auth.Public)
	if len(c.Shards) > 0 {
		admin := cryptoutil.DeterministicKeyPair("shardadmin", c.Seed)
		ring.MustRegister(admin.ID, admin.Public)
	}
	return ring
}

// Authority reconstructs the deployment's token authority.
func (c *Config) Authority() *accessctl.Authority {
	return accessctl.NewAuthority(cryptoutil.DeterministicKeyPair("authority", c.Seed))
}

// GroupSpecOf resolves a group's declared policy.
func (c *Config) GroupSpecOf(name string) (GroupConfig, error) {
	for _, g := range c.Groups {
		if g.Name == name {
			return g, nil
		}
	}
	return GroupConfig{}, fmt.Errorf("group %q not in config", name)
}

// consistencyOf parses the config's consistency string.
func consistencyOf(g GroupConfig) (wire.Consistency, error) {
	switch strings.ToUpper(g.Consistency) {
	case "MRC", "":
		return wire.MRC, nil
	case "CC":
		return wire.CC, nil
	default:
		return 0, fmt.Errorf("group %q: unknown consistency %q", g.Name, g.Consistency)
	}
}

// Obs bundles one process's observability state: the counters, latency
// histograms, and tracer that debughttp serves and the daemons write
// into. A nil *Obs disables instrumentation everywhere it is accepted.
type Obs struct {
	// Counters is the process's cost accounting, shared by the replica and
	// its gossip caller.
	Counters *metrics.Counters
	// Latencies receives per-operation latency (fed by Tracer's spans plus
	// the TCP caller's "transport.rpc" round trips).
	Latencies *metrics.HistogramSet
	// Tracer records spans into its in-memory ring (and the optional
	// JSON-lines sink it was created with).
	Tracer *trace.Tracer
}

// NewObs creates a fully wired observability bundle: a tracer whose spans
// feed the histogram set, plus fresh counters. traceOpts are appended to
// the tracer's configuration (e.g. trace.WithSink for a span log file).
func NewObs(traceOpts ...trace.Option) *Obs {
	hist := &metrics.HistogramSet{}
	opts := append([]trace.Option{trace.WithHistograms(hist)}, traceOpts...)
	return &Obs{
		Counters:  &metrics.Counters{},
		Latencies: hist,
		Tracer:    trace.New(0, opts...),
	}
}

// counters returns the bundle's counters, nil for a nil bundle.
func (o *Obs) counters() *metrics.Counters {
	if o == nil {
		return nil
	}
	return o.Counters
}

// tracer returns the bundle's tracer, nil for a nil bundle.
func (o *Obs) tracer() *trace.Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// BuildServer constructs the named replica and its gossip engine (not yet
// started), wired to its peers over TCP. A non-empty dataDir enables
// durable state: the replica logs accepted writes and contexts under
// dataDir/<name>.log and recovers them on start. obs, when non-nil,
// instruments the replica, its gossip engine, and its outbound TCP caller;
// nil builds an uninstrumented replica with private counters (the
// pre-observability behaviour).
func BuildServer(cfg *Config, name, dataDir string, obs *Obs) (*server.Server, *gossip.Engine, error) {
	if _, ok := cfg.Servers[name]; !ok {
		return nil, nil, fmt.Errorf("server %q not in config", name)
	}
	ring := cfg.ring()
	var persist *storage.Log
	if dataDir != "" {
		log, err := storage.Open(filepath.Join(dataDir, name+".log"))
		if err != nil {
			return nil, nil, err
		}
		persist = log
	}
	srvMetrics := obs.counters()
	if srvMetrics == nil {
		srvMetrics = &metrics.Counters{}
	}
	if persist != nil {
		persist.Metrics = srvMetrics
	}

	// A sharded deployment narrows this replica to its own group: it
	// rejects items it does not own (Owns) and gossips only with in-shard
	// peers — the other groups are independent deployments sharing a ring.
	shardName := ""
	var owns func(string) bool
	var shardServers []string
	if table := cfg.Table(srvMetrics); table != nil {
		idx, err := table.ShardOfServer(name)
		if err != nil {
			return nil, nil, err
		}
		shardName = table.Shards[idx].Name
		shardServers = table.Shards[idx].Servers
		owns = func(item string) bool { return table.Owns(shardName, item) }
	}

	srv := server.New(server.Config{
		ID:              name,
		Ring:            ring,
		AuthorityID:     "authority",
		Metrics:         srvMetrics,
		Tracer:          obs.tracer(),
		Persist:         persist,
		Shard:           shardName,
		Owns:            owns,
		VerifyBatch:     cfg.VerifyBatch,
		VerifyBatchWait: time.Duration(cfg.VerifyBatchWaitMicros) * time.Microsecond,
	})
	for _, g := range cfg.Groups {
		consistency, err := consistencyOf(g)
		if err != nil {
			return nil, nil, err
		}
		srv.RegisterGroup(g.Name, server.Policy{Consistency: consistency, MultiWriter: g.MultiWriter})
	}

	addrs := make(map[string]string, len(cfg.Servers))
	for peer, addr := range cfg.Servers {
		addrs[peer] = addr
	}
	var peers []string
	if shardServers != nil {
		for _, peer := range shardServers {
			if peer != name {
				peers = append(peers, peer)
			}
		}
	} else {
		for peer := range cfg.Servers {
			if peer != name {
				peers = append(peers, peer)
			}
		}
	}
	sort.Strings(peers)
	interval := time.Duration(cfg.GossipIntervalMillis) * time.Millisecond
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	if persist != nil {
		if err := srv.Recover(); err != nil {
			return nil, nil, fmt.Errorf("recover %s: %w", name, err)
		}
	}
	var callerOpts []transport.CallerOption
	if obs != nil && obs.Latencies != nil {
		callerOpts = append(callerOpts, transport.WithLatencies(obs.Latencies))
	}
	caller := transport.NewTCPCaller(name, addrs, srvMetrics, callerOpts...)
	engineOpts := []gossip.Option{gossip.WithInterval(interval)}
	if t := obs.tracer(); t != nil {
		engineOpts = append(engineOpts, gossip.WithTracer(t))
	}
	engine := gossip.New(srv, caller, peers, engineOpts...)
	return srv, engine, nil
}

// BuildClient constructs a TCP-backed client session for one group.
func BuildClient(cfg *Config, id, group string) (*client.Client, error) {
	g, err := cfg.GroupSpecOf(group)
	if err != nil {
		return nil, err
	}
	consistency, err := consistencyOf(g)
	if err != nil {
		return nil, err
	}
	known := false
	for _, c := range cfg.Clients {
		if c == id {
			known = true
			break
		}
	}
	if !known {
		return nil, fmt.Errorf("client %q not in config (servers only trust configured principals)", id)
	}

	addrs := make(map[string]string, len(cfg.Servers))
	for peer, addr := range cfg.Servers {
		addrs[peer] = addr
	}
	m := &metrics.Counters{}
	token := cfg.Authority().Issue(id, group, accessctl.ReadWrite, m)
	cc := client.Config{
		ID:          id,
		Key:         cryptoutil.DeterministicKeyPair(id, cfg.Seed),
		Ring:        cfg.ring(),
		Servers:     cfg.ServerNames(),
		B:           cfg.B,
		Group:       group,
		Consistency: consistency,
		MultiWriter: g.MultiWriter,
		Caller:      transport.NewTCPCaller(id, addrs, m),
		Token:       token,
		Metrics:     m,
	}
	if !g.MultiWriter {
		cc.FragmentThreshold = cfg.FragmentThresholdBytes
		cc.FragmentK = cfg.FragmentK
		if cfg.FragHedgeDelayMillis != 0 {
			cc.FragHedgeDelay = time.Duration(cfg.FragHedgeDelayMillis) * time.Millisecond
		}
	}
	if cfg.FragEncodeParallelism != 0 {
		p := cfg.FragEncodeParallelism
		if p < 0 {
			p = 1
		}
		fragment.SetEncodeParallelism(p)
	}
	if table := cfg.Table(m); table != nil {
		// Sharded deployment: items route per shard; the flat server list
		// is ignored in favour of the signed table.
		cc.Table = table
		cc.Servers = nil
	}
	return client.New(cc)
}
