package deploy

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"securestore/internal/transport"
	"securestore/internal/wire"
)

// freePorts grabs n distinct ephemeral ports.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, 0, n)
	listeners := make([]net.Listener, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners = append(listeners, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	for _, ln := range listeners {
		_ = ln.Close()
	}
	return addrs
}

func writeConfig(t *testing.T, cfg *Config) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "deploy.json")
	raw := []byte(fmt.Sprintf(`{
		"seed": %q, "b": %d,
		"servers": {"s00": %q, "s01": %q, "s02": %q, "s03": %q},
		"groups": [{"name": "notes", "consistency": "MRC"}],
		"clients": ["alice", "bob"],
		"gossipIntervalMillis": 20
	}`, cfg.Seed, cfg.B,
		cfg.Servers["s00"], cfg.Servers["s01"], cfg.Servers["s02"], cfg.Servers["s03"]))
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestTCPEndToEnd boots a full four-replica deployment over real sockets
// and runs a session through it.
func TestTCPEndToEnd(t *testing.T) {
	wire.RegisterGob()
	ports := freePorts(t, 4)
	cfg := &Config{
		Seed: "tcptest",
		B:    1,
		Servers: map[string]string{
			"s00": ports[0], "s01": ports[1], "s02": ports[2], "s03": ports[3],
		},
	}
	path := writeConfig(t, cfg)
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}

	// Boot all four replicas.
	for _, name := range loaded.ServerNames() {
		srv, engine, err := BuildServer(loaded, name, "", nil)
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		tcp := transport.NewTCPServer(srv)
		if _, err := tcp.Serve(loaded.Servers[name]); err != nil {
			t.Fatalf("serve %s: %v", name, err)
		}
		engine.Start()
		t.Cleanup(func() {
			engine.Stop()
			tcp.Close()
		})
	}

	cl, err := BuildClient(loaded, "alice", "notes")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := cl.Connect(ctx); err != nil {
		t.Fatalf("connect: %v", err)
	}
	if _, err := cl.Write(ctx, "memo", []byte("over tcp")); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, _, err := cl.Read(ctx, "memo")
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, []byte("over tcp")) {
		t.Fatalf("read = %q, want 'over tcp'", got)
	}
	if err := cl.Disconnect(ctx); err != nil {
		t.Fatalf("disconnect: %v", err)
	}

	// A second session restores the context.
	cl2, err := BuildClient(loaded, "alice", "notes")
	if err != nil {
		t.Fatal(err)
	}
	if err := cl2.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	if cl2.ContextSeq() != 1 {
		t.Fatalf("restored seq = %d, want 1", cl2.ContextSeq())
	}
	// Dissemination over TCP: eventually all servers have the write, so a
	// different reader succeeds even querying other replicas.
	bob, err := BuildClient(loaded, "bob", "notes")
	if err != nil {
		t.Fatal(err)
	}
	if err := bob.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, _, err := bob.Read(ctx, "memo")
		if err == nil && bytes.Equal(got, []byte("over tcp")) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("bob never saw the write: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestLoadRejectsInfeasibleConfig(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	raw := []byte(`{"seed":"x","b":2,"servers":{"a":"1","b":"2","c":"3","d":"4"}}`)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load accepted 4 servers with b=2")
	}
}

func TestBuildClientRejectsUnknownPrincipal(t *testing.T) {
	cfg := &Config{
		Seed:    "x",
		B:       1,
		Servers: map[string]string{"a": "1", "b": "2", "c": "3", "d": "4"},
		Groups:  []GroupConfig{{Name: "g", Consistency: "MRC"}},
		Clients: []string{"alice"},
	}
	if _, err := BuildClient(cfg, "mallory", "g"); err == nil {
		t.Fatal("BuildClient accepted a principal missing from the config")
	}
}

// TestPersistentRestart reboots a replica from its data directory and
// checks its state survives.
func TestPersistentRestart(t *testing.T) {
	wire.RegisterGob()
	ports := freePorts(t, 4)
	cfg := &Config{
		Seed: "persisttest",
		B:    1,
		Servers: map[string]string{
			"s00": ports[0], "s01": ports[1], "s02": ports[2], "s03": ports[3],
		},
	}
	path := writeConfig(t, cfg)
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	dataDir := t.TempDir()

	type proc struct {
		tcp    *transport.TCPServer
		engine interface{ Stop() }
	}
	procs := make(map[string]*proc)
	boot := func(name string) {
		srv, engine, err := BuildServer(loaded, name, dataDir, nil)
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		tcp := transport.NewTCPServer(srv)
		if _, err := tcp.Serve(loaded.Servers[name]); err != nil {
			t.Fatalf("serve %s: %v", name, err)
		}
		procs[name] = &proc{tcp: tcp, engine: engine}
	}
	for _, name := range loaded.ServerNames() {
		boot(name)
	}
	t.Cleanup(func() {
		for _, p := range procs {
			p.tcp.Close()
		}
	})

	cl, err := BuildClient(loaded, "alice", "notes")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := cl.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Write(ctx, "memo", []byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := cl.Disconnect(ctx); err != nil {
		t.Fatal(err)
	}

	// Restart every replica from disk. The write reached b+1 = 2 of them;
	// after recovery a fresh session must still find it.
	for name, p := range procs {
		p.tcp.Close()
		delete(procs, name)
	}
	for _, name := range loaded.ServerNames() {
		boot(name)
	}

	cl2, err := BuildClient(loaded, "alice", "notes")
	if err != nil {
		t.Fatal(err)
	}
	if err := cl2.Connect(ctx); err != nil {
		t.Fatalf("connect after restart: %v", err)
	}
	if cl2.ContextSeq() != 1 {
		t.Fatalf("context seq after restart = %d, want 1", cl2.ContextSeq())
	}
	got, _, err := cl2.Read(ctx, "memo")
	if err != nil {
		t.Fatalf("read after restart: %v", err)
	}
	if !bytes.Equal(got, []byte("durable")) {
		t.Fatalf("read = %q, want durable", got)
	}
}

func TestConfigAccessorsAndErrors(t *testing.T) {
	cfg := &Config{
		Seed:    "x",
		B:       1,
		Servers: map[string]string{"d": "4", "a": "1", "c": "3", "b": "2"},
		Groups: []GroupConfig{
			{Name: "g", Consistency: "MRC"},
			{Name: "weird", Consistency: "LINEARIZABLE"},
		},
		Clients: []string{"alice"},
	}

	names := cfg.ServerNames()
	want := []string{"a", "b", "c", "d"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("server names = %v, want sorted %v", names, want)
		}
	}

	if _, err := cfg.GroupSpecOf("missing"); err == nil {
		t.Fatal("unknown group accepted")
	}
	if _, err := BuildClient(cfg, "alice", "weird"); err == nil {
		t.Fatal("unknown consistency accepted")
	}
	if _, _, err := BuildServer(cfg, "ghost", "", nil); err == nil {
		t.Fatal("unknown server name accepted")
	}
	if _, _, err := BuildServer(cfg, "a", "", nil); err == nil {
		t.Fatal("group with unknown consistency accepted at server build")
	}

	// The ring covers servers, clients and the authority.
	ring := cfg.Ring()
	for _, id := range []string{"a", "b", "c", "d", "alice", "authority"} {
		if _, err := ring.Lookup(id); err != nil {
			t.Fatalf("ring missing %s: %v", id, err)
		}
	}
	if cfg.Authority().ID() != "authority" {
		t.Fatal("authority id wrong")
	}
}
