package client

import (
	"context"
	"fmt"
	"sort"
	"time"

	"securestore/internal/cryptoutil"
	"securestore/internal/quorum"
	"securestore/internal/timestamp"
	"securestore/internal/trace"
	"securestore/internal/wire"
)

// Write stores a new value for an item (Figure 2). The write message —
// item uid, timestamp, the writer's context under CC, the value, and the
// writer's signature over all of it — is sent to b+1 servers (expanding
// past failures), guaranteeing at least one non-faulty server stores it.
// In multi-writer mode the timestamp is the augmented 3-tuple
// (time, uid, digest) of Section 5.3.
func (c *Client) Write(ctx context.Context, item string, value []byte) (_ timestamp.Stamp, err error) {
	ctx, sp := c.startSpan(ctx, "data.write")
	sp.SetAttr("item", item)
	defer func() { sp.SetError(err); sp.End() }()
	if !c.Connected() {
		return timestamp.Stamp{}, ErrNotConnected
	}
	stored, err := c.seal(item, value)
	if err != nil {
		return timestamp.Stamp{}, err
	}
	if c.frag != nil && c.cfg.FragmentThreshold > 0 && len(stored) >= c.cfg.FragmentThreshold {
		// Large value: disperse it instead of replicating it. Each replica
		// receives ~1/k of the bytes inside a self-verifying fragment
		// envelope; the write completes at k+b acks.
		sp.SetAttr("fragmented", "true")
		return c.writeFragmented(ctx, item, stored)
	}

	c.mu.Lock()
	stamp := timestamp.Stamp{Time: c.clock.Next(c.ctxVec.Get(item).Time)}
	if c.cfg.MultiWriter {
		stamp.Writer = c.cfg.ID
		stamp.Digest = cryptoutil.Digest(stored)
	}

	w := &wire.SignedWrite{
		Group: c.cfg.Group,
		Item:  item,
		Stamp: stamp,
		Value: stored,
	}
	if c.cfg.Consistency == wire.CC {
		// "increment t_j in X_i ... write-message := {..., X_i, v, ...}":
		// the embedded context already reflects this write's own stamp.
		vec := c.ctxVec.Clone()
		vec.Update(item, stamp)
		w.WriterCtx = vec
	}
	c.mu.Unlock()
	w.Sign(c.cfg.Key, c.cfg.Metrics)

	sv := c.shardFor(item)
	if c.crossShardWrite(sv, w) {
		// The write's context names predecessors on other shards, which
		// the target group can never gate on (its servers never see those
		// items). The client serializes such writes itself — the analogue
		// of the server-side mw gate — so two cross-shard CC writes from
		// this session cannot land out of causal order. The gate is held
		// through the context update below (released by the deferred
		// unlock), keeping "stamp issued → quorum stored → context raised"
		// atomic against the session's other cross-shard writes.
		c.crossMu.Lock()
		defer c.crossMu.Unlock()
		c.cfg.Metrics.AddCustom("write.crossshard.gated", 1)
	}

	opCtx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
	defer cancel()
	need := quorum.WriteSet(c.cfg.B)
	if _, err := quorum.GatherStaged(opCtx, c.cfg.Caller, sv.servers, func(string) wire.Request {
		return wire.WriteReq{Write: w, Token: c.cfg.Token}
	}, need); err != nil {
		if c.wrongShard(err) {
			c.cfg.Metrics.AddRoutingMismatch()
		}
		// The attempted stamp is returned alongside the error: the write
		// may have landed on some servers before the quorum failed, and a
		// history recorder (internal/chaos) must know which stamp a later
		// read of that partial write would carry.
		return stamp, fmt.Errorf("write %s: %w", item, err)
	}

	c.mu.Lock()
	c.ctxVec.Update(item, stamp)
	c.mu.Unlock()
	return stamp, nil
}

// Read returns a value for the item consistent with the client's context:
// under MRC, at least as recent as any value this client has read before;
// under CC, not causally overwritten by anything the client has seen
// (Figure 2 for single-writer groups; Section 5.3 for multi-writer). When
// the first quorum cannot supply a fresh-enough value, the client contacts
// additional servers, then retries after an exponentially growing jittered
// backoff — the paper's two remedies — before giving up with ErrStale.
// Permanent failures (authorization rejection by more than b servers,
// signature failure, proven equivocation) are returned immediately: see
// errclass.go.
func (c *Client) Read(ctx context.Context, item string) (_ []byte, _ timestamp.Stamp, rerr error) {
	ctx, sp := c.startSpan(ctx, "data.read")
	sp.SetAttr("item", item)
	defer func() { sp.SetError(rerr); sp.End() }()
	if !c.Connected() {
		return nil, timestamp.Stamp{}, ErrNotConnected
	}
	var (
		write *wire.SignedWrite
		err   error
	)
	for attempt := 0; ; attempt++ {
		switch {
		case c.cfg.MultiWriter:
			write, err = c.readMultiWriter(ctx, item)
		case c.cfg.EagerRead:
			write, err = c.readEager(ctx, item)
		default:
			write, err = c.readSingleWriter(ctx, item)
		}
		if err == nil {
			if attempt > 0 {
				sp.SetAttr("attempts", fmt.Sprint(attempt+1))
			}
			break
		}
		if c.permanentReadError(err) {
			if c.wrongShard(err) {
				c.cfg.Metrics.AddRoutingMismatch()
			}
			c.cfg.Metrics.AddCustom("read.permanent", 1)
			return nil, timestamp.Stamp{}, fmt.Errorf("read %s: %w", item, err)
		}
		if attempt >= c.cfg.ReadRetries || ctx.Err() != nil {
			sp.SetAttr("attempts", fmt.Sprint(attempt+1))
			return nil, timestamp.Stamp{}, fmt.Errorf("read %s: %w", item, err)
		}
		c.cfg.Metrics.AddCustom("read.retries", 1)
		if delay := c.retryDelay(attempt); delay > 0 {
			// The wait is its own span so a trace distinguishes time spent
			// talking to servers from time spent backing off.
			waitSp := trace.Leaf(ctx, "read.backoff")
			timer := time.NewTimer(delay)
			select {
			case <-timer.C:
				waitSp.End()
			case <-ctx.Done():
				timer.Stop()
				waitSp.SetError(ctx.Err())
				waitSp.End()
				return nil, timestamp.Stamp{}, ctx.Err()
			}
		}
	}

	// A fragment envelope means the item's current version is dispersed:
	// no single server holds the value, so reconstruct it from the quorum
	// before touching the session context.
	if c.frag != nil && wire.IsFragmentEnvelope(write.Value) {
		sp.SetAttr("fragmented", "true")
		return c.readFragmented(ctx, item)
	}

	// Update the context per the consistency level (Figure 2).
	c.mu.Lock()
	if c.cfg.Consistency == wire.CC && write.WriterCtx != nil {
		c.ctxVec.Merge(write.WriterCtx)
	}
	c.ctxVec.Update(item, write.Stamp)
	c.clock.Observe(write.Stamp.Time)
	c.mu.Unlock()

	value, err := c.open(item, write.Value)
	if err != nil {
		return nil, timestamp.Stamp{}, err
	}
	return value, write.Stamp, nil
}

// writeFragmented stores one sealed value through the erasure-coding
// engine: Split into n shares, one signature over the cross-checksum, k+b
// acks. The session context and clock advance exactly as for a
// replicated write, so a later read of the item cannot go backwards.
func (c *Client) writeFragmented(ctx context.Context, item string, stored []byte) (timestamp.Stamp, error) {
	c.mu.Lock()
	floor := c.ctxVec.Get(item).Time
	c.mu.Unlock()
	c.cfg.Metrics.AddCustom("write.fragmented", 1)

	stamp, err := c.frag.WriteAbove(ctx, item, stored, floor)
	if err != nil {
		return stamp, fmt.Errorf("write %s: %w", item, err)
	}
	c.mu.Lock()
	c.ctxVec.Update(item, stamp)
	c.clock.Observe(stamp.Time)
	c.mu.Unlock()
	return stamp, nil
}

// readFragmented reconstructs a dispersed item: gather n-b replies, take
// the newest stamp with k index-distinct checksum-consistent shares,
// decode, and only then open (decrypt) — fragmentation wraps the sealed
// bytes, so confidentiality layering is unchanged.
func (c *Client) readFragmented(ctx context.Context, item string) ([]byte, timestamp.Stamp, error) {
	c.mu.Lock()
	floor := c.ctxVec.Get(item)
	c.mu.Unlock()
	c.cfg.Metrics.AddCustom("read.fragmented", 1)

	stored, stamp, err := c.frag.Read(ctx, item)
	if err != nil {
		return nil, timestamp.Stamp{}, fmt.Errorf("read %s: %w", item, err)
	}
	if stamp.Less(floor) {
		// The reconstructible version is older than this session has seen
		// (e.g. the newest write's shares have not settled yet).
		return nil, timestamp.Stamp{}, fmt.Errorf("read %s: %w", item, ErrStale)
	}
	c.mu.Lock()
	c.ctxVec.Update(item, stamp)
	c.clock.Observe(stamp.Time)
	c.mu.Unlock()

	value, err := c.open(item, stored)
	if err != nil {
		return nil, timestamp.Stamp{}, err
	}
	return value, stamp, nil
}

// readSingleWriter is one attempt of the two-phase read of Figure 2:
// query b+1 (or more) servers for the item's timestamp, pick the highest
// t_r; if t_r is at least the context's timestamp, fetch the full signed
// write from servers advertising fresh copies (best first) and accept the
// first one whose signature checks out and whose stamp is fresh enough.
func (c *Client) readSingleWriter(ctx context.Context, item string) (*wire.SignedWrite, error) {
	c.mu.Lock()
	floor := c.ctxVec.Get(item)
	c.mu.Unlock()

	opCtx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
	defer cancel()

	sv := c.shardFor(item)
	metaReq := func(string) wire.Request {
		return wire.MetaReq{Client: c.cfg.ID, Group: c.cfg.Group, Item: item, Token: c.cfg.Token}
	}

	// Phase one: b+1 servers first.
	need := c.cfg.B + 1
	replies, err := quorum.GatherStaged(opCtx, c.cfg.Caller, sv.servers, metaReq, need)
	if err != nil {
		return nil, err
	}
	candidates := freshCandidates(replies, floor)
	if len(candidates) == 0 {
		// "contact additional servers": widen phase one to every server of
		// the item's shard (other groups never hold a copy).
		c.cfg.Metrics.AddCustom("read.widened", 1)
		replies, err = quorum.GatherAll(opCtx, c.cfg.Caller, sv.servers, metaReq, sv.n-c.cfg.B)
		if err != nil {
			return nil, err
		}
		candidates = freshCandidates(replies, floor)
		if len(candidates) == 0 {
			return nil, ErrStale
		}
	}

	// Phase two: fetch from the best candidate; fall back down the list
	// when a server cannot substantiate its advertised timestamp (e.g. the
	// CorruptMeta fault) or serves a corrupt value.
	for _, cand := range candidates {
		csp := trace.Leaf(opCtx, "rpc")
		csp.SetAttr("server", cand.server)
		csp.SetAttr("req", "value")
		resp, err := c.cfg.Caller.Call(opCtx, cand.server, wire.ValueReq{
			Client: c.cfg.ID, Group: c.cfg.Group, Item: item, Stamp: cand.stamp, Token: c.cfg.Token,
		})
		csp.SetError(err)
		csp.End()
		if err != nil {
			continue
		}
		vr, ok := resp.(wire.ValueResp)
		if !ok || vr.Write == nil || vr.Write.Item != item || vr.Write.Group != c.cfg.Group {
			continue
		}
		if vr.Write.Stamp.Less(floor) {
			continue // stale despite the advertisement
		}
		if err := vr.Write.Verify(c.cfg.Ring, c.cfg.Metrics); err != nil {
			c.cfg.Metrics.AddCustom("read.badsig", 1)
			continue
		}
		return vr.Write, nil
	}
	return nil, ErrStale
}

// readEager is the optional single-round read: fetch full signed writes
// from b+1 servers (expanding past failures), accept the freshest one
// that verifies and satisfies the context floor. Falls back to the
// two-phase widened read when the first quorum has nothing fresh enough.
func (c *Client) readEager(ctx context.Context, item string) (*wire.SignedWrite, error) {
	c.mu.Lock()
	floor := c.ctxVec.Get(item)
	c.mu.Unlock()

	opCtx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
	defer cancel()

	replies, err := quorum.GatherStaged(opCtx, c.cfg.Caller, c.shardFor(item).servers, func(string) wire.Request {
		return wire.ValueReq{Client: c.cfg.ID, Group: c.cfg.Group, Item: item, Token: c.cfg.Token}
	}, c.cfg.B+1)
	if err != nil {
		return nil, err
	}

	var best *wire.SignedWrite
	for _, r := range quorum.Successes(replies) {
		vr, ok := r.Resp.(wire.ValueResp)
		if !ok || vr.Write == nil || vr.Write.Item != item || vr.Write.Group != c.cfg.Group {
			continue
		}
		if vr.Write.Stamp.Less(floor) {
			continue
		}
		if best != nil && !best.Stamp.Less(vr.Write.Stamp) {
			continue // not newer than what we already verified
		}
		if err := vr.Write.Verify(c.cfg.Ring, c.cfg.Metrics); err != nil {
			c.cfg.Metrics.AddCustom("read.badsig", 1)
			continue
		}
		best = vr.Write
	}
	if best != nil {
		return best, nil
	}
	// Nothing fresh enough at the first quorum: the two-phase read's
	// widening path takes over.
	c.cfg.Metrics.AddCustom("read.eager.fallback", 1)
	return c.readSingleWriter(ctx, item)
}

type candidate struct {
	server string
	stamp  timestamp.Stamp
}

// freshCandidates extracts servers whose advertised stamp is >= floor,
// sorted newest first.
func freshCandidates(replies []quorum.Reply, floor timestamp.Stamp) []candidate {
	var out []candidate
	for _, r := range quorum.Successes(replies) {
		meta, ok := r.Resp.(wire.MetaResp)
		if !ok || !meta.Has {
			continue
		}
		if meta.Stamp.Less(floor) {
			continue
		}
		out = append(out, candidate{server: r.Server, stamp: meta.Stamp})
	}
	sort.Slice(out, func(i, j int) bool { return out[j].stamp.Less(out[i].stamp) })
	return out
}

// readMultiWriter is one attempt of the Section 5.3 read: query 2b+1
// servers (expanding past failures) for their latest-writes logs and
// accept the newest fresh-enough value reported identically by at least
// b+1 servers. With at most b faulty servers, b+1 matching reports imply
// at least one comes from a non-faulty server that validated the write and
// its causal predecessors, masking both premature reports and stale lies.
// The client performs no signature verification here — validation happened
// at the servers (Section 6).
func (c *Client) readMultiWriter(ctx context.Context, item string) (*wire.SignedWrite, error) {
	c.mu.Lock()
	floor := c.ctxVec.Get(item)
	c.mu.Unlock()

	opCtx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
	defer cancel()

	need := quorum.MultiReadSet(c.cfg.B)
	replies, err := quorum.GatherStaged(opCtx, c.cfg.Caller, c.shardFor(item).servers, func(string) wire.Request {
		return wire.LogReq{Client: c.cfg.ID, Group: c.cfg.Group, Item: item, Token: c.cfg.Token}
	}, need)
	if err != nil {
		return nil, err
	}

	// Tally per-server votes per stamp. A server votes at most once per
	// stamp; conflicting values under one stamp expose equivocation.
	type tally struct {
		write  *wire.SignedWrite
		voters map[string]bool
	}
	tallies := make(map[timestamp.Stamp]*tally)
	var equivocated *timestamp.Stamp
	for _, r := range quorum.Successes(replies) {
		lr, ok := r.Resp.(wire.LogResp)
		if !ok {
			continue
		}
		for _, w := range lr.Writes {
			if w == nil || w.Item != item || w.Group != c.cfg.Group {
				continue
			}
			t, ok := tallies[w.Stamp]
			if !ok {
				tallies[w.Stamp] = &tally{write: w, voters: map[string]bool{r.Server: true}}
				continue
			}
			if cryptoutil.Digest(t.write.Value) != cryptoutil.Digest(w.Value) {
				// Same stamp, different value: the stamp embeds the value
				// digest, so at most one variant can be validly signed; a
				// server reporting the other is lying, not the writer.
				// Ignore the conflicting report.
				stamp := w.Stamp
				equivocated = &stamp
				continue
			}
			t.voters[r.Server] = true
		}
	}

	// Writer-equivocation detection (Section 5.3): two distinct stamps
	// sharing (time, writer) but differing in digest are cryptographic
	// proof the writer signed two values under one timestamp. At most one
	// variant can ever be accepted (the b+1 matching rule), but the client
	// is additionally informed — "clients accessing this data item can be
	// informed that the value cannot be assumed to be correct".
	seenPair := make(map[string]timestamp.Stamp, len(tallies))
	for stamp := range tallies {
		pair := fmt.Sprintf("%d/%s", stamp.Time, stamp.Writer)
		if prev, ok := seenPair[pair]; ok && prev.Digest != stamp.Digest {
			c.cfg.Metrics.AddCustom("equivocation.detected", 1)
			st := stamp
			equivocated = &st
		}
		seenPair[pair] = stamp
	}

	var best *wire.SignedWrite
	threshold := quorum.MatchThreshold(c.cfg.B)
	for stamp, t := range tallies {
		if len(t.voters) < threshold {
			continue
		}
		if stamp.Less(floor) {
			continue
		}
		if best == nil || best.Stamp.Less(stamp) {
			best = t.write
		}
	}
	if best == nil {
		if equivocated != nil {
			return nil, fmt.Errorf("%w: stamp %s", ErrEquivocation, equivocated)
		}
		return nil, ErrStale
	}
	return best, nil
}
