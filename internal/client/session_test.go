package client

import (
	"context"
	"math/rand"
	"testing"

	"securestore/internal/server"
	"securestore/internal/wire"
)

// newDeterministicRand gives property-style tests a fixed seed.
func newDeterministicRand() *rand.Rand {
	return rand.New(rand.NewSource(42))
}

func TestDisconnectFailureKeepsSessionResumable(t *testing.T) {
	// If the context write cannot reach its quorum, Disconnect fails, the
	// session stays open, and the sequence number is NOT consumed; a retry
	// after the outage stores the same context version.
	r := newRig(t, 4, server.Policy{Consistency: wire.MRC})
	c := r.client(t, "alice", 1, nil)
	ctx := context.Background()
	if err := c.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(ctx, "x", []byte("v")); err != nil {
		t.Fatal(err)
	}

	// Context quorum is 3; crash 2 servers so only 2 remain.
	r.servers[0].SetFault(server.Crash)
	r.servers[1].SetFault(server.Crash)
	if err := c.Disconnect(ctx); err == nil {
		t.Fatal("disconnect succeeded without a quorum")
	}
	if !c.Connected() {
		t.Fatal("failed disconnect closed the session")
	}
	if c.ContextSeq() != 0 {
		t.Fatalf("failed disconnect advanced seq to %d", c.ContextSeq())
	}

	// Outage over: the retry succeeds and stores seq 1.
	r.servers[0].SetFault(server.Healthy)
	r.servers[1].SetFault(server.Healthy)
	if err := c.Disconnect(ctx); err != nil {
		t.Fatalf("disconnect after heal: %v", err)
	}
	if c.ContextSeq() != 1 {
		t.Fatalf("seq = %d, want 1", c.ContextSeq())
	}
	if c.Connected() {
		t.Fatal("successful disconnect left the session open")
	}
}

func TestReconnectWithinSameClient(t *testing.T) {
	// A client object can run several sessions back to back; each Connect
	// restores the latest stored context.
	r := newRig(t, 4, server.Policy{Consistency: wire.MRC})
	c := r.client(t, "alice", 1, nil)
	ctx := context.Background()

	for session := uint64(1); session <= 3; session++ {
		if err := c.Connect(ctx); err != nil {
			t.Fatalf("session %d connect: %v", session, err)
		}
		if _, err := c.Write(ctx, "x", []byte{byte(session)}); err != nil {
			t.Fatal(err)
		}
		if err := c.Disconnect(ctx); err != nil {
			t.Fatal(err)
		}
		if c.ContextSeq() != session {
			t.Fatalf("session %d: seq = %d", session, c.ContextSeq())
		}
	}
}

func TestContextCarriesOnlyTouchedItems(t *testing.T) {
	// The paper: "in a given session, we assume that a client only
	// accesses a small number of such items. This implies that the context
	// maintained by a client ... will not be large." The vector must track
	// exactly the touched items.
	r := newRig(t, 4, server.Policy{Consistency: wire.MRC})
	c := r.client(t, "alice", 1, nil)
	ctx := context.Background()
	if err := c.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(ctx, "a", []byte("va")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(ctx, "b", []byte("vb")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Read(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	vec := c.Context()
	if len(vec) != 2 {
		t.Fatalf("context tracks %d items, want 2: %v", len(vec), vec)
	}
	if vec.Get("a").Zero() || vec.Get("b").Zero() {
		t.Fatalf("context missing touched items: %v", vec)
	}
}

func TestGroupIsolation(t *testing.T) {
	// Consistency is scoped to one related group (Section 4): sessions on
	// different groups have independent contexts even for the same client
	// identity.
	r := newRig(t, 4, server.Policy{Consistency: wire.MRC})
	for _, srv := range r.servers {
		srv.RegisterGroup("other", server.Policy{Consistency: wire.MRC})
	}
	ctx := context.Background()

	g1 := r.client(t, "alice", 1, nil)
	if err := g1.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := g1.Write(ctx, "x", []byte("in-g")); err != nil {
		t.Fatal(err)
	}
	if err := g1.Disconnect(ctx); err != nil {
		t.Fatal(err)
	}

	g2 := r.client(t, "alice", 1, func(cfg *Config) { cfg.Group = "other" })
	if err := g2.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	if len(g2.Context()) != 0 {
		t.Fatalf("group 'other' session inherited context %v from group 'g'", g2.Context())
	}
	if g2.ContextSeq() != 0 {
		t.Fatalf("group 'other' seq = %d, want 0", g2.ContextSeq())
	}
	// And the item written in g is invisible in other.
	if _, _, err := g2.Read(ctx, "x"); err == nil {
		t.Fatal("read crossed group boundaries")
	}
}

// TestReadYourWritesProperty: within one healthy session, a client always
// reads back at least its own latest write of each item — MRC's
// read-your-writes facet, property-checked over random op sequences.
func TestReadYourWritesProperty(t *testing.T) {
	r := newRig(t, 4, server.Policy{Consistency: wire.MRC})
	c := r.client(t, "alice", 1, nil)
	ctx := context.Background()
	if err := c.Connect(ctx); err != nil {
		t.Fatal(err)
	}

	items := []string{"p", "q", "r"}
	latest := make(map[string]byte)
	rng := newDeterministicRand()
	for op := 0; op < 120; op++ {
		item := items[rng.Intn(len(items))]
		if rng.Intn(2) == 0 || latest[item] == 0 {
			v := byte(rng.Intn(255)) + 1
			if _, err := c.Write(ctx, item, []byte{v}); err != nil {
				t.Fatalf("op %d write: %v", op, err)
			}
			latest[item] = v
		} else {
			got, _, err := c.Read(ctx, item)
			if err != nil {
				t.Fatalf("op %d read %s: %v", op, item, err)
			}
			if got[0] != latest[item] {
				t.Fatalf("op %d: read %s = %d, want own latest write %d", op, item, got[0], latest[item])
			}
		}
	}
}
