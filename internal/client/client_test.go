package client

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"securestore/internal/cryptoutil"
	"securestore/internal/metrics"
	"securestore/internal/server"
	"securestore/internal/timestamp"
	"securestore/internal/transport"
	"securestore/internal/wire"
)

// rig wires n servers and one client directly (no core facade), exposing
// the pieces tests poke at.
type rig struct {
	bus     *transport.Bus
	ring    *cryptoutil.Keyring
	servers []*server.Server
	names   []string
}

func newRig(t *testing.T, n int, policy server.Policy) *rig {
	t.Helper()
	r := &rig{
		bus:  transport.NewBus(nil),
		ring: cryptoutil.NewKeyring(),
	}
	for i := 0; i < n; i++ {
		name := string(rune('a' + i))
		srv := server.New(server.Config{ID: name, Ring: r.ring})
		srv.RegisterGroup("g", policy)
		r.bus.Register(name, srv)
		r.servers = append(r.servers, srv)
		r.names = append(r.names, name)
	}
	return r
}

func (r *rig) client(t *testing.T, id string, b int, mutate func(*Config)) *Client {
	t.Helper()
	key := cryptoutil.DeterministicKeyPair(id, "s")
	_ = r.ring.Register(id, key.Public)
	cfg := Config{
		ID:           id,
		Key:          key,
		Ring:         r.ring,
		Servers:      r.names,
		B:            b,
		Group:        "g",
		Consistency:  wire.MRC,
		Caller:       r.bus.Caller(id, &metrics.Counters{}),
		CallTimeout:  300 * time.Millisecond,
		ReadRetries:  1,
		RetryBackoff: 5 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
		if cfg.Metrics != nil {
			// Rebind the caller so message counts land on the test's
			// counters too.
			cfg.Caller = r.bus.Caller(id, cfg.Metrics)
		}
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidatesConfig(t *testing.T) {
	r := newRig(t, 4, server.Policy{Consistency: wire.MRC})
	key := cryptoutil.DeterministicKeyPair("x", "s")

	// Infeasible n/b.
	if _, err := New(Config{ID: "x", Key: key, Ring: r.ring, Servers: r.names[:3], B: 1,
		Group: "g", Caller: r.bus.Caller("x", nil)}); err == nil {
		t.Fatal("accepted n=3, b=1")
	}
	// Missing caller.
	if _, err := New(Config{ID: "x", Key: key, Ring: r.ring, Servers: r.names, B: 1, Group: "g"}); err == nil {
		t.Fatal("accepted nil caller")
	}
}

func TestOperationsRequireConnect(t *testing.T) {
	r := newRig(t, 4, server.Policy{Consistency: wire.MRC})
	c := r.client(t, "alice", 1, nil)
	ctx := context.Background()
	if _, err := c.Write(ctx, "x", []byte("v")); !errors.Is(err, ErrNotConnected) {
		t.Fatalf("write = %v, want ErrNotConnected", err)
	}
	if _, _, err := c.Read(ctx, "x"); !errors.Is(err, ErrNotConnected) {
		t.Fatalf("read = %v, want ErrNotConnected", err)
	}
	if err := c.Disconnect(ctx); !errors.Is(err, ErrNotConnected) {
		t.Fatalf("disconnect = %v, want ErrNotConnected", err)
	}
}

func TestWriteLandsOnExactlyBPlusOne(t *testing.T) {
	r := newRig(t, 4, server.Policy{Consistency: wire.MRC})
	c := r.client(t, "alice", 1, nil)
	ctx := context.Background()
	if err := c.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(ctx, "x", []byte("v")); err != nil {
		t.Fatal(err)
	}
	holders := 0
	for _, srv := range r.servers {
		if srv.Head("g", "x") != nil {
			holders++
		}
	}
	if holders != 2 {
		t.Fatalf("write landed on %d servers, want b+1 = 2", holders)
	}
}

func TestReadRetriesThenSucceeds(t *testing.T) {
	// The fresh value reaches the read quorum only after a delay
	// (simulating dissemination); the read's retry loop must pick it up.
	r := newRig(t, 4, server.Policy{Consistency: wire.MRC})
	writer := r.client(t, "writer", 1, nil)
	ctx := context.Background()
	if err := writer.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	stamp, err := writer.Write(ctx, "x", []byte("v"))
	if err != nil {
		t.Fatal(err)
	}

	m := &metrics.Counters{}
	reader := r.client(t, "reader", 1, func(cfg *Config) {
		cfg.Metrics = m
		cfg.ReadRetries = 5
		cfg.RetryBackoff = 20 * time.Millisecond
	})
	if err := reader.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	// Pre-load the reader's context to demand the fresh stamp, then make
	// the servers holding it unavailable at first.
	reader.ctxVec.Update("x", stamp)
	r.servers[0].SetFault(server.Crash)
	r.servers[1].SetFault(server.Crash)

	// Heal the servers shortly after the first attempt fails.
	go func() {
		time.Sleep(30 * time.Millisecond)
		r.servers[0].SetFault(server.Healthy)
		r.servers[1].SetFault(server.Healthy)
	}()

	got, _, err := reader.Read(ctx, "x")
	if err != nil {
		t.Fatalf("read after retries: %v", err)
	}
	if !bytes.Equal(got, []byte("v")) {
		t.Fatalf("read = %q", got)
	}
	if m.Custom("read.retries") == 0 {
		t.Fatal("no retries recorded; test did not exercise the retry path")
	}
}

func TestReadWidensPastInitialQuorum(t *testing.T) {
	// Fresh value lives only at servers c and d (indices 2, 3); the first
	// b+1 = 2 contacted (a, b) have nothing, so the client must widen.
	r := newRig(t, 4, server.Policy{Consistency: wire.MRC})
	writer := r.client(t, "writer", 1, nil)
	ctx := context.Background()
	if err := writer.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	// Crash a, b during the write so it lands on c, d.
	r.servers[0].SetFault(server.Crash)
	r.servers[1].SetFault(server.Crash)
	if _, err := writer.Write(ctx, "x", []byte("v")); err != nil {
		t.Fatal(err)
	}
	r.servers[0].SetFault(server.Healthy)
	r.servers[1].SetFault(server.Healthy)

	m := &metrics.Counters{}
	reader := r.client(t, "reader", 1, func(cfg *Config) { cfg.Metrics = m })
	if err := reader.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	got, _, err := reader.Read(ctx, "x")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("v")) {
		t.Fatalf("read = %q", got)
	}
	if m.Custom("read.widened") == 0 {
		t.Fatal("read did not widen despite empty first quorum")
	}
}

func TestCorruptMetaFallsBackToHonestServer(t *testing.T) {
	r := newRig(t, 4, server.Policy{Consistency: wire.MRC})
	c := r.client(t, "alice", 1, func(cfg *Config) {
		cfg.Metrics = &metrics.Counters{}
	})
	ctx := context.Background()
	if err := c.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(ctx, "x", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Server a lures with an inflated stamp but cannot substantiate it.
	r.servers[0].SetFault(server.CorruptMeta)
	got, _, err := c.Read(ctx, "x")
	if err != nil {
		t.Fatalf("read with corrupt-meta server: %v", err)
	}
	if !bytes.Equal(got, []byte("v")) {
		t.Fatalf("read = %q", got)
	}
}

func TestCCReadMergesWriterContext(t *testing.T) {
	r := newRig(t, 4, server.Policy{Consistency: wire.CC})
	writer := r.client(t, "writer", 1, func(cfg *Config) { cfg.Consistency = wire.CC })
	ctx := context.Background()
	if err := writer.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	s1, err := writer.Write(ctx, "x", []byte("vx"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Write(ctx, "y", []byte("vy")); err != nil {
		t.Fatal(err)
	}

	reader := r.client(t, "reader", 1, func(cfg *Config) { cfg.Consistency = wire.CC })
	if err := reader.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := reader.Read(ctx, "y"); err != nil {
		t.Fatal(err)
	}
	if got := reader.Context().Get("x"); got.Less(s1) {
		t.Fatalf("reader x floor = %v, want >= %v", got, s1)
	}
}

func TestMRCReadDoesNotImportOtherFloors(t *testing.T) {
	// Under MRC, reading y must not constrain x.
	r := newRig(t, 4, server.Policy{Consistency: wire.MRC})
	writer := r.client(t, "writer", 1, nil)
	ctx := context.Background()
	if err := writer.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Write(ctx, "x", []byte("vx")); err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Write(ctx, "y", []byte("vy")); err != nil {
		t.Fatal(err)
	}
	reader := r.client(t, "reader", 1, nil)
	if err := reader.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := reader.Read(ctx, "y"); err != nil {
		t.Fatal(err)
	}
	if got := reader.Context().Get("x"); !got.Zero() {
		t.Fatalf("MRC read of y set x floor to %v", got)
	}
}

func TestMultiWriterEquivocationSurfaced(t *testing.T) {
	r := newRig(t, 4, server.Policy{Consistency: wire.CC, MultiWriter: true})
	ctx := context.Background()

	// Hand-craft two values under one stamp from an equivocating writer,
	// delivered so that neither variant reaches b+1 = 2 servers... with 4
	// servers and a 3-server read quorum, split 2/2 so the read sees both.
	evil := cryptoutil.DeterministicKeyPair("evil", "s")
	r.ring.MustRegister(evil.ID, evil.Public)
	mk := func(value []byte) *wire.SignedWrite {
		st := timestamp.Stamp{Time: 9, Writer: "evil", Digest: cryptoutil.Digest(value)}
		w := &wire.SignedWrite{Group: "g", Item: "x", Stamp: st,
			WriterCtx: map[string]timestamp.Stamp{"x": st}, Value: value}
		w.Sign(evil, nil)
		return w
	}
	// Both variants share (Time, Writer) but differ in digest. Deliver
	// each variant to a single server: neither can ever assemble b+1 = 2
	// matching reports, so no reader accepts either.
	va, vb := mk([]byte("say yes")), mk([]byte("say no"))
	caller := r.bus.Caller("evil", nil)
	if _, err := caller.Call(ctx, r.names[0], wire.WriteReq{Write: va}); err != nil {
		t.Fatal(err)
	}
	if _, err := caller.Call(ctx, r.names[2], wire.WriteReq{Write: vb}); err != nil {
		t.Fatal(err)
	}

	reader := r.client(t, "reader", 1, func(cfg *Config) {
		cfg.Consistency = wire.CC
		cfg.MultiWriter = true
	})
	if err := reader.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	_, _, err := reader.Read(ctx, "x")
	if err == nil {
		t.Fatal("read accepted an equivocated value without b+1 distinct-server match")
	}
}

func TestEncryptionTransparent(t *testing.T) {
	r := newRig(t, 4, server.Policy{Consistency: wire.MRC})
	key := cryptoutil.DeriveDataKey("pass", "g")
	c := r.client(t, "alice", 1, func(cfg *Config) { cfg.DataKey = &key })
	ctx := context.Background()
	if err := c.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	secret := []byte("plaintext secret")
	if _, err := c.Write(ctx, "x", secret); err != nil {
		t.Fatal(err)
	}
	for _, srv := range r.servers {
		if w := srv.Head("g", "x"); w != nil && bytes.Contains(w.Value, secret) {
			t.Fatal("server stores plaintext")
		}
	}
	got, _, err := c.Read(ctx, "x")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatalf("read = %q", got)
	}

	// Reading with the wrong key fails loudly rather than returning junk.
	wrong := cryptoutil.DeriveDataKey("other", "g")
	c2 := r.client(t, "bob", 1, func(cfg *Config) { cfg.DataKey = &wrong })
	if err := c2.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c2.Read(ctx, "x"); err == nil {
		t.Fatal("wrong key read succeeded")
	}
}

func TestReconstructSkipsCorruptCopies(t *testing.T) {
	r := newRig(t, 4, server.Policy{Consistency: wire.MRC})
	c := r.client(t, "alice", 1, nil)
	ctx := context.Background()
	if err := c.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	stamp, err := c.Write(ctx, "x", []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	// One corrupting server: its copies fail verification and are
	// ignored during reconstruction.
	r.servers[0].SetFault(server.CorruptValue)

	c2 := r.client(t, "alice", 1, nil)
	if err := c2.ReconstructContext(ctx, []string{"x"}); err != nil {
		t.Fatal(err)
	}
	if got := c2.Context().Get("x"); got != stamp {
		t.Fatalf("reconstructed x = %v, want %v", got, stamp)
	}
}

func TestContextSeqAdvancesPerSession(t *testing.T) {
	r := newRig(t, 4, server.Policy{Consistency: wire.MRC})
	ctx := context.Background()
	for want := uint64(1); want <= 3; want++ {
		c := r.client(t, "alice", 1, nil)
		if err := c.Connect(ctx); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Write(ctx, "x", []byte{byte(want)}); err != nil {
			t.Fatal(err)
		}
		if err := c.Disconnect(ctx); err != nil {
			t.Fatal(err)
		}
		if c.ContextSeq() != want {
			t.Fatalf("session %d seq = %d", want, c.ContextSeq())
		}
	}
}

func TestWriteClockNeverReusesStamps(t *testing.T) {
	// Across sessions, a writer's stamps strictly increase even without a
	// stored context (reconstruction path).
	r := newRig(t, 4, server.Policy{Consistency: wire.MRC})
	ctx := context.Background()

	c1 := r.client(t, "alice", 1, nil)
	if err := c1.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	s1, err := c1.Write(ctx, "x", []byte("v1"))
	if err != nil {
		t.Fatal(err)
	}
	// Session "crashes" (no disconnect). New session reconstructs.
	c2 := r.client(t, "alice", 1, nil)
	if err := c2.ReconstructContext(ctx, []string{"x"}); err != nil {
		t.Fatal(err)
	}
	s2, err := c2.Write(ctx, "x", []byte("v2"))
	if err != nil {
		t.Fatal(err)
	}
	if !s1.Less(s2) {
		t.Fatalf("stamp reuse: %v then %v", s1, s2)
	}
}
