package client

import (
	"context"
	"fmt"
	"testing"
	"time"

	"securestore/internal/cryptoutil"
	"securestore/internal/metrics"
	"securestore/internal/server"
	"securestore/internal/sharding"
	"securestore/internal/transport"
	"securestore/internal/wire"
)

// shardedRig builds groups × n replicas behind one bus, each enforcing
// ownership from a shared shard table.
func shardedRig(t *testing.T, groups, n int) (*rig, *sharding.Table) {
	t.Helper()
	r := &rig{
		bus:  transport.NewBus(nil),
		ring: cryptoutil.NewKeyring(),
	}
	table := &sharding.Table{Version: 1}
	for g := 0; g < groups; g++ {
		shard := sharding.Shard{Name: fmt.Sprintf("g%02d", g)}
		for i := 0; i < n; i++ {
			shard.Servers = append(shard.Servers, fmt.Sprintf("g%02d-s%02d", g, i))
		}
		table.Shards = append(table.Shards, shard)
	}
	for _, shard := range table.Shards {
		shardName := shard.Name
		for _, name := range shard.Servers {
			key := cryptoutil.DeterministicKeyPair(name, "s")
			r.ring.MustRegister(name, key.Public)
			srv := server.New(server.Config{
				ID: name, Ring: r.ring,
				Shard: shardName,
				Owns:  func(item string) bool { return table.Owns(shardName, item) },
			})
			srv.RegisterGroup("g", server.Policy{Consistency: wire.MRC})
			r.bus.Register(name, srv)
			r.servers = append(r.servers, srv)
			r.names = append(r.names, name)
		}
	}
	return r, table
}

// pinAll routes every item to one shard regardless of its rendezvous
// home — the misconfigured (or stale) routing table of the regression.
type pinAll int

func (p pinAll) Place(string) int { return int(p) }

// misroutedItem returns an item the table homes on a shard other than
// wrongShard, so a pinAll(wrongShard) router provably misroutes it.
func misroutedItem(t *testing.T, table *sharding.Table, wrongShard int) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		item := fmt.Sprintf("victim-%04d", i)
		if table.Place(item) != wrongShard {
			return item
		}
	}
	t.Fatal("no misrouted item found")
	return ""
}

// TestWrongShardIsPermanent is the regression test for burning the retry
// budget on a misrouted item: a client whose router disagrees with the
// servers' table sends every request to a group that does not own the
// item. All n replicas reject with the typed wrong-shard error — far more
// than b, so the rejection is attributed to the client's own routing, not
// to Byzantine servers — and both read and write must fail immediately
// (no backoff sleeps) with an error IsWrongShard recognizes, while the
// routing-mismatch counter records the event for operators.
func TestWrongShardIsPermanent(t *testing.T) {
	r, table := shardedRig(t, 2, 4)
	m := &metrics.Counters{}
	c := r.client(t, "lost", 1, func(cfg *Config) {
		cfg.Servers = nil
		cfg.Table = table
		cfg.Router = pinAll(0)
		cfg.Metrics = m
		cfg.ReadRetries = 5
		cfg.RetryBackoff = 100 * time.Millisecond
	})
	// Session initiation would also be misrouted; bypass it — the test
	// targets data-path classification.
	c.mu.Lock()
	c.connected = true
	c.mu.Unlock()

	item := misroutedItem(t, table, 0)
	ctx := context.Background()

	start := time.Now()
	if _, err := c.Write(ctx, item, []byte("v")); err == nil {
		t.Fatal("misrouted write succeeded")
	} else if !wire.IsWrongShard(err) {
		t.Fatalf("misrouted write error not classified wrong-shard: %v", err)
	}
	if got := m.RoutingMismatches(); got != 1 {
		t.Fatalf("routing mismatches after write = %d, want 1", got)
	}

	if _, _, err := c.Read(ctx, item); err == nil {
		t.Fatal("misrouted read succeeded")
	} else if !wire.IsWrongShard(err) {
		t.Fatalf("misrouted read error not classified wrong-shard: %v", err)
	}
	if elapsed := time.Since(start); elapsed >= 100*time.Millisecond {
		t.Fatalf("misrouted ops took %v — the retry/backoff budget was burned on a permanent error", elapsed)
	}
	if got := m.RoutingMismatches(); got != 2 {
		t.Fatalf("routing mismatches after read = %d, want 2", got)
	}
	if got := m.Custom("read.retries"); got != 0 {
		t.Fatalf("read.retries = %d, want 0 (permanent errors must not retry)", got)
	}
}

// TestCorrectlyRoutedClientUnaffected is the control: the same rig, a
// client using the table's own placement, and the same item round-trips
// with zero mismatches.
func TestCorrectlyRoutedClientUnaffected(t *testing.T) {
	r, table := shardedRig(t, 2, 4)
	m := &metrics.Counters{}
	c := r.client(t, "found", 1, func(cfg *Config) {
		cfg.Servers = nil
		cfg.Table = table
		cfg.Metrics = m
	})
	c.mu.Lock()
	c.connected = true
	c.mu.Unlock()

	item := misroutedItem(t, table, 0) // any item; routed correctly here
	ctx := context.Background()
	if _, err := c.Write(ctx, item, []byte("v")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, _, err := c.Read(ctx, item); err != nil {
		t.Fatalf("read: %v", err)
	}
	if got := m.RoutingMismatches(); got != 0 {
		t.Fatalf("routing mismatches = %d, want 0", got)
	}
}
