package client

import (
	"errors"
	"math/rand"
	"time"

	"securestore/internal/accessctl"
	"securestore/internal/cryptoutil"
	"securestore/internal/quorum"
	"securestore/internal/wire"
)

// Error classification: a failed read attempt is either *retryable* — a
// later attempt can succeed once dissemination delivers the missing write
// or a transient outage heals (ErrStale, timeouts, unreachable quorums) —
// or *permanent* — no amount of retrying helps, so the client must fail
// fast instead of burning ReadRetries × backoff per doomed call:
//
//   - authorization rejection: tokens do not change between attempts, and
//     a rejection is attributed to the client only when more than b
//     servers report it (at least one of them is honest); b or fewer
//     rejections could all be Byzantine lies and stay retryable;
//   - signature failure on the client's own material (a corrupt data key
//     or ring entry): deterministic, retries reproduce it;
//   - proven writer equivocation: the cryptographic proof does not expire,
//     and the paper's remedy is informing the client, not retrying.
//   - wrong-shard rejection by more than b servers of one group: topology
//     is static for the life of the client's table, so a misrouted item
//     (a stale or mismatched shard table, or a Router that disagrees with
//     the servers' Owns predicate) stays misrouted on every retry.

// permanentReadError reports whether err can never be fixed by retrying.
func (c *Client) permanentReadError(err error) bool {
	if errors.Is(err, ErrEquivocation) || errors.Is(err, cryptoutil.ErrBadSignature) {
		return true
	}
	if c.wrongShard(err) {
		return true
	}
	var ge *quorum.GatherError
	if errors.As(err, &ge) {
		// Attribute the rejection to the client only when more than b
		// servers agree: with at most b faulty servers, b+1 matching
		// rejections include at least one honest server's verdict.
		return ge.CountCause(accessctl.ErrUnauthorized) > c.cfg.B
	}
	return errors.Is(err, accessctl.ErrUnauthorized)
}

// wrongShard reports whether err proves the request reached a replica
// group that does not own the item. Over the TCP transport server errors
// arrive flattened to strings, so detection goes through
// wire.IsWrongShard (which matches the in-band [EWRONGSHARD] token as
// well as the typed error). Inside a quorum gather the rejection is
// trusted only when more than b servers report it — b or fewer could all
// be Byzantine lies; a bare (non-gather) error is taken at face value.
func (c *Client) wrongShard(err error) bool {
	if err == nil {
		return false
	}
	var ge *quorum.GatherError
	if errors.As(err, &ge) {
		rejections := 0
		for _, e := range ge.Errs {
			if wire.IsWrongShard(e) {
				rejections++
			}
		}
		return rejections > c.cfg.B
	}
	return wire.IsWrongShard(err)
}

// retryDelay computes the pause before retry number attempt (0-based):
// exponential backoff doubling from RetryBackoff up to RetryBackoffMax,
// with jitter drawn uniformly from [delay/2, delay) so synchronized
// clients do not re-poll in lockstep. A non-positive base disables the
// pause entirely (the explicit -1 sentinel).
func (c *Client) retryDelay(attempt int) time.Duration {
	base, max := c.cfg.RetryBackoff, c.cfg.RetryBackoffMax
	if base <= 0 {
		return 0
	}
	delay := base
	for i := 0; i < attempt && delay < max; i++ {
		delay *= 2
	}
	if delay > max {
		delay = max
	}
	c.rngMu.Lock()
	jittered := delay/2 + time.Duration(c.rng.Int63n(int64(delay/2)+1))
	c.rngMu.Unlock()
	return jittered
}

// newRetryRNG seeds the jitter source deterministically from the client
// id, keeping seeded experiment runs reproducible.
func newRetryRNG(id string) *rand.Rand {
	var seed int64
	for _, b := range []byte(id) {
		seed = seed*131 + int64(b)
	}
	return rand.New(rand.NewSource(seed ^ 0x5eed5eed))
}
