package client

import (
	"errors"
	"math/rand"
	"time"

	"securestore/internal/accessctl"
	"securestore/internal/cryptoutil"
	"securestore/internal/quorum"
)

// Error classification: a failed read attempt is either *retryable* — a
// later attempt can succeed once dissemination delivers the missing write
// or a transient outage heals (ErrStale, timeouts, unreachable quorums) —
// or *permanent* — no amount of retrying helps, so the client must fail
// fast instead of burning ReadRetries × backoff per doomed call:
//
//   - authorization rejection: tokens do not change between attempts, and
//     a rejection is attributed to the client only when more than b
//     servers report it (at least one of them is honest); b or fewer
//     rejections could all be Byzantine lies and stay retryable;
//   - signature failure on the client's own material (a corrupt data key
//     or ring entry): deterministic, retries reproduce it;
//   - proven writer equivocation: the cryptographic proof does not expire,
//     and the paper's remedy is informing the client, not retrying.

// permanentReadError reports whether err can never be fixed by retrying.
func (c *Client) permanentReadError(err error) bool {
	if errors.Is(err, ErrEquivocation) || errors.Is(err, cryptoutil.ErrBadSignature) {
		return true
	}
	var ge *quorum.GatherError
	if errors.As(err, &ge) {
		// Attribute the rejection to the client only when more than b
		// servers agree: with at most b faulty servers, b+1 matching
		// rejections include at least one honest server's verdict.
		return ge.CountCause(accessctl.ErrUnauthorized) > c.cfg.B
	}
	return errors.Is(err, accessctl.ErrUnauthorized)
}

// retryDelay computes the pause before retry number attempt (0-based):
// exponential backoff doubling from RetryBackoff up to RetryBackoffMax,
// with jitter drawn uniformly from [delay/2, delay) so synchronized
// clients do not re-poll in lockstep. A non-positive base disables the
// pause entirely (the explicit -1 sentinel).
func (c *Client) retryDelay(attempt int) time.Duration {
	base, max := c.cfg.RetryBackoff, c.cfg.RetryBackoffMax
	if base <= 0 {
		return 0
	}
	delay := base
	for i := 0; i < attempt && delay < max; i++ {
		delay *= 2
	}
	if delay > max {
		delay = max
	}
	c.rngMu.Lock()
	jittered := delay/2 + time.Duration(c.rng.Int63n(int64(delay/2)+1))
	c.rngMu.Unlock()
	return jittered
}

// newRetryRNG seeds the jitter source deterministically from the client
// id, keeping seeded experiment runs reproducible.
func newRetryRNG(id string) *rand.Rand {
	var seed int64
	for _, b := range []byte(id) {
		seed = seed*131 + int64(b)
	}
	return rand.New(rand.NewSource(seed ^ 0x5eed5eed))
}
