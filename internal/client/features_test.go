package client

import (
	"bytes"
	"context"
	"testing"

	"securestore/internal/cryptoutil"
	"securestore/internal/metrics"
	"securestore/internal/server"
	"securestore/internal/wire"
)

func TestEagerReadSingleRound(t *testing.T) {
	r := newRig(t, 4, server.Policy{Consistency: wire.MRC})
	m := &metrics.Counters{}
	c := r.client(t, "alice", 1, func(cfg *Config) {
		cfg.EagerRead = true
		cfg.Metrics = m
	})
	ctx := context.Background()
	if err := c.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(ctx, "x", []byte("v")); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	got, _, err := c.Read(ctx, "x")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("v")) {
		t.Fatalf("read = %q", got)
	}
	// Single round to b+1 = 2 servers: 4 messages, vs 6 for two-phase.
	if msgs := m.MessagesSent(); msgs != 4 {
		t.Fatalf("eager read messages = %d, want 4", msgs)
	}
}

func TestEagerReadVerifiesAndSkipsCorrupt(t *testing.T) {
	r := newRig(t, 4, server.Policy{Consistency: wire.MRC})
	c := r.client(t, "alice", 1, func(cfg *Config) { cfg.EagerRead = true })
	ctx := context.Background()
	if err := c.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(ctx, "x", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// First contacted server corrupts values; the eager read must fall
	// through to the other holder (or the two-phase fallback) and still
	// return the genuine value.
	r.servers[0].SetFault(server.CorruptValue)
	got, _, err := c.Read(ctx, "x")
	if err != nil {
		t.Fatalf("eager read with corrupting server: %v", err)
	}
	if !bytes.Equal(got, []byte("v")) {
		t.Fatalf("read = %q", got)
	}
}

func TestEagerReadFallsBackWhenStale(t *testing.T) {
	// Fresh value only at the far servers: eager's first quorum misses it,
	// the fallback two-phase widened read finds it.
	r := newRig(t, 4, server.Policy{Consistency: wire.MRC})
	writer := r.client(t, "writer", 1, nil)
	ctx := context.Background()
	if err := writer.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	r.servers[0].SetFault(server.Crash)
	r.servers[1].SetFault(server.Crash)
	stamp, err := writer.Write(ctx, "x", []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	r.servers[0].SetFault(server.Healthy)
	r.servers[1].SetFault(server.Healthy)

	m := &metrics.Counters{}
	reader := r.client(t, "reader", 1, func(cfg *Config) {
		cfg.EagerRead = true
		cfg.Metrics = m
	})
	if err := reader.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	reader.ctxVec.Update("x", stamp) // demand the fresh value
	got, _, err := reader.Read(ctx, "x")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("v")) {
		t.Fatalf("read = %q", got)
	}
	if m.Custom("read.eager.fallback") == 0 {
		t.Fatal("eager read did not record its fallback")
	}
}

func TestRotateDataKey(t *testing.T) {
	r := newRig(t, 4, server.Policy{Consistency: wire.MRC})
	oldKey := cryptoutil.DeriveDataKey("old", "g")
	c := r.client(t, "owner", 1, func(cfg *Config) { cfg.DataKey = &oldKey })
	ctx := context.Background()
	if err := c.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	items := map[string][]byte{
		"a": []byte("alpha"),
		"b": []byte("bravo"),
	}
	for item, v := range items {
		if _, err := c.Write(ctx, item, v); err != nil {
			t.Fatal(err)
		}
	}

	newKey := cryptoutil.DeriveDataKey("new", "g")
	if err := c.RotateDataKey(ctx, []string{"a", "b", "never-written"}, &newKey); err != nil {
		t.Fatalf("rotate: %v", err)
	}

	// The rotating client still reads everything.
	for item, want := range items {
		got, _, err := c.Read(ctx, item)
		if err != nil {
			t.Fatalf("read %s after rotation: %v", item, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("read %s = %q, want %q", item, got, want)
		}
	}

	// A reader still on the old key can no longer open the heads.
	oldReader := r.client(t, "old-reader", 1, func(cfg *Config) { cfg.DataKey = &oldKey })
	if err := oldReader.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := oldReader.Read(ctx, "a"); err == nil {
		t.Fatal("old key still opens rotated item")
	}
	// A reader with the new key can.
	newReader := r.client(t, "new-reader", 1, func(cfg *Config) { cfg.DataKey = &newKey })
	if err := newReader.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	got, _, err := newReader.Read(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("alpha")) {
		t.Fatalf("new-key read = %q", got)
	}
}

func TestRotateDataKeyRequiresConnect(t *testing.T) {
	r := newRig(t, 4, server.Policy{Consistency: wire.MRC})
	key := cryptoutil.DeriveDataKey("k", "g")
	c := r.client(t, "owner", 1, func(cfg *Config) { cfg.DataKey = &key })
	if err := c.RotateDataKey(context.Background(), []string{"a"}, &key); err == nil {
		t.Fatal("rotate before connect succeeded")
	}
}
