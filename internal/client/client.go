// Package client implements the secure-store client: the active party of
// the paper's protocols. Servers are passive signed-data repositories;
// clients carry the consistency burden using their *context* (Sections 4
// and 5). This package provides:
//
//   - session management: Connect reads the client's stored context from a
//     ⌈(n+b+1)/2⌉ quorum, Disconnect writes it back (Figure 1);
//   - single-writer reads and writes under MRC or CC (Figure 2), touching
//     only b+1 servers in the common case;
//   - the multi-writer protocol of Section 5.3 with augmented timestamps,
//     2b+1-server reads and b+1 matching replies;
//   - context reconstruction after a crashed session (Section 5.1);
//   - optional client-side encryption so servers never see plaintext
//     (Section 5.2).
package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"securestore/internal/accessctl"
	"securestore/internal/cryptoutil"
	"securestore/internal/fragstore"
	"securestore/internal/metrics"
	"securestore/internal/quorum"
	"securestore/internal/sessionctx"
	"securestore/internal/sharding"
	"securestore/internal/timestamp"
	"securestore/internal/trace"
	"securestore/internal/transport"
	"securestore/internal/wire"
)

// Errors returned by client operations.
var (
	// ErrStale reports that no server could supply a value at least as
	// recent as the client's context requires, even after retries. The
	// paper's options — "contact additional servers or try later" — are
	// both exhausted when this is returned.
	ErrStale = errors.New("client: no sufficiently recent value available")
	// ErrNotConnected reports an operation before Connect.
	ErrNotConnected = errors.New("client: not connected")
	// ErrEquivocation reports proof that a writer signed two values under
	// one timestamp (multi-writer mode).
	ErrEquivocation = errors.New("client: writer equivocation detected")
)

// Config assembles everything a client session needs.
type Config struct {
	// ID is the client's principal name (the paper's uid(C_i)).
	ID string
	// Key is the client's signing key; its public half must be in Ring.
	Key cryptoutil.KeyPair
	// Ring holds all well-known public keys.
	Ring *cryptoutil.Keyring
	// Servers lists the replica names S_1..S_n. Ignored when Table is set
	// (each shard's server list then comes from the table).
	Servers []string
	// B is the assumed bound on faulty servers, per replica group.
	B int
	// Table, when non-nil, shards the keyspace across independent replica
	// groups: every item operation resolves the item to its group through
	// the placement function and runs the ordinary quorum protocol against
	// that group's servers only (single-shard operations stay one round
	// trip). Context operations route by the client's own id, so a
	// session's stored context has a deterministic home shard across
	// sessions. The table's signature, when present, is verified against
	// Ring at construction.
	Table *sharding.Table
	// Router overrides the item→shard placement function (e.g. the range
	// variant, sharding.NewRangeMap). Nil selects the table's default
	// rendezvous hash. Ignored without Table. The router must agree with
	// the Owns predicate the servers enforce, or every misrouted request
	// fails with wire.ErrWrongShard.
	Router sharding.Map
	// Group is the related group of data items this session accesses.
	Group string
	// Consistency is the group's consistency level (fixed at creation).
	Consistency wire.Consistency
	// MultiWriter selects the Section 5.3 protocol.
	MultiWriter bool
	// Caller is the transport bound to this client.
	Caller transport.Caller
	// Token authorizes this client for Group. May be nil when servers run
	// without an authority.
	Token *accessctl.Token
	// Metrics receives cost accounting. May be nil.
	Metrics *metrics.Counters
	// Tracer records per-operation spans (and, through its histogram set,
	// latency percentiles). May be nil: tracing then costs one pointer
	// check per operation.
	Tracer *trace.Tracer
	// CallTimeout bounds each quorum operation (default 2s).
	CallTimeout time.Duration
	// ReadRetries is how many times a read re-polls for a fresh enough
	// value before returning ErrStale (default 3). Set to a negative value
	// to disable retries entirely (a read makes exactly one attempt).
	ReadRetries int
	// RetryBackoff is the pause before the first read retry (default
	// 20ms), giving dissemination time to deliver the missing write.
	// Subsequent retries back off exponentially (with jitter) up to
	// RetryBackoffMax. Set to a negative value for no pause between
	// retries.
	RetryBackoff time.Duration
	// RetryBackoffMax caps the exponential read-retry backoff (default
	// 10× RetryBackoff).
	RetryBackoffMax time.Duration
	// ItemParallelism bounds the worker pool used by multi-item
	// operations (ReconstructContext, RotateDataKey), which fan items out
	// concurrently instead of one quorum round at a time (default 8).
	ItemParallelism int
	// DataKey, when non-nil, encrypts values client-side; servers store
	// only ciphertext (Section 5.2 confidentiality).
	DataKey *cryptoutil.DataKey
	// ObfuscateTimestamps advances timestamps by random increments so
	// observers cannot count updates (Section 5.2).
	ObfuscateTimestamps bool
	// EagerRead is an engineering optimization beyond the paper: reads
	// fetch full values from the first b+1 servers in a single round
	// instead of the two-phase timestamp-then-value protocol of Figure 2.
	// It halves read latency (1 RTT instead of 2) at the cost of moving
	// b+1 copies of the value and verifying up to b+1 signatures instead
	// of one. Ablation A4 quantifies the trade. Single-writer groups only.
	EagerRead bool
	// FragmentThreshold, when positive, erasure-codes values of at least
	// this many bytes (post-encryption) instead of replicating them: the
	// value is dispersed into one IDA fragment per replica of the item's
	// group (internal/fragstore), cutting per-replica wire and disk bytes
	// to ~1/k of the value at k+b write acks. Values below the threshold
	// keep the replicated path. Reads are transparent either way — a read
	// that finds a fragment envelope reconstructs from the quorum.
	// Incompatible with MultiWriter (fragment stamps are single-writer).
	// Fragment writes embed no writer context; under CC the session's own
	// ordering still holds through the client's context vector, but other
	// sessions cannot pull this write's causal predecessors from it.
	FragmentThreshold int
	// FragmentK overrides the erasure-coding reconstruction threshold
	// (default b+1). Higher k means smaller fragments (~1/k of the value
	// per replica) but more servers per operation: writes need k+b acks,
	// so k = n-b (the maximum) leaves no write-time slack for failures.
	// All sessions of a deployment must agree on k — readers reject
	// fragments dispersed under a different threshold.
	FragmentK int
	// FragHedgeDelay tunes the fragmented read's straggler hedge (see
	// fragstore.Config.HedgeDelay): zero adapts to observed read latency,
	// positive fixes the delay, negative disables hedging.
	FragHedgeDelay time.Duration
}

func (c *Config) withDefaults() Config {
	cfg := *c
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 2 * time.Second
	}
	// Negative values are the explicit "disabled" sentinel; only the zero
	// value (left unset) restores the default.
	switch {
	case cfg.ReadRetries < 0:
		cfg.ReadRetries = 0
	case cfg.ReadRetries == 0:
		cfg.ReadRetries = 3
	}
	switch {
	case cfg.RetryBackoff < 0:
		cfg.RetryBackoff = 0
	case cfg.RetryBackoff == 0:
		cfg.RetryBackoff = 20 * time.Millisecond
	}
	if cfg.RetryBackoffMax <= 0 {
		cfg.RetryBackoffMax = 10 * cfg.RetryBackoff
	}
	if cfg.RetryBackoffMax < cfg.RetryBackoff {
		cfg.RetryBackoffMax = cfg.RetryBackoff
	}
	if cfg.ItemParallelism <= 0 {
		cfg.ItemParallelism = 8
	}
	if cfg.Consistency == 0 {
		cfg.Consistency = wire.MRC
	}
	return cfg
}

// Client is one client session with the secure store. A session is a
// single principal's thread of interaction and its context evolves
// sequentially (as in the paper), but the client's mutable state is
// mutex-guarded: multi-item operations fan out internally across a worker
// pool, and their concurrent context updates (all monotone merges) are
// race-free.
type Client struct {
	cfg Config

	// shards holds one quorum view per replica group; router places items
	// into it. Unsharded clients have exactly one view (cfg.Servers) and a
	// nil router. home is the view holding this client's session context.
	shards []shardView
	router sharding.Map
	home   shardView

	mu        sync.Mutex // guards ctxVec, seq, clock, connected, cfg.DataKey
	ctxVec    sessionctx.Vector
	seq       uint64
	clock     timestamp.Clock
	connected bool

	// crossMu serializes cross-shard CC writes (see Write): once a CC
	// session's context spans groups, its writes carry causal
	// dependencies no single shard can gate, so the client orders them
	// itself — the client-side analogue of the server's mw gate.
	crossMu sync.Mutex

	// frag is the erasure-coding engine behind FragmentThreshold, also
	// used to reconstruct fragmented items on the read path. Nil in
	// multi-writer sessions and when the cluster cannot satisfy the
	// feasibility bound b < k <= n-b.
	frag *fragstore.Store

	rngMu sync.Mutex // guards rng (retry-backoff jitter)
	rng   *rand.Rand
}

// shardView is one replica group as the quorum engines see it.
type shardView struct {
	name    string
	servers []string
	n       int
}

// New validates the configuration and creates a (not yet connected)
// client.
func New(cfg Config) (*Client, error) {
	c := cfg.withDefaults()
	if c.Caller == nil {
		return nil, errors.New("client: caller required")
	}
	cl := &Client{
		cfg:    c,
		ctxVec: sessionctx.NewVector(),
		clock:  timestamp.Clock{Obfuscate: c.ObfuscateTimestamps},
		rng:    newRetryRNG(c.ID),
	}
	if c.Table != nil {
		if err := c.Table.Validate(c.B); err != nil {
			return nil, err
		}
		// A signed table is verified once here; every subsequent placement
		// is a pure hash over authenticated topology.
		if err := c.Table.Verify(c.Ring, c.Metrics); err != nil {
			return nil, err
		}
		cl.router = c.Router
		if cl.router == nil {
			cl.router = c.Table
		}
		for _, s := range c.Table.Shards {
			cl.shards = append(cl.shards, shardView{name: s.Name, servers: s.Servers, n: len(s.Servers)})
		}
		cl.home = cl.shards[cl.router.Place(c.ID)]
	} else {
		if err := quorum.Validate(len(c.Servers), c.B); err != nil {
			return nil, err
		}
		cl.shards = []shardView{{servers: c.Servers, n: len(c.Servers)}}
		cl.home = cl.shards[0]
	}
	if c.FragmentThreshold > 0 && c.MultiWriter {
		return nil, errors.New("client: FragmentThreshold is incompatible with MultiWriter (fragment stamps are single-writer)")
	}
	// Single-writer sessions get the erasure-coding engine whenever the
	// deployment can satisfy b < k <= n-b (k = b+1): writes use it above
	// FragmentThreshold, and reads use it to reconstruct fragmented items
	// regardless of this session's own threshold.
	if !c.MultiWriter {
		frag, err := fragstore.New(fragstore.Config{
			ID: c.ID, Key: c.Key, Ring: c.Ring,
			Servers: c.Servers, Table: c.Table, B: c.B, K: c.FragmentK,
			Group: c.Group, Caller: c.Caller, Token: c.Token,
			Metrics: c.Metrics, CallTimeout: c.CallTimeout,
			HedgeDelay: c.FragHedgeDelay,
		})
		switch {
		case err == nil:
			cl.frag = frag
		case c.FragmentThreshold > 0 || c.FragmentK > 0:
			return nil, fmt.Errorf("client: fragmentation requires an erasure-codable cluster: %w", err)
		}
	}
	return cl, nil
}

// sharded reports whether the client routes over more than one group.
func (c *Client) sharded() bool { return c.router != nil }

// Metrics exposes the session's cost counters (nil when none were
// configured), so embedding drivers can read protocol-cost deltas —
// hedge fires, bytes saved, coding times — without owning the Counters.
func (c *Client) Metrics() *metrics.Counters { return c.cfg.Metrics }

// shardFor resolves an item to its replica group's quorum view. The
// per-shard routing counter mirrors the servers' securestore_shard_ops
// accounting from the client's side of the split.
func (c *Client) shardFor(item string) shardView {
	if !c.sharded() {
		return c.shards[0]
	}
	sv := c.shards[c.router.Place(item)]
	c.cfg.Metrics.AddShardOp(sv.name)
	return sv
}

// homeShard returns the quorum view holding the client's stored context,
// with the same per-shard accounting as shardFor.
func (c *Client) homeShard() shardView {
	if c.sharded() {
		c.cfg.Metrics.AddShardOp(c.home.name)
	}
	return c.home
}

// crossShardWrite reports whether w's embedded context names a causal
// predecessor living on a shard other than sv — the one case where the
// target group's servers cannot gate the write's causal order themselves
// (they never see the foreign item arrive). Write serializes such writes
// through crossMu.
func (c *Client) crossShardWrite(sv shardView, w *wire.SignedWrite) bool {
	if !c.sharded() || w.WriterCtx == nil {
		return false
	}
	for item := range w.WriterCtx {
		if item == w.Item {
			continue
		}
		// Place directly (no shardFor) so gate checks do not inflate the
		// per-shard routing counters.
		if c.shards[c.router.Place(item)].name != sv.name {
			return true
		}
	}
	return false
}

// ID returns the client's principal name.
func (c *Client) ID() string { return c.cfg.ID }

// Context returns a copy of the client's current context vector.
func (c *Client) Context() sessionctx.Vector {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ctxVec.Clone()
}

// ContextSeq returns the sequence number of the last stored context.
func (c *Client) ContextSeq() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.seq
}

// Connected reports whether a session is active.
func (c *Client) Connected() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.connected
}

// Connect initiates a session: it collects the client's stored context
// from at least ⌈(n+b+1)/2⌉ servers, verifies signatures, and adopts the
// latest valid context (Figure 1). A client with no stored context starts
// fresh. Contact is staged — exactly the quorum first, expanding past
// failures — which realizes Section 6's cost of 2·⌈(n+b+1)/2⌉ messages in
// the failure-free case.
func (c *Client) Connect(ctx context.Context) (err error) {
	ctx, sp := c.startSpan(ctx, "ctx.read")
	defer func() { sp.SetError(err); sp.End() }()
	opCtx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
	defer cancel()

	sv := c.homeShard()
	need := quorum.ContextQuorum(sv.n, c.cfg.B)
	replies, err := quorum.GatherStaged(opCtx, c.cfg.Caller, sv.servers, func(string) wire.Request {
		return wire.ContextReadReq{Client: c.cfg.ID, Group: c.cfg.Group, Token: c.cfg.Token}
	}, need)
	if err != nil {
		return fmt.Errorf("connect: %w", err)
	}

	// Candidates sorted newest first; signatures are checked lazily so the
	// common case — the latest returned context is genuine — costs exactly
	// one verification, the paper's best case ("context acquisition
	// requires just one signature verification", Section 6). A forged or
	// stale-context lie from a malicious server merely moves verification
	// to the next candidate.
	var candidates []*sessionctx.Signed
	for _, r := range quorum.Successes(replies) {
		resp, ok := r.Resp.(wire.ContextReadResp)
		if !ok || resp.Ctx == nil {
			continue
		}
		if resp.Ctx.Owner != c.cfg.ID || resp.Ctx.Group != c.cfg.Group {
			continue
		}
		candidates = append(candidates, resp.Ctx)
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].Seq > candidates[j].Seq })
	var best *sessionctx.Signed
	for _, cand := range candidates {
		// Malicious servers cannot forge the owner's signature, so the
		// first verifiable candidate is the newest genuine one.
		if err := cand.Verify(c.cfg.Ring, c.cfg.Metrics); err == nil {
			best = cand
			break
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.ctxVec = sessionctx.NewVector()
	c.seq = 0
	if best != nil {
		c.ctxVec = best.Vector.Clone()
		c.seq = best.Seq
	}
	c.observeContextClockLocked()
	c.connected = true
	return nil
}

// Disconnect terminates the session: the client signs its current context
// (with an incremented sequence number) and stores it at ⌈(n+b+1)/2⌉
// servers (Figure 1).
func (c *Client) Disconnect(ctx context.Context) (err error) {
	ctx, sp := c.startSpan(ctx, "ctx.write")
	defer func() { sp.SetError(err); sp.End() }()
	c.mu.Lock()
	if !c.connected {
		c.mu.Unlock()
		return ErrNotConnected
	}
	signed := &sessionctx.Signed{
		Owner:  c.cfg.ID,
		Group:  c.cfg.Group,
		Seq:    c.seq + 1,
		Vector: c.ctxVec.Clone(),
	}
	c.mu.Unlock()
	signed.Sign(c.cfg.Key, c.cfg.Metrics)

	opCtx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
	defer cancel()

	sv := c.homeShard()
	need := quorum.ContextQuorum(sv.n, c.cfg.B)
	if _, err := quorum.GatherStaged(opCtx, c.cfg.Caller, sv.servers, func(string) wire.Request {
		return wire.ContextWriteReq{Ctx: signed, Token: c.cfg.Token}
	}, need); err != nil {
		return fmt.Errorf("disconnect: %w", err)
	}
	c.mu.Lock()
	c.seq = signed.Seq
	c.connected = false
	c.mu.Unlock()
	return nil
}

// ReconstructContext rebuilds the client's context after a session that
// ended without Disconnect (Section 5.1): it reads the named items from
// *all* servers, verifies each returned signed write, and adopts the
// latest valid stamp per item. Expensive by design — "a more expensive
// protocol is used to reconstruct the context" — so the items are fanned
// out across a bounded worker pool (Config.ItemParallelism) instead of one
// quorum round at a time.
func (c *Client) ReconstructContext(ctx context.Context, items []string) (err error) {
	ctx, sp := c.startSpan(ctx, "ctx.reconstruct")
	sp.SetAttr("items", fmt.Sprint(len(items)))
	defer func() { sp.SetError(err); sp.End() }()
	var (
		vecMu sync.Mutex
		vec   = sessionctx.NewVector()
	)
	err = c.forEachItem(ctx, items, func(ctx context.Context, item string) error {
		opCtx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
		defer cancel()
		// Each item is reconstructed from all servers of its own shard:
		// "all" in the paper's n-server sense is per replica group here.
		sv := c.shardFor(item)
		replies, err := quorum.GatherAll(opCtx, c.cfg.Caller, sv.servers, func(string) wire.Request {
			return wire.ValueReq{Client: c.cfg.ID, Group: c.cfg.Group, Item: item, Token: c.cfg.Token}
		}, sv.n-c.cfg.B)
		if err != nil {
			return fmt.Errorf("reconstruct context: item %s: %w", item, err)
		}
		for _, r := range quorum.Successes(replies) {
			resp, ok := r.Resp.(wire.ValueResp)
			if !ok || resp.Write == nil {
				continue
			}
			if resp.Write.Item != item || resp.Write.Group != c.cfg.Group {
				continue
			}
			if err := resp.Write.Verify(c.cfg.Ring, c.cfg.Metrics); err != nil {
				continue
			}
			vecMu.Lock()
			vec.Update(item, resp.Write.Stamp)
			vecMu.Unlock()
		}
		return nil
	})
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ctxVec = vec
	c.observeContextClockLocked()
	c.connected = true
	return nil
}

// startSpan opens a span for one client operation under the client's
// tracer (or the caller's, when ctx already carries one; a no-op when
// neither is set). Child spans — the per-replica RPCs issued by the
// quorum engine — attach automatically through the returned context.
func (c *Client) startSpan(ctx context.Context, op string) (context.Context, *trace.Span) {
	return trace.StartRoot(ctx, c.cfg.Tracer, op)
}

// observeContextClockLocked raises the write clock above every stamp in
// the context so a reconnecting writer never reuses a timestamp. Caller
// holds c.mu.
func (c *Client) observeContextClockLocked() {
	for _, ts := range c.ctxVec {
		c.clock.Observe(ts.Time)
	}
}

// forEachItem runs fn for every item on a pool of at most
// Config.ItemParallelism workers. The first error cancels the remaining
// work and is returned.
func (c *Client) forEachItem(ctx context.Context, items []string, fn func(ctx context.Context, item string) error) error {
	if len(items) == 0 {
		return nil
	}
	workers := c.cfg.ItemParallelism
	if workers > len(items) {
		workers = len(items)
	}
	poolCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	work := make(chan string)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for item := range work {
				if poolCtx.Err() != nil {
					continue // drain: another worker already failed
				}
				if err := fn(poolCtx, item); err != nil {
					errOnce.Do(func() { firstErr = err; cancel() })
				}
			}
		}()
	}
	for _, item := range items {
		work <- item
	}
	close(work)
	wg.Wait()
	return firstErr
}

// SetDataKey rotates the client-side encryption key. The paper's owner
// key-change procedure (Section 5.2) is: read each item, rotate the key,
// re-encrypt and write the items back; subsequent writes seal under the
// new key. Passing nil disables encryption.
func (c *Client) SetDataKey(key *cryptoutil.DataKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cfg.DataKey = key
}

// dataKey returns the current encryption key (nil when disabled).
func (c *Client) dataKey() *cryptoutil.DataKey {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg.DataKey
}

// seal encrypts the value when a data key is configured, binding it to the
// item so ciphertexts cannot be replayed across items.
func (c *Client) seal(item string, value []byte) ([]byte, error) {
	key := c.dataKey()
	if key == nil {
		return value, nil
	}
	sealed, err := key.Seal(value, []byte(c.cfg.Group+"/"+item), c.cfg.Metrics)
	if err != nil {
		return nil, fmt.Errorf("seal %s: %w", item, err)
	}
	return sealed, nil
}

// open decrypts a stored value when a data key is configured.
func (c *Client) open(item string, stored []byte) ([]byte, error) {
	key := c.dataKey()
	if key == nil {
		return stored, nil
	}
	plain, err := key.Open(stored, []byte(c.cfg.Group+"/"+item), c.cfg.Metrics)
	if err != nil {
		return nil, fmt.Errorf("open %s: %w", item, err)
	}
	return plain, nil
}

// RotateDataKey performs the paper's owner key-change procedure (Section
// 5.2): "When the owner changes its key, it reads the data items,
// re-encrypts and stores them back." Every listed item is read under the
// current key, the client switches to newKey, and the plaintexts are
// re-sealed and written back under fresh timestamps. Items that fail to
// read as absent are skipped; any other failure aborts before the key is
// switched, leaving the session fully on the old key.
// Both phases fan out across the item worker pool: all reads proceed
// concurrently under the old key, then — only after every read finished —
// the key switches and the rewrites proceed concurrently under the new
// one.
func (c *Client) RotateDataKey(ctx context.Context, items []string, newKey *cryptoutil.DataKey) error {
	if !c.Connected() {
		return ErrNotConnected
	}
	var (
		ptMu       sync.Mutex
		plaintexts = make(map[string][]byte, len(items))
	)
	err := c.forEachItem(ctx, items, func(ctx context.Context, item string) error {
		value, _, err := c.Read(ctx, item)
		if err != nil {
			if errors.Is(err, ErrStale) {
				return nil // never written (or unreachable as absent): nothing to re-encrypt
			}
			return fmt.Errorf("rotate key: read %s: %w", item, err)
		}
		ptMu.Lock()
		plaintexts[item] = value
		ptMu.Unlock()
		return nil
	})
	if err != nil {
		return err
	}
	c.SetDataKey(newKey)
	rewrite := make([]string, 0, len(plaintexts))
	for item := range plaintexts {
		rewrite = append(rewrite, item)
	}
	return c.forEachItem(ctx, rewrite, func(ctx context.Context, item string) error {
		if _, err := c.Write(ctx, item, plaintexts[item]); err != nil {
			return fmt.Errorf("rotate key: rewrite %s: %w", item, err)
		}
		return nil
	})
}
