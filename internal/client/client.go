// Package client implements the secure-store client: the active party of
// the paper's protocols. Servers are passive signed-data repositories;
// clients carry the consistency burden using their *context* (Sections 4
// and 5). This package provides:
//
//   - session management: Connect reads the client's stored context from a
//     ⌈(n+b+1)/2⌉ quorum, Disconnect writes it back (Figure 1);
//   - single-writer reads and writes under MRC or CC (Figure 2), touching
//     only b+1 servers in the common case;
//   - the multi-writer protocol of Section 5.3 with augmented timestamps,
//     2b+1-server reads and b+1 matching replies;
//   - context reconstruction after a crashed session (Section 5.1);
//   - optional client-side encryption so servers never see plaintext
//     (Section 5.2).
package client

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"securestore/internal/accessctl"
	"securestore/internal/cryptoutil"
	"securestore/internal/metrics"
	"securestore/internal/quorum"
	"securestore/internal/sessionctx"
	"securestore/internal/timestamp"
	"securestore/internal/transport"
	"securestore/internal/wire"
)

// Errors returned by client operations.
var (
	// ErrStale reports that no server could supply a value at least as
	// recent as the client's context requires, even after retries. The
	// paper's options — "contact additional servers or try later" — are
	// both exhausted when this is returned.
	ErrStale = errors.New("client: no sufficiently recent value available")
	// ErrNotConnected reports an operation before Connect.
	ErrNotConnected = errors.New("client: not connected")
	// ErrEquivocation reports proof that a writer signed two values under
	// one timestamp (multi-writer mode).
	ErrEquivocation = errors.New("client: writer equivocation detected")
)

// Config assembles everything a client session needs.
type Config struct {
	// ID is the client's principal name (the paper's uid(C_i)).
	ID string
	// Key is the client's signing key; its public half must be in Ring.
	Key cryptoutil.KeyPair
	// Ring holds all well-known public keys.
	Ring *cryptoutil.Keyring
	// Servers lists the replica names S_1..S_n.
	Servers []string
	// B is the assumed bound on faulty servers.
	B int
	// Group is the related group of data items this session accesses.
	Group string
	// Consistency is the group's consistency level (fixed at creation).
	Consistency wire.Consistency
	// MultiWriter selects the Section 5.3 protocol.
	MultiWriter bool
	// Caller is the transport bound to this client.
	Caller transport.Caller
	// Token authorizes this client for Group. May be nil when servers run
	// without an authority.
	Token *accessctl.Token
	// Metrics receives cost accounting. May be nil.
	Metrics *metrics.Counters
	// CallTimeout bounds each quorum operation (default 2s).
	CallTimeout time.Duration
	// ReadRetries is how many times a read re-polls for a fresh enough
	// value before returning ErrStale (default 3).
	ReadRetries int
	// RetryBackoff is the pause between read retries (default 20ms),
	// giving dissemination time to deliver the missing write.
	RetryBackoff time.Duration
	// DataKey, when non-nil, encrypts values client-side; servers store
	// only ciphertext (Section 5.2 confidentiality).
	DataKey *cryptoutil.DataKey
	// ObfuscateTimestamps advances timestamps by random increments so
	// observers cannot count updates (Section 5.2).
	ObfuscateTimestamps bool
	// EagerRead is an engineering optimization beyond the paper: reads
	// fetch full values from the first b+1 servers in a single round
	// instead of the two-phase timestamp-then-value protocol of Figure 2.
	// It halves read latency (1 RTT instead of 2) at the cost of moving
	// b+1 copies of the value and verifying up to b+1 signatures instead
	// of one. Ablation A4 quantifies the trade. Single-writer groups only.
	EagerRead bool
}

func (c *Config) withDefaults() Config {
	cfg := *c
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 2 * time.Second
	}
	if cfg.ReadRetries <= 0 {
		cfg.ReadRetries = 3
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 20 * time.Millisecond
	}
	if cfg.Consistency == 0 {
		cfg.Consistency = wire.MRC
	}
	return cfg
}

// Client is one client session with the secure store. Not safe for
// concurrent use: a session is a single principal's thread of interaction,
// and its context evolves sequentially (as in the paper).
type Client struct {
	cfg       Config
	n         int
	ctxVec    sessionctx.Vector
	seq       uint64
	clock     timestamp.Clock
	connected bool
}

// New validates the configuration and creates a (not yet connected)
// client.
func New(cfg Config) (*Client, error) {
	c := cfg.withDefaults()
	if err := quorum.Validate(len(c.Servers), c.B); err != nil {
		return nil, err
	}
	if c.Caller == nil {
		return nil, errors.New("client: caller required")
	}
	return &Client{
		cfg:    c,
		n:      len(c.Servers),
		ctxVec: sessionctx.NewVector(),
		clock:  timestamp.Clock{Obfuscate: c.ObfuscateTimestamps},
	}, nil
}

// ID returns the client's principal name.
func (c *Client) ID() string { return c.cfg.ID }

// Context returns a copy of the client's current context vector.
func (c *Client) Context() sessionctx.Vector { return c.ctxVec.Clone() }

// ContextSeq returns the sequence number of the last stored context.
func (c *Client) ContextSeq() uint64 { return c.seq }

// Connected reports whether a session is active.
func (c *Client) Connected() bool { return c.connected }

// Connect initiates a session: it collects the client's stored context
// from at least ⌈(n+b+1)/2⌉ servers, verifies signatures, and adopts the
// latest valid context (Figure 1). A client with no stored context starts
// fresh. Contact is staged — exactly the quorum first, expanding past
// failures — which realizes Section 6's cost of 2·⌈(n+b+1)/2⌉ messages in
// the failure-free case.
func (c *Client) Connect(ctx context.Context) error {
	opCtx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
	defer cancel()

	need := quorum.ContextQuorum(c.n, c.cfg.B)
	replies, err := quorum.GatherStaged(opCtx, c.cfg.Caller, c.cfg.Servers, func(string) wire.Request {
		return wire.ContextReadReq{Client: c.cfg.ID, Group: c.cfg.Group, Token: c.cfg.Token}
	}, need)
	if err != nil {
		return fmt.Errorf("connect: %w", err)
	}

	// Candidates sorted newest first; signatures are checked lazily so the
	// common case — the latest returned context is genuine — costs exactly
	// one verification, the paper's best case ("context acquisition
	// requires just one signature verification", Section 6). A forged or
	// stale-context lie from a malicious server merely moves verification
	// to the next candidate.
	var candidates []*sessionctx.Signed
	for _, r := range quorum.Successes(replies) {
		resp, ok := r.Resp.(wire.ContextReadResp)
		if !ok || resp.Ctx == nil {
			continue
		}
		if resp.Ctx.Owner != c.cfg.ID || resp.Ctx.Group != c.cfg.Group {
			continue
		}
		candidates = append(candidates, resp.Ctx)
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].Seq > candidates[j].Seq })
	var best *sessionctx.Signed
	for _, cand := range candidates {
		// Malicious servers cannot forge the owner's signature, so the
		// first verifiable candidate is the newest genuine one.
		if err := cand.Verify(c.cfg.Ring, c.cfg.Metrics); err == nil {
			best = cand
			break
		}
	}

	c.ctxVec = sessionctx.NewVector()
	c.seq = 0
	if best != nil {
		c.ctxVec = best.Vector.Clone()
		c.seq = best.Seq
	}
	c.observeContextClock()
	c.connected = true
	return nil
}

// Disconnect terminates the session: the client signs its current context
// (with an incremented sequence number) and stores it at ⌈(n+b+1)/2⌉
// servers (Figure 1).
func (c *Client) Disconnect(ctx context.Context) error {
	if !c.connected {
		return ErrNotConnected
	}
	opCtx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
	defer cancel()

	signed := &sessionctx.Signed{
		Owner:  c.cfg.ID,
		Group:  c.cfg.Group,
		Seq:    c.seq + 1,
		Vector: c.ctxVec.Clone(),
	}
	signed.Sign(c.cfg.Key, c.cfg.Metrics)

	need := quorum.ContextQuorum(c.n, c.cfg.B)
	if _, err := quorum.GatherStaged(opCtx, c.cfg.Caller, c.cfg.Servers, func(string) wire.Request {
		return wire.ContextWriteReq{Ctx: signed, Token: c.cfg.Token}
	}, need); err != nil {
		return fmt.Errorf("disconnect: %w", err)
	}
	c.seq = signed.Seq
	c.connected = false
	return nil
}

// ReconstructContext rebuilds the client's context after a session that
// ended without Disconnect (Section 5.1): it reads the named items from
// *all* servers, verifies each returned signed write, and adopts the
// latest valid stamp per item. Expensive by design — "a more expensive
// protocol is used to reconstruct the context".
func (c *Client) ReconstructContext(ctx context.Context, items []string) error {
	vec := sessionctx.NewVector()
	for _, item := range items {
		opCtx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
		replies, err := quorum.GatherAll(opCtx, c.cfg.Caller, c.cfg.Servers, func(string) wire.Request {
			return wire.ValueReq{Client: c.cfg.ID, Group: c.cfg.Group, Item: item, Token: c.cfg.Token}
		}, c.n-c.cfg.B)
		cancel()
		if err != nil {
			return fmt.Errorf("reconstruct context: item %s: %w", item, err)
		}
		for _, r := range quorum.Successes(replies) {
			resp, ok := r.Resp.(wire.ValueResp)
			if !ok || resp.Write == nil {
				continue
			}
			if resp.Write.Item != item || resp.Write.Group != c.cfg.Group {
				continue
			}
			if err := resp.Write.Verify(c.cfg.Ring, c.cfg.Metrics); err != nil {
				continue
			}
			vec.Update(item, resp.Write.Stamp)
		}
	}
	c.ctxVec = vec
	c.observeContextClock()
	c.connected = true
	return nil
}

// observeContextClock raises the write clock above every stamp in the
// context so a reconnecting writer never reuses a timestamp.
func (c *Client) observeContextClock() {
	for _, ts := range c.ctxVec {
		c.clock.Observe(ts.Time)
	}
}

// SetDataKey rotates the client-side encryption key. The paper's owner
// key-change procedure (Section 5.2) is: read each item, rotate the key,
// re-encrypt and write the items back; subsequent writes seal under the
// new key. Passing nil disables encryption.
func (c *Client) SetDataKey(key *cryptoutil.DataKey) {
	c.cfg.DataKey = key
}

// seal encrypts the value when a data key is configured, binding it to the
// item so ciphertexts cannot be replayed across items.
func (c *Client) seal(item string, value []byte) ([]byte, error) {
	if c.cfg.DataKey == nil {
		return value, nil
	}
	sealed, err := c.cfg.DataKey.Seal(value, []byte(c.cfg.Group+"/"+item), c.cfg.Metrics)
	if err != nil {
		return nil, fmt.Errorf("seal %s: %w", item, err)
	}
	return sealed, nil
}

// open decrypts a stored value when a data key is configured.
func (c *Client) open(item string, stored []byte) ([]byte, error) {
	if c.cfg.DataKey == nil {
		return stored, nil
	}
	plain, err := c.cfg.DataKey.Open(stored, []byte(c.cfg.Group+"/"+item), c.cfg.Metrics)
	if err != nil {
		return nil, fmt.Errorf("open %s: %w", item, err)
	}
	return plain, nil
}

// RotateDataKey performs the paper's owner key-change procedure (Section
// 5.2): "When the owner changes its key, it reads the data items,
// re-encrypts and stores them back." Every listed item is read under the
// current key, the client switches to newKey, and the plaintexts are
// re-sealed and written back under fresh timestamps. Items that fail to
// read as absent are skipped; any other failure aborts before the key is
// switched, leaving the session fully on the old key.
func (c *Client) RotateDataKey(ctx context.Context, items []string, newKey *cryptoutil.DataKey) error {
	if !c.connected {
		return ErrNotConnected
	}
	plaintexts := make(map[string][]byte, len(items))
	for _, item := range items {
		value, _, err := c.Read(ctx, item)
		if err != nil {
			if errors.Is(err, ErrStale) {
				continue // never written (or unreachable as absent): nothing to re-encrypt
			}
			return fmt.Errorf("rotate key: read %s: %w", item, err)
		}
		plaintexts[item] = value
	}
	c.SetDataKey(newKey)
	for item, value := range plaintexts {
		if _, err := c.Write(ctx, item, value); err != nil {
			return fmt.Errorf("rotate key: rewrite %s: %w", item, err)
		}
	}
	return nil
}
