package client

import (
	"context"
	"errors"
	"testing"
	"time"

	"securestore/internal/accessctl"
	"securestore/internal/cryptoutil"
	"securestore/internal/metrics"
	"securestore/internal/quorum"
	"securestore/internal/server"
	"securestore/internal/transport"
	"securestore/internal/wire"
)

// authRig is a rig whose servers enforce token authorization.
func authRig(t *testing.T, n int) (*rig, *accessctl.Authority) {
	t.Helper()
	r := &rig{
		bus:  transport.NewBus(nil),
		ring: cryptoutil.NewKeyring(),
	}
	authKey := cryptoutil.DeterministicKeyPair("authority", "s")
	authority := accessctl.NewAuthority(authKey)
	r.ring.MustRegister(authKey.ID, authKey.Public)
	for i := 0; i < n; i++ {
		name := string(rune('a' + i))
		srv := server.New(server.Config{ID: name, Ring: r.ring, AuthorityID: authority.ID()})
		srv.RegisterGroup("g", server.Policy{Consistency: wire.MRC})
		r.bus.Register(name, srv)
		r.servers = append(r.servers, srv)
		r.names = append(r.names, name)
	}
	return r, authority
}

// TestReadFailsFastOnUnauthorized is the regression test for retrying
// permanent errors: every server rejects the reader's write-only token,
// which is attributed to the client (more than b matching rejections) and
// must surface immediately — zero retries, no backoff sleeps.
func TestReadFailsFastOnUnauthorized(t *testing.T) {
	r, authority := authRig(t, 4)
	m := &metrics.Counters{}
	c := r.client(t, "wo", 1, func(cfg *Config) {
		cfg.Metrics = m
		cfg.Token = authority.Issue("wo", "g", accessctl.WriteOnly, nil)
		cfg.ReadRetries = 5
		cfg.RetryBackoff = 50 * time.Millisecond
	})
	// Session initiation also needs read rights; bypass it — the test
	// targets the read path's classification.
	c.mu.Lock()
	c.connected = true
	c.mu.Unlock()

	start := time.Now()
	_, _, err := c.Read(context.Background(), "x")
	elapsed := time.Since(start)
	if !errors.Is(err, accessctl.ErrUnauthorized) {
		t.Fatalf("read error = %v, want ErrUnauthorized", err)
	}
	if n := m.Custom("read.retries"); n != 0 {
		t.Fatalf("recorded %d retries for a permanent error", n)
	}
	if m.Custom("read.permanent") != 1 {
		t.Fatal("permanent classification not recorded")
	}
	if elapsed > 40*time.Millisecond {
		t.Fatalf("fail-fast took %v — the backoff slept anyway", elapsed)
	}
}

// TestUnauthorizedMinorityStaysRetryable: b or fewer rejections could all
// be Byzantine lies, so they must not be attributed to the client.
func TestUnauthorizedMinorityStaysRetryable(t *testing.T) {
	r := newRig(t, 4, server.Policy{Consistency: wire.MRC})
	c := r.client(t, "alice", 1, nil)

	one := &quorum.GatherError{Need: 2, Successes: 1, Servers: 4,
		Errs: []error{accessctl.ErrUnauthorized, context.DeadlineExceeded}}
	if c.permanentReadError(one) {
		t.Fatal("a single (possibly Byzantine) rejection classified as permanent")
	}
	two := &quorum.GatherError{Need: 2, Successes: 1, Servers: 4,
		Errs: []error{accessctl.ErrUnauthorized, accessctl.ErrUnauthorized}}
	if !c.permanentReadError(two) {
		t.Fatal("b+1 matching rejections not classified as permanent")
	}
	if c.permanentReadError(ErrStale) {
		t.Fatal("ErrStale classified as permanent")
	}
	if !c.permanentReadError(ErrEquivocation) {
		t.Fatal("proven equivocation classified as retryable")
	}
}

// TestRetryDelayBounds: doubling from RetryBackoff, capped at
// RetryBackoffMax, jittered within [delay/2, delay].
func TestRetryDelayBounds(t *testing.T) {
	r := newRig(t, 4, server.Policy{Consistency: wire.MRC})
	c := r.client(t, "alice", 1, func(cfg *Config) {
		cfg.RetryBackoff = 10 * time.Millisecond
		cfg.RetryBackoffMax = 80 * time.Millisecond
	})
	cases := []struct {
		attempt int
		lo, hi  time.Duration
	}{
		{0, 5 * time.Millisecond, 10 * time.Millisecond},
		{1, 10 * time.Millisecond, 20 * time.Millisecond},
		{3, 40 * time.Millisecond, 80 * time.Millisecond},
		{20, 40 * time.Millisecond, 80 * time.Millisecond}, // capped
	}
	for _, tc := range cases {
		for i := 0; i < 50; i++ {
			d := c.retryDelay(tc.attempt)
			if d < tc.lo || d > tc.hi {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", tc.attempt, d, tc.lo, tc.hi)
			}
		}
	}

	// A non-positive base disables the pause.
	off := r.client(t, "bob", 1, func(cfg *Config) { cfg.RetryBackoff = -1 })
	if d := off.retryDelay(3); d != 0 {
		t.Fatalf("disabled backoff returned %v", d)
	}
}
