package client

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"securestore/internal/cryptoutil"
	"securestore/internal/metrics"
	"securestore/internal/server"
	"securestore/internal/wire"
)

// TestWithDefaultsSentinels pins the -1 convention: zero means "use the
// default", negative means "explicitly off". Before the sentinel existed,
// ReadRetries: 0 silently became 3 and there was no way to disable the
// retry loop at all.
func TestWithDefaultsSentinels(t *testing.T) {
	cases := []struct {
		name        string
		in          Config
		wantRetries int
		wantBackoff time.Duration
		wantWorkers int
	}{
		{"zero values take defaults", Config{}, 3, 20 * time.Millisecond, 8},
		{"negative disables", Config{ReadRetries: -1, RetryBackoff: -1}, 0, 0, 8},
		{"positive preserved", Config{ReadRetries: 7, RetryBackoff: time.Second, ItemParallelism: 2}, 7, time.Second, 2},
	}
	for _, tc := range cases {
		got := tc.in.withDefaults()
		if got.ReadRetries != tc.wantRetries {
			t.Errorf("%s: ReadRetries = %d, want %d", tc.name, got.ReadRetries, tc.wantRetries)
		}
		if got.RetryBackoff != tc.wantBackoff {
			t.Errorf("%s: RetryBackoff = %v, want %v", tc.name, got.RetryBackoff, tc.wantBackoff)
		}
		if got.ItemParallelism != tc.wantWorkers {
			t.Errorf("%s: ItemParallelism = %d, want %d", tc.name, got.ItemParallelism, tc.wantWorkers)
		}
	}
}

// TestSentinelDisablesRetryLoop checks the behavioral half: with
// ReadRetries: -1 a read that cannot be satisfied fails in a single
// attempt instead of sleeping through the retry schedule.
func TestSentinelDisablesRetryLoop(t *testing.T) {
	r := newRig(t, 4, server.Policy{Consistency: wire.MRC})
	writer := r.client(t, "writer", 1, nil)
	ctx := context.Background()
	if err := writer.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	stamp, err := writer.Write(ctx, "x", []byte("v"))
	if err != nil {
		t.Fatal(err)
	}

	m := &metrics.Counters{}
	reader := r.client(t, "reader", 1, func(cfg *Config) {
		cfg.Metrics = m
		cfg.ReadRetries = -1
		cfg.RetryBackoff = 500 * time.Millisecond // would dominate if the loop ran
	})
	if err := reader.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	// Demand the fresh stamp while the servers holding it are down: the
	// read can never succeed, and with retries disabled it must say so
	// immediately.
	reader.ctxVec.Update("x", stamp)
	for _, srv := range r.servers {
		srv.SetFault(server.Crash)
	}
	start := time.Now()
	_, _, err = reader.Read(ctx, "x")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("read succeeded against an all-crashed cluster")
	}
	if got := m.Custom("read.retries"); got != 0 {
		t.Fatalf("%d retries recorded with ReadRetries: -1", got)
	}
	if elapsed > 400*time.Millisecond {
		t.Fatalf("single-attempt read took %v; retry backoff appears active", elapsed)
	}
}

// TestForEachItemRunsWorkersConcurrently proves the pool is actually
// parallel: with parallelism 4, four items block on a shared barrier that
// only opens once all four workers have arrived. A serialized loop would
// deadlock here (guarded by the test timeout below).
func TestForEachItemRunsWorkersConcurrently(t *testing.T) {
	r := newRig(t, 4, server.Policy{Consistency: wire.MRC})
	c := r.client(t, "alice", 1, func(cfg *Config) { cfg.ItemParallelism = 4 })

	const workers = 4
	var arrived atomic.Int64
	barrier := make(chan struct{})
	items := []string{"a", "b", "c", "d"}
	done := make(chan error, 1)
	go func() {
		done <- c.forEachItem(context.Background(), items, func(_ context.Context, _ string) error {
			if arrived.Add(1) == workers {
				close(barrier)
			}
			select {
			case <-barrier:
				return nil
			case <-time.After(5 * time.Second):
				return errors.New("barrier never opened: workers not concurrent")
			}
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("forEachItem hung")
	}
	if n := arrived.Load(); n != workers {
		t.Fatalf("fn ran %d times, want %d", n, workers)
	}
}

// TestForEachItemFirstErrorCancelsRest: one failing item must cancel the
// remaining work (workers see a dead context) and surface as the returned
// error.
func TestForEachItemFirstErrorCancelsRest(t *testing.T) {
	r := newRig(t, 4, server.Policy{Consistency: wire.MRC})
	c := r.client(t, "alice", 1, func(cfg *Config) { cfg.ItemParallelism = 2 })

	boom := errors.New("boom")
	var ran atomic.Int64
	items := make([]string, 64)
	for i := range items {
		items[i] = fmt.Sprintf("item%d", i)
	}
	err := c.forEachItem(context.Background(), items, func(ctx context.Context, item string) error {
		ran.Add(1)
		if item == "item0" {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := ran.Load(); n >= 64 {
		t.Fatalf("all %d items ran despite early error; cancellation not propagating", n)
	}
}

// TestReconstructContextParallelMatchesStamps runs the post-crash context
// reconstruction over many items through a small worker pool and checks the
// rebuilt context holds exactly the latest stamp of every item — the
// parallel fan-out must not mix up items or drop updates.
func TestReconstructContextParallelMatchesStamps(t *testing.T) {
	r := newRig(t, 4, server.Policy{Consistency: wire.MRC})
	writer := r.client(t, "alice", 1, nil)
	ctx := context.Background()
	if err := writer.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	const items = 24
	want := make(map[string]uint64, items)
	for i := 0; i < items; i++ {
		item := fmt.Sprintf("item%02d", i)
		// Two writes per item: reconstruction must adopt the second stamp.
		if _, err := writer.Write(ctx, item, []byte("old")); err != nil {
			t.Fatal(err)
		}
		stamp, err := writer.Write(ctx, item, []byte(fmt.Sprintf("new%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		want[item] = stamp.Time
	}

	// A fresh client for the same principal, as after a crash: no
	// Disconnect happened, so the stored context is stale and the session
	// rebuilds from the servers.
	revived := r.client(t, "alice", 1, func(cfg *Config) { cfg.ItemParallelism = 3 })
	names := make([]string, 0, items)
	for item := range want {
		names = append(names, item)
	}
	if err := revived.ReconstructContext(ctx, names); err != nil {
		t.Fatal(err)
	}
	vec := revived.Context()
	for item, wantTime := range want {
		got := vec.Get(item)
		if got.Time != wantTime {
			t.Fatalf("%s: context stamp %d, want %d", item, got.Time, wantTime)
		}
	}
	// And the revived session reads its own (pre-crash) writes.
	got, _, err := revived.Read(ctx, "item07")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("new7")) {
		t.Fatalf("post-reconstruction read = %q", got)
	}
}

// TestRotateDataKeyParallelManyItems exercises the rotation's two parallel
// phases (bulk read, bulk rewrite) over enough items to keep the pool busy,
// including one item written before encryption was enabled.
func TestRotateDataKeyParallelManyItems(t *testing.T) {
	r := newRig(t, 4, server.Policy{Consistency: wire.MRC})
	c := r.client(t, "alice", 1, func(cfg *Config) { cfg.ItemParallelism = 4 })
	ctx := context.Background()
	if err := c.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	oldKey := cryptoutil.DeriveDataKey("old", "g")
	c.SetDataKey(&oldKey)
	const items = 16
	var names []string
	var wg sync.WaitGroup
	for i := 0; i < items; i++ {
		names = append(names, fmt.Sprintf("doc%02d", i))
	}
	for _, item := range names {
		if _, err := c.Write(ctx, item, []byte("secret-"+item)); err != nil {
			t.Fatal(err)
		}
	}
	newKey := cryptoutil.DeriveDataKey("new", "g")
	if err := c.RotateDataKey(ctx, names, &newKey); err != nil {
		t.Fatal(err)
	}
	// All items readable under the new key, concurrently.
	errs := make(chan error, items)
	for _, item := range names {
		wg.Add(1)
		go func(item string) {
			defer wg.Done()
			got, _, err := c.Read(ctx, item)
			if err != nil {
				errs <- fmt.Errorf("%s: %w", item, err)
				return
			}
			if !bytes.Equal(got, []byte("secret-"+item)) {
				errs <- fmt.Errorf("%s: read %q", item, got)
			}
		}(item)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
