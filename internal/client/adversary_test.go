package client

import (
	"bytes"
	"context"
	"testing"

	"securestore/internal/cryptoutil"
	"securestore/internal/metrics"
	"securestore/internal/server"
	"securestore/internal/sessionctx"
	"securestore/internal/timestamp"
	"securestore/internal/transport"
	"securestore/internal/wire"
)

// tamperingHandler wraps a server and rewrites selected responses — an
// adversary stronger than the built-in fault modes, used to probe client
// defenses directly.
type tamperingHandler struct {
	inner  transport.Handler
	mutate func(wire.Request, wire.Response) wire.Response
}

func (h *tamperingHandler) ServeRequest(ctx context.Context, from string, req wire.Request) (wire.Response, error) {
	resp, err := h.inner.ServeRequest(ctx, from, req)
	if err != nil {
		return nil, err
	}
	if mutated := h.mutate(req, resp); mutated != nil {
		return mutated, nil
	}
	return resp, nil
}

func TestConnectRejectsForgedContext(t *testing.T) {
	// A malicious server responds to context reads with a forged context
	// claiming a huge sequence number (to make the client adopt a stale or
	// fabricated state). The owner's signature cannot be forged, so the
	// client must skip it and adopt the genuine latest context.
	r := newRig(t, 4, server.Policy{Consistency: wire.MRC})
	ctx := context.Background()

	// A genuine session stores a context at seq 1.
	c1 := r.client(t, "alice", 1, nil)
	if err := c1.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	stamp, err := c1.Write(ctx, "x", []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Disconnect(ctx); err != nil {
		t.Fatal(err)
	}

	// Server a starts forging contexts with an absurd seq.
	evilKey := cryptoutil.DeterministicKeyPair("server-a-evil", "s")
	forged := &sessionctx.Signed{
		Owner: "alice", Group: "g", Seq: 999,
		Vector: sessionctx.Vector{"x": {Time: 999_999}},
	}
	forged.Sig = evilKey.Sign(forged.SigningBytes(), nil)
	r.bus.Register("a", &tamperingHandler{
		inner: r.servers[0],
		mutate: func(req wire.Request, resp wire.Response) wire.Response {
			if _, ok := req.(wire.ContextReadReq); ok {
				return wire.ContextReadResp{Ctx: forged}
			}
			return nil
		},
	})

	c2 := r.client(t, "alice", 1, nil)
	if err := c2.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	if c2.ContextSeq() != 1 {
		t.Fatalf("adopted context seq = %d, want the genuine 1", c2.ContextSeq())
	}
	if got := c2.Context().Get("x"); got != stamp {
		t.Fatalf("adopted x floor = %v, want %v", got, stamp)
	}
	// And the forgeries cost extra verification attempts, visible in
	// metrics if a counter is attached — the protocol remains correct.
}

func TestReadRejectsReplayedOtherItemsWrite(t *testing.T) {
	// A malicious server answers a ValueReq for item x with a perfectly
	// valid signed write... for item y. The client must not accept it.
	r := newRig(t, 4, server.Policy{Consistency: wire.MRC})
	ctx := context.Background()
	c := r.client(t, "alice", 1, nil)
	if err := c.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(ctx, "x", []byte("x-value")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(ctx, "y", []byte("y-value")); err != nil {
		t.Fatal(err)
	}

	// Server a swaps every value response for its copy of y.
	inner := r.servers[0]
	r.bus.Register("a", &tamperingHandler{
		inner: inner,
		mutate: func(req wire.Request, resp wire.Response) wire.Response {
			if vq, ok := req.(wire.ValueReq); ok && vq.Item == "x" {
				if y := inner.Head("g", "y"); y != nil {
					return wire.ValueResp{Write: y}
				}
			}
			return nil
		},
	})

	got, _, err := c.Read(ctx, "x")
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, []byte("x-value")) {
		t.Fatalf("read x = %q (cross-item replay accepted)", got)
	}
}

func TestMultiWriterReadIgnoresUnverifiableLogEntries(t *testing.T) {
	// A malicious server injects fabricated entries into its log replies.
	// Those entries can never gather b+1 matching reports from distinct
	// servers, so readers are unaffected.
	r := newRig(t, 4, server.Policy{Consistency: wire.CC, MultiWriter: true})
	ctx := context.Background()
	w := r.client(t, "writer", 1, func(cfg *Config) {
		cfg.Consistency = wire.CC
		cfg.MultiWriter = true
	})
	if err := w.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(ctx, "doc", []byte("genuine")); err != nil {
		t.Fatal(err)
	}
	// Disseminate so every server reports the genuine write.
	for _, srv := range r.servers {
		if head := r.servers[0].Head("g", "doc"); head != nil {
			srv.ApplyDisseminated(head)
		}
	}

	fake := []byte("fabricated")
	fakeStamp := timestamp.Stamp{Time: 10_000, Writer: "writer", Digest: cryptoutil.Digest(fake)}
	r.bus.Register("a", &tamperingHandler{
		inner: r.servers[0],
		mutate: func(req wire.Request, resp wire.Response) wire.Response {
			if _, ok := req.(wire.LogReq); ok {
				lr, _ := resp.(wire.LogResp)
				lr.Writes = append([]*wire.SignedWrite{{
					Group: "g", Item: "doc", Stamp: fakeStamp, Value: fake,
				}}, lr.Writes...)
				return lr
			}
			return nil
		},
	})

	reader := r.client(t, "reader", 1, func(cfg *Config) {
		cfg.Consistency = wire.CC
		cfg.MultiWriter = true
		cfg.Metrics = &metrics.Counters{}
	})
	if err := reader.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	got, _, err := reader.Read(ctx, "doc")
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, []byte("genuine")) {
		t.Fatalf("read = %q (fabricated log entry accepted)", got)
	}
}

func TestEquivocationDetectionReported(t *testing.T) {
	// A malicious writer signs two values under one (time, writer) pair.
	// Whatever the read returns (or fails with), the client records the
	// detection — the paper's "clients ... can be informed" (Section 5.3).
	r := newRig(t, 4, server.Policy{Consistency: wire.CC, MultiWriter: true})
	ctx := context.Background()

	evil := cryptoutil.DeterministicKeyPair("evil", "s")
	r.ring.MustRegister(evil.ID, evil.Public)
	mk := func(value []byte) *wire.SignedWrite {
		st := timestamp.Stamp{Time: 9, Writer: "evil", Digest: cryptoutil.Digest(value)}
		w := &wire.SignedWrite{Group: "g", Item: "x", Stamp: st,
			WriterCtx: map[string]timestamp.Stamp{"x": st}, Value: value}
		w.Sign(evil, nil)
		return w
	}
	caller := r.bus.Caller("evil", nil)
	// Variant A at servers a and b (b+1 backing: acceptable); variant B
	// only at server c, so the read quorum {a,b,c} sees both variants.
	for _, srv := range []string{"a", "b"} {
		if _, err := caller.Call(ctx, srv, wire.WriteReq{Write: mk([]byte("yes"))}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := caller.Call(ctx, "c", wire.WriteReq{Write: mk([]byte("no"))}); err != nil {
		t.Fatal(err)
	}

	m := &metrics.Counters{}
	reader := r.client(t, "reader", 1, func(cfg *Config) {
		cfg.Consistency = wire.CC
		cfg.MultiWriter = true
		cfg.Metrics = m
	})
	if err := reader.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	got, _, err := reader.Read(ctx, "x")
	if err == nil && !bytes.Equal(got, []byte("yes")) {
		t.Fatalf("read = %q, only the b+1-backed variant may win", got)
	}
	if m.Custom("equivocation.detected") == 0 {
		t.Fatal("equivocation not reported to the client")
	}
}
