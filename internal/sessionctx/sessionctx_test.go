package sessionctx

import (
	"bytes"
	"testing"
	"testing/quick"

	"securestore/internal/cryptoutil"
	"securestore/internal/timestamp"
)

func st(time uint64) timestamp.Stamp { return timestamp.Stamp{Time: time} }

func TestUpdateKeepsMax(t *testing.T) {
	v := NewVector()
	if !v.Update("x", st(5)) {
		t.Fatal("first update reported no change")
	}
	if v.Update("x", st(3)) {
		t.Fatal("older update reported a change")
	}
	if v.Get("x") != st(5) {
		t.Fatalf("x = %v, want v5", v.Get("x"))
	}
	if !v.Update("x", st(9)) {
		t.Fatal("newer update reported no change")
	}
	if v.Get("x") != st(9) {
		t.Fatalf("x = %v, want v9", v.Get("x"))
	}
}

func TestMergePointwiseMax(t *testing.T) {
	a := Vector{"x": st(1), "y": st(9)}
	b := Vector{"x": st(5), "z": st(2)}
	a.Merge(b)
	want := Vector{"x": st(5), "y": st(9), "z": st(2)}
	if !a.Equal(want) {
		t.Fatalf("merge = %v, want %v", a, want)
	}
}

func TestMergeIdempotentCommutativeAssociative(t *testing.T) {
	// Property: merge is a join (least upper bound) on vectors.
	gen := func(xs []uint8, ys []uint8) (Vector, Vector) {
		a, b := NewVector(), NewVector()
		items := []string{"p", "q", "r", "s"}
		for i, x := range xs {
			if i >= len(items) {
				break
			}
			a[items[i]] = st(uint64(x))
		}
		for i, y := range ys {
			if i >= len(items) {
				break
			}
			b[items[i]] = st(uint64(y))
		}
		return a, b
	}
	prop := func(xs, ys []uint8) bool {
		a, b := gen(xs, ys)

		// Commutative.
		ab := a.Clone()
		ab.Merge(b)
		ba := b.Clone()
		ba.Merge(a)
		if !ab.Equal(ba) {
			return false
		}
		// Idempotent.
		again := ab.Clone()
		again.Merge(ab)
		if !again.Equal(ab) {
			return false
		}
		// Upper bound.
		return ab.Dominates(a) && ab.Dominates(b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDominates(t *testing.T) {
	a := Vector{"x": st(5), "y": st(5)}
	b := Vector{"x": st(3)}
	if !a.Dominates(b) {
		t.Fatal("a should dominate b")
	}
	if b.Dominates(a) {
		t.Fatal("b should not dominate a")
	}
	if !a.Dominates(NewVector()) {
		t.Fatal("everything dominates the empty vector")
	}
	c := Vector{"z": st(1)}
	if a.Dominates(c) {
		t.Fatal("a lacks z, cannot dominate c")
	}
}

func TestCloneIsolation(t *testing.T) {
	a := Vector{"x": st(1)}
	b := a.Clone()
	b.Update("x", st(9))
	if a.Get("x") != st(1) {
		t.Fatal("clone shares storage with original")
	}
}

func TestItemsSortedDeterministic(t *testing.T) {
	v := Vector{"zeta": st(1), "alpha": st(2), "mid": st(3)}
	items := v.Items()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if items[i] != want[i] {
			t.Fatalf("items = %v, want %v", items, want)
		}
	}
}

func TestSigningBytesDeterministic(t *testing.T) {
	mk := func() *Signed {
		return &Signed{
			Owner: "alice",
			Group: "g",
			Seq:   3,
			Vector: Vector{
				"b": st(2),
				"a": st(1),
				"c": st(3),
			},
		}
	}
	if !bytes.Equal(mk().SigningBytes(), mk().SigningBytes()) {
		t.Fatal("signing bytes differ across identical contexts")
	}
}

func TestSignVerify(t *testing.T) {
	key := cryptoutil.DeterministicKeyPair("alice", "s")
	ring := cryptoutil.NewKeyring()
	ring.MustRegister("alice", key.Public)

	s := &Signed{Owner: "alice", Group: "g", Seq: 1, Vector: Vector{"x": st(1)}}
	s.Sign(key, nil)
	if err := s.Verify(ring, nil); err != nil {
		t.Fatalf("verify: %v", err)
	}

	// Any field change invalidates the signature.
	tampered := s.Clone()
	tampered.Seq = 2
	if err := tampered.Verify(ring, nil); err == nil {
		t.Fatal("tampered seq verified")
	}
	tampered2 := s.Clone()
	tampered2.Vector.Update("x", st(99))
	if err := tampered2.Verify(ring, nil); err == nil {
		t.Fatal("tampered vector verified")
	}
}

func TestVerifyRejectsForgedOwner(t *testing.T) {
	alice := cryptoutil.DeterministicKeyPair("alice", "s")
	mallory := cryptoutil.DeterministicKeyPair("mallory", "s")
	ring := cryptoutil.NewKeyring()
	ring.MustRegister("alice", alice.Public)
	ring.MustRegister("mallory", mallory.Public)

	// Mallory signs a context claiming to be alice's.
	forged := &Signed{Owner: "alice", Group: "g", Seq: 9, Vector: NewVector()}
	forged.Sig = mallory.Sign(forged.SigningBytes(), nil)
	if err := forged.Verify(ring, nil); err == nil {
		t.Fatal("forged owner verified")
	}
}

func TestNewer(t *testing.T) {
	a := &Signed{Seq: 1}
	b := &Signed{Seq: 2}
	if !b.Newer(a) || a.Newer(b) {
		t.Fatal("Newer ordering wrong")
	}
	if !a.Newer(nil) {
		t.Fatal("anything is newer than nil")
	}
	if a.Newer(a) {
		t.Fatal("a context is not newer than itself")
	}
}

func TestSignedCloneDeep(t *testing.T) {
	s := &Signed{Owner: "a", Group: "g", Seq: 1, Vector: Vector{"x": st(1)}, Sig: []byte{1, 2}}
	c := s.Clone()
	c.Vector.Update("x", st(9))
	c.Sig[0] = 0xff
	if s.Vector.Get("x") != st(1) || s.Sig[0] != 1 {
		t.Fatal("clone shares storage")
	}
	var nilSigned *Signed
	if nilSigned.Clone() != nil {
		t.Fatal("nil clone should be nil")
	}
}
