// Package sessionctx implements the client *context* of the paper
// (Sections 4 and 5.1): the per-group vector of (item uid, timestamp)
// pairs that captures a client's past interactions with the store and that
// the client uses to decide which values it may consistently accept.
//
// Contexts are stored in the secure store itself between sessions, signed
// by their owner so that malicious servers cannot alter them. Because a
// context has a single writer (its owner), successive context values are
// totally ordered; a sequence number makes "latest" unambiguous even when
// two context versions are pointwise incomparable.
package sessionctx

import (
	"encoding/json"
	"fmt"
	"sort"

	"securestore/internal/cryptoutil"
	"securestore/internal/metrics"
	"securestore/internal/timestamp"
)

// Vector is the context proper: a mapping from item uid to the latest
// timestamp the client has read or written for that item. It corresponds to
// the paper's X_i = ((uid(x_1),ts_1), ..., (uid(x_m),ts_m)).
type Vector map[string]timestamp.Stamp

// NewVector returns an empty context vector.
func NewVector() Vector {
	return make(Vector)
}

// Get returns the stamp recorded for the item (zero stamp if absent).
func (v Vector) Get(item string) timestamp.Stamp {
	return v[item]
}

// Update raises the item's stamp to ts if ts is newer. It reports whether
// the vector changed.
func (v Vector) Update(item string, ts timestamp.Stamp) bool {
	cur, ok := v[item]
	if ok && !cur.Less(ts) {
		return false
	}
	v[item] = ts
	return true
}

// Merge folds other into v pointwise, keeping the maximum stamp per item.
// This is the CC read rule: "update each timestamp in X_i to max of value in
// X_i and the corresponding value in X_writer" (Figure 2).
func (v Vector) Merge(other Vector) {
	for item, ts := range other {
		v.Update(item, ts)
	}
}

// Dominates reports whether v has a stamp >= other's stamp for every item
// present in other.
func (v Vector) Dominates(other Vector) bool {
	for item, ts := range other {
		cur, ok := v[item]
		if !ok || cur.Less(ts) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the vector.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	for item, ts := range v {
		out[item] = ts
	}
	return out
}

// Items returns the sorted item uids present in the vector.
func (v Vector) Items() []string {
	items := make([]string, 0, len(v))
	for item := range v {
		items = append(items, item)
	}
	sort.Strings(items)
	return items
}

// Equal reports whether two vectors record identical stamps.
func (v Vector) Equal(other Vector) bool {
	if len(v) != len(other) {
		return false
	}
	for item, ts := range v {
		if other[item] != ts {
			return false
		}
	}
	return true
}

// String renders the vector deterministically for logs.
func (v Vector) String() string {
	items := v.Items()
	out := "{"
	for i, item := range items {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s:%s", item, v[item])
	}
	return out + "}"
}

// Signed is a context as stored at servers: the owner's vector for one
// related group, a monotonically increasing sequence number, and the
// owner's signature over all of it. The signature prevents malicious
// servers from forging or altering stored contexts (Section 5.1).
type Signed struct {
	Owner  string `json:"owner"`
	Group  string `json:"group"`
	Seq    uint64 `json:"seq"`
	Vector Vector `json:"vector"`
	Sig    []byte `json:"sig"`
}

// canonical is the deterministic signing payload: JSON with the vector
// flattened to a sorted slice so that map iteration order cannot vary the
// bytes. (encoding/json sorts map keys, but being explicit costs little and
// survives encoder changes.)
type canonical struct {
	Owner string      `json:"owner"`
	Group string      `json:"group"`
	Seq   uint64      `json:"seq"`
	Items []canonItem `json:"items"`
}

type canonItem struct {
	Item  string          `json:"item"`
	Stamp timestamp.Stamp `json:"stamp"`
}

// SigningBytes returns the canonical byte string that Owner signs.
func (s *Signed) SigningBytes() []byte {
	c := canonical{Owner: s.Owner, Group: s.Group, Seq: s.Seq}
	for _, item := range s.Vector.Items() {
		c.Items = append(c.Items, canonItem{Item: item, Stamp: s.Vector[item]})
	}
	raw, err := json.Marshal(c)
	if err != nil {
		// Marshalling plain structs of strings and integers cannot fail.
		panic(fmt.Sprintf("sessionctx: marshal canonical context: %v", err))
	}
	return raw
}

// Sign fills in the signature using the owner's key pair.
func (s *Signed) Sign(key cryptoutil.KeyPair, m *metrics.Counters) {
	s.Sig = key.Sign(s.SigningBytes(), m)
}

// Verify checks the signature against the owner's registered public key.
func (s *Signed) Verify(ring *cryptoutil.Keyring, m *metrics.Counters) error {
	if err := ring.Verify(s.Owner, s.SigningBytes(), s.Sig, m); err != nil {
		return fmt.Errorf("context for %s/%s seq %d: %w", s.Owner, s.Group, s.Seq, err)
	}
	return nil
}

// Newer reports whether s is a strictly newer context version than other.
// Context versions from the same honest owner are totally ordered by Seq.
func (s *Signed) Newer(other *Signed) bool {
	if other == nil {
		return true
	}
	return s.Seq > other.Seq
}

// Clone returns a deep copy.
func (s *Signed) Clone() *Signed {
	if s == nil {
		return nil
	}
	out := *s
	out.Vector = s.Vector.Clone()
	out.Sig = append([]byte(nil), s.Sig...)
	return &out
}
