package chaos

import (
	"fmt"
	"testing"

	"securestore/internal/wire"
)

// soakConfig builds the per-seed configuration the soak suite uses: even
// seeds exercise the single-writer MRC protocol, odd seeds the
// multi-writer CC protocol, and every run includes partitions, rotating
// Byzantine faults, a crash-restart through the WAL and a malicious
// read-only writer.
func soakConfig(seed int64, ops int, dataDir string) Config {
	cfg := Config{
		Seed:         seed,
		Ops:          ops,
		DataDir:      dataDir,
		CrashRestart: true,
		Mallory:      true,
	}
	if seed%2 == 1 {
		cfg.Consistency = wire.CC
		cfg.MultiWriter = true
	}
	return cfg
}

// TestChaosSoak is the acceptance soak: 20 seeds x 500 operations, at
// most b Byzantine replicas at a time plus partitions, loss, gossip
// stalls and one crash-restart — and zero checker violations. A failure
// prints the reproducing seed.
func TestChaosSoak(t *testing.T) {
	seeds, ops := 20, 500
	if testing.Short() {
		seeds, ops = 4, 150
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rep, err := Run(soakConfig(seed, ops, t.TempDir()))
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			for _, v := range rep.Violations {
				t.Errorf("seed %d: %s", seed, v)
			}
			if rep.AccessBreaches > 0 {
				t.Errorf("seed %d: %d writes accepted from the read-only client", seed, rep.AccessBreaches)
			}
			if rep.FinalReadFailures > 0 {
				t.Errorf("seed %d: %d reads still failing after heal+converge: %v",
					seed, rep.FinalReadFailures, rep.FinalReadErrors)
			}
			if rep.Restarts == 0 {
				t.Errorf("seed %d: the scheduled crash-restart never ran", seed)
			}
			if t.Failed() {
				t.Logf("reproduce with: chaos.Run(chaos.Config{Seed: %d, Ops: %d, CrashRestart: true, Mallory: true, MultiWriter: %v, ...}) or go test ./internal/chaos -run 'TestChaosSoak/seed=%d$' -v",
					seed, ops, seed%2 == 1, seed)
			}
		})
	}
}

// TestChaosTraceDeterministic replays one seed and requires the schedule
// and operation trace to be byte-identical: the property that makes a
// violating seed a reproducible bug report.
func TestChaosTraceDeterministic(t *testing.T) {
	ops := 300
	if testing.Short() {
		ops = 100
	}
	first, err := Run(soakConfig(7, ops, t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(soakConfig(7, ops, t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Trace) != len(second.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(first.Trace), len(second.Trace))
	}
	for i := range first.Trace {
		if first.Trace[i] != second.Trace[i] {
			t.Fatalf("trace diverges at entry %d: %q vs %q", i, first.Trace[i], second.Trace[i])
		}
	}
}

// TestChaosRejectsCrashWithoutWAL documents the configuration contract.
func TestChaosRejectsCrashWithoutWAL(t *testing.T) {
	if _, err := Run(Config{Seed: 1, Ops: 10, CrashRestart: true}); err == nil {
		t.Fatal("CrashRestart without DataDir must be rejected")
	}
}
