// Package chaos is a deterministic, seed-driven soak harness for the
// secure store's failure paths. One Run builds a cluster over the
// simulated network, drives a seeded workload through real clients, and —
// on a schedule derived only from the seed — composes the faults the
// paper's threat model admits: Byzantine replica fault modes rotating
// across at most b servers, network partitions isolating a minority,
// lossy phases, gossip stalls, a process crash with write-ahead-log
// recovery, and a read-only (malicious) client attempting writes. Every
// completed operation is recorded into an internal/checker History; a run
// "passes" when the checker finds zero integrity, MRC, CC or RYW
// violations despite everything the schedule threw at the cluster.
//
// Determinism is the harness's core property: every schedule decision is
// drawn from the seeded generator and depends only on the operation
// index, never on an operation's outcome — so the same seed replays the
// same fault schedule and the same operation stream, and a violating seed
// is a reproducible bug report. (Outcome counts — how many operations
// happened to fail under faults — may vary with timing; the schedule and
// the safety verdict are what a seed pins down.)
package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"securestore/internal/accessctl"
	"securestore/internal/checker"
	"securestore/internal/client"
	"securestore/internal/core"
	"securestore/internal/gossip"
	"securestore/internal/server"
	"securestore/internal/wire"
	"securestore/internal/workload"
)

// Config parameterizes one soak run. The zero value of most fields
// selects a sensible default; only Seed is meaningfully distinct per run.
type Config struct {
	// Seed drives the workload and the entire fault schedule.
	Seed int64
	// N replicas with at most B faulty (defaults 4 and 1).
	N, B int
	// Ops is the number of workload operations in the chaos phase
	// (default 500).
	Ops int
	// Clients is the number of honest clients (default 3).
	Clients int
	// Items is the related group's size (default 8); ValueSize the
	// synthetic payload length (default 64).
	Items     int
	ValueSize int
	// ReadFraction is the read probability for the writing client
	// (default 0.6). In single-writer groups only client 0 writes; the
	// others issue reads exclusively.
	ReadFraction float64
	// Consistency (default MRC) and MultiWriter select the group flavor.
	Consistency wire.Consistency
	MultiWriter bool
	// GossipMode selects the anti-entropy direction (default push-pull,
	// so a restarted replica can catch up on its own initiative).
	GossipMode gossip.Mode
	// DataDir, when non-empty, backs replicas with write-ahead logs;
	// required for CrashRestart.
	DataDir string
	// CrashRestart schedules one process crash at ~40% of the run and a
	// WAL recovery at ~70%. Requires DataDir.
	CrashRestart bool
	// Mallory adds a read-only client that periodically attempts writes;
	// any write that succeeds is reported as an access breach.
	Mallory bool
	// CallTimeout bounds each client operation (default 50ms — small, so
	// mute replicas cost milliseconds, not seconds). ReadRetries and
	// RetryBackoff tune the read retry loop (defaults 2 and 1ms).
	CallTimeout  time.Duration
	ReadRetries  int
	RetryBackoff time.Duration
	// FaultEvery, PartitionEvery, LossEvery, GossipEvery, StallEvery are
	// the schedule periods in operations (defaults 60, 90, 75, 5, 100).
	FaultEvery     int
	PartitionEvery int
	LossEvery      int
	GossipEvery    int
	StallEvery     int
}

// Report summarizes one run.
type Report struct {
	Seed int64
	// Attempted operation counts (chaos phase).
	Ops, Writes, Reads int
	// Failures under faults — expected to be nonzero and harmless; the
	// checker decides whether anything unsafe happened.
	WriteFailures, ReadFailures int
	// FinalReadFailures counts reads that still failed after every fault
	// was healed and the cluster converged; any nonzero value is a
	// liveness bug. FinalReadErrors carries their messages (diagnostics;
	// not part of the deterministic Trace).
	FinalReadFailures int
	FinalReadErrors   []string
	// AccessBreaches counts writes by the read-only client that the
	// cluster accepted (must be zero).
	AccessBreaches int
	// Schedule counters.
	FaultRotations, Partitions, LossPhases, Restarts, GossipRounds int
	// Trace is the deterministic schedule-and-operation log: identical
	// across runs with the same Config.
	Trace []string
	// Violations is the checker's verdict over the recorded history.
	Violations []checker.Violation
}

// withDefaults fills zero fields.
func (cfg Config) withDefaults() Config {
	if cfg.N == 0 {
		cfg.N = 4
	}
	if cfg.B == 0 {
		cfg.B = 1
	}
	if cfg.Ops == 0 {
		cfg.Ops = 500
	}
	if cfg.Clients == 0 {
		cfg.Clients = 3
	}
	if cfg.Items == 0 {
		cfg.Items = 8
	}
	if cfg.ValueSize == 0 {
		cfg.ValueSize = 64
	}
	if cfg.ReadFraction == 0 {
		cfg.ReadFraction = 0.6
	}
	if cfg.Consistency == 0 {
		cfg.Consistency = wire.MRC
	}
	if cfg.GossipMode == 0 {
		cfg.GossipMode = gossip.PushPull
	}
	if cfg.CallTimeout == 0 {
		cfg.CallTimeout = 50 * time.Millisecond
	}
	if cfg.ReadRetries == 0 {
		cfg.ReadRetries = 2
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = time.Millisecond
	}
	if cfg.FaultEvery == 0 {
		cfg.FaultEvery = 60
	}
	if cfg.PartitionEvery == 0 {
		cfg.PartitionEvery = 90
	}
	if cfg.LossEvery == 0 {
		cfg.LossEvery = 75
	}
	if cfg.GossipEvery == 0 {
		cfg.GossipEvery = 5
	}
	if cfg.StallEvery == 0 {
		cfg.StallEvery = 100
	}
	return cfg
}

// faultPool are the Byzantine modes the rotation draws from. Healthy is
// included so rotations sometimes leave a slot benign.
var faultPool = []server.FaultMode{
	server.Stale, server.CorruptValue, server.CorruptMeta, server.Mute,
	server.Crash, server.Equivocate, server.PrematureReport, server.Healthy,
}

// run carries one execution's state.
type run struct {
	cfg     Config
	rng     *rand.Rand
	cluster *core.Cluster
	clients []*client.Client
	gens    []*workload.Generator
	mallory *client.Client
	malGen  *workload.Generator
	history *checker.History
	report  *Report

	faulty     map[int]server.FaultMode // replica index -> injected mode
	crashedIdx int                      // scheduled crash target (-1 when none)
	crashed    bool
	crashAt    int
	restartAt  int

	partitionUntil int // op index at which the active partition heals (0 = none)
	lossUntil      int
	stallUntil     int
}

// Run executes one soak. The returned error covers setup problems (an
// invalid cluster size, an unrecoverable WAL); consistency verdicts are
// in Report.Violations.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.CrashRestart && cfg.DataDir == "" {
		return nil, fmt.Errorf("chaos: CrashRestart requires DataDir")
	}

	cluster, err := core.NewCluster(core.ClusterConfig{
		N:              cfg.N,
		B:              cfg.B,
		Seed:           fmt.Sprintf("chaos-%d", cfg.Seed),
		GossipMode:     cfg.GossipMode,
		GossipTimeout:  cfg.CallTimeout,
		DataDir:        cfg.DataDir,
		Principals:     principals(cfg),
		GossipInterval: time.Hour, // rounds are driven, never background
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	r := &run{
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		cluster:    cluster,
		history:    checker.New(),
		report:     &Report{Seed: cfg.Seed},
		faulty:     make(map[int]server.FaultMode),
		crashedIdx: -1,
	}
	if cfg.CrashRestart {
		r.crashAt = cfg.Ops * 2 / 5
		r.restartAt = cfg.Ops * 7 / 10
		r.crashedIdx = r.rng.Intn(cfg.N)
	}

	group := core.GroupSpec{Name: "chaos", Consistency: cfg.Consistency, MultiWriter: cfg.MultiWriter}
	cluster.RegisterGroup(group)
	if err := r.mintClients(group); err != nil {
		return nil, err
	}
	if err := r.seed(); err != nil {
		return nil, err
	}
	r.soak()
	r.finale()
	r.report.Ops = r.report.Writes + r.report.Reads
	r.report.Violations = append(r.report.Violations, r.history.Check()...)
	return r.report, nil
}

// principals pre-registers the client keys so WAL recovery can re-verify
// records written before a crash.
func principals(cfg Config) []string {
	var ids []string
	for i := 0; i < cfg.Clients; i++ {
		ids = append(ids, fmt.Sprintf("c%d", i))
	}
	if cfg.Mallory {
		ids = append(ids, "mallory")
	}
	return ids
}

func (r *run) mintClients(group core.GroupSpec) error {
	names := r.cluster.ServerNames
	for i := 0; i < r.cfg.Clients; i++ {
		// Rotate each client's contact order so the fault schedule hits
		// different first-contact replicas per client.
		order := append(append([]string(nil), names[i%len(names):]...), names[:i%len(names)]...)
		cl, err := r.cluster.NewClient(core.ClientSpec{
			ID:           fmt.Sprintf("c%d", i),
			Group:        group.Name,
			CallTimeout:  r.cfg.CallTimeout,
			ReadRetries:  r.cfg.ReadRetries,
			RetryBackoff: r.cfg.RetryBackoff,
			ServerOrder:  order,
		}, group)
		if err != nil {
			return err
		}
		if err := cl.Connect(context.Background()); err != nil {
			return fmt.Errorf("connect %s: %w", cl.ID(), err)
		}
		r.clients = append(r.clients, cl)
		readFraction := r.cfg.ReadFraction
		if !r.cfg.MultiWriter && i != 0 {
			readFraction = 1 // single-writer group: only client 0 writes
		}
		r.gens = append(r.gens, workload.New(workload.Config{
			Seed:         r.cfg.Seed*31 + int64(i),
			Items:        r.cfg.Items,
			ReadFraction: readFraction,
			ValueSize:    r.cfg.ValueSize,
		}))
	}
	if r.cfg.Mallory {
		cl, err := r.cluster.NewClient(core.ClientSpec{
			ID:          "mallory",
			Group:       group.Name,
			Rights:      accessctl.ReadOnly,
			CallTimeout: r.cfg.CallTimeout,
		}, group)
		if err != nil {
			return err
		}
		if err := cl.Connect(context.Background()); err != nil {
			return fmt.Errorf("connect mallory: %w", err)
		}
		r.mallory = cl
		r.malGen = workload.New(workload.Config{
			Seed:      r.cfg.Seed * 37,
			Items:     r.cfg.Items,
			ValueSize: r.cfg.ValueSize,
		})
	}
	return nil
}

// seed writes every item once on a healthy cluster and converges, so the
// chaos phase starts from a fully replicated state and reads of
// never-written items do not pollute the failure counts.
func (r *run) seed() error {
	writer := r.clients[0]
	for _, item := range r.gens[0].Items() {
		value := []byte(fmt.Sprintf("seed|%s|%d", item, r.cfg.Seed))
		stamp, err := writer.Write(context.Background(), item, value)
		if err != nil {
			return fmt.Errorf("seed write %s: %w", item, err)
		}
		r.history.RecordWrite(writer.ID(), item, stamp, value, writer.Context())
	}
	r.cluster.Converge()
	r.trace("seeded %d items", r.cfg.Items)
	return nil
}

// soak is the chaos phase: Ops operations interleaved with the fault
// schedule. Every rng draw below happens at an op index determined only
// by the configuration and earlier draws — never by operation outcomes —
// which is what makes a seed replayable.
func (r *run) soak() {
	for op := 0; op < r.cfg.Ops; op++ {
		r.scheduleAt(op)

		// Gossip tick (skipped during a scheduled stall).
		if op%r.cfg.GossipEvery == 0 && op >= r.stallUntil {
			engine := r.rng.Intn(len(r.cluster.Engines))
			r.cluster.Engines[engine].Round()
			r.report.GossipRounds++
		}

		// Mallory's forbidden write rides a fixed cadence.
		if r.mallory != nil && op%50 == 25 {
			r.malloryWrite(op)
		}

		ci := r.rng.Intn(len(r.clients))
		r.doOp(op, r.clients[ci], r.gens[ci])
	}
}

// scheduleAt fires every schedule event due at op. Draw order is fixed:
// crash, restart, fault rotation, partition, loss — so traces align
// across runs.
func (r *run) scheduleAt(op int) {
	if r.cfg.CrashRestart && op == r.crashAt {
		r.healFaults()
		r.cluster.CrashServer(r.crashedIdx)
		r.crashed = true
		r.trace("op %d: crash %s", op, r.cluster.ServerNames[r.crashedIdx])
	}
	if r.cfg.CrashRestart && op == r.restartAt {
		if err := r.cluster.RestartServer(r.crashedIdx); err != nil {
			// WAL recovery failing is itself a violation-grade finding.
			r.report.Violations = append(r.report.Violations, checker.Violation{
				Kind: "integrity", Item: r.cluster.ServerNames[r.crashedIdx],
				Detail: fmt.Sprintf("restart failed: %v", err),
			})
			return
		}
		r.crashed = false
		r.report.Restarts++
		r.trace("op %d: restart %s", op, r.cluster.ServerNames[r.crashedIdx])
	}
	if op > 0 && op%r.cfg.FaultEvery == 0 {
		r.rotateFaults(op)
	}
	if op > 0 && op%r.cfg.PartitionEvery == 0 && op >= r.partitionUntil {
		r.startPartition(op)
	}
	if r.partitionUntil > 0 && op == r.partitionUntil {
		r.cluster.Net.Heal()
		r.partitionUntil = 0
		r.trace("op %d: partition healed", op)
	}
	if op > 0 && op%r.cfg.LossEvery == 0 && op >= r.lossUntil {
		r.lossUntil = op + 5 + r.rng.Intn(15)
		r.cluster.Net.SetDropRate(0.02)
		r.report.LossPhases++
		r.trace("op %d: loss 2%% until op %d", op, r.lossUntil)
	}
	if r.lossUntil > 0 && op == r.lossUntil {
		r.cluster.Net.SetDropRate(0)
		r.lossUntil = 0
		r.trace("op %d: loss off", op)
	}
	if op > 0 && op%r.cfg.StallEvery == 0 {
		r.stallUntil = op + 10 + r.rng.Intn(20)
		r.trace("op %d: gossip stalled until op %d", op, r.stallUntil)
	}
}

// rotateFaults re-draws the faulty set: heal the previous set, then
// inject fresh modes into at most B replicas (one slot is consumed by a
// scheduled crash while it is in effect).
func (r *run) rotateFaults(op int) {
	r.healFaults()
	budget := r.cfg.B
	if r.crashed {
		budget--
	}
	for n := 0; n < budget; n++ {
		idx := r.rng.Intn(r.cfg.N)
		mode := faultPool[r.rng.Intn(len(faultPool))]
		if idx == r.crashedIdx && r.crashed {
			continue // slot wasted this rotation; keeps draws deterministic
		}
		if _, dup := r.faulty[idx]; dup {
			continue
		}
		r.faulty[idx] = mode
		r.cluster.Servers[idx].SetFault(mode)
		r.trace("op %d: fault %s=%v", op, r.cluster.ServerNames[idx], mode)
	}
	r.report.FaultRotations++
}

// healFaults returns every rotation-faulted replica to Healthy (never the
// scheduled crash victim — only RestartServer revives that one).
func (r *run) healFaults() {
	for idx := range r.faulty {
		if idx == r.crashedIdx && r.crashed {
			continue
		}
		r.cluster.Servers[idx].SetFault(server.Healthy)
	}
	r.faulty = make(map[int]server.FaultMode)
}

// startPartition isolates a minority of at most B replicas (partition 1)
// from everyone else — the remaining replicas and all clients join
// partition 2, so client quorums stay reachable on the majority side.
func (r *run) startPartition(op int) {
	size := 1 + r.rng.Intn(r.cfg.B)
	r.partitionUntil = op + 10 + r.rng.Intn(20)
	minority := make(map[int]bool, size)
	for len(minority) < size {
		minority[r.rng.Intn(r.cfg.N)] = true
	}
	var isolated, rest []string
	for i, name := range r.cluster.ServerNames {
		if minority[i] {
			isolated = append(isolated, name)
		} else {
			rest = append(rest, name)
		}
	}
	for _, cl := range r.clients {
		rest = append(rest, cl.ID())
	}
	if r.mallory != nil {
		rest = append(rest, r.mallory.ID())
	}
	r.cluster.Net.Partition(1, isolated...)
	r.cluster.Net.Partition(2, rest...)
	r.report.Partitions++
	r.trace("op %d: partition %v until op %d", op, isolated, r.partitionUntil)
}

// doOp issues one workload operation and records its outcome.
func (r *run) doOp(op int, cl *client.Client, gen *workload.Generator) {
	w := gen.Next()
	if w.IsRead {
		r.trace("op %d: %s read %s", op, cl.ID(), w.Item)
		r.report.Reads++
		value, stamp, err := cl.Read(context.Background(), w.Item)
		if err != nil {
			r.report.ReadFailures++
			return
		}
		r.history.RecordRead(cl.ID(), w.Item, stamp, value)
		return
	}
	r.trace("op %d: %s write %s", op, cl.ID(), w.Item)
	r.report.Writes++
	stamp, err := cl.Write(context.Background(), w.Item, w.Value)
	if err != nil {
		r.report.WriteFailures++
		// The write missed its quorum but may have landed on some
		// servers; record it so a later read returning its stamp is not a
		// false integrity alarm. The context it would carry embeds the
		// write's own stamp (see client.Write).
		ctx := cl.Context()
		ctx.Update(w.Item, stamp)
		r.history.RecordFailedWrite(cl.ID(), w.Item, stamp, w.Value, ctx)
		return
	}
	r.history.RecordWrite(cl.ID(), w.Item, stamp, w.Value, cl.Context())
}

// malloryWrite attempts a write with a read-only token; the cluster must
// refuse it.
func (r *run) malloryWrite(op int) {
	w := r.malGen.NextWrite()
	r.trace("op %d: mallory write %s", op, w.Item)
	stamp, err := r.mallory.Write(context.Background(), w.Item, w.Value)
	if err == nil {
		r.report.AccessBreaches++
		// Record it anyway so the checker judges the history, not the gap.
		r.history.RecordWrite(r.mallory.ID(), w.Item, stamp, w.Value, r.mallory.Context())
	}
}

// finale heals everything, converges, and has every client read every
// item — all recorded, so the checker also covers the recovered state.
func (r *run) finale() {
	r.healFaults()
	if r.crashed {
		if err := r.cluster.RestartServer(r.crashedIdx); err == nil {
			r.crashed = false
			r.report.Restarts++
		}
	}
	r.cluster.HealAll()
	r.cluster.Net.Heal()
	r.cluster.Net.SetDropRate(0)
	r.cluster.Converge()
	r.trace("healed and converged")
	for _, cl := range r.clients {
		for _, item := range r.gens[0].Items() {
			value, stamp, err := cl.Read(context.Background(), item)
			if err != nil {
				r.report.FinalReadFailures++
				r.report.FinalReadErrors = append(r.report.FinalReadErrors,
					fmt.Sprintf("%s %s: %v (floor %s)", cl.ID(), item, err, cl.Context().Get(item)))
				continue
			}
			r.history.RecordRead(cl.ID(), item, stamp, value)
		}
	}
}

func (r *run) trace(format string, args ...any) {
	r.report.Trace = append(r.report.Trace, fmt.Sprintf(format, args...))
}
