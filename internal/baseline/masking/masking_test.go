package masking

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"securestore/internal/cryptoutil"
	"securestore/internal/metrics"
	"securestore/internal/quorum"
	"securestore/internal/transport"
)

type env struct {
	servers []*Server
	client  *Client
	m       *metrics.Counters
}

func newEnv(t *testing.T, n, b int, multiWriter bool) *env {
	t.Helper()
	ring := cryptoutil.NewKeyring()
	bus := transport.NewBus(nil)
	m := &metrics.Counters{}
	e := &env{m: m}
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("m%02d", i)
		srv := NewServer(name, ring, m)
		bus.Register(name, srv)
		e.servers = append(e.servers, srv)
		names = append(names, name)
	}
	key := cryptoutil.DeterministicKeyPair("client", "s")
	ring.MustRegister(key.ID, key.Public)
	cl, err := NewClient(Config{
		ID: key.ID, Key: key, Ring: ring, Servers: names, B: b,
		Caller: bus.Caller(key.ID, m), Metrics: m,
		MultiWriter: multiWriter, CallTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.client = cl
	return e
}

func TestWriteReadRoundTrip(t *testing.T) {
	e := newEnv(t, 5, 1, false)
	ctx := context.Background()
	if _, err := e.client.Write(ctx, "x", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	got, _, err := e.client.Read(ctx, "x")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("v1")) {
		t.Fatalf("read = %q", got)
	}
}

func TestReadLatestAfterOverwrite(t *testing.T) {
	e := newEnv(t, 5, 1, false)
	ctx := context.Background()
	for i := 1; i <= 3; i++ {
		if _, err := e.client.Write(ctx, "x", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got, stamp, err := e.client.Read(ctx, "x")
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 || stamp.Time < 3 {
		t.Fatalf("read = %v @ %v, want latest", got, stamp)
	}
}

func TestQuorumSizeMatchesFormula(t *testing.T) {
	e := newEnv(t, 9, 2, false)
	want := quorum.MaskingQuorum(9, 2)
	if got := e.client.QuorumSize(); got != want {
		t.Fatalf("quorum = %d, want %d", got, want)
	}
	// Feasibility: n=4, b=1 is rejected (needs 4b+1 = 5).
	if _, err := NewClient(Config{ID: "x", Servers: []string{"a", "b", "c", "d"}, B: 1}); err == nil {
		t.Fatal("accepted n=4 b=1")
	}
}

func TestToleratesCrashAndStale(t *testing.T) {
	e := newEnv(t, 5, 1, false)
	ctx := context.Background()
	if _, err := e.client.Write(ctx, "x", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.client.Write(ctx, "x", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	e.servers[0].SetFault(Stale)
	got, _, err := e.client.Read(ctx, "x")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("read with stale server = %q", got)
	}

	e.servers[0].SetFault(Healthy)
	e.servers[1].SetFault(Crash)
	got, _, err = e.client.Read(ctx, "x")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("read with crashed server = %q", got)
	}
	if _, err := e.client.Write(ctx, "x", []byte("v3")); err != nil {
		t.Fatalf("write with crashed server: %v", err)
	}
}

func TestServerRejectsForgedEntry(t *testing.T) {
	e := newEnv(t, 5, 1, false)
	ctx := context.Background()
	if _, err := e.client.Write(ctx, "x", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Replay the stored entry with a modified value directly at a server.
	bus := transport.NewBus(nil)
	_ = bus
	entry := Entry{Item: "x", Value: []byte("forged"), Writer: "client"}
	if _, err := e.servers[0].ServeRequest(ctx, "anyone", WriteReq{Entry: entry}); err == nil {
		t.Fatal("unsigned entry accepted")
	}
}

func TestReadNoValue(t *testing.T) {
	e := newEnv(t, 5, 1, false)
	if _, _, err := e.client.Read(context.Background(), "ghost"); !errors.Is(err, ErrNoValue) {
		t.Fatalf("err = %v, want ErrNoValue", err)
	}
}

func TestMultiWriterTimestampDiscovery(t *testing.T) {
	// Two independent clients; the second's write must order after the
	// first's thanks to the timestamp-discovery phase.
	ring := cryptoutil.NewKeyring()
	bus := transport.NewBus(nil)
	m := &metrics.Counters{}
	names := make([]string, 0, 5)
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("m%02d", i)
		bus.Register(name, NewServer(name, ring, m))
		names = append(names, name)
	}
	mkClient := func(id string) *Client {
		key := cryptoutil.DeterministicKeyPair(id, "s")
		ring.MustRegister(key.ID, key.Public)
		cl, err := NewClient(Config{
			ID: key.ID, Key: key, Ring: ring, Servers: names, B: 1,
			Caller: bus.Caller(key.ID, m), Metrics: m, MultiWriter: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return cl
	}
	a, b := mkClient("a"), mkClient("b")
	ctx := context.Background()
	if _, err := a.Write(ctx, "x", []byte("from-a")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write(ctx, "x", []byte("from-b")); err != nil {
		t.Fatal(err)
	}
	got, _, err := a.Read(ctx, "x")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("from-b")) {
		t.Fatalf("read = %q, want from-b (later write wins)", got)
	}
}

func TestReadVerifiesPerReply(t *testing.T) {
	// Crypto cost proportional to quorum size (Section 6 comparison).
	e := newEnv(t, 5, 1, false)
	ctx := context.Background()
	if _, err := e.client.Write(ctx, "x", []byte("v")); err != nil {
		t.Fatal(err)
	}
	e.m.Reset()
	if _, _, err := e.client.Read(ctx, "x"); err != nil {
		t.Fatal(err)
	}
	if got := e.m.Verifications(); got < int64(e.client.QuorumSize()) {
		t.Fatalf("read verifications = %d, want >= quorum size %d", got, e.client.QuorumSize())
	}
}
