// Package masking implements the strong-consistency Byzantine quorum
// baseline the paper compares against (Sections 3 and 6): a Phalanx/Fleet
// style replicated variable where every read and write contacts a quorum
// of ⌈(n+2b+1)/2⌉ servers, so that any two quorums intersect in at least
// 2b+1 servers — b+1 of them correct — giving safe semantics without
// client contexts.
//
// Values are signed by their writers; to find the latest valid value, the
// reading client must verify signatures across the quorum's replies, which
// is why the paper notes that "the computational overheads of strong
// consistency quorums include signature verifications that are
// proportional to the size of the quorums". Multi-writer mode prepends a
// timestamp-discovery round to each write, doubling its message cost.
package masking

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"securestore/internal/cryptoutil"
	"securestore/internal/metrics"
	"securestore/internal/quorum"
	"securestore/internal/timestamp"
	"securestore/internal/transport"
	"securestore/internal/wire"
)

// ErrNoValue reports a read of an item no quorum member stores.
var ErrNoValue = errors.New("masking: no valid value found")

// Entry is one signed (item, value, timestamp) record.
type Entry struct {
	Item   string          `json:"item"`
	Stamp  timestamp.Stamp `json:"stamp"`
	Value  []byte          `json:"value"`
	Writer string          `json:"writer"`
	Sig    []byte          `json:"sig"`
}

// SigningBytes returns the canonical signed payload.
func (e *Entry) SigningBytes() []byte {
	c := struct {
		Item   string          `json:"item"`
		Stamp  timestamp.Stamp `json:"stamp"`
		Digest [32]byte        `json:"digest"`
		Writer string          `json:"writer"`
	}{e.Item, e.Stamp, cryptoutil.Digest(e.Value), e.Writer}
	raw, err := json.Marshal(c)
	if err != nil {
		panic(fmt.Sprintf("masking: marshal entry: %v", err))
	}
	return raw
}

// Sign signs the entry.
func (e *Entry) Sign(key cryptoutil.KeyPair, m *metrics.Counters) {
	e.Writer = key.ID
	e.Sig = key.Sign(e.SigningBytes(), m)
}

// Verify checks the entry's signature.
func (e *Entry) Verify(ring *cryptoutil.Keyring, m *metrics.Counters) error {
	return ring.Verify(e.Writer, e.SigningBytes(), e.Sig, m)
}

// Protocol messages.
type (
	// ReadReq asks for the server's current entry.
	ReadReq struct{ Item string }
	// ReadResp returns it (Has false when absent).
	ReadResp struct {
		Has   bool
		Entry Entry
	}
	// TimeReq asks only for the entry's timestamp (multi-writer write
	// phase one).
	TimeReq struct{ Item string }
	// TimeResp returns the timestamp.
	TimeResp struct {
		Has   bool
		Stamp timestamp.Stamp
	}
	// WriteReq stores an entry.
	WriteReq struct{ Entry Entry }
	// WriteResp acknowledges.
	WriteResp struct{}
)

// WireRequest/WireResponse route these through the shared transports.
func (ReadReq) WireRequest()    {}
func (TimeReq) WireRequest()    {}
func (WriteReq) WireRequest()   {}
func (ReadResp) WireResponse()  {}
func (TimeResp) WireResponse()  {}
func (WriteResp) WireResponse() {}

// FaultMode selects replica behaviour.
type FaultMode int

// Fault modes for the baseline replicas.
const (
	Healthy FaultMode = iota + 1
	Crash
	Stale
)

// Server is one baseline replica.
type Server struct {
	id      string
	ring    *cryptoutil.Keyring
	metrics *metrics.Counters

	mu    sync.Mutex
	fault FaultMode
	items map[string]*itemState
}

type itemState struct {
	cur   Entry
	first Entry
}

var _ transport.Handler = (*Server)(nil)

// NewServer creates a healthy replica.
func NewServer(id string, ring *cryptoutil.Keyring, m *metrics.Counters) *Server {
	return &Server{id: id, ring: ring, metrics: m, fault: Healthy, items: make(map[string]*itemState)}
}

// ID returns the replica name.
func (s *Server) ID() string { return s.id }

// SetFault switches the replica's behaviour.
func (s *Server) SetFault(f FaultMode) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fault = f
}

// ServeRequest implements transport.Handler.
func (s *Server) ServeRequest(_ context.Context, _ string, req wire.Request) (wire.Response, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fault == Crash {
		return nil, errors.New("masking: server crashed")
	}
	switch r := req.(type) {
	case ReadReq:
		st, ok := s.items[r.Item]
		if !ok {
			return ReadResp{}, nil
		}
		if s.fault == Stale {
			return ReadResp{Has: true, Entry: st.first}, nil
		}
		return ReadResp{Has: true, Entry: st.cur}, nil
	case TimeReq:
		st, ok := s.items[r.Item]
		if !ok {
			return TimeResp{}, nil
		}
		if s.fault == Stale {
			return TimeResp{Has: true, Stamp: st.first.Stamp}, nil
		}
		return TimeResp{Has: true, Stamp: st.cur.Stamp}, nil
	case WriteReq:
		// Servers verify writer signatures before overwriting state.
		if err := r.Entry.Verify(s.ring, s.metrics); err != nil {
			return nil, err
		}
		if s.fault == Stale {
			// Acks but ignores the update.
			return WriteResp{}, nil
		}
		st, ok := s.items[r.Entry.Item]
		if !ok {
			s.items[r.Entry.Item] = &itemState{cur: r.Entry, first: r.Entry}
			return WriteResp{}, nil
		}
		if st.cur.Stamp.Less(r.Entry.Stamp) {
			st.cur = r.Entry
		}
		return WriteResp{}, nil
	default:
		return nil, fmt.Errorf("masking: unknown request %T", req)
	}
}

// Config configures a baseline client.
type Config struct {
	ID      string
	Key     cryptoutil.KeyPair
	Ring    *cryptoutil.Keyring
	Servers []string
	B       int
	Caller  transport.Caller
	Metrics *metrics.Counters
	// MultiWriter enables the timestamp-discovery phase before each write.
	MultiWriter bool
	// CallTimeout bounds each quorum round (default 2s).
	CallTimeout time.Duration
}

// Client reads and writes through masking quorums.
type Client struct {
	cfg   Config
	n     int
	clock timestamp.Clock
}

// NewClient validates the configuration.
func NewClient(cfg Config) (*Client, error) {
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 2 * time.Second
	}
	n := len(cfg.Servers)
	if n-cfg.B < quorum.MaskingQuorum(n, cfg.B) {
		return nil, fmt.Errorf("%w: n=%d b=%d (need n >= 4b+1 for live masking quorums)",
			quorum.ErrInfeasible, n, cfg.B)
	}
	return &Client{cfg: cfg, n: n}, nil
}

// QuorumSize returns the quorum this client uses per operation.
func (c *Client) QuorumSize() int { return quorum.MaskingQuorum(c.n, c.cfg.B) }

// Write stores a value. In multi-writer mode it first discovers the
// highest timestamp at a quorum; otherwise the client's own clock orders
// its writes.
func (c *Client) Write(ctx context.Context, item string, value []byte) (timestamp.Stamp, error) {
	opCtx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
	defer cancel()
	q := c.QuorumSize()

	floor := uint64(0)
	if c.cfg.MultiWriter {
		replies, err := quorum.GatherStaged(opCtx, c.cfg.Caller, c.cfg.Servers, func(string) wire.Request {
			return TimeReq{Item: item}
		}, q)
		if err != nil {
			return timestamp.Stamp{}, fmt.Errorf("masking write (ts phase) %s: %w", item, err)
		}
		for _, r := range quorum.Successes(replies) {
			if tr, ok := r.Resp.(TimeResp); ok && tr.Has && tr.Stamp.Time > floor {
				floor = tr.Stamp.Time
			}
		}
	}

	entry := Entry{
		Item:  item,
		Stamp: timestamp.Stamp{Time: c.clock.Next(floor), Writer: c.cfg.ID},
		Value: value,
	}
	entry.Sign(c.cfg.Key, c.cfg.Metrics)

	if _, err := quorum.GatherStaged(opCtx, c.cfg.Caller, c.cfg.Servers, func(string) wire.Request {
		return WriteReq{Entry: entry}
	}, q); err != nil {
		return timestamp.Stamp{}, fmt.Errorf("masking write %s: %w", item, err)
	}
	return entry.Stamp, nil
}

// Read returns the latest validly signed value found across a quorum. The
// client verifies each distinct candidate reply — crypto work proportional
// to the quorum size, per the paper's comparison.
func (c *Client) Read(ctx context.Context, item string) ([]byte, timestamp.Stamp, error) {
	opCtx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
	defer cancel()
	q := c.QuorumSize()

	replies, err := quorum.GatherStaged(opCtx, c.cfg.Caller, c.cfg.Servers, func(string) wire.Request {
		return ReadReq{Item: item}
	}, q)
	if err != nil {
		return nil, timestamp.Stamp{}, fmt.Errorf("masking read %s: %w", item, err)
	}

	var (
		best    Entry
		haveAny bool
	)
	for _, r := range quorum.Successes(replies) {
		rr, ok := r.Resp.(ReadResp)
		if !ok || !rr.Has || rr.Entry.Item != item {
			continue
		}
		if err := rr.Entry.Verify(c.cfg.Ring, c.cfg.Metrics); err != nil {
			continue
		}
		if !haveAny || best.Stamp.Less(rr.Entry.Stamp) {
			best = rr.Entry
			haveAny = true
		}
	}
	if !haveAny {
		return nil, timestamp.Stamp{}, fmt.Errorf("%w: %s", ErrNoValue, item)
	}
	return best.Value, best.Stamp, nil
}
