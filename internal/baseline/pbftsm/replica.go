package pbftsm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"securestore/internal/metrics"
	"securestore/internal/transport"
	"securestore/internal/wire"
)

// ErrCrashed is returned by a crashed replica.
var ErrCrashed = errors.New("pbftsm: replica crashed")

// ReplicaConfig configures one replica.
type ReplicaConfig struct {
	// ID is this replica's name; Replicas lists all replica names in a
	// fixed order shared by every party. The primary is Replicas[0]
	// (stable view 0).
	ID       string
	Replicas []string
	// F is the fault bound; len(Replicas) must be 3F+1.
	F int
	// Secret seeds the pairwise MAC keys.
	Secret string
	// Caller sends protocol messages to peers and clients.
	Caller transport.Caller
	// Metrics receives MAC-operation counts.
	Metrics *metrics.Counters
	// SendTimeout bounds each peer send (default 2s).
	SendTimeout time.Duration
}

// slot tracks agreement for one sequence number.
type slot struct {
	req         Request
	hasReq      bool
	digest      [32]byte
	preprepared bool
	prepares    map[string]bool
	commits     map[string]bool
	committed   bool
	executed    bool
}

// Replica is one state-machine replica.
type Replica struct {
	cfg  ReplicaConfig
	keys MACKeys

	mu       sync.Mutex
	crashed  bool
	nextSeq  uint64 // primary only
	lastExec uint64
	slots    map[uint64]*slot
	kv       map[string]string
	// lastReply deduplicates retransmitted client requests.
	lastReply map[string]Reply

	// sendMu gates new asynchronous sends against Close: senders hold the
	// read side while registering with wg; Close takes the write side to
	// flip closed before waiting, so wg.Add can never race wg.Wait.
	sendMu sync.RWMutex
	closed bool
	wg     sync.WaitGroup
}

var _ transport.Handler = (*Replica)(nil)

// NewReplica creates a replica.
func NewReplica(cfg ReplicaConfig) (*Replica, error) {
	if len(cfg.Replicas) != 3*cfg.F+1 {
		return nil, fmt.Errorf("pbftsm: need 3f+1=%d replicas, have %d", 3*cfg.F+1, len(cfg.Replicas))
	}
	if cfg.SendTimeout <= 0 {
		cfg.SendTimeout = 2 * time.Second
	}
	return &Replica{
		cfg:       cfg,
		keys:      NewMACKeys(cfg.Secret, cfg.ID),
		slots:     make(map[uint64]*slot),
		kv:        make(map[string]string),
		lastReply: make(map[string]Reply),
	}, nil
}

// ID returns the replica name.
func (r *Replica) ID() string { return r.cfg.ID }

// IsPrimary reports whether this replica is the view-0 primary.
func (r *Replica) IsPrimary() bool { return r.cfg.ID == r.cfg.Replicas[0] }

// SetCrashed switches the replica into (or out of) crash failure.
func (r *Replica) SetCrashed(crashed bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.crashed = crashed
}

// Close stops new asynchronous sends and waits for in-flight ones to
// drain. Safe to call multiple times.
func (r *Replica) Close() {
	r.sendMu.Lock()
	r.closed = true
	r.sendMu.Unlock()
	r.wg.Wait()
}

// Get reads the replica's executed state (test instrumentation).
func (r *Replica) Get(key string) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.kv[key]
	return v, ok
}

// ServeRequest implements transport.Handler, dispatching protocol
// messages. Outgoing multicasts are computed under the lock but sent
// asynchronously to keep the agreement pipeline concurrent.
func (r *Replica) ServeRequest(_ context.Context, from string, req wire.Request) (wire.Response, error) {
	r.mu.Lock()
	if r.crashed {
		r.mu.Unlock()
		return nil, ErrCrashed
	}
	var outs []outMsg
	var err error
	switch msg := req.(type) {
	case Request:
		outs, err = r.handleRequestLocked(from, msg)
	case PrePrepare:
		outs, err = r.handlePrePrepareLocked(from, msg)
	case Prepare:
		outs, err = r.handlePrepareLocked(from, msg)
	case Commit:
		outs, err = r.handleCommitLocked(from, msg)
	default:
		err = fmt.Errorf("pbftsm: unknown message %T", req)
	}
	r.mu.Unlock()
	if err != nil {
		return nil, err
	}
	r.send(outs)
	return Ack{}, nil
}

type outMsg struct {
	to  string
	msg wire.Request
}

// send dispatches asynchronous protocol messages. Sends started after
// Close are dropped.
func (r *Replica) send(outs []outMsg) {
	r.sendMu.RLock()
	if r.closed {
		r.sendMu.RUnlock()
		return
	}
	r.wg.Add(len(outs))
	r.sendMu.RUnlock()

	for _, o := range outs {
		go func(o outMsg) {
			defer r.wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), r.cfg.SendTimeout)
			defer cancel()
			_, _ = r.cfg.Caller.Call(ctx, o.to, o.msg) // best effort, like UDP PBFT
		}(o)
	}
}

// handleRequestLocked processes a client request at the primary: assign
// the next sequence number and multicast a pre-prepare.
func (r *Replica) handleRequestLocked(from string, req Request) ([]outMsg, error) {
	if err := r.keys.Check(req.Client, req.payload(), req.MAC, r.cfg.Metrics); err != nil {
		return nil, err
	}
	if from != req.Client {
		return nil, fmt.Errorf("pbftsm: request for client %q from %q", req.Client, from)
	}
	if !r.IsPrimary() {
		// Stable view: backups do not relay. The client is expected to
		// contact the primary.
		return nil, errors.New("pbftsm: not the primary")
	}
	if last, ok := r.lastReply[req.Client]; ok && last.ReqID == req.ReqID {
		// Retransmission of an executed request: resend the reply.
		return []outMsg{{to: req.Client, msg: last}}, nil
	}

	r.nextSeq++
	seq := r.nextSeq
	sl := r.slotFor(seq)
	sl.req = req
	sl.hasReq = true
	sl.digest = requestDigest(req)
	sl.preprepared = true
	sl.prepares[r.cfg.ID] = true

	var outs []outMsg
	for _, peer := range r.cfg.Replicas {
		if peer == r.cfg.ID {
			continue
		}
		pp := PrePrepare{View: 0, Seq: seq, Req: req, From: r.cfg.ID}
		pp.MAC = r.keys.Tag(peer, pp.payload(), r.cfg.Metrics)
		outs = append(outs, outMsg{to: peer, msg: pp})
	}
	return outs, nil
}

// handlePrePrepareLocked accepts the primary's ordering and multicasts a
// prepare.
func (r *Replica) handlePrePrepareLocked(from string, pp PrePrepare) ([]outMsg, error) {
	if from != r.cfg.Replicas[0] || pp.From != from {
		return nil, fmt.Errorf("pbftsm: pre-prepare from non-primary %q", from)
	}
	if err := r.keys.Check(from, pp.payload(), pp.MAC, r.cfg.Metrics); err != nil {
		return nil, err
	}
	sl := r.slotFor(pp.Seq)
	if sl.preprepared && sl.digest != requestDigest(pp.Req) {
		return nil, fmt.Errorf("pbftsm: conflicting pre-prepare for seq %d", pp.Seq)
	}
	sl.req = pp.Req
	sl.hasReq = true
	sl.digest = requestDigest(pp.Req)
	sl.preprepared = true
	sl.prepares[r.cfg.ID] = true
	// The pre-prepare doubles as the primary's prepare (as in PBFT), so
	// agreement needs only 2f further prepares.
	sl.prepares[from] = true

	var outs []outMsg
	for _, peer := range r.cfg.Replicas {
		if peer == r.cfg.ID {
			continue
		}
		p := Prepare{View: 0, Seq: pp.Seq, Digest: sl.digest, From: r.cfg.ID}
		p.MAC = r.keys.Tag(peer, p.payload(), r.cfg.Metrics)
		outs = append(outs, outMsg{to: peer, msg: p})
	}
	outs = append(outs, r.maybeCommitLocked(pp.Seq)...)
	return outs, nil
}

// handlePrepareLocked records a prepare; at 2f+1 total (incl. own) the
// replica is prepared and multicasts a commit.
func (r *Replica) handlePrepareLocked(from string, p Prepare) ([]outMsg, error) {
	if p.From != from {
		return nil, fmt.Errorf("pbftsm: prepare claims %q, sent by %q", p.From, from)
	}
	if err := r.keys.Check(from, p.payload(), p.MAC, r.cfg.Metrics); err != nil {
		return nil, err
	}
	sl := r.slotFor(p.Seq)
	if sl.preprepared && sl.digest != p.Digest {
		return nil, fmt.Errorf("pbftsm: prepare digest mismatch at seq %d", p.Seq)
	}
	sl.prepares[from] = true
	return r.maybeCommitLocked(p.Seq), nil
}

// maybeCommitLocked multicasts a commit once the slot is prepared.
func (r *Replica) maybeCommitLocked(seq uint64) []outMsg {
	sl := r.slotFor(seq)
	if !sl.preprepared || sl.committed || len(sl.prepares) < 2*r.cfg.F+1 {
		return nil
	}
	sl.committed = true
	sl.commits[r.cfg.ID] = true

	var outs []outMsg
	for _, peer := range r.cfg.Replicas {
		if peer == r.cfg.ID {
			continue
		}
		cm := Commit{View: 0, Seq: seq, Digest: sl.digest, From: r.cfg.ID}
		cm.MAC = r.keys.Tag(peer, cm.payload(), r.cfg.Metrics)
		outs = append(outs, outMsg{to: peer, msg: cm})
	}
	outs = append(outs, r.maybeExecuteLocked()...)
	return outs
}

// handleCommitLocked records a commit; at 2f+1 the operation is
// committed-local and executed in sequence order.
func (r *Replica) handleCommitLocked(from string, cm Commit) ([]outMsg, error) {
	if cm.From != from {
		return nil, fmt.Errorf("pbftsm: commit claims %q, sent by %q", cm.From, from)
	}
	if err := r.keys.Check(from, cm.payload(), cm.MAC, r.cfg.Metrics); err != nil {
		return nil, err
	}
	sl := r.slotFor(cm.Seq)
	if sl.preprepared && sl.digest != cm.Digest {
		return nil, fmt.Errorf("pbftsm: commit digest mismatch at seq %d", cm.Seq)
	}
	sl.commits[from] = true
	return r.maybeExecuteLocked(), nil
}

// maybeExecuteLocked executes committed slots in order and emits replies.
func (r *Replica) maybeExecuteLocked() []outMsg {
	var outs []outMsg
	for {
		seq := r.lastExec + 1
		sl, ok := r.slots[seq]
		if !ok || !sl.hasReq || !sl.committed || len(sl.commits) < 2*r.cfg.F+1 || sl.executed {
			return outs
		}
		sl.executed = true
		r.lastExec = seq

		result := r.applyLocked(sl.req.Op)
		reply := Reply{View: 0, ReqID: sl.req.ReqID, Client: sl.req.Client, Result: result, From: r.cfg.ID}
		reply.MAC = r.keys.Tag(sl.req.Client, reply.payload(), r.cfg.Metrics)
		r.lastReply[sl.req.Client] = reply
		outs = append(outs, outMsg{to: sl.req.Client, msg: reply})
	}
}

// applyLocked executes one operation on the key-value state machine.
func (r *Replica) applyLocked(op Op) string {
	switch op.Kind {
	case "put":
		r.kv[op.Key] = op.Value
		return "ok"
	case "get":
		return r.kv[op.Key]
	default:
		return "error: unknown op " + op.Kind
	}
}

func (r *Replica) slotFor(seq uint64) *slot {
	sl, ok := r.slots[seq]
	if !ok {
		sl = &slot{prepares: make(map[string]bool), commits: make(map[string]bool)}
		r.slots[seq] = sl
	}
	return sl
}
