// Package pbftsm implements the strong-consistency state-machine baseline
// the paper compares against (Castro & Liskov's practical BFT, Sections 3
// and 6): 3f+1 replicas run a three-phase agreement protocol
// (pre-prepare, prepare, commit) authenticated with MACs instead of
// signatures, giving linearizable operations at O(n²) message cost per
// request — cheap cryptographically, expensive in messages, which is
// exactly the trade-off the paper's Section 6 discussion rests on.
//
// Simplifications relative to the full protocol, documented in DESIGN.md:
// the view never changes (a stable, correct primary is assumed — the
// baseline measures failure-free performance, as the paper's comparison
// does), there are no checkpoints, and the replicated state machine is a
// string key-value store.
//
// Layout: messages.go defines the protocol messages and MAC
// authenticators, replica.go the per-replica agreement state machine, and
// client.go the quorum-of-f+1-replies client. EXPERIMENTS.md E5/E8
// measure this baseline against the secure store and the masking-quorum
// baseline.
package pbftsm
