package pbftsm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"securestore/internal/metrics"
	"securestore/internal/transport"
	"securestore/internal/wire"
)

// ErrTimeout reports that f+1 matching replies did not arrive in time.
var ErrTimeout = errors.New("pbftsm: timed out waiting for replies")

// ClientConfig configures a state-machine client.
type ClientConfig struct {
	ID       string
	Replicas []string
	F        int
	Secret   string
	Caller   transport.Caller
	Metrics  *metrics.Counters
	// Timeout bounds one Invoke (default 5s).
	Timeout time.Duration
}

// Client submits operations to the replicated state machine. The client
// must be registered on the transport under its ID so replicas can deliver
// Reply messages to it.
type Client struct {
	cfg  ClientConfig
	keys MACKeys

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan Reply
}

var _ transport.Handler = (*Client)(nil)

// NewClient creates a client.
func NewClient(cfg ClientConfig) *Client {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	return &Client{
		cfg:     cfg,
		keys:    NewMACKeys(cfg.Secret, cfg.ID),
		pending: make(map[uint64]chan Reply),
	}
}

// ID returns the client's principal name.
func (c *Client) ID() string { return c.cfg.ID }

// ServeRequest collects Reply messages from replicas.
func (c *Client) ServeRequest(_ context.Context, from string, req wire.Request) (wire.Response, error) {
	reply, ok := req.(Reply)
	if !ok {
		return nil, fmt.Errorf("pbftsm client: unexpected message %T", req)
	}
	if reply.From != from {
		return nil, fmt.Errorf("pbftsm client: reply claims %q, sent by %q", reply.From, from)
	}
	if err := c.keys.Check(from, reply.payload(), reply.MAC, c.cfg.Metrics); err != nil {
		return nil, err
	}
	c.mu.Lock()
	ch, ok := c.pending[reply.ReqID]
	c.mu.Unlock()
	if ok {
		select {
		case ch <- reply:
		default:
		}
	}
	return Ack{}, nil
}

// Put replicates a write.
func (c *Client) Put(ctx context.Context, key, value string) error {
	_, err := c.Invoke(ctx, Op{Kind: "put", Key: key, Value: value})
	return err
}

// Get performs a linearizable read through agreement.
func (c *Client) Get(ctx context.Context, key string) (string, error) {
	return c.Invoke(ctx, Op{Kind: "get", Key: key})
}

// Invoke submits one operation and waits for f+1 matching replies.
func (c *Client) Invoke(ctx context.Context, op Op) (string, error) {
	c.mu.Lock()
	c.nextID++
	reqID := c.nextID
	// Buffer all replicas' replies so slow repliers never block.
	ch := make(chan Reply, len(c.cfg.Replicas))
	c.pending[reqID] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, reqID)
		c.mu.Unlock()
	}()

	primary := c.cfg.Replicas[0]
	req := Request{Client: c.cfg.ID, ReqID: reqID, Op: op}
	req.MAC = c.keys.Tag(primary, req.payload(), c.cfg.Metrics)

	opCtx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	if _, err := c.cfg.Caller.Call(opCtx, primary, req); err != nil {
		return "", fmt.Errorf("pbftsm invoke: %w", err)
	}

	// Wait for f+1 matching replies from distinct replicas.
	votes := make(map[string]map[string]bool) // result -> replicas
	for {
		select {
		case reply := <-ch:
			if reply.Client != c.cfg.ID || reply.ReqID != reqID {
				continue
			}
			voters, ok := votes[reply.Result]
			if !ok {
				voters = make(map[string]bool)
				votes[reply.Result] = voters
			}
			voters[reply.From] = true
			if len(voters) >= c.cfg.F+1 {
				return reply.Result, nil
			}
		case <-opCtx.Done():
			return "", fmt.Errorf("%w: op %v", ErrTimeout, op.Kind)
		}
	}
}

// Cluster bundles a full deployment of the baseline for tests and
// experiments.
type Cluster struct {
	Replicas []*Replica
	Names    []string
	F        int
}

// NewCluster creates 3f+1 replicas registered on the bus under names
// pbft00..; it returns the cluster for client construction.
func NewCluster(bus *transport.Bus, f int, secret string, m *metrics.Counters) (*Cluster, error) {
	n := 3*f + 1
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("pbft%02d", i)
	}
	c := &Cluster{Names: names, F: f}
	for _, name := range names {
		rep, err := NewReplica(ReplicaConfig{
			ID:       name,
			Replicas: names,
			F:        f,
			Secret:   secret,
			Caller:   bus.Caller(name, m),
			Metrics:  m,
		})
		if err != nil {
			return nil, err
		}
		c.Replicas = append(c.Replicas, rep)
		bus.Register(name, rep)
	}
	return c, nil
}

// NewClusterClient mints a client and registers it on the bus.
func (c *Cluster) NewClusterClient(bus *transport.Bus, id, secret string, m *metrics.Counters) *Client {
	cl := NewClient(ClientConfig{
		ID:       id,
		Replicas: c.Names,
		F:        c.F,
		Secret:   secret,
		Caller:   bus.Caller(id, m),
		Metrics:  m,
	})
	bus.Register(id, cl)
	return cl
}

// Close drains all replicas' asynchronous sends.
func (c *Cluster) Close() {
	for _, r := range c.Replicas {
		r.Close()
	}
}
