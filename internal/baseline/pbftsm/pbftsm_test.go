package pbftsm

import (
	"context"
	"sync"
	"testing"

	"securestore/internal/metrics"
	"securestore/internal/transport"
)

func newTestCluster(t *testing.T, f int) (*Cluster, *transport.Bus, *metrics.Counters) {
	t.Helper()
	m := &metrics.Counters{}
	bus := transport.NewBus(nil)
	c, err := NewCluster(bus, f, "secret", m)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, bus, m
}

func TestPutGetRoundTrip(t *testing.T) {
	cluster, bus, m := newTestCluster(t, 1)
	cl := cluster.NewClusterClient(bus, "client", "secret", m)
	ctx := context.Background()

	if err := cl.Put(ctx, "k", "v1"); err != nil {
		t.Fatalf("put: %v", err)
	}
	got, err := cl.Get(ctx, "k")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if got != "v1" {
		t.Fatalf("get = %q, want v1", got)
	}
}

func TestToleratesBackupCrash(t *testing.T) {
	cluster, bus, m := newTestCluster(t, 1)
	cl := cluster.NewClusterClient(bus, "client", "secret", m)
	ctx := context.Background()

	cluster.Replicas[3].SetCrashed(true) // crash one backup (f=1)
	if err := cl.Put(ctx, "k", "v1"); err != nil {
		t.Fatalf("put with crashed backup: %v", err)
	}
	got, err := cl.Get(ctx, "k")
	if err != nil {
		t.Fatalf("get with crashed backup: %v", err)
	}
	if got != "v1" {
		t.Fatalf("get = %q, want v1", got)
	}
}

func TestSequentialOrdering(t *testing.T) {
	cluster, bus, m := newTestCluster(t, 1)
	cl := cluster.NewClusterClient(bus, "client", "secret", m)
	ctx := context.Background()
	for _, v := range []string{"a", "b", "c"} {
		if err := cl.Put(ctx, "k", v); err != nil {
			t.Fatal(err)
		}
	}
	got, err := cl.Get(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if got != "c" {
		t.Fatalf("get = %q, want c (last write)", got)
	}
}

func TestConcurrentClients(t *testing.T) {
	cluster, bus, m := newTestCluster(t, 1)
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		cl := cluster.NewClusterClient(bus, "client"+string(rune('a'+i)), "secret", m)
		wg.Add(1)
		go func(cl *Client, v string) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				if err := cl.Put(ctx, "k"+v, v); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(cl, string(rune('a'+i)))
	}
	wg.Wait()
	// All replicas must agree on final state.
	for _, suffix := range []string{"a", "b", "c", "d"} {
		want := suffix
		for _, rep := range cluster.Replicas {
			if got, _ := rep.Get("k" + suffix); got != want {
				t.Fatalf("replica %s: k%s = %q, want %q", rep.ID(), suffix, got, want)
			}
		}
	}
}

func TestRejectsBadClientMAC(t *testing.T) {
	cluster, bus, m := newTestCluster(t, 1)
	_ = bus
	primary := cluster.Replicas[0]
	req := Request{Client: "client", ReqID: 1, Op: Op{Kind: "put", Key: "k", Value: "v"}}
	// MAC computed with the wrong secret.
	wrongKeys := NewMACKeys("wrong-secret", "client")
	req.MAC = wrongKeys.Tag(primary.ID(), req.payload(), m)
	if _, err := primary.ServeRequest(context.Background(), "client", req); err == nil {
		t.Fatal("primary accepted a request with a bad MAC")
	}
}

func TestBackupRejectsClientRequests(t *testing.T) {
	cluster, _, m := newTestCluster(t, 1)
	backup := cluster.Replicas[1]
	keys := NewMACKeys("secret", "client")
	req := Request{Client: "client", ReqID: 1, Op: Op{Kind: "put", Key: "k", Value: "v"}}
	req.MAC = keys.Tag(backup.ID(), req.payload(), m)
	if _, err := backup.ServeRequest(context.Background(), "client", req); err == nil {
		t.Fatal("backup accepted a client request (stable view: primary only)")
	}
}

func TestRejectsForgedPrePrepare(t *testing.T) {
	cluster, _, m := newTestCluster(t, 1)
	backup := cluster.Replicas[1]
	// A backup (not the primary) tries to order a request.
	forger := cluster.Replicas[2]
	keys := NewMACKeys("secret", forger.ID())
	req := Request{Client: "client", ReqID: 1, Op: Op{Kind: "put", Key: "k", Value: "v"}}
	pp := PrePrepare{View: 0, Seq: 1, Req: req, From: forger.ID()}
	pp.MAC = keys.Tag(backup.ID(), pp.payload(), m)
	if _, err := backup.ServeRequest(context.Background(), forger.ID(), pp); err == nil {
		t.Fatal("backup accepted a pre-prepare from a non-primary")
	}
}

func TestRejectsImpersonatedPrepare(t *testing.T) {
	cluster, _, m := newTestCluster(t, 1)
	backup := cluster.Replicas[1]
	// Replica 2 sends a prepare claiming to be replica 3.
	keys := NewMACKeys("secret", cluster.Replicas[2].ID())
	p := Prepare{View: 0, Seq: 1, From: cluster.Replicas[3].ID()}
	p.MAC = keys.Tag(backup.ID(), p.payload(), m)
	if _, err := backup.ServeRequest(context.Background(), cluster.Replicas[2].ID(), p); err == nil {
		t.Fatal("backup accepted a prepare with mismatched sender")
	}
}

func TestRetransmissionReturnsCachedReply(t *testing.T) {
	cluster, bus, m := newTestCluster(t, 1)
	cl := cluster.NewClusterClient(bus, "client", "secret", m)
	ctx := context.Background()
	if err := cl.Put(ctx, "k", "v1"); err != nil {
		t.Fatal(err)
	}
	// Directly retransmit the same (client, reqID) to the primary: the
	// state machine must not execute it twice.
	keys := NewMACKeys("secret", "client")
	primary := cluster.Replicas[0]
	req := Request{Client: "client", ReqID: 1, Op: Op{Kind: "put", Key: "k", Value: "v1"}}
	req.MAC = keys.Tag(primary.ID(), req.payload(), m)
	if _, err := primary.ServeRequest(ctx, "client", req); err != nil {
		t.Fatalf("retransmission rejected: %v", err)
	}
	if err := cl.Put(ctx, "k2", "v2"); err != nil {
		t.Fatalf("pipeline wedged after retransmission: %v", err)
	}
}

func TestLinearizableReadsSeeLatestWrite(t *testing.T) {
	cluster, bus, m := newTestCluster(t, 1)
	a := cluster.NewClusterClient(bus, "clienta", "secret", m)
	b := cluster.NewClusterClient(bus, "clientb", "secret", m)
	ctx := context.Background()
	if err := a.Put(ctx, "k", "from-a"); err != nil {
		t.Fatal(err)
	}
	// b's get is ordered through agreement after a's put: it must see it.
	got, err := b.Get(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if got != "from-a" {
		t.Fatalf("get = %q, want from-a (linearizability)", got)
	}
}
