package pbftsm

// messages.go defines the protocol messages of the three agreement phases
// and their MAC authenticators (see doc.go for the package overview).

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/json"
	"fmt"

	"securestore/internal/metrics"
)

// Op is one state-machine operation.
type Op struct {
	// Kind is "put" or "get".
	Kind  string `json:"kind"`
	Key   string `json:"key"`
	Value string `json:"value,omitempty"`
}

// Protocol messages. Every message carries a MAC computed with the
// pairwise key of (sender, receiver).
type (
	// Request is a client's operation submission (sent to the primary).
	Request struct {
		Client string
		ReqID  uint64
		Op     Op
		MAC    []byte
	}
	// PrePrepare is the primary's ordering proposal.
	PrePrepare struct {
		View uint64
		Seq  uint64
		Req  Request
		From string
		MAC  []byte
	}
	// Prepare is a replica's agreement with a pre-prepare.
	Prepare struct {
		View   uint64
		Seq    uint64
		Digest [32]byte
		From   string
		MAC    []byte
	}
	// Commit finalizes ordering.
	Commit struct {
		View   uint64
		Seq    uint64
		Digest [32]byte
		From   string
		MAC    []byte
	}
	// Reply carries an executed result back to the client.
	Reply struct {
		View   uint64
		ReqID  uint64
		Client string
		Result string
		From   string
		MAC    []byte
	}
	// Ack acknowledges receipt of an asynchronous protocol message.
	Ack struct{}
)

// WireRequest/WireResponse markers route these through shared transports.
func (Request) WireRequest()    {}
func (PrePrepare) WireRequest() {}
func (Prepare) WireRequest()    {}
func (Commit) WireRequest()     {}
func (Reply) WireRequest()      {}
func (Ack) WireResponse()       {}

// MACKeys derives pairwise symmetric keys for MAC authentication. All
// parties derive the same key for a pair from the deployment secret.
type MACKeys struct {
	secret string
	self   string
}

// NewMACKeys creates the key schedule for one principal.
func NewMACKeys(secret, self string) MACKeys {
	return MACKeys{secret: secret, self: self}
}

func (k MACKeys) pairKey(other string) []byte {
	a, b := k.self, other
	if a > b {
		a, b = b, a
	}
	sum := sha256.Sum256([]byte("pbft-mac:" + k.secret + ":" + a + ":" + b))
	return sum[:]
}

// Tag computes the MAC of payload for the named receiver.
func (k MACKeys) Tag(receiver string, payload []byte, m *metrics.Counters) []byte {
	m.AddCustom("mac.sign", 1)
	h := hmac.New(sha256.New, k.pairKey(receiver))
	h.Write(payload)
	return h.Sum(nil)
}

// Check verifies a MAC produced by sender over payload.
func (k MACKeys) Check(sender string, payload, tag []byte, m *metrics.Counters) error {
	m.AddCustom("mac.verify", 1)
	h := hmac.New(sha256.New, k.pairKey(sender))
	h.Write(payload)
	if !hmac.Equal(h.Sum(nil), tag) {
		return fmt.Errorf("pbftsm: bad MAC from %s", sender)
	}
	return nil
}

// payload helpers: canonical bytes excluding the MAC field.

func (r Request) payload() []byte {
	r.MAC = nil
	return mustJSON(r)
}

func (p PrePrepare) payload() []byte {
	p.MAC = nil
	return mustJSON(p)
}

func (p Prepare) payload() []byte {
	p.MAC = nil
	return mustJSON(p)
}

func (c Commit) payload() []byte {
	c.MAC = nil
	return mustJSON(c)
}

func (r Reply) payload() []byte {
	r.MAC = nil
	return mustJSON(r)
}

// requestDigest identifies a request inside prepares and commits.
func requestDigest(req Request) [32]byte {
	return sha256.Sum256(req.payload())
}

func mustJSON(v any) []byte {
	raw, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("pbftsm: marshal %T: %v", v, err))
	}
	return raw
}
