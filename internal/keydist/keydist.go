// Package keydist implements group key distribution for the secure store's
// confidentiality scheme. The paper (Section 5.2) requires that the key
// used to encrypt shared data values "be distributed to readers" and that,
// when membership changes, "key distribution and management schemes
// similar to those discussed in secure multicast communication [16] have
// to be employed" — reference [16] being Wong/Gouda/Lam key graphs. This
// package implements the standard logical key hierarchy (LKH) from that
// line of work: a binary tree of keys whose root is the group data key;
// each member holds the keys on its leaf-to-root path, so a membership
// change re-keys only O(log n) nodes, and a departed member — or a server,
// which never receives any of these keys — cannot learn the new group key.
package keydist

import (
	"errors"
	"fmt"
	"strconv"

	"securestore/internal/cryptoutil"
	"securestore/internal/metrics"
)

// Errors returned by this package.
var (
	ErrFull          = errors.New("keydist: group at capacity")
	ErrUnknownMember = errors.New("keydist: unknown member")
	ErrNotMember     = errors.New("keydist: not a member")
)

// RekeyEntry delivers one new node key encrypted under a key the intended
// receivers already hold.
type RekeyEntry struct {
	// NodeID names the tree node whose key is being replaced.
	NodeID int
	// UnderKeyID names the key the payload is sealed with: "node:<id>" for
	// a tree key, "member:<name>" for a member's personal key.
	UnderKeyID string
	// Sealed is the new key, AES-GCM sealed under the named key.
	Sealed []byte
}

// Rekey is a broadcast of key changes after one membership event.
type Rekey struct {
	Entries []RekeyEntry
}

// Manager is the group owner's side of LKH. It assigns members to leaves
// of a complete binary tree of the given depth (capacity 2^depth members)
// and issues Rekey broadcasts on join and leave.
type Manager struct {
	depth   int
	keys    map[int]cryptoutil.DataKey // node id (heap layout, root=1) -> key
	leafOf  map[string]int             // member -> leaf node id
	member  map[int]string             // leaf node id -> member
	persKey map[string]cryptoutil.DataKey
	metrics *metrics.Counters
	newKey  func() (cryptoutil.DataKey, error)
}

// NewManager creates a group with capacity 2^depth members.
func NewManager(depth int, m *metrics.Counters) (*Manager, error) {
	if depth < 1 || depth > 20 {
		return nil, fmt.Errorf("keydist: depth %d out of range [1,20]", depth)
	}
	mgr := &Manager{
		depth:   depth,
		keys:    make(map[int]cryptoutil.DataKey),
		leafOf:  make(map[string]int),
		member:  make(map[int]string),
		persKey: make(map[string]cryptoutil.DataKey),
		metrics: m,
		newKey:  cryptoutil.NewDataKey,
	}
	// Initialize every internal node key lazily; the root exists upfront.
	root, err := mgr.newKey()
	if err != nil {
		return nil, err
	}
	mgr.keys[1] = root
	return mgr, nil
}

// GroupKey returns the current group (root) key — the data key clients use
// with client.Config.DataKey.
func (g *Manager) GroupKey() cryptoutil.DataKey { return g.keys[1] }

// Members returns the current member count.
func (g *Manager) Members() int { return len(g.leafOf) }

// Capacity returns the maximum member count.
func (g *Manager) Capacity() int { return 1 << g.depth }

// Join adds a member whose personal key is persKey. It returns the joining
// member's initial key set (their full path, sealed under their personal
// key) and the Rekey broadcast for existing members. Path keys are changed
// on join so the newcomer cannot decrypt data sealed before it joined
// (backward secrecy).
func (g *Manager) Join(member string, persKey cryptoutil.DataKey) (welcome Rekey, broadcast Rekey, err error) {
	if _, ok := g.leafOf[member]; ok {
		return Rekey{}, Rekey{}, fmt.Errorf("keydist: member %q already joined", member)
	}
	leaf := g.freeLeaf()
	if leaf < 0 {
		return Rekey{}, Rekey{}, ErrFull
	}
	g.leafOf[member] = leaf
	g.member[leaf] = member
	g.persKey[member] = persKey

	welcome, broadcast, err = g.rekeyPath(leaf)
	if err != nil {
		return Rekey{}, Rekey{}, err
	}
	return welcome, broadcast, nil
}

// Leave removes a member and re-keys its path so the departed member (and
// anyone holding its keys) cannot learn future group keys (forward
// secrecy). The returned broadcast is decryptable only by remaining
// members.
func (g *Manager) Leave(member string) (Rekey, error) {
	leaf, ok := g.leafOf[member]
	if !ok {
		return Rekey{}, fmt.Errorf("%w: %q", ErrUnknownMember, member)
	}
	delete(g.leafOf, member)
	delete(g.member, leaf)
	delete(g.persKey, member)
	delete(g.keys, leaf)

	_, broadcast, err := g.rekeyPath(leaf)
	if err != nil {
		return Rekey{}, err
	}
	return broadcast, nil
}

// rekeyPath regenerates every key from leaf to root. For each regenerated
// node it seals the new key under each child subtree that contains
// members (or the member's personal key at the leaf), producing the
// O(log n) broadcast characteristic of LKH.
func (g *Manager) rekeyPath(leaf int) (welcome Rekey, broadcast Rekey, err error) {
	// Regenerate bottom-up.
	for node := leaf; node >= 1; node /= 2 {
		if node == leaf {
			if _, occupied := g.member[leaf]; !occupied {
				continue // leaf vacated by Leave: no leaf key anymore
			}
		}
		fresh, kerr := g.newKey()
		if kerr != nil {
			return Rekey{}, Rekey{}, kerr
		}
		g.keys[node] = fresh
	}

	// Welcome package: the joiner's full path under its personal key.
	if member, ok := g.member[leaf]; ok {
		pers := g.persKey[member]
		for node := leaf; node >= 1; node /= 2 {
			nodeKey := g.keys[node]
			sealed, serr := pers.Seal(nodeKey[:], aad(node), g.metrics)
			if serr != nil {
				return Rekey{}, Rekey{}, serr
			}
			welcome.Entries = append(welcome.Entries, RekeyEntry{
				NodeID:     node,
				UnderKeyID: "member:" + member,
				Sealed:     sealed,
			})
		}
	}

	// Broadcast: each changed internal node key sealed under each child
	// key whose subtree has members. Children off the changed path kept
	// their old keys, so their members can decrypt; children on the path
	// were just re-keyed bottom-up, so the order of entries lets members
	// unwrap cascading changes.
	for node := leaf / 2; node >= 1; node /= 2 {
		for _, child := range []int{2 * node, 2*node + 1} {
			if !g.subtreeOccupied(child) {
				continue
			}
			childKey, ok := g.childSealingKey(child)
			if !ok {
				continue
			}
			nodeKey := g.keys[node]
			sealed, serr := childKey.key.Seal(nodeKey[:], aad(node), g.metrics)
			if serr != nil {
				return Rekey{}, Rekey{}, serr
			}
			broadcast.Entries = append(broadcast.Entries, RekeyEntry{
				NodeID:     node,
				UnderKeyID: childKey.id,
				Sealed:     sealed,
			})
		}
	}
	return welcome, broadcast, nil
}

type sealingKey struct {
	id  string
	key cryptoutil.DataKey
}

// childSealingKey returns the key identifying a child subtree: the child
// node's own key when it exists, or the occupying member's leaf key.
func (g *Manager) childSealingKey(child int) (sealingKey, bool) {
	if k, ok := g.keys[child]; ok {
		return sealingKey{id: "node:" + strconv.Itoa(child), key: k}, true
	}
	return sealingKey{}, false
}

// subtreeOccupied reports whether any member's leaf lies under node.
func (g *Manager) subtreeOccupied(node int) bool {
	lo, hi := node, node
	for hi < 1<<g.depth { // descend to leaf level
		lo, hi = 2*lo, 2*hi+1
	}
	for _, leaf := range g.leafOf {
		if leaf >= lo && leaf <= hi {
			return true
		}
	}
	return false
}

// freeLeaf returns the lowest unoccupied leaf id, or -1 when full.
func (g *Manager) freeLeaf() int {
	base := 1 << g.depth
	for i := 0; i < base; i++ {
		if _, taken := g.member[base+i]; !taken {
			return base + i
		}
	}
	return -1
}

// Member is one group participant's key state.
type Member struct {
	id      string
	pers    cryptoutil.DataKey
	keys    map[int]cryptoutil.DataKey
	metrics *metrics.Counters
}

// NewMember creates a member with its personal key (shared out of band
// with the manager).
func NewMember(id string, pers cryptoutil.DataKey, m *metrics.Counters) *Member {
	return &Member{id: id, pers: pers, keys: make(map[int]cryptoutil.DataKey), metrics: m}
}

// Apply installs every entry the member can decrypt. Entries are processed
// repeatedly until a pass makes no progress, handling in-broadcast key
// cascades regardless of entry order.
func (mem *Member) Apply(rk Rekey) int {
	installed := 0
	for {
		progressed := false
		for _, e := range rk.Entries {
			var (
				key cryptoutil.DataKey
				ok  bool
			)
			switch {
			case e.UnderKeyID == "member:"+mem.id:
				key, ok = mem.pers, true
			case len(e.UnderKeyID) > 5 && e.UnderKeyID[:5] == "node:":
				if id, err := strconv.Atoi(e.UnderKeyID[5:]); err == nil {
					key, ok = mem.keys[id]
				}
			}
			if !ok {
				continue
			}
			plain, err := key.Open(e.Sealed, aad(e.NodeID), mem.metrics)
			if err != nil || len(plain) != 32 {
				continue
			}
			var fresh cryptoutil.DataKey
			copy(fresh[:], plain)
			if mem.keys[e.NodeID] != fresh {
				mem.keys[e.NodeID] = fresh
				installed++
				progressed = true
			}
		}
		if !progressed {
			return installed
		}
	}
}

// GroupKey returns the member's view of the group key.
func (mem *Member) GroupKey() (cryptoutil.DataKey, error) {
	k, ok := mem.keys[1]
	if !ok {
		return cryptoutil.DataKey{}, ErrNotMember
	}
	return k, nil
}

func aad(node int) []byte {
	return []byte("lkh-node:" + strconv.Itoa(node))
}
