package keydist

import (
	"errors"
	"fmt"
	"testing"

	"securestore/internal/cryptoutil"
)

// group bundles a manager with live member states for tests.
type group struct {
	mgr     *Manager
	members map[string]*Member
}

func newGroup(t *testing.T, depth int) *group {
	t.Helper()
	mgr, err := NewManager(depth, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &group{mgr: mgr, members: make(map[string]*Member)}
}

func (g *group) join(t *testing.T, name string) {
	t.Helper()
	pers := cryptoutil.DeriveDataKey(name, "personal")
	m := NewMember(name, pers, nil)
	welcome, broadcast, err := g.mgr.Join(name, pers)
	if err != nil {
		t.Fatalf("join %s: %v", name, err)
	}
	m.Apply(welcome)
	for _, other := range g.members {
		other.Apply(broadcast)
	}
	g.members[name] = m
}

func (g *group) leave(t *testing.T, name string) {
	t.Helper()
	broadcast, err := g.mgr.Leave(name)
	if err != nil {
		t.Fatalf("leave %s: %v", name, err)
	}
	delete(g.members, name)
	for _, other := range g.members {
		other.Apply(broadcast)
	}
}

func (g *group) checkConsistent(t *testing.T) {
	t.Helper()
	want := g.mgr.GroupKey()
	for name, m := range g.members {
		got, err := m.GroupKey()
		if err != nil {
			t.Fatalf("member %s: %v", name, err)
		}
		if got != want {
			t.Fatalf("member %s has stale group key", name)
		}
	}
}

func TestJoinEstablishesSharedKey(t *testing.T) {
	g := newGroup(t, 3)
	for _, name := range []string{"a", "b", "c", "d", "e"} {
		g.join(t, name)
		g.checkConsistent(t)
	}
	if g.mgr.Members() != 5 {
		t.Fatalf("members = %d", g.mgr.Members())
	}
}

func TestJoinChangesGroupKeyBackwardSecrecy(t *testing.T) {
	g := newGroup(t, 2)
	g.join(t, "a")
	before := g.mgr.GroupKey()
	g.join(t, "b")
	if g.mgr.GroupKey() == before {
		t.Fatal("group key unchanged on join: newcomer could read old data")
	}
	g.checkConsistent(t)
}

func TestLeaveForwardSecrecy(t *testing.T) {
	g := newGroup(t, 2)
	g.join(t, "a")
	g.join(t, "b")
	g.join(t, "c")
	departed := g.members["b"]
	g.leave(t, "b")
	g.checkConsistent(t)

	// The departed member's view must be stale.
	old, err := departed.GroupKey()
	if err != nil {
		t.Fatal(err)
	}
	if old == g.mgr.GroupKey() {
		t.Fatal("departed member holds the new group key")
	}
}

func TestLeaveBroadcastUselessToDeparted(t *testing.T) {
	g := newGroup(t, 2)
	g.join(t, "a")
	g.join(t, "b")
	departed := g.members["b"]
	broadcast, err := g.mgr.Leave("b")
	if err != nil {
		t.Fatal(err)
	}
	// Even applying the broadcast, the departed member cannot learn the
	// new root: every entry is sealed under keys on paths it no longer
	// shares... apply and check.
	departed.Apply(broadcast)
	got, err := departed.GroupKey()
	if err == nil && got == g.mgr.GroupKey() {
		t.Fatal("departed member decrypted the rekey broadcast")
	}
}

func TestCapacity(t *testing.T) {
	g := newGroup(t, 1) // capacity 2
	g.join(t, "a")
	g.join(t, "b")
	_, _, err := g.mgr.Join("c", cryptoutil.DeriveDataKey("c", "p"))
	if !errors.Is(err, ErrFull) {
		t.Fatalf("over-capacity join = %v, want ErrFull", err)
	}
	if g.mgr.Capacity() != 2 {
		t.Fatalf("capacity = %d", g.mgr.Capacity())
	}
}

func TestLeaveUnknown(t *testing.T) {
	g := newGroup(t, 2)
	if _, err := g.mgr.Leave("ghost"); !errors.Is(err, ErrUnknownMember) {
		t.Fatalf("err = %v, want ErrUnknownMember", err)
	}
}

func TestDoubleJoinRejected(t *testing.T) {
	g := newGroup(t, 2)
	g.join(t, "a")
	if _, _, err := g.mgr.Join("a", cryptoutil.DeriveDataKey("a", "p")); err == nil {
		t.Fatal("double join accepted")
	}
}

func TestNonMemberHasNoKey(t *testing.T) {
	m := NewMember("stranger", cryptoutil.DeriveDataKey("s", "p"), nil)
	if _, err := m.GroupKey(); !errors.Is(err, ErrNotMember) {
		t.Fatalf("err = %v, want ErrNotMember", err)
	}
}

func TestRekeyBroadcastLogarithmic(t *testing.T) {
	// With 2^depth capacity, a leave should rekey O(depth) nodes, each
	// sealed under at most 2 children: entries <= 2*depth.
	depth := 4
	g := newGroup(t, depth)
	for i := 0; i < 16; i++ {
		g.join(t, fmt.Sprintf("m%02d", i))
	}
	broadcast, err := g.mgr.Leave("m07")
	if err != nil {
		t.Fatal(err)
	}
	if len(broadcast.Entries) > 2*depth {
		t.Fatalf("broadcast entries = %d, want <= %d (O(log n))", len(broadcast.Entries), 2*depth)
	}
	delete(g.members, "m07")
	for _, m := range g.members {
		m.Apply(broadcast)
	}
	g.checkConsistent(t)
}

func TestChurn(t *testing.T) {
	g := newGroup(t, 3)
	names := []string{"a", "b", "c", "d", "e", "f"}
	for _, n := range names {
		g.join(t, n)
	}
	g.leave(t, "c")
	g.join(t, "g")
	g.leave(t, "a")
	g.leave(t, "f")
	g.join(t, "h")
	g.checkConsistent(t)
	if g.mgr.Members() != 5 {
		t.Fatalf("members = %d, want 5", g.mgr.Members())
	}
}

func TestManagerDepthValidation(t *testing.T) {
	if _, err := NewManager(0, nil); err == nil {
		t.Fatal("depth 0 accepted")
	}
	if _, err := NewManager(21, nil); err == nil {
		t.Fatal("depth 21 accepted")
	}
}
