package fragment

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGF256FieldAxioms(t *testing.T) {
	// Multiplicative inverse: a * inv(a) == 1 for all non-zero a.
	for a := 1; a < 256; a++ {
		if got := gfMul(byte(a), gfInv(byte(a))); got != 1 {
			t.Fatalf("a*inv(a) = %d for a=%d", got, a)
		}
	}
	// Commutativity and distributivity, property-based.
	commutative := func(a, b byte) bool { return gfMul(a, b) == gfMul(b, a) }
	if err := quick.Check(commutative, nil); err != nil {
		t.Error(err)
	}
	distributive := func(a, b, c byte) bool {
		return gfMul(a, b^c) == gfMul(a, b)^gfMul(a, c)
	}
	if err := quick.Check(distributive, nil); err != nil {
		t.Error(err)
	}
	// Division inverts multiplication.
	division := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return gfDiv(gfMul(a, b), b) == a
	}
	if err := quick.Check(division, nil); err != nil {
		t.Error(err)
	}
}

func TestGFPow(t *testing.T) {
	if gfPow(0, 0) != 1 || gfPow(5, 0) != 1 {
		t.Fatal("x^0 != 1")
	}
	if gfPow(0, 3) != 0 {
		t.Fatal("0^3 != 0")
	}
	for a := 1; a < 20; a++ {
		want := byte(1)
		for e := 0; e < 10; e++ {
			if got := gfPow(byte(a), e); got != want {
				t.Fatalf("gfPow(%d,%d) = %d, want %d", a, e, got, want)
			}
			want = gfMul(want, byte(a))
		}
	}
}

func TestSplitReconstructRoundTrip(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog")
	frags, err := Split(data, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 5 {
		t.Fatalf("fragments = %d, want 5", len(frags))
	}
	got, err := Reconstruct(frags[:3])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("reconstruct = %q", got)
	}
}

func TestReconstructFromAnySubset(t *testing.T) {
	data := []byte("secret payload with some length to it 12345")
	frags, err := Split(data, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Every 3-subset of 6 fragments must reconstruct.
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			for k := j + 1; k < 6; k++ {
				got, err := Reconstruct([]Fragment{frags[i], frags[j], frags[k]})
				if err != nil {
					t.Fatalf("subset (%d,%d,%d): %v", i, j, k, err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("subset (%d,%d,%d) reconstructed wrong data", i, j, k)
				}
			}
		}
	}
}

func TestReconstructInsufficient(t *testing.T) {
	frags, err := Split([]byte("data"), 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Reconstruct(frags[:2]); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("err = %v, want ErrInsufficient", err)
	}
	if _, err := Reconstruct(nil); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("nil err = %v, want ErrInsufficient", err)
	}
}

func TestReconstructDuplicateIndex(t *testing.T) {
	frags, err := Split([]byte("data"), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Reconstruct([]Fragment{frags[0], frags[0]}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSplitParamValidation(t *testing.T) {
	cases := [][2]int{{0, 5}, {3, 2}, {1, 300}, {-1, 4}}
	for _, c := range cases {
		if _, err := Split([]byte("x"), c[0], c[1]); !errors.Is(err, ErrParams) {
			t.Errorf("Split(k=%d,n=%d) err = %v, want ErrParams", c[0], c[1], err)
		}
	}
}

func TestSplitEdgeCases(t *testing.T) {
	// Empty payload.
	frags, err := Split(nil, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Reconstruct(frags[1:])
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty roundtrip = %q", got)
	}
	// k == 1 degenerates to replication.
	frags, err = Split([]byte("solo"), 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err = Reconstruct(frags[2:3])
	if err != nil || !bytes.Equal(got, []byte("solo")) {
		t.Fatalf("k=1 roundtrip = %q, %v", got, err)
	}
	// k == n (no redundancy).
	frags, err = Split([]byte("exact"), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err = Reconstruct(frags)
	if err != nil || !bytes.Equal(got, []byte("exact")) {
		t.Fatalf("k=n roundtrip = %q, %v", got, err)
	}
}

func TestFragmentSizeOptimality(t *testing.T) {
	// Each fragment is ~|data|/k: the n/k blowup that beats replication.
	data := make([]byte, 9000)
	frags, err := Split(data, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	perFrag := len(frags[0].Data)
	if perFrag > (len(data)+8)/3+3 {
		t.Fatalf("fragment size %d, want ~%d", perFrag, len(data)/3)
	}
}

func TestSplitReconstructProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	prop := func(raw []byte, kRaw, extraRaw uint8) bool {
		k := int(kRaw%5) + 1
		n := k + int(extraRaw%5)
		if n > 255 {
			return true
		}
		frags, err := Split(raw, k, n)
		if err != nil {
			return false
		}
		// Random k-subset.
		idx := rng.Perm(n)[:k]
		subset := make([]Fragment, 0, k)
		for _, i := range idx {
			subset = append(subset, frags[i])
		}
		got, err := Reconstruct(subset)
		if err != nil {
			return false
		}
		return bytes.Equal(got, raw)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReconstructDetectsCorruptLength(t *testing.T) {
	frags, err := Split([]byte("data"), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt all fragments' first byte (the length header region).
	for i := range frags {
		frags[i].Data[0] = 0xff
	}
	if _, err := Reconstruct(frags[:2]); !errors.Is(err, ErrCorruptLength) {
		t.Fatalf("err = %v, want ErrCorruptLength", err)
	}
}

func TestXORSplitCombine(t *testing.T) {
	data := []byte("top secret")
	rng := rand.New(rand.NewSource(1))
	random := func(b []byte) error { _, err := rng.Read(b); return err }

	shares, err := XORSplit(data, 4, random)
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != 4 {
		t.Fatalf("shares = %d", len(shares))
	}
	got, err := XORCombine(shares)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("combine = %q", got)
	}
	// Any n-1 shares reveal nothing: combining them must NOT yield data.
	partial, err := XORCombine(shares[:3])
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(partial, data) {
		t.Fatal("n-1 shares reconstructed the secret")
	}
}

func TestXORSplitValidation(t *testing.T) {
	if _, err := XORSplit([]byte("x"), 1, nil); !errors.Is(err, ErrParams) {
		t.Fatalf("n=1 err = %v", err)
	}
	if _, err := XORCombine([][]byte{{1}}); !errors.Is(err, ErrParams) {
		t.Fatalf("single share err = %v", err)
	}
	if _, err := XORCombine([][]byte{{1, 2}, {3}}); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("ragged shares err = %v", err)
	}
}
