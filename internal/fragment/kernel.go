package fragment

// kernel.go — slice-wise GF(2^8) multiply-accumulate kernels behind
// Split/Reconstruct (DESIGN.md §7.12). The scalar path multiplies one
// byte at a time through the log/antilog tables, paying a gfPow and two
// table indirections per term; the kernels below precompute, once per
// process, two 16-entry nibble tables for every possible coefficient
// (low[c][x] = c·x, high[c][x] = c·(x<<4), so c·b = low[c][b&0xf] ^
// high[c][b>>4]) and stream whole columns through them eight bytes per
// loop step — the classic pure-Go Reed-Solomon kernel shape. Vandermonde
// row coefficients are cached per (k, n), inverted decode matrices are
// LRU-cached per (k, index-set), and multi-megabyte encodes are chunked
// across a bounded worker pool sized by SetEncodeParallelism.

import (
	"container/list"
	"encoding/binary"
	"runtime"
	"sync"
	"sync/atomic"
)

// mulTableLow[c][x] is c·x for x in 0..15; mulTableHigh[c][x] is
// c·(x<<4). Together they resolve any GF(2^8) product with two small
// array reads and one XOR. 8 KiB total, built once at init from the
// table-free multiply so initialization order against gf256.go's
// log-table init does not matter.
var mulTableLow, mulTableHigh [256][16]byte

func init() {
	for c := 0; c < 256; c++ {
		for x := 0; x < 16; x++ {
			mulTableLow[c][x] = mulNoTable(byte(c), byte(x))
			mulTableHigh[c][x] = mulNoTable(byte(c), byte(x<<4))
		}
	}
}

// galMulSlice computes out[i] = c·in[i] for the whole slice. len(out)
// must equal len(in).
func galMulSlice(c byte, in, out []byte) {
	switch c {
	case 0:
		clear(out)
		return
	case 1:
		copy(out, in)
		return
	}
	low, high := &mulTableLow[c], &mulTableHigh[c]
	in = in[:len(out)] // bounds-check hint: one len, checked once
	i := 0
	for ; i+8 <= len(in); i += 8 {
		s := in[i : i+8 : i+8]
		d := out[i : i+8 : i+8]
		d[0] = low[s[0]&0xf] ^ high[s[0]>>4]
		d[1] = low[s[1]&0xf] ^ high[s[1]>>4]
		d[2] = low[s[2]&0xf] ^ high[s[2]>>4]
		d[3] = low[s[3]&0xf] ^ high[s[3]>>4]
		d[4] = low[s[4]&0xf] ^ high[s[4]>>4]
		d[5] = low[s[5]&0xf] ^ high[s[5]>>4]
		d[6] = low[s[6]&0xf] ^ high[s[6]>>4]
		d[7] = low[s[7]&0xf] ^ high[s[7]>>4]
	}
	for ; i < len(in); i++ {
		out[i] = low[in[i]&0xf] ^ high[in[i]>>4]
	}
}

// galMulSliceXor accumulates out[i] ^= c·in[i] for the whole slice.
// len(out) must equal len(in).
func galMulSliceXor(c byte, in, out []byte) {
	switch c {
	case 0:
		return
	case 1:
		xorSlice(in, out)
		return
	}
	low, high := &mulTableLow[c], &mulTableHigh[c]
	in = in[:len(out)]
	i := 0
	for ; i+8 <= len(in); i += 8 {
		s := in[i : i+8 : i+8]
		d := out[i : i+8 : i+8]
		d[0] ^= low[s[0]&0xf] ^ high[s[0]>>4]
		d[1] ^= low[s[1]&0xf] ^ high[s[1]>>4]
		d[2] ^= low[s[2]&0xf] ^ high[s[2]>>4]
		d[3] ^= low[s[3]&0xf] ^ high[s[3]>>4]
		d[4] ^= low[s[4]&0xf] ^ high[s[4]>>4]
		d[5] ^= low[s[5]&0xf] ^ high[s[5]>>4]
		d[6] ^= low[s[6]&0xf] ^ high[s[6]>>4]
		d[7] ^= low[s[7]&0xf] ^ high[s[7]>>4]
	}
	for ; i < len(in); i++ {
		out[i] ^= low[in[i]&0xf] ^ high[in[i]>>4]
	}
}

// xorSlice is the c==1 accumulate path: word-at-a-time XOR.
func xorSlice(in, out []byte) {
	in = in[:len(out)]
	i := 0
	for ; i+8 <= len(in); i += 8 {
		binary.LittleEndian.PutUint64(out[i:],
			binary.LittleEndian.Uint64(out[i:])^binary.LittleEndian.Uint64(in[i:]))
	}
	for ; i < len(in); i++ {
		out[i] ^= in[i]
	}
}

// encodeRowCache caches the Vandermonde row coefficients per (k, n):
// row i is [1, x_i, x_i^2, ..., x_i^(k-1)] with x_i = i+1. The rows are
// tiny (n·k bytes) and immutable once built, so a grow-only sync.Map is
// enough.
var encodeRowCache sync.Map // uint32(k)<<16 | uint32(n) -> [][]byte

// encodeRows returns the cached n×k coefficient matrix for a (k, n)
// dispersal geometry.
func encodeRows(k, n int) [][]byte {
	key := uint32(k)<<16 | uint32(n)
	if rows, ok := encodeRowCache.Load(key); ok {
		return rows.([][]byte)
	}
	rows := make([][]byte, n)
	for i := 0; i < n; i++ {
		x := byte(i + 1)
		rows[i] = make([]byte, k)
		for j := 0; j < k; j++ {
			rows[i][j] = gfPow(x, j)
		}
	}
	actual, _ := encodeRowCache.LoadOrStore(key, rows)
	return actual.([][]byte)
}

// decodeMatrixCacheSize bounds the inverted decode-matrix LRU. Each entry
// is a k×k byte matrix keyed by its (k, index-set); a store reading one
// geometry in the steady state hits a handful of index-sets (the healthy
// wave plus failure permutations), so a small cache absorbs them all.
const decodeMatrixCacheSize = 128

// decodeMatrixCache is the LRU of inverted Vandermonde submatrices keyed
// by (k, chosen indices). Gauss–Jordan inversion is O(k³) and allocates;
// reads in the steady state reuse the same index-set every time, so the
// cache turns per-read inversion into a map hit.
var decodeMatrixCache = struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recently used; values are matrixEntry
}{entries: make(map[string]*list.Element), order: list.New()}

type matrixEntry struct {
	key string
	inv [][]byte
}

// invertedMatrix returns the inverse of the k×k Vandermonde submatrix
// whose rows correspond to the given fragment indices, from the LRU when
// cached.
func invertedMatrix(k int, use []*Fragment) ([][]byte, error) {
	var keyBuf [256]byte
	keyBuf[0] = byte(k)
	for i, f := range use {
		keyBuf[i+1] = byte(f.Index)
	}
	key := string(keyBuf[:k+1])

	c := &decodeMatrixCache
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		inv := el.Value.(matrixEntry).inv
		c.mu.Unlock()
		return inv, nil
	}
	c.mu.Unlock()

	m := make([][]byte, k)
	inv := make([][]byte, k)
	for i, f := range use {
		x := byte(f.Index + 1)
		m[i] = make([]byte, k)
		inv[i] = make([]byte, k)
		for j := 0; j < k; j++ {
			m[i][j] = gfPow(x, j)
		}
		inv[i][i] = 1
	}
	if err := gaussInvert(m, inv); err != nil {
		return nil, err
	}

	c.mu.Lock()
	if _, ok := c.entries[key]; !ok {
		c.entries[key] = c.order.PushFront(matrixEntry{key: key, inv: inv})
		for c.order.Len() > decodeMatrixCacheSize {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(matrixEntry).key)
		}
	}
	c.mu.Unlock()
	return inv, nil
}

// encodeParallelism holds the worker bound for chunked encodes/decodes;
// 0 means GOMAXPROCS.
var encodeParallelism atomic.Int32

// SetEncodeParallelism bounds how many goroutines a single large
// Split/Reconstruct may fan column chunks across. n <= 0 restores the
// default (GOMAXPROCS at call time). 1 forces fully serial kernels.
func SetEncodeParallelism(n int) {
	if n < 0 {
		n = 0
	}
	encodeParallelism.Store(int32(n))
}

// EncodeParallelism reports the effective worker bound.
func EncodeParallelism() int {
	if p := int(encodeParallelism.Load()); p > 0 {
		return p
	}
	return runtime.GOMAXPROCS(0)
}

const (
	// parallelChunkCols is the column count of one parallel work unit.
	parallelChunkCols = 64 << 10
	// parallelMinCols is the column count at which a matrix operation
	// starts fanning chunks across workers; below it goroutine handoff
	// costs more than it saves.
	parallelMinCols = 2 * parallelChunkCols
)

// runChunks applies fn to column ranges [lo, hi) covering [0, cols),
// serially for small inputs and across the bounded worker pool for large
// ones. fn must be safe to call concurrently on disjoint ranges.
func runChunks(cols int, fn func(lo, hi int)) {
	workers := EncodeParallelism()
	if workers <= 1 || cols < parallelMinCols {
		fn(0, cols)
		return
	}
	chunks := (cols + parallelChunkCols - 1) / parallelChunkCols
	if workers > chunks {
		workers = chunks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				lo := c * parallelChunkCols
				hi := lo + parallelChunkCols
				if hi > cols {
					hi = cols
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// payloadPool recycles the padded k×cols staging buffer Split assembles
// the length-prefixed payload in. The buffer never escapes (fragment data
// lives in its own slab), so pooling it removes the largest encode-path
// allocation for hot writers.
var payloadPool = sync.Pool{New: func() any { return new([]byte) }}

// getPayload returns a pooled buffer of the exact requested length with
// zeroed content beyond from (the caller overwrites [0, from)).
func getPayload(n, from int) *[]byte {
	bufp := payloadPool.Get().(*[]byte)
	if cap(*bufp) < n {
		*bufp = make([]byte, n)
		return bufp
	}
	*bufp = (*bufp)[:n]
	clear((*bufp)[from:])
	return bufp
}

// putPayload returns a staging buffer to the pool.
func putPayload(bufp *[]byte) { payloadPool.Put(bufp) }
