package fragment

import (
	"bytes"
	"testing"
)

// FuzzReconstruct round-trips Split → Reconstruct over fuzzer-chosen data
// and geometry: any k of the n shares must decode back to the input, and
// feeding Reconstruct a mangled share must never panic (it may error or
// return wrong bytes — integrity is the caller's cross-checksum job, not
// the code's).
func FuzzReconstruct(f *testing.F) {
	f.Add([]byte("secure store"), uint8(2), uint8(4), uint8(0))
	f.Add([]byte{}, uint8(1), uint8(1), uint8(0))
	f.Add(bytes.Repeat([]byte{0xA5}, 257), uint8(3), uint8(7), uint8(5))
	f.Add([]byte("x"), uint8(5), uint8(5), uint8(200))
	f.Fuzz(func(t *testing.T, data []byte, kRaw, nRaw, skew uint8) {
		k := int(kRaw%8) + 1
		n := k + int(nRaw%8)
		frags, err := Split(data, k, n)
		if err != nil {
			t.Fatalf("Split(%d bytes, k=%d, n=%d): %v", len(data), k, n, err)
		}
		// Decode from a rotated subset of k shares, exercising non-trivial
		// index combinations.
		start := int(skew) % n
		subset := make([]Fragment, 0, k)
		for i := 0; i < k; i++ {
			subset = append(subset, frags[(start+i)%n])
		}
		got, err := Reconstruct(subset)
		if err != nil {
			t.Fatalf("Reconstruct(k=%d, n=%d, start=%d): %v", k, n, start, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round-trip mismatch: got %d bytes, want %d", len(got), len(data))
		}
		// Reconstruct must also stay deterministic: the full share set and
		// any permutation of it decode via the same lowest-k indices.
		full, err := Reconstruct(frags)
		if err != nil || !bytes.Equal(full, data) {
			t.Fatalf("Reconstruct(all n) mismatch: %v", err)
		}
		// Corrupt one share: must not panic (wrong output or error is fine).
		if len(subset[0].Data) > 0 {
			mangled := append([]Fragment(nil), subset...)
			mangled[0].Data = append([]byte(nil), mangled[0].Data...)
			mangled[0].Data[0] ^= 0xFF
			_, _ = Reconstruct(mangled)
		}
	})
}
