// Package fragment implements information dispersal for the secure store.
// The paper's related work (Section 3, refs [14,15,18]) identifies
// fragmentation–scattering as a complementary technique: split a data item
// into n fragments stored at different servers such that any k reconstruct
// it but fewer than k reveal nothing useful and survive n-k losses. This
// package provides Rabin's information dispersal algorithm (IDA) over
// GF(2^8) — space-optimal n/k blowup — plus an XOR-based n-of-n secret
// split for the strict-confidentiality case.
//
// Layout: gf256.go holds the finite-field arithmetic (log/antilog
// tables), and ida.go the Split/Reconstruct pair built on a Vandermonde
// matrix (any k rows invertible) plus the XORSplit/XORCombine secret
// split. internal/fragstore integrates the dispersal with the store's
// replicas and signing; see DESIGN.md §2 (#17, #21).
package fragment
