package fragment

// reference.go — the original byte-at-a-time IDA implementation, retained
// verbatim as the differential-testing baseline for the slice-wise
// kernels. FuzzGF256Kernels proves Split/Reconstruct byte-identical to
// SplitReference/ReconstructReference; the T7 benchmark and the
// fragment microbenchmarks use the pair to report the kernel speedup.
// Correctness arguments live with the fast path in ida.go.

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// SplitReference is the scalar reference implementation of Split: the
// same Vandermonde dispersal computed one byte at a time through the
// log/antilog tables. It exists for differential tests and benchmarks;
// production callers use Split.
func SplitReference(data []byte, k, n int) ([]Fragment, error) {
	if k < 1 || n < k || n > 255 {
		return nil, fmt.Errorf("%w: k=%d n=%d", ErrParams, k, n)
	}

	total := 8 + len(data)
	padded := total + (k-total%k)%k
	payload := make([]byte, padded)
	binary.BigEndian.PutUint64(payload, uint64(len(data)))
	copy(payload[8:], data)
	cols := len(payload) / k

	frags := make([]Fragment, n)
	for i := range frags {
		frags[i] = Fragment{Index: i, K: k, Data: make([]byte, cols)}
	}
	for c := 0; c < cols; c++ {
		for i := 0; i < n; i++ {
			x := byte(i + 1)
			var acc byte
			for j := 0; j < k; j++ {
				acc ^= gfMul(gfPow(x, j), payload[j*cols+c])
			}
			frags[i].Data[c] = acc
		}
	}
	return frags, nil
}

// ReconstructReference is the scalar reference implementation of
// Reconstruct: copy-and-sort selection, per-call matrix inversion, and a
// byte-at-a-time decode loop. It exists for differential tests and
// benchmarks; production callers use Reconstruct.
func ReconstructReference(frags []Fragment) ([]byte, error) {
	if len(frags) == 0 {
		return nil, ErrInsufficient
	}
	k := frags[0].K
	if len(frags) < k {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrInsufficient, len(frags), k)
	}
	sorted := append([]Fragment(nil), frags...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Index < sorted[j].Index })
	use := sorted[:k]
	cols := len(use[0].Data)
	seen := make(map[int]bool, k)
	for _, f := range use {
		if f.K != k || len(f.Data) != cols {
			return nil, ErrInconsistent
		}
		if f.Index < 0 || f.Index > 254 || seen[f.Index] {
			return nil, fmt.Errorf("%w: duplicate or invalid index %d", ErrSingular, f.Index)
		}
		seen[f.Index] = true
	}

	m := make([][]byte, k)
	inv := make([][]byte, k)
	for i, f := range use {
		x := byte(f.Index + 1)
		m[i] = make([]byte, k)
		inv[i] = make([]byte, k)
		for j := 0; j < k; j++ {
			m[i][j] = gfPow(x, j)
		}
		inv[i][i] = 1
	}
	if err := gaussInvert(m, inv); err != nil {
		return nil, err
	}

	payload := make([]byte, k*cols)
	for j := 0; j < k; j++ {
		for c := 0; c < cols; c++ {
			var acc byte
			for i := 0; i < k; i++ {
				acc ^= gfMul(inv[j][i], use[i].Data[c])
			}
			payload[j*cols+c] = acc
		}
	}

	if len(payload) < 8 {
		return nil, ErrCorruptLength
	}
	length := binary.BigEndian.Uint64(payload)
	if length > uint64(len(payload)-8) {
		return nil, fmt.Errorf("%w: claims %d bytes, payload %d", ErrCorruptLength, length, len(payload)-8)
	}
	return payload[8 : 8+length], nil
}
