package fragment

import (
	"bytes"
	"fmt"
	"testing"
)

// TestKernelMatchesScalarMul exhaustively checks the nibble-table product
// against the log/antilog multiply for every (a, b) pair.
func TestKernelMatchesScalarMul(t *testing.T) {
	var in, out [1]byte
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			in[0] = byte(b)
			galMulSlice(byte(a), in[:], out[:])
			if want := gfMul(byte(a), byte(b)); out[0] != want {
				t.Fatalf("galMulSlice(%d, %d) = %d, want %d", a, b, out[0], want)
			}
		}
	}
}

// TestSplitMatchesReference cross-checks the kernel encode against the
// scalar reference over a spread of sizes and geometries, including
// lengths that exercise the padded tail and the 8-byte unroll remainder.
func TestSplitMatchesReference(t *testing.T) {
	geoms := [][2]int{{1, 1}, {1, 3}, {2, 4}, {3, 5}, {4, 10}, {7, 13}}
	sizes := []int{0, 1, 7, 8, 9, 63, 64, 65, 1023, 4096, 70000}
	for _, g := range geoms {
		k, n := g[0], g[1]
		for _, size := range sizes {
			data := make([]byte, size)
			for i := range data {
				data[i] = byte(i*131 + k)
			}
			fast, err := Split(data, k, n)
			ref, rerr := SplitReference(data, k, n)
			if (err == nil) != (rerr == nil) {
				t.Fatalf("k=%d n=%d size=%d: err %v vs reference %v", k, n, size, err, rerr)
			}
			if err != nil {
				continue
			}
			for i := range ref {
				if fast[i].Index != ref[i].Index || fast[i].K != ref[i].K || !bytes.Equal(fast[i].Data, ref[i].Data) {
					t.Fatalf("k=%d n=%d size=%d: fragment %d differs from reference", k, n, size, i)
				}
			}
		}
	}
}

// TestReconstructMatchesReference decodes from non-contiguous fragment
// subsets with both implementations — exercising the decode-matrix cache
// against per-call inversion — and checks both recover the original.
func TestReconstructMatchesReference(t *testing.T) {
	data := make([]byte, 12345)
	for i := range data {
		data[i] = byte(i * 17)
	}
	frags, err := Split(data, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	subsets := [][]int{{0, 1, 2}, {4, 5, 6}, {0, 3, 6}, {1, 2, 5}, {6, 0, 3}, {5, 1, 4, 2}}
	for _, idx := range subsets {
		var sub []Fragment
		for _, i := range idx {
			sub = append(sub, frags[i])
		}
		fast, err := Reconstruct(sub)
		if err != nil {
			t.Fatalf("subset %v: %v", idx, err)
		}
		ref, err := ReconstructReference(sub)
		if err != nil {
			t.Fatalf("subset %v: reference: %v", idx, err)
		}
		if !bytes.Equal(fast, data) || !bytes.Equal(ref, data) {
			t.Fatalf("subset %v: decode mismatch (fast ok=%v ref ok=%v)", idx, bytes.Equal(fast, data), bytes.Equal(ref, data))
		}
	}
}

// TestReconstructRejectsLikeReference checks the allocation-free
// selection path errors exactly where the sort-based reference does:
// duplicates among the chosen k, invalid indices, geometry mixups.
func TestReconstructRejectsLikeReference(t *testing.T) {
	frags, err := Split([]byte("reject-parity"), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		in   []Fragment
	}{
		{"dup in lowest k", []Fragment{frags[0], frags[0], frags[1]}},
		{"dup above lowest k", []Fragment{frags[0], frags[1], frags[3], frags[3]}},
		{"negative index", []Fragment{frags[0], {Index: -1, K: 2, Data: frags[1].Data}}},
		{"index 255 needed", []Fragment{frags[0], {Index: 255, K: 2, Data: frags[1].Data}}},
		{"index 255 ignored", []Fragment{frags[0], frags[1], {Index: 255, K: 2, Data: frags[2].Data}}},
		{"k mismatch", []Fragment{frags[0], {Index: 1, K: 3, Data: frags[1].Data}}},
		{"length mismatch", []Fragment{frags[0], {Index: 1, K: 2, Data: frags[1].Data[:1]}}},
		{"too few", frags[:1]},
		{"empty", nil},
	}
	for _, tc := range cases {
		_, fastErr := Reconstruct(tc.in)
		_, refErr := ReconstructReference(tc.in)
		if (fastErr == nil) != (refErr == nil) {
			t.Errorf("%s: err %v vs reference %v", tc.name, fastErr, refErr)
		}
	}
}

// TestSplitAllocs bounds the encode path's allocations: the fragment
// header slice, the shared share slab, the out-slice scaffolding — not a
// payload staging buffer per call (pooled) and not n separate shares.
func TestSplitAllocs(t *testing.T) {
	data := make([]byte, 64<<10)
	if _, err := Split(data, 3, 5); err != nil { // warm pool and row cache
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := Split(data, 3, 5); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 4 {
		t.Fatalf("Split allocates %.1f times per call, want <= 4", allocs)
	}
}

// TestReconstructAllocs bounds the decode path: with the index-set's
// inverted matrix cached, what remains is the output payload plus the
// chunk-closure scaffolding — no sort copy, no seen-map, no per-call
// matrix inversion (the old path allocated ~10+ times per call).
func TestReconstructAllocs(t *testing.T) {
	data := make([]byte, 64<<10)
	frags, err := Split(data, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	sub := frags[1:4]
	if _, err := Reconstruct(sub); err != nil { // warm the matrix cache
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := Reconstruct(sub); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 4 {
		t.Fatalf("Reconstruct allocates %.1f times per call, want <= 4", allocs)
	}
}

// TestParallelEncodeMatchesSerial forces the chunked worker-pool path
// (multi-chunk input, parallelism > 1) and compares against a fully
// serial encode of the same input.
func TestParallelEncodeMatchesSerial(t *testing.T) {
	data := make([]byte, 3*parallelMinCols+1017) // cols > parallelMinCols for k<=3
	for i := range data {
		data[i] = byte(i * 251)
	}
	defer SetEncodeParallelism(0)
	SetEncodeParallelism(4)
	par, err := Split(data, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	SetEncodeParallelism(1)
	ser, err := Split(data, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ser {
		if !bytes.Equal(par[i].Data, ser[i].Data) {
			t.Fatalf("fragment %d: parallel encode differs from serial", i)
		}
	}
	SetEncodeParallelism(4)
	got, err := Reconstruct(par[2:])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("parallel reconstruct did not recover the data")
	}
}

// TestDecodeMatrixCacheEviction fills the LRU past capacity and checks
// decodes still succeed (a miss re-inverts) and the cache stays bounded.
func TestDecodeMatrixCacheEviction(t *testing.T) {
	data := []byte("eviction probe")
	frags, err := Split(data, 2, 200)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(frags); i++ { // distinct index-sets > cache size
		got, err := Reconstruct(frags[i : i+2])
		if err != nil {
			t.Fatalf("pair %d: %v", i, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("pair %d: wrong decode", i)
		}
	}
	decodeMatrixCache.mu.Lock()
	size, entries := decodeMatrixCache.order.Len(), len(decodeMatrixCache.entries)
	decodeMatrixCache.mu.Unlock()
	if size > decodeMatrixCacheSize || entries != size {
		t.Fatalf("cache size %d (entries %d), want <= %d and consistent", size, entries, decodeMatrixCacheSize)
	}
}

// FuzzGF256Kernels differentially fuzzes the slice-wise kernels against
// the scalar reference: same fragments out of Split, same decode out of
// Reconstruct (from a derived non-trivial subset), same accept/reject
// verdicts. CI runs this for a 10s smoke on every push.
func FuzzGF256Kernels(f *testing.F) {
	f.Add([]byte("hello, dispersal"), uint8(2), uint8(2), uint8(0))
	f.Add([]byte{}, uint8(0), uint8(0), uint8(1))
	f.Add(bytes.Repeat([]byte{0xa5}, 3000), uint8(3), uint8(4), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, kRaw, extraRaw, pick uint8) {
		k := int(kRaw%8) + 1
		n := k + int(extraRaw%8)
		fast, err := Split(data, k, n)
		ref, rerr := SplitReference(data, k, n)
		if (err == nil) != (rerr == nil) {
			t.Fatalf("Split err=%v reference err=%v", err, rerr)
		}
		if err != nil {
			return
		}
		for i := range ref {
			if !bytes.Equal(fast[i].Data, ref[i].Data) {
				t.Fatalf("fragment %d: kernel output differs from scalar reference", i)
			}
		}
		// Decode from a rotated k-subset so non-lowest index-sets (and the
		// matrix cache) get coverage too.
		sub := make([]Fragment, 0, k)
		for i := 0; i < k; i++ {
			sub = append(sub, fast[(i+int(pick))%n])
		}
		got, err := Reconstruct(sub)
		refGot, rerr := ReconstructReference(sub)
		if (err == nil) != (rerr == nil) {
			t.Fatalf("Reconstruct err=%v reference err=%v", err, rerr)
		}
		if err == nil && (!bytes.Equal(got, data) || !bytes.Equal(refGot, data)) {
			t.Fatalf("decode mismatch: kernel ok=%v reference ok=%v", bytes.Equal(got, data), bytes.Equal(refGot, data))
		}
	})
}

// kernelBenchGeoms are the microbenchmark geometries the ISSUE tracks.
var kernelBenchGeoms = []struct{ k, n int }{{2, 4}, {3, 5}}

// kernelBenchSizes spans the R3 value range.
var kernelBenchSizes = []int{64 << 10, 1 << 20, 4 << 20}

func benchName(size, k, n int) string {
	return fmt.Sprintf("%dKiB/k%dn%d", size>>10, k, n)
}

func BenchmarkSplit(b *testing.B) {
	for _, g := range kernelBenchGeoms {
		for _, size := range kernelBenchSizes {
			data := make([]byte, size)
			b.Run(benchName(size, g.k, g.n), func(b *testing.B) {
				b.SetBytes(int64(size))
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := Split(data, g.k, g.n); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkSplitScalar(b *testing.B) {
	for _, g := range kernelBenchGeoms {
		for _, size := range kernelBenchSizes {
			data := make([]byte, size)
			b.Run(benchName(size, g.k, g.n), func(b *testing.B) {
				b.SetBytes(int64(size))
				for i := 0; i < b.N; i++ {
					if _, err := SplitReference(data, g.k, g.n); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkReconstruct(b *testing.B) {
	for _, g := range kernelBenchGeoms {
		for _, size := range kernelBenchSizes {
			data := make([]byte, size)
			frags, err := Split(data, g.k, g.n)
			if err != nil {
				b.Fatal(err)
			}
			sub := frags[:g.k]
			b.Run(benchName(size, g.k, g.n), func(b *testing.B) {
				b.SetBytes(int64(size))
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := Reconstruct(sub); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkReconstructScalar(b *testing.B) {
	for _, g := range kernelBenchGeoms {
		for _, size := range kernelBenchSizes {
			data := make([]byte, size)
			frags, err := Split(data, g.k, g.n)
			if err != nil {
				b.Fatal(err)
			}
			sub := frags[:g.k]
			b.Run(benchName(size, g.k, g.n), func(b *testing.B) {
				b.SetBytes(int64(size))
				for i := 0; i < b.N; i++ {
					if _, err := ReconstructReference(sub); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
