package fragment

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Errors returned by dispersal and reconstruction.
var (
	ErrParams        = errors.New("fragment: invalid parameters")
	ErrInsufficient  = errors.New("fragment: not enough fragments to reconstruct")
	ErrInconsistent  = errors.New("fragment: fragments disagree on geometry")
	ErrSingular      = errors.New("fragment: fragment indices not independent")
	ErrCorruptLength = errors.New("fragment: corrupt length header")
)

// Fragment is one dispersed share of a data item.
type Fragment struct {
	// Index identifies the share (0-based row of the dispersal matrix).
	Index int
	// K is the reconstruction threshold baked into the share.
	K int
	// Data is the share payload.
	Data []byte
}

// Split disperses data into n fragments, any k of which reconstruct it
// (Rabin IDA). Each fragment is ~len(data)/k bytes, so total storage is
// n/k times the original — the space optimality that distinguishes IDA
// from plain replication. n is limited to 255 by the field size.
//
// The encode runs on the slice-wise nibble-table kernels of kernel.go:
// fragment i accumulates row_i[j]·payload_row_j column-slice-wise from
// the cached Vandermonde coefficients, chunked across the bounded worker
// pool for multi-megabyte values. Output is byte-identical to the
// retained scalar reference (SplitReference), which FuzzGF256Kernels
// enforces.
func Split(data []byte, k, n int) ([]Fragment, error) {
	if k < 1 || n < k || n > 255 {
		return nil, fmt.Errorf("%w: k=%d n=%d", ErrParams, k, n)
	}

	// Prefix the payload with its length so padding can be stripped, and
	// round the staging buffer up to a multiple of k. The buffer is
	// pooled: getPayload zeroes the padding tail dirty from earlier uses.
	total := 8 + len(data)
	padded := total + (k-total%k)%k
	bufp := getPayload(padded, total)
	payload := *bufp
	binary.BigEndian.PutUint64(payload, uint64(len(data)))
	copy(payload[8:], data)
	cols := padded / k

	// All n shares live in one slab: one allocation instead of n, and the
	// full-capacity subslices keep appends from bleeding across shares.
	frags := make([]Fragment, n)
	slab := make([]byte, n*cols)
	out := make([][]byte, n)
	for i := range frags {
		d := slab[i*cols : (i+1)*cols : (i+1)*cols]
		out[i] = d
		frags[i] = Fragment{Index: i, K: k, Data: d}
	}
	// Row i of the Vandermonde matrix is [1, x_i, x_i^2, ..., x_i^(k-1)]
	// with x_i = i+1 (non-zero, distinct). Fragment i holds row_i * column
	// for every column of the k×cols payload matrix.
	rows := encodeRows(k, n)
	runChunks(cols, func(lo, hi int) {
		for i := 0; i < n; i++ {
			row, dst := rows[i], out[i][lo:hi]
			galMulSlice(row[0], payload[lo:hi], dst)
			for j := 1; j < k; j++ {
				galMulSliceXor(row[j], payload[j*cols+lo:j*cols+hi], dst)
			}
		}
	})
	putPayload(bufp)
	return frags, nil
}

// Reconstruct recovers the original data from any k distinct fragments.
// When more than k are supplied it deterministically uses the k with the
// lowest indices, so repeated reads over the same reply set — however the
// gather ordered it — decode identically. The input slice is not mutated.
//
// Selection walks a presence table instead of copying and sorting the
// input, the inverted decode matrix comes from the per-(k, index-set)
// LRU, and the decode itself runs on the same chunked slice kernels as
// Split — in the steady state the only allocation is the output payload.
func Reconstruct(frags []Fragment) ([]byte, error) {
	if len(frags) == 0 {
		return nil, ErrInsufficient
	}
	k := frags[0].K
	if len(frags) < k {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrInsufficient, len(frags), k)
	}

	// Pick the k lowest distinct indices via a presence table: O(n + 255)
	// with zero allocation. Fragments with out-of-field indices or
	// duplicates only matter — and only error — when they would be among
	// the k chosen, mirroring the sort-based selection this replaces.
	var present [255]*Fragment
	var dup [255]bool
	for i := range frags {
		f := &frags[i]
		if f.Index < 0 {
			// A negative index would sort before every valid one and be
			// chosen unconditionally.
			return nil, fmt.Errorf("%w: duplicate or invalid index %d", ErrSingular, f.Index)
		}
		if f.Index > 254 {
			continue // sorts past every valid index; an error only if needed below
		}
		if present[f.Index] != nil {
			dup[f.Index] = true
			continue
		}
		present[f.Index] = f
	}
	var useBuf [255]*Fragment
	use := useBuf[:0]
	for idx := 0; idx < 255 && len(use) < k; idx++ {
		if present[idx] == nil {
			continue
		}
		if dup[idx] {
			return nil, fmt.Errorf("%w: duplicate or invalid index %d", ErrSingular, idx)
		}
		use = append(use, present[idx])
	}
	if len(use) < k {
		// Only duplicates or out-of-field indices remain to fill the k.
		return nil, fmt.Errorf("%w: duplicate or invalid index", ErrSingular)
	}
	cols := len(use[0].Data)
	for _, f := range use {
		if f.K != k || len(f.Data) != cols {
			return nil, ErrInconsistent
		}
	}

	inv, err := invertedMatrix(k, use)
	if err != nil {
		return nil, err
	}

	// payload row j, column c = sum_i inv[j][i] * use[i].Data[c].
	payload := make([]byte, k*cols)
	runChunks(cols, func(lo, hi int) {
		for j := 0; j < k; j++ {
			row, dst := inv[j], payload[j*cols+lo:j*cols+hi]
			galMulSlice(row[0], use[0].Data[lo:hi], dst)
			for i := 1; i < k; i++ {
				galMulSliceXor(row[i], use[i].Data[lo:hi], dst)
			}
		}
	})

	if len(payload) < 8 {
		return nil, ErrCorruptLength
	}
	length := binary.BigEndian.Uint64(payload)
	if length > uint64(len(payload)-8) {
		return nil, fmt.Errorf("%w: claims %d bytes, payload %d", ErrCorruptLength, length, len(payload)-8)
	}
	return payload[8 : 8+length], nil
}

// gaussInvert performs in-place Gauss–Jordan elimination over GF(2^8),
// turning m into the identity and inv into m^-1.
func gaussInvert(m, inv [][]byte) error {
	k := len(m)
	for col := 0; col < k; col++ {
		// Find pivot.
		pivot := -1
		for row := col; row < k; row++ {
			if m[row][col] != 0 {
				pivot = row
				break
			}
		}
		if pivot < 0 {
			return ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]

		// Normalize the pivot row.
		p := m[col][col]
		for j := 0; j < k; j++ {
			m[col][j] = gfDiv(m[col][j], p)
			inv[col][j] = gfDiv(inv[col][j], p)
		}
		// Eliminate the column elsewhere.
		for row := 0; row < k; row++ {
			if row == col || m[row][col] == 0 {
				continue
			}
			factor := m[row][col]
			for j := 0; j < k; j++ {
				m[row][j] ^= gfMul(factor, m[col][j])
				inv[row][j] ^= gfMul(factor, inv[col][j])
			}
		}
	}
	return nil
}

// XORSplit splits data into n shares that must ALL be combined to recover
// it: n-1 random pads plus the running XOR. Unlike IDA, fewer than n
// shares are information-theoretically useless — the Fray et al. [18]
// style of fragmentation for strictly confidential items.
func XORSplit(data []byte, n int, random func([]byte) error) ([][]byte, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: n=%d", ErrParams, n)
	}
	shares := make([][]byte, n)
	acc := append([]byte(nil), data...)
	for i := 0; i < n-1; i++ {
		share := make([]byte, len(data))
		if err := random(share); err != nil {
			return nil, fmt.Errorf("fragment: random share: %w", err)
		}
		for j := range acc {
			acc[j] ^= share[j]
		}
		shares[i] = share
	}
	shares[n-1] = acc
	return shares, nil
}

// XORCombine recovers data from all n XOR shares.
func XORCombine(shares [][]byte) ([]byte, error) {
	if len(shares) < 2 {
		return nil, fmt.Errorf("%w: need >=2 shares", ErrParams)
	}
	out := make([]byte, len(shares[0]))
	for _, s := range shares {
		if len(s) != len(out) {
			return nil, ErrInconsistent
		}
		for j := range out {
			out[j] ^= s[j]
		}
	}
	return out, nil
}
