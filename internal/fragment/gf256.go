package fragment

// GF(2^8) arithmetic with the AES polynomial x^8+x^4+x^3+x+1 (0x11b),
// using log/antilog tables built from generator 0x03.

var (
	gfExp [512]byte
	gfLog [256]int
)

func init() { // table construction is deterministic, side-effect free
	x := byte(1)
	for i := 0; i < 255; i++ {
		gfExp[i] = x
		gfLog[x] = i
		// multiply x by the generator 0x03 = x * 2 + x
		x = mulNoTable(x, 3)
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// mulNoTable is carry-less multiplication used only to build the tables.
func mulNoTable(a, b byte) byte {
	var p byte
	for b > 0 {
		if b&1 != 0 {
			p ^= a
		}
		carry := a & 0x80
		a <<= 1
		if carry != 0 {
			a ^= 0x1b
		}
		b >>= 1
	}
	return p
}

// gfMul multiplies in GF(2^8).
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[gfLog[a]+gfLog[b]]
}

// gfInv returns the multiplicative inverse (a must be non-zero).
func gfInv(a byte) byte {
	return gfExp[255-gfLog[a]]
}

// gfDiv divides a by b (b non-zero).
func gfDiv(a, b byte) byte {
	if a == 0 {
		return 0
	}
	return gfExp[gfLog[a]+255-gfLog[b]]
}

// gfPow raises a to the e-th power.
func gfPow(a byte, e int) byte {
	if e == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	return gfExp[(gfLog[a]*e)%255]
}
