// Package sharding partitions the keyspace across independent replica
// groups. The paper's protocols are defined over one group of n servers;
// horizontal scale comes from running G such groups side by side and
// routing every item to exactly one of them. Two properties make this
// safe without any coordination service:
//
//   - the item→group map is a pure function of (shard table, item name) —
//     highest-random-weight (rendezvous) hashing — so every client and
//     server computes the same placement independently, and adding a
//     group moves only ~1/G of the keys (each key moves only if the new
//     group wins its rendezvous draw);
//   - the shard table itself is a signed artifact: an administrator key
//     signs the canonical encoding of (version, shards), so replicas and
//     clients can verify they route against the same authentic topology
//     and a malicious directory cannot silently redirect items to
//     servers an attacker controls.
//
// The Map interface keeps the placement function pluggable: Table itself
// is the rendezvous map, and RangeMap is the ordered-boundary variant for
// deployments that want contiguous key ranges per group.
package sharding

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"

	"securestore/internal/cryptoutil"
	"securestore/internal/metrics"
	"securestore/internal/quorum"
)

// Errors returned by shard-table operations.
var (
	ErrNoShards   = errors.New("sharding: table has no shards")
	ErrBadTable   = errors.New("sharding: invalid shard table")
	ErrNotInTable = errors.New("sharding: server not in any shard")
)

// Shard is one replica group: a name and the servers that form it. Every
// shard independently runs the full protocol (its own quorums, gossip
// mesh and write-ahead logs).
type Shard struct {
	Name    string   `json:"name"`
	Servers []string `json:"servers"`
}

// Map resolves an item name to a shard index. Implementations must be
// pure functions of the table: every party — client or server — that
// holds the same table must compute the same placement.
type Map interface {
	// Place returns the index (into the table's Shards) of the shard that
	// owns the item.
	Place(item string) int
}

// Table is the signed shard table: the authoritative description of the
// deployment's groups. Table implements Map using highest-random-weight
// hashing over (shard name, item): each shard scores the item and the
// highest score wins. Removing or adding one shard only re-places keys
// whose winning shard changed — the rebalance-minimality property the
// tests pin down.
type Table struct {
	// Version orders table revisions; routing peers can detect stale
	// tables by comparing versions.
	Version uint64  `json:"version"`
	Shards  []Shard `json:"shards"`
	// Signer and Sig authenticate the table (empty when unsigned, e.g. in
	// tests). The signature covers SigningBytes.
	Signer string `json:"signer,omitempty"`
	Sig    []byte `json:"sig,omitempty"`
}

// Validate checks structural soundness: at least one shard, unique
// non-empty shard names, and every shard large enough to tolerate b
// faults (n >= 3b+1, the paper's bound, enforced per group).
func (t *Table) Validate(b int) error {
	if t == nil || len(t.Shards) == 0 {
		return ErrNoShards
	}
	seen := make(map[string]bool, len(t.Shards))
	for _, s := range t.Shards {
		if s.Name == "" {
			return fmt.Errorf("%w: unnamed shard", ErrBadTable)
		}
		if seen[s.Name] {
			return fmt.Errorf("%w: duplicate shard %q", ErrBadTable, s.Name)
		}
		seen[s.Name] = true
		if err := quorum.Validate(len(s.Servers), b); err != nil {
			return fmt.Errorf("shard %q: %w", s.Name, err)
		}
	}
	return nil
}

// Place implements Map by rendezvous hashing: score(item, shard) =
// mix64(fnv64a(shard name || 0x00 || item)), highest score wins, ties
// broken by shard order. The hash is not cryptographic — it only spreads
// load; an adversary influencing placement gains nothing because every
// shard enforces the full protocol.
func (t *Table) Place(item string) int {
	best, bestScore := 0, uint64(0)
	for i, s := range t.Shards {
		score := rendezvousScore(s.Name, item)
		if i == 0 || score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// rendezvousScore hashes one (shard, item) pair. Raw FNV-1a has weak
// trailing-byte avalanche — sequential item names keep their high bits,
// so shard-score comparisons stay correlated across whole key runs and
// the placement skews badly. The mix64 finalizer restores full avalanche
// so each (shard, item) score is effectively independent.
func rendezvousScore(shard, item string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(shard))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(item))
	return mix64(h.Sum64())
}

// mix64 is the 64-bit finalization mixer from MurmurHash3 (fmix64): a
// fixed bijection with full avalanche, so every input bit flips each
// output bit with probability ~1/2.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// ShardFor returns the shard owning the item under the default
// rendezvous map.
func (t *Table) ShardFor(item string) Shard {
	return t.Shards[t.Place(item)]
}

// Owns reports whether the named shard owns the item under the default
// rendezvous map.
func (t *Table) Owns(shard, item string) bool {
	return t.Shards[t.Place(item)].Name == shard
}

// ShardOf returns the index of the named shard, or ErrNotInTable.
func (t *Table) ShardOf(name string) (int, error) {
	for i, s := range t.Shards {
		if s.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("%w: shard %q", ErrNotInTable, name)
}

// ShardOfServer returns the index of the shard containing the named
// server, or ErrNotInTable. Server names are assumed unique across the
// deployment (each replica belongs to exactly one group).
func (t *Table) ShardOfServer(server string) (int, error) {
	for i, s := range t.Shards {
		for _, name := range s.Servers {
			if name == server {
				return i, nil
			}
		}
	}
	return 0, fmt.Errorf("%w: server %q", ErrNotInTable, server)
}

// SigningBytes is the canonical encoding the signature covers: version,
// then each shard as a length-prefixed name and server list, in table
// order. Length prefixes make the encoding injective, so two different
// tables can never share signing bytes.
func (t *Table) SigningBytes() []byte {
	buf := make([]byte, 0, 64)
	var tmp [binary.MaxVarintLen64]byte
	appendUvarint := func(v uint64) {
		buf = append(buf, tmp[:binary.PutUvarint(tmp[:], v)]...)
	}
	appendString := func(s string) {
		appendUvarint(uint64(len(s)))
		buf = append(buf, s...)
	}
	buf = append(buf, "securestore-shards-v1\x00"...)
	appendUvarint(t.Version)
	appendUvarint(uint64(len(t.Shards)))
	for _, s := range t.Shards {
		appendString(s.Name)
		appendUvarint(uint64(len(s.Servers)))
		for _, srv := range s.Servers {
			appendString(srv)
		}
	}
	return buf
}

// Sign authenticates the table with the administrator's key.
func (t *Table) Sign(key cryptoutil.KeyPair, m *metrics.Counters) {
	t.Signer = key.ID
	t.Sig = key.Sign(t.SigningBytes(), m)
}

// Verify checks the table's signature against the signer's registered
// public key. An unsigned table (no Signer) verifies trivially — tests
// and single-process benchmarks build tables they trust by construction.
func (t *Table) Verify(ring *cryptoutil.Keyring, m *metrics.Counters) error {
	if t.Signer == "" {
		return nil
	}
	if err := ring.Verify(t.Signer, t.SigningBytes(), t.Sig, m); err != nil {
		return fmt.Errorf("shard table v%d: %w", t.Version, err)
	}
	return nil
}

// Clone returns a deep copy.
func (t *Table) Clone() *Table {
	if t == nil {
		return nil
	}
	out := &Table{Version: t.Version, Signer: t.Signer, Sig: append([]byte(nil), t.Sig...)}
	for _, s := range t.Shards {
		out.Shards = append(out.Shards, Shard{Name: s.Name, Servers: append([]string(nil), s.Servers...)})
	}
	return out
}

// RangeMap is the pluggable ordered variant of the placement function:
// items are assigned to shards by comparing the item name against sorted
// boundary keys — shard i owns names in [bounds[i-1], bounds[i]), the
// first shard owns everything below bounds[0], the last everything from
// bounds[len-1] on. Contiguous ranges make scans and operator reasoning
// easy at the cost of manual balance; the rendezvous default needs no
// tuning. len(bounds) must be len(shards)-1.
type RangeMap struct {
	table  *Table
	bounds []string
}

// NewRangeMap builds a range placement over the table's shards.
func NewRangeMap(t *Table, bounds []string) (*RangeMap, error) {
	if t == nil || len(t.Shards) == 0 {
		return nil, ErrNoShards
	}
	if len(bounds) != len(t.Shards)-1 {
		return nil, fmt.Errorf("%w: %d bounds for %d shards (need shards-1)", ErrBadTable, len(bounds), len(t.Shards))
	}
	if !sort.StringsAreSorted(bounds) {
		return nil, fmt.Errorf("%w: range bounds not sorted", ErrBadTable)
	}
	return &RangeMap{table: t, bounds: append([]string(nil), bounds...)}, nil
}

// Place implements Map.
func (r *RangeMap) Place(item string) int {
	return sort.SearchStrings(r.bounds, item+"\x00")
}
