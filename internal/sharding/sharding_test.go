package sharding

import (
	"fmt"
	"testing"

	"securestore/internal/cryptoutil"
)

// testTable builds a table of g shards ("g00".., 4 servers each).
func testTable(g int) *Table {
	t := &Table{Version: 1}
	for i := 0; i < g; i++ {
		s := Shard{Name: fmt.Sprintf("g%02d", i)}
		for j := 0; j < 4; j++ {
			s.Servers = append(s.Servers, fmt.Sprintf("g%02d-s%02d", i, j))
		}
		t.Shards = append(t.Shards, s)
	}
	return t
}

// TestPlaceGoldenVectors pins the rendezvous placement to fixed outputs:
// every client and server computes placement independently, so the
// function's exact values are a wire-compatibility contract — a change
// here would silently re-home keys across a live deployment's groups.
func TestPlaceGoldenVectors(t *testing.T) {
	four := testTable(4)
	golden := map[string]int{
		"item000":    1,
		"item001":    1,
		"item002":    2,
		"alice":      0,
		"bob":        3,
		"":           0,
		"item-17-42": 0,
	}
	for item, want := range golden {
		if got := four.Place(item); got != want {
			t.Errorf("Place(%q) = %d, want %d (rendezvous function changed: existing deployments would re-home keys)", item, got, want)
		}
	}
}

func TestPlaceDeterministicAndInRange(t *testing.T) {
	for _, g := range []int{1, 2, 4, 8} {
		a, b := testTable(g), testTable(g)
		for i := 0; i < 500; i++ {
			item := fmt.Sprintf("key%03d", i)
			pa, pb := a.Place(item), b.Place(item)
			if pa != pb {
				t.Fatalf("g=%d: Place(%q) differs across identical tables: %d vs %d", g, item, pa, pb)
			}
			if pa < 0 || pa >= g {
				t.Fatalf("g=%d: Place(%q) = %d out of range", g, item, pa)
			}
		}
	}
}

// TestPlaceBalance checks the hash spreads keys roughly evenly: no shard
// of 4 should own more than twice its fair share of 2000 keys.
func TestPlaceBalance(t *testing.T) {
	table := testTable(4)
	counts := make([]int, 4)
	const keys = 2000
	for i := 0; i < keys; i++ {
		counts[table.Place(fmt.Sprintf("key%04d", i))]++
	}
	for i, c := range counts {
		if c > keys/2 || c < keys/16 {
			t.Fatalf("shard %d owns %d of %d keys: %v", i, c, keys, counts)
		}
	}
}

// TestRebalanceMinimality is the property that makes rendezvous hashing
// worth its per-key cost: growing G to G+1 moves only the keys the new
// shard wins (~1/(G+1) of them), and never moves a key between two
// pre-existing shards.
func TestRebalanceMinimality(t *testing.T) {
	const keys = 4000
	for _, g := range []int{2, 4, 8} {
		before, after := testTable(g), testTable(g+1)
		moved := 0
		for i := 0; i < keys; i++ {
			item := fmt.Sprintf("key%04d", i)
			pb, pa := before.Place(item), after.Place(item)
			if pb == pa {
				continue
			}
			if pa != g {
				t.Fatalf("g=%d→%d: %q moved between pre-existing shards (%d→%d)", g, g+1, item, pb, pa)
			}
			moved++
		}
		frac := float64(moved) / keys
		want := 1.0 / float64(g+1)
		if frac < want/2 || frac > want*2 {
			t.Fatalf("g=%d→%d: %.3f of keys moved, want ~%.3f", g, g+1, frac, want)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := testTable(2).Validate(1); err != nil {
		t.Fatalf("valid table rejected: %v", err)
	}
	var nilTable *Table
	if err := nilTable.Validate(1); err == nil {
		t.Fatal("nil table accepted")
	}
	if err := (&Table{}).Validate(1); err == nil {
		t.Fatal("empty table accepted")
	}
	dup := testTable(2)
	dup.Shards[1].Name = dup.Shards[0].Name
	if err := dup.Validate(1); err == nil {
		t.Fatal("duplicate shard names accepted")
	}
	unnamed := testTable(1)
	unnamed.Shards[0].Name = ""
	if err := unnamed.Validate(1); err == nil {
		t.Fatal("unnamed shard accepted")
	}
	small := testTable(2)
	small.Shards[1].Servers = small.Shards[1].Servers[:3] // 3 < 3b+1
	if err := small.Validate(1); err == nil {
		t.Fatal("undersized shard accepted (n=3 cannot tolerate b=1)")
	}
}

func TestSignAndVerify(t *testing.T) {
	ring := cryptoutil.NewKeyring()
	admin := cryptoutil.DeterministicKeyPair("shardadmin", "test")
	ring.MustRegister(admin.ID, admin.Public)

	table := testTable(2)
	if err := table.Verify(ring, nil); err != nil {
		t.Fatalf("unsigned table must verify trivially: %v", err)
	}
	table.Sign(admin, nil)
	if err := table.Verify(ring, nil); err != nil {
		t.Fatalf("signed table failed verification: %v", err)
	}

	// Any topology tamper after signing must be detected: a malicious
	// directory cannot redirect items to servers it controls.
	tampered := table.Clone()
	tampered.Shards[0].Servers[0] = "evil-s00"
	if err := tampered.Verify(ring, nil); err == nil {
		t.Fatal("tampered server list verified")
	}
	renamed := table.Clone()
	renamed.Shards[1].Name = "gXX"
	if err := renamed.Verify(ring, nil); err == nil {
		t.Fatal("tampered shard name verified")
	}
	bumped := table.Clone()
	bumped.Version = 2
	if err := bumped.Verify(ring, nil); err == nil {
		t.Fatal("tampered version verified")
	}
}

// TestSigningBytesInjective spot-checks the canonical encoding's length
// prefixes: shard/server name boundaries cannot be shifted to make two
// different tables collide.
func TestSigningBytesInjective(t *testing.T) {
	a := &Table{Version: 1, Shards: []Shard{{Name: "ab", Servers: []string{"c"}}}}
	b := &Table{Version: 1, Shards: []Shard{{Name: "a", Servers: []string{"bc"}}}}
	if string(a.SigningBytes()) == string(b.SigningBytes()) {
		t.Fatal("distinct tables share signing bytes")
	}
}

func TestShardHelpers(t *testing.T) {
	table := testTable(2)
	item := "somekey"
	idx := table.Place(item)
	if got := table.ShardFor(item).Name; got != table.Shards[idx].Name {
		t.Fatalf("ShardFor(%q) = %s, want shard %d", item, got, idx)
	}
	if !table.Owns(table.Shards[idx].Name, item) {
		t.Fatal("owning shard reported as not owning")
	}
	if table.Owns(table.Shards[1-idx].Name, item) {
		t.Fatal("non-owning shard reported as owning")
	}
	if i, err := table.ShardOf("g01"); err != nil || i != 1 {
		t.Fatalf("ShardOf(g01) = %d, %v", i, err)
	}
	if _, err := table.ShardOf("gXX"); err == nil {
		t.Fatal("ShardOf accepted unknown shard")
	}
	if i, err := table.ShardOfServer("g01-s02"); err != nil || i != 1 {
		t.Fatalf("ShardOfServer(g01-s02) = %d, %v", i, err)
	}
	if _, err := table.ShardOfServer("nobody"); err == nil {
		t.Fatal("ShardOfServer accepted unknown server")
	}
}

func TestRangeMap(t *testing.T) {
	table := testTable(3)
	rm, err := NewRangeMap(table, []string{"h", "p"})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]int{
		"apple":  0,
		"grape":  0,
		"h":      1, // boundary items belong to the upper shard: [h, p)
		"mango":  1,
		"p":      2,
		"secret": 2,
		"zebra":  2,
	}
	for item, want := range cases {
		if got := rm.Place(item); got != want {
			t.Errorf("RangeMap.Place(%q) = %d, want %d", item, got, want)
		}
	}
	if _, err := NewRangeMap(table, []string{"a"}); err == nil {
		t.Fatal("wrong bound count accepted")
	}
	if _, err := NewRangeMap(table, []string{"p", "h"}); err == nil {
		t.Fatal("unsorted bounds accepted")
	}
	if _, err := NewRangeMap(nil, nil); err == nil {
		t.Fatal("nil table accepted")
	}
}

func TestClone(t *testing.T) {
	table := testTable(2)
	table.Sign(cryptoutil.DeterministicKeyPair("shardadmin", "test"), nil)
	cp := table.Clone()
	cp.Shards[0].Servers[0] = "mutated"
	cp.Sig[0] ^= 0xff
	if table.Shards[0].Servers[0] == "mutated" || table.Sig[0] == cp.Sig[0] {
		t.Fatal("Clone shares state with the original")
	}
	var nilTable *Table
	if nilTable.Clone() != nil {
		t.Fatal("Clone of nil is not nil")
	}
}
