package debughttp

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"securestore/internal/metrics"
	"securestore/internal/trace"
)

// fixedState builds a deterministic State: counters with known values, a
// tracer on a fixed clock feeding a histogram set with two data.read
// samples (1ms and 4ms).
func fixedState() State {
	counters := &metrics.Counters{}
	counters.AddMessage(100)
	counters.AddMessage(50)
	counters.AddSignature()
	counters.AddCustom("read.retries", 3)
	counters.AddVerifyBatch(4)
	counters.AddVerifyBatched(4)
	counters.AddWritevCall(3)

	hist := &metrics.HistogramSet{}
	now := time.Unix(1700000000, 0)
	tr := trace.New(8, trace.WithHistograms(hist), trace.WithClock(func() time.Time { return now }))
	ctx := trace.WithTracer(context.Background(), tr)
	for _, d := range []time.Duration{time.Millisecond, 4 * time.Millisecond} {
		_, sp := trace.Start(ctx, "data.read")
		sp.SetAttr("item", "x")
		now = now.Add(d)
		sp.End()
	}
	return State{
		Counters:  counters,
		Latencies: hist,
		Tracer:    tr,
		Info:      map[string]string{"server": "s00"},
	}
}

func get(t *testing.T, s State, url string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	Handler(s).ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
	return rec
}

func TestMetricsPrometheus(t *testing.T) {
	rec := get(t, fixedState(), "/metrics")
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type = %q", ct)
	}
	body := rec.Body.String()
	// Golden lines: fixed counters, custom counter, info gauge, and the
	// histogram's cumulative buckets around the two samples (1ms lands in
	// the 1.024ms bucket, 4ms in the 4.096ms bucket).
	for _, line := range []string{
		`securestore_info{server="s00"} 1`,
		"securestore_messages_sent_total 2",
		"securestore_bytes_sent_total 150",
		"securestore_signatures_total 1",
		"securestore_verifications_total 0",
		`securestore_custom_total{name="read.retries"} 3`,
		"securestore_verify_batched_total 4",
		"# TYPE securestore_verify_batch_size histogram",
		`securestore_verify_batch_size_bucket{le="2"} 0`,
		`securestore_verify_batch_size_bucket{le="4"} 1`,
		`securestore_verify_batch_size_bucket{le="+Inf"} 1`,
		"securestore_verify_batch_size_sum 4",
		"securestore_verify_batch_size_count 1",
		"# TYPE securestore_writev_frames_per_call histogram",
		`securestore_writev_frames_per_call_bucket{le="2"} 0`,
		`securestore_writev_frames_per_call_bucket{le="4"} 1`,
		"securestore_writev_frames_per_call_sum 3",
		"securestore_writev_frames_per_call_count 1",
		"# TYPE securestore_op_latency_seconds histogram",
		`securestore_op_latency_seconds_bucket{op="data.read",le="0.000512"} 0`,
		`securestore_op_latency_seconds_bucket{op="data.read",le="0.001024"} 1`,
		`securestore_op_latency_seconds_bucket{op="data.read",le="0.002048"} 1`,
		`securestore_op_latency_seconds_bucket{op="data.read",le="0.004096"} 2`,
		`securestore_op_latency_seconds_bucket{op="data.read",le="+Inf"} 2`,
		`securestore_op_latency_seconds_sum{op="data.read"} 0.005`,
		`securestore_op_latency_seconds_count{op="data.read"} 2`,
	} {
		if !strings.Contains(body, line+"\n") {
			t.Fatalf("missing line %q in:\n%s", line, body)
		}
	}
}

func TestMetricsJSON(t *testing.T) {
	rec := get(t, fixedState(), "/metrics?format=json")
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}
	var doc struct {
		Info       map[string]string               `json:"info"`
		Counters   *metrics.Snapshot               `json:"counters"`
		Histograms map[string]metrics.HistSnapshot `json:"histograms"`
		SpansTotal uint64                          `json:"spansTotal"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad json: %v", err)
	}
	if doc.Info["server"] != "s00" {
		t.Fatalf("info = %v", doc.Info)
	}
	if doc.Counters == nil || doc.Counters.MessagesSent != 2 || doc.Counters.Custom["read.retries"] != 3 {
		t.Fatalf("counters = %+v", doc.Counters)
	}
	h, ok := doc.Histograms["data.read"]
	if !ok || h.Count != 2 || h.Max != 4*time.Millisecond {
		t.Fatalf("histograms = %+v", doc.Histograms)
	}
	if h.P50 == 0 || h.P99 == 0 {
		t.Fatalf("percentiles missing: %+v", h)
	}
	if doc.SpansTotal != 2 {
		t.Fatalf("spansTotal = %d", doc.SpansTotal)
	}
}

func TestTraces(t *testing.T) {
	rec := get(t, fixedState(), "/traces")
	var spans []trace.Span
	if err := json.Unmarshal(rec.Body.Bytes(), &spans); err != nil {
		t.Fatalf("bad json: %v", err)
	}
	if len(spans) != 2 {
		t.Fatalf("spans = %d", len(spans))
	}
	if spans[0].Op != "data.read" || spans[0].Duration != time.Millisecond {
		t.Fatalf("first span = %+v", spans[0])
	}
	if spans[1].Duration != 4*time.Millisecond {
		t.Fatalf("second span = %+v", spans[1])
	}
	if len(spans[0].Attrs) != 1 || spans[0].Attrs[0].Key != "item" {
		t.Fatalf("attrs = %v", spans[0].Attrs)
	}

	// ?n=1 returns only the newest span.
	rec = get(t, fixedState(), "/traces?n=1")
	spans = nil
	if err := json.Unmarshal(rec.Body.Bytes(), &spans); err != nil {
		t.Fatalf("bad json: %v", err)
	}
	if len(spans) != 1 || spans[0].Duration != 4*time.Millisecond {
		t.Fatalf("limited spans = %+v", spans)
	}

	// Bad n is a 400.
	if rec := get(t, fixedState(), "/traces?n=bogus"); rec.Code != 400 {
		t.Fatalf("bad n status = %d", rec.Code)
	}

	// No tracer: empty array, not null.
	rec = get(t, State{}, "/traces")
	if strings.TrimSpace(rec.Body.String()) != "[]" {
		t.Fatalf("tracerless body = %q", rec.Body.String())
	}
}

func TestHealthz(t *testing.T) {
	rec := get(t, State{}, "/healthz")
	if rec.Code != 200 || strings.TrimSpace(rec.Body.String()) != "ok" {
		t.Fatalf("healthz = %d %q", rec.Code, rec.Body.String())
	}
	sick := State{Health: func() error { return errors.New("replica crashed") }}
	rec = get(t, sick, "/healthz")
	if rec.Code != 503 || !strings.Contains(rec.Body.String(), "replica crashed") {
		t.Fatalf("sick healthz = %d %q", rec.Code, rec.Body.String())
	}
}

// TestPprofMounted: the standard pprof handlers must be reachable on the
// debug mux so operators can attribute CPU without a separate port.
func TestPprofMounted(t *testing.T) {
	rec := get(t, State{}, "/debug/pprof/")
	if rec.Code != 200 {
		t.Fatalf("/debug/pprof/ status = %d", rec.Code)
	}
	if body := rec.Body.String(); !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index missing profiles:\n%s", body)
	}
	if rec := get(t, State{}, "/debug/pprof/symbol"); rec.Code != 200 {
		t.Fatalf("/debug/pprof/symbol status = %d", rec.Code)
	}
}

func TestMetricsEmptyState(t *testing.T) {
	rec := get(t, State{}, "/metrics")
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if body := rec.Body.String(); strings.Contains(body, "securestore_") {
		t.Fatalf("empty state exported series:\n%s", body)
	}
}
