// Package debughttp serves a replica's (or client's) live observability
// state over HTTP: counters and latency histograms at /metrics (Prometheus
// text exposition format by default, JSON with ?format=json), recent trace
// spans at /traces, and a liveness probe at /healthz. It is the read side
// of the instrumentation recorded by internal/metrics and internal/trace;
// cmd/securestored mounts it behind the -debug-addr flag.
//
// The handler is read-only and allocation-light: every request snapshots
// the shared atomics, so serving /metrics never blocks the store's hot
// path. OPERATIONS.md documents each exported series and field.
package debughttp

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"

	"securestore/internal/metrics"
	"securestore/internal/trace"
)

// State bundles the observable pieces one process exposes. Any field may
// be nil (or zero): the corresponding sections are simply omitted.
type State struct {
	// Counters is the process's protocol cost accounting.
	Counters *metrics.Counters
	// Latencies holds the per-operation latency histograms (usually the
	// tracer's histogram set, but a standalone set works too).
	Latencies *metrics.HistogramSet
	// Tracer supplies recent spans for /traces.
	Tracer *trace.Tracer
	// Health reports process health for /healthz; nil means always
	// healthy. A non-nil error yields 503 with the error text.
	Health func() error
	// Info holds static identity labels (server name, version, ...) that
	// are exported as a securestore_info gauge and echoed in the JSON
	// document.
	Info map[string]string
}

// Handler returns the debug mux serving /metrics, /traces and /healthz
// over s.
func Handler(s State) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" {
			serveMetricsJSON(w, s)
			return
		}
		serveMetricsProm(w, s)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		serveTraces(w, r, s)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.Health != nil {
			if err := s.Health(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintln(w, err.Error())
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
	// CPU/heap attribution for live processes: the standard pprof
	// handlers, on the same debug port the operator already scrapes
	// (`go tool pprof http://<debug-addr>/debug/pprof/profile`).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// counterSeries maps the fixed Snapshot fields to Prometheus series names,
// in export order.
var counterSeries = []struct {
	name, help string
	value      func(metrics.Snapshot) int64
}{
	{"securestore_messages_sent_total", "Protocol messages sent.", func(s metrics.Snapshot) int64 { return s.MessagesSent }},
	{"securestore_bytes_sent_total", "Payload bytes of recorded messages.", func(s metrics.Snapshot) int64 { return s.BytesSent }},
	{"securestore_signatures_total", "Digital signature generations.", func(s metrics.Snapshot) int64 { return s.Signatures }},
	{"securestore_verifications_total", "Digital signature verifications.", func(s metrics.Snapshot) int64 { return s.Verifications }},
	{"securestore_vcache_hits_total", "Verifications avoided by the verified-signature cache.", func(s metrics.Snapshot) int64 { return s.VCacheHits }},
	{"securestore_vcache_misses_total", "Verification-cache lookups that fell through.", func(s metrics.Snapshot) int64 { return s.VCacheMisses }},
	{"securestore_encryptions_total", "Symmetric encryption operations.", func(s metrics.Snapshot) int64 { return s.Encryptions }},
	{"securestore_decryptions_total", "Symmetric decryption operations.", func(s metrics.Snapshot) int64 { return s.Decryptions }},
	{"securestore_stripe_contention_total", "Contended replica stripe-lock acquisitions.", func(s metrics.Snapshot) int64 { return s.StripeWaits }},
	{"securestore_wal_batches_total", "Write-ahead-log group commits (one write+flush each).", func(s metrics.Snapshot) int64 { return s.WALBatches }},
	{"securestore_shard_routing_mismatch_total", "Requests rejected (or seen rejected) because the item is owned by another shard.", func(s metrics.Snapshot) int64 { return s.RoutingMismatches }},
	{"securestore_verify_batched_total", "Signatures verified via the Ed25519 batch equation (vs. one at a time).", func(s metrics.Snapshot) int64 { return s.VerifyBatched }},
	{"securestore_frag_read_hedge_total", "Hedged fragmented reads whose straggler timer fired.", func(s metrics.Snapshot) int64 { return s.FragReadHedges }},
	{"securestore_frag_read_bytes_saved_total", "Estimated wire bytes fragmented reads avoided by contacting k+b servers instead of all n.", func(s metrics.Snapshot) int64 { return s.FragReadBytesSaved }},
}

// writeTimeHistogram renders one duration Histogram as a classic
// Prometheus cumulative histogram in seconds. Empty histograms are
// omitted (a process that never fragmented exports no coding series).
func writeTimeHistogram(w http.ResponseWriter, name, help string, h *metrics.Histogram) {
	if h == nil {
		return
	}
	snap := h.Snapshot()
	if snap.Count == 0 {
		return
	}
	bounds := metrics.BucketBounds()
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	for i, c := range snap.Counts {
		cum += c
		if i < len(bounds) {
			le := strconv.FormatFloat(bounds[i].Seconds(), 'g', -1, 64)
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum)
		} else {
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		}
	}
	fmt.Fprintf(w, "%s_sum %g\n", name, snap.Sum.Seconds())
	fmt.Fprintf(w, "%s_count %d\n", name, snap.Count)
}

// writeSizeHistogram renders one SizeHistogram as a classic Prometheus
// cumulative histogram. Empty histograms are omitted (a process that
// never batched exports no series).
func writeSizeHistogram(w http.ResponseWriter, name, help string, h *metrics.SizeHistogram) {
	if h == nil || h.Count() == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for _, b := range h.Buckets() {
		fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b.Le, b.Count)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count())
	fmt.Fprintf(w, "%s_sum %d\n", name, h.Sum())
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
}

// writeLabeledBytes renders one per-operation byte counter family in
// label order. Empty families are omitted entirely (a process that never
// touched the TCP transport exports no byte series).
func writeLabeledBytes(w http.ResponseWriter, name, help string, byOp map[string]int64) {
	if len(byOp) == 0 {
		return
	}
	ops := make([]string, 0, len(byOp))
	for op := range byOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	for _, op := range ops {
		fmt.Fprintf(w, "%s{op=%q} %d\n", name, op, byOp[op])
	}
}

// serveMetricsProm renders the Prometheus text exposition format, version
// 0.0.4: HELP/TYPE comments, counters, then one classic cumulative
// histogram per traced operation.
func serveMetricsProm(w http.ResponseWriter, s State) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	if len(s.Info) > 0 {
		keys := make([]string, 0, len(s.Info))
		for k := range s.Info {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(w, "# HELP securestore_info Static process labels.\n# TYPE securestore_info gauge\nsecurestore_info{")
		for i, k := range keys {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			fmt.Fprintf(w, "%s=%q", k, s.Info[k])
		}
		fmt.Fprint(w, "} 1\n")
	}

	if s.Counters != nil {
		snap := s.Counters.Snapshot()
		for _, cs := range counterSeries {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", cs.name, cs.help, cs.name, cs.name, cs.value(snap))
		}
		// WAL group-commit batch size as a Prometheus summary: sum is the
		// records flushed, count the commits, so sum/count is the mean
		// batch size (securestore_wal_batch_size).
		fmt.Fprint(w, "# HELP securestore_wal_batch_size Records per write-ahead-log group commit.\n# TYPE securestore_wal_batch_size summary\n")
		fmt.Fprintf(w, "securestore_wal_batch_size_sum %d\n", snap.WALBatchRecords)
		fmt.Fprintf(w, "securestore_wal_batch_size_count %d\n", snap.WALBatches)
		// Admission batching and transport coalescing effectiveness: how
		// many signatures ride one verify batch, and how many reply frames
		// ride one vectored write.
		writeSizeHistogram(w, "securestore_verify_batch_size", "Signatures per admission verify batch.", s.Counters.VerifyBatchSizes())
		writeSizeHistogram(w, "securestore_writev_frames_per_call", "Reply frames per coalesced vectored write.", s.Counters.WritevFrameSizes())
		// Erasure-coding kernel visibility: how long the client spends in
		// IDA encode (Split + cross-checksum) and decode (Reconstruct +
		// consistency re-check) per fragmented operation.
		writeTimeHistogram(w, "securestore_fragment_encode_seconds", "IDA dispersal time per fragmented write.", s.Counters.FragEncodeHist())
		writeTimeHistogram(w, "securestore_fragment_decode_seconds", "IDA reconstruction time per fragmented read.", s.Counters.FragDecodeHist())
		writeLabeledBytes(w, "securestore_tx_bytes_total", "Wire bytes sent, by operation.", snap.TxBytes)
		writeLabeledBytes(w, "securestore_rx_bytes_total", "Wire bytes received, by operation.", snap.RxBytes)
		if len(snap.ShardOps) > 0 {
			shards := make([]string, 0, len(snap.ShardOps))
			for shard := range snap.ShardOps {
				shards = append(shards, shard)
			}
			sort.Strings(shards)
			fmt.Fprint(w, "# HELP securestore_shard_ops_total Requests attributed to each shard (served on a replica, routed on a client).\n# TYPE securestore_shard_ops_total counter\n")
			for _, shard := range shards {
				fmt.Fprintf(w, "securestore_shard_ops_total{shard=%q} %d\n", shard, snap.ShardOps[shard])
			}
		}
		if len(snap.Custom) > 0 {
			names := make([]string, 0, len(snap.Custom))
			for name := range snap.Custom {
				names = append(names, name)
			}
			sort.Strings(names)
			fmt.Fprint(w, "# HELP securestore_custom_total Named experiment-specific counters.\n# TYPE securestore_custom_total counter\n")
			for _, name := range names {
				fmt.Fprintf(w, "securestore_custom_total{name=%q} %d\n", name, snap.Custom[name])
			}
		}
	}

	if s.Latencies != nil {
		names := s.Latencies.Names()
		if len(names) > 0 {
			bounds := metrics.BucketBounds()
			fmt.Fprint(w, "# HELP securestore_op_latency_seconds Operation latency by traced operation.\n# TYPE securestore_op_latency_seconds histogram\n")
			for _, name := range names {
				snap := s.Latencies.Get(name).Snapshot()
				// Prometheus buckets are cumulative: each le bound counts
				// every sample at or below it, ending with le="+Inf".
				var cum uint64
				for i, c := range snap.Counts {
					cum += c
					if i < len(bounds) {
						le := strconv.FormatFloat(bounds[i].Seconds(), 'g', -1, 64)
						fmt.Fprintf(w, "securestore_op_latency_seconds_bucket{op=%q,le=%q} %d\n", name, le, cum)
					} else {
						fmt.Fprintf(w, "securestore_op_latency_seconds_bucket{op=%q,le=\"+Inf\"} %d\n", name, cum)
					}
				}
				fmt.Fprintf(w, "securestore_op_latency_seconds_sum{op=%q} %g\n", name, snap.Sum.Seconds())
				fmt.Fprintf(w, "securestore_op_latency_seconds_count{op=%q} %d\n", name, snap.Count)
			}
		}
	}
}

// metricsDoc is the JSON shape of /metrics?format=json.
type metricsDoc struct {
	// Info echoes State.Info.
	Info map[string]string `json:"info,omitempty"`
	// Counters is the counter snapshot (absent when no Counters are wired).
	Counters *metrics.Snapshot `json:"counters,omitempty"`
	// Histograms maps each traced operation to its latency snapshot,
	// percentiles included.
	Histograms map[string]metrics.HistSnapshot `json:"histograms,omitempty"`
	// SpansTotal and SpansRetained describe the trace ring.
	SpansTotal    uint64 `json:"spansTotal,omitempty"`
	SpansRetained int    `json:"spansRetained,omitempty"`
}

func serveMetricsJSON(w http.ResponseWriter, s State) {
	doc := metricsDoc{Info: s.Info}
	if s.Counters != nil {
		snap := s.Counters.Snapshot()
		doc.Counters = &snap
	}
	if s.Latencies != nil {
		doc.Histograms = s.Latencies.SnapshotAll()
	}
	if s.Tracer != nil {
		doc.SpansTotal = s.Tracer.Total()
		doc.SpansRetained = len(s.Tracer.Recent(0))
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

// defaultTraceLimit bounds /traces responses unless ?n= asks for more.
const defaultTraceLimit = 256

func serveTraces(w http.ResponseWriter, r *http.Request, s State) {
	n := defaultTraceLimit
	if raw := r.URL.Query().Get("n"); raw != "" {
		parsed, err := strconv.Atoi(raw)
		if err != nil || parsed < 0 {
			http.Error(w, "invalid n", http.StatusBadRequest)
			return
		}
		n = parsed
	}
	var spans []trace.Span
	if s.Tracer != nil {
		spans = s.Tracer.Recent(n)
	}
	if spans == nil {
		spans = []trace.Span{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(spans)
}
