package workload

import (
	"strings"
	"testing"
)

func TestDeterministicWithSeed(t *testing.T) {
	a := New(Config{Seed: 7, Items: 8, ReadFraction: 0.5})
	b := New(Config{Seed: 7, Items: 8, ReadFraction: 0.5})
	for i := 0; i < 100; i++ {
		opA, opB := a.Next(), b.Next()
		if opA.IsRead != opB.IsRead || opA.Item != opB.Item || string(opA.Value) != string(opB.Value) {
			t.Fatalf("iteration %d diverged: %+v vs %+v", i, opA, opB)
		}
	}
}

func TestReadFraction(t *testing.T) {
	g := New(Config{Seed: 1, Items: 4, ReadFraction: 0.7})
	reads := 0
	const total = 2000
	for i := 0; i < total; i++ {
		if g.Next().IsRead {
			reads++
		}
	}
	frac := float64(reads) / total
	if frac < 0.6 || frac > 0.8 {
		t.Fatalf("read fraction = %.2f, want ~0.7", frac)
	}
}

func TestAllReadsAllWrites(t *testing.T) {
	reads := New(Config{Seed: 1, Items: 2, ReadFraction: 1})
	for i := 0; i < 50; i++ {
		if !reads.Next().IsRead {
			t.Fatal("ReadFraction=1 produced a write")
		}
	}
	writes := New(Config{Seed: 1, Items: 2, ReadFraction: 0})
	for i := 0; i < 50; i++ {
		op := writes.Next()
		if op.IsRead {
			t.Fatal("ReadFraction=0 produced a read")
		}
		if len(op.Value) == 0 {
			t.Fatal("write op has empty value")
		}
	}
}

func TestForcedOps(t *testing.T) {
	g := New(Config{Seed: 1, Items: 2, ReadFraction: 0.5})
	if op := g.NextRead(); !op.IsRead {
		t.Fatal("NextRead produced a write")
	}
	if op := g.NextWrite(); op.IsRead || len(op.Value) == 0 {
		t.Fatal("NextWrite produced a read or empty value")
	}
}

func TestItemsNamedAndBounded(t *testing.T) {
	g := New(Config{Seed: 1, Items: 5, ItemPrefix: "doc"})
	items := g.Items()
	if len(items) != 5 {
		t.Fatalf("items = %d", len(items))
	}
	seen := make(map[string]bool)
	for i := 0; i < 500; i++ {
		op := g.Next()
		if !strings.HasPrefix(op.Item, "doc") {
			t.Fatalf("item %q missing prefix", op.Item)
		}
		seen[op.Item] = true
	}
	if len(seen) > 5 {
		t.Fatalf("saw %d distinct items, want <= 5", len(seen))
	}
}

func TestZipfSkew(t *testing.T) {
	g := New(Config{Seed: 3, Items: 32, ZipfSkew: 1.5, ReadFraction: 1})
	counts := make(map[string]int)
	const total = 5000
	for i := 0; i < total; i++ {
		counts[g.Next().Item]++
	}
	// The most popular item should dominate under heavy skew.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < total/4 {
		t.Fatalf("hottest item = %d of %d; zipf skew not in effect", max, total)
	}
}

func TestValueSizeAndUniqueness(t *testing.T) {
	g := New(Config{Seed: 1, Items: 2, ValueSize: 64})
	a, b := g.NextWrite(), g.NextWrite()
	if len(a.Value) != 64 || len(b.Value) != 64 {
		t.Fatalf("value sizes = %d/%d", len(a.Value), len(b.Value))
	}
	if string(a.Value) == string(b.Value) {
		t.Fatal("successive writes produced identical values")
	}
}

func TestHotFraction(t *testing.T) {
	g := New(Config{Seed: 5, Items: 64, ReadFraction: 1, HotFraction: 0.9, HotItems: 2})
	counts := make(map[string]int)
	const total = 5000
	for i := 0; i < total; i++ {
		counts[g.Next().Item]++
	}
	hot := counts["item000"] + counts["item001"]
	frac := float64(hot) / total
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("hot-set fraction = %.2f, want ~0.9", frac)
	}
	// The cold remainder still spreads over the whole keyspace.
	if len(counts) < 32 {
		t.Fatalf("saw only %d distinct items; cold tail not uniform", len(counts))
	}
}

func TestHotFractionDefaultsToOneItem(t *testing.T) {
	g := New(Config{Seed: 5, Items: 16, ReadFraction: 1, HotFraction: 1})
	for i := 0; i < 100; i++ {
		if item := g.Next().Item; item != "item000" {
			t.Fatalf("HotFraction=1 with default hot set picked %q", item)
		}
	}
}

func TestValueSizeDistribution(t *testing.T) {
	g := New(Config{Seed: 9, Items: 2, ValueSizes: []ValueSize{{Bytes: 64, Weight: 9}, {Bytes: 4096, Weight: 1}}})
	counts := make(map[int]int)
	const total = 2000
	for i := 0; i < total; i++ {
		counts[len(g.NextWrite().Value)]++
	}
	if len(counts) != 2 {
		t.Fatalf("value lengths = %v, want exactly {64, 4096}", counts)
	}
	small := float64(counts[64]) / total
	if small < 0.85 || small > 0.95 {
		t.Fatalf("small-value fraction = %.2f, want ~0.9", small)
	}
}

func TestValueSizesIgnoresInvalidBuckets(t *testing.T) {
	// Zero-weight and zero-byte buckets carry no mass; with no valid
	// bucket the fixed ValueSize applies.
	g := New(Config{Seed: 1, Items: 2, ValueSize: 32, ValueSizes: []ValueSize{{Bytes: 0, Weight: 5}, {Bytes: 99, Weight: 0}}})
	if n := len(g.NextWrite().Value); n != 32 {
		t.Fatalf("value length = %d, want fixed fallback 32", n)
	}
}

func TestDefaults(t *testing.T) {
	g := New(Config{})
	if len(g.Items()) == 0 {
		t.Fatal("default generator has no items")
	}
	op := g.NextWrite()
	if op.Item == "" || len(op.Value) == 0 {
		t.Fatalf("default op = %+v", op)
	}
}
