// Package workload generates deterministic operation streams for the
// experiments: configurable read/write mixes over a group of related data
// items, with uniform or zipfian item popularity and synthetic values of a
// chosen size. All randomness is seeded so every experiment is exactly
// reproducible.
//
// A Generator yields Op values (read or write of a named item); callers
// map them onto real client calls. The chaos soak (internal/chaos) drives
// its entire fault schedule against streams from this package, so the
// determinism guarantee here is what makes a failing chaos seed replay
// exactly.
package workload

import (
	"fmt"
	"math/rand"
)

// Config parameterizes a generator.
type Config struct {
	// Seed makes the stream reproducible.
	Seed int64
	// Items is the number of data items in the related group.
	Items int
	// ItemPrefix names items ("<prefix><k>").
	ItemPrefix string
	// ReadFraction in [0,1] is the probability an operation is a read.
	ReadFraction float64
	// ValueSize is the synthetic value length in bytes.
	ValueSize int
	// ZipfSkew > 1 selects zipfian item popularity with parameter s;
	// zero selects uniform.
	ZipfSkew float64
}

// Op is one generated operation.
type Op struct {
	IsRead bool
	Item   string
	Value  []byte
}

// Generator produces operations.
type Generator struct {
	cfg   Config
	rng   *rand.Rand
	zipf  *rand.Zipf
	items []string
	seq   uint64
}

// New creates a generator.
func New(cfg Config) *Generator {
	if cfg.Items <= 0 {
		cfg.Items = 16
	}
	if cfg.ItemPrefix == "" {
		cfg.ItemPrefix = "item"
	}
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = 128
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &Generator{cfg: cfg, rng: rng}
	for i := 0; i < cfg.Items; i++ {
		g.items = append(g.items, fmt.Sprintf("%s%03d", cfg.ItemPrefix, i))
	}
	if cfg.ZipfSkew > 1 {
		g.zipf = rand.NewZipf(rng, cfg.ZipfSkew, 1, uint64(cfg.Items-1))
	}
	return g
}

// Items returns the group's item names.
func (g *Generator) Items() []string {
	return append([]string(nil), g.items...)
}

// Next returns the next operation in the stream.
func (g *Generator) Next() Op {
	g.seq++
	op := Op{
		IsRead: g.rng.Float64() < g.cfg.ReadFraction,
		Item:   g.items[g.pick()],
	}
	if !op.IsRead {
		op.Value = g.value()
	}
	return op
}

// NextWrite returns the next operation forced to be a write.
func (g *Generator) NextWrite() Op {
	g.seq++
	return Op{Item: g.items[g.pick()], Value: g.value()}
}

// NextRead returns the next operation forced to be a read.
func (g *Generator) NextRead() Op {
	g.seq++
	return Op{IsRead: true, Item: g.items[g.pick()]}
}

func (g *Generator) pick() int {
	if g.zipf != nil {
		return int(g.zipf.Uint64())
	}
	return g.rng.Intn(len(g.items))
}

// value builds a distinguishable synthetic payload: a header containing
// the sequence number followed by pseudo-random filler.
func (g *Generator) value() []byte {
	v := make([]byte, g.cfg.ValueSize)
	copy(v, fmt.Sprintf("v%08d|", g.seq))
	for i := 10; i < len(v); i++ {
		v[i] = byte('a' + g.rng.Intn(26))
	}
	return v
}
