// Package workload generates deterministic operation streams for the
// experiments: configurable read/write mixes over a group of related data
// items, with uniform or zipfian item popularity and synthetic values of a
// chosen size. All randomness is seeded so every experiment is exactly
// reproducible.
//
// A Generator yields Op values (read or write of a named item); callers
// map them onto real client calls. The chaos soak (internal/chaos) drives
// its entire fault schedule against streams from this package, so the
// determinism guarantee here is what makes a failing chaos seed replay
// exactly.
package workload

import (
	"fmt"
	"math/rand"
)

// Config parameterizes a generator.
type Config struct {
	// Seed makes the stream reproducible.
	Seed int64
	// Items is the number of data items in the related group.
	Items int
	// ItemPrefix names items ("<prefix><k>").
	ItemPrefix string
	// ReadFraction in [0,1] is the probability an operation is a read.
	ReadFraction float64
	// ValueSize is the synthetic value length in bytes.
	ValueSize int
	// ZipfSkew > 1 selects zipfian item popularity with parameter s;
	// zero selects uniform.
	ZipfSkew float64
	// HotFraction in (0,1], with HotItems > 0, overlays a hot-key mix on
	// top of the base distribution: each pick lands in the hot set (the
	// first HotItems items) with probability HotFraction, spread uniformly
	// inside it, and follows the base (uniform or zipfian) distribution
	// otherwise. An 0.9/HotItems=1 setting is the classic "90% of traffic
	// on one key" stress for shard balance. Zero disables the overlay.
	HotFraction float64
	// HotItems sizes the hot set (default 1 when HotFraction is set).
	HotItems int
	// ValueSizes, when non-empty, draws each written value's length from
	// this weighted distribution instead of the fixed ValueSize — e.g.
	// {{64, 9}, {4096, 1}} for a 90/10 small/large mix. Weights are
	// relative, not percentages.
	ValueSizes []ValueSize
}

// ValueSize is one bucket of the value-length distribution.
type ValueSize struct {
	// Bytes is the value length drawn for this bucket.
	Bytes int
	// Weight is the bucket's relative probability mass (must be > 0).
	Weight int
}

// Op is one generated operation.
type Op struct {
	IsRead bool
	Item   string
	Value  []byte
}

// Generator produces operations.
type Generator struct {
	cfg         Config
	rng         *rand.Rand
	zipf        *rand.Zipf
	items       []string
	seq         uint64
	totalWeight int
}

// New creates a generator.
func New(cfg Config) *Generator {
	if cfg.Items <= 0 {
		cfg.Items = 16
	}
	if cfg.ItemPrefix == "" {
		cfg.ItemPrefix = "item"
	}
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = 128
	}
	if cfg.HotFraction > 0 && cfg.HotItems <= 0 {
		cfg.HotItems = 1
	}
	if cfg.HotItems > cfg.Items {
		cfg.HotItems = cfg.Items
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &Generator{cfg: cfg, rng: rng}
	for i := 0; i < cfg.Items; i++ {
		g.items = append(g.items, fmt.Sprintf("%s%03d", cfg.ItemPrefix, i))
	}
	if cfg.ZipfSkew > 1 {
		g.zipf = rand.NewZipf(rng, cfg.ZipfSkew, 1, uint64(cfg.Items-1))
	}
	for _, vs := range cfg.ValueSizes {
		if vs.Weight > 0 && vs.Bytes > 0 {
			g.totalWeight += vs.Weight
		}
	}
	return g
}

// Items returns the group's item names.
func (g *Generator) Items() []string {
	return append([]string(nil), g.items...)
}

// Next returns the next operation in the stream.
func (g *Generator) Next() Op {
	g.seq++
	op := Op{
		IsRead: g.rng.Float64() < g.cfg.ReadFraction,
		Item:   g.items[g.pick()],
	}
	if !op.IsRead {
		op.Value = g.value()
	}
	return op
}

// NextWrite returns the next operation forced to be a write.
func (g *Generator) NextWrite() Op {
	g.seq++
	return Op{Item: g.items[g.pick()], Value: g.value()}
}

// NextRead returns the next operation forced to be a read.
func (g *Generator) NextRead() Op {
	g.seq++
	return Op{IsRead: true, Item: g.items[g.pick()]}
}

func (g *Generator) pick() int {
	if g.cfg.HotFraction > 0 && g.rng.Float64() < g.cfg.HotFraction {
		return g.rng.Intn(g.cfg.HotItems)
	}
	if g.zipf != nil {
		return int(g.zipf.Uint64())
	}
	return g.rng.Intn(len(g.items))
}

// valueSize draws one value length: the weighted ValueSizes distribution
// when configured, the fixed ValueSize otherwise.
func (g *Generator) valueSize() int {
	if g.totalWeight == 0 {
		return g.cfg.ValueSize
	}
	draw := g.rng.Intn(g.totalWeight)
	for _, vs := range g.cfg.ValueSizes {
		if vs.Weight <= 0 || vs.Bytes <= 0 {
			continue
		}
		if draw < vs.Weight {
			return vs.Bytes
		}
		draw -= vs.Weight
	}
	return g.cfg.ValueSize // unreachable when totalWeight > 0
}

// value builds a distinguishable synthetic payload: a header containing
// the sequence number followed by pseudo-random filler.
func (g *Generator) value() []byte {
	v := make([]byte, g.valueSize())
	copy(v, fmt.Sprintf("v%08d|", g.seq))
	for i := 10; i < len(v); i++ {
		v[i] = byte('a' + g.rng.Intn(26))
	}
	return v
}
