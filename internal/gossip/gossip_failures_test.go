package gossip

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"securestore/internal/server"
	"securestore/internal/transport"
	"securestore/internal/wire"
)

// TestMalformedPushAckDoesNotAdvance is the regression test for the
// high-water-mark bug: a Byzantine peer acknowledging a push with a
// malformed reply must not count as delivery. Before the fix, pushTo
// advanced acked[peer] before checking the reply's type, so the peer was
// permanently skipped over those writes.
func TestMalformedPushAckDoesNotAdvance(t *testing.T) {
	m := newMesh(t, 2)
	honest := m.servers[1]

	// An equivocating peer: accepts the push but answers with a reply of
	// the wrong type, swallowing the writes it claims to acknowledge.
	m.bus.Register("b", transport.HandlerFunc(
		func(ctx context.Context, from string, req wire.Request) (wire.Response, error) {
			if _, ok := req.(wire.GossipPushReq); ok {
				return wire.Ack{}, nil // well-received, wrongly acked, never applied
			}
			return honest.ServeRequest(ctx, from, req)
		}))

	m.writeTo(t, 0, "x", []byte("v"), 1)
	if applied := m.engines[0].PushAll(); applied != 0 {
		t.Fatalf("malformed ack counted as %d applied writes", applied)
	}
	if honest.Head("g", "x") != nil {
		t.Fatal("test setup: the equivocating handler should have swallowed the write")
	}

	// The peer stops equivocating: the very next push must retry the same
	// writes — they were never acknowledged properly.
	m.bus.Register("b", honest)
	if applied := m.engines[0].PushAll(); applied != 1 {
		t.Fatalf("retry after honest ack applied %d writes, want 1", applied)
	}
	if honest.Head("g", "x") == nil {
		t.Fatal("peer never received the write after the malformed ack")
	}
}

// TestConvergeRespectsPullMode is the regression test for Converge
// driving PushAll on every engine regardless of mode: a pull-only
// deployment must converge through GossipPullReq traffic only.
func TestConvergeRespectsPullMode(t *testing.T) {
	m := newMesh(t, 3, WithMode(Pull))
	var pushes atomic.Int64
	for i, name := range []string{"a", "b", "c"} {
		srv := m.servers[i]
		m.bus.Register(name, transport.HandlerFunc(
			func(ctx context.Context, from string, req wire.Request) (wire.Response, error) {
				if _, ok := req.(wire.GossipPushReq); ok {
					pushes.Add(1)
				}
				return srv.ServeRequest(ctx, from, req)
			}))
	}

	m.writeTo(t, 0, "x", []byte("v"), 1)
	Converge(m.engines, 20)
	for i, srv := range m.servers {
		if srv.Head("g", "x") == nil {
			t.Fatalf("server %d did not converge by pulling", i)
		}
	}
	if n := pushes.Load(); n != 0 {
		t.Fatalf("pull-only convergence sent %d pushes, want 0", n)
	}
}

// TestPushPullConvergeUsesBothDirections: a push-pull engine converges
// even when its peer lied to pushes while Byzantine — the pull direction
// closes the gap the lying acknowledgements opened.
func TestPushPullConvergeUsesBothDirections(t *testing.T) {
	m := newMesh(t, 2, WithMode(PushPull))
	// Peer b goes stale: it acks pushes without applying them.
	m.servers[1].SetFault(server.Stale)
	m.writeTo(t, 0, "x", []byte("v"), 1)
	m.engines[0].PushAll() // acked[b] advances over the lie
	m.servers[1].SetFault(server.Healthy)

	Converge(m.engines, 20)
	if m.servers[1].Head("g", "x") == nil {
		t.Fatal("push-pull convergence never closed the gap a lying ack opened")
	}
}

// TestPerPeerFailureBackoff: a dead peer is probed ever more rarely
// instead of consuming fanout and timeout budget every round, and is
// caught up promptly once it heals.
func TestPerPeerFailureBackoff(t *testing.T) {
	m := newMesh(t, 3, WithTimeout(50*time.Millisecond))
	dead := m.servers[1]
	var calls atomic.Int64
	m.bus.Register("b", transport.HandlerFunc(
		func(ctx context.Context, from string, req wire.Request) (wire.Response, error) {
			calls.Add(1)
			return dead.ServeRequest(ctx, from, req)
		}))
	dead.SetFault(server.Crash)

	// Fresh write every round, so every round wants to push to b.
	rounds := 40
	for i := 1; i <= rounds; i++ {
		m.writeTo(t, 0, "x", []byte{byte(i)}, uint64(i))
		m.engines[0].Round()
	}
	if n := calls.Load(); n >= int64(rounds) || n == 0 {
		t.Fatalf("dead peer probed %d times over %d rounds, want a backed-off handful", n, rounds)
	}
	// The healthy peer was never starved.
	if m.servers[2].Head("g", "x") == nil {
		t.Fatal("healthy peer starved while the dead peer backed off")
	}

	// Heal: within maxPeerBackoff rounds the peer is probed again and
	// catches up.
	dead.SetFault(server.Healthy)
	for i := 0; i < maxPeerBackoff+1; i++ {
		m.engines[0].Round()
	}
	if dead.Head("g", "x") == nil {
		t.Fatal("healed peer never caught up after backoff")
	}
}

// TestPullResyncsAfterPeerRestart: a restarted peer renumbers its update
// log, so a puller holding a pre-crash high-water mark would silently
// skip everything the peer accepts after the restart. The epoch in pull
// replies forces the mark back to zero.
func TestPullResyncsAfterPeerRestart(t *testing.T) {
	m := newMesh(t, 2, WithMode(Pull))
	for i := 1; i <= 5; i++ {
		m.writeTo(t, 0, "x", []byte{byte(i)}, uint64(i))
	}
	if applied := m.engines[1].PullAll(); applied == 0 {
		t.Fatal("initial pull applied nothing")
	}

	// Peer a restarts with no WAL: its state and update log are empty and
	// its sequence numbers restart from zero — far below b's mark of 5.
	if err := m.servers[0].Restart(); err != nil {
		t.Fatal(err)
	}
	m.writeTo(t, 0, "y", []byte("post"), 1)

	// First pull observes the epoch change and resets the mark; the next
	// one fetches the renumbered log from the start.
	m.engines[1].PullAll()
	m.engines[1].PullAll()
	if m.servers[1].Head("g", "y") == nil {
		t.Fatal("puller skipped the restarted peer's renumbered updates")
	}
}

// TestStaleEngineDoesNotBurnPullMarks: while a replica is stale it
// discards fresh updates, so its engine must not pull (advancing the
// high-water mark over writes that were never integrated would leave a
// permanent gap after healing).
func TestStaleEngineDoesNotBurnPullMarks(t *testing.T) {
	m := newMesh(t, 2, WithMode(Pull))
	m.servers[1].SetFault(server.Stale)
	for i := 1; i <= 3; i++ {
		m.writeTo(t, 0, "x", []byte{byte(i)}, uint64(i))
	}
	if applied := m.engines[1].PullAll(); applied != 0 {
		t.Fatalf("stale engine pulled %d writes", applied)
	}
	m.servers[1].SetFault(server.Healthy)
	if applied := m.engines[1].PullAll(); applied == 0 {
		t.Fatal("healed replica pulled nothing — its mark was burnt while stale")
	}
	if head := m.servers[1].Head("g", "x"); head == nil || head.Stamp.Time != 3 {
		t.Fatalf("healed replica head = %v, want stamp 3", head)
	}
}
