// Package gossip implements the dissemination component of the secure
// store (Section 4): "servers keep themselves informed about updates in
// which they do not directly participate via a gossip or dissemination
// protocol". The paper deliberately leaves the mechanism open, requiring
// only that non-faulty servers eventually exchange signed updates; this
// implementation offers push anti-entropy (each round, a server forwards
// entire signed write messages its peer has not acknowledged to a random
// subset of peers), pull anti-entropy (a server fetches what it missed —
// how a rejoining replica catches up), and the classic push-pull
// combination, with the round period and fanout as the tuning knobs whose
// effect experiment E4 measures.
package gossip

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"securestore/internal/server"
	"securestore/internal/transport"
	"securestore/internal/wire"
)

// Mode selects the anti-entropy direction(s) an engine uses each round.
type Mode int

// Gossip modes. Push spreads fresh writes fastest; pull lets a lagging or
// rejoining replica catch up at its own initiative; PushPull does both —
// the classic epidemic combination (ref [7]).
const (
	Push Mode = iota + 1
	Pull
	PushPull
)

// Engine runs dissemination for one replica.
type Engine struct {
	srv    *server.Server
	caller transport.Caller
	peers  []string

	interval time.Duration
	fanout   int
	timeout  time.Duration
	mode     Mode

	mu     sync.Mutex
	rng    *rand.Rand
	acked  map[string]uint64 // per-peer high-water: what we pushed to them
	pulled map[string]uint64 // per-peer high-water: what we pulled from them

	started  bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// Option configures an Engine.
type Option interface{ apply(*Engine) }

type optionFunc func(*Engine)

func (f optionFunc) apply(e *Engine) { f(e) }

// WithInterval sets the gossip round period (default 50ms).
func WithInterval(d time.Duration) Option {
	return optionFunc(func(e *Engine) { e.interval = d })
}

// WithFanout sets how many peers are pushed to per round (default 2).
func WithFanout(k int) Option {
	return optionFunc(func(e *Engine) { e.fanout = k })
}

// WithTimeout sets the per-push call timeout (default 2s).
func WithTimeout(d time.Duration) Option {
	return optionFunc(func(e *Engine) { e.timeout = d })
}

// WithSeed seeds peer selection for reproducible experiments.
func WithSeed(seed int64) Option {
	return optionFunc(func(e *Engine) { e.rng = rand.New(rand.NewSource(seed)) })
}

// WithMode selects push, pull, or push-pull anti-entropy (default Push).
func WithMode(m Mode) Option {
	return optionFunc(func(e *Engine) { e.mode = m })
}

// New creates a gossip engine for srv, pushing through caller to peers
// (the other servers' names).
func New(srv *server.Server, caller transport.Caller, peers []string, opts ...Option) *Engine {
	e := &Engine{
		srv:      srv,
		caller:   caller,
		peers:    append([]string(nil), peers...),
		interval: 50 * time.Millisecond,
		fanout:   2,
		timeout:  2 * time.Second,
		mode:     Push,
		rng:      rand.New(rand.NewSource(time.Now().UnixNano())),
		acked:    make(map[string]uint64),
		pulled:   make(map[string]uint64),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, opt := range opts {
		opt.apply(e)
	}
	if e.fanout > len(e.peers) {
		e.fanout = len(e.peers)
	}
	return e
}

// Start launches the background gossip loop. Calling Start more than once
// is a no-op.
func (e *Engine) Start() {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return
	}
	e.started = true
	e.mu.Unlock()
	go e.loop()
}

// Stop terminates the loop and waits for it to exit. Stopping a never
// started engine returns immediately.
func (e *Engine) Stop() {
	e.stopOnce.Do(func() { close(e.stop) })
	e.mu.Lock()
	started := e.started
	e.mu.Unlock()
	if started {
		<-e.done
	}
}

func (e *Engine) loop() {
	defer close(e.done)
	ticker := time.NewTicker(e.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			e.Round()
		case <-e.stop:
			return
		}
	}
}

// Round performs one gossip round against fanout randomly chosen peers,
// in the configured mode. It returns the total number of writes exchanged
// (applied remotely by pushes plus applied locally by pulls). Exposed so
// tests and experiments can drive gossip deterministically.
func (e *Engine) Round() int {
	peers := e.pickPeers()
	applied := 0
	for _, peer := range peers {
		if e.mode == Push || e.mode == PushPull {
			applied += e.pushTo(peer)
		}
		if e.mode == Pull || e.mode == PushPull {
			applied += e.pullFrom(peer)
		}
	}
	return applied
}

// PushAll pushes pending updates to every peer once (used by convergence
// helpers).
func (e *Engine) PushAll() int {
	applied := 0
	for _, peer := range e.peers {
		applied += e.pushTo(peer)
	}
	return applied
}

// PullAll pulls pending updates from every peer once.
func (e *Engine) PullAll() int {
	applied := 0
	for _, peer := range e.peers {
		applied += e.pullFrom(peer)
	}
	return applied
}

func (e *Engine) pickPeers() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.fanout >= len(e.peers) {
		return append([]string(nil), e.peers...)
	}
	idx := e.rng.Perm(len(e.peers))[:e.fanout]
	out := make([]string, 0, e.fanout)
	for _, i := range idx {
		out = append(out, e.peers[i])
	}
	return out
}

func (e *Engine) pushTo(peer string) int {
	// A crashed or mute replica sends nothing; other fault modes may keep
	// gossiping (their pushes are self-verifying signed writes anyway).
	if f := e.srv.Fault(); f == server.Crash || f == server.Mute {
		return 0
	}
	e.mu.Lock()
	after := e.acked[peer]
	e.mu.Unlock()

	writes, seq := e.srv.UpdatesSince(after)
	if len(writes) == 0 {
		return 0
	}

	ctx, cancel := context.WithTimeout(context.Background(), e.timeout)
	defer cancel()
	resp, err := e.caller.Call(ctx, peer, wire.GossipPushReq{From: e.srv.ID(), Writes: writes})
	if err != nil {
		return 0
	}
	e.mu.Lock()
	if seq > e.acked[peer] {
		e.acked[peer] = seq
	}
	e.mu.Unlock()
	if ack, ok := resp.(wire.GossipPushResp); ok {
		return ack.Applied
	}
	return 0
}

// pullFrom fetches the peer's updates past our high-water mark and
// applies them locally through full validation.
func (e *Engine) pullFrom(peer string) int {
	if f := e.srv.Fault(); f == server.Crash || f == server.Mute {
		return 0
	}
	e.mu.Lock()
	after := e.pulled[peer]
	e.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), e.timeout)
	defer cancel()
	resp, err := e.caller.Call(ctx, peer, wire.GossipPullReq{From: e.srv.ID(), After: after})
	if err != nil {
		return 0
	}
	pr, ok := resp.(wire.GossipPullResp)
	if !ok {
		return 0
	}
	applied := 0
	for _, w := range pr.Writes {
		if e.srv.ApplyDisseminated(w) {
			applied++
		}
	}
	e.mu.Lock()
	if pr.Seq > e.pulled[peer] {
		e.pulled[peer] = pr.Seq
	}
	e.mu.Unlock()
	return applied
}

// Converge drives rounds across all engines until a full sweep applies no
// new writes anywhere (or maxSweeps is hit). It returns the number of
// sweeps performed. Used by tests and experiments that need the store fully
// disseminated before measuring.
func Converge(engines []*Engine, maxSweeps int) int {
	for sweep := 1; sweep <= maxSweeps; sweep++ {
		applied := 0
		for _, e := range engines {
			applied += e.PushAll()
		}
		if applied == 0 {
			return sweep
		}
	}
	return maxSweeps
}
