// Package gossip implements the dissemination component of the secure
// store (Section 4): "servers keep themselves informed about updates in
// which they do not directly participate via a gossip or dissemination
// protocol". The paper deliberately leaves the mechanism open, requiring
// only that non-faulty servers eventually exchange signed updates; this
// implementation offers push anti-entropy (each round, a server forwards
// entire signed write messages its peer has not acknowledged to a random
// subset of peers), pull anti-entropy (a server fetches what it missed —
// how a rejoining replica catches up), and the classic push-pull
// combination, with the round period and fanout as the tuning knobs whose
// effect experiment E4 measures.
package gossip

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"securestore/internal/server"
	"securestore/internal/trace"
	"securestore/internal/transport"
	"securestore/internal/wire"
)

// Mode selects the anti-entropy direction(s) an engine uses each round.
type Mode int

// Gossip modes. Push spreads fresh writes fastest; pull lets a lagging or
// rejoining replica catch up at its own initiative; PushPull does both —
// the classic epidemic combination (ref [7]).
const (
	Push Mode = iota + 1
	Pull
	PushPull
)

// Engine runs dissemination for one replica.
type Engine struct {
	srv    *server.Server
	caller transport.Caller
	peers  []string

	interval time.Duration
	fanout   int
	timeout  time.Duration
	mode     Mode
	batch    int
	tracer   *trace.Tracer

	mu        sync.Mutex
	rng       *rand.Rand
	acked     map[string]uint64 // per-peer high-water: what we pushed to them
	pulled    map[string]uint64 // per-peer high-water: what we pulled from them
	peerEpoch map[string]uint64 // last epoch seen in a peer's pull reply
	selfEpoch uint64            // our server's epoch when acked was last valid
	round     int               // Round() invocations, for failure backoff
	fails     map[string]int    // consecutive failed exchanges per peer
	nextTry   map[string]int    // round before which a failing peer is skipped

	started  bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// maxPeerBackoff caps the per-peer failure backoff at this many rounds, so
// a recovered peer is re-probed within a bounded delay.
const maxPeerBackoff = 32

// maxPullPages bounds how many reply pages one pullFrom exchange will
// follow. A Byzantine peer answering More=true forever must not pin the
// puller in an endless loop; the cap is generous enough (batch×pages
// writes) that an honest catch-up never hits it.
const maxPullPages = 1024

// Option configures an Engine.
type Option interface{ apply(*Engine) }

type optionFunc func(*Engine)

func (f optionFunc) apply(e *Engine) { f(e) }

// WithInterval sets the gossip round period (default 50ms).
func WithInterval(d time.Duration) Option {
	return optionFunc(func(e *Engine) { e.interval = d })
}

// WithFanout sets how many peers are pushed to per round (default 2).
func WithFanout(k int) Option {
	return optionFunc(func(e *Engine) { e.fanout = k })
}

// WithTimeout sets the per-push call timeout (default 2s).
func WithTimeout(d time.Duration) Option {
	return optionFunc(func(e *Engine) { e.timeout = d })
}

// WithSeed seeds peer selection for reproducible experiments.
func WithSeed(seed int64) Option {
	return optionFunc(func(e *Engine) { e.rng = rand.New(rand.NewSource(seed)) })
}

// WithTracer records each gossip round — and its per-peer push/pull
// exchanges — as spans on t. Nil disables tracing (the default).
func WithTracer(t *trace.Tracer) Option {
	return optionFunc(func(e *Engine) { e.tracer = t })
}

// WithMode selects push, pull, or push-pull anti-entropy (default Push).
func WithMode(m Mode) Option {
	return optionFunc(func(e *Engine) { e.mode = m })
}

// WithBatchSize caps the writes carried per gossip frame (default
// wire.DefaultGossipBatch). Pushes chunk their backlog into batches of n,
// and pulls ask peers for pages of at most n, so no single frame ever
// materializes an unbounded write slice. Non-positive n keeps the default.
func WithBatchSize(n int) Option {
	return optionFunc(func(e *Engine) {
		if n > 0 {
			e.batch = n
		}
	})
}

// New creates a gossip engine for srv, pushing through caller to peers
// (the other servers' names).
func New(srv *server.Server, caller transport.Caller, peers []string, opts ...Option) *Engine {
	e := &Engine{
		srv:       srv,
		caller:    caller,
		peers:     append([]string(nil), peers...),
		interval:  50 * time.Millisecond,
		fanout:    2,
		timeout:   2 * time.Second,
		mode:      Push,
		batch:     wire.DefaultGossipBatch,
		rng:       rand.New(rand.NewSource(time.Now().UnixNano())),
		acked:     make(map[string]uint64),
		pulled:    make(map[string]uint64),
		peerEpoch: make(map[string]uint64),
		selfEpoch: srv.Epoch(),
		fails:     make(map[string]int),
		nextTry:   make(map[string]int),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	for _, opt := range opts {
		opt.apply(e)
	}
	if e.fanout > len(e.peers) {
		e.fanout = len(e.peers)
	}
	return e
}

// Start launches the background gossip loop. Calling Start more than once
// is a no-op.
func (e *Engine) Start() {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return
	}
	e.started = true
	e.mu.Unlock()
	go e.loop()
}

// Stop terminates the loop and waits for it to exit. Stopping a never
// started engine returns immediately.
func (e *Engine) Stop() {
	e.stopOnce.Do(func() { close(e.stop) })
	e.mu.Lock()
	started := e.started
	e.mu.Unlock()
	if started {
		<-e.done
	}
}

func (e *Engine) loop() {
	defer close(e.done)
	ticker := time.NewTicker(e.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			e.Round()
		case <-e.stop:
			return
		}
	}
}

// Round performs one gossip round against fanout randomly chosen peers,
// in the configured mode. Peers whose recent exchanges failed are skipped
// for an exponentially growing number of rounds (capped at
// maxPeerBackoff), so a crashed or partitioned-away peer does not consume
// the round's fanout — and its timeout budget — every period. Round
// returns the total number of writes exchanged (applied remotely by
// pushes plus applied locally by pulls). Exposed so tests and experiments
// can drive gossip deterministically.
func (e *Engine) Round() int {
	e.mu.Lock()
	e.round++
	e.mu.Unlock()
	ctx, sp := trace.StartRoot(context.Background(), e.tracer, "gossip.round")
	e.resyncEpoch()
	peers := e.pickPeers()
	applied := 0
	for _, peer := range peers {
		if e.mode == Push || e.mode == PushPull {
			applied += e.pushTo(ctx, peer)
		}
		if e.mode == Pull || e.mode == PushPull {
			applied += e.pullFrom(ctx, peer)
		}
	}
	sp.SetAttr("peers", fmt.Sprint(len(peers)))
	sp.SetAttr("applied", fmt.Sprint(applied))
	sp.End()
	return applied
}

// PushAll pushes pending updates to every peer once (used by convergence
// helpers). It ignores the failure backoff: convergence helpers want a
// deterministic full sweep.
func (e *Engine) PushAll() int {
	ctx := trace.WithTracer(context.Background(), e.tracer)
	e.resyncEpoch()
	applied := 0
	for _, peer := range e.peers {
		applied += e.pushTo(ctx, peer)
	}
	return applied
}

// PullAll pulls pending updates from every peer once, ignoring the
// failure backoff.
func (e *Engine) PullAll() int {
	ctx := trace.WithTracer(context.Background(), e.tracer)
	applied := 0
	for _, peer := range e.peers {
		applied += e.pullFrom(ctx, peer)
	}
	return applied
}

// resyncEpoch detects that our own server restarted (its epoch changed):
// the rebuilt update log renumbers entries, so every push high-water mark
// is stale and pushing must restart from zero. Writes are self-verifying
// and deduplicated by receivers, so over-pushing is safe; skipping is not.
func (e *Engine) resyncEpoch() {
	epoch := e.srv.Epoch()
	e.mu.Lock()
	defer e.mu.Unlock()
	if epoch != e.selfEpoch {
		e.selfEpoch = epoch
		e.acked = make(map[string]uint64)
	}
}

// pickPeers selects up to fanout peers that are not in failure backoff.
func (e *Engine) pickPeers() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	eligible := make([]string, 0, len(e.peers))
	for _, p := range e.peers {
		if e.round >= e.nextTry[p] {
			eligible = append(eligible, p)
		}
	}
	if e.fanout >= len(eligible) {
		return eligible
	}
	idx := e.rng.Perm(len(eligible))[:e.fanout]
	out := make([]string, 0, e.fanout)
	for _, i := range idx {
		out = append(out, eligible[i])
	}
	return out
}

// recordExchange tracks per-peer success/failure for the backoff: each
// consecutive failure doubles the number of rounds the peer is skipped,
// up to maxPeerBackoff; any success resets it.
func (e *Engine) recordExchange(peer string, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if ok {
		delete(e.fails, peer)
		delete(e.nextTry, peer)
		return
	}
	e.fails[peer]++
	backoff := 1 << min(e.fails[peer], 10)
	if backoff > maxPeerBackoff {
		backoff = maxPeerBackoff
	}
	e.nextTry[peer] = e.round + backoff
}

func (e *Engine) pushTo(parent context.Context, peer string) int {
	// A crashed or mute replica sends nothing; other fault modes may keep
	// gossiping (their pushes are self-verifying signed writes anyway).
	if f := e.srv.Fault(); f == server.Crash || f == server.Mute {
		return 0
	}
	e.mu.Lock()
	after := e.acked[peer]
	e.mu.Unlock()

	writes, seq := e.srv.UpdatesSince(after)
	if len(writes) == 0 {
		return 0
	}

	sp := trace.Leaf(parent, "gossip.push")
	sp.SetAttr("peer", peer)
	sp.SetAttr("writes", fmt.Sprint(len(writes)))
	sp.SetAttr("frames", fmt.Sprint((len(writes)+e.batch-1)/e.batch))
	defer sp.End()
	// The backlog ships in bounded chunks (batch writes per frame). The
	// high-water mark advances only after every chunk is acknowledged: a
	// mid-backlog failure re-pushes from the start next round, which is
	// safe (receivers deduplicate) where skipping would not be.
	applied := 0
	for start := 0; start < len(writes); start += e.batch {
		chunk := writes[start:min(start+e.batch, len(writes))]
		ctx, cancel := context.WithTimeout(parent, e.timeout)
		resp, err := e.caller.Call(ctx, peer, wire.GossipPushReq{From: e.srv.ID(), Writes: chunk})
		cancel()
		if err != nil {
			sp.SetError(err)
			e.recordExchange(peer, false)
			return applied
		}
		ack, ok := resp.(wire.GossipPushResp)
		if !ok {
			// A Byzantine peer answering with a malformed ack must not count
			// as delivery: advancing the high-water mark here would make this
			// pusher permanently skip these writes for that peer.
			e.recordExchange(peer, false)
			return applied
		}
		applied += ack.Applied
	}
	e.recordExchange(peer, true)
	e.mu.Lock()
	if seq > e.acked[peer] {
		e.acked[peer] = seq
	}
	e.mu.Unlock()
	return applied
}

// pullFrom fetches the peer's updates past our high-water mark and
// applies them locally through full validation.
func (e *Engine) pullFrom(parent context.Context, peer string) int {
	// A stale replica discards fresh updates (it serves only its oldest
	// state), so pulling while stale would advance the high-water mark
	// over writes that were never integrated — leaving a permanent gap
	// once the replica heals. Skip, and catch up after healing.
	if f := e.srv.Fault(); f == server.Crash || f == server.Mute || f == server.Stale {
		return 0
	}
	sp := trace.Leaf(parent, "gossip.pull")
	sp.SetAttr("peer", peer)
	defer sp.End()
	applied := 0
	pages := 0
	for attempt := 0; attempt < 2; attempt++ {
		e.mu.Lock()
		after := e.pulled[peer]
		e.mu.Unlock()

		// One exchange may span several bounded pages. In-window pages
		// advance After (each page's Seq is its last entry) and are adopted
		// immediately; state-transfer pages keep After fixed and walk the
		// peer's item keys via Cursor, adopting the first page's Seq
		// snapshot only when the transfer completes — a write the peer
		// accepts mid-transfer has a higher sequence number than that
		// snapshot, so the next in-window pull fetches it even if its item
		// key was already swept past.
		cursor := ""
		var transferSeq uint64
		transferring := false
		restarted := false
		for {
			pages++
			if pages > maxPullPages {
				// A Byzantine peer can answer More=true forever; bound the
				// work per exchange and leave the mark wherever honest pages
				// legitimately advanced it.
				e.recordExchange(peer, false)
				return applied
			}
			ctx, cancel := context.WithTimeout(parent, e.timeout)
			resp, err := e.caller.Call(ctx, peer, wire.GossipPullReq{From: e.srv.ID(), After: after, Limit: e.batch, Cursor: cursor})
			cancel()
			if err != nil {
				sp.SetError(err)
				e.recordExchange(peer, false)
				return applied
			}
			pr, ok := resp.(wire.GossipPullResp)
			if !ok {
				e.recordExchange(peer, false)
				return applied
			}
			for _, w := range pr.Writes {
				if e.srv.ApplyDisseminated(w) {
					applied++
				}
			}
			e.mu.Lock()
			prev, seen := e.peerEpoch[peer]
			e.peerEpoch[peer] = pr.Epoch
			restarted = seen && prev != pr.Epoch
			if restarted {
				// The peer restarted: its rebuilt update log renumbers
				// entries, so our mark may point past (or into the middle
				// of) a log that no longer matches it. Resynchronize from
				// zero and re-pull in the same exchange — a convergence
				// sweep must observe any renumbered updates now, not a
				// sweep later (receivers deduplicate, so over-fetching is
				// safe).
				e.pulled[peer] = 0
			}
			e.mu.Unlock()
			if restarted {
				break // abandon this exchange's pages; re-pull from zero
			}
			if pr.More && pr.Cursor != "" {
				// State transfer continues: hold After, follow the cursor.
				if !transferring {
					transferring, transferSeq = true, pr.Seq
				}
				cursor = pr.Cursor
				continue
			}
			if pr.More {
				// In-window page: Seq is the last entry returned, safe to
				// adopt now and continue from there.
				e.advancePulled(peer, pr.Seq)
				after, cursor = pr.Seq, ""
				continue
			}
			final := pr.Seq
			if transferring {
				final = transferSeq
			}
			e.advancePulled(peer, final)
			e.recordExchange(peer, true)
			break
		}
		if !restarted {
			break
		}
	}
	return applied
}

// advancePulled raises (never lowers) the per-peer pull high-water mark.
func (e *Engine) advancePulled(peer string, seq uint64) {
	e.mu.Lock()
	if seq > e.pulled[peer] {
		e.pulled[peer] = seq
	}
	e.mu.Unlock()
}

// Converge drives full sweeps across all engines until a sweep applies no
// new writes anywhere (or maxSweeps is hit), respecting each engine's
// configured mode: a pull-only engine converges by pulling and a
// push-pull engine does both — previously Converge drove PushAll on every
// engine, so pull-only ablations (A5) quietly converged via the pushes
// they claimed to disable. The pull direction also matters for recovery:
// pushers skip updates a peer already (possibly falsely) acknowledged, so
// a replica that lied while Byzantine — or was wiped by a crash — closes
// its gaps only by pulling them itself. It returns the number of sweeps
// performed. Used by tests and experiments that need the store fully
// disseminated before measuring.
func Converge(engines []*Engine, maxSweeps int) int {
	for sweep := 1; sweep <= maxSweeps; sweep++ {
		applied := 0
		for _, e := range engines {
			if e.mode == Pull || e.mode == PushPull {
				applied += e.PullAll()
			}
			if e.mode == Push || e.mode == PushPull {
				applied += e.PushAll()
			}
		}
		if applied == 0 {
			return sweep
		}
	}
	return maxSweeps
}
