package gossip

import (
	"context"
	"testing"
	"time"

	"securestore/internal/cryptoutil"
	"securestore/internal/metrics"
	"securestore/internal/server"
	"securestore/internal/timestamp"
	"securestore/internal/transport"
	"securestore/internal/wire"
)

// mesh builds n servers on one bus with gossip engines.
type mesh struct {
	bus     *transport.Bus
	servers []*server.Server
	engines []*Engine
	writer  cryptoutil.KeyPair
}

func newMesh(t *testing.T, n int, opts ...Option) *mesh {
	t.Helper()
	ring := cryptoutil.NewKeyring()
	writer := cryptoutil.DeterministicKeyPair("writer", "s")
	ring.MustRegister(writer.ID, writer.Public)
	bus := transport.NewBus(nil)

	m := &mesh{bus: bus, writer: writer}
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = string(rune('a' + i))
	}
	for i := 0; i < n; i++ {
		srv := server.New(server.Config{ID: names[i], Ring: ring})
		srv.RegisterGroup("g", server.Policy{Consistency: wire.MRC})
		bus.Register(names[i], srv)
		m.servers = append(m.servers, srv)
	}
	for i, srv := range m.servers {
		var peers []string
		for j, name := range names {
			if j != i {
				peers = append(peers, name)
			}
		}
		engineOpts := append([]Option{WithSeed(int64(i)), WithFanout(n - 1)}, opts...)
		m.engines = append(m.engines, New(srv, bus.Caller(srv.ID(), &metrics.Counters{}), peers, engineOpts...))
	}
	return m
}

func (m *mesh) writeTo(t *testing.T, idx int, item string, value []byte, ts uint64) {
	t.Helper()
	w := &wire.SignedWrite{Group: "g", Item: item, Stamp: timestamp.Stamp{Time: ts}, Value: value}
	w.Sign(m.writer, nil)
	if _, err := m.servers[idx].ServeRequest(context.Background(), "writer", wire.WriteReq{Write: w}); err != nil {
		t.Fatal(err)
	}
}

func TestPushSpreadsWrites(t *testing.T) {
	m := newMesh(t, 3)
	m.writeTo(t, 0, "x", []byte("v"), 1)

	applied := m.engines[0].PushAll()
	if applied != 2 {
		t.Fatalf("applied = %d, want 2 (both peers fresh)", applied)
	}
	for i, srv := range m.servers {
		if srv.Head("g", "x") == nil {
			t.Fatalf("server %d missing the write", i)
		}
	}
}

func TestPushIdempotent(t *testing.T) {
	m := newMesh(t, 3)
	m.writeTo(t, 0, "x", []byte("v"), 1)
	m.engines[0].PushAll()
	// Nothing new: no messages applied.
	if applied := m.engines[0].PushAll(); applied != 0 {
		t.Fatalf("second push applied %d, want 0", applied)
	}
}

func TestConvergeTransitive(t *testing.T) {
	// Write lands at server 0; gossip must reach server 3 even when each
	// round only pushes to a subset.
	m := newMesh(t, 4, WithFanout(1))
	m.writeTo(t, 0, "x", []byte("v"), 1)
	Converge(m.engines, 50)
	for i, srv := range m.servers {
		if srv.Head("g", "x") == nil {
			t.Fatalf("server %d missing the write after convergence", i)
		}
	}
}

func TestConvergeBidirectional(t *testing.T) {
	// Different writes at different servers: all must end with both.
	m := newMesh(t, 3)
	m.writeTo(t, 0, "x", []byte("vx"), 1)
	m.writeTo(t, 2, "y", []byte("vy"), 1)
	Converge(m.engines, 20)
	for i, srv := range m.servers {
		if srv.Head("g", "x") == nil || srv.Head("g", "y") == nil {
			t.Fatalf("server %d missing writes", i)
		}
	}
}

func TestNewerWriteWins(t *testing.T) {
	m := newMesh(t, 2)
	m.writeTo(t, 0, "x", []byte("old"), 1)
	m.writeTo(t, 1, "x", []byte("new"), 2)
	Converge(m.engines, 20)
	for i, srv := range m.servers {
		if head := srv.Head("g", "x"); string(head.Value) != "new" {
			t.Fatalf("server %d head = %q, want new", i, head.Value)
		}
	}
}

func TestBackgroundLoop(t *testing.T) {
	m := newMesh(t, 3, WithInterval(5*time.Millisecond))
	for _, e := range m.engines {
		e.Start()
	}
	defer func() {
		for _, e := range m.engines {
			e.Stop()
		}
	}()

	m.writeTo(t, 0, "x", []byte("v"), 1)
	deadline := time.Now().Add(2 * time.Second)
	for {
		all := true
		for _, srv := range m.servers {
			if srv.Head("g", "x") == nil {
				all = false
			}
		}
		if all {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("background gossip never converged")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestStopIdempotentAndUnstarted(t *testing.T) {
	m := newMesh(t, 2)
	e := m.engines[0]
	e.Stop() // never started: returns immediately
	e.Stop()

	e2 := m.engines[1]
	e2.Start()
	e2.Start() // double start is a no-op
	e2.Stop()
	e2.Stop()
}

func TestRoundRespectsFanout(t *testing.T) {
	m := newMesh(t, 5, WithFanout(2))
	m.writeTo(t, 0, "x", []byte("v"), 1)
	m.engines[0].Round()
	have := 0
	for _, srv := range m.servers[1:] {
		if srv.Head("g", "x") != nil {
			have++
		}
	}
	if have != 2 {
		t.Fatalf("one round reached %d peers, want exactly fanout=2", have)
	}
}

func TestCrashedPeerDoesNotBlockOthers(t *testing.T) {
	m := newMesh(t, 3, WithTimeout(100*time.Millisecond))
	m.servers[1].SetFault(server.Crash)
	m.writeTo(t, 0, "x", []byte("v"), 1)
	m.engines[0].PushAll()
	if m.servers[2].Head("g", "x") == nil {
		t.Fatal("healthy peer did not receive the push")
	}
	// The crashed peer's high-water mark was not advanced: once healed it
	// receives the write on the next push.
	m.servers[1].SetFault(server.Healthy)
	m.engines[0].PushAll()
	if m.servers[1].Head("g", "x") == nil {
		t.Fatal("healed peer never caught up")
	}
}

func TestPullCatchesUp(t *testing.T) {
	m := newMesh(t, 3, WithMode(Pull))
	m.writeTo(t, 0, "x", []byte("v"), 1)

	// Server 2 pulls from server 0 and learns the write without 0 pushing.
	applied := m.engines[2].PullAll()
	if applied == 0 {
		t.Fatal("pull applied nothing")
	}
	if m.servers[2].Head("g", "x") == nil {
		t.Fatal("pulling server missing the write")
	}
	// Second pull: nothing new.
	if applied := m.engines[2].PullAll(); applied != 0 {
		t.Fatalf("second pull applied %d, want 0", applied)
	}
}

func TestPullRejectsTamperedUpdates(t *testing.T) {
	m := newMesh(t, 2, WithMode(Pull))
	m.writeTo(t, 0, "x", []byte("good"), 1)
	// Tamper directly through ApplyDisseminated with a forged write.
	w := &wire.SignedWrite{Group: "g", Item: "y", Stamp: timestamp.Stamp{Time: 1}, Value: []byte("forged")}
	w.Sign(m.writer, nil)
	w.Value = []byte("altered")
	if m.servers[1].ApplyDisseminated(w) {
		t.Fatal("tampered pulled write applied")
	}
	if m.servers[1].Head("g", "y") != nil {
		t.Fatal("tampered pulled write stored")
	}
}

func TestPushPullConverges(t *testing.T) {
	m := newMesh(t, 4, WithMode(PushPull), WithFanout(1))
	m.writeTo(t, 0, "x", []byte("vx"), 1)
	m.writeTo(t, 3, "y", []byte("vy"), 1)
	Converge(m.engines, 50)
	// Push-only convergence handles pushes; rounds handle both. Drive
	// rounds explicitly for pull coverage.
	for sweep := 0; sweep < 20; sweep++ {
		moved := 0
		for _, e := range m.engines {
			moved += e.Round()
		}
		if moved == 0 {
			break
		}
	}
	for i, srv := range m.servers {
		if srv.Head("g", "x") == nil || srv.Head("g", "y") == nil {
			t.Fatalf("server %d missing writes after push-pull", i)
		}
	}
}

func TestRejoiningReplicaPullsHistory(t *testing.T) {
	// A replica that was crashed during several writes catches up with one
	// pull once healed — the scenario pull anti-entropy exists for.
	m := newMesh(t, 3, WithMode(Pull))
	m.servers[2].SetFault(server.Crash)
	for i := 1; i <= 5; i++ {
		m.writeTo(t, 0, "x", []byte{byte(i)}, uint64(i))
	}
	m.servers[2].SetFault(server.Healthy)

	if applied := m.engines[2].PullAll(); applied == 0 {
		t.Fatal("rejoining replica pulled nothing")
	}
	head := m.servers[2].Head("g", "x")
	if head == nil || head.Stamp.Time != 5 {
		t.Fatalf("rejoined head = %v, want stamp 5", head)
	}
}
