package gossip

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"securestore/internal/cryptoutil"
	"securestore/internal/metrics"
	"securestore/internal/server"
	"securestore/internal/timestamp"
	"securestore/internal/transport"
	"securestore/internal/wire"
)

// frameInspector wraps a Caller and records the gossip batch carried by
// every push request and pull reply, so tests can assert frames stay
// bounded.
type frameInspector struct {
	inner transport.Caller

	mu        sync.Mutex
	pushSizes []int
	pullSizes []int
}

func (c *frameInspector) Origin() string { return c.inner.Origin() }

func (c *frameInspector) Call(ctx context.Context, to string, req wire.Request) (wire.Response, error) {
	if push, ok := req.(wire.GossipPushReq); ok {
		c.mu.Lock()
		c.pushSizes = append(c.pushSizes, len(push.Writes))
		c.mu.Unlock()
	}
	resp, err := c.inner.Call(ctx, to, req)
	if pull, ok := resp.(wire.GossipPullResp); ok {
		c.mu.Lock()
		c.pullSizes = append(c.pullSizes, len(pull.Writes))
		c.mu.Unlock()
	}
	return resp, err
}

func (c *frameInspector) sizes() (push, pull []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int(nil), c.pushSizes...), append([]int(nil), c.pullSizes...)
}

// batchPair builds two servers on a bus: a hot one holding `writes`
// disseminated updates and a cold one knowing none of them. maxLog caps
// the hot server's retained dissemination log (0 keeps the default).
func batchPair(t *testing.T, writes, maxLog int) (hot, cold *server.Server, bus *transport.Bus) {
	t.Helper()
	ring := cryptoutil.NewKeyring()
	writer := cryptoutil.DeterministicKeyPair("writer", "s")
	ring.MustRegister(writer.ID, writer.Public)
	bus = transport.NewBus(nil)

	hotCfg := server.Config{ID: "hot", Ring: ring}
	if maxLog > 0 {
		hotCfg.MaxUpdateLog = maxLog
	}
	hot = server.New(hotCfg)
	cold = server.New(server.Config{ID: "cold", Ring: ring})
	for _, s := range []*server.Server{hot, cold} {
		s.RegisterGroup("g", server.Policy{Consistency: wire.MRC})
		bus.Register(s.ID(), s)
	}

	for i := 0; i < writes; i++ {
		w := &wire.SignedWrite{Group: "g", Item: fmt.Sprintf("item-%04d", i), Stamp: timestamp.Stamp{Time: 1}, Value: []byte("v")}
		w.Sign(writer, nil)
		if _, err := hot.ServeRequest(context.Background(), "writer", wire.WriteReq{Write: w}); err != nil {
			t.Fatal(err)
		}
	}
	return hot, cold, bus
}

func assertCaughtUp(t *testing.T, cold *server.Server, writes int) {
	t.Helper()
	for i := 0; i < writes; i++ {
		item := fmt.Sprintf("item-%04d", i)
		if cold.Head("g", item) == nil {
			t.Fatalf("cold replica missing %s after catch-up", item)
		}
	}
}

// TestPushChunksLargeBacklog drives a push of a backlog much larger than
// the batch size: every frame must carry at most `batch` writes and the
// full backlog must arrive.
func TestPushChunksLargeBacklog(t *testing.T) {
	const writes, batch = 100, 16
	hot, cold, bus := batchPair(t, writes, 0)
	insp := &frameInspector{inner: bus.Caller("hot", &metrics.Counters{})}
	e := New(hot, insp, []string{"cold"}, WithBatchSize(batch))

	if applied := e.PushAll(); applied != writes {
		t.Fatalf("push applied %d, want %d", applied, writes)
	}
	assertCaughtUp(t, cold, writes)

	push, _ := insp.sizes()
	if len(push) < writes/batch {
		t.Fatalf("backlog of %d shipped in %d frames; want >= %d bounded frames", writes, len(push), writes/batch)
	}
	total := 0
	for _, n := range push {
		if n > batch {
			t.Fatalf("push frame carried %d writes, cap is %d", n, batch)
		}
		total += n
	}
	if total != writes {
		t.Fatalf("frames carried %d writes total, want %d", total, writes)
	}

	// Nothing left: the mark advanced past the whole backlog only after
	// every chunk was acked.
	if applied := e.PushAll(); applied != 0 {
		t.Fatalf("second push applied %d, want 0", applied)
	}
}

// TestColdReplicaPullsInBoundedFrames is the satellite's required test: a
// cold replica catching up on a large in-window log must converge through
// multiple bounded pull frames.
func TestColdReplicaPullsInBoundedFrames(t *testing.T) {
	const writes, batch = 120, 25
	_, cold, bus := batchPair(t, writes, 0)
	insp := &frameInspector{inner: bus.Caller("cold", &metrics.Counters{})}
	e := New(cold, insp, []string{"hot"}, WithBatchSize(batch), WithMode(Pull))

	if applied := e.PullAll(); applied != writes {
		t.Fatalf("pull applied %d, want %d", applied, writes)
	}
	assertCaughtUp(t, cold, writes)

	_, pull := insp.sizes()
	if len(pull) < writes/batch {
		t.Fatalf("catch-up used %d pull frames; want >= %d bounded frames", len(pull), writes/batch)
	}
	for _, n := range pull {
		if n > batch {
			t.Fatalf("pull frame carried %d writes, cap is %d", n, batch)
		}
	}

	// The mark must have adopted the hot server's head seq: a second pull
	// is one empty page.
	insp.mu.Lock()
	insp.pullSizes = nil
	insp.mu.Unlock()
	if applied := e.PullAll(); applied != 0 {
		t.Fatalf("second pull applied %d, want 0", applied)
	}
	_, pull = insp.sizes()
	if len(pull) != 1 || pull[0] != 0 {
		t.Fatalf("second pull frames = %v, want one empty page", pull)
	}
}

// TestColdReplicaStateTransferPaged trims the hot server's dissemination
// log below the backlog, forcing the cursor-paged state transfer: the
// cold replica must still converge through bounded frames and adopt a
// mark that makes the next pull incremental.
func TestColdReplicaStateTransferPaged(t *testing.T) {
	const writes, maxLog, batch = 200, 40, 32
	_, cold, bus := batchPair(t, writes, maxLog)
	insp := &frameInspector{inner: bus.Caller("cold", &metrics.Counters{})}
	e := New(cold, insp, []string{"hot"}, WithBatchSize(batch), WithMode(Pull))

	if applied := e.PullAll(); applied != writes {
		t.Fatalf("state transfer applied %d, want %d", applied, writes)
	}
	assertCaughtUp(t, cold, writes)

	_, pull := insp.sizes()
	if len(pull) < writes/batch {
		t.Fatalf("state transfer used %d pull frames; want >= %d", len(pull), writes/batch)
	}
	for _, n := range pull {
		if n > batch {
			t.Fatalf("state-transfer frame carried %d writes, cap is %d", n, batch)
		}
	}

	if applied := e.PullAll(); applied != 0 {
		t.Fatalf("pull after state transfer applied %d, want 0", applied)
	}
}

// TestStateTransferAdoptsSnapshotNotTail checks the transfer-completion
// rule: a write accepted by the peer mid-transfer (higher seq than the
// first page's snapshot) is fetched by the next incremental pull — the
// cold replica must not adopt a mark that skips it.
func TestStateTransferAdoptsSnapshotNotTail(t *testing.T) {
	const writes, maxLog, batch = 100, 20, 16
	hot, cold, bus := batchPair(t, writes, maxLog)

	// Interleave: after the first page is served, land one more write on
	// the hot server whose item key sorts BEFORE the already-swept range.
	writer := cryptoutil.DeterministicKeyPair("writer", "s")
	var once sync.Once
	interceptor := &hookCaller{inner: bus.Caller("cold", &metrics.Counters{}), after: func() {
		once.Do(func() {
			w := &wire.SignedWrite{Group: "g", Item: "item-0000", Stamp: timestamp.Stamp{Time: 9}, Value: []byte("late")}
			w.Sign(writer, nil)
			if _, err := hot.ServeRequest(context.Background(), "writer", wire.WriteReq{Write: w}); err != nil {
				panic(err)
			}
		})
	}}
	e := New(cold, interceptor, []string{"hot"}, WithBatchSize(batch), WithMode(Pull))

	e.PullAll() // transfer, with the late write landing mid-way
	e.PullAll() // incremental pull picks up anything past the snapshot

	head := cold.Head("g", "item-0000")
	if head == nil || head.Stamp.Time != 9 {
		t.Fatalf("cold replica missed the mid-transfer write (head=%v)", head)
	}
}

// hookCaller invokes after() once each Call returns (before the engine
// sees the response).
type hookCaller struct {
	inner transport.Caller
	after func()
}

func (c *hookCaller) Origin() string { return c.inner.Origin() }

func (c *hookCaller) Call(ctx context.Context, to string, req wire.Request) (wire.Response, error) {
	resp, err := c.inner.Call(ctx, to, req)
	c.after()
	return resp, err
}
