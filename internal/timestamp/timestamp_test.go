package timestamp

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestLessOrdering(t *testing.T) {
	tests := []struct {
		name string
		a, b Stamp
		want bool
	}{
		{"by time", Stamp{Time: 1}, Stamp{Time: 2}, true},
		{"equal times not less", Stamp{Time: 2}, Stamp{Time: 2}, false},
		{"time beats writer", Stamp{Time: 1, Writer: "z"}, Stamp{Time: 2, Writer: "a"}, true},
		{"writer breaks tie", Stamp{Time: 2, Writer: "a"}, Stamp{Time: 2, Writer: "b"}, true},
		{"reverse writer tie", Stamp{Time: 2, Writer: "b"}, Stamp{Time: 2, Writer: "a"}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Less(tt.b); got != tt.want {
				t.Fatalf("%v.Less(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestCompareDetectsEquivocation(t *testing.T) {
	a := Stamp{Time: 5, Writer: "w", Digest: [32]byte{1}}
	b := Stamp{Time: 5, Writer: "w", Digest: [32]byte{2}}
	if _, err := Compare(a, b); !errors.Is(err, ErrEquivocation) {
		t.Fatalf("Compare = %v, want ErrEquivocation", err)
	}
	// Same everything: equal, no error.
	if c, err := Compare(a, a); err != nil || c != 0 {
		t.Fatalf("Compare(a,a) = %d, %v; want 0, nil", c, err)
	}
}

func TestCompareConsistentWithLess(t *testing.T) {
	prop := func(t1, t2 uint64, w1, w2 string) bool {
		a := Stamp{Time: t1, Writer: w1}
		b := Stamp{Time: t2, Writer: w2}
		c, err := Compare(a, b)
		if err != nil {
			return false
		}
		switch {
		case c < 0:
			return a.Less(b) && !b.Less(a)
		case c > 0:
			return b.Less(a) && !a.Less(b)
		default:
			return !a.Less(b) && !b.Less(a)
		}
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	prop := func(t1, t2 uint64, w1, w2 string) bool {
		a := Stamp{Time: t1, Writer: w1}
		b := Stamp{Time: t2, Writer: w2}
		ab, err1 := Compare(a, b)
		ba, err2 := Compare(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return ab == -ba
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMax(t *testing.T) {
	a := Stamp{Time: 1}
	b := Stamp{Time: 2}
	if Max(a, b) != b || Max(b, a) != b {
		t.Fatal("Max not commutative or wrong")
	}
	if Max(a, a) != a {
		t.Fatal("Max(a,a) != a")
	}
}

func TestZero(t *testing.T) {
	var s Stamp
	if !s.Zero() {
		t.Fatal("zero stamp not Zero()")
	}
	if (Stamp{Time: 1}).Zero() {
		t.Fatal("non-zero stamp reported Zero()")
	}
	if (Stamp{Writer: "w"}).Zero() {
		t.Fatal("writer-only stamp reported Zero()")
	}
}

func TestClockMonotonic(t *testing.T) {
	var c Clock
	prev := uint64(0)
	for i := 0; i < 1000; i++ {
		next := c.Next(0)
		if next <= prev {
			t.Fatalf("clock went backwards: %d after %d", next, prev)
		}
		prev = next
	}
}

func TestClockRespectsFloor(t *testing.T) {
	var c Clock
	got := c.Next(100)
	if got <= 100 {
		t.Fatalf("Next(100) = %d, want > 100", got)
	}
	// A floor below the current value must not rewind.
	got2 := c.Next(5)
	if got2 <= got {
		t.Fatalf("Next(5) = %d after %d: rewound", got2, got)
	}
}

func TestClockObserve(t *testing.T) {
	var c Clock
	c.Observe(50)
	if got := c.Next(0); got <= 50 {
		t.Fatalf("Next after Observe(50) = %d, want > 50", got)
	}
	c.Observe(10) // lower observation must not rewind
	if got := c.Now(); got <= 50 {
		t.Fatalf("Now = %d, want > 50", got)
	}
}

func TestClockObfuscatedStillMonotonic(t *testing.T) {
	c := Clock{Obfuscate: true}
	prev := uint64(0)
	sawBigStep := false
	for i := 0; i < 200; i++ {
		next := c.Next(0)
		if next <= prev {
			t.Fatalf("obfuscated clock went backwards: %d after %d", next, prev)
		}
		if next-prev > 1 {
			sawBigStep = true
		}
		prev = next
	}
	if !sawBigStep {
		t.Fatal("obfuscated clock never took a random step > 1")
	}
}

func TestClockConcurrent(t *testing.T) {
	var c Clock
	var mu sync.Mutex
	seen := make(map[uint64]bool)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				v := c.Next(0)
				mu.Lock()
				if seen[v] {
					t.Errorf("duplicate clock value %d", v)
					mu.Unlock()
					return
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestStringFormats(t *testing.T) {
	if got := (Stamp{Time: 3}).String(); got != "v3" {
		t.Fatalf("single-writer String = %q", got)
	}
	multi := Stamp{Time: 3, Writer: "w", Digest: [32]byte{0xde, 0xad}}
	if got := multi.String(); got == "v3" || got == "" {
		t.Fatalf("multi-writer String = %q, want writer and digest rendered", got)
	}
}
