package trace

import (
	"context"
	"testing"

	"securestore/internal/metrics"
)

func BenchmarkSpanLeaf(b *testing.B) {
	hist := &metrics.HistogramSet{}
	tr := New(0, WithHistograms(hist))
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "data.read")
	defer root.End()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := Leaf(ctx, "rpc")
		sp.SetAttr("server", "s00")
		sp.SetAttr("req", "meta")
		sp.End()
	}
}

func BenchmarkSpanRoot(b *testing.B) {
	hist := &metrics.HistogramSet{}
	tr := New(0, WithHistograms(hist))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.Root("server.write")
		sp.SetAttr("from", "alice")
		sp.End()
	}
}

func BenchmarkSpanStartTree(b *testing.B) {
	hist := &metrics.HistogramSet{}
	tr := New(0, WithHistograms(hist))
	base := WithTracer(context.Background(), tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx, root := Start(base, "data.read")
		sp := Leaf(ctx, "rpc")
		sp.End()
		root.End()
	}
}
