package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"securestore/internal/metrics"
)

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Total() != 0 || tr.Capacity() != 0 || tr.Recent(10) != nil || tr.Histograms() != nil {
		t.Fatal("nil tracer must no-op")
	}
	ctx := WithTracer(context.Background(), nil)
	if FromContext(ctx) != nil {
		t.Fatal("nil tracer must not be injected")
	}
	ctx2, sp := Start(ctx, "op")
	if sp != nil {
		t.Fatal("Start without a tracer must return a nil span")
	}
	if ctx2 != ctx {
		t.Fatal("Start without a tracer must not derive a new context")
	}
	// All span methods no-op on nil.
	sp.SetAttr("k", "v")
	sp.SetError(errors.New("boom"))
	sp.End()
	if Leaf(ctx, "op") != nil {
		t.Fatal("Leaf without a tracer must return a nil span")
	}
	tr.Root("op").End() // nil tracer: Root no-ops too
}

func TestLeafAndRootSpans(t *testing.T) {
	tr := New(8)
	ctx, root := Start(WithTracer(context.Background(), tr), "data.read")
	leaf := Leaf(ctx, "rpc")
	if leaf.TraceID != root.TraceID {
		t.Fatalf("leaf trace = %d, want root's %d", leaf.TraceID, root.TraceID)
	}
	if leaf.ParentID != root.SpanID {
		t.Fatalf("leaf parent = %d, want %d", leaf.ParentID, root.SpanID)
	}
	leaf.End()
	root.End()

	// Root spans stand alone: their own trace, no parent.
	r := tr.Root("server.write")
	if r.ParentID != 0 || r.TraceID != r.SpanID || r.TraceID == 0 {
		t.Fatalf("root span ids = trace %d span %d parent %d", r.TraceID, r.SpanID, r.ParentID)
	}
	r.End()

	if got := tr.Total(); got != 3 {
		t.Fatalf("recorded %d spans, want 3", got)
	}
}

func TestStartRoot(t *testing.T) {
	tr := New(8)

	// No ambient tracer: the supplied tracer opens a fresh root trace.
	ctx, root := StartRoot(context.Background(), tr, "data.write")
	if root == nil || root.ParentID != 0 || root.TraceID != root.SpanID {
		t.Fatalf("root span = %+v", root)
	}
	if leaf := Leaf(ctx, "rpc"); leaf.ParentID != root.SpanID {
		t.Fatalf("leaf under StartRoot: parent = %d, want %d", leaf.ParentID, root.SpanID)
	}

	// Ambient tracer wins: the caller's trace linkage is preserved and the
	// component's own tracer (even nil) is ignored.
	outerCtx, outer := Start(WithTracer(context.Background(), tr), "outer")
	_, inner := StartRoot(outerCtx, nil, "data.read")
	if inner == nil || inner.ParentID != outer.SpanID || inner.TraceID != outer.TraceID {
		t.Fatalf("inner span = %+v, want child of %+v", inner, outer)
	}

	// Neither: no-op, same context back.
	plain := context.Background()
	ctx2, sp := StartRoot(plain, nil, "op")
	if sp != nil || ctx2 != plain {
		t.Fatal("StartRoot without any tracer must no-op")
	}
}

func TestSpanTreeAndRecording(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	tr := New(16, WithClock(clock))
	ctx := WithTracer(context.Background(), tr)

	ctx, root := Start(ctx, "data.read")
	root.SetAttr("item", "x")
	childCtx, child := Start(ctx, "rpc")
	child.SetAttr("server", "s00")
	now = now.Add(5 * time.Millisecond)
	child.SetError(errors.New("timeout"))
	child.End()
	_ = childCtx
	now = now.Add(5 * time.Millisecond)
	root.End()

	spans := tr.Recent(0)
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	c, r := spans[0], spans[1] // child ends first
	if c.Op != "rpc" || r.Op != "data.read" {
		t.Fatalf("span order = %q, %q", c.Op, r.Op)
	}
	if c.TraceID != r.SpanID || c.ParentID != r.SpanID {
		t.Fatalf("child (trace=%d parent=%d) not linked to root span %d", c.TraceID, c.ParentID, r.SpanID)
	}
	if r.ParentID != 0 || r.TraceID != r.SpanID {
		t.Fatalf("root ids wrong: %+v", r)
	}
	if c.Duration != 5*time.Millisecond || r.Duration != 10*time.Millisecond {
		t.Fatalf("durations = %v, %v", c.Duration, r.Duration)
	}
	if c.Err != "timeout" || r.Err != "" {
		t.Fatalf("errs = %q, %q", c.Err, r.Err)
	}
	if len(c.Attrs) != 1 || c.Attrs[0] != (Attr{"server", "s00"}) {
		t.Fatalf("child attrs = %v", c.Attrs)
	}
	if tr.Total() != 2 {
		t.Fatalf("total = %d", tr.Total())
	}
}

func TestDoubleEndRecordsOnce(t *testing.T) {
	tr := New(4)
	_, sp := Start(WithTracer(context.Background(), tr), "op")
	sp.End()
	sp.End()
	if tr.Total() != 1 {
		t.Fatalf("double End recorded %d spans", tr.Total())
	}
}

func TestRingOverflowKeepsNewest(t *testing.T) {
	tr := New(4)
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 10; i++ {
		_, sp := Start(ctx, fmt.Sprintf("op%d", i))
		sp.End()
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d", tr.Total())
	}
	spans := tr.Recent(0)
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want capacity 4", len(spans))
	}
	for i, s := range spans {
		want := fmt.Sprintf("op%d", 6+i)
		if s.Op != want {
			t.Fatalf("span %d = %q, want %q (oldest-first, newest retained)", i, s.Op, want)
		}
	}
	// A limited Recent returns the newest suffix.
	last2 := tr.Recent(2)
	if len(last2) != 2 || last2[0].Op != "op8" || last2[1].Op != "op9" {
		t.Fatalf("Recent(2) = %v", last2)
	}
}

func TestConcurrentWritersOrderingAndCount(t *testing.T) {
	const writers, each = 8, 200
	tr := New(64)
	ctx := WithTracer(context.Background(), tr)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				_, sp := Start(ctx, "op")
				sp.SetAttr("writer", strconv.Itoa(w))
				sp.SetAttr("seq", strconv.Itoa(i))
				sp.End()
			}
		}(w)
	}
	wg.Wait()

	if got := tr.Total(); got != writers*each {
		t.Fatalf("total = %d, want %d", got, writers*each)
	}
	spans := tr.Recent(0)
	if len(spans) != 64 {
		t.Fatalf("retained %d spans, want 64", len(spans))
	}
	// Per-writer sequence numbers must appear in order: the ring records in
	// End order under one lock, and each writer ends its spans in sequence.
	lastSeq := make(map[string]int)
	for _, s := range spans {
		var writer string
		seq := -1
		for _, a := range s.Attrs {
			switch a.Key {
			case "writer":
				writer = a.Value
			case "seq":
				seq, _ = strconv.Atoi(a.Value)
			}
		}
		if prev, ok := lastSeq[writer]; ok && seq <= prev {
			t.Fatalf("writer %s sequence went %d -> %d: ring order violated", writer, prev, seq)
		}
		lastSeq[writer] = seq
	}
}

func TestJSONSink(t *testing.T) {
	var buf bytes.Buffer
	now := time.Unix(42, 0)
	tr := New(8, WithSink(&buf), WithClock(func() time.Time { return now }))
	ctx := WithTracer(context.Background(), tr)
	_, sp := Start(ctx, "data.write")
	sp.SetAttr("item", "todo")
	now = now.Add(3 * time.Millisecond)
	sp.End()

	var got Span
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("sink line not JSON: %v (%q)", err, buf.String())
	}
	if got.Op != "data.write" || got.Duration != 3*time.Millisecond || len(got.Attrs) != 1 {
		t.Fatalf("sink span = %+v", got)
	}
}

// failingWriter fails after the first write.
type failingWriter struct{ writes int }

func (w *failingWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > 1 {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestSinkFailureDisablesSinkNotTracing(t *testing.T) {
	w := &failingWriter{}
	tr := New(8, WithSink(w))
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 4; i++ {
		_, sp := Start(ctx, "op")
		sp.End()
	}
	if tr.Total() != 4 {
		t.Fatalf("tracing stopped after sink failure: total=%d", tr.Total())
	}
	if w.writes != 2 { // one success, one failure, then disabled
		t.Fatalf("sink written %d times, want 2", w.writes)
	}
}

func TestHistogramFeed(t *testing.T) {
	hist := &metrics.HistogramSet{}
	now := time.Unix(0, 0)
	tr := New(8, WithHistograms(hist), WithClock(func() time.Time { return now }))
	ctx := WithTracer(context.Background(), tr)
	for _, d := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond} {
		_, sp := Start(ctx, "data.read")
		now = now.Add(d)
		sp.End()
	}
	snap := hist.Get("data.read").Snapshot()
	if snap.Count != 3 {
		t.Fatalf("histogram count = %d", snap.Count)
	}
	if snap.Max != 4*time.Millisecond {
		t.Fatalf("histogram max = %v", snap.Max)
	}
	if tr.Histograms() != hist {
		t.Fatal("Histograms accessor")
	}
}
