// Package trace provides per-operation structured tracing for the secure
// store: where the counters of internal/metrics say *how much* a protocol
// run cost, spans say *where the time went* — context quorum vs. data
// fetch vs. retry backoff, per-replica RPC attempt by attempt.
//
// The model is deliberately small. A Span is one timed interval with an
// operation name ("data.read", "rpc", "gossip.round", ...), string
// attributes, an optional error, and parent/trace identifiers that stitch
// spans into a tree: the client op is the root, each quorum RPC a child.
// Spans travel through context.Context — Start looks up the ambient
// Tracer and active parent, so instrumented layers compose without
// plumbing tracer arguments through every call.
//
// The API is tiered by allocation cost. Start (and StartRoot, which also
// injects a component's own tracer) derives a child context and is for
// spans that will have children; Leaf opens a childless span under the
// ambient parent with no context derivation; Tracer.Root opens a
// standalone root with no context at all (a replica serving one inbound
// request). Leaf and Root spans are pooled and allocation-free; they must
// not be touched after End.
//
// Completed spans land in a bounded in-memory ring (newest overwrite
// oldest), can be streamed to an optional JSON-lines sink, and feed their
// durations into a metrics.HistogramSet keyed by operation name — which
// is how the p50/p95/p99 columns of benchtab and the /metrics endpoint
// are produced from a single instrumentation point.
//
// Everything is nil-safe in the package's usual style: a nil *Tracer, a
// context without a tracer, or a nil *Span all no-op, so hot paths are
// instrumented unconditionally and pay roughly a pointer lookup when
// tracing is off. Experiment O1 (EXPERIMENTS.md) measures the enabled
// cost at under 3% of the TCP hot path.
package trace

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"securestore/internal/metrics"
)

// DefaultCapacity is the ring size used when New is given a non-positive
// capacity: enough for several thousand recent operations while bounding
// memory to a few MB at typical span sizes.
const DefaultCapacity = 4096

// Attr is one key/value annotation on a span.
type Attr struct {
	// Key names the attribute (e.g. "server", "item", "attempts").
	Key string `json:"k"`
	// Value is the attribute's rendered value.
	Value string `json:"v"`
}

// Span is one timed operation. A live span is mutated by exactly one
// goroutine (the one that Started it) until End, after which an immutable
// copy is recorded; this is the usual tracing contract and keeps spans
// lock-free.
type Span struct {
	// TraceID groups every span of one client-visible operation; it equals
	// the root span's SpanID.
	TraceID uint64 `json:"trace"`
	// SpanID uniquely identifies this span within its tracer's lifetime.
	SpanID uint64 `json:"span"`
	// ParentID is the enclosing span's SpanID, zero for roots.
	ParentID uint64 `json:"parent,omitempty"`
	// Op names the operation, e.g. "data.read" or "rpc".
	Op string `json:"op"`
	// Start is when the span began.
	Start time.Time `json:"start"`
	// Duration is how long the span ran (set by End).
	Duration time.Duration `json:"durNanos"`
	// Attrs holds the span's annotations in SetAttr order.
	Attrs []Attr `json:"attrs,omitempty"`
	// Err is the operation's error text, empty on success.
	Err string `json:"err,omitempty"`

	tracer *Tracer
	ended  bool
	// noPool marks spans that escaped into a context (Start): stragglers
	// holding the derived context may still read the span's identifiers
	// after End, so only context-free Leaf and Root spans are recycled.
	noPool bool
	// attrBuf backs Attrs for the first few SetAttr calls so the common
	// span (a handful of short annotations) allocates nothing beyond the
	// span itself.
	attrBuf [4]Attr
}

// spanPool recycles Leaf and Root spans: End returns them after recording,
// which keeps steady-state tracing free of per-span heap allocation. The
// corollary is the usual tracing contract with teeth: a span must not be
// touched after End.
var spanPool = sync.Pool{New: func() any { return new(Span) }}

// SetAttr annotates the span. Nil-safe; later values for the same key are
// appended, not replaced (attribute lists are short and append order is
// itself informative, e.g. one "server" attr per staged contact).
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	if s.Attrs == nil {
		s.Attrs = s.attrBuf[:0]
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// SetError records err's text on the span. A nil err clears nothing and
// records nothing, so it can be called unconditionally on the way out.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.Err = err.Error()
}

// End completes the span: its duration is fixed and an immutable copy is
// recorded into the tracer's ring, sink and histograms. Calling End more
// than once, or on a nil span, is a no-op. The span must not be touched
// after End — Leaf and Root spans are recycled.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.Duration = s.tracer.since(s.Start)
	s.tracer.record(s)
}

// Option configures a Tracer.
type Option func(*Tracer)

// WithSink streams every completed span to w as one JSON object per line.
// Writes happen under a dedicated mutex outside the ring lock; a write
// error silently disables the sink (tracing must never take down the
// store).
func WithSink(w io.Writer) Option {
	return func(t *Tracer) { t.sink = w }
}

// WithHistograms feeds every completed span's duration into h, keyed by
// the span's Op. This is the single wiring point behind all latency
// percentiles: any instrumented operation gets a histogram for free.
func WithHistograms(h *metrics.HistogramSet) Option {
	return func(t *Tracer) { t.hist = h }
}

// WithClock substitutes the tracer's time source (tests; the default is
// time.Now).
func WithClock(now func() time.Time) Option {
	return func(t *Tracer) {
		t.now = now
		t.since = func(t0 time.Time) time.Duration { return now().Sub(t0) }
	}
}

// Tracer records completed spans into a bounded ring. Safe for concurrent
// use; a nil *Tracer no-ops everywhere.
type Tracer struct {
	capacity int
	sink     io.Writer
	hist     *metrics.HistogramSet
	now      func() time.Time
	// since measures elapsed time from a span's start. With the default
	// clock it is time.Since, which reads only the monotonic counter —
	// measurably cheaper than a second full time.Now per span on the End
	// path.
	since func(time.Time) time.Duration
	ids   atomic.Uint64

	mu    sync.Mutex
	ring  []Span
	next  int
	total uint64

	sinkMu sync.Mutex
}

// New creates a tracer whose ring retains the most recent capacity spans
// (DefaultCapacity when capacity <= 0).
func New(capacity int, opts ...Option) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	t := &Tracer{capacity: capacity, now: time.Now, since: time.Since}
	// The full ring is allocated up front: recording never grows it, so
	// the steady-state hot path is free of append garbage.
	t.ring = make([]Span, 0, capacity)
	for _, opt := range opts {
		opt(t)
	}
	return t
}

// Histograms returns the HistogramSet completed spans feed, nil when none
// was configured.
func (t *Tracer) Histograms() *metrics.HistogramSet {
	if t == nil {
		return nil
	}
	return t.hist
}

// The context payload is the enclosing *Span itself (a WithTracer
// sentinel span for tracer-only contexts): child starts read only its
// tracer and identifiers, all immutable after creation, so no extra
// bookkeeping object is allocated per span.
type ctxKey struct{}

// WithTracer returns a context carrying t as the ambient tracer, under
// which Start creates root spans. A nil tracer returns ctx unchanged, so
// callers inject unconditionally.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, &Span{tracer: t})
}

// FromContext returns the ambient tracer, nil when the context carries
// none.
func FromContext(ctx context.Context) *Tracer {
	if s, ok := ctx.Value(ctxKey{}).(*Span); ok {
		return s.tracer
	}
	return nil
}

// Start begins a span under the context's ambient tracer, child of the
// context's active span if any. It returns a derived context carrying the
// new span (so nested Starts build a tree) and the span itself. Without
// an ambient tracer it returns ctx unchanged and a nil span, whose
// methods all no-op.
func Start(ctx context.Context, op string) (context.Context, *Span) {
	s := newSpan(ctx, op)
	if s == nil {
		return ctx, nil
	}
	s.noPool = true // the derived context may outlive End
	return context.WithValue(ctx, ctxKey{}, s), s
}

// Leaf begins a span that expects no children: the same linkage as Start
// but without deriving a new context, which saves an allocation per span.
// It is the right call for per-replica RPC attempts and other innermost
// operations; use Start when the span should become the parent of nested
// spans.
func Leaf(ctx context.Context, op string) *Span {
	return newSpan(ctx, op)
}

// StartRoot begins an operation's root span: under the context's ambient
// tracer when one is present (preserving the caller's trace linkage),
// otherwise under t. It fuses WithTracer+Start into one context
// derivation, which is the cheapest way for a component holding its own
// tracer (client, gossip engine) to open an op. A nil t and a tracerless
// ctx return ctx unchanged and a nil span.
func StartRoot(ctx context.Context, t *Tracer, op string) (context.Context, *Span) {
	var s *Span
	if parent, ok := ctx.Value(ctxKey{}).(*Span); ok && parent.tracer != nil {
		s = parent.tracer.startSpan(parent.TraceID, parent.SpanID, op)
	} else if t != nil {
		s = t.startSpan(0, 0, op)
	} else {
		return ctx, nil
	}
	s.noPool = true // the derived context may outlive End
	return context.WithValue(ctx, ctxKey{}, s), s
}

// newSpan starts a span under ctx's ambient tracer, nil when the context
// carries none.
func newSpan(ctx context.Context, op string) *Span {
	parent, ok := ctx.Value(ctxKey{}).(*Span)
	if !ok || parent.tracer == nil {
		return nil
	}
	return parent.tracer.startSpan(parent.TraceID, parent.SpanID, op)
}

// Root begins a root span directly on the tracer, bypassing context
// plumbing entirely: for process entry points (e.g. a replica serving one
// request) where no enclosing span can exist. A nil tracer returns a nil
// span, whose methods all no-op.
func (t *Tracer) Root(op string) *Span {
	if t == nil {
		return nil
	}
	return t.startSpan(0, 0, op)
}

// startSpan assigns identifiers and recycles a pooled span. A zero
// traceID starts a new trace rooted at this span.
func (t *Tracer) startSpan(traceID, parentID uint64, op string) *Span {
	id := t.ids.Add(1)
	if traceID == 0 {
		traceID = id
	}
	s := spanPool.Get().(*Span)
	*s = Span{
		TraceID:  traceID,
		SpanID:   id,
		ParentID: parentID,
		Op:       op,
		Start:    t.now(),
		tracer:   t,
	}
	return s
}

// record stores one completed span and, for pooled span kinds, recycles
// the allocation.
func (t *Tracer) record(s *Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	var dst *Span
	if len(t.ring) < t.capacity {
		t.ring = append(t.ring, Span{})
		dst = &t.ring[len(t.ring)-1]
	} else {
		dst = &t.ring[t.next]
	}
	*dst = *s
	dst.tracer = nil // recorded copies carry no back-pointer
	// Short attr lists live in the span's inline buffer; point the ring
	// copy at its own buffer so it shares no memory with the (possibly
	// recycled) source span.
	if n := len(dst.Attrs); n > 0 && n <= len(dst.attrBuf) {
		dst.Attrs = dst.attrBuf[:n]
	}
	t.next = (t.next + 1) % t.capacity
	t.total++
	sink := t.sink
	t.mu.Unlock()

	t.hist.Observe(s.Op, s.Duration)
	if sink != nil {
		line, err := json.Marshal(s)
		if err == nil {
			line = append(line, '\n')
			t.sinkMu.Lock()
			if _, err := sink.Write(line); err != nil {
				t.mu.Lock()
				t.sink = nil // sink failed: stop trying, keep tracing
				t.mu.Unlock()
			}
			t.sinkMu.Unlock()
		}
	}
	if !s.noPool {
		spanPool.Put(s)
	}
}

// Recent returns up to max completed spans, oldest first (recording
// order). max <= 0 returns everything retained.
func (t *Tracer) Recent(max int) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.ring)
	if max <= 0 || max > n {
		max = n
	}
	out := make([]Span, 0, max)
	// Oldest retained span sits at t.next once the ring has wrapped.
	start := 0
	if n == t.capacity {
		start = t.next
	}
	for i := n - max; i < n; i++ {
		out = append(out, t.ring[(start+i)%n])
		// Re-point inline-buffered attrs at the returned copy: the ring
		// slot's buffer will be overwritten once the slot is reused.
		c := &out[len(out)-1]
		if a := len(c.Attrs); a > 0 && a <= len(c.attrBuf) {
			c.Attrs = c.attrBuf[:a]
		}
	}
	return out
}

// Total returns how many spans have been recorded over the tracer's
// lifetime, including those the ring has since overwritten.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Capacity returns the ring's bound.
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return t.capacity
}
