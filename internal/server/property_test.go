package server

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"securestore/internal/cryptoutil"
	"securestore/internal/timestamp"
	"securestore/internal/wire"
)

// TestHeadConvergenceOrderIndependent is the property dissemination
// relies on: applying the same set of signed writes to two replicas in
// different orders yields identical heads (per-item join semilattice).
func TestHeadConvergenceOrderIndependent(t *testing.T) {
	ring := cryptoutil.NewKeyring()
	writer := cryptoutil.DeterministicKeyPair("writer", "s")
	ring.MustRegister(writer.ID, writer.Public)

	mkWrites := func(times []uint8) []*wire.SignedWrite {
		items := []string{"x", "y", "z"}
		out := make([]*wire.SignedWrite, 0, len(times))
		for i, tm := range times {
			w := &wire.SignedWrite{
				Group: "g",
				Item:  items[i%len(items)],
				Stamp: timestamp.Stamp{Time: uint64(tm) + 1},
				Value: []byte{byte(i), tm},
			}
			w.Sign(writer, nil)
			out = append(out, w)
		}
		return out
	}

	rng := rand.New(rand.NewSource(5))
	prop := func(times []uint8) bool {
		if len(times) == 0 {
			return true
		}
		writes := mkWrites(times)

		mkServer := func() *Server {
			srv := New(Config{ID: "s", Ring: ring})
			srv.RegisterGroup("g", Policy{Consistency: wire.MRC})
			return srv
		}
		a, b := mkServer(), mkServer()
		for _, w := range writes {
			if _, err := a.ServeRequest(context.Background(), "writer", wire.WriteReq{Write: w}); err != nil {
				return false
			}
		}
		perm := rng.Perm(len(writes))
		for _, i := range perm {
			if _, err := b.ServeRequest(context.Background(), "writer", wire.WriteReq{Write: writes[i]}); err != nil {
				return false
			}
		}
		for _, item := range []string{"x", "y", "z"} {
			ha, hb := a.Head("g", item), b.Head("g", item)
			switch {
			case ha == nil && hb == nil:
				continue
			case ha == nil || hb == nil:
				return false
			case ha.Stamp != hb.Stamp:
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestMultiWriterLogConvergence: the bounded multi-writer logs converge to
// the same newest-first contents regardless of delivery order.
func TestMultiWriterLogConvergence(t *testing.T) {
	ring := cryptoutil.NewKeyring()
	keys := map[string]cryptoutil.KeyPair{}
	for _, id := range []string{"a", "b"} {
		kp := cryptoutil.DeterministicKeyPair(id, "s")
		ring.MustRegister(id, kp.Public)
		keys[id] = kp
	}
	mk := func(writer string, tm uint64, value byte) *wire.SignedWrite {
		v := []byte{value}
		st := timestamp.Stamp{Time: tm, Writer: writer, Digest: cryptoutil.Digest(v)}
		w := &wire.SignedWrite{Group: "g", Item: "x", Stamp: st, Value: v,
			WriterCtx: map[string]timestamp.Stamp{"x": st}}
		w.Sign(keys[writer], nil)
		return w
	}

	writes := []*wire.SignedWrite{
		mk("a", 1, 10), mk("b", 1, 11), mk("a", 2, 12),
		mk("b", 3, 13), mk("a", 4, 14), mk("b", 5, 15),
	}
	rng := rand.New(rand.NewSource(6))

	logsOf := func(order []int) []timestamp.Stamp {
		srv := New(Config{ID: "s", Ring: ring, LogDepth: 4})
		srv.RegisterGroup("g", Policy{Consistency: wire.CC, MultiWriter: true})
		for _, i := range order {
			if _, err := srv.ServeRequest(context.Background(), writes[i].Writer, wire.WriteReq{Write: writes[i]}); err != nil {
				t.Fatal(err)
			}
		}
		resp, err := srv.ServeRequest(context.Background(), "a", wire.LogReq{Group: "g", Item: "x"})
		if err != nil {
			t.Fatal(err)
		}
		var stamps []timestamp.Stamp
		for _, w := range resp.(wire.LogResp).Writes {
			stamps = append(stamps, w.Stamp)
		}
		return stamps
	}

	base := logsOf([]int{0, 1, 2, 3, 4, 5})
	for trial := 0; trial < 10; trial++ {
		perm := rng.Perm(len(writes))
		got := logsOf(perm)
		if len(got) != len(base) {
			t.Fatalf("trial %d: log lengths %d vs %d", trial, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("trial %d: log[%d] = %v, want %v (order dependence)", trial, i, got[i], base[i])
			}
		}
	}
}
