package server

// admission.go implements the signed-request admission stage (DESIGN.md
// §7.11): concurrently arriving writes are collected into micro-batches
// and their signatures checked with one Ed25519 batch verification
// (cryptoutil.VerifyBatch) instead of one double-scalar multiplication
// each. Batching is adaptive — group-commit style, like the WAL — so an
// idle replica pays zero added latency:
//
//   - The first write to arrive becomes its batch's leader. It yields
//     the processor once so peers that are already runnable can join,
//     then — if no batch is being verified right now — flushes
//     immediately (a batch of one falls through to the plain
//     per-signature check).
//   - While a verification is in flight, later arrivals accumulate into
//     the next batch. Its leader flushes when the in-flight batch
//     finishes (handoff), when the batch reaches the size cap, or after
//     the flush deadline (~200µs) — whichever comes first. The deadline
//     only bounds the wait; it is never an idle sleep.
//
// Ordering: admission never reorders effects. A write's admit call
// returns only after its own batch verifies, and integration happens
// after that, in the caller's goroutine, under the same locks as before
// — so any two writes that were ordered before (one's admit returned
// before the other's began) stay ordered, which is what the MW/CC causal
// gating depends on. Verdicts are per-item: a write whose batch partner
// fails verification is still admitted independently (VerifyBatch
// bisects failures down to the offending signature).

import (
	"runtime"
	"sync"
	"time"

	"securestore/internal/cryptoutil"
	"securestore/internal/metrics"
)

const (
	// defaultVerifyBatch caps how many signatures one admission batch
	// carries. Past ~64 the multi-scalar multiplication's per-signature
	// saving flattens while batch latency keeps growing.
	defaultVerifyBatch = 64
	// defaultVerifyBatchWait bounds how long a batch leader waits for
	// company while another batch's verification is in flight.
	defaultVerifyBatchWait = 200 * time.Microsecond
)

// admitter is the admission batcher. One per server.
type admitter struct {
	ring    *cryptoutil.Keyring
	metrics *metrics.Counters
	max     int
	wait    time.Duration

	mu      sync.Mutex
	cur     *admissionBatch // open batch accepting arrivals (nil: none)
	running int             // batch verifications in flight
}

// admissionBatch is one micro-batch of signature-check jobs.
type admissionBatch struct {
	items []cryptoutil.BatchItem
	errs  []error
	done  chan struct{} // closed once errs is populated
	kick  chan struct{} // wakes the leader early: size cap or handoff
}

func newAdmitter(ring *cryptoutil.Keyring, m *metrics.Counters, max int, wait time.Duration) *admitter {
	if max <= 0 {
		max = defaultVerifyBatch
	}
	if wait <= 0 {
		wait = defaultVerifyBatchWait
	}
	return &admitter{ring: ring, metrics: m, max: max, wait: wait}
}

// admit submits one signature-check triple and blocks until its batch is
// verified, returning this item's verdict.
func (a *admitter) admit(signer string, data, sig []byte) error {
	a.mu.Lock()
	b := a.cur
	if b == nil {
		b = &admissionBatch{
			items: make([]cryptoutil.BatchItem, 0, a.max),
			done:  make(chan struct{}),
			kick:  make(chan struct{}, 1),
		}
		a.cur = b
	}
	idx := len(b.items)
	b.items = append(b.items, cryptoutil.BatchItem{Signer: signer, Data: data, Sig: sig})
	leader := idx == 0
	full := len(b.items) >= a.max
	if full {
		a.cur = nil // sealed: the next arrival opens a fresh batch
	}
	a.mu.Unlock()

	if !leader {
		if full {
			b.wake()
		}
		<-b.done
		return b.errs[idx]
	}

	// Leader. Give concurrently arriving requests one chance to join
	// before flushing: yield the processor once, so every runnable peer
	// gets to enqueue (or park on its own batch) first. On a single-CPU
	// host this is what forms batches at all — concurrent demand exists
	// but cannot enqueue while this goroutine holds the processor — and
	// on an idle server it is a ~no-op, so solo requests still flush
	// immediately with no added latency.
	if !full {
		runtime.Gosched()
		a.mu.Lock()
		full = a.cur != b || len(b.items) >= a.max
		busy := a.running > 0
		a.mu.Unlock()
		if !full && busy {
			// Another batch's verification is in flight: its arrivals-
			// while-running are this batch's company, so wait for the
			// handoff — bounded by the size cap and the flush deadline.
			t := time.NewTimer(a.wait)
			select {
			case <-b.kick:
			case <-t.C:
			}
			t.Stop()
		}
	}
	a.flush(b)
	return b.errs[idx]
}

// wake nudges the batch's leader without blocking; extra wakes are
// dropped.
func (b *admissionBatch) wake() {
	select {
	case b.kick <- struct{}{}:
	default:
	}
}

// flush seals and verifies the batch, publishes the verdicts, and hands
// off to the next open batch's leader.
func (a *admitter) flush(b *admissionBatch) {
	a.mu.Lock()
	if a.cur == b {
		a.cur = nil
	}
	a.running++
	a.mu.Unlock()

	a.metrics.AddVerifyBatch(len(b.items))
	b.errs = a.ring.VerifyBatch(b.items, a.metrics)
	close(b.done)

	a.mu.Lock()
	a.running--
	next := a.cur
	idle := a.running == 0
	a.mu.Unlock()
	if idle && next != nil {
		next.wake()
	}
}
