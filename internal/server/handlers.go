package server

import (
	"fmt"
	"hash/fnv"
	"sort"

	"securestore/internal/accessctl"
	"securestore/internal/sessionctx"
	"securestore/internal/timestamp"
	"securestore/internal/wire"
)

// All handlers run with s.mu held (dispatched from ServeRequest).

// handleContextRead returns the caller's stored signed context for a group.
// Faulty behaviours: Stale/Equivocate serve the first context version ever
// stored — the strongest undetectable lie available, since contexts are
// signed (Section 5.1: "faulty servers can only misbehave by either not
// responding or sending an old value of the context").
func (s *Server) handleContextRead(from string, r wire.ContextReadReq) (wire.Response, error) {
	if err := s.authorize(from, r.Group, r.Token, accessctl.ReadOnly); err != nil {
		return nil, err
	}
	st, ok := s.contexts[ctxKey{owner: r.Client, group: r.Group}]
	if !ok {
		return wire.ContextReadResp{}, nil
	}
	switch s.fault {
	case Stale:
		return wire.ContextReadResp{Ctx: st.first.Clone()}, nil
	case Equivocate:
		if callerParity(from) {
			return wire.ContextReadResp{Ctx: st.first.Clone()}, nil
		}
	}
	return wire.ContextReadResp{Ctx: st.cur.Clone()}, nil
}

// handleContextWrite stores a newer signed context. The server verifies the
// owner's signature so that it never overwrites its copy with spurious
// information (Section 6: "non-faulty servers need to verify the signature
// to ensure that they do not overwrite their context data").
func (s *Server) handleContextWrite(from string, r wire.ContextWriteReq) (wire.Response, error) {
	if r.Ctx == nil {
		return nil, fmt.Errorf("context write from %q: missing context", from)
	}
	if err := s.authorize(from, r.Ctx.Group, r.Token, accessctl.WriteOnly); err != nil {
		return nil, err
	}
	if r.Ctx.Owner != from {
		return nil, fmt.Errorf("context write: owner %q does not match sender %q", r.Ctx.Owner, from)
	}
	if err := r.Ctx.Verify(s.cfg.Ring, s.cfg.Metrics); err != nil {
		return nil, err
	}
	if s.fault == Stale {
		// A stale server acks but drops the update.
		return wire.Ack{}, nil
	}
	key := ctxKey{owner: r.Ctx.Owner, group: r.Ctx.Group}
	st, ok := s.contexts[key]
	switch {
	case !ok:
		clone := r.Ctx.Clone()
		s.contexts[key] = &ctxState{cur: clone, first: clone}
	case r.Ctx.Newer(st.cur):
		st.cur = r.Ctx.Clone()
	default:
		return wire.Ack{}, nil // old version: nothing to store or persist
	}
	if err := s.persistContextLocked(r.Ctx); err != nil {
		return nil, fmt.Errorf("persist context: %w", err)
	}
	return wire.Ack{}, nil
}

// handleMeta answers phase one of the read protocol with the stamp of the
// server's current copy.
func (s *Server) handleMeta(from string, r wire.MetaReq) (wire.Response, error) {
	if err := s.authorize(from, r.Group, r.Token, accessctl.ReadOnly); err != nil {
		return nil, err
	}
	st, ok := s.items[itemKey{group: r.Group, item: r.Item}]
	if !ok || st.head == nil {
		return wire.MetaResp{}, nil
	}
	stamp := st.head.Stamp
	switch s.fault {
	case Stale:
		stamp = stampOf(st.first)
	case CorruptMeta:
		// Advertise a timestamp for a write that does not exist, luring the
		// client into choosing this server in phase two.
		stamp.Time += 1_000_000
	case Equivocate:
		if callerParity(from) {
			stamp = stampOf(st.first)
		}
	}
	return wire.MetaResp{Has: true, Stamp: stamp}, nil
}

// handleValue answers phase two of the read protocol with the full signed
// write. A CorruptValue server tampers with the value; the client's
// signature check exposes it.
func (s *Server) handleValue(from string, r wire.ValueReq) (wire.Response, error) {
	if err := s.authorize(from, r.Group, r.Token, accessctl.ReadOnly); err != nil {
		return nil, err
	}
	st, ok := s.items[itemKey{group: r.Group, item: r.Item}]
	if !ok || st.head == nil {
		// An empty response (rather than an error) lets context
		// reconstruction count servers that simply hold no copy as
		// responsive, which matters because only faulty servers may be
		// treated as non-responding (Section 5.1).
		return wire.ValueResp{}, nil
	}
	w := st.head
	switch s.fault {
	case Stale:
		w = st.first
	case Equivocate:
		if callerParity(from) {
			w = st.first
		}
	case CorruptValue:
		corrupt := w.Clone()
		if len(corrupt.Value) > 0 {
			corrupt.Value[0] ^= 0xff
		} else {
			corrupt.Value = []byte{0xff}
		}
		return wire.ValueResp{Write: corrupt}, nil
	case CorruptMeta:
		// The server advertised a non-existent stamp; all it can produce is
		// its real copy (it cannot forge a signature), which the client will
		// reject as older than requested.
	}
	return wire.ValueResp{Write: w.Clone()}, nil
}

// handleWrite validates and stores a client write. For single-writer groups
// the sender must be the signer; disseminated writes arrive through
// handleGossipPush instead, so every direct write is first-hand.
func (s *Server) handleWrite(from string, r wire.WriteReq) (wire.Response, error) {
	w := r.Write
	if w == nil {
		return nil, wire.ErrBadWrite
	}
	if err := s.authorize(from, w.Group, r.Token, accessctl.WriteOnly); err != nil {
		return nil, err
	}
	if w.Writer != from {
		return nil, fmt.Errorf("%w: write signed by %q, sent by %q", ErrNotWriter, w.Writer, from)
	}
	if err := s.acceptWrite(w); err != nil {
		return nil, err
	}
	return wire.Ack{}, nil
}

// handleLog serves the multi-writer read protocol: the list of latest
// validated writes for an item, newest first. Healthy servers report only
// writes whose causal predecessors have arrived; a PrematureReport server
// also leaks gated pending writes (the attack readers mask with b+1
// matching replies).
func (s *Server) handleLog(from string, r wire.LogReq) (wire.Response, error) {
	if err := s.authorize(from, r.Group, r.Token, accessctl.ReadOnly); err != nil {
		return nil, err
	}
	key := itemKey{group: r.Group, item: r.Item}
	st, ok := s.items[key]
	var writes []*wire.SignedWrite
	if ok {
		if s.fault == Stale && st.first != nil {
			writes = append(writes, st.first.Clone())
		} else {
			for _, w := range st.log {
				writes = append(writes, w.Clone())
			}
			if len(writes) == 0 && st.head != nil {
				writes = append(writes, st.head.Clone())
			}
		}
	}
	if s.fault == PrematureReport {
		for _, w := range s.pending {
			if w.Group == r.Group && w.Item == r.Item {
				writes = append([]*wire.SignedWrite{w.Clone()}, writes...)
			}
		}
	}
	return wire.LogResp{Writes: writes}, nil
}

// handleGossipPush applies disseminated writes from a peer server. Each
// write carries its original client signature; forged or altered writes are
// rejected, so "a faulty server cannot propagate a non-existent or forged
// write" (Section 4).
func (s *Server) handleGossipPush(from string, r wire.GossipPushReq) (wire.Response, error) {
	if s.fault == Stale {
		// Acks but ignores the updates, staying behind.
		return wire.GossipPushResp{}, nil
	}
	applied := 0
	for _, w := range r.Writes {
		if err := s.acceptWrite(w); err == nil {
			applied++
		}
	}
	_ = from // the push sender's identity does not matter: writes are self-verifying
	return wire.GossipPushResp{Applied: applied}, nil
}

// handleGossipPull serves a peer's pull request with the updates
// accepted after the peer's high-water mark. Like pushes, the returned
// writes are self-verifying, so a faulty server answering a pull can at
// worst withhold updates.
func (s *Server) handleGossipPull(from string, r wire.GossipPullReq) (wire.Response, error) {
	_ = from // pulls are served to any peer; writes are self-verifying
	if s.fault == Stale {
		// Pretends to have nothing new (and echoes a stable epoch so the
		// puller never resets its mark over the lie).
		return wire.GossipPullResp{Seq: r.After, Epoch: s.epoch}, nil
	}
	writes, seq := s.updatesSinceLocked(r.After)
	return wire.GossipPullResp{Writes: writes, Seq: seq, Epoch: s.epoch}, nil
}

// ApplyDisseminated validates and integrates one pulled write, reporting
// whether it changed local state. The write is self-verifying, exactly as
// in a push.
func (s *Server) ApplyDisseminated(w *wire.SignedWrite) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fault == Stale {
		return false
	}
	pol := s.policyLocked(w.Group)
	fresh := s.freshLocked(w, pol)
	if err := s.acceptWrite(w); err != nil {
		return false
	}
	return fresh
}

// acceptWrite validates a signed write and integrates it into local state:
// verify signature (and multi-writer stamp discipline), update the per-item
// head/log, apply causal gating, and append to the dissemination log.
func (s *Server) acceptWrite(w *wire.SignedWrite) error {
	if err := w.Verify(s.cfg.Ring, s.cfg.Metrics); err != nil {
		return err
	}
	pol := s.policyLocked(w.Group)
	if pol.MultiWriter && w.Stamp.Writer == "" {
		return fmt.Errorf("%w: multi-writer group %q requires augmented timestamps", wire.ErrBadWrite, w.Group)
	}

	if s.fault == Stale {
		// Keeps only the very first version it sees.
		key := itemKey{group: w.Group, item: w.Item}
		if _, ok := s.items[key]; !ok {
			clone := w.Clone()
			s.items[key] = &itemState{head: clone, first: clone}
		}
		return nil
	}

	if pol.MultiWriter && pol.Consistency == wire.CC && !s.cfg.DisableCausalGating && !s.predecessorsArrivedLocked(w) {
		// Causal gating (Section 5.3): hold the write until the causally
		// preceding writes named in its context arrive. The write is
		// accepted (acked, retained) but not reported to readers.
		if !s.pendingContainsLocked(w) {
			if err := s.persistWriteLocked(w); err != nil {
				return fmt.Errorf("persist gated write: %w", err)
			}
			s.pending = append(s.pending, w.Clone())
		}
		return nil
	}

	if s.freshLocked(w, pol) {
		// Acknowledge only once durable: a crashed-and-recovered replica
		// must still hold everything it acked (Section 4 safe keeping).
		if err := s.persistWriteLocked(w); err != nil {
			return fmt.Errorf("persist write: %w", err)
		}
	}
	s.integrateLocked(w, pol)
	s.promotePendingLocked(pol)
	return nil
}

// freshLocked reports whether the validated write would change local
// state (and therefore deserves a persistence record).
func (s *Server) freshLocked(w *wire.SignedWrite, pol Policy) bool {
	st, ok := s.items[itemKey{group: w.Group, item: w.Item}]
	if !ok || st.head == nil || st.head.Stamp.Less(w.Stamp) {
		return true
	}
	if !pol.MultiWriter {
		return false
	}
	for _, existing := range st.log {
		if existing.Stamp == w.Stamp {
			return false
		}
	}
	return true
}

// integrateLocked installs a validated, gating-cleared write.
func (s *Server) integrateLocked(w *wire.SignedWrite, pol Policy) {
	key := itemKey{group: w.Group, item: w.Item}
	st, ok := s.items[key]
	if !ok {
		st = &itemState{}
		s.items[key] = st
	}
	clone := w.Clone()
	if st.first == nil {
		st.first = clone
	}

	newer := st.head == nil || st.head.Stamp.Less(w.Stamp)
	if newer {
		st.head = clone
	}

	if pol.MultiWriter {
		s.logInsertLocked(st, clone)
	}

	if newer {
		// Only new heads are worth disseminating.
		s.updates = append(s.updates, clone)
		s.seq++
		if len(s.updates) > s.cfg.MaxUpdateLog {
			// Trim the oldest entries; peers that were behind the trimmed
			// tail get a state transfer from updatesSinceLocked.
			drop := len(s.updates) - s.cfg.MaxUpdateLog
			s.updates = append(s.updates[:0:0], s.updates[drop:]...)
		}
	}
}

// logInsertLocked inserts a write into the item's bounded log (newest
// first, deduplicated by stamp).
func (s *Server) logInsertLocked(st *itemState, w *wire.SignedWrite) {
	for _, existing := range st.log {
		if existing.Stamp == w.Stamp {
			return
		}
	}
	st.log = append(st.log, w)
	sort.Slice(st.log, func(i, j int) bool { return st.log[j].Stamp.Less(st.log[i].Stamp) })
	if len(st.log) > s.cfg.LogDepth {
		st.log = st.log[:s.cfg.LogDepth]
	}
}

// predecessorsArrivedLocked reports whether every causally preceding write
// named in w's writer context (other than w's own item entry) is already
// reflected in local heads or the pending set's own item stamps.
func (s *Server) predecessorsArrivedLocked(w *wire.SignedWrite) bool {
	for item, ts := range w.WriterCtx {
		if item == w.Item {
			continue
		}
		st, ok := s.items[itemKey{group: w.Group, item: item}]
		if !ok || st.head == nil || st.head.Stamp.Less(ts) {
			return false
		}
	}
	return true
}

func (s *Server) pendingContainsLocked(w *wire.SignedWrite) bool {
	for _, p := range s.pending {
		if p.Group == w.Group && p.Item == w.Item && p.Stamp == w.Stamp {
			return true
		}
	}
	return false
}

// promotePendingLocked repeatedly integrates pending writes whose
// predecessors have now arrived.
func (s *Server) promotePendingLocked(pol Policy) {
	for {
		progressed := false
		remaining := s.pending[:0]
		for _, w := range s.pending {
			if s.predecessorsArrivedLocked(w) {
				s.integrateLocked(w, pol)
				progressed = true
			} else {
				remaining = append(remaining, w)
			}
		}
		s.pending = remaining
		if !progressed {
			return
		}
	}
}

// UpdatesSince returns dissemination-log entries with sequence numbers in
// (after, current], plus the current sequence number. The gossip engine
// tracks a per-peer high-water mark with this.
func (s *Server) UpdatesSince(after uint64) ([]*wire.SignedWrite, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.updatesSinceLocked(after)
}

func (s *Server) updatesSinceLocked(after uint64) ([]*wire.SignedWrite, uint64) {
	if after >= s.seq {
		return nil, s.seq
	}
	first := s.seq - uint64(len(s.updates)) + 1
	if after+1 < first {
		// The peer is behind the retained tail: state transfer. All
		// current heads carry everything the trimmed entries established
		// (each trimmed entry was superseded by, or is, some item's head).
		out := make([]*wire.SignedWrite, 0, len(s.items))
		for _, st := range s.items {
			if st.head != nil {
				out = append(out, st.head.Clone())
			}
		}
		return out, s.seq
	}
	start := int(after - first + 1)
	out := make([]*wire.SignedWrite, 0, len(s.updates)-start)
	for _, w := range s.updates[start:] {
		out = append(out, w.Clone())
	}
	return out, s.seq
}

// Head returns the server's current head write for an item (testing and
// experiment instrumentation).
func (s *Server) Head(group, item string) *wire.SignedWrite {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.items[itemKey{group: group, item: item}]
	if !ok || st.head == nil {
		return nil
	}
	return st.head.Clone()
}

// StoredContext returns the server's current stored context for an owner
// and group (testing).
func (s *Server) StoredContext(owner, group string) *sessionctx.Signed {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.contexts[ctxKey{owner: owner, group: group}]
	if !ok {
		return nil
	}
	return st.cur.Clone()
}

// HeadStamp returns the stamp of the head write, zero when absent.
func (s *Server) HeadStamp(group, item string) timestamp.Stamp {
	if w := s.Head(group, item); w != nil {
		return w.Stamp
	}
	return timestamp.Stamp{}
}

// callerParity buckets caller names for Equivocate mode.
func callerParity(from string) bool {
	h := fnv.New32a()
	_, _ = h.Write([]byte(from))
	return h.Sum32()%2 == 0
}
