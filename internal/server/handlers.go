package server

import (
	"fmt"
	"hash/fnv"
	"sort"

	"securestore/internal/accessctl"
	"securestore/internal/sessionctx"
	"securestore/internal/timestamp"
	"securestore/internal/wire"
)

// All handlers run with s.stw held in read mode (dispatched from serve) and
// receive the fault mode snapshotted at dispatch, so one request observes
// one mode even if SetFault races with it. Crypto verification happens
// before any stripe lock is taken: stored data is self-verifying, so
// validity does not depend on server state.

// handleContextRead returns the caller's stored signed context for a group.
// Faulty behaviours: Stale/Equivocate serve the first context version ever
// stored — the strongest undetectable lie available, since contexts are
// signed (Section 5.1: "faulty servers can only misbehave by either not
// responding or sending an old value of the context").
func (s *Server) handleContextRead(from string, r wire.ContextReadReq, fault FaultMode) (wire.Response, error) {
	if err := s.authorize(from, r.Group, r.Token, accessctl.ReadOnly); err != nil {
		return nil, err
	}
	key := ctxKey{owner: r.Client, group: r.Group}
	sp := s.ctxStripeFor(key)
	s.rlock(sp)
	defer sp.mu.RUnlock()
	st, ok := sp.contexts[key]
	if !ok {
		return wire.ContextReadResp{}, nil
	}
	switch fault {
	case Stale:
		return wire.ContextReadResp{Ctx: st.first.Clone()}, nil
	case Equivocate:
		if callerParity(from) {
			return wire.ContextReadResp{Ctx: st.first.Clone()}, nil
		}
	}
	return wire.ContextReadResp{Ctx: st.cur.Clone()}, nil
}

// handleContextWrite stores a newer signed context. The server verifies the
// owner's signature so that it never overwrites its copy with spurious
// information (Section 6: "non-faulty servers need to verify the signature
// to ensure that they do not overwrite their context data"). Verification
// runs before the stripe lock.
func (s *Server) handleContextWrite(from string, r wire.ContextWriteReq, fault FaultMode) (wire.Response, error) {
	if r.Ctx == nil {
		return nil, fmt.Errorf("context write from %q: missing context", from)
	}
	if err := s.authorize(from, r.Ctx.Group, r.Token, accessctl.WriteOnly); err != nil {
		return nil, err
	}
	if r.Ctx.Owner != from {
		return nil, fmt.Errorf("context write: owner %q does not match sender %q", r.Ctx.Owner, from)
	}
	if err := s.verifyTriple(r.Ctx.Owner, r.Ctx.SigningBytes(), r.Ctx.Sig); err != nil {
		return nil, fmt.Errorf("context for %s/%s seq %d: %w", r.Ctx.Owner, r.Ctx.Group, r.Ctx.Seq, err)
	}
	if fault == Stale {
		// A stale server acks but drops the update.
		return wire.Ack{}, nil
	}
	key := ctxKey{owner: r.Ctx.Owner, group: r.Ctx.Group}
	sp := s.ctxStripeFor(key)
	s.lock(sp)
	defer sp.mu.Unlock()
	st, ok := sp.contexts[key]
	switch {
	case !ok:
		clone := r.Ctx.Clone()
		sp.contexts[key] = &ctxState{cur: clone, first: clone}
	case r.Ctx.Newer(st.cur):
		st.cur = r.Ctx.Clone()
	default:
		return wire.Ack{}, nil // old version: nothing to store or persist
	}
	if err := s.persistContext(r.Ctx); err != nil {
		return nil, fmt.Errorf("persist context: %w", err)
	}
	return wire.Ack{}, nil
}

// handleMeta answers phase one of the read protocol with the stamp of the
// server's current copy. Read-only: shares the item's stripe lock.
func (s *Server) handleMeta(from string, r wire.MetaReq, fault FaultMode) (wire.Response, error) {
	if err := s.authorize(from, r.Group, r.Token, accessctl.ReadOnly); err != nil {
		return nil, err
	}
	key := itemKey{group: r.Group, item: r.Item}
	sp := s.stripeFor(key)
	s.rlock(sp)
	defer sp.mu.RUnlock()
	st, ok := sp.items[key]
	if !ok || st.head == nil {
		return wire.MetaResp{}, nil
	}
	stamp := st.head.Stamp
	switch fault {
	case Stale:
		stamp = stampOf(st.first)
	case CorruptMeta:
		// Advertise a timestamp for a write that does not exist, luring the
		// client into choosing this server in phase two.
		stamp.Time += 1_000_000
	case Equivocate:
		if callerParity(from) {
			stamp = stampOf(st.first)
		}
	}
	return wire.MetaResp{Has: true, Stamp: stamp}, nil
}

// handleValue answers phase two of the read protocol with the full signed
// write. A CorruptValue server tampers with the value; the client's
// signature check exposes it. Read-only: shares the item's stripe lock.
func (s *Server) handleValue(from string, r wire.ValueReq, fault FaultMode) (wire.Response, error) {
	if err := s.authorize(from, r.Group, r.Token, accessctl.ReadOnly); err != nil {
		return nil, err
	}
	key := itemKey{group: r.Group, item: r.Item}
	sp := s.stripeFor(key)
	s.rlock(sp)
	defer sp.mu.RUnlock()
	st, ok := sp.items[key]
	if !ok || st.head == nil {
		// An empty response (rather than an error) lets context
		// reconstruction count servers that simply hold no copy as
		// responsive, which matters because only faulty servers may be
		// treated as non-responding (Section 5.1).
		return wire.ValueResp{}, nil
	}
	w := st.head
	switch fault {
	case Stale:
		w = st.first
	case Equivocate:
		if callerParity(from) {
			w = st.first
		}
	case CorruptValue:
		corrupt := w.Clone()
		if len(corrupt.Value) > 0 {
			corrupt.Value[0] ^= 0xff
		} else {
			corrupt.Value = []byte{0xff}
		}
		return wire.ValueResp{Write: corrupt}, nil
	case CorruptMeta:
		// The server advertised a non-existent stamp; all it can produce is
		// its real copy (it cannot forge a signature), which the client will
		// reject as older than requested.
	}
	return wire.ValueResp{Write: w.Clone()}, nil
}

// handleWrite validates and stores a client write. For single-writer groups
// the sender must be the signer; disseminated writes arrive through
// handleGossipPush instead, so every direct write is first-hand.
func (s *Server) handleWrite(from string, r wire.WriteReq, fault FaultMode) (wire.Response, error) {
	w := r.Write
	if w == nil {
		return nil, wire.ErrBadWrite
	}
	if err := s.authorize(from, w.Group, r.Token, accessctl.WriteOnly); err != nil {
		return nil, err
	}
	if w.Writer != from {
		return nil, fmt.Errorf("%w: write signed by %q, sent by %q", ErrNotWriter, w.Writer, from)
	}
	if _, err := s.acceptWrite(w, fault); err != nil {
		return nil, err
	}
	return wire.Ack{}, nil
}

// handleLog serves the multi-writer read protocol: the list of latest
// validated writes for an item, newest first. Healthy servers report only
// writes whose causal predecessors have arrived; a PrematureReport server
// also leaks gated pending writes (the attack readers mask with b+1
// matching replies).
func (s *Server) handleLog(from string, r wire.LogReq, fault FaultMode) (wire.Response, error) {
	if err := s.authorize(from, r.Group, r.Token, accessctl.ReadOnly); err != nil {
		return nil, err
	}
	key := itemKey{group: r.Group, item: r.Item}
	sp := s.stripeFor(key)
	var writes []*wire.SignedWrite
	s.rlock(sp)
	if st, ok := sp.items[key]; ok {
		if fault == Stale && st.first != nil {
			writes = append(writes, st.first.Clone())
		} else {
			for _, w := range st.log {
				writes = append(writes, w.Clone())
			}
			if len(writes) == 0 && st.head != nil {
				writes = append(writes, st.head.Clone())
			}
		}
	}
	sp.mu.RUnlock()
	if fault == PrematureReport {
		// Stripe lock released first: the pending set lives under mw, and
		// no path holds a stripe lock while acquiring mw.
		s.mw.Lock()
		for _, w := range s.mw.pending {
			if w.Group == r.Group && w.Item == r.Item {
				writes = append([]*wire.SignedWrite{w.Clone()}, writes...)
			}
		}
		s.mw.Unlock()
	}
	return wire.LogResp{Writes: writes}, nil
}

// handleGossipPush applies disseminated writes from a peer server. Each
// write carries its original client signature; forged or altered writes are
// rejected, so "a faulty server cannot propagate a non-existent or forged
// write" (Section 4).
func (s *Server) handleGossipPush(from string, r wire.GossipPushReq, fault FaultMode) (wire.Response, error) {
	if fault == Stale {
		// Acks but ignores the updates, staying behind.
		return wire.GossipPushResp{}, nil
	}
	applied := 0
	for _, w := range r.Writes {
		if _, err := s.acceptWrite(w, fault); err == nil {
			applied++
		}
	}
	_ = from // the push sender's identity does not matter: writes are self-verifying
	return wire.GossipPushResp{Applied: applied}, nil
}

// handleGossipPull serves a peer's pull request with the updates
// accepted after the peer's high-water mark. Like pushes, the returned
// writes are self-verifying, so a faulty server answering a pull can at
// worst withhold updates. Replies are paged: at most Limit writes per
// frame (wire.DefaultGossipBatch when the puller names no limit), with
// More/Cursor telling the puller how to fetch the rest — a cold replica
// catching up on a large log can never force this server to materialize,
// encode, or ship the whole backlog in one frame.
func (s *Server) handleGossipPull(from string, r wire.GossipPullReq, fault FaultMode) (wire.Response, error) {
	_ = from // pulls are served to any peer; writes are self-verifying
	if fault == Stale {
		// Pretends to have nothing new (and echoes a stable epoch so the
		// puller never resets its mark over the lie).
		return wire.GossipPullResp{Seq: r.After, Epoch: s.epoch.Load()}, nil
	}
	limit := r.Limit
	if limit <= 0 {
		limit = wire.DefaultGossipBatch
	}
	writes, seq, more, cursor := s.updatesPage(r.After, limit, r.Cursor)
	return wire.GossipPullResp{Writes: writes, Seq: seq, Epoch: s.epoch.Load(), More: more, Cursor: cursor}, nil
}

// ApplyDisseminated validates and integrates one pulled write, reporting
// whether it changed local state. The write is self-verifying, exactly as
// in a push.
func (s *Server) ApplyDisseminated(w *wire.SignedWrite) bool {
	if s.cfg.Persist != nil && s.cfg.Persist.NeedsCompaction() {
		s.compact()
	}
	s.stw.RLock()
	defer s.stw.RUnlock()
	fault := s.Fault()
	if fault == Stale {
		return false
	}
	changed, err := s.acceptWrite(w, fault)
	return err == nil && changed
}

// acceptWrite validates a signed write and integrates it into local state:
// verify signature (and multi-writer stamp discipline), update the per-item
// head/log, apply causal gating, and append to the dissemination log. It
// reports whether the write changed local state (a new head, log entry, or
// newly gated pending write).
//
// Verification is pure crypto over the self-verifying write and runs with
// no state lock held. Multi-writer CC groups then serialize on s.mw
// (causal gating is a cross-item predicate); everything else goes straight
// to the item's stripe.
func (s *Server) acceptWrite(w *wire.SignedWrite, fault FaultMode) (bool, error) {
	if s.cfg.Owns != nil && !s.cfg.Owns(w.Item) {
		// A disseminated (or replayed) write for another shard's item: a
		// healthy in-group peer never sends one, so this is either a
		// misconfigured peer or a malicious cross-shard push. Rejecting it
		// keeps each group's state — and its causal gating — closed over
		// the items it owns.
		s.cfg.Metrics.AddRoutingMismatch()
		return false, fmt.Errorf("server %s: %q: %w", s.cfg.ID, w.Item, wire.ErrWrongShard)
	}
	if err := s.verifyWrite(w); err != nil {
		return false, err
	}
	if wire.IsFragmentEnvelope(w.Value) {
		// Count accepted erasure-coded shares so operators can see the
		// fragmented/replicated traffic split per replica.
		s.cfg.Metrics.AddCustom("server.write.fragment", 1)
	}
	pol := s.policy(w.Group)
	if pol.MultiWriter && w.Stamp.Writer == "" {
		return false, fmt.Errorf("%w: multi-writer group %q requires augmented timestamps", wire.ErrBadWrite, w.Group)
	}

	if fault == Stale {
		// Keeps only the very first version it sees.
		key := itemKey{group: w.Group, item: w.Item}
		sp := s.stripeFor(key)
		s.lock(sp)
		if _, ok := sp.items[key]; !ok {
			clone := w.Clone()
			sp.items[key] = &itemState{head: clone, first: clone}
		}
		sp.mu.Unlock()
		return false, nil
	}

	if pol.MultiWriter && pol.Consistency == wire.CC && !s.cfg.DisableCausalGating {
		// All causally-gated traffic serializes here: the gate check and
		// the integration it depends on must not interleave, or a write
		// could be gated on a predecessor that integrates concurrently and
		// never get promoted.
		s.mw.Lock()
		defer s.mw.Unlock()
		if !s.predecessorsArrived(w) {
			// Causal gating (Section 5.3): hold the write until the causally
			// preceding writes named in its context arrive. The write is
			// accepted (acked, retained) but not reported to readers.
			if s.pendingContains(w) {
				return false, nil
			}
			if err := s.persistWrite(w); err != nil {
				return false, fmt.Errorf("persist gated write: %w", err)
			}
			s.mw.pending = append(s.mw.pending, w.Clone())
			return true, nil
		}
		changed, err := s.integrateOne(w, pol)
		if err != nil {
			return false, err
		}
		s.promotePending()
		return changed, nil
	}

	return s.integrateOne(w, pol)
}

// integrateOne persists (if fresh) and integrates one validated,
// gating-cleared write under its item's stripe lock, reporting freshness.
// The persistence append happens inside the stripe lock — a write is only
// acknowledged once durable, and appends for the same item must hit the
// log in integration order — but appends from different stripes coalesce
// into shared group commits (storage.Log).
func (s *Server) integrateOne(w *wire.SignedWrite, pol Policy) (bool, error) {
	key := itemKey{group: w.Group, item: w.Item}
	sp := s.stripeFor(key)
	s.lock(sp)
	defer sp.mu.Unlock()
	fresh := freshLocked(sp, key, w, pol)
	if fresh {
		// Acknowledge only once durable: a crashed-and-recovered replica
		// must still hold everything it acked (Section 4 safe keeping).
		if err := s.persistWrite(w); err != nil {
			return false, fmt.Errorf("persist write: %w", err)
		}
	}
	s.integrateLocked(sp, key, w, pol)
	return fresh, nil
}

// freshLocked reports whether the validated write would change local
// state (and therefore deserves a persistence record). Caller holds the
// key's stripe lock.
func freshLocked(sp *stripe, key itemKey, w *wire.SignedWrite, pol Policy) bool {
	st, ok := sp.items[key]
	if !ok || st.head == nil || st.head.Stamp.Less(w.Stamp) {
		return true
	}
	if !pol.MultiWriter {
		return false
	}
	for _, existing := range st.log {
		if existing.Stamp == w.Stamp {
			return false
		}
	}
	return true
}

// integrateLocked installs a validated, gating-cleared write. Caller holds
// the key's stripe lock; the dissemination log's own mutex nests inside it
// (stripe → dissem, never the reverse).
func (s *Server) integrateLocked(sp *stripe, key itemKey, w *wire.SignedWrite, pol Policy) {
	st, ok := sp.items[key]
	if !ok {
		st = &itemState{}
		sp.items[key] = st
	}
	clone := w.Clone()
	if st.first == nil {
		st.first = clone
	}

	newer := st.head == nil || st.head.Stamp.Less(w.Stamp)
	if newer {
		st.head = clone
	}

	if pol.MultiWriter {
		s.logInsertLocked(st, clone)
	}

	if newer {
		// Only new heads are worth disseminating — and fragment envelopes
		// not at all: every peer keeps exactly the one share addressed to
		// it, so a pushed foreign share is dead weight (the receiver can
		// neither serve it under its own index nor be repaired by it),
		// and at large values the share bytes dominate gossip CPU. Peers
		// that missed a dispersal are covered by the read path's n−b
		// quorum, not anti-entropy.
		if wire.IsFragmentEnvelope(clone.Value) {
			return
		}
		// Appending while the stripe lock is held keeps the dissemination
		// log consistent with head order for this item.
		s.dissem.Lock()
		s.dissem.updates = append(s.dissem.updates, clone)
		s.dissem.seq++
		if len(s.dissem.updates) > s.cfg.MaxUpdateLog {
			// Trim the oldest entries; peers that were behind the trimmed
			// tail get a state transfer from updatesSince.
			drop := len(s.dissem.updates) - s.cfg.MaxUpdateLog
			s.dissem.updates = append(s.dissem.updates[:0:0], s.dissem.updates[drop:]...)
		}
		s.dissem.Unlock()
	}
}

// logInsertLocked inserts a write into the item's bounded log (newest
// first, deduplicated by stamp). Caller holds the item's stripe lock.
func (s *Server) logInsertLocked(st *itemState, w *wire.SignedWrite) {
	for _, existing := range st.log {
		if existing.Stamp == w.Stamp {
			return
		}
	}
	st.log = append(st.log, w)
	sort.Slice(st.log, func(i, j int) bool { return st.log[j].Stamp.Less(st.log[i].Stamp) })
	if len(st.log) > s.cfg.LogDepth {
		st.log = st.log[:s.cfg.LogDepth]
	}
}

// predecessorsArrived reports whether every causally preceding write named
// in w's writer context (other than w's own item entry) is already
// reflected in local heads. Caller holds s.mw, which orders this check
// against every concurrent CC integration; the per-item stripe read locks
// are only for memory visibility (heads never retreat).
func (s *Server) predecessorsArrived(w *wire.SignedWrite) bool {
	for item, ts := range w.WriterCtx {
		if item == w.Item {
			continue
		}
		if s.cfg.Owns != nil && !s.cfg.Owns(item) {
			// Cross-shard predecessor: this replica's group never stores
			// that item, so waiting for it would gate the write forever.
			// Causal order across shards is carried by the client instead —
			// its context floor makes any reader of this write demand the
			// predecessor's freshness from the predecessor's own shard, and
			// the writing client serializes cross-shard CC writes so they
			// cannot overtake each other in flight (DESIGN.md §7.8).
			continue
		}
		key := itemKey{group: w.Group, item: item}
		sp := s.stripeFor(key)
		s.rlock(sp)
		st, ok := sp.items[key]
		arrived := ok && st.head != nil && !st.head.Stamp.Less(ts)
		sp.mu.RUnlock()
		if !arrived {
			return false
		}
	}
	return true
}

// pendingContains reports whether the pending set already holds this exact
// write. Caller holds s.mw.
func (s *Server) pendingContains(w *wire.SignedWrite) bool {
	for _, p := range s.mw.pending {
		if p.Group == w.Group && p.Item == w.Item && p.Stamp == w.Stamp {
			return true
		}
	}
	return false
}

// promotePending repeatedly integrates pending writes whose predecessors
// have now arrived. Caller holds s.mw. Pending writes were persisted when
// gated, so promotion integrates without a second log append; each write
// integrates under its own group's policy.
func (s *Server) promotePending() {
	for {
		progressed := false
		remaining := s.mw.pending[:0]
		for _, w := range s.mw.pending {
			if s.predecessorsArrived(w) {
				key := itemKey{group: w.Group, item: w.Item}
				sp := s.stripeFor(key)
				s.lock(sp)
				s.integrateLocked(sp, key, w, s.policy(w.Group))
				sp.mu.Unlock()
				progressed = true
			} else {
				remaining = append(remaining, w)
			}
		}
		s.mw.pending = remaining
		if !progressed {
			return
		}
	}
}

// UpdatesSince returns dissemination-log entries with sequence numbers in
// (after, current], plus the current sequence number. The gossip engine
// tracks a per-peer high-water mark with this.
func (s *Server) UpdatesSince(after uint64) ([]*wire.SignedWrite, uint64) {
	s.stw.RLock()
	defer s.stw.RUnlock()
	return s.updatesSince(after)
}

// updatesSince is UpdatesSince under an already-held stw read lock.
func (s *Server) updatesSince(after uint64) ([]*wire.SignedWrite, uint64) {
	s.dissem.Lock()
	seq := s.dissem.seq
	if after >= seq {
		s.dissem.Unlock()
		return nil, seq
	}
	first := seq - uint64(len(s.dissem.updates)) + 1
	if after+1 >= first {
		start := int(after - first + 1)
		out := make([]*wire.SignedWrite, 0, len(s.dissem.updates)-start)
		for _, w := range s.dissem.updates[start:] {
			out = append(out, w.Clone())
		}
		s.dissem.Unlock()
		return out, seq
	}
	s.dissem.Unlock()
	// The peer is behind the retained tail: state transfer. All current
	// heads carry everything the trimmed entries established (each trimmed
	// entry was superseded by, or is, some item's head). The dissemination
	// mutex is released before the stripe sweep — heads only advance, so
	// every head as of seq is covered, and any head that advances during
	// the sweep is a write the peer would have to fetch anyway.
	var out []*wire.SignedWrite
	for i := range s.stripes {
		sp := &s.stripes[i]
		s.rlock(sp)
		for _, st := range sp.items {
			if st.head != nil && !wire.IsFragmentEnvelope(st.head.Value) {
				out = append(out, st.head.Clone())
			}
		}
		sp.mu.RUnlock()
	}
	return out, seq
}

// updatesPage is the paged form of updatesSince backing handleGossipPull
// (caller holds the stw read lock). In-window backlogs return at most
// limit entries with Seq set to the last returned entry's sequence number,
// so the puller continues with After = Seq. A peer behind the retained
// tail gets a paged state transfer of item heads instead, ordered by a
// stable group/item key: each page returns the heads after cursor, and
// Seq carries the current log position — which the puller must adopt only
// once the transfer completes (any write accepted mid-transfer has a
// higher sequence number than the first page's snapshot, so it is caught
// by the next in-window pull).
func (s *Server) updatesPage(after uint64, limit int, cursor string) (writes []*wire.SignedWrite, seq uint64, more bool, next string) {
	s.dissem.Lock()
	seq = s.dissem.seq
	if cursor == "" && after >= seq {
		s.dissem.Unlock()
		return nil, seq, false, ""
	}
	first := seq - uint64(len(s.dissem.updates)) + 1
	if cursor == "" && after+1 >= first {
		start := int(after - first + 1)
		window := s.dissem.updates[start:]
		n := len(window)
		if n > limit {
			n, more = limit, true
		}
		writes = make([]*wire.SignedWrite, 0, n)
		for _, w := range window[:n] {
			writes = append(writes, w.Clone())
		}
		s.dissem.Unlock()
		if more {
			seq = first + uint64(start+n) - 1
		}
		return writes, seq, more, ""
	}
	s.dissem.Unlock()
	// State transfer (see updatesSince for why heads cover the trimmed
	// tail), paged by item key so each page is a bounded frame.
	type headEntry struct {
		key string
		w   *wire.SignedWrite
	}
	var heads []headEntry
	for i := range s.stripes {
		sp := &s.stripes[i]
		s.rlock(sp)
		for k, st := range sp.items {
			if st.head == nil || wire.IsFragmentEnvelope(st.head.Value) {
				continue
			}
			if key := k.group + "\x00" + k.item; key > cursor {
				heads = append(heads, headEntry{key, st.head.Clone()})
			}
		}
		sp.mu.RUnlock()
	}
	sort.Slice(heads, func(i, j int) bool { return heads[i].key < heads[j].key })
	if len(heads) > limit {
		heads = heads[:limit]
		more, next = true, heads[limit-1].key
	}
	writes = make([]*wire.SignedWrite, 0, len(heads))
	for _, h := range heads {
		writes = append(writes, h.w)
	}
	return writes, seq, more, next
}

// Head returns the server's current head write for an item (testing and
// experiment instrumentation).
func (s *Server) Head(group, item string) *wire.SignedWrite {
	s.stw.RLock()
	defer s.stw.RUnlock()
	key := itemKey{group: group, item: item}
	sp := s.stripeFor(key)
	s.rlock(sp)
	defer sp.mu.RUnlock()
	st, ok := sp.items[key]
	if !ok || st.head == nil {
		return nil
	}
	return st.head.Clone()
}

// StoredContext returns the server's current stored context for an owner
// and group (testing).
func (s *Server) StoredContext(owner, group string) *sessionctx.Signed {
	s.stw.RLock()
	defer s.stw.RUnlock()
	key := ctxKey{owner: owner, group: group}
	sp := s.ctxStripeFor(key)
	s.rlock(sp)
	defer sp.mu.RUnlock()
	st, ok := sp.contexts[key]
	if !ok {
		return nil
	}
	return st.cur.Clone()
}

// HeadStamp returns the stamp of the head write, zero when absent.
func (s *Server) HeadStamp(group, item string) timestamp.Stamp {
	if w := s.Head(group, item); w != nil {
		return w.Stamp
	}
	return timestamp.Stamp{}
}

// callerParity buckets caller names for Equivocate mode.
func callerParity(from string) bool {
	h := fnv.New32a()
	_, _ = h.Write([]byte(from))
	return h.Sum32()%2 == 0
}
