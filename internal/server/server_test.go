package server

import (
	"context"
	"errors"
	"testing"

	"securestore/internal/accessctl"
	"securestore/internal/cryptoutil"
	"securestore/internal/sessionctx"
	"securestore/internal/timestamp"
	"securestore/internal/transport"
	"securestore/internal/wire"
)

// fixture bundles a server with signing identities.
type fixture struct {
	srv    *Server
	ring   *cryptoutil.Keyring
	writer cryptoutil.KeyPair
	other  cryptoutil.KeyPair
}

func newFixture(t *testing.T, policy Policy) *fixture {
	t.Helper()
	ring := cryptoutil.NewKeyring()
	writer := cryptoutil.DeterministicKeyPair("writer", "s")
	other := cryptoutil.DeterministicKeyPair("other", "s")
	ring.MustRegister(writer.ID, writer.Public)
	ring.MustRegister(other.ID, other.Public)
	srv := New(Config{ID: "s00", Ring: ring})
	srv.RegisterGroup("g", policy)
	return &fixture{srv: srv, ring: ring, writer: writer, other: other}
}

func (f *fixture) write(t *testing.T, item string, value []byte, ts timestamp.Stamp, ctxVec sessionctx.Vector) *wire.SignedWrite {
	t.Helper()
	w := &wire.SignedWrite{Group: "g", Item: item, Stamp: ts, Value: value, WriterCtx: ctxVec}
	w.Sign(f.writer, nil)
	return w
}

func (f *fixture) mwWrite(t *testing.T, key cryptoutil.KeyPair, item string, value []byte, tm uint64, ctxVec sessionctx.Vector) *wire.SignedWrite {
	t.Helper()
	st := timestamp.Stamp{Time: tm, Writer: key.ID, Digest: cryptoutil.Digest(value)}
	if ctxVec == nil {
		ctxVec = sessionctx.Vector{}
	}
	ctxVec[item] = st
	w := &wire.SignedWrite{Group: "g", Item: item, Stamp: st, Value: value, WriterCtx: ctxVec}
	w.Sign(key, nil)
	return w
}

func (f *fixture) serve(t *testing.T, from string, req wire.Request) (wire.Response, error) {
	t.Helper()
	return f.srv.ServeRequest(context.Background(), from, req)
}

func TestWriteThenReadBack(t *testing.T) {
	f := newFixture(t, Policy{Consistency: wire.MRC})
	w := f.write(t, "x", []byte("v1"), timestamp.Stamp{Time: 1}, nil)

	if _, err := f.serve(t, "writer", wire.WriteReq{Write: w}); err != nil {
		t.Fatalf("write: %v", err)
	}
	resp, err := f.serve(t, "writer", wire.MetaReq{Group: "g", Item: "x"})
	if err != nil {
		t.Fatal(err)
	}
	meta, ok := resp.(wire.MetaResp)
	if !ok || !meta.Has || meta.Stamp.Time != 1 {
		t.Fatalf("meta = %+v", resp)
	}
	resp, err = f.serve(t, "writer", wire.ValueReq{Group: "g", Item: "x"})
	if err != nil {
		t.Fatal(err)
	}
	vr, ok := resp.(wire.ValueResp)
	if !ok || string(vr.Write.Value) != "v1" {
		t.Fatalf("value = %+v", resp)
	}
}

func TestWriteOlderStampIgnoredForHead(t *testing.T) {
	f := newFixture(t, Policy{Consistency: wire.MRC})
	if _, err := f.serve(t, "writer", wire.WriteReq{Write: f.write(t, "x", []byte("v5"), timestamp.Stamp{Time: 5}, nil)}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.serve(t, "writer", wire.WriteReq{Write: f.write(t, "x", []byte("v3"), timestamp.Stamp{Time: 3}, nil)}); err != nil {
		t.Fatal(err)
	}
	if head := f.srv.Head("g", "x"); string(head.Value) != "v5" {
		t.Fatalf("head = %q, want v5", head.Value)
	}
}

func TestWriteRejectsSenderMismatch(t *testing.T) {
	f := newFixture(t, Policy{Consistency: wire.MRC})
	w := f.write(t, "x", []byte("v"), timestamp.Stamp{Time: 1}, nil)
	if _, err := f.serve(t, "other", wire.WriteReq{Write: w}); !errors.Is(err, ErrNotWriter) {
		t.Fatalf("err = %v, want ErrNotWriter", err)
	}
}

func TestWriteRejectsBadSignature(t *testing.T) {
	f := newFixture(t, Policy{Consistency: wire.MRC})
	w := f.write(t, "x", []byte("v"), timestamp.Stamp{Time: 1}, nil)
	w.Value = []byte("tampered")
	if _, err := f.serve(t, "writer", wire.WriteReq{Write: w}); err == nil {
		t.Fatal("tampered write accepted")
	}
	if f.srv.Head("g", "x") != nil {
		t.Fatal("tampered write stored")
	}
}

func TestMultiWriterRequiresAugmentedStamp(t *testing.T) {
	f := newFixture(t, Policy{Consistency: wire.CC, MultiWriter: true})
	w := f.write(t, "x", []byte("v"), timestamp.Stamp{Time: 1}, nil) // scalar stamp
	if _, err := f.serve(t, "writer", wire.WriteReq{Write: w}); !errors.Is(err, wire.ErrBadWrite) {
		t.Fatalf("err = %v, want ErrBadWrite", err)
	}
}

func TestCausalGatingHoldsAndPromotes(t *testing.T) {
	f := newFixture(t, Policy{Consistency: wire.CC, MultiWriter: true})

	// w2 depends on dep@5 which has not arrived: gated.
	dep := f.mwWrite(t, f.writer, "dep", []byte("d"), 5, nil)
	w2 := f.mwWrite(t, f.writer, "x", []byte("v"), 6, sessionctx.Vector{"dep": dep.Stamp})
	if _, err := f.serve(t, "writer", wire.WriteReq{Write: w2}); err != nil {
		t.Fatalf("gated write rejected: %v", err)
	}
	if f.srv.Head("g", "x") != nil {
		t.Fatal("gated write became head before predecessors arrived")
	}
	if _, pending, _ := f.srv.Stats(); pending != 1 {
		t.Fatalf("pending = %d, want 1", pending)
	}

	// Log read must not report it either.
	resp, err := f.serve(t, "other", wire.LogReq{Group: "g", Item: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if lr := resp.(wire.LogResp); len(lr.Writes) != 0 {
		t.Fatalf("gated write reported: %v", lr.Writes)
	}

	// The predecessor arrives: the gated write is promoted.
	if _, err := f.serve(t, "writer", wire.WriteReq{Write: dep}); err != nil {
		t.Fatal(err)
	}
	if head := f.srv.Head("g", "x"); head == nil || string(head.Value) != "v" {
		t.Fatalf("gated write not promoted, head = %v", head)
	}
	if _, pending, _ := f.srv.Stats(); pending != 0 {
		t.Fatalf("pending = %d after promotion", pending)
	}
}

func TestCausalGatingChainPromotion(t *testing.T) {
	// A chain of gated writes must all promote when the root arrives.
	f := newFixture(t, Policy{Consistency: wire.CC, MultiWriter: true})
	a := f.mwWrite(t, f.writer, "a", []byte("va"), 1, nil)
	b := f.mwWrite(t, f.writer, "b", []byte("vb"), 2, sessionctx.Vector{"a": a.Stamp})
	c := f.mwWrite(t, f.writer, "c", []byte("vc"), 3, sessionctx.Vector{"a": a.Stamp, "b": b.Stamp})

	// Deliver in reverse causal order.
	for _, w := range []*wire.SignedWrite{c, b} {
		if _, err := f.serve(t, "writer", wire.WriteReq{Write: w}); err != nil {
			t.Fatal(err)
		}
	}
	if _, pending, _ := f.srv.Stats(); pending != 2 {
		t.Fatalf("pending = %d, want 2", pending)
	}
	if _, err := f.serve(t, "writer", wire.WriteReq{Write: a}); err != nil {
		t.Fatal(err)
	}
	for _, item := range []string{"a", "b", "c"} {
		if f.srv.Head("g", item) == nil {
			t.Fatalf("item %s not promoted", item)
		}
	}
}

func TestGossipPushAppliesValidRejectsForged(t *testing.T) {
	f := newFixture(t, Policy{Consistency: wire.MRC})
	good := f.write(t, "x", []byte("v1"), timestamp.Stamp{Time: 1}, nil)
	forged := f.write(t, "y", []byte("v2"), timestamp.Stamp{Time: 1}, nil)
	forged.Value = []byte("altered in flight")

	resp, err := f.serve(t, "peer", wire.GossipPushReq{From: "peer", Writes: []*wire.SignedWrite{good, forged}})
	if err != nil {
		t.Fatal(err)
	}
	ack := resp.(wire.GossipPushResp)
	if ack.Applied != 1 {
		t.Fatalf("applied = %d, want 1", ack.Applied)
	}
	if f.srv.Head("g", "x") == nil {
		t.Fatal("valid gossip write not applied")
	}
	if f.srv.Head("g", "y") != nil {
		t.Fatal("forged gossip write applied")
	}
}

func TestContextStoreAndRead(t *testing.T) {
	f := newFixture(t, Policy{Consistency: wire.MRC})
	signed := &sessionctx.Signed{
		Owner: "writer", Group: "g", Seq: 1,
		Vector: sessionctx.Vector{"x": {Time: 3}},
	}
	signed.Sign(f.writer, nil)

	if _, err := f.serve(t, "writer", wire.ContextWriteReq{Ctx: signed}); err != nil {
		t.Fatal(err)
	}
	resp, err := f.serve(t, "writer", wire.ContextReadReq{Client: "writer", Group: "g"})
	if err != nil {
		t.Fatal(err)
	}
	got := resp.(wire.ContextReadResp)
	if got.Ctx == nil || got.Ctx.Seq != 1 {
		t.Fatalf("context = %+v", got.Ctx)
	}

	// Older sequence numbers never overwrite.
	newer := &sessionctx.Signed{Owner: "writer", Group: "g", Seq: 5, Vector: sessionctx.NewVector()}
	newer.Sign(f.writer, nil)
	if _, err := f.serve(t, "writer", wire.ContextWriteReq{Ctx: newer}); err != nil {
		t.Fatal(err)
	}
	older := &sessionctx.Signed{Owner: "writer", Group: "g", Seq: 2, Vector: sessionctx.NewVector()}
	older.Sign(f.writer, nil)
	if _, err := f.serve(t, "writer", wire.ContextWriteReq{Ctx: older}); err != nil {
		t.Fatal(err)
	}
	if got := f.srv.StoredContext("writer", "g"); got.Seq != 5 {
		t.Fatalf("stored seq = %d, want 5", got.Seq)
	}
}

func TestContextWriteRejectsForgery(t *testing.T) {
	f := newFixture(t, Policy{Consistency: wire.MRC})
	// "other" submits a context claiming to be writer's.
	forged := &sessionctx.Signed{Owner: "writer", Group: "g", Seq: 9, Vector: sessionctx.NewVector()}
	forged.Sign(f.other, nil)
	forged.Owner = "writer"
	if _, err := f.serve(t, "writer", wire.ContextWriteReq{Ctx: forged}); err == nil {
		t.Fatal("forged context accepted")
	}
	// Sender mismatch.
	genuine := &sessionctx.Signed{Owner: "writer", Group: "g", Seq: 1, Vector: sessionctx.NewVector()}
	genuine.Sign(f.writer, nil)
	if _, err := f.serve(t, "other", wire.ContextWriteReq{Ctx: genuine}); err == nil {
		t.Fatal("relayed context accepted from wrong sender")
	}
}

func TestLogDepthBounded(t *testing.T) {
	ring := cryptoutil.NewKeyring()
	writer := cryptoutil.DeterministicKeyPair("writer", "s")
	ring.MustRegister(writer.ID, writer.Public)
	srv := New(Config{ID: "s", Ring: ring, LogDepth: 3})
	srv.RegisterGroup("g", Policy{Consistency: wire.CC, MultiWriter: true})
	f := &fixture{srv: srv, ring: ring, writer: writer}

	for i := 1; i <= 10; i++ {
		w := f.mwWrite(t, writer, "x", []byte{byte(i)}, uint64(i), nil)
		if _, err := f.serve(t, "writer", wire.WriteReq{Write: w}); err != nil {
			t.Fatal(err)
		}
	}
	_, _, logEntries := srv.Stats()
	if logEntries != 3 {
		t.Fatalf("log entries = %d, want 3", logEntries)
	}
	// The log keeps the newest entries.
	resp, err := f.serve(t, "writer", wire.LogReq{Group: "g", Item: "x"})
	if err != nil {
		t.Fatal(err)
	}
	lr := resp.(wire.LogResp)
	if lr.Writes[0].Stamp.Time != 10 {
		t.Fatalf("newest log stamp = %d, want 10", lr.Writes[0].Stamp.Time)
	}
}

func TestAuthorizationEnforced(t *testing.T) {
	ring := cryptoutil.NewKeyring()
	writer := cryptoutil.DeterministicKeyPair("writer", "s")
	authKey := cryptoutil.DeterministicKeyPair("auth", "s")
	ring.MustRegister(writer.ID, writer.Public)
	ring.MustRegister(authKey.ID, authKey.Public)
	authority := accessctl.NewAuthority(authKey)

	srv := New(Config{ID: "s", Ring: ring, AuthorityID: "auth"})
	srv.RegisterGroup("g", Policy{Consistency: wire.MRC})
	f := &fixture{srv: srv, ring: ring, writer: writer}

	w := f.write(t, "x", []byte("v"), timestamp.Stamp{Time: 1}, nil)
	// No token.
	if _, err := f.serve(t, "writer", wire.WriteReq{Write: w}); !errors.Is(err, accessctl.ErrUnauthorized) {
		t.Fatalf("no-token write = %v, want ErrUnauthorized", err)
	}
	// Read-only token.
	ro := authority.Issue("writer", "g", accessctl.ReadOnly, nil)
	if _, err := f.serve(t, "writer", wire.WriteReq{Write: w, Token: ro}); !errors.Is(err, accessctl.ErrUnauthorized) {
		t.Fatalf("ro-token write = %v, want ErrUnauthorized", err)
	}
	// Proper token.
	rw := authority.Issue("writer", "g", accessctl.ReadWrite, nil)
	if _, err := f.serve(t, "writer", wire.WriteReq{Write: w, Token: rw}); err != nil {
		t.Fatalf("rw-token write: %v", err)
	}
	// Token from an untrusted issuer.
	evilAuth := accessctl.NewAuthority(cryptoutil.DeterministicKeyPair("evil-auth", "s"))
	ring.MustRegister("evil-auth", evilAuth.PublicKey())
	fake := evilAuth.Issue("writer", "g", accessctl.ReadWrite, nil)
	if _, err := f.serve(t, "writer", wire.MetaReq{Group: "g", Item: "x", Token: fake}); !errors.Is(err, accessctl.ErrUnauthorized) {
		t.Fatalf("untrusted-issuer token = %v, want ErrUnauthorized", err)
	}
}

func TestFaultModesObservable(t *testing.T) {
	f := newFixture(t, Policy{Consistency: wire.MRC})
	w1 := f.write(t, "x", []byte("v1"), timestamp.Stamp{Time: 1}, nil)
	if _, err := f.serve(t, "writer", wire.WriteReq{Write: w1}); err != nil {
		t.Fatal(err)
	}
	w2 := f.write(t, "x", []byte("v2"), timestamp.Stamp{Time: 2}, nil)
	if _, err := f.serve(t, "writer", wire.WriteReq{Write: w2}); err != nil {
		t.Fatal(err)
	}

	// Stale: serves the first version.
	f.srv.SetFault(Stale)
	resp, err := f.serve(t, "writer", wire.ValueReq{Group: "g", Item: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.(wire.ValueResp).Write; string(got.Value) != "v1" {
		t.Fatalf("stale served %q, want v1", got.Value)
	}

	// CorruptValue: the returned write fails verification.
	f.srv.SetFault(CorruptValue)
	resp, err = f.serve(t, "writer", wire.ValueReq{Group: "g", Item: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.(wire.ValueResp).Write.Verify(f.ring, nil); err == nil {
		t.Fatal("corrupted value verified")
	}

	// CorruptMeta: advertises inflated stamp.
	f.srv.SetFault(CorruptMeta)
	resp, err = f.serve(t, "writer", wire.MetaReq{Group: "g", Item: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.(wire.MetaResp).Stamp.Time; got <= 2 {
		t.Fatalf("corrupt-meta stamp = %d, want inflated", got)
	}

	// Crash: errors.
	f.srv.SetFault(Crash)
	if _, err := f.serve(t, "writer", wire.MetaReq{Group: "g", Item: "x"}); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash = %v, want ErrCrashed", err)
	}

	// Mute: ErrNoReply for the transport to translate.
	f.srv.SetFault(Mute)
	if _, err := f.serve(t, "writer", wire.MetaReq{Group: "g", Item: "x"}); !errors.Is(err, transport.ErrNoReply) {
		t.Fatalf("mute = %v, want ErrNoReply", err)
	}

	// Fault mode strings exist for diagnostics.
	for _, m := range []FaultMode{Healthy, Crash, Mute, Stale, CorruptValue, CorruptMeta, Equivocate, PrematureReport} {
		if m.String() == "" {
			t.Fatal("empty fault mode string")
		}
	}
}

func TestUpdatesSince(t *testing.T) {
	f := newFixture(t, Policy{Consistency: wire.MRC})
	for i := 1; i <= 3; i++ {
		w := f.write(t, "x", []byte{byte(i)}, timestamp.Stamp{Time: uint64(i)}, nil)
		if _, err := f.serve(t, "writer", wire.WriteReq{Write: w}); err != nil {
			t.Fatal(err)
		}
	}
	all, seq := f.srv.UpdatesSince(0)
	if len(all) != 3 || seq != 3 {
		t.Fatalf("updates = %d seq = %d, want 3/3", len(all), seq)
	}
	tail, _ := f.srv.UpdatesSince(2)
	if len(tail) != 1 || tail[0].Stamp.Time != 3 {
		t.Fatalf("tail = %v", tail)
	}
	none, _ := f.srv.UpdatesSince(3)
	if len(none) != 0 {
		t.Fatalf("none = %v", none)
	}
}

func TestValueReqNotFound(t *testing.T) {
	f := newFixture(t, Policy{Consistency: wire.MRC})
	resp, err := f.serve(t, "writer", wire.ValueReq{Group: "g", Item: "ghost"})
	if err != nil {
		t.Fatalf("missing item errored: %v", err)
	}
	if vr := resp.(wire.ValueResp); vr.Write != nil {
		t.Fatalf("missing item returned a write: %v", vr.Write)
	}
}

func TestUnknownRequestType(t *testing.T) {
	f := newFixture(t, Policy{Consistency: wire.MRC})
	if _, err := f.serve(t, "writer", bogusReq{}); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("err = %v, want ErrUnknownType", err)
	}
}

type bogusReq struct{}

func (bogusReq) WireRequest() {}

func TestUpdateLogBoundedWithStateTransfer(t *testing.T) {
	ring := cryptoutil.NewKeyring()
	writer := cryptoutil.DeterministicKeyPair("writer", "s")
	ring.MustRegister(writer.ID, writer.Public)
	srv := New(Config{ID: "s", Ring: ring, MaxUpdateLog: 8})
	srv.RegisterGroup("g", Policy{Consistency: wire.MRC})
	f := &fixture{srv: srv, ring: ring, writer: writer}

	// 30 writes across 3 items: the update log keeps only the last 8.
	items := []string{"a", "b", "c"}
	for i := 1; i <= 30; i++ {
		w := f.write(t, items[i%3], []byte{byte(i)}, timestamp.Stamp{Time: uint64(i)}, nil)
		if _, err := f.serve(t, "writer", wire.WriteReq{Write: w}); err != nil {
			t.Fatal(err)
		}
	}

	// A peer that saw everything: incremental tail.
	tail, seq := srv.UpdatesSince(28)
	if seq != 30 || len(tail) != 2 {
		t.Fatalf("tail = %d entries seq %d, want 2/30", len(tail), seq)
	}

	// A peer from before the retained window: state transfer of all heads.
	snapshot, seq := srv.UpdatesSince(3)
	if seq != 30 {
		t.Fatalf("seq = %d", seq)
	}
	if len(snapshot) != len(items) {
		t.Fatalf("state transfer = %d writes, want one head per item (%d)", len(snapshot), len(items))
	}
	byItem := make(map[string]uint64)
	for _, w := range snapshot {
		byItem[w.Item] = w.Stamp.Time
	}
	// Each head is the newest write of its item: 28/29/30 in some mapping.
	for _, item := range items {
		if byItem[item] < 28 {
			t.Fatalf("state transfer head for %s = %d, want newest", item, byItem[item])
		}
	}
}

func TestStateTransferHealsFarBehindPeer(t *testing.T) {
	// End-to-end: a peer that missed far more updates than the retained
	// log still converges via gossip (push uses the same state transfer).
	ring := cryptoutil.NewKeyring()
	writer := cryptoutil.DeterministicKeyPair("writer", "s")
	ring.MustRegister(writer.ID, writer.Public)

	mkServer := func(id string) *Server {
		srv := New(Config{ID: id, Ring: ring, MaxUpdateLog: 4})
		srv.RegisterGroup("g", Policy{Consistency: wire.MRC})
		return srv
	}
	ahead, behind := mkServer("ahead"), mkServer("behind")
	f := &fixture{srv: ahead, ring: ring, writer: writer}
	for i := 1; i <= 20; i++ {
		w := f.write(t, "x", []byte{byte(i)}, timestamp.Stamp{Time: uint64(i)}, nil)
		if _, err := f.serve(t, "writer", wire.WriteReq{Write: w}); err != nil {
			t.Fatal(err)
		}
	}

	// The behind server pulls from sequence 0: it gets the head snapshot.
	writes, _ := ahead.UpdatesSince(0)
	for _, w := range writes {
		behind.ApplyDisseminated(w)
	}
	head := behind.Head("g", "x")
	if head == nil || head.Stamp.Time != 20 {
		t.Fatalf("behind head = %v, want stamp 20", head)
	}
}

func TestGossipPullHandler(t *testing.T) {
	f := newFixture(t, Policy{Consistency: wire.MRC})
	for i := 1; i <= 3; i++ {
		w := f.write(t, "x", []byte{byte(i)}, timestamp.Stamp{Time: uint64(i)}, nil)
		if _, err := f.serve(t, "writer", wire.WriteReq{Write: w}); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := f.serve(t, "peer", wire.GossipPullReq{From: "peer", After: 1})
	if err != nil {
		t.Fatal(err)
	}
	pr := resp.(wire.GossipPullResp)
	if pr.Seq != 3 || len(pr.Writes) != 2 {
		t.Fatalf("pull = %d writes seq %d, want 2/3", len(pr.Writes), pr.Seq)
	}

	// A stale server pretends to have nothing new.
	f.srv.SetFault(Stale)
	resp, err = f.serve(t, "peer", wire.GossipPullReq{From: "peer", After: 0})
	if err != nil {
		t.Fatal(err)
	}
	if pr := resp.(wire.GossipPullResp); len(pr.Writes) != 0 {
		t.Fatalf("stale server served %d pulled writes", len(pr.Writes))
	}
}

func TestEquivocateServesDifferentClients(t *testing.T) {
	f := newFixture(t, Policy{Consistency: wire.MRC})
	w1 := f.write(t, "x", []byte("v1"), timestamp.Stamp{Time: 1}, nil)
	if _, err := f.serve(t, "writer", wire.WriteReq{Write: w1}); err != nil {
		t.Fatal(err)
	}
	w2 := f.write(t, "x", []byte("v2"), timestamp.Stamp{Time: 2}, nil)
	if _, err := f.serve(t, "writer", wire.WriteReq{Write: w2}); err != nil {
		t.Fatal(err)
	}
	f.srv.SetFault(Equivocate)

	// Find two caller names in different parity buckets.
	var oldSide, newSide string
	for _, name := range []string{"c0", "c1", "c2", "c3", "c4", "c5"} {
		if callerParity(name) {
			oldSide = name
		} else {
			newSide = name
		}
		if oldSide != "" && newSide != "" {
			break
		}
	}
	respOld, err := f.serve(t, oldSide, wire.ValueReq{Group: "g", Item: "x"})
	if err != nil {
		t.Fatal(err)
	}
	respNew, err := f.serve(t, newSide, wire.ValueReq{Group: "g", Item: "x"})
	if err != nil {
		t.Fatal(err)
	}
	gotOld := respOld.(wire.ValueResp).Write
	gotNew := respNew.(wire.ValueResp).Write
	if string(gotOld.Value) != "v1" || string(gotNew.Value) != "v2" {
		t.Fatalf("equivocation = %q / %q, want v1 / v2", gotOld.Value, gotNew.Value)
	}
	// Both answers are old-but-genuine: signatures verify on each.
	if err := gotOld.Verify(f.ring, nil); err != nil {
		t.Fatal(err)
	}
	if err := gotNew.Verify(f.ring, nil); err != nil {
		t.Fatal(err)
	}
}

func TestContextReadFaultBranches(t *testing.T) {
	f := newFixture(t, Policy{Consistency: wire.MRC})
	mk := func(seq uint64) *sessionctx.Signed {
		s := &sessionctx.Signed{Owner: "writer", Group: "g", Seq: seq, Vector: sessionctx.NewVector()}
		s.Sign(f.writer, nil)
		return s
	}
	for _, seq := range []uint64{1, 2, 3} {
		if _, err := f.serve(t, "writer", wire.ContextWriteReq{Ctx: mk(seq)}); err != nil {
			t.Fatal(err)
		}
	}
	f.srv.SetFault(Stale)
	resp, err := f.serve(t, "writer", wire.ContextReadReq{Client: "writer", Group: "g"})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.(wire.ContextReadResp).Ctx; got.Seq != 1 {
		t.Fatalf("stale context seq = %d, want the first (1)", got.Seq)
	}
}
