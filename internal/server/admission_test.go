package server

// admission_test.go covers the admission batcher (admission.go): verdict
// independence between batch partners, per-connection order preservation
// through batching (the MW/CC causal gating regression test), metric
// accounting, and a -race stress run over concurrent connections.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"securestore/internal/cryptoutil"
	"securestore/internal/metrics"
	"securestore/internal/sessionctx"
	"securestore/internal/timestamp"
	"securestore/internal/wire"
)

// admissionFixture builds a server with admission batching forced on
// with the given caps, plus n registered writer principals.
func admissionFixture(t testing.TB, policy Policy, writers, maxBatch int, wait time.Duration) (*Server, []cryptoutil.KeyPair, *metrics.Counters) {
	t.Helper()
	ring := cryptoutil.NewKeyring()
	ring.EnableVerifyCache(4096)
	keys := make([]cryptoutil.KeyPair, writers)
	for i := range keys {
		keys[i] = cryptoutil.DeterministicKeyPair(fmt.Sprintf("w%02d", i), "adm")
		ring.MustRegister(keys[i].ID, keys[i].Public)
	}
	m := &metrics.Counters{}
	srv := New(Config{ID: "s00", Ring: ring, Metrics: m, VerifyBatch: maxBatch, VerifyBatchWait: wait})
	srv.RegisterGroup("g", policy)
	return srv, keys, m
}

func admissionWrite(key cryptoutil.KeyPair, item string, value []byte, tm uint64) *wire.SignedWrite {
	st := timestamp.Stamp{Time: tm, Writer: key.ID, Digest: cryptoutil.Digest(value)}
	w := &wire.SignedWrite{
		Group: "g", Item: item, Stamp: st,
		WriterCtx: sessionctx.Vector{item: st}, Value: value,
	}
	w.Sign(key, nil)
	return w
}

// TestAdmissionPartnerFailureIndependence: a request whose batch partner
// fails verification must still be admitted. The two writes are
// submitted concurrently with a generous flush deadline so they share
// one micro-batch.
func TestAdmissionPartnerFailureIndependence(t *testing.T) {
	srv, keys, m := admissionFixture(t, Policy{Consistency: wire.MRC, MultiWriter: true}, 2, 2, 50*time.Millisecond)

	good := admissionWrite(keys[0], "item-good", []byte("good"), 1)
	bad := admissionWrite(keys[1], "item-bad", []byte("bad"), 1)
	bad.Sig = append([]byte(nil), bad.Sig...)
	bad.Sig[3] ^= 0x10

	var wg sync.WaitGroup
	var goodErr, badErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, goodErr = srv.ServeRequest(context.Background(), keys[0].ID, wire.WriteReq{Write: good})
	}()
	go func() {
		defer wg.Done()
		_, badErr = srv.ServeRequest(context.Background(), keys[1].ID, wire.WriteReq{Write: bad})
	}()
	wg.Wait()

	if goodErr != nil {
		t.Fatalf("good write rejected alongside its failing partner: %v", goodErr)
	}
	if badErr == nil {
		t.Fatal("forged write admitted")
	}
	if got := m.VerifyBatches(); got == 0 {
		t.Fatal("no admission batch recorded — the writes did not go through the batcher")
	}
}

// TestAdmissionPreservesConnectionOrder is the causal-gating regression
// test: a client that issues write k+1 only after write k's admit
// returned (per-connection pipelining discipline) must see its writes
// integrate in issue order, batching or not. Each connection writes a
// monotonically increasing multi-writer sequence to its own item while
// other connections keep the batcher busy; any reordering would make a
// later (higher-stamped) write integrate before an earlier one and the
// final read would miss intermediate state transitions.
func TestAdmissionPreservesConnectionOrder(t *testing.T) {
	const conns = 8
	const writesPerConn = 25
	srv, keys, _ := admissionFixture(t, Policy{Consistency: wire.CC, MultiWriter: true}, conns, 4, 200*time.Microsecond)

	var wg sync.WaitGroup
	errs := make([]error, conns)
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			item := fmt.Sprintf("item-%d", c)
			ctx := sessionctx.Vector{}
			for k := 1; k <= writesPerConn; k++ {
				value := []byte(fmt.Sprintf("conn %d write %d", c, k))
				st := timestamp.Stamp{Time: uint64(k), Writer: keys[c].ID, Digest: cryptoutil.Digest(value)}
				w := &wire.SignedWrite{
					Group: "g", Item: item, Stamp: st,
					WriterCtx: ctx.Clone(), Value: value,
				}
				w.WriterCtx[item] = st
				w.Sign(keys[c], nil)
				if _, err := srv.ServeRequest(context.Background(), keys[c].ID, wire.WriteReq{Write: w}); err != nil {
					errs[c] = fmt.Errorf("write %d: %w", k, err)
					return
				}
				// The next write causally depends on this one: if admission
				// reordered effects, the successor would gate forever (CC)
				// or read back a stale head.
				ctx[item] = st
				resp, err := srv.ServeRequest(context.Background(), keys[c].ID, wire.MetaReq{Group: "g", Item: item})
				if err != nil {
					errs[c] = fmt.Errorf("meta after write %d: %w", k, err)
					return
				}
				meta, ok := resp.(wire.MetaResp)
				if !ok || !meta.Has {
					errs[c] = fmt.Errorf("meta after write %d: no head", k)
					return
				}
				if meta.Stamp.Time != uint64(k) {
					errs[c] = fmt.Errorf("after write %d the head is stamp %d — effects reordered", k, meta.Stamp.Time)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("connection %d: %v", c, err)
		}
	}
}

// TestAdmissionBatcherStress hammers the batcher from many connections
// under the race detector: mixed good and forged writes across items,
// every verdict checked. CI runs this with -race.
func TestAdmissionBatcherStress(t *testing.T) {
	const conns = 16
	const writesPerConn = 40
	srv, keys, m := admissionFixture(t, Policy{Consistency: wire.MRC, MultiWriter: true}, conns, 8, 200*time.Microsecond)

	var wg sync.WaitGroup
	errs := make([]error, conns)
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 1; k <= writesPerConn; k++ {
				forged := (c+k)%5 == 0
				w := admissionWrite(keys[c], fmt.Sprintf("item-%d", c), []byte(fmt.Sprintf("%d/%d", c, k)), uint64(k))
				if forged {
					w.Sig = append([]byte(nil), w.Sig...)
					w.Sig[(c+k)%64] ^= 0x01
				}
				_, err := srv.ServeRequest(context.Background(), keys[c].ID, wire.WriteReq{Write: w})
				if forged && err == nil {
					errs[c] = fmt.Errorf("write %d: forged signature admitted", k)
					return
				}
				if !forged && err != nil {
					errs[c] = fmt.Errorf("write %d: %w", k, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("connection %d: %v", c, err)
		}
	}
	if m.VerifyBatches() == 0 {
		t.Fatal("stress run never batched")
	}
	t.Logf("admission batches: %d, batched sigs: %d, verifications: %d, cache hits: %d",
		m.VerifyBatches(), m.VerifyBatched(), m.Verifications(), m.VerifyCacheHits())
}

// TestAdmissionDisabled: VerifyBatch < 0 must restore the unbatched
// path exactly (no admission metrics, same verdicts).
func TestAdmissionDisabled(t *testing.T) {
	ring := cryptoutil.NewKeyring()
	key := cryptoutil.DeterministicKeyPair("w00", "adm")
	ring.MustRegister(key.ID, key.Public)
	m := &metrics.Counters{}
	srv := New(Config{ID: "s00", Ring: ring, Metrics: m, VerifyBatch: -1})
	srv.RegisterGroup("g", Policy{Consistency: wire.MRC, MultiWriter: true})
	w := admissionWrite(key, "item", []byte("v"), 1)
	if _, err := srv.ServeRequest(context.Background(), key.ID, wire.WriteReq{Write: w}); err != nil {
		t.Fatal(err)
	}
	if m.VerifyBatches() != 0 {
		t.Fatalf("disabled batcher recorded %d batches", m.VerifyBatches())
	}
	if m.Verifications() != 1 {
		t.Fatalf("verifications = %d, want 1", m.Verifications())
	}
}
