// Package server implements a secure-store replica. Per the paper's design
// (Section 4), servers are passive repositories of signed data: they store
// whatever validly signed writes reach them, answer meta-data and value
// queries, store client contexts, and exchange signed updates with peers
// through the dissemination protocol. Consistency is enforced by clients;
// the server's job is safe-keeping plus — in the multi-writer case
// (Section 5.3) — causal gating and bounded write logs that blunt attacks
// by malicious clients and servers.
//
// Every Byzantine failure mode studied in the experiments is implemented
// here behind FaultMode, so the same code path serves both correct and
// compromised replicas.
package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"securestore/internal/accessctl"
	"securestore/internal/cryptoutil"
	"securestore/internal/metrics"
	"securestore/internal/sessionctx"
	"securestore/internal/storage"
	"securestore/internal/timestamp"
	"securestore/internal/trace"
	"securestore/internal/transport"
	"securestore/internal/wire"
)

// Errors returned by replica handlers.
var (
	ErrCrashed     = errors.New("server: crashed")
	ErrUnknownType = errors.New("server: unknown request type")
	ErrNotWriter   = errors.New("server: request sender is not the write's signer")
)

// FaultMode selects the behaviour of a replica. All modes other than
// Healthy model a compromised or failed server (Section 4: failures may be
// crash or Byzantine, and faulty servers can behave arbitrarily).
type FaultMode int

// Fault modes.
const (
	// Healthy follows the protocol.
	Healthy FaultMode = iota + 1
	// Crash fails every request immediately (connection refused).
	Crash
	// Mute accepts requests but never replies (caller times out).
	Mute
	// Stale serves the oldest value/context it ever stored and silently
	// drops new writes — the "respond with old data" behaviour the paper
	// notes is all a malicious server can do undetectably.
	Stale
	// CorruptValue flips bits in returned values; clients detect this via
	// signature verification.
	CorruptValue
	// CorruptMeta advertises inflated timestamps in meta-data replies,
	// luring clients into fetching values it cannot actually produce.
	CorruptMeta
	// Equivocate answers different clients with different (old vs new)
	// values.
	Equivocate
	// PrematureReport ignores causal gating in the multi-writer protocol
	// and reports writes whose causal predecessors have not arrived —
	// exactly the attack that the 2b+1-read/b+1-match rule masks.
	PrematureReport
)

// String renders the fault mode.
func (f FaultMode) String() string {
	switch f {
	case Healthy:
		return "healthy"
	case Crash:
		return "crash"
	case Mute:
		return "mute"
	case Stale:
		return "stale"
	case CorruptValue:
		return "corrupt-value"
	case CorruptMeta:
		return "corrupt-meta"
	case Equivocate:
		return "equivocate"
	case PrematureReport:
		return "premature-report"
	default:
		return fmt.Sprintf("fault(%d)", int(f))
	}
}

// Policy describes how a related group of data items is accessed. The
// consistency level and sharing pattern are fixed when the group is created
// (Section 5.2).
type Policy struct {
	Consistency wire.Consistency
	// MultiWriter enables the Section 5.3 protocol: augmented timestamps,
	// causal gating and write logs.
	MultiWriter bool
}

// Config configures a replica.
type Config struct {
	// ID is the server's principal name.
	ID string
	// Ring holds the well-known public keys of all principals.
	Ring *cryptoutil.Keyring
	// AuthorityID names the authorization service whose tokens are
	// accepted. Empty disables authorization checks (trusted testbeds).
	AuthorityID string
	// LogDepth bounds the multi-writer per-item write log. The paper keeps
	// "a history of a limited number of writes for each data item"; depth 4
	// is the default.
	LogDepth int
	// MaxUpdateLog bounds the dissemination log (default 1024 entries).
	// Peers that fall further behind than the retained tail receive a
	// state transfer (a snapshot of all current heads) instead — the
	// paper's observation that old log entries can be erased once newer
	// values are widely held, applied to the dissemination path.
	MaxUpdateLog int
	// DefaultPolicy applies to groups not explicitly registered.
	DefaultPolicy Policy
	// DisableCausalGating turns off the Section 5.3 rule that a write is
	// reported only after its causal predecessors arrive. Ablation A1 uses
	// this to demonstrate the spurious-context denial-of-service the rule
	// prevents; never disable it in real deployments.
	DisableCausalGating bool
	// Metrics receives the server's verification counts.
	Metrics *metrics.Counters
	// Tracer records one "server.<req>" span per handled request (and,
	// through its histogram set, per-handler latency). May be nil.
	Tracer *trace.Tracer
	// Persist, when non-nil, makes accepted writes and stored contexts
	// durable in a write-ahead log; call Recover after New to reload
	// state. Replayed records still carry their client signatures and are
	// re-verified, so log tampering is detected like message tampering.
	Persist *storage.Log
}

// Server is one secure-store replica.
type Server struct {
	cfg Config

	mu         sync.Mutex
	fault      FaultMode
	policies   map[string]Policy
	items      map[itemKey]*itemState
	contexts   map[ctxKey]*ctxState
	pending    []*wire.SignedWrite // multi-writer writes awaiting causal predecessors
	updates    []*wire.SignedWrite // dissemination log, in acceptance order
	seq        uint64              // first update in updates has sequence seq-len(updates)+1
	epoch      uint64              // in-memory incarnation; changes on Restart
	recovering bool                // true while replaying the persistence log
}

// epochCounter hands out process-unique epochs so that any two server
// incarnations — a Restart of one server, or a fresh Server object taking
// over a crashed one's name — are distinguishable by gossip peers.
var epochCounter atomic.Uint64

type itemKey struct{ group, item string }

type ctxKey struct{ owner, group string }

type itemState struct {
	head  *wire.SignedWrite   // newest validated write
	first *wire.SignedWrite   // oldest write ever seen (for Stale/Equivocate faults)
	log   []*wire.SignedWrite // multi-writer: recent reported writes, newest first
}

type ctxState struct {
	cur   *sessionctx.Signed
	first *sessionctx.Signed
}

var _ transport.Handler = (*Server)(nil)

// New creates a healthy replica.
func New(cfg Config) *Server {
	if cfg.LogDepth <= 0 {
		cfg.LogDepth = 4
	}
	if cfg.MaxUpdateLog <= 0 {
		cfg.MaxUpdateLog = 1024
	}
	if cfg.DefaultPolicy.Consistency == 0 {
		cfg.DefaultPolicy = Policy{Consistency: wire.MRC}
	}
	return &Server{
		cfg:      cfg,
		fault:    Healthy,
		policies: make(map[string]Policy),
		items:    make(map[itemKey]*itemState),
		contexts: make(map[ctxKey]*ctxState),
		epoch:    epochCounter.Add(1),
	}
}

// ID returns the server's principal name.
func (s *Server) ID() string { return s.cfg.ID }

// SetFault switches the replica's behaviour (used by fault-injection
// experiments; takes effect for subsequent requests).
func (s *Server) SetFault(f FaultMode) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fault = f
}

// Fault returns the current fault mode.
func (s *Server) Fault() FaultMode {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fault
}

// RegisterGroup declares the access policy for a related group of items.
func (s *Server) RegisterGroup(group string, p Policy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.policies[group] = p
}

// policy returns the group's policy (caller holds s.mu).
func (s *Server) policyLocked(group string) Policy {
	if p, ok := s.policies[group]; ok {
		return p
	}
	return s.cfg.DefaultPolicy
}

// ServeRequest dispatches one request. It implements transport.Handler.
// When a Tracer is configured each request is recorded as a
// "server.<kind>" span annotated with the caller, which is where a
// replica's per-handler latency histograms come from.
func (s *Server) ServeRequest(ctx context.Context, from string, req wire.Request) (wire.Response, error) {
	if s.cfg.Tracer == nil {
		return s.serve(from, req)
	}
	sp := s.cfg.Tracer.Root(wire.ServerOpName(req))
	sp.SetAttr("from", from)
	resp, err := s.serve(from, req)
	sp.SetError(err)
	sp.End()
	return resp, err
}

// serve is ServeRequest without instrumentation.
func (s *Server) serve(from string, req wire.Request) (wire.Response, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	switch s.fault {
	case Crash:
		return nil, ErrCrashed
	case Mute:
		return nil, transport.ErrNoReply
	}

	switch r := req.(type) {
	case wire.ContextReadReq:
		return s.handleContextRead(from, r)
	case wire.ContextWriteReq:
		return s.handleContextWrite(from, r)
	case wire.MetaReq:
		return s.handleMeta(from, r)
	case wire.ValueReq:
		return s.handleValue(from, r)
	case wire.WriteReq:
		return s.handleWrite(from, r)
	case wire.LogReq:
		return s.handleLog(from, r)
	case wire.GossipPushReq:
		return s.handleGossipPush(from, r)
	case wire.GossipPullReq:
		return s.handleGossipPull(from, r)
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnknownType, req)
	}
}

// authorize validates the caller's capability token when an authority is
// configured. Non-faulty servers reject unauthorized requests (Section 4).
func (s *Server) authorize(from, group string, tok *accessctl.Token, need accessctl.Rights) error {
	if s.cfg.AuthorityID == "" {
		return nil
	}
	if tok != nil && tok.Issuer != s.cfg.AuthorityID {
		return fmt.Errorf("%w: token issuer %q not trusted", accessctl.ErrUnauthorized, tok.Issuer)
	}
	return tok.Verify(s.cfg.Ring, from, group, need, s.cfg.Metrics)
}

// Stats reports coarse state sizes for experiments (items stored, pending
// gated writes, total log entries).
func (s *Server) Stats() (items, pending, logEntries int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range s.items {
		logEntries += len(st.log)
	}
	return len(s.items), len(s.pending), logEntries
}

// stampOf returns the stamp of a write, or the zero stamp for nil.
func stampOf(w *wire.SignedWrite) timestamp.Stamp {
	if w == nil {
		return timestamp.Stamp{}
	}
	return w.Stamp
}

// Recover replays the configured persistence log into server state. Call
// once, after New and RegisterGroup and before serving requests. Replayed
// writes go through full validation (signature, stamp discipline, causal
// gating), so corrupt or forged log entries are skipped rather than
// trusted.
//
// Recover holds the server mutex for the whole replay, so requests —
// including gossip pushes and pulls from peers — that arrive while
// recovery runs simply queue behind it and are served against the fully
// recovered state; recovery and gossip catch-up cannot interleave
// half-replayed state.
func (s *Server) Recover() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recoverLocked()
}

// Restart models a process crash and reboot in place: all volatile state
// is discarded, the write-ahead log is replayed, and the server's gossip
// epoch changes so peers discard their pull high-water marks (the rebuilt
// dissemination log generally renumbers updates — without the epoch
// change a peer whose mark exceeds the rebuilt log's length would skip
// every update until the log grew past its stale mark). The caller is
// responsible for the fault mode: a typical crash sequence is
// SetFault(Crash), later Restart() then SetFault(Healthy).
func (s *Server) Restart() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items = make(map[itemKey]*itemState)
	s.contexts = make(map[ctxKey]*ctxState)
	s.pending = nil
	s.updates = nil
	s.seq = 0
	s.epoch = epochCounter.Add(1)
	return s.recoverLocked()
}

// Epoch returns the server's current in-memory incarnation (see Restart).
func (s *Server) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// recoverLocked replays the persistence log; caller holds s.mu.
func (s *Server) recoverLocked() error {
	if s.cfg.Persist == nil {
		return nil
	}
	s.recovering = true
	defer func() { s.recovering = false }()

	return s.cfg.Persist.Replay(func(rec storage.Record) error {
		switch rec.Kind {
		case storage.KindWrite:
			if rec.Write != nil {
				_ = s.acceptWrite(rec.Write) // invalid records are skipped
			}
		case storage.KindContext:
			if rec.Ctx == nil {
				return nil
			}
			if err := rec.Ctx.Verify(s.cfg.Ring, s.cfg.Metrics); err != nil {
				return nil
			}
			key := ctxKey{owner: rec.Ctx.Owner, group: rec.Ctx.Group}
			st, ok := s.contexts[key]
			if !ok {
				clone := rec.Ctx.Clone()
				s.contexts[key] = &ctxState{cur: clone, first: clone}
			} else if rec.Ctx.Newer(st.cur) {
				st.cur = rec.Ctx.Clone()
			}
		}
		return nil
	})
}

// persistWriteLocked appends an accepted write to the log (no-op while
// recovering or without persistence). Persistence failures are surfaced to
// the client: a write is only acknowledged once durable.
func (s *Server) persistWriteLocked(w *wire.SignedWrite) error {
	if s.cfg.Persist == nil || s.recovering {
		return nil
	}
	if err := s.cfg.Persist.Append(storage.Record{Kind: storage.KindWrite, Write: w}); err != nil {
		return err
	}
	s.maybeCompactLocked()
	return nil
}

// persistContextLocked appends a stored context to the log.
func (s *Server) persistContextLocked(ctx *sessionctx.Signed) error {
	if s.cfg.Persist == nil || s.recovering {
		return nil
	}
	if err := s.cfg.Persist.Append(storage.Record{Kind: storage.KindContext, Ctx: ctx}); err != nil {
		return err
	}
	s.maybeCompactLocked()
	return nil
}

// maybeCompactLocked rewrites the log with only live state when dead
// records dominate.
func (s *Server) maybeCompactLocked() {
	if !s.cfg.Persist.NeedsCompaction() {
		return
	}
	var live []storage.Record
	for _, st := range s.items {
		if st.head != nil {
			live = append(live, storage.Record{Kind: storage.KindWrite, Write: st.head})
		}
		for _, w := range st.log {
			if st.head == nil || w.Stamp != st.head.Stamp {
				live = append(live, storage.Record{Kind: storage.KindWrite, Write: w})
			}
		}
	}
	for _, w := range s.pending {
		live = append(live, storage.Record{Kind: storage.KindWrite, Write: w})
	}
	for _, st := range s.contexts {
		live = append(live, storage.Record{Kind: storage.KindContext, Ctx: st.cur})
	}
	// Compaction failure is non-fatal: the log keeps growing and the next
	// append retries.
	_ = s.cfg.Persist.Compact(live)
}
