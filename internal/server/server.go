// Package server implements a secure-store replica. Per the paper's design
// (Section 4), servers are passive repositories of signed data: they store
// whatever validly signed writes reach them, answer meta-data and value
// queries, store client contexts, and exchange signed updates with peers
// through the dissemination protocol. Consistency is enforced by clients;
// the server's job is safe-keeping plus — in the multi-writer case
// (Section 5.3) — causal gating and bounded write logs that blunt attacks
// by malicious clients and servers.
//
// Every Byzantine failure mode studied in the experiments is implemented
// here behind FaultMode, so the same code path serves both correct and
// compromised replicas.
//
// # Concurrency model
//
// Because replicas are passive and every stored object is self-verifying,
// nothing in the protocol requires a replica to process requests one at a
// time. The server is therefore internally concurrent (DESIGN.md §7.6):
//
//   - stw is a stop-the-world RWMutex: every request holds it in read
//     mode for its whole duration; Recover, Restart and log compaction
//     hold it in write mode, so replay never interleaves with requests.
//   - All signature and token verification happens before any exclusive
//     lock is taken — crypto never serializes requests.
//   - Item and context state is striped: hash(key) selects one of
//     Config.Stripes RWMutex-guarded shards, so writes to different items
//     proceed in parallel and reads share their stripe's lock.
//   - A small core RWMutex guards the fault mode and group policies; the
//     dissemination log has its own mutex (a leaf: it is only taken while
//     holding a stripe lock, never the other way around); the multi-writer
//     causal-gating machinery (the pending set and the arrived-check over
//     a whole group) serializes on its own mutex, since gating is by
//     definition a cross-item predicate.
//
// Lock order: stw(R) → mw → stripe → dissem, with core taken only for
// isolated reads. No path holds two stripe locks at once.
package server

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"securestore/internal/accessctl"
	"securestore/internal/cryptoutil"
	"securestore/internal/metrics"
	"securestore/internal/sessionctx"
	"securestore/internal/storage"
	"securestore/internal/timestamp"
	"securestore/internal/trace"
	"securestore/internal/transport"
	"securestore/internal/wire"
)

// Errors returned by replica handlers.
var (
	ErrCrashed     = errors.New("server: crashed")
	ErrUnknownType = errors.New("server: unknown request type")
	ErrNotWriter   = errors.New("server: request sender is not the write's signer")
)

// FaultMode selects the behaviour of a replica. All modes other than
// Healthy model a compromised or failed server (Section 4: failures may be
// crash or Byzantine, and faulty servers can behave arbitrarily).
type FaultMode int

// Fault modes.
const (
	// Healthy follows the protocol.
	Healthy FaultMode = iota + 1
	// Crash fails every request immediately (connection refused).
	Crash
	// Mute accepts requests but never replies (caller times out).
	Mute
	// Stale serves the oldest value/context it ever stored and silently
	// drops new writes — the "respond with old data" behaviour the paper
	// notes is all a malicious server can do undetectably.
	Stale
	// CorruptValue flips bits in returned values; clients detect this via
	// signature verification.
	CorruptValue
	// CorruptMeta advertises inflated timestamps in meta-data replies,
	// luring clients into fetching values it cannot actually produce.
	CorruptMeta
	// Equivocate answers different clients with different (old vs new)
	// values.
	Equivocate
	// PrematureReport ignores causal gating in the multi-writer protocol
	// and reports writes whose causal predecessors have not arrived —
	// exactly the attack that the 2b+1-read/b+1-match rule masks.
	PrematureReport
)

// String renders the fault mode.
func (f FaultMode) String() string {
	switch f {
	case Healthy:
		return "healthy"
	case Crash:
		return "crash"
	case Mute:
		return "mute"
	case Stale:
		return "stale"
	case CorruptValue:
		return "corrupt-value"
	case CorruptMeta:
		return "corrupt-meta"
	case Equivocate:
		return "equivocate"
	case PrematureReport:
		return "premature-report"
	default:
		return fmt.Sprintf("fault(%d)", int(f))
	}
}

// Policy describes how a related group of data items is accessed. The
// consistency level and sharing pattern are fixed when the group is created
// (Section 5.2).
type Policy struct {
	Consistency wire.Consistency
	// MultiWriter enables the Section 5.3 protocol: augmented timestamps,
	// causal gating and write logs.
	MultiWriter bool
}

// Config configures a replica.
type Config struct {
	// ID is the server's principal name.
	ID string
	// Ring holds the well-known public keys of all principals.
	Ring *cryptoutil.Keyring
	// AuthorityID names the authorization service whose tokens are
	// accepted. Empty disables authorization checks (trusted testbeds).
	AuthorityID string
	// LogDepth bounds the multi-writer per-item write log. The paper keeps
	// "a history of a limited number of writes for each data item"; depth 4
	// is the default.
	LogDepth int
	// MaxUpdateLog bounds the dissemination log (default 1024 entries).
	// Peers that fall further behind than the retained tail receive a
	// state transfer (a snapshot of all current heads) instead — the
	// paper's observation that old log entries can be erased once newer
	// values are widely held, applied to the dissemination path.
	MaxUpdateLog int
	// Stripes is the number of lock stripes item and context state is
	// sharded over (rounded up to a power of two; default 16). More
	// stripes admit more concurrent writers at the cost of a longer
	// stop-the-world sweep in Stats and compaction.
	Stripes int
	// Serialized restores the pre-striping behaviour: one global mutex
	// around every request, signature verification included. It exists
	// only as the baseline for the T3 scaling experiment and should never
	// be set in real deployments.
	Serialized bool
	// DefaultPolicy applies to groups not explicitly registered.
	DefaultPolicy Policy
	// DisableCausalGating turns off the Section 5.3 rule that a write is
	// reported only after its causal predecessors arrive. Ablation A1 uses
	// this to demonstrate the spurious-context denial-of-service the rule
	// prevents; never disable it in real deployments.
	DisableCausalGating bool
	// Shard names the replica group this server belongs to in a sharded
	// deployment. It only labels the per-shard request counter
	// (securestore_shard_ops_total); empty disables the label.
	Shard string
	// Owns, when non-nil, restricts this replica to its shard of the
	// keyspace: requests naming an item (or context owner) the predicate
	// rejects fail with wire.ErrWrongShard instead of being served. The
	// predicate must be the deployment's shared placement function
	// (sharding.Table.Owns partially applied), so every replica of every
	// group independently enforces the same routing. Nil (unsharded
	// deployments) accepts everything.
	Owns func(key string) bool
	// VerifyBatch caps the admission micro-batch: how many concurrently
	// arriving signed requests are verified together with one Ed25519
	// batch equation (DESIGN.md §7.11). Zero picks the default (64);
	// negative disables admission batching so every request verifies its
	// own signature, the pre-batching behaviour.
	VerifyBatch int
	// VerifyBatchWait bounds how long an admission batch's leader waits
	// for company while another batch's verification is in flight; it is
	// never an idle sleep (an idle replica flushes immediately). Zero
	// picks the default (200µs).
	VerifyBatchWait time.Duration
	// Metrics receives the server's verification counts and lock/commit
	// visibility counters (stripe contention, see metrics.AddStripeWait).
	Metrics *metrics.Counters
	// Tracer records one "server.<req>" span per handled request (and,
	// through its histogram set, per-handler latency). May be nil.
	Tracer *trace.Tracer
	// Persist, when non-nil, makes accepted writes and stored contexts
	// durable in a write-ahead log; call Recover after New to reload
	// state. Replayed records still carry their client signatures and are
	// re-verified, so log tampering is detected like message tampering.
	Persist *storage.Log
}

// Server is one secure-store replica.
type Server struct {
	cfg Config

	// stw is the stop-the-world lock: every request (and every public
	// accessor) holds it in read mode; Recover, Restart and compaction
	// hold it in write mode. Go's RWMutex blocks new readers once a
	// writer waits, so replay cannot be starved.
	stw sync.RWMutex

	// serial is the coarse global lock used only under cfg.Serialized.
	serial sync.Mutex

	// core guards the fault mode and group policies — tiny reads on every
	// request, exclusive only in SetFault/RegisterGroup.
	core struct {
		sync.RWMutex
		fault    FaultMode
		policies map[string]Policy
	}

	// epoch is the in-memory incarnation; changes on Restart. Atomic so
	// gossip engines can poll it without touching any data-path lock.
	epoch atomic.Uint64

	// stripes shard item and context state by key hash. stripeMask is
	// len(stripes)-1 (stripe count is a power of two).
	stripes    []stripe
	stripeMask uint32

	// mw serializes the multi-writer causal-gating machinery: the pending
	// set, and the fresh→persist→integrate sequence for gated groups
	// (gating is a cross-item predicate, so per-item stripes cannot
	// order it).
	mw struct {
		sync.Mutex
		pending []*wire.SignedWrite // writes awaiting causal predecessors
	}

	// dissem guards the dissemination log. Leaf lock: taken while holding
	// a stripe lock (integrate) but never held while acquiring one.
	dissem struct {
		sync.Mutex
		updates []*wire.SignedWrite // in acceptance order
		seq     uint64              // first update has sequence seq-len(updates)+1
	}

	// recovering is true while replaying the persistence log. Written
	// only under stw (write mode), read under stw (read mode), so the
	// RWMutex orders all accesses.
	recovering bool

	// admit batches concurrently arriving signature checks (nil when
	// cfg.VerifyBatch < 0 disables admission batching).
	admit *admitter
}

// stripe is one shard of item and context state.
type stripe struct {
	mu       sync.RWMutex
	waits    atomic.Int64 // contended acquisitions (see StripeWaits)
	items    map[itemKey]*itemState
	contexts map[ctxKey]*ctxState
}

// epochCounter hands out process-unique epochs so that any two server
// incarnations — a Restart of one server, or a fresh Server object taking
// over a crashed one's name — are distinguishable by gossip peers.
var epochCounter atomic.Uint64

type itemKey struct{ group, item string }

type ctxKey struct{ owner, group string }

type itemState struct {
	head  *wire.SignedWrite   // newest validated write
	first *wire.SignedWrite   // oldest write ever seen (for Stale/Equivocate faults)
	log   []*wire.SignedWrite // multi-writer: recent reported writes, newest first
}

type ctxState struct {
	cur   *sessionctx.Signed
	first *sessionctx.Signed
}

var _ transport.Handler = (*Server)(nil)

// New creates a healthy replica.
func New(cfg Config) *Server {
	if cfg.LogDepth <= 0 {
		cfg.LogDepth = 4
	}
	if cfg.MaxUpdateLog <= 0 {
		cfg.MaxUpdateLog = 1024
	}
	if cfg.Stripes <= 0 {
		cfg.Stripes = 16
	}
	n := 1
	for n < cfg.Stripes {
		n <<= 1
	}
	cfg.Stripes = n
	if cfg.DefaultPolicy.Consistency == 0 {
		cfg.DefaultPolicy = Policy{Consistency: wire.MRC}
	}
	s := &Server{cfg: cfg}
	s.core.fault = Healthy
	s.core.policies = make(map[string]Policy)
	s.stripes = make([]stripe, n)
	s.stripeMask = uint32(n - 1)
	s.initStripes()
	s.epoch.Store(epochCounter.Add(1))
	if cfg.VerifyBatch >= 0 {
		s.admit = newAdmitter(cfg.Ring, cfg.Metrics, cfg.VerifyBatch, cfg.VerifyBatchWait)
	}
	return s
}

// verifyTriple routes one signature check through the admission batcher
// when enabled, falling back to the plain per-signature ring check. Both
// paths consult and prime the keyring's verified-signature LRU.
func (s *Server) verifyTriple(signer string, data, sig []byte) error {
	if s.admit != nil {
		return s.admit.admit(signer, data, sig)
	}
	return s.cfg.Ring.Verify(signer, data, sig, s.cfg.Metrics)
}

// verifyWrite checks a signed write like wire.SignedWrite.Verify, with
// the signature check routed through the admission batcher.
func (s *Server) verifyWrite(w *wire.SignedWrite) error {
	signer, data, sig, err := w.SigCheck()
	if err != nil {
		return err
	}
	if err := s.verifyTriple(signer, data, sig); err != nil {
		return fmt.Errorf("%w: item %s: %v", wire.ErrBadWrite, w.Item, err)
	}
	return nil
}

// initStripes (re)allocates every stripe's maps. Callers hold stw
// exclusively or own the server (New).
func (s *Server) initStripes() {
	for i := range s.stripes {
		s.stripes[i].items = make(map[itemKey]*itemState)
		s.stripes[i].contexts = make(map[ctxKey]*ctxState)
	}
}

// stripeFor selects the stripe for an item key.
func (s *Server) stripeFor(k itemKey) *stripe {
	h := fnv.New32a()
	_, _ = h.Write([]byte(k.group))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(k.item))
	return &s.stripes[h.Sum32()&s.stripeMask]
}

// ctxStripeFor selects the stripe for a context key.
func (s *Server) ctxStripeFor(k ctxKey) *stripe {
	h := fnv.New32a()
	_, _ = h.Write([]byte(k.owner))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(k.group))
	return &s.stripes[h.Sum32()&s.stripeMask]
}

// lock acquires the stripe exclusively, counting contended acquisitions.
func (s *Server) lock(st *stripe) {
	if st.mu.TryLock() {
		return
	}
	st.waits.Add(1)
	s.cfg.Metrics.AddStripeWait()
	st.mu.Lock()
}

// rlock acquires the stripe shared, counting contended acquisitions.
func (s *Server) rlock(st *stripe) {
	if st.mu.TryRLock() {
		return
	}
	st.waits.Add(1)
	s.cfg.Metrics.AddStripeWait()
	st.mu.RLock()
}

// StripeWaits returns the per-stripe contended-acquisition counts, in
// stripe order. The sum is also available as the stripe-contention
// counter in Config.Metrics.
func (s *Server) StripeWaits() []int64 {
	out := make([]int64, len(s.stripes))
	for i := range s.stripes {
		out[i] = s.stripes[i].waits.Load()
	}
	return out
}

// ID returns the server's principal name.
func (s *Server) ID() string { return s.cfg.ID }

// SetFault switches the replica's behaviour (used by fault-injection
// experiments; takes effect for subsequent requests — a request already in
// flight completes under the mode it started with).
func (s *Server) SetFault(f FaultMode) {
	s.core.Lock()
	defer s.core.Unlock()
	s.core.fault = f
}

// Fault returns the current fault mode.
func (s *Server) Fault() FaultMode {
	s.core.RLock()
	defer s.core.RUnlock()
	return s.core.fault
}

// RegisterGroup declares the access policy for a related group of items.
func (s *Server) RegisterGroup(group string, p Policy) {
	s.core.Lock()
	defer s.core.Unlock()
	s.core.policies[group] = p
}

// policy returns the group's policy.
func (s *Server) policy(group string) Policy {
	s.core.RLock()
	defer s.core.RUnlock()
	if p, ok := s.core.policies[group]; ok {
		return p
	}
	return s.cfg.DefaultPolicy
}

// ServeRequest dispatches one request. It implements transport.Handler.
// When a Tracer is configured each request is recorded as a
// "server.<kind>" span annotated with the caller, which is where a
// replica's per-handler latency histograms come from.
func (s *Server) ServeRequest(ctx context.Context, from string, req wire.Request) (wire.Response, error) {
	if s.cfg.Tracer == nil {
		return s.serve(from, req)
	}
	sp := s.cfg.Tracer.Root(wire.ServerOpName(req))
	sp.SetAttr("from", from)
	resp, err := s.serve(from, req)
	sp.SetError(err)
	sp.End()
	return resp, err
}

// mutates reports whether a request kind can append to the persistence
// log (and therefore should check the compaction trigger first).
func mutates(req wire.Request) bool {
	switch req.(type) {
	case wire.WriteReq, wire.ContextWriteReq, wire.GossipPushReq:
		return true
	default:
		return false
	}
}

// serve is ServeRequest without instrumentation.
func (s *Server) serve(from string, req wire.Request) (wire.Response, error) {
	// Compaction runs stop-the-world, so it must be triggered before this
	// request takes its shared stw lock (RWMutexes do not upgrade).
	if s.cfg.Persist != nil && mutates(req) && s.cfg.Persist.NeedsCompaction() {
		s.compact()
	}
	if s.cfg.Serialized {
		s.serial.Lock()
		defer s.serial.Unlock()
	}
	s.stw.RLock()
	defer s.stw.RUnlock()

	// One fault-mode read per request: the whole request is served under
	// the mode it started with, exactly as under the former global lock.
	fault := s.Fault()
	switch fault {
	case Crash:
		return nil, ErrCrashed
	case Mute:
		return nil, transport.ErrNoReply
	}

	if err := s.checkOwnership(req); err != nil {
		return nil, err
	}
	if s.cfg.Shard != "" {
		s.cfg.Metrics.AddShardOp(s.cfg.Shard)
	}

	switch r := req.(type) {
	case wire.ContextReadReq:
		return s.handleContextRead(from, r, fault)
	case wire.ContextWriteReq:
		return s.handleContextWrite(from, r, fault)
	case wire.MetaReq:
		return s.handleMeta(from, r, fault)
	case wire.ValueReq:
		return s.handleValue(from, r, fault)
	case wire.WriteReq:
		return s.handleWrite(from, r, fault)
	case wire.LogReq:
		return s.handleLog(from, r, fault)
	case wire.GossipPushReq:
		return s.handleGossipPush(from, r, fault)
	case wire.GossipPullReq:
		return s.handleGossipPull(from, r, fault)
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnknownType, req)
	}
}

// checkOwnership rejects requests that name a routing key outside this
// replica's shard with the typed wire.ErrWrongShard, before any handler
// (or crypto) work. Item requests route by item name; context requests by
// the context owner's id (clients store their session context on the
// shard their own id hashes to). Gossip frames are exempt here — each
// carried write is checked individually in acceptWrite.
func (s *Server) checkOwnership(req wire.Request) error {
	if s.cfg.Owns == nil {
		return nil
	}
	var key string
	switch r := req.(type) {
	case wire.MetaReq:
		key = r.Item
	case wire.ValueReq:
		key = r.Item
	case wire.LogReq:
		key = r.Item
	case wire.WriteReq:
		if r.Write == nil {
			return nil // handler reports the malformed write
		}
		key = r.Write.Item
	case wire.ContextReadReq:
		key = r.Client
	case wire.ContextWriteReq:
		if r.Ctx == nil {
			return nil
		}
		key = r.Ctx.Owner
	default:
		return nil
	}
	if !s.cfg.Owns(key) {
		s.cfg.Metrics.AddRoutingMismatch()
		return fmt.Errorf("server %s: %q: %w", s.cfg.ID, key, wire.ErrWrongShard)
	}
	return nil
}

// authorize validates the caller's capability token when an authority is
// configured. Non-faulty servers reject unauthorized requests (Section 4).
// Token verification is pure crypto over shared-safe state and runs
// before any stripe lock is taken.
func (s *Server) authorize(from, group string, tok *accessctl.Token, need accessctl.Rights) error {
	if s.cfg.AuthorityID == "" {
		return nil
	}
	if tok != nil && tok.Issuer != s.cfg.AuthorityID {
		return fmt.Errorf("%w: token issuer %q not trusted", accessctl.ErrUnauthorized, tok.Issuer)
	}
	return tok.Verify(s.cfg.Ring, from, group, need, s.cfg.Metrics)
}

// Stats reports coarse state sizes for experiments (items stored, pending
// gated writes, total log entries). It takes only shared locks, so
// observability polling never blocks the data path.
func (s *Server) Stats() (items, pending, logEntries int) {
	s.stw.RLock()
	defer s.stw.RUnlock()
	for i := range s.stripes {
		st := &s.stripes[i]
		s.rlock(st)
		items += len(st.items)
		for _, is := range st.items {
			logEntries += len(is.log)
		}
		st.mu.RUnlock()
	}
	s.mw.Lock()
	pending = len(s.mw.pending)
	s.mw.Unlock()
	return items, pending, logEntries
}

// stampOf returns the stamp of a write, or the zero stamp for nil.
func stampOf(w *wire.SignedWrite) timestamp.Stamp {
	if w == nil {
		return timestamp.Stamp{}
	}
	return w.Stamp
}

// Recover replays the configured persistence log into server state. Call
// once, after New and RegisterGroup and before serving requests. Replayed
// writes go through full validation (signature, stamp discipline, causal
// gating), so corrupt or forged log entries are skipped rather than
// trusted.
//
// Recover holds the stop-the-world lock for the whole replay, so requests
// — including gossip pushes and pulls from peers — that arrive while
// recovery runs simply queue behind it and are served against the fully
// recovered state; recovery and gossip catch-up cannot interleave
// half-replayed state.
func (s *Server) Recover() error {
	s.stw.Lock()
	defer s.stw.Unlock()
	return s.recoverLocked()
}

// Restart models a process crash and reboot in place: all volatile state
// is discarded, the write-ahead log is replayed, and the server's gossip
// epoch changes so peers discard their pull high-water marks (the rebuilt
// dissemination log generally renumbers updates — without the epoch
// change a peer whose mark exceeds the rebuilt log's length would skip
// every update until the log grew past its stale mark). The caller is
// responsible for the fault mode: a typical crash sequence is
// SetFault(Crash), later Restart() then SetFault(Healthy).
func (s *Server) Restart() error {
	s.stw.Lock()
	defer s.stw.Unlock()
	s.initStripes()
	s.mw.Lock()
	s.mw.pending = nil
	s.mw.Unlock()
	s.dissem.Lock()
	s.dissem.updates = nil
	s.dissem.seq = 0
	s.dissem.Unlock()
	s.epoch.Store(epochCounter.Add(1))
	return s.recoverLocked()
}

// Epoch returns the server's current in-memory incarnation (see Restart).
// Lock-free, so gossip engines can poll it from any goroutine.
func (s *Server) Epoch() uint64 {
	return s.epoch.Load()
}

// recoverLocked replays the persistence log; caller holds stw exclusively.
func (s *Server) recoverLocked() error {
	if s.cfg.Persist == nil {
		return nil
	}
	s.recovering = true
	defer func() { s.recovering = false }()
	fault := s.Fault()

	return s.cfg.Persist.Replay(func(rec storage.Record) error {
		switch rec.Kind {
		case storage.KindWrite:
			if rec.Write != nil {
				_, _ = s.acceptWrite(rec.Write, fault) // invalid records are skipped
			}
		case storage.KindContext:
			if rec.Ctx == nil {
				return nil
			}
			if err := rec.Ctx.Verify(s.cfg.Ring, s.cfg.Metrics); err != nil {
				return nil
			}
			key := ctxKey{owner: rec.Ctx.Owner, group: rec.Ctx.Group}
			st := s.ctxStripeFor(key)
			s.lock(st)
			cs, ok := st.contexts[key]
			if !ok {
				clone := rec.Ctx.Clone()
				st.contexts[key] = &ctxState{cur: clone, first: clone}
			} else if rec.Ctx.Newer(cs.cur) {
				cs.cur = rec.Ctx.Clone()
			}
			st.mu.Unlock()
		}
		return nil
	})
}

// persistWrite appends an accepted write to the log (no-op while
// recovering or without persistence). Persistence failures are surfaced to
// the client: a write is only acknowledged once durable. Concurrent
// appends coalesce into one group commit (storage.Log.Append).
func (s *Server) persistWrite(w *wire.SignedWrite) error {
	if s.cfg.Persist == nil || s.recovering {
		return nil
	}
	return s.cfg.Persist.Append(storage.Record{Kind: storage.KindWrite, Write: w})
}

// persistContext appends a stored context to the log.
func (s *Server) persistContext(ctx *sessionctx.Signed) error {
	if s.cfg.Persist == nil || s.recovering {
		return nil
	}
	return s.cfg.Persist.Append(storage.Record{Kind: storage.KindContext, Ctx: ctx})
}

// compact rewrites the log with only live state when dead records
// dominate. It runs stop-the-world (before the triggering request takes
// its shared lock), so the gathered snapshot is consistent and no append
// can interleave with the rewrite.
func (s *Server) compact() {
	s.stw.Lock()
	defer s.stw.Unlock()
	if !s.cfg.Persist.NeedsCompaction() { // recheck: another request may have compacted
		return
	}
	var live []storage.Record
	for i := range s.stripes {
		st := &s.stripes[i]
		for _, is := range st.items {
			if is.head != nil {
				live = append(live, storage.Record{Kind: storage.KindWrite, Write: is.head})
			}
			for _, w := range is.log {
				if is.head == nil || w.Stamp != is.head.Stamp {
					live = append(live, storage.Record{Kind: storage.KindWrite, Write: w})
				}
			}
		}
		for _, cs := range st.contexts {
			live = append(live, storage.Record{Kind: storage.KindContext, Ctx: cs.cur})
		}
	}
	for _, w := range s.mw.pending {
		live = append(live, storage.Record{Kind: storage.KindWrite, Write: w})
	}
	// Compaction failure is non-fatal: the log keeps growing and the next
	// trigger retries.
	_ = s.cfg.Persist.Compact(live)
}
