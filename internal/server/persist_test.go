package server

import (
	"context"
	"path/filepath"
	"testing"

	"securestore/internal/cryptoutil"
	"securestore/internal/sessionctx"
	"securestore/internal/storage"
	"securestore/internal/timestamp"
	"securestore/internal/wire"
)

// persistFixture builds a server backed by a log at a fixed path so tests
// can "restart" it.
type persistFixture struct {
	ring   *cryptoutil.Keyring
	writer cryptoutil.KeyPair
	path   string
}

func newPersistFixture(t *testing.T) *persistFixture {
	t.Helper()
	ring := cryptoutil.NewKeyring()
	writer := cryptoutil.DeterministicKeyPair("writer", "s")
	ring.MustRegister(writer.ID, writer.Public)
	return &persistFixture{
		ring:   ring,
		writer: writer,
		path:   filepath.Join(t.TempDir(), "replica.log"),
	}
}

// boot opens the log and builds a recovered server.
func (p *persistFixture) boot(t *testing.T, policy Policy) (*Server, *storage.Log) {
	t.Helper()
	log, err := storage.Open(p.path)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{ID: "s00", Ring: p.ring, Persist: log})
	srv.RegisterGroup("g", policy)
	if err := srv.Recover(); err != nil {
		t.Fatal(err)
	}
	return srv, log
}

func (p *persistFixture) signedWrite(item string, value []byte, ts uint64) *wire.SignedWrite {
	w := &wire.SignedWrite{Group: "g", Item: item, Stamp: timestamp.Stamp{Time: ts}, Value: value}
	w.Sign(p.writer, nil)
	return w
}

func TestRecoveryRestoresWrites(t *testing.T) {
	p := newPersistFixture(t)
	ctx := context.Background()

	srv, log := p.boot(t, Policy{Consistency: wire.MRC})
	for i := 1; i <= 3; i++ {
		w := p.signedWrite("x", []byte{byte(i)}, uint64(i))
		if _, err := srv.ServeRequest(ctx, "writer", wire.WriteReq{Write: w}); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh server recovered from the same log.
	srv2, log2 := p.boot(t, Policy{Consistency: wire.MRC})
	defer log2.Close()
	head := srv2.Head("g", "x")
	if head == nil || head.Stamp.Time != 3 {
		t.Fatalf("recovered head = %v, want stamp 3", head)
	}
	// And the recovered copy is still a valid signed write.
	if err := head.Verify(p.ring, nil); err != nil {
		t.Fatalf("recovered write verification: %v", err)
	}
}

func TestRecoveryRestoresContexts(t *testing.T) {
	p := newPersistFixture(t)
	ctx := context.Background()
	srv, log := p.boot(t, Policy{Consistency: wire.MRC})

	signed := &sessionctx.Signed{Owner: "writer", Group: "g", Seq: 2,
		Vector: sessionctx.Vector{"x": {Time: 7}}}
	signed.Sign(p.writer, nil)
	if _, err := srv.ServeRequest(ctx, "writer", wire.ContextWriteReq{Ctx: signed}); err != nil {
		t.Fatal(err)
	}
	_ = log.Close()

	srv2, log2 := p.boot(t, Policy{Consistency: wire.MRC})
	defer log2.Close()
	got := srv2.StoredContext("writer", "g")
	if got == nil || got.Seq != 2 || got.Vector.Get("x").Time != 7 {
		t.Fatalf("recovered context = %+v", got)
	}
}

func TestRecoverySkipsTamperedRecords(t *testing.T) {
	p := newPersistFixture(t)
	ctx := context.Background()
	srv, log := p.boot(t, Policy{Consistency: wire.MRC})
	good := p.signedWrite("x", []byte("good"), 1)
	if _, err := srv.ServeRequest(ctx, "writer", wire.WriteReq{Write: good}); err != nil {
		t.Fatal(err)
	}
	// Append a tampered record directly to the log (attacker with disk
	// access): recovery must skip it because the signature fails.
	evil := p.signedWrite("x", []byte("evil"), 9)
	evil.Value = []byte("altered after signing")
	if err := log.Append(storage.Record{Kind: storage.KindWrite, Write: evil}); err != nil {
		t.Fatal(err)
	}
	_ = log.Close()

	srv2, log2 := p.boot(t, Policy{Consistency: wire.MRC})
	defer log2.Close()
	head := srv2.Head("g", "x")
	if head == nil || string(head.Value) != "good" {
		t.Fatalf("recovered head = %v, want the untampered write", head)
	}
}

func TestRecoveryPreservesCausalGating(t *testing.T) {
	p := newPersistFixture(t)
	ctx := context.Background()
	srv, log := p.boot(t, Policy{Consistency: wire.CC, MultiWriter: true})

	// A gated write (its predecessor never arrives) is durable but must
	// come back as *pending*, not as a reported head.
	depStamp := timestamp.Stamp{Time: 5, Writer: "writer", Digest: cryptoutil.Digest([]byte("dep"))}
	value := []byte("gated")
	st := timestamp.Stamp{Time: 6, Writer: "writer", Digest: cryptoutil.Digest(value)}
	gated := &wire.SignedWrite{Group: "g", Item: "x", Stamp: st, Value: value,
		WriterCtx: sessionctx.Vector{"x": st, "dep": depStamp}}
	gated.Sign(p.writer, nil)
	if _, err := srv.ServeRequest(ctx, "writer", wire.WriteReq{Write: gated}); err != nil {
		t.Fatal(err)
	}
	_ = log.Close()

	srv2, log2 := p.boot(t, Policy{Consistency: wire.CC, MultiWriter: true})
	defer log2.Close()
	if srv2.Head("g", "x") != nil {
		t.Fatal("gated write recovered as a reported head")
	}
	if _, pending, _ := srv2.Stats(); pending != 1 {
		t.Fatalf("recovered pending = %d, want 1", pending)
	}
}

func TestCompactionKeepsRecoverableState(t *testing.T) {
	p := newPersistFixture(t)
	ctx := context.Background()
	srv, log := p.boot(t, Policy{Consistency: wire.MRC})
	// Enough overwrites to trigger compaction (threshold 64 records).
	for i := 1; i <= 300; i++ {
		w := p.signedWrite("x", []byte{byte(i % 251)}, uint64(i))
		if _, err := srv.ServeRequest(ctx, "writer", wire.WriteReq{Write: w}); err != nil {
			t.Fatal(err)
		}
	}
	records, _ := log.Stats()
	if records >= 300 {
		t.Fatalf("log never compacted: %d records", records)
	}
	_ = log.Close()

	srv2, log2 := p.boot(t, Policy{Consistency: wire.MRC})
	defer log2.Close()
	head := srv2.Head("g", "x")
	if head == nil || head.Stamp.Time != 300 {
		t.Fatalf("recovered head after compaction = %v, want stamp 300", head)
	}
}
