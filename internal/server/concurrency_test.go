package server

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"securestore/internal/checker"
	"securestore/internal/cryptoutil"
	"securestore/internal/sessionctx"
	"securestore/internal/storage"
	"securestore/internal/timestamp"
	"securestore/internal/wire"
)

// TestConcurrentRequestsRace hammers one replica with every request type
// from many goroutines at once — the workload the striped locks exist for —
// and validates the results with the history checker. Run under -race this
// pins the lock hierarchy: verification outside locks, striped item and
// context state, the mw-serialized causal path, and the dissemination log
// must compose without data races or invariant violations.
func TestConcurrentRequestsRace(t *testing.T) {
	const (
		lanes = 8  // goroutines per request type
		iters = 30 // operations per goroutine
	)
	ring := cryptoutil.NewKeyring()
	keys := make(map[string]cryptoutil.KeyPair)
	register := func(name string) cryptoutil.KeyPair {
		kp := cryptoutil.DeterministicKeyPair(name, "conc")
		ring.MustRegister(kp.ID, kp.Public)
		keys[name] = kp
		return kp
	}
	for g := 0; g < lanes; g++ {
		register(fmt.Sprintf("writer-%d", g))
		register(fmt.Sprintf("mw-%d", g))
		register(fmt.Sprintf("ctx-%d", g))
		register(fmt.Sprintf("gater-%d", g))
	}
	srv := New(Config{ID: "s00", Ring: ring})
	srv.RegisterGroup("g", Policy{Consistency: wire.MRC})
	srv.RegisterGroup("cc", Policy{Consistency: wire.CC, MultiWriter: true})

	h := checker.New()
	var wg sync.WaitGroup
	fail := func(format string, args ...any) {
		t.Errorf(format, args...)
	}

	// Single-writer MRC writers: each owns its items, stamps ascending.
	// Recorded in the history before serving so readers can never observe
	// an unrecorded write.
	for g := 0; g < lanes; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			me := fmt.Sprintf("writer-%d", g)
			for i := 1; i <= iters; i++ {
				item := fmt.Sprintf("it-%d-%d", g, i%4)
				w := &wire.SignedWrite{
					Group: "g", Item: item,
					Stamp: timestamp.Stamp{Time: uint64(i)},
					Value: []byte(fmt.Sprintf("v-%d-%d", g, i)),
				}
				w.Sign(keys[me], nil)
				h.RecordWrite(me, item, w.Stamp, w.Value, nil)
				if _, err := srv.ServeRequest(t.Context(), me, wire.WriteReq{Write: w}); err != nil {
					fail("write %s/%d: %v", item, i, err)
					return
				}
			}
		}(g)
	}

	// Readers: meta then value on the writers' items; every returned value
	// is signature-checked and fed to the checker (integrity + per-reader
	// monotonicity).
	for g := 0; g < lanes; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			me := fmt.Sprintf("reader-%d", g)
			for i := 0; i < iters; i++ {
				item := fmt.Sprintf("it-%d-%d", (g+i)%lanes, i%4)
				resp, err := srv.ServeRequest(t.Context(), me, wire.MetaReq{Client: me, Group: "g", Item: item})
				if err != nil {
					fail("meta %s: %v", item, err)
					return
				}
				if !resp.(wire.MetaResp).Has {
					continue
				}
				resp, err = srv.ServeRequest(t.Context(), me, wire.ValueReq{Client: me, Group: "g", Item: item})
				if err != nil {
					fail("value %s: %v", item, err)
					return
				}
				w := resp.(wire.ValueResp).Write
				if w == nil {
					continue
				}
				if err := w.Verify(ring, nil); err != nil {
					fail("read %s returned unverifiable write: %v", item, err)
					return
				}
				h.RecordRead(me, item, w.Stamp, w.Value)
			}
		}(g)
	}

	// Multi-writer CC writers: augmented stamps, own contexts, mw path.
	for g := 0; g < lanes; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			me := fmt.Sprintf("mw-%d", g)
			item := fmt.Sprintf("cc-%d", g)
			for i := 1; i <= iters; i++ {
				value := []byte(fmt.Sprintf("cc-%d-%d", g, i))
				st := timestamp.Stamp{Time: uint64(i), Writer: me, Digest: cryptoutil.Digest(value)}
				w := &wire.SignedWrite{
					Group: "cc", Item: item, Stamp: st, Value: value,
					WriterCtx: sessionctx.Vector{item: st},
				}
				w.Sign(keys[me], nil)
				h.RecordWrite(me, item, st, value, w.WriterCtx)
				if _, err := srv.ServeRequest(t.Context(), me, wire.WriteReq{Write: w}); err != nil {
					fail("mw write %s/%d: %v", item, i, err)
					return
				}
			}
			// The multi-writer read protocol on the finished item.
			resp, err := srv.ServeRequest(t.Context(), me, wire.LogReq{Client: me, Group: "cc", Item: item})
			if err != nil {
				fail("log %s: %v", item, err)
				return
			}
			for _, w := range resp.(wire.LogResp).Writes {
				if err := w.Verify(ring, nil); err != nil {
					fail("log %s returned unverifiable write: %v", item, err)
					return
				}
			}
		}(g)
	}

	// Context sessions: each owner stores ascending-seq signed contexts and
	// must read back a context at least as new as its own last store.
	for g := 0; g < lanes; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			me := fmt.Sprintf("ctx-%d", g)
			for i := 1; i <= iters; i++ {
				signed := &sessionctx.Signed{
					Owner: me, Group: "cc", Seq: uint64(i),
					Vector: sessionctx.Vector{"x": {Time: uint64(i)}},
				}
				signed.Sign(keys[me], nil)
				if _, err := srv.ServeRequest(t.Context(), me, wire.ContextWriteReq{Ctx: signed}); err != nil {
					fail("ctx write %d: %v", i, err)
					return
				}
				resp, err := srv.ServeRequest(t.Context(), me, wire.ContextReadReq{Client: me, Group: "cc"})
				if err != nil {
					fail("ctx read %d: %v", i, err)
					return
				}
				got := resp.(wire.ContextReadResp).Ctx
				if got == nil || got.Seq < uint64(i) {
					fail("ctx read after seq %d returned %+v", i, got)
					return
				}
			}
		}(g)
	}

	// Causal gating via gossip push: deliver a dependent write before its
	// predecessor, then the predecessor; both must eventually integrate
	// (pending promotion), and the push path runs concurrently with
	// everything above.
	for g := 0; g < lanes; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			me := fmt.Sprintf("gater-%d", g)
			for i := 1; i <= iters/3; i++ {
				base := fmt.Sprintf("dep-%d-%d", g, i)
				v1 := []byte("first")
				st1 := timestamp.Stamp{Time: 1, Writer: me, Digest: cryptoutil.Digest(v1)}
				w1 := &wire.SignedWrite{
					Group: "cc", Item: base + "-a", Stamp: st1, Value: v1,
					WriterCtx: sessionctx.Vector{base + "-a": st1},
				}
				w1.Sign(keys[me], nil)
				v2 := []byte("second")
				st2 := timestamp.Stamp{Time: 1, Writer: me, Digest: cryptoutil.Digest(v2)}
				w2 := &wire.SignedWrite{
					Group: "cc", Item: base + "-b", Stamp: st2, Value: v2,
					WriterCtx: sessionctx.Vector{base + "-a": st1, base + "-b": st2},
				}
				w2.Sign(keys[me], nil)
				h.RecordWrite(me, base+"-a", st1, v1, w1.WriterCtx)
				h.RecordWrite(me, base+"-b", st2, v2, w2.WriterCtx)
				// Dependent first: gated until w1 arrives.
				if _, err := srv.ServeRequest(t.Context(), "peer", wire.GossipPushReq{From: "peer", Writes: []*wire.SignedWrite{w2, w1}}); err != nil {
					fail("gossip push %s: %v", base, err)
					return
				}
			}
		}(g)
	}

	// Gossip pulls: high-water marks advance monotonically while the
	// dissemination log grows under it.
	for g := 0; g < lanes; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var after uint64
			for i := 0; i < iters; i++ {
				resp, err := srv.ServeRequest(t.Context(), "peer", wire.GossipPullReq{From: "peer", After: after})
				if err != nil {
					fail("gossip pull: %v", err)
					return
				}
				pull := resp.(wire.GossipPullResp)
				if pull.Seq < after {
					fail("pull seq went backwards: %d < %d", pull.Seq, after)
					return
				}
				for _, w := range pull.Writes {
					if err := w.Verify(ring, nil); err != nil {
						fail("pulled unverifiable write: %v", err)
						return
					}
				}
				after = pull.Seq
			}
		}(g)
	}

	// Metadata pollers: the lock-free and read-locked introspection paths.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				_ = srv.Epoch()
				_, _, _ = srv.Stats()
				_ = srv.StripeWaits()
				_ = srv.Head("g", "it-0-0")
			}
		}()
	}

	wg.Wait()
	if t.Failed() {
		return
	}

	// Every gated dependent write must have been promoted once its
	// predecessor arrived.
	for g := 0; g < lanes; g++ {
		for i := 1; i <= iters/3; i++ {
			base := fmt.Sprintf("dep-%d-%d", g, i)
			if srv.Head("cc", base+"-b") == nil {
				t.Errorf("gated write %s-b never promoted", base)
			}
		}
	}
	if _, pending, _ := srv.Stats(); pending != 0 {
		t.Errorf("%d writes still pending after quiesce", pending)
	}
	for _, v := range h.Check() {
		t.Errorf("checker violation: %s", v)
	}
}

// TestRestartRecoverUnderTraffic exercises the stop-the-world path against
// live traffic: Restart (volatile state dropped, WAL replayed, epoch
// bumped) and Recover run repeatedly while writers and readers keep going.
// Acknowledged writes must survive every restart because they were group-
// committed to the WAL before the ack.
func TestRestartRecoverUnderTraffic(t *testing.T) {
	dir := t.TempDir()
	log, err := storage.Open(filepath.Join(dir, "s00.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()

	ring := cryptoutil.NewKeyring()
	const lanes = 8
	keys := make([]cryptoutil.KeyPair, lanes)
	for g := 0; g < lanes; g++ {
		keys[g] = cryptoutil.DeterministicKeyPair(fmt.Sprintf("writer-%d", g), "restart")
		ring.MustRegister(keys[g].ID, keys[g].Public)
	}
	srv := New(Config{ID: "s00", Ring: ring, Persist: log})
	srv.RegisterGroup("g", Policy{Consistency: wire.MRC})

	var wg sync.WaitGroup
	for g := 0; g < lanes; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			me := fmt.Sprintf("writer-%d", g)
			for i := 1; i <= 40; i++ {
				item := fmt.Sprintf("it-%d", g)
				w := &wire.SignedWrite{
					Group: "g", Item: item,
					Stamp: timestamp.Stamp{Time: uint64(i)},
					Value: []byte(fmt.Sprintf("v%d", i)),
				}
				w.Sign(keys[g], nil)
				if _, err := srv.ServeRequest(t.Context(), me, wire.WriteReq{Write: w}); err != nil {
					t.Errorf("write %d/%d: %v", g, i, err)
					return
				}
				if _, err := srv.ServeRequest(t.Context(), me, wire.MetaReq{Client: me, Group: "g", Item: item}); err != nil {
					t.Errorf("meta %d/%d: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if err := srv.Restart(); err != nil {
				t.Errorf("restart %d: %v", i, err)
				return
			}
			if err := srv.Recover(); err != nil {
				t.Errorf("recover %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	// One final restart with quiesced traffic: every lane's last
	// acknowledged write must replay from the WAL.
	if err := srv.Restart(); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < lanes; g++ {
		head := srv.Head("g", fmt.Sprintf("it-%d", g))
		if head == nil {
			t.Fatalf("lane %d: acknowledged writes lost across restart", g)
		}
		if head.Stamp.Time != 40 {
			t.Fatalf("lane %d: head stamp %d after restart, want 40", g, head.Stamp.Time)
		}
	}
}
