package wire

// fragenvelope.go defines the binary fragment envelope: the self-verifying
// carrier for one erasure-coded share riding inside SignedWrite.Value. The
// envelope holds the share plus the cross-checksum — the vector of digests
// of ALL n shares — so a reader can check any single fragment against the
// writer's one signature without seeing the other n-1 shares
// (PoWerStore-style "proofs of writing"; see DESIGN.md §7.9).
//
// The signature does not cover the raw envelope bytes. Instead the
// envelope's CrossDigest — a digest over (magic, k, n, cross-checksum) —
// takes the place of the value digest in the write's canonical signing
// bytes (SignedWrite.signingBytes). Because CrossDigest is independent of
// the fragment index and share, all n per-server envelopes of one dispersal
// produce IDENTICAL signing bytes: the writer signs once, every verifier
// hits the signature cache, and each share_i is still bound transitively
// via sig → CrossDigest → Cross[i] → digest(share_i). An equivocating
// writer would need two share vectors under one CrossDigest, i.e. a
// collision.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"securestore/internal/cryptoutil"
)

// fragMagic prefixes every fragment envelope (and salts CrossDigest), so
// envelope bytes can never be confused with another signed encoding. A
// value is treated as an envelope only if it parses completely — magic,
// sane geometry, no trailing bytes — which an honest raw value cannot do
// by accident.
const fragMagic = "securestore-frag-v1\x00"

// ErrBadEnvelope reports a malformed or inconsistent fragment envelope.
var ErrBadEnvelope = errors.New("wire: malformed fragment envelope")

// FragmentEnvelope is one dispersed share plus the self-verifying
// cross-checksum of the whole dispersal.
type FragmentEnvelope struct {
	// Index is the 0-based share index (the IDA matrix row).
	Index int
	// K is the reconstruction threshold; N is the total share count.
	K, N int
	// Cross is the cross-checksum: Cross[i] = digest(share_i) for every
	// one of the N shares, identical in all N envelopes.
	Cross [][32]byte
	// Share is this fragment's payload.
	Share []byte
}

// validate checks the geometry invariants: 1 <= k <= n <= 255 (the IDA
// field bound), index in [0, n), and a cross-checksum entry per share.
func (e *FragmentEnvelope) validate() error {
	if e.K < 1 || e.N < e.K || e.N > 255 {
		return fmt.Errorf("%w: k=%d n=%d", ErrBadEnvelope, e.K, e.N)
	}
	if e.Index < 0 || e.Index >= e.N {
		return fmt.Errorf("%w: index %d outside [0,%d)", ErrBadEnvelope, e.Index, e.N)
	}
	if len(e.Cross) != e.N {
		return fmt.Errorf("%w: %d cross-checksum entries for n=%d", ErrBadEnvelope, len(e.Cross), e.N)
	}
	return nil
}

// Encode renders the envelope in the codec's length-prefixed binary
// layout: magic, uvarint index/k/n, n fixed 32-byte digests, then the
// length-prefixed share.
func (e *FragmentEnvelope) Encode() ([]byte, error) {
	if err := e.validate(); err != nil {
		return nil, err
	}
	b := make([]byte, 0, len(fragMagic)+3*binary.MaxVarintLen64+len(e.Cross)*32+binary.MaxVarintLen64+len(e.Share))
	b = append(b, fragMagic...)
	b = binary.AppendUvarint(b, uint64(e.Index))
	b = binary.AppendUvarint(b, uint64(e.K))
	b = binary.AppendUvarint(b, uint64(e.N))
	for _, d := range e.Cross {
		b = append(b, d[:]...)
	}
	return appendByteSlice(b, e.Share), nil
}

// parseFragmentEnvelope decodes without copying the share (a view into
// data). Callers that retain the result past data's lifetime must use
// DecodeFragmentEnvelope.
func parseFragmentEnvelope(data []byte) (*FragmentEnvelope, error) {
	if !bytes.HasPrefix(data, []byte(fragMagic)) {
		return nil, fmt.Errorf("%w: missing magic", ErrBadEnvelope)
	}
	r := &bufReader{data: data, off: len(fragMagic)}
	e := &FragmentEnvelope{}
	e.Index = int(r.uvarint())
	e.K = int(r.uvarint())
	e.N = int(r.uvarint())
	if r.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEnvelope, r.err)
	}
	if e.K < 1 || e.N < e.K || e.N > 255 || e.Index < 0 || e.Index >= e.N {
		return nil, fmt.Errorf("%w: index=%d k=%d n=%d", ErrBadEnvelope, e.Index, e.K, e.N)
	}
	e.Cross = make([][32]byte, e.N)
	for i := range e.Cross {
		copy(e.Cross[i][:], r.take(32))
	}
	e.Share = r.view()
	if err := r.finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEnvelope, err)
	}
	return e, nil
}

// DecodeFragmentEnvelope parses an envelope, rejecting truncation,
// trailing bytes, and impossible geometry. The result shares no memory
// with data.
func DecodeFragmentEnvelope(data []byte) (*FragmentEnvelope, error) {
	e, err := parseFragmentEnvelope(data)
	if err != nil {
		return nil, err
	}
	e.Share = append([]byte(nil), e.Share...)
	return e, nil
}

// IsFragmentEnvelope reports whether data is a complete, well-formed
// fragment envelope — the strict test the data path uses to route a
// stored value down the erasure-coded read path.
func IsFragmentEnvelope(data []byte) bool {
	if !bytes.HasPrefix(data, []byte(fragMagic)) {
		return false
	}
	_, err := parseFragmentEnvelope(data)
	return err == nil
}

// CrossDigest is the digest the writer's signature binds for fragment
// envelopes: digest(magic || k || n || Cross[0..n-1]). It commits to the
// full dispersal geometry and every share's digest, but not to any one
// index or share — so all n envelopes of a dispersal share it, and the
// writer signs once.
func (e *FragmentEnvelope) CrossDigest() [32]byte {
	b := make([]byte, 0, len(fragMagic)+2*binary.MaxVarintLen64+len(e.Cross)*32)
	b = append(b, fragMagic...)
	b = binary.AppendUvarint(b, uint64(e.K))
	b = binary.AppendUvarint(b, uint64(e.N))
	for _, d := range e.Cross {
		b = append(b, d[:]...)
	}
	return cryptoutil.Digest(b)
}

// VerifyShare checks the envelope's own share against its cross-checksum
// entry: digest(Share) must equal Cross[Index]. Together with the
// signature over CrossDigest this makes every fragment self-verifying.
func (e *FragmentEnvelope) VerifyShare() error {
	if err := e.validate(); err != nil {
		return err
	}
	if cryptoutil.Digest(e.Share) != e.Cross[e.Index] {
		return fmt.Errorf("%w: share digest does not match cross-checksum[%d]", ErrBadEnvelope, e.Index)
	}
	return nil
}
