// Package wire defines the messages exchanged between secure-store clients
// and servers, and between servers during dissemination. The central type
// is SignedWrite, the paper's write-message {"write", uid(x_j), X_i (or
// t_j), v, {...}_{K_i^-1}} (Figure 2): because every stored value carries
// its writer's signature over value *and* meta-data, servers act as passive
// repositories — a malicious server can withhold or serve stale data but
// cannot forge or undetectably alter it.
package wire

import (
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"

	"securestore/internal/accessctl"
	"securestore/internal/cryptoutil"
	"securestore/internal/metrics"
	"securestore/internal/sessionctx"
	"securestore/internal/timestamp"
)

// Errors shared across protocol layers.
var (
	ErrBadWrite  = errors.New("wire: invalid signed write")
	ErrDigest    = errors.New("wire: value digest mismatch")
	ErrWriterUID = errors.New("wire: stamp writer does not match signer")
	ErrNotFound  = errors.New("wire: item not found")
	// ErrWrongShard reports that a request named an item (or context
	// owner) the receiving replica's shard does not own. It is a permanent
	// routing error: retrying against the same group can never succeed, so
	// clients fail fast and re-resolve against their shard table instead
	// of burning their retry budget. The bracketed token is part of the
	// error contract — see IsWrongShard.
	ErrWrongShard = errors.New("wire: item not owned by this replica group " + wrongShardToken)
)

// wrongShardToken is the stable in-band marker for wrong-shard errors.
// The TCP transport flattens server errors to strings (replyEnvelope.Err
// carries only err.Error()), so errors.Is alone cannot classify a remote
// rejection; the token survives the flattening and IsWrongShard matches
// it on the far side.
const wrongShardToken = "[EWRONGSHARD]"

// IsWrongShard reports whether err is a wrong-shard rejection, whether it
// arrived as a live error chain (in-memory transport) or as a
// reconstructed string error (TCP).
func IsWrongShard(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, ErrWrongShard) || strings.Contains(err.Error(), wrongShardToken)
}

// Consistency selects the consistency level a group of data items was
// created with (Section 4.2). Per the paper, the level is fixed at item
// creation: "the same data item cannot be accessed with MRC consistency
// requirement at one time and CC consistency at another time."
type Consistency int

// Consistency levels.
const (
	// MRC is Monotonic Read Consistency: per-item reads never go backwards.
	MRC Consistency = iota + 1
	// CC is Causal Consistency: reads respect causal dependencies across a
	// related group of items, carried in writer contexts.
	CC
)

// String renders the consistency level.
func (c Consistency) String() string {
	switch c {
	case MRC:
		return "MRC"
	case CC:
		return "CC"
	default:
		return fmt.Sprintf("consistency(%d)", int(c))
	}
}

// SignedWrite is a complete, self-verifying write: the item, its new value,
// the timestamp, the writer's context at write time (CC only), and the
// writer's signature over all of it. Non-faulty servers store and forward
// SignedWrites verbatim; dissemination cannot inject spurious writes
// because receivers re-verify the signature.
type SignedWrite struct {
	Group string `json:"group"`
	Item  string `json:"item"`
	// Stamp orders this write. Single-writer protocols use only Stamp.Time;
	// multi-writer protocols fill Writer and Digest too (Section 5.3).
	Stamp timestamp.Stamp `json:"stamp"`
	// WriterCtx is X_writer: the writer's context when the value was
	// written. Present only under CC; nil under MRC.
	WriterCtx sessionctx.Vector `json:"writerCtx,omitempty"`
	Value     []byte            `json:"value"`
	Writer    string            `json:"writer"`
	Sig       []byte            `json:"sig"`

	// memo caches the canonical signing bytes together with the exact
	// field values they were computed from. It is invisible to json and
	// gob (unexported), shared across Clone, and safe for concurrent use.
	// Every read revalidates the snapshot against the current fields, so
	// mutating a write after signing (tampering, fault injection) can
	// never be masked by a stale cache entry.
	memo atomic.Pointer[signingMemo]
}

// signingMemo is one computed canonical encoding plus the field snapshot
// it encodes. raw is immutable once stored.
type signingMemo struct {
	raw         []byte
	group       string
	item        string
	writer      string
	stamp       timestamp.Stamp
	valueDigest [32]byte
	ctx         sessionctx.Vector
}

// matches reports whether the memo still describes the write's current
// field values (valueDigest is the digest of the write's current Value,
// computed by the caller).
func (m *signingMemo) matches(w *SignedWrite, valueDigest [32]byte) bool {
	return m.group == w.Group && m.item == w.Item && m.writer == w.Writer &&
		m.stamp == w.Stamp && m.valueDigest == valueDigest && m.ctx.Equal(w.WriterCtx)
}

// signingMagic versions the canonical signing encoding. A signature is
// over (magic, group, item, stamp, sorted writer context, value digest,
// writer) in a length-prefixed binary layout: every variable-length field
// is preceded by its uvarint length, so no two distinct field tuples can
// produce the same byte string.
const signingMagic = "securestore-write-v1\x00"

// appendLenPrefixed appends s preceded by its uvarint length.
func appendLenPrefixed(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendStamp appends a stamp's (time, writer, digest) triple.
func appendStamp(b []byte, s timestamp.Stamp) []byte {
	b = binary.AppendUvarint(b, s.Time)
	b = appendLenPrefixed(b, s.Writer)
	return append(b, s.Digest[:]...)
}

// SigningBytes returns the canonical bytes the writer signs. The value
// itself is represented by its digest so that signing cost is independent
// of value size, matching the paper's "signed digest" construction.
//
// The canonical encoding is computed once per message and cached: repeat
// calls (a replica verifying, then persisting, then disseminating the same
// write; gossip re-delivery over an in-process transport) reuse the cached
// bytes after revalidating that every signed field still holds the value
// it was computed from.
func (w *SignedWrite) SigningBytes() []byte {
	digest, _ := w.effectiveDigest()
	return w.signingBytes(digest)
}

// effectiveDigest returns the digest the signature binds for this value.
// For ordinary values that is digest(Value). When Value parses strictly as
// a fragment envelope the signature instead binds the envelope's
// CrossDigest, which is identical across all n envelopes of one dispersal:
// the writer signs once and each share stays bound via the cross-checksum
// (see fragenvelope.go). The parsed envelope is returned alongside so
// Verify can check the share without re-parsing.
func (w *SignedWrite) effectiveDigest() ([32]byte, *FragmentEnvelope) {
	if env, err := parseFragmentEnvelope(w.Value); err == nil {
		return env.CrossDigest(), env
	}
	return cryptoutil.Digest(w.Value), nil
}

// signingBytes is SigningBytes for callers that already computed the
// value digest (Verify needs it for the multi-writer stamp check too).
func (w *SignedWrite) signingBytes(valueDigest [32]byte) []byte {
	if m := w.memo.Load(); m != nil && m.matches(w, valueDigest) {
		return m.raw
	}
	items := w.WriterCtx.Items() // sorted, so the encoding is deterministic
	size := len(signingMagic) + len(w.Group) + len(w.Item) + len(w.Writer) +
		len(w.Stamp.Writer) + 96 + len(items)*64
	raw := make([]byte, 0, size)
	raw = append(raw, signingMagic...)
	raw = appendLenPrefixed(raw, w.Group)
	raw = appendLenPrefixed(raw, w.Item)
	raw = appendStamp(raw, w.Stamp)
	raw = binary.AppendUvarint(raw, uint64(len(items)))
	for _, item := range items {
		raw = appendLenPrefixed(raw, item)
		raw = appendStamp(raw, w.WriterCtx[item])
	}
	raw = append(raw, valueDigest[:]...)
	raw = appendLenPrefixed(raw, w.Writer)
	w.memo.Store(&signingMemo{
		raw:         raw,
		group:       w.Group,
		item:        w.Item,
		writer:      w.Writer,
		stamp:       w.Stamp,
		valueDigest: valueDigest,
		ctx:         w.WriterCtx.Clone(),
	})
	return raw
}

// Sign signs the write with the writer's key.
func (w *SignedWrite) Sign(key cryptoutil.KeyPair, m *metrics.Counters) {
	w.Writer = key.ID
	w.Sig = key.Sign(w.SigningBytes(), m)
}

// Verify checks the write's signature, and — when the stamp carries a
// writer uid/digest (multi-writer mode) — that the stamp's writer matches
// the signer and the stamp's digest matches the value. These checks
// implement the paper's rules that "a malicious client cannot use the
// timestamp of a different client" and cannot reuse one timestamp for two
// values.
func (w *SignedWrite) Verify(ring *cryptoutil.Keyring, m *metrics.Counters) error {
	signer, data, sig, err := w.SigCheck()
	if err != nil {
		return err
	}
	if err := ring.Verify(signer, data, sig, m); err != nil {
		return fmt.Errorf("%w: item %s: %v", ErrBadWrite, w.Item, err)
	}
	return nil
}

// SigCheck runs every non-signature validity check (fragment share
// proof, multi-writer stamp discipline) and returns the signature-check
// triple: the signer's principal id, the canonical signing bytes, and
// the signature. It factors the front half of Verify out so the server's
// admission stage can collect the triples of concurrently arriving
// writes and verify them as one Ed25519 batch (cryptoutil.VerifyBatch)
// with semantics identical to per-write Verify calls.
func (w *SignedWrite) SigCheck() (signer string, data, sig []byte, err error) {
	if w == nil {
		return "", nil, nil, ErrBadWrite
	}
	// One digest of the value serves both the multi-writer stamp check and
	// the canonical signing bytes. Fragment envelopes substitute their
	// CrossDigest and additionally prove their own share against the
	// cross-checksum, so a Byzantine server cannot swap in a mangled share
	// or relabel another index's share as its own.
	valueDigest, env := w.effectiveDigest()
	if env != nil {
		if err := env.VerifyShare(); err != nil {
			return "", nil, nil, fmt.Errorf("%w: item %s: %v", ErrBadWrite, w.Item, err)
		}
	}
	if w.Stamp.Writer != "" && w.Stamp.Writer != w.Writer {
		return "", nil, nil, fmt.Errorf("%w: stamp names %q, signed by %q", ErrWriterUID, w.Stamp.Writer, w.Writer)
	}
	if w.Stamp.Writer != "" && w.Stamp.Digest != valueDigest {
		return "", nil, nil, fmt.Errorf("%w: item %s stamp %s", ErrDigest, w.Item, w.Stamp)
	}
	return w.Writer, w.signingBytes(valueDigest), w.Sig, nil
}

// Clone returns a deep copy of the write. The cached canonical encoding
// is shared with the original: it is immutable, and both copies revalidate
// it against their own fields before every use.
func (w *SignedWrite) Clone() *SignedWrite {
	if w == nil {
		return nil
	}
	out := &SignedWrite{
		Group:     w.Group,
		Item:      w.Item,
		Stamp:     w.Stamp,
		WriterCtx: w.WriterCtx.Clone(),
		Value:     append([]byte(nil), w.Value...),
		Writer:    w.Writer,
		Sig:       append([]byte(nil), w.Sig...),
	}
	out.memo.Store(w.memo.Load())
	return out
}

// Request is implemented by every client→server and server→server request.
// The exported marker lets other packages (the strong-consistency baselines)
// route their own message types through the same transports.
type Request interface{ WireRequest() }

// Response is implemented by every reply type.
type Response interface{ WireResponse() }

// ContextReadReq asks for the caller's stored signed context for a group
// (session initiation, Figure 1).
type ContextReadReq struct {
	Client string
	Group  string
	Token  *accessctl.Token
}

// ContextReadResp returns the stored context, or nil when the server has
// none for this client/group.
type ContextReadResp struct {
	Ctx *sessionctx.Signed
}

// ContextWriteReq stores the caller's signed context (session termination).
type ContextWriteReq struct {
	Ctx   *sessionctx.Signed
	Token *accessctl.Token
}

// MetaReq asks for the timestamp (meta-data only) of an item — phase one of
// the read protocol in Figure 2, and the bulk query used for context
// reconstruction (Section 5.1).
type MetaReq struct {
	Client string
	Group  string
	Item   string
	Token  *accessctl.Token
}

// MetaResp carries the stamp of the server's current copy. Has is false
// when the server stores no copy of the item.
type MetaResp struct {
	Has   bool
	Stamp timestamp.Stamp
}

// ValueReq fetches the full signed write for an item from a chosen server —
// phase two of the read protocol.
type ValueReq struct {
	Client string
	Group  string
	Item   string
	// Stamp is the stamp the client selected in phase one; the server
	// returns its current copy, which may be even newer.
	Stamp timestamp.Stamp
	Token *accessctl.Token
}

// ValueResp returns the stored signed write.
type ValueResp struct {
	Write *SignedWrite
}

// WriteReq stores a signed write at a server.
type WriteReq struct {
	Write *SignedWrite
	Token *accessctl.Token
}

// Ack is the generic success reply.
type Ack struct{}

// LogReq asks a server for its list of latest writes for an item — the
// multi-writer read protocol (Section 5.3), where a client queries 2b+1
// servers and accepts a value reported identically by b+1 of them.
type LogReq struct {
	Client string
	Group  string
	Item   string
	Token  *accessctl.Token
}

// LogResp carries the server's log of recent validated writes for the
// item, newest first.
type LogResp struct {
	Writes []*SignedWrite
}

// GossipPushReq carries signed writes from one server to another during
// anti-entropy (Section 4: "servers keep themselves informed about updates
// in which they do not directly participate via a gossip protocol").
type GossipPushReq struct {
	From   string
	Writes []*SignedWrite
}

// GossipPushResp acknowledges a push and reports how many writes the
// receiver applied (fresh, valid, and newer than its copies).
type GossipPushResp struct {
	Applied int
}

// DefaultGossipBatch is the default cap on signed writes per gossip
// frame: pushes are chunked and pull replies paged to at most this many
// writes, so a cold replica catching up on a large backlog exchanges a
// sequence of bounded frames instead of materializing the whole log in
// one.
const DefaultGossipBatch = 256

// GossipPullReq asks a peer for the updates it accepted after the
// caller's high-water mark into the peer's update log — pull
// anti-entropy, the complement of push in epidemic replication (the
// paper's ref [7]). Pull lets a rejoining or partitioned-away replica
// catch up at its own initiative.
type GossipPullReq struct {
	From string
	// After is the caller's last seen sequence number in the peer's log.
	After uint64
	// Limit caps the number of writes in the reply (0 means the server's
	// default, DefaultGossipBatch). The server may return fewer and sets
	// More when updates remain past the reply.
	Limit int
	// Cursor resumes a paged state transfer: when the caller is behind
	// the peer's retained log tail, the peer sends its item heads in
	// pages keyed by an opaque cursor the caller echoes back verbatim.
	// Empty starts from the beginning.
	Cursor string
}

// GossipPullResp returns the requested updates and the peer's current
// sequence number (the caller's next high-water mark).
type GossipPullResp struct {
	Writes []*SignedWrite
	// Seq is the sequence mark this reply covers. For an in-window page it
	// is the sequence of the last returned entry (the caller's next After);
	// for a state-transfer page it is the peer's head sequence when the
	// page was cut, which the caller adopts only once the transfer
	// completes.
	Seq uint64
	// Epoch identifies the server's in-memory incarnation. A crashed and
	// restarted replica rebuilds its update log from its WAL, so its
	// sequence numbers no longer align with what peers pulled before the
	// crash; a changed epoch tells the puller to discard its high-water
	// mark and resynchronize from zero.
	Epoch uint64
	// More reports that updates remain past this page; the caller should
	// pull again (echoing Cursor when set) before trusting Seq as caught
	// up.
	More bool
	// Cursor, when non-empty, continues a paged state transfer: echo it in
	// the next request's Cursor field.
	Cursor string
}

func (ContextReadReq) WireRequest()   {}
func (ContextWriteReq) WireRequest()  {}
func (MetaReq) WireRequest()          {}
func (ValueReq) WireRequest()         {}
func (WriteReq) WireRequest()         {}
func (LogReq) WireRequest()           {}
func (GossipPushReq) WireRequest()    {}
func (GossipPullReq) WireRequest()    {}
func (ContextReadResp) WireResponse() {}
func (Ack) WireResponse()             {}
func (MetaResp) WireResponse()        {}
func (ValueResp) WireResponse()       {}
func (LogResp) WireResponse()         {}
func (GossipPushResp) WireResponse()  {}
func (GossipPullResp) WireResponse()  {}

// RequestName returns a short dotted label for a request's kind, used as
// the operation key in traces, latency histograms, and the /metrics
// exporter ("meta", "value", "gossip.push", ...). Unknown request types
// (e.g. baseline-specific messages routed through the same transport)
// report "other".
func RequestName(req Request) string {
	switch req.(type) {
	case ContextReadReq:
		return "ctx.read"
	case ContextWriteReq:
		return "ctx.write"
	case MetaReq:
		return "meta"
	case ValueReq:
		return "value"
	case WriteReq:
		return "write"
	case LogReq:
		return "log"
	case GossipPushReq:
		return "gossip.push"
	case GossipPullReq:
		return "gossip.pull"
	default:
		return "other"
	}
}

// ServerOpName is RequestName with a "server." prefix, as constants — the
// span operation a replica records per request. Precomputed because the
// server opens one such span per inbound request and a runtime concat
// would allocate on that hot path.
func ServerOpName(req Request) string {
	switch req.(type) {
	case ContextReadReq:
		return "server.ctx.read"
	case ContextWriteReq:
		return "server.ctx.write"
	case MetaReq:
		return "server.meta"
	case ValueReq:
		return "server.value"
	case WriteReq:
		return "server.write"
	case LogReq:
		return "server.log"
	case GossipPushReq:
		return "server.gossip.push"
	case GossipPullReq:
		return "server.gossip.pull"
	default:
		return "server.other"
	}
}

// RegisterGob registers every request and response type with encoding/gob
// so the TCP transport can encode them behind the Request/Response
// interfaces. Call once at process start.
func RegisterGob() {
	gob.Register(ContextReadReq{})
	gob.Register(ContextReadResp{})
	gob.Register(ContextWriteReq{})
	gob.Register(MetaReq{})
	gob.Register(MetaResp{})
	gob.Register(ValueReq{})
	gob.Register(ValueResp{})
	gob.Register(WriteReq{})
	gob.Register(Ack{})
	gob.Register(LogReq{})
	gob.Register(LogResp{})
	gob.Register(GossipPushReq{})
	gob.Register(GossipPushResp{})
	gob.Register(GossipPullReq{})
	gob.Register(GossipPullResp{})
}
