package wire

import (
	"bytes"
	"errors"
	"testing"

	"securestore/internal/accessctl"
	"securestore/internal/cryptoutil"
	"securestore/internal/sessionctx"
	"securestore/internal/timestamp"
)

func testToken() *accessctl.Token {
	return &accessctl.Token{
		Issuer: "authority", Client: "c", Group: "g",
		Rights: accessctl.ReadWrite, Serial: 42, Sig: []byte("tok-sig"),
	}
}

func testSignedCtx() *sessionctx.Signed {
	return &sessionctx.Signed{
		Owner: "c", Group: "g", Seq: 9,
		Vector: sessionctx.Vector{
			"x": {Time: 7, Writer: "w"},
			"y": {Time: 3},
		},
		Sig: []byte("ctx-sig"),
	}
}

// allRequests returns one populated instance of every request type.
func allRequests(t *testing.T) []Request {
	t.Helper()
	key, _ := testRing(t)
	w := signedWrite(t, key, true)
	return []Request{
		ContextReadReq{Client: "c", Group: "g", Token: testToken()},
		ContextReadReq{Client: "c", Group: "g"},
		ContextWriteReq{Ctx: testSignedCtx(), Token: testToken()},
		ContextWriteReq{},
		MetaReq{Client: "c", Group: "g", Item: "x", Token: testToken()},
		ValueReq{Client: "c", Group: "g", Item: "x", Stamp: w.Stamp, Token: testToken()},
		WriteReq{Write: w, Token: testToken()},
		WriteReq{},
		LogReq{Client: "c", Group: "g", Item: "x", Token: testToken()},
		GossipPushReq{From: "s00", Writes: []*SignedWrite{w, w}},
		GossipPushReq{From: "s00"},
		GossipPullReq{From: "s01", After: 77, Limit: 256, Cursor: "g\x00item"},
		GossipPullReq{From: "s01"},
	}
}

// allResponses returns one populated instance of every response type.
func allResponses(t *testing.T) []Response {
	t.Helper()
	key, _ := testRing(t)
	w := signedWrite(t, key, true)
	return []Response{
		ContextReadResp{Ctx: testSignedCtx()},
		ContextReadResp{},
		Ack{},
		MetaResp{Has: true, Stamp: w.Stamp},
		MetaResp{},
		ValueResp{Write: w},
		ValueResp{},
		LogResp{Writes: []*SignedWrite{w}},
		LogResp{},
		GossipPushResp{Applied: 3},
		GossipPullResp{Writes: []*SignedWrite{w}, Seq: 9, Epoch: 2, More: true, Cursor: "g\x00item"},
		GossipPullResp{},
	}
}

// TestBinaryRoundTripAllMessages re-encodes every decoded message and
// requires byte identity: the encoding is canonical, so a second pass over
// a decoded value must reproduce the frame exactly.
func TestBinaryRoundTripAllMessages(t *testing.T) {
	for _, req := range allRequests(t) {
		enc, err := AppendRequest(nil, req)
		if err != nil {
			t.Fatalf("encode %T: %v", req, err)
		}
		dec, err := DecodeRequest(enc)
		if err != nil {
			t.Fatalf("decode %T: %v", req, err)
		}
		enc2, err := AppendRequest(nil, dec)
		if err != nil {
			t.Fatalf("re-encode %T: %v", dec, err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("%T: decode/encode not canonical\n first: %x\nsecond: %x", req, enc, enc2)
		}
	}
	for _, resp := range allResponses(t) {
		enc, err := AppendResponse(nil, resp)
		if err != nil {
			t.Fatalf("encode %T: %v", resp, err)
		}
		dec, err := DecodeResponse(enc)
		if err != nil {
			t.Fatalf("decode %T: %v", resp, err)
		}
		enc2, err := AppendResponse(nil, dec)
		if err != nil {
			t.Fatalf("re-encode %T: %v", dec, err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("%T: decode/encode not canonical", resp)
		}
	}
}

// TestBinaryPreservesSignedWrite checks the tentpole property end to end:
// a decoded write verifies against the received bytes (the memo is primed
// from the wire's signing core, no re-derivation), and tampering with any
// part of the frame still fails verification.
func TestBinaryPreservesSignedWrite(t *testing.T) {
	key, ring := testRing(t)
	for _, multi := range []bool{false, true} {
		w := signedWrite(t, key, multi)
		enc, err := AppendRequest(nil, WriteReq{Write: w})
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodeRequest(enc)
		if err != nil {
			t.Fatal(err)
		}
		wr, ok := dec.(WriteReq)
		if !ok {
			t.Fatalf("decoded %T, want WriteReq", dec)
		}
		if err := wr.Write.Verify(ring, nil); err != nil {
			t.Fatalf("multi=%v verify after binary decode: %v", multi, err)
		}
		if !bytes.Equal(wr.Write.Value, w.Value) || wr.Write.Item != w.Item || wr.Write.Stamp != w.Stamp {
			t.Fatal("decoded write fields differ")
		}
		if multi && !wr.Write.WriterCtx.Equal(w.WriterCtx) {
			t.Fatal("decoded writer context differs")
		}
	}
}

// TestBinaryRejectsTamperedWrite flips each byte of an encoded WriteReq in
// turn; no mutation that changes what the write SAYS (group, item, stamp,
// context, value, writer) may decode and still verify — priming the
// signing memo from wire bytes must never let a tampered write pass. Flips
// that leave every semantic field intact (e.g. in the core's redundant
// value-digest, which Verify recomputes from the value anyway) may verify:
// the accepted write is identical to what was signed.
func TestBinaryRejectsTamperedWrite(t *testing.T) {
	key, ring := testRing(t)
	w := signedWrite(t, key, true)
	enc, err := AppendRequest(nil, WriteReq{Write: w})
	if err != nil {
		t.Fatal(err)
	}
	same := func(g *SignedWrite) bool {
		return g.Group == w.Group && g.Item == w.Item && g.Writer == w.Writer &&
			g.Stamp == w.Stamp && bytes.Equal(g.Value, w.Value) && g.WriterCtx.Equal(w.WriterCtx)
	}
	for i := range enc {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0xff
		dec, err := DecodeRequest(mut)
		if err != nil {
			continue // malformed: rejected at decode, fine
		}
		wr, ok := dec.(WriteReq)
		if !ok || wr.Write == nil {
			continue // mutated into a different (valid) shape, fine
		}
		if err := wr.Write.Verify(ring, nil); err == nil && !same(wr.Write) {
			t.Fatalf("byte %d flipped: semantically tampered write decoded AND verified", i)
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	key, _ := testRing(t)
	w := signedWrite(t, key, true)
	valid, err := AppendRequest(nil, WriteReq{Write: w})
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"empty":          {},
		"unknown kind":   {0xee, 1, 2, 3},
		"trailing bytes": append(append([]byte(nil), valid...), 0x00),
		"truncated":      valid[:len(valid)/2],
		"bad presence":   {kindWriteReq, 7},
	}
	for name, frame := range cases {
		if _, err := DecodeRequest(frame); !errors.Is(err, ErrCodec) {
			t.Errorf("%s: DecodeRequest = %v, want ErrCodec", name, err)
		}
	}
	if _, err := DecodeResponse([]byte{0xee}); !errors.Is(err, ErrCodec) {
		t.Errorf("unknown response kind: %v, want ErrCodec", err)
	}
}

// TestDecodeEveryTruncation checks that no prefix of a valid frame decodes
// (the format is self-delimiting) and none panics.
func TestDecodeEveryTruncation(t *testing.T) {
	key, _ := testRing(t)
	w := signedWrite(t, key, true)
	for _, req := range []Request{
		WriteReq{Write: w, Token: testToken()},
		GossipPushReq{From: "s", Writes: []*SignedWrite{w}},
		ContextWriteReq{Ctx: testSignedCtx()},
	} {
		enc, err := AppendRequest(nil, req)
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < len(enc); n++ {
			if _, err := DecodeRequest(enc[:n]); err == nil {
				t.Fatalf("%T: %d-byte prefix of %d-byte frame decoded", req, n, len(enc))
			}
		}
	}
}

// TestAppendRejectsUnknownType covers the baseline message types that only
// the in-memory bus carries: the binary codec must refuse them loudly.
func TestAppendRejectsUnknownType(t *testing.T) {
	type fakeReq struct{ Request }
	type fakeResp struct{ Response }
	if _, err := AppendRequest(nil, fakeReq{}); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("AppendRequest(unknown) = %v, want ErrUnknownType", err)
	}
	if _, err := AppendResponse(nil, fakeResp{}); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("AppendResponse(unknown) = %v, want ErrUnknownType", err)
	}
}

func TestBufferPool(t *testing.T) {
	b := NewBuffer()
	if len(b.B) != 0 {
		t.Fatal("fresh buffer not empty")
	}
	b.B = append(b.B, make([]byte, 100)...)
	b.Release()
	b2 := NewBuffer()
	if len(b2.B) != 0 {
		t.Fatal("recycled buffer not reset")
	}
	b2.Grow(64)
	if len(b2.B) != 64 {
		t.Fatal("Grow did not size the buffer")
	}
	b2.Release()
}

// corpusFrames builds the fuzz seed corpus: valid frames for every
// message type plus systematically damaged variants.
func corpusFrames(t interface{ Helper() }) [][]byte {
	key := cryptoutil.DeterministicKeyPair("writer", "s")
	value := []byte("the value")
	w := &SignedWrite{
		Group: "g", Item: "x",
		Stamp: timestamp.Stamp{Time: 7, Writer: key.ID, Digest: cryptoutil.Digest(value)},
		Value: value,
		WriterCtx: sessionctx.Vector{
			"x": {Time: 7, Writer: key.ID, Digest: cryptoutil.Digest(value)},
			"y": {Time: 3},
		},
	}
	w.Sign(key, nil)

	var frames [][]byte
	add := func(b []byte, err error) {
		if err == nil {
			frames = append(frames, b)
		}
	}
	add(AppendRequest(nil, ContextReadReq{Client: "c", Group: "g", Token: testToken()}))
	add(AppendRequest(nil, ContextWriteReq{Ctx: testSignedCtx()}))
	add(AppendRequest(nil, MetaReq{Client: "c", Group: "g", Item: "x"}))
	add(AppendRequest(nil, ValueReq{Client: "c", Group: "g", Item: "x", Stamp: w.Stamp}))
	add(AppendRequest(nil, WriteReq{Write: w}))
	add(AppendRequest(nil, LogReq{Client: "c", Group: "g", Item: "x"}))
	add(AppendRequest(nil, GossipPushReq{From: "s", Writes: []*SignedWrite{w}}))
	add(AppendRequest(nil, GossipPullReq{From: "s", After: 7, Limit: 256, Cursor: "g\x00x"}))
	add(AppendResponse(nil, ContextReadResp{Ctx: testSignedCtx()}))
	add(AppendResponse(nil, Ack{}))
	add(AppendResponse(nil, MetaResp{Has: true, Stamp: w.Stamp}))
	add(AppendResponse(nil, ValueResp{Write: w}))
	add(AppendResponse(nil, LogResp{Writes: []*SignedWrite{w}}))
	add(AppendResponse(nil, GossipPushResp{Applied: 3}))
	add(AppendResponse(nil, GossipPullResp{Writes: []*SignedWrite{w}, Seq: 9, More: true, Cursor: "g\x00x"}))

	damaged := make([][]byte, 0, 4*len(frames))
	for _, f := range frames {
		damaged = append(damaged, f[:len(f)/2]) // truncated
		flip := append([]byte(nil), f...)
		flip[len(flip)/3] ^= 0x40 // bit-flipped
		damaged = append(damaged, flip)
		damaged = append(damaged, append(append([]byte(nil), f...), 0xff)) // trailing byte
	}
	damaged = append(damaged,
		[]byte{},
		[]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, // huge uvarint
	)
	return append(frames, damaged...)
}

// FuzzDecodeRequest asserts decode never panics, and that anything that
// does decode normalizes: its re-encoding must decode again and re-encode
// to identical bytes. (Byte identity with the input is NOT required —
// e.g. non-minimal uvarints decode to values that re-encode minimally.)
func FuzzDecodeRequest(f *testing.F) {
	for _, frame := range corpusFrames(f) {
		f.Add(frame)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(data)
		if err != nil {
			return
		}
		enc, err := AppendRequest(nil, req)
		if err != nil {
			t.Fatalf("decoded %T does not re-encode: %v", req, err)
		}
		req2, err := DecodeRequest(enc)
		if err != nil {
			t.Fatalf("re-encoded %T does not decode: %v", req, err)
		}
		enc2, err := AppendRequest(nil, req2)
		if err != nil || !bytes.Equal(enc, enc2) {
			t.Fatalf("decode/encode not idempotent for %T (err %v)", req, err)
		}
	})
}

// FuzzDecodeResponse is FuzzDecodeRequest for the response direction.
func FuzzDecodeResponse(f *testing.F) {
	for _, frame := range corpusFrames(f) {
		f.Add(frame)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := DecodeResponse(data)
		if err != nil {
			return
		}
		enc, err := AppendResponse(nil, resp)
		if err != nil {
			t.Fatalf("decoded %T does not re-encode: %v", resp, err)
		}
		resp2, err := DecodeResponse(enc)
		if err != nil {
			t.Fatalf("re-encoded %T does not decode: %v", resp, err)
		}
		enc2, err := AppendResponse(nil, resp2)
		if err != nil || !bytes.Equal(enc, enc2) {
			t.Fatalf("decode/encode not idempotent for %T (err %v)", resp, err)
		}
	})
}
