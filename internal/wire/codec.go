package wire

// codec.go is the hand-rolled binary wire codec: the length-prefixed
// binary encoding that signing already used (signingBytes) promoted to the
// single on-wire format. Every message type gets an explicit append-style
// encoder and a bounds-checked decoder over a pooled []byte — no
// reflection, no per-connection stream state, and no second marshal of a
// SignedWrite: the write's canonical signing core travels verbatim inside
// its wire encoding, so a receiver verifies the signature from the exact
// bytes it decoded instead of re-deriving them.
//
// Layout conventions (DESIGN.md §7.7):
//   - uvarint for lengths, counts and unsigned scalars
//   - every variable-length field is preceded by its uvarint length
//   - pointers carry a 1-byte presence flag (0 = nil, 1 = present)
//   - a message is a 1-byte kind tag followed by its fields; decoders
//     reject trailing bytes, unknown tags, and any truncation with
//     ErrCodec — never a panic
//
// The transport prefixes each frame with FrameVersion so peers speaking a
// different frame layout fail loudly instead of mis-decoding.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"securestore/internal/accessctl"
	"securestore/internal/sessionctx"
	"securestore/internal/timestamp"
)

// FrameVersion is the one-byte version tag of the binary frame layout.
// Bump it whenever any encoding below changes shape; peers with a
// different version refuse each other at connect instead of mis-decoding.
const FrameVersion byte = 1

// ErrCodec reports a malformed binary frame (truncated, trailing bytes,
// unknown message kind, or an inconsistent signing core).
var ErrCodec = errors.New("wire: malformed frame")

// ErrUnknownType reports a message the binary codec has no encoding for
// (e.g. a baseline-specific type that only the in-memory bus carries).
var ErrUnknownType = errors.New("wire: no binary encoding for message type")

// Message kind tags. The tag space is shared between requests and
// responses so a frame mis-routed across directions still fails loudly.
const (
	kindContextReadReq byte = iota + 1
	kindContextWriteReq
	kindMetaReq
	kindValueReq
	kindWriteReq
	kindLogReq
	kindGossipPushReq
	kindGossipPullReq
	kindContextReadResp
	kindAck
	kindMetaResp
	kindValueResp
	kindLogResp
	kindGossipPushResp
	kindGossipPullResp
)

// Buffer is a pooled frame buffer. Encoders append into B; Release
// returns the backing array to the pool. The wrapper (rather than a bare
// []byte) keeps Get/Release allocation-free.
type Buffer struct{ B []byte }

// maxPooledBuf caps the capacity of buffers returned to the pool so one
// giant state-transfer frame does not pin memory forever.
const maxPooledBuf = 1 << 20

// bufClasses are the pooled buffer size classes, smallest first. Pools
// are keyed by class so a reader pulling 100-byte reply frames never
// churns through megabyte gossip buffers (and vice versa): class i only
// ever holds buffers with capacity >= bufClasses[i].
var bufClasses = [...]int{512, 4096, 64 << 10, maxPooledBuf}

// defaultBufClass is the class NewBuffer draws from (encoders of
// unknown-size frames).
const defaultBufClass = 1 // 4096

var bufPools [len(bufClasses)]sync.Pool

func init() {
	for i, size := range bufClasses {
		bufPools[i].New = func() any { return &Buffer{B: make([]byte, 0, size)} }
	}
}

// NewBuffer returns an empty pooled buffer (default size class).
func NewBuffer() *Buffer {
	b := bufPools[defaultBufClass].Get().(*Buffer)
	b.B = b.B[:0]
	return b
}

// NewBufferSize returns a pooled buffer with B already sized to length n,
// drawn from the smallest size class that fits — the read path's
// per-frame allocation killer (transport readFrame knows each frame's
// exact length up front). Lengths beyond the largest class get a fresh
// unpooled allocation, which Release then drops.
func NewBufferSize(n int) *Buffer {
	for i, size := range bufClasses {
		if n <= size {
			b := bufPools[i].Get().(*Buffer)
			b.Grow(n)
			return b
		}
	}
	return &Buffer{B: make([]byte, n)}
}

// Release returns the buffer to its size class's pool. The caller must
// not retain views into b.B afterwards.
func (b *Buffer) Release() {
	c := cap(b.B)
	if c > maxPooledBuf {
		return
	}
	for i := len(bufClasses) - 1; i > 0; i-- {
		if c >= bufClasses[i] {
			bufPools[i].Put(b)
			return
		}
	}
	bufPools[0].Put(b)
}

// Grow ensures b.B has length n (for io.ReadFull into it).
func (b *Buffer) Grow(n int) {
	if cap(b.B) < n {
		b.B = make([]byte, n)
		return
	}
	b.B = b.B[:n]
}

// AppendRequest appends req's binary encoding (kind tag + fields) to b.
func AppendRequest(b []byte, req Request) ([]byte, error) {
	switch r := req.(type) {
	case ContextReadReq:
		b = append(b, kindContextReadReq)
		b = appendString(b, r.Client)
		b = appendString(b, r.Group)
		return appendToken(b, r.Token), nil
	case ContextWriteReq:
		b = append(b, kindContextWriteReq)
		b = appendSignedCtx(b, r.Ctx)
		return appendToken(b, r.Token), nil
	case MetaReq:
		b = append(b, kindMetaReq)
		b = appendString(b, r.Client)
		b = appendString(b, r.Group)
		b = appendString(b, r.Item)
		return appendToken(b, r.Token), nil
	case ValueReq:
		b = append(b, kindValueReq)
		b = appendString(b, r.Client)
		b = appendString(b, r.Group)
		b = appendString(b, r.Item)
		b = appendStamp(b, r.Stamp)
		return appendToken(b, r.Token), nil
	case WriteReq:
		b = append(b, kindWriteReq)
		b = appendWrite(b, r.Write)
		return appendToken(b, r.Token), nil
	case LogReq:
		b = append(b, kindLogReq)
		b = appendString(b, r.Client)
		b = appendString(b, r.Group)
		b = appendString(b, r.Item)
		return appendToken(b, r.Token), nil
	case GossipPushReq:
		b = append(b, kindGossipPushReq)
		b = appendString(b, r.From)
		return appendWrites(b, r.Writes), nil
	case GossipPullReq:
		b = append(b, kindGossipPullReq)
		b = appendString(b, r.From)
		b = binary.AppendUvarint(b, r.After)
		limit := r.Limit
		if limit < 0 {
			limit = 0
		}
		b = binary.AppendUvarint(b, uint64(limit))
		return appendString(b, r.Cursor), nil
	default:
		return b, fmt.Errorf("%w: %T", ErrUnknownType, req)
	}
}

// AppendResponse appends resp's binary encoding to b.
func AppendResponse(b []byte, resp Response) ([]byte, error) {
	switch r := resp.(type) {
	case ContextReadResp:
		b = append(b, kindContextReadResp)
		return appendSignedCtx(b, r.Ctx), nil
	case Ack:
		return append(b, kindAck), nil
	case MetaResp:
		b = append(b, kindMetaResp)
		b = appendBool(b, r.Has)
		return appendStamp(b, r.Stamp), nil
	case ValueResp:
		b = append(b, kindValueResp)
		return appendWrite(b, r.Write), nil
	case LogResp:
		b = append(b, kindLogResp)
		return appendWrites(b, r.Writes), nil
	case GossipPushResp:
		b = append(b, kindGossipPushResp)
		applied := r.Applied
		if applied < 0 {
			applied = 0
		}
		return binary.AppendUvarint(b, uint64(applied)), nil
	case GossipPullResp:
		b = append(b, kindGossipPullResp)
		b = appendWrites(b, r.Writes)
		b = binary.AppendUvarint(b, r.Seq)
		b = binary.AppendUvarint(b, r.Epoch)
		b = appendBool(b, r.More)
		return appendString(b, r.Cursor), nil
	default:
		return b, fmt.Errorf("%w: %T", ErrUnknownType, resp)
	}
}

// DecodeRequest parses one request from data. The whole slice must be
// consumed; decoded messages share no memory with data.
func DecodeRequest(data []byte) (Request, error) {
	r := &bufReader{data: data}
	kind, err := r.byteVal()
	if err != nil {
		return nil, err
	}
	var req Request
	switch kind {
	case kindContextReadReq:
		var m ContextReadReq
		m.Client = r.str()
		m.Group = r.str()
		m.Token = r.token()
		req = m
	case kindContextWriteReq:
		var m ContextWriteReq
		m.Ctx = r.signedCtx()
		m.Token = r.token()
		req = m
	case kindMetaReq:
		var m MetaReq
		m.Client = r.str()
		m.Group = r.str()
		m.Item = r.str()
		m.Token = r.token()
		req = m
	case kindValueReq:
		var m ValueReq
		m.Client = r.str()
		m.Group = r.str()
		m.Item = r.str()
		m.Stamp = r.stamp()
		m.Token = r.token()
		req = m
	case kindWriteReq:
		var m WriteReq
		m.Write = r.signedWrite()
		m.Token = r.token()
		req = m
	case kindLogReq:
		var m LogReq
		m.Client = r.str()
		m.Group = r.str()
		m.Item = r.str()
		m.Token = r.token()
		req = m
	case kindGossipPushReq:
		var m GossipPushReq
		m.From = r.str()
		m.Writes = r.writes()
		req = m
	case kindGossipPullReq:
		var m GossipPullReq
		m.From = r.str()
		m.After = r.uvarint()
		m.Limit = int(r.uvarint())
		m.Cursor = r.str()
		req = m
	default:
		return nil, fmt.Errorf("%w: unknown request kind %d", ErrCodec, kind)
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return req, nil
}

// DecodeResponse parses one response from data.
func DecodeResponse(data []byte) (Response, error) {
	r := &bufReader{data: data}
	kind, err := r.byteVal()
	if err != nil {
		return nil, err
	}
	var resp Response
	switch kind {
	case kindContextReadResp:
		var m ContextReadResp
		m.Ctx = r.signedCtx()
		resp = m
	case kindAck:
		resp = Ack{}
	case kindMetaResp:
		var m MetaResp
		m.Has = r.bool()
		m.Stamp = r.stamp()
		resp = m
	case kindValueResp:
		var m ValueResp
		m.Write = r.signedWrite()
		resp = m
	case kindLogResp:
		var m LogResp
		m.Writes = r.writes()
		resp = m
	case kindGossipPushResp:
		var m GossipPushResp
		m.Applied = int(r.uvarint())
		resp = m
	case kindGossipPullResp:
		var m GossipPullResp
		m.Writes = r.writes()
		m.Seq = r.uvarint()
		m.Epoch = r.uvarint()
		m.More = r.bool()
		m.Cursor = r.str()
		resp = m
	default:
		return nil, fmt.Errorf("%w: unknown response kind %d", ErrCodec, kind)
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return resp, nil
}

// --- field encoders ---

// appendString appends a uvarint length followed by the string bytes.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendByteSlice appends a uvarint length followed by the raw bytes.
func appendByteSlice(b, s []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendBool appends one byte, 1 for true.
func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// appendToken appends an access token behind a presence flag.
func appendToken(b []byte, t *accessctl.Token) []byte {
	if t == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	b = appendString(b, t.Issuer)
	b = appendString(b, t.Client)
	b = appendString(b, t.Group)
	b = binary.AppendUvarint(b, uint64(t.Rights))
	b = binary.AppendUvarint(b, t.Serial)
	return appendByteSlice(b, t.Sig)
}

// appendVector appends a context vector as a sorted (item, stamp) list.
func appendVector(b []byte, v sessionctx.Vector) []byte {
	items := v.Items()
	b = binary.AppendUvarint(b, uint64(len(items)))
	for _, item := range items {
		b = appendString(b, item)
		b = appendStamp(b, v[item])
	}
	return b
}

// appendSignedCtx appends a signed session context behind a presence flag.
func appendSignedCtx(b []byte, c *sessionctx.Signed) []byte {
	if c == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	b = appendString(b, c.Owner)
	b = appendString(b, c.Group)
	b = binary.AppendUvarint(b, c.Seq)
	b = appendVector(b, c.Vector)
	return appendByteSlice(b, c.Sig)
}

// appendWrite appends a signed write behind a presence flag. The encoding
// embeds the write's canonical signing core verbatim — the exact bytes the
// writer signed — followed by the full value and the signature, so the
// receiver can verify the signature against the very bytes it decoded.
func appendWrite(b []byte, w *SignedWrite) []byte {
	if w == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	core := w.SigningBytes()
	b = appendByteSlice(b, core)
	b = appendByteSlice(b, w.Value)
	return appendByteSlice(b, w.Sig)
}

// appendWrites appends a counted list of signed writes.
func appendWrites(b []byte, ws []*SignedWrite) []byte {
	b = binary.AppendUvarint(b, uint64(len(ws)))
	for _, w := range ws {
		b = appendWrite(b, w)
	}
	return b
}

// --- bounds-checked decoding ---

// bufReader walks a frame with a sticky error: after the first failure
// every accessor returns a zero value, and finish() reports the error (or
// complains about trailing bytes). Length fields are implicitly bounded by
// the slice, so a hostile length can never trigger a huge allocation.
type bufReader struct {
	data []byte
	off  int
	err  error
}

func (r *bufReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrCodec, fmt.Sprintf(format, args...))
	}
}

// finish reports the sticky error, or trailing garbage.
func (r *bufReader) finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.data) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCodec, len(r.data)-r.off)
	}
	return nil
}

// take returns an n-byte view of the frame (no copy).
func (r *bufReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.data)-r.off < n {
		r.fail("truncated: need %d bytes at offset %d", n, r.off)
		return nil
	}
	v := r.data[r.off : r.off+n]
	r.off += n
	return v
}

func (r *bufReader) byteVal() (byte, error) {
	v := r.take(1)
	if r.err != nil {
		return 0, r.err
	}
	return v[0], nil
}

func (r *bufReader) bool() bool {
	v := r.take(1)
	if r.err != nil {
		return false
	}
	switch v[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("bad bool byte %d", v[0])
		return false
	}
}

func (r *bufReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("bad uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// view returns a length-prefixed field as a view into the frame.
func (r *bufReader) view() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.data)-r.off) {
		r.fail("length %d exceeds remaining %d", n, len(r.data)-r.off)
		return nil
	}
	return r.take(int(n))
}

// str decodes a length-prefixed string (copies).
func (r *bufReader) str() string {
	return string(r.view())
}

// byteSlice decodes a length-prefixed byte field (copies; empty decodes
// to nil).
func (r *bufReader) byteSlice() []byte {
	v := r.view()
	if len(v) == 0 {
		return nil
	}
	return append([]byte(nil), v...)
}

func (r *bufReader) stamp() timestamp.Stamp {
	var s timestamp.Stamp
	s.Time = r.uvarint()
	s.Writer = r.str()
	copy(s.Digest[:], r.take(32))
	return s
}

func (r *bufReader) present() bool {
	v := r.take(1)
	if r.err != nil {
		return false
	}
	switch v[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("bad presence flag %d", v[0])
		return false
	}
}

func (r *bufReader) token() *accessctl.Token {
	if !r.present() {
		return nil
	}
	t := &accessctl.Token{}
	t.Issuer = r.str()
	t.Client = r.str()
	t.Group = r.str()
	t.Rights = accessctl.Rights(r.uvarint())
	t.Serial = r.uvarint()
	t.Sig = r.byteSlice()
	if r.err != nil {
		return nil
	}
	return t
}

func (r *bufReader) vector() sessionctx.Vector {
	n := r.uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	v := make(sessionctx.Vector, min(int(n), 64))
	for i := uint64(0); i < n; i++ {
		item := r.str()
		stamp := r.stamp()
		if r.err != nil {
			return nil
		}
		v[item] = stamp
	}
	return v
}

func (r *bufReader) signedCtx() *sessionctx.Signed {
	if !r.present() {
		return nil
	}
	c := &sessionctx.Signed{}
	c.Owner = r.str()
	c.Group = r.str()
	c.Seq = r.uvarint()
	c.Vector = r.vector()
	c.Sig = r.byteSlice()
	if r.err != nil {
		return nil
	}
	if c.Vector == nil {
		c.Vector = sessionctx.NewVector()
	}
	return c
}

// signedWrite decodes a write and primes its signing-bytes memo from the
// received signing core: the verifier then checks the signature against
// the exact bytes that crossed the wire, with no re-derivation. The core
// must parse completely and consistently (magic prefix, no trailing
// bytes), so a tampered core can never masquerade as a canonical one.
func (r *bufReader) signedWrite() *SignedWrite {
	if !r.present() {
		return nil
	}
	core := r.view()
	value := r.byteSlice()
	sig := r.byteSlice()
	if r.err != nil {
		return nil
	}

	c := &bufReader{data: core}
	if !bytes.HasPrefix(core, []byte(signingMagic)) {
		r.fail("signing core lacks magic prefix")
		return nil
	}
	c.off = len(signingMagic)
	w := &SignedWrite{Value: value, Sig: sig}
	w.Group = c.str()
	w.Item = c.str()
	w.Stamp = c.stamp()
	w.WriterCtx = c.vector()
	var digest [32]byte
	copy(digest[:], c.take(32))
	w.Writer = c.str()
	if err := c.finish(); err != nil {
		r.fail("signing core: %v", err)
		return nil
	}

	var memoCtx sessionctx.Vector
	if w.WriterCtx != nil {
		memoCtx = w.WriterCtx.Clone()
	}
	w.memo.Store(&signingMemo{
		raw:         append([]byte(nil), core...),
		group:       w.Group,
		item:        w.Item,
		writer:      w.Writer,
		stamp:       w.Stamp,
		valueDigest: digest,
		ctx:         memoCtx,
	})
	return w
}

func (r *bufReader) writes() []*SignedWrite {
	n := r.uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	// Preallocate conservatively: each write costs at least a presence
	// byte, so n can never honestly exceed the remaining frame bytes.
	if n > uint64(len(r.data)-r.off) {
		r.fail("write count %d exceeds remaining %d bytes", n, len(r.data)-r.off)
		return nil
	}
	out := make([]*SignedWrite, 0, n)
	for i := uint64(0); i < n; i++ {
		w := r.signedWrite()
		if r.err != nil {
			return nil
		}
		out = append(out, w)
	}
	return out
}
