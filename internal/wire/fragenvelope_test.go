package wire

import (
	"bytes"
	"errors"
	"testing"

	"securestore/internal/cryptoutil"
	"securestore/internal/metrics"
	"securestore/internal/timestamp"
)

// testEnvelopes builds the n envelopes of one dispersal over synthetic
// shares (the codec does not care that they are not real IDA output).
func testEnvelopes(t *testing.T, k, n int) []*FragmentEnvelope {
	t.Helper()
	shares := make([][]byte, n)
	cross := make([][32]byte, n)
	for i := range shares {
		shares[i] = bytes.Repeat([]byte{byte(i + 1)}, 16+i)
		cross[i] = cryptoutil.Digest(shares[i])
	}
	envs := make([]*FragmentEnvelope, n)
	for i := range envs {
		envs[i] = &FragmentEnvelope{Index: i, K: k, N: n, Cross: cross, Share: shares[i]}
	}
	return envs
}

func TestFragmentEnvelopeRoundTrip(t *testing.T) {
	for _, env := range testEnvelopes(t, 2, 4) {
		raw, err := env.Encode()
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		if !IsFragmentEnvelope(raw) {
			t.Fatal("encoded envelope not recognized")
		}
		got, err := DecodeFragmentEnvelope(raw)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if got.Index != env.Index || got.K != env.K || got.N != env.N ||
			!bytes.Equal(got.Share, env.Share) || len(got.Cross) != len(env.Cross) {
			t.Fatalf("round-trip mismatch: %+v vs %+v", got, env)
		}
		if err := got.VerifyShare(); err != nil {
			t.Fatalf("VerifyShare: %v", err)
		}
		if got.CrossDigest() != env.CrossDigest() {
			t.Fatal("CrossDigest changed across round-trip")
		}
	}
}

func TestFragmentEnvelopeRejectsMalformed(t *testing.T) {
	env := testEnvelopes(t, 2, 4)[0]
	raw, err := env.Encode()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":         nil,
		"no magic":      []byte("not an envelope"),
		"truncated":     raw[:len(raw)-3],
		"trailing":      append(append([]byte(nil), raw...), 0),
		"magic only":    []byte(fragMagic),
		"mangled magic": append([]byte("X"), raw[1:]...),
	}
	for name, data := range cases {
		if _, err := DecodeFragmentEnvelope(data); err == nil {
			t.Errorf("%s: decode accepted", name)
		}
		if IsFragmentEnvelope(data) {
			t.Errorf("%s: IsFragmentEnvelope true", name)
		}
	}

	// Impossible geometry is rejected at encode and decode alike.
	bad := &FragmentEnvelope{Index: 5, K: 2, N: 4, Cross: env.Cross, Share: env.Share}
	if _, err := bad.Encode(); !errors.Is(err, ErrBadEnvelope) {
		t.Errorf("out-of-range index encoded: %v", err)
	}
	bad = &FragmentEnvelope{Index: 0, K: 5, N: 4, Cross: env.Cross, Share: env.Share}
	if _, err := bad.Encode(); !errors.Is(err, ErrBadEnvelope) {
		t.Errorf("k>n encoded: %v", err)
	}
}

func TestFragmentEnvelopeShareMismatch(t *testing.T) {
	env := testEnvelopes(t, 2, 4)[1]
	env.Share = append([]byte(nil), env.Share...)
	env.Share[0] ^= 0xFF
	if err := env.VerifyShare(); !errors.Is(err, ErrBadEnvelope) {
		t.Fatalf("corrupted share passed VerifyShare: %v", err)
	}
}

// TestEnvelopeSignOnce pins the tentpole property: all n envelopes of one
// dispersal produce identical signing bytes, so the writer's single
// signature verifies every per-server write, and a server relabeling a
// share under a different index is caught by the cross-checksum.
func TestEnvelopeSignOnce(t *testing.T) {
	ring := cryptoutil.NewKeyring()
	key := cryptoutil.DeterministicKeyPair("writer", "seed")
	ring.MustRegister(key.ID, key.Public)
	m := &metrics.Counters{}

	envs := testEnvelopes(t, 2, 4)
	stamp := timestamp.Stamp{Time: 7, Writer: key.ID, Digest: envs[0].CrossDigest()}

	writes := make([]*SignedWrite, len(envs))
	for i, env := range envs {
		raw, err := env.Encode()
		if err != nil {
			t.Fatal(err)
		}
		writes[i] = &SignedWrite{Group: "g", Item: "item", Stamp: stamp, Value: raw}
	}
	writes[0].Sign(key, m)
	core := writes[0].SigningBytes()
	for _, w := range writes[1:] {
		w.Writer = writes[0].Writer
		w.Sig = writes[0].Sig
		if !bytes.Equal(w.SigningBytes(), core) {
			t.Fatal("envelopes of one dispersal have different signing bytes")
		}
	}
	for i, w := range writes {
		if err := w.Verify(ring, m); err != nil {
			t.Fatalf("envelope %d failed verify under shared signature: %v", i, err)
		}
	}

	// A server swapping in another index's share under its own index
	// breaks digest(share)==cross[index] and must fail Verify.
	forged := writes[2].Clone()
	env := *envs[2]
	env.Share = envs[3].Share
	raw, err := env.Encode()
	if err != nil {
		t.Fatal(err)
	}
	forged.Value = raw
	if err := forged.Verify(ring, m); err == nil {
		t.Fatal("relabeled share passed Verify")
	}

	// A tampered share fails too, even with the signature untouched.
	tampered := writes[1].Clone()
	tampered.Value = append([]byte(nil), tampered.Value...)
	tampered.Value[len(tampered.Value)-1] ^= 0xFF
	if err := tampered.Verify(ring, m); err == nil {
		t.Fatal("tampered share passed Verify")
	}
}

// FuzzDecodeFragmentEnvelope asserts envelope decoding never panics and
// that whatever decodes re-encodes to the identical bytes (the encoding
// is canonical).
func FuzzDecodeFragmentEnvelope(f *testing.F) {
	for _, env := range []*FragmentEnvelope{
		{Index: 0, K: 1, N: 1, Cross: make([][32]byte, 1), Share: nil},
		{Index: 3, K: 2, N: 4, Cross: make([][32]byte, 4), Share: []byte("share bytes")},
	} {
		raw, err := env.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	f.Add([]byte(fragMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := DecodeFragmentEnvelope(data)
		if err != nil {
			return
		}
		raw, err := env.Encode()
		if err != nil {
			t.Fatalf("decoded envelope failed to re-encode: %v", err)
		}
		if !bytes.Equal(raw, data) {
			t.Fatalf("re-encode not canonical: %x vs %x", raw, data)
		}
	})
}
