package wire

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"testing"

	"securestore/internal/cryptoutil"
	"securestore/internal/sessionctx"
	"securestore/internal/timestamp"
)

func signedWrite(t *testing.T, key cryptoutil.KeyPair, multi bool) *SignedWrite {
	t.Helper()
	value := []byte("the value")
	w := &SignedWrite{
		Group: "g",
		Item:  "x",
		Stamp: timestamp.Stamp{Time: 7},
		Value: value,
		WriterCtx: sessionctx.Vector{
			"x": {Time: 7},
			"y": {Time: 3},
		},
	}
	if multi {
		w.Stamp.Writer = key.ID
		w.Stamp.Digest = cryptoutil.Digest(value)
		w.WriterCtx["x"] = w.Stamp
	}
	w.Sign(key, nil)
	return w
}

func testRing(t *testing.T) (cryptoutil.KeyPair, *cryptoutil.Keyring) {
	t.Helper()
	key := cryptoutil.DeterministicKeyPair("writer", "s")
	ring := cryptoutil.NewKeyring()
	ring.MustRegister(key.ID, key.Public)
	return key, ring
}

func TestSignedWriteRoundTrip(t *testing.T) {
	key, ring := testRing(t)
	for _, multi := range []bool{false, true} {
		w := signedWrite(t, key, multi)
		if err := w.Verify(ring, nil); err != nil {
			t.Fatalf("multi=%v verify: %v", multi, err)
		}
	}
}

func TestVerifyRejectsValueTampering(t *testing.T) {
	key, ring := testRing(t)
	w := signedWrite(t, key, false)
	w.Value[0] ^= 0xff
	if err := w.Verify(ring, nil); !errors.Is(err, ErrBadWrite) {
		t.Fatalf("verify tampered value = %v, want ErrBadWrite", err)
	}
}

func TestVerifyRejectsMetaTampering(t *testing.T) {
	key, ring := testRing(t)

	tests := []struct {
		name   string
		mutate func(*SignedWrite)
	}{
		{"stamp", func(w *SignedWrite) { w.Stamp.Time++ }},
		{"item", func(w *SignedWrite) { w.Item = "other" }},
		{"group", func(w *SignedWrite) { w.Group = "other" }},
		{"context", func(w *SignedWrite) { w.WriterCtx["y"] = timestamp.Stamp{Time: 999} }},
		{"context-added", func(w *SignedWrite) { w.WriterCtx["z"] = timestamp.Stamp{Time: 1} }},
		{"context-dropped", func(w *SignedWrite) { delete(w.WriterCtx, "y") }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			w := signedWrite(t, key, false)
			tt.mutate(w)
			if err := w.Verify(ring, nil); err == nil {
				t.Fatalf("tampered %s verified", tt.name)
			}
		})
	}
}

func TestVerifyRejectsStolenTimestamp(t *testing.T) {
	// A malicious client cannot use another client's uid in its stamp:
	// the signature key must match the uid (Section 5.3).
	key, ring := testRing(t)
	mallory := cryptoutil.DeterministicKeyPair("mallory", "s")
	ring.MustRegister(mallory.ID, mallory.Public)

	w := signedWrite(t, key, true)
	stolen := w.Clone()
	stolen.Sign(mallory, nil) // mallory signs, but the stamp still names "writer"
	if err := stolen.Verify(ring, nil); !errors.Is(err, ErrWriterUID) {
		t.Fatalf("stolen-uid verify = %v, want ErrWriterUID", err)
	}
}

func TestVerifyRejectsDigestMismatch(t *testing.T) {
	// One timestamp cannot cover two values: the digest in the stamp must
	// match the value.
	key, ring := testRing(t)
	w := signedWrite(t, key, true)
	w.Value = []byte("a different value")
	// Re-sign so the signature itself is valid; only the stamp digest lies.
	w.Sign(key, nil)
	if err := w.Verify(ring, nil); !errors.Is(err, ErrDigest) {
		t.Fatalf("digest-mismatch verify = %v, want ErrDigest", err)
	}
}

func TestSigningBytesIndependentOfMapOrder(t *testing.T) {
	key, _ := testRing(t)
	w1 := signedWrite(t, key, false)
	// Build the same write with the context populated in reverse order.
	w2 := &SignedWrite{
		Group: w1.Group, Item: w1.Item, Stamp: w1.Stamp, Value: w1.Value,
		WriterCtx: sessionctx.Vector{},
		Writer:    w1.Writer,
	}
	for _, item := range []string{"y", "x"} {
		w2.WriterCtx[item] = w1.WriterCtx[item]
	}
	if !bytes.Equal(w1.SigningBytes(), w2.SigningBytes()) {
		t.Fatal("signing bytes depend on context insertion order")
	}
}

func TestCloneDeep(t *testing.T) {
	key, _ := testRing(t)
	w := signedWrite(t, key, false)
	c := w.Clone()
	c.Value[0] ^= 0xff
	c.WriterCtx["x"] = timestamp.Stamp{Time: 999}
	c.Sig[0] ^= 0xff
	if w.Value[0] == c.Value[0] || w.WriterCtx["x"].Time == 999 || w.Sig[0] == c.Sig[0] {
		t.Fatal("clone shares storage")
	}
	var nilW *SignedWrite
	if nilW.Clone() != nil {
		t.Fatal("nil clone should be nil")
	}
}

func TestVerifyNil(t *testing.T) {
	_, ring := testRing(t)
	var w *SignedWrite
	if err := w.Verify(ring, nil); !errors.Is(err, ErrBadWrite) {
		t.Fatalf("nil verify = %v, want ErrBadWrite", err)
	}
}

func TestGobRoundTripAllMessages(t *testing.T) {
	RegisterGob()
	key, _ := testRing(t)
	w := signedWrite(t, key, true)

	msgs := []any{
		Request(ContextReadReq{Client: "c", Group: "g"}),
		Request(MetaReq{Client: "c", Group: "g", Item: "x"}),
		Request(ValueReq{Client: "c", Group: "g", Item: "x", Stamp: w.Stamp}),
		Request(WriteReq{Write: w}),
		Request(LogReq{Client: "c", Group: "g", Item: "x"}),
		Request(GossipPushReq{From: "s", Writes: []*SignedWrite{w}}),
		Request(GossipPullReq{From: "s", After: 7}),
		Response(Ack{}),
		Response(MetaResp{Has: true, Stamp: w.Stamp}),
		Response(ValueResp{Write: w}),
		Response(LogResp{Writes: []*SignedWrite{w}}),
		Response(GossipPushResp{Applied: 3}),
		Response(GossipPullResp{Writes: []*SignedWrite{w}, Seq: 9}),
	}
	for _, msg := range msgs {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&msg); err != nil {
			t.Fatalf("encode %T: %v", msg, err)
		}
		var decoded any
		if err := gob.NewDecoder(&buf).Decode(&decoded); err != nil {
			t.Fatalf("decode %T: %v", msg, err)
		}
	}
}

func TestGobPreservesSignedWrite(t *testing.T) {
	RegisterGob()
	key, ring := testRing(t)
	w := signedWrite(t, key, true)

	var buf bytes.Buffer
	req := Request(WriteReq{Write: w})
	if err := gob.NewEncoder(&buf).Encode(&req); err != nil {
		t.Fatal(err)
	}
	var decoded Request
	if err := gob.NewDecoder(&buf).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	wr, ok := decoded.(WriteReq)
	if !ok {
		t.Fatalf("decoded %T, want WriteReq", decoded)
	}
	// The signature must survive transport byte-for-byte.
	if err := wr.Write.Verify(ring, nil); err != nil {
		t.Fatalf("verify after gob: %v", err)
	}
}

func TestConsistencyString(t *testing.T) {
	if MRC.String() != "MRC" || CC.String() != "CC" {
		t.Fatal("consistency labels wrong")
	}
	if Consistency(42).String() == "" {
		t.Fatal("unknown consistency renders empty")
	}
}

// TestIsWrongShardSurvivesFlattening pins the in-band token contract:
// transports that flatten errors to strings (the TCP caller ships remote
// errors as text) must still let clients recognize a wrong-shard
// rejection, because the typed error loses its identity at the
// connection boundary. A wrapped typed error and a fully flattened one
// must both classify; unrelated errors must not.
func TestIsWrongShardSurvivesFlattening(t *testing.T) {
	if !IsWrongShard(ErrWrongShard) {
		t.Fatal("typed error not recognized")
	}
	if !IsWrongShard(fmt.Errorf("reject %q: %w", "item", ErrWrongShard)) {
		t.Fatal("wrapped typed error not recognized")
	}
	// The TCP path: the remote error arrives as a plain string with no
	// wrapped sentinel — only the token survives.
	flattened := fmt.Errorf("call g01-s00: %s", ErrWrongShard.Error())
	if errors.Is(flattened, ErrWrongShard) {
		t.Fatal("test premise broken: flattening kept the sentinel")
	}
	if !IsWrongShard(flattened) {
		t.Fatal("flattened error not recognized via in-band token")
	}
	if IsWrongShard(nil) || IsWrongShard(errors.New("connection refused")) {
		t.Fatal("unrelated errors misclassified as wrong-shard")
	}
}
