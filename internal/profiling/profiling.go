// Package profiling wires the standard -cpuprofile/-memprofile flag
// behaviour shared by cmd/securestored and cmd/benchtab: a CPU profile
// covering the process's (or run's) whole lifetime, and a heap profile
// snapshotted at stop. For live processes the debug HTTP endpoint's
// /debug/pprof handlers cover ad-hoc attribution; these flags exist for
// scripted runs where the profile must land in a file next to the
// benchmark output.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling per the two paths (either may be empty to skip
// that profile) and returns a stop function. Stop ends the CPU profile
// and writes the heap profile; it is safe to call exactly once.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("close cpu profile: %w", err)
			}
		}
		if memPath != "" {
			memFile, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("create mem profile: %w", err)
			}
			defer memFile.Close()
			runtime.GC() // materialize final live-set statistics
			if err := pprof.WriteHeapProfile(memFile); err != nil {
				return fmt.Errorf("write mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
