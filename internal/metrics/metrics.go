package metrics

// metrics.go implements the protocol cost counters (see doc.go for the
// package overview); histogram.go implements the latency histograms.

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counters accumulates protocol cost metrics. The zero value is ready to use.
// A nil *Counters is also valid: all methods are no-ops, which lets hot paths
// record unconditionally.
type Counters struct {
	messagesSent  atomic.Int64
	bytesSent     atomic.Int64
	signatures    atomic.Int64
	verifications atomic.Int64
	vcacheHits    atomic.Int64
	vcacheMisses  atomic.Int64
	encryptions   atomic.Int64
	decryptions   atomic.Int64

	// Replica concurrency visibility (DESIGN.md §7.6): stripeWaits counts
	// contended stripe-lock acquisitions; walBatches/walBatchRecords count
	// write-ahead-log group commits and the records they carried, so
	// walBatchRecords/walBatches is the mean commit batch size.
	stripeWaits     atomic.Int64
	walBatches      atomic.Int64
	walBatchRecords atomic.Int64

	// Admission batching visibility (DESIGN.md §7.11): verifyBatches
	// counts batched Ed25519 verification calls, verifyBatched the
	// signatures they covered (so verifyBatched/verifyBatches is the mean
	// verify batch size); verifyBatchSizes keeps the distribution
	// (securestore_verify_batch_size). writevCalls/writevFrames do the
	// same for the transport's coalesced vectored writes
	// (securestore_writev_frames_per_call).
	verifyBatches    atomic.Int64
	verifyBatched    atomic.Int64
	verifyBatchSizes SizeHistogram
	writevCalls      atomic.Int64
	writevFrames     atomic.Int64
	writevFrameSizes SizeHistogram

	// custom maps counter names to *atomic.Int64. A lock-free map (rather
	// than a mutex-guarded plain map) means Snapshot never contends with —
	// or deadlocks against — AddCustom calls made from hooks that run while
	// a snapshot is being taken.
	custom sync.Map

	// txBytes/rxBytes map operation labels ("write", "gossip.push", ...)
	// to *atomic.Int64 wire byte totals, recorded by the TCP transport per
	// encoded/decoded frame. They expose the codec's on-wire cost directly
	// (securestore_tx_bytes_total / securestore_rx_bytes_total on
	// /metrics), so a codec change's byte savings are observable without a
	// packet capture.
	txBytes sync.Map
	rxBytes sync.Map

	// Fragmented data-path visibility (DESIGN.md §7.12): fragEncode and
	// fragDecode time the client-side IDA coding work
	// (securestore_fragment_encode_seconds /
	// securestore_fragment_decode_seconds on /metrics); fragReadHedges
	// counts hedged fragmented reads whose straggler timer fired
	// (securestore_frag_read_hedge_total); fragReadBytesSaved estimates the
	// wire bytes the k+b read fan-out avoided versus the full-n share
	// gather it replaced (securestore_frag_read_bytes_saved_total).
	fragEncode         Histogram
	fragDecode         Histogram
	fragReadHedges     atomic.Int64
	fragReadBytesSaved atomic.Int64

	// shardOps maps shard names to *atomic.Int64 request totals
	// (securestore_shard_ops_total on /metrics): on a replica, the
	// requests its own shard served; on a routing client, the per-shard
	// fan-out. routingMismatches counts wrong-shard rejections — a
	// non-zero value means some party routed with a stale or wrong shard
	// table.
	shardOps          sync.Map
	routingMismatches atomic.Int64
}

// Snapshot is a point-in-time copy of a Counters.
type Snapshot struct {
	// MessagesSent counts protocol messages; BytesSent their payload bytes.
	MessagesSent int64 `json:"messagesSent"`
	// BytesSent is the total payload bytes of recorded messages.
	BytesSent int64 `json:"bytesSent"`
	// Signatures counts digital signature generations.
	Signatures int64 `json:"signatures"`
	// Verifications counts real digital signature verifications.
	Verifications int64 `json:"verifications"`
	// VCacheHits counts verifications avoided by the verified-signature
	// cache; VCacheMisses counts cache lookups that fell through.
	VCacheHits int64 `json:"vcacheHits"`
	// VCacheMisses counts verification-cache lookups that fell through to a
	// real verification.
	VCacheMisses int64 `json:"vcacheMisses"`
	// Encryptions and Decryptions count symmetric cipher operations.
	Encryptions int64 `json:"encryptions"`
	// Decryptions counts symmetric decryption operations.
	Decryptions int64 `json:"decryptions"`
	// StripeWaits counts contended replica stripe-lock acquisitions.
	StripeWaits int64 `json:"stripeWaits,omitempty"`
	// WALBatches counts write-ahead-log group commits (one write+flush
	// each); WALBatchRecords counts the records those commits carried.
	WALBatches int64 `json:"walBatches,omitempty"`
	// WALBatchRecords counts records flushed across all WAL group commits.
	WALBatchRecords int64 `json:"walBatchRecords,omitempty"`
	// VerifyBatches counts batched Ed25519 verification calls;
	// VerifyBatched counts the signatures those calls covered.
	VerifyBatches int64 `json:"verifyBatches,omitempty"`
	// VerifyBatched counts signatures verified via the batch equation.
	VerifyBatched int64 `json:"verifyBatched,omitempty"`
	// WritevCalls counts coalesced vectored writes issued by the
	// transport; WritevFrames counts the frames they carried.
	WritevCalls int64 `json:"writevCalls,omitempty"`
	// WritevFrames counts frames written across all vectored writes.
	WritevFrames int64 `json:"writevFrames,omitempty"`
	// FragReadHedges counts hedged fragmented reads whose straggler timer
	// fired; FragReadBytesSaved estimates the wire bytes the k+b read
	// fan-out avoided versus a full-n share gather.
	FragReadHedges int64 `json:"fragReadHedges,omitempty"`
	// FragReadBytesSaved estimates wire bytes avoided by partial fan-out.
	FragReadBytesSaved int64 `json:"fragReadBytesSaved,omitempty"`
	// ShardOps holds per-shard request totals (see Counters.AddShardOp).
	ShardOps map[string]int64 `json:"shardOps,omitempty"`
	// RoutingMismatches counts wrong-shard rejections observed.
	RoutingMismatches int64 `json:"routingMismatches,omitempty"`
	// Custom holds the named experiment-specific counters.
	Custom map[string]int64 `json:"custom,omitempty"`
	// TxBytes and RxBytes hold wire bytes sent/received per operation
	// label, as recorded by the TCP transport's frame codec.
	TxBytes map[string]int64 `json:"txBytes,omitempty"`
	// RxBytes holds wire bytes received per operation label.
	RxBytes map[string]int64 `json:"rxBytes,omitempty"`
}

// AddMessage records a protocol message of the given size in bytes.
func (c *Counters) AddMessage(bytes int) {
	if c == nil {
		return
	}
	c.messagesSent.Add(1)
	c.bytesSent.Add(int64(bytes))
}

// AddSignature records one digital signature generation.
func (c *Counters) AddSignature() {
	if c == nil {
		return
	}
	c.signatures.Add(1)
}

// AddVerification records one digital signature verification.
func (c *Counters) AddVerification() {
	if c == nil {
		return
	}
	c.verifications.Add(1)
}

// AddVerifyCacheHit records one signature verification avoided because the
// exact (data, signer, signature) triple was already verified.
func (c *Counters) AddVerifyCacheHit() {
	if c == nil {
		return
	}
	c.vcacheHits.Add(1)
}

// AddVerifyCacheMiss records one verification-cache lookup that fell
// through to a real Ed25519 verification.
func (c *Counters) AddVerifyCacheMiss() {
	if c == nil {
		return
	}
	c.vcacheMisses.Add(1)
}

// AddEncryption records one symmetric encryption operation.
func (c *Counters) AddEncryption() {
	if c == nil {
		return
	}
	c.encryptions.Add(1)
}

// AddDecryption records one symmetric decryption operation.
func (c *Counters) AddDecryption() {
	if c == nil {
		return
	}
	c.decryptions.Add(1)
}

// AddStripeWait records one contended stripe-lock acquisition on a
// replica (the acquiring request had to wait for the stripe).
func (c *Counters) AddStripeWait() {
	if c == nil {
		return
	}
	c.stripeWaits.Add(1)
}

// AddWALBatch records one write-ahead-log group commit that flushed the
// given number of records in a single write+flush.
func (c *Counters) AddWALBatch(records int) {
	if c == nil {
		return
	}
	c.walBatches.Add(1)
	c.walBatchRecords.Add(int64(records))
}

// AddVerifyBatch records one admission micro-batch of the given size
// (securestore_verify_batch_size); sizes of 1 mean the batcher found no
// company and fell through to the direct check.
func (c *Counters) AddVerifyBatch(sigs int) {
	if c == nil {
		return
	}
	c.verifyBatches.Add(1)
	c.verifyBatchSizes.Observe(sigs)
}

// AddVerifyBatched records sigs signatures verified together via the
// Ed25519 batch equation (securestore_verify_batched_total).
func (c *Counters) AddVerifyBatched(sigs int) {
	if c == nil {
		return
	}
	c.verifyBatched.Add(int64(sigs))
}

// AddWritevCall records one coalesced vectored write that carried the
// given number of frames.
func (c *Counters) AddWritevCall(frames int) {
	if c == nil {
		return
	}
	c.writevCalls.Add(1)
	c.writevFrames.Add(int64(frames))
	c.writevFrameSizes.Observe(frames)
}

// ObserveFragEncode records the duration of one IDA dispersal (Split plus
// cross-checksum computation) on the fragmented write path.
func (c *Counters) ObserveFragEncode(d time.Duration) {
	if c == nil {
		return
	}
	c.fragEncode.Observe(d)
}

// ObserveFragDecode records the duration of one IDA reconstruction
// (Reconstruct plus the cross-checksum consistency re-check) on the
// fragmented read path.
func (c *Counters) ObserveFragDecode(d time.Duration) {
	if c == nil {
		return
	}
	c.fragDecode.Observe(d)
}

// FragEncodeHist exposes the fragment-encode latency histogram (nil when
// the receiver is nil).
func (c *Counters) FragEncodeHist() *Histogram {
	if c == nil {
		return nil
	}
	return &c.fragEncode
}

// FragDecodeHist exposes the fragment-decode latency histogram (nil when
// the receiver is nil).
func (c *Counters) FragDecodeHist() *Histogram {
	if c == nil {
		return nil
	}
	return &c.fragDecode
}

// AddFragReadHedge records one hedged fragmented read: the straggler
// timer fired before the initial k+b wave completed the read.
func (c *Counters) AddFragReadHedge() {
	if c == nil {
		return
	}
	c.fragReadHedges.Add(1)
}

// FragReadHedges returns the number of hedge-timer fires recorded.
func (c *Counters) FragReadHedges() int64 {
	if c == nil {
		return 0
	}
	return c.fragReadHedges.Load()
}

// AddFragReadBytesSaved records an estimate of wire bytes a fragmented
// read avoided by asking k+b servers for shares instead of all n.
func (c *Counters) AddFragReadBytesSaved(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.fragReadBytesSaved.Add(n)
}

// FragReadBytesSaved returns the estimated wire bytes avoided by partial
// read fan-out.
func (c *Counters) FragReadBytesSaved() int64 {
	if c == nil {
		return 0
	}
	return c.fragReadBytesSaved.Load()
}

// VerifyBatches returns the number of batched verification calls.
func (c *Counters) VerifyBatches() int64 {
	if c == nil {
		return 0
	}
	return c.verifyBatches.Load()
}

// VerifyBatched returns the number of signatures verified in batches.
func (c *Counters) VerifyBatched() int64 {
	if c == nil {
		return 0
	}
	return c.verifyBatched.Load()
}

// VerifyBatchSizes exposes the verify-batch-size histogram (nil when the
// receiver is nil).
func (c *Counters) VerifyBatchSizes() *SizeHistogram {
	if c == nil {
		return nil
	}
	return &c.verifyBatchSizes
}

// WritevCalls returns the number of coalesced vectored writes recorded.
func (c *Counters) WritevCalls() int64 {
	if c == nil {
		return 0
	}
	return c.writevCalls.Load()
}

// WritevFrames returns the number of frames carried by vectored writes.
func (c *Counters) WritevFrames() int64 {
	if c == nil {
		return 0
	}
	return c.writevFrames.Load()
}

// WritevFrameSizes exposes the frames-per-writev histogram (nil when the
// receiver is nil).
func (c *Counters) WritevFrameSizes() *SizeHistogram {
	if c == nil {
		return nil
	}
	return &c.writevFrameSizes
}

// StripeWaits returns the number of contended stripe-lock acquisitions.
func (c *Counters) StripeWaits() int64 {
	if c == nil {
		return 0
	}
	return c.stripeWaits.Load()
}

// WALBatches returns the number of WAL group commits recorded.
func (c *Counters) WALBatches() int64 {
	if c == nil {
		return 0
	}
	return c.walBatches.Load()
}

// WALBatchRecords returns the number of records flushed across all WAL
// group commits.
func (c *Counters) WALBatchRecords() int64 {
	if c == nil {
		return 0
	}
	return c.walBatchRecords.Load()
}

// AddCustom increments a named counter by delta. Named counters are used for
// experiment-specific accounting (e.g. "read.retries").
func (c *Counters) AddCustom(name string, delta int64) {
	if c == nil {
		return
	}
	v, ok := c.custom.Load(name)
	if !ok {
		v, _ = c.custom.LoadOrStore(name, new(atomic.Int64))
	}
	v.(*atomic.Int64).Add(delta)
}

// addLabeled increments a labeled counter in m.
func addLabeled(m *sync.Map, label string, delta int64) {
	v, ok := m.Load(label)
	if !ok {
		v, _ = m.LoadOrStore(label, new(atomic.Int64))
	}
	v.(*atomic.Int64).Add(delta)
}

// snapshotLabeled copies a labeled counter map (nil when empty).
func snapshotLabeled(m *sync.Map) map[string]int64 {
	var out map[string]int64
	m.Range(func(k, v any) bool {
		if out == nil {
			out = make(map[string]int64)
		}
		out[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	return out
}

// sumLabeled totals a labeled counter map.
func sumLabeled(m *sync.Map) int64 {
	var total int64
	m.Range(func(_, v any) bool {
		total += v.(*atomic.Int64).Load()
		return true
	})
	return total
}

// AddShardOp records one request attributed to the named shard.
func (c *Counters) AddShardOp(shard string) {
	if c == nil {
		return
	}
	addLabeled(&c.shardOps, shard, 1)
}

// AddRoutingMismatch records one wrong-shard rejection.
func (c *Counters) AddRoutingMismatch() {
	if c == nil {
		return
	}
	c.routingMismatches.Add(1)
}

// ShardOps returns the request total recorded for the named shard.
func (c *Counters) ShardOps(shard string) int64 {
	if c == nil {
		return 0
	}
	v, ok := c.shardOps.Load(shard)
	if !ok {
		return 0
	}
	return v.(*atomic.Int64).Load()
}

// RoutingMismatches returns the number of wrong-shard rejections recorded.
func (c *Counters) RoutingMismatches() int64 {
	if c == nil {
		return 0
	}
	return c.routingMismatches.Load()
}

// AddTxBytes records n wire bytes sent for the labeled operation.
func (c *Counters) AddTxBytes(op string, n int) {
	if c == nil {
		return
	}
	addLabeled(&c.txBytes, op, int64(n))
}

// AddRxBytes records n wire bytes received for the labeled operation.
func (c *Counters) AddRxBytes(op string, n int) {
	if c == nil {
		return
	}
	addLabeled(&c.rxBytes, op, int64(n))
}

// TxBytesTotal returns total wire bytes sent across all operations.
func (c *Counters) TxBytesTotal() int64 {
	if c == nil {
		return 0
	}
	return sumLabeled(&c.txBytes)
}

// RxBytesTotal returns total wire bytes received across all operations.
func (c *Counters) RxBytesTotal() int64 {
	if c == nil {
		return 0
	}
	return sumLabeled(&c.rxBytes)
}

// Custom returns the value of a named counter.
func (c *Counters) Custom(name string) int64 {
	if c == nil {
		return 0
	}
	v, ok := c.custom.Load(name)
	if !ok {
		return 0
	}
	return v.(*atomic.Int64).Load()
}

// MessagesSent returns the number of protocol messages recorded.
func (c *Counters) MessagesSent() int64 {
	if c == nil {
		return 0
	}
	return c.messagesSent.Load()
}

// Signatures returns the number of signature generations recorded.
func (c *Counters) Signatures() int64 {
	if c == nil {
		return 0
	}
	return c.signatures.Load()
}

// Verifications returns the number of signature verifications recorded.
func (c *Counters) Verifications() int64 {
	if c == nil {
		return 0
	}
	return c.verifications.Load()
}

// VerifyCacheHits returns the number of cache-satisfied verifications.
func (c *Counters) VerifyCacheHits() int64 {
	if c == nil {
		return 0
	}
	return c.vcacheHits.Load()
}

// VerifyCacheMisses returns the number of verification-cache misses.
func (c *Counters) VerifyCacheMisses() int64 {
	if c == nil {
		return 0
	}
	return c.vcacheMisses.Load()
}

// Snapshot copies the current counter values. It takes no locks: custom
// counters live in a lock-free map, so a snapshot can safely be taken
// from any context — including hooks that are themselves inside an
// AddCustom caller.
func (c *Counters) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	custom := make(map[string]int64)
	c.custom.Range(func(k, v any) bool {
		custom[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	return Snapshot{
		MessagesSent:       c.messagesSent.Load(),
		BytesSent:          c.bytesSent.Load(),
		Signatures:         c.signatures.Load(),
		Verifications:      c.verifications.Load(),
		VCacheHits:         c.vcacheHits.Load(),
		VCacheMisses:       c.vcacheMisses.Load(),
		Encryptions:        c.encryptions.Load(),
		Decryptions:        c.decryptions.Load(),
		StripeWaits:        c.stripeWaits.Load(),
		WALBatches:         c.walBatches.Load(),
		WALBatchRecords:    c.walBatchRecords.Load(),
		VerifyBatches:      c.verifyBatches.Load(),
		VerifyBatched:      c.verifyBatched.Load(),
		WritevCalls:        c.writevCalls.Load(),
		WritevFrames:       c.writevFrames.Load(),
		FragReadHedges:     c.fragReadHedges.Load(),
		FragReadBytesSaved: c.fragReadBytesSaved.Load(),
		Custom:             custom,
		TxBytes:            snapshotLabeled(&c.txBytes),
		RxBytes:            snapshotLabeled(&c.rxBytes),
		ShardOps:           snapshotLabeled(&c.shardOps),
		RoutingMismatches:  c.routingMismatches.Load(),
	}
}

// Reset zeroes every counter.
func (c *Counters) Reset() {
	if c == nil {
		return
	}
	c.messagesSent.Store(0)
	c.bytesSent.Store(0)
	c.signatures.Store(0)
	c.verifications.Store(0)
	c.vcacheHits.Store(0)
	c.vcacheMisses.Store(0)
	c.encryptions.Store(0)
	c.decryptions.Store(0)
	c.stripeWaits.Store(0)
	c.walBatches.Store(0)
	c.walBatchRecords.Store(0)
	c.verifyBatches.Store(0)
	c.verifyBatched.Store(0)
	c.verifyBatchSizes.Reset()
	c.writevCalls.Store(0)
	c.writevFrames.Store(0)
	c.writevFrameSizes.Reset()
	c.fragEncode.Reset()
	c.fragDecode.Reset()
	c.fragReadHedges.Store(0)
	c.fragReadBytesSaved.Store(0)
	c.custom.Range(func(k, _ any) bool {
		c.custom.Delete(k)
		return true
	})
	c.txBytes.Range(func(k, _ any) bool {
		c.txBytes.Delete(k)
		return true
	})
	c.rxBytes.Range(func(k, _ any) bool {
		c.rxBytes.Delete(k)
		return true
	})
	c.shardOps.Range(func(k, _ any) bool {
		c.shardOps.Delete(k)
		return true
	})
	c.routingMismatches.Store(0)
}

// Delta returns this snapshot minus prev, field by field: the cost of
// whatever ran between the two snapshots. It replaces the Reset-then-read
// pattern for callers that cannot reset a shared Counters (resetting
// clobbers concurrent accounting) and the hand-diffing benchtab used to
// do.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	return Diff(prev, s)
}

// diffLabeled subtracts before from after key-wise (nil when after is).
func diffLabeled(before, after map[string]int64) map[string]int64 {
	if after == nil {
		return nil
	}
	out := make(map[string]int64, len(after))
	for k, v := range after {
		out[k] = v - before[k]
	}
	return out
}

// Diff returns a snapshot containing after-minus-before for every field.
func Diff(before, after Snapshot) Snapshot {
	custom := make(map[string]int64)
	for k, v := range after.Custom {
		custom[k] = v - before.Custom[k]
	}
	return Snapshot{
		MessagesSent:       after.MessagesSent - before.MessagesSent,
		BytesSent:          after.BytesSent - before.BytesSent,
		Signatures:         after.Signatures - before.Signatures,
		Verifications:      after.Verifications - before.Verifications,
		VCacheHits:         after.VCacheHits - before.VCacheHits,
		VCacheMisses:       after.VCacheMisses - before.VCacheMisses,
		Encryptions:        after.Encryptions - before.Encryptions,
		Decryptions:        after.Decryptions - before.Decryptions,
		StripeWaits:        after.StripeWaits - before.StripeWaits,
		WALBatches:         after.WALBatches - before.WALBatches,
		WALBatchRecords:    after.WALBatchRecords - before.WALBatchRecords,
		VerifyBatches:      after.VerifyBatches - before.VerifyBatches,
		VerifyBatched:      after.VerifyBatched - before.VerifyBatched,
		WritevCalls:        after.WritevCalls - before.WritevCalls,
		WritevFrames:       after.WritevFrames - before.WritevFrames,
		FragReadHedges:     after.FragReadHedges - before.FragReadHedges,
		FragReadBytesSaved: after.FragReadBytesSaved - before.FragReadBytesSaved,
		Custom:             custom,
		TxBytes:            diffLabeled(before.TxBytes, after.TxBytes),
		RxBytes:            diffLabeled(before.RxBytes, after.RxBytes),
		ShardOps:           diffLabeled(before.ShardOps, after.ShardOps),
		RoutingMismatches:  after.RoutingMismatches - before.RoutingMismatches,
	}
}

// String renders the snapshot compactly for logs and experiment tables.
func (s Snapshot) String() string {
	out := fmt.Sprintf("msgs=%d bytes=%d sig=%d verify=%d enc=%d dec=%d",
		s.MessagesSent, s.BytesSent, s.Signatures, s.Verifications, s.Encryptions, s.Decryptions)
	if s.VCacheHits != 0 || s.VCacheMisses != 0 {
		out += fmt.Sprintf(" vcache=%d/%d", s.VCacheHits, s.VCacheHits+s.VCacheMisses)
	}
	if len(s.Custom) > 0 {
		keys := make([]string, 0, len(s.Custom))
		for k := range s.Custom {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			out += fmt.Sprintf(" %s=%d", k, s.Custom[k])
		}
	}
	return out
}

// LatencyRecorder accumulates operation latencies and reports simple order
// statistics. It is safe for concurrent use.
type LatencyRecorder struct {
	mu      sync.Mutex
	samples []time.Duration
}

// Record adds one latency sample.
func (l *LatencyRecorder) Record(d time.Duration) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.samples = append(l.samples, d)
}

// Count returns the number of recorded samples.
func (l *LatencyRecorder) Count() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.samples)
}

// Mean returns the arithmetic mean of the samples, or zero when empty.
func (l *LatencyRecorder) Mean() time.Duration {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range l.samples {
		sum += s
	}
	return sum / time.Duration(len(l.samples))
}

// Percentile returns the p-th percentile (0 < p <= 100) of the samples.
func (l *LatencyRecorder) Percentile(p float64) time.Duration {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(l.samples))
	copy(sorted, l.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p/100*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Reset discards all samples.
func (l *LatencyRecorder) Reset() {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.samples = nil
}
