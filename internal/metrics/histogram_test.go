package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestBucketBoundsShape(t *testing.T) {
	bounds := BucketBounds()
	if len(bounds) != 28 {
		t.Fatalf("len(bounds) = %d, want 28", len(bounds))
	}
	if bounds[0] != time.Microsecond {
		t.Fatalf("bounds[0] = %v, want 1µs", bounds[0])
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] != 2*bounds[i-1] {
			t.Fatalf("bounds[%d] = %v, want double of %v", i, bounds[i], bounds[i-1])
		}
	}
	// Returned slice is a copy: mutating it must not corrupt the package.
	bounds[0] = time.Hour
	if BucketBounds()[0] != time.Microsecond {
		t.Fatal("BucketBounds returned the internal slice")
	}
}

func TestObserveBucketBoundaries(t *testing.T) {
	bounds := BucketBounds()
	h := &Histogram{}
	// A sample exactly on a bound lands in that bucket (bounds inclusive);
	// one nanosecond above lands in the next.
	h.Observe(bounds[3])                           // 8µs -> bucket 3
	h.Observe(bounds[3] + 1)                       // -> bucket 4
	h.Observe(0)                                   // -> bucket 0
	h.Observe(-5)                                  // negative clamps to zero -> bucket 0
	h.Observe(bounds[len(bounds)-1] + time.Second) // -> overflow bucket
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d", s.Count)
	}
	want := map[int]uint64{0: 2, 3: 1, 4: 1, len(bounds): 1}
	for i, c := range s.Counts {
		if c != want[i] {
			t.Fatalf("bucket %d count = %d, want %d", i, c, want[i])
		}
	}
	if s.Max != bounds[len(bounds)-1]+time.Second {
		t.Fatalf("max = %v", s.Max)
	}
	if s.Sum != bounds[3]+(bounds[3]+1)+bounds[len(bounds)-1]+time.Second {
		t.Fatalf("sum = %v", s.Sum)
	}
}

func TestNilHistogram(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second) // must not panic
	s := h.Snapshot()
	if s.Count != 0 || s.P99 != 0 || s.Mean() != 0 {
		t.Fatalf("nil histogram snapshot = %+v", s)
	}
	var set *HistogramSet
	set.Observe("x", time.Second)
	if set.Get("x") != nil || set.Names() != nil || set.SnapshotAll() != nil {
		t.Fatal("nil HistogramSet must no-op")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	// 100 samples uniformly at 1ms..100ms. 1ms is bucket bound index 9
	// (1024µs ≈ 1.05ms): samples spread over buckets ~9..16.
	h := &Histogram{}
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	// With doubling buckets the interpolation error is bounded by the width
	// of the bucket holding the rank, i.e. at most 2x. Check the estimates
	// are in the right ballpark and ordered.
	checks := []struct {
		p     float64
		exact time.Duration
	}{
		{50, 50 * time.Millisecond},
		{95, 95 * time.Millisecond},
		{99, 99 * time.Millisecond},
	}
	for _, c := range checks {
		got := s.Percentile(c.p)
		if got < c.exact/2 || got > 2*c.exact {
			t.Fatalf("p%.0f = %v, exact %v: outside the 2x bucket-error bound", c.p, got, c.exact)
		}
	}
	if !(s.P50 <= s.P95 && s.P95 <= s.P99) {
		t.Fatalf("percentiles not monotone: p50=%v p95=%v p99=%v", s.P50, s.P95, s.P99)
	}
	if s.P99 > s.Max {
		t.Fatalf("p99 %v exceeds max %v", s.P99, s.Max)
	}
}

func TestPercentileSingleBucket(t *testing.T) {
	// All samples identical at 3ms: every estimate must stay within the
	// holding bucket's error bound and never exceed Max; p100 interpolates
	// to the bucket's upper bound and clamps exactly to Max.
	h := &Histogram{}
	for i := 0; i < 10; i++ {
		h.Observe(3 * time.Millisecond)
	}
	s := h.Snapshot()
	for _, p := range []float64{1, 50, 99, 100} {
		got := s.Percentile(p)
		if got > 3*time.Millisecond || got < 3*time.Millisecond/2 {
			t.Fatalf("p%v = %v, outside [1.5ms, 3ms] for identical 3ms samples", p, got)
		}
	}
	if got := s.Percentile(100); got != 3*time.Millisecond {
		t.Fatalf("p100 = %v, want exact max 3ms", got)
	}
	if s.Mean() != 3*time.Millisecond {
		t.Fatalf("mean = %v", s.Mean())
	}
}

func TestPercentileOverflowBucket(t *testing.T) {
	h := &Histogram{}
	top := BucketBounds()[len(BucketBounds())-1]
	h.Observe(top + time.Minute)
	s := h.Snapshot()
	if got := s.Percentile(99); got != top+time.Minute {
		t.Fatalf("overflow p99 = %v, want clamp to max %v", got, top+time.Minute)
	}
}

func TestPercentileEmptyAndBounds(t *testing.T) {
	var s HistSnapshot
	if s.Percentile(50) != 0 {
		t.Fatal("empty snapshot percentile must be zero")
	}
	h := &Histogram{}
	h.Observe(time.Millisecond)
	snap := h.Snapshot()
	// Out-of-range p clamps rather than panicking.
	if snap.Percentile(-5) == 0 || snap.Percentile(200) == 0 {
		t.Fatal("clamped percentiles of a non-empty snapshot must be non-zero")
	}
}

func TestHistogramSet(t *testing.T) {
	set := &HistogramSet{}
	set.Observe("data.read", time.Millisecond)
	set.Observe("data.read", 2*time.Millisecond)
	set.Observe("rpc", time.Microsecond)
	names := set.Names()
	if len(names) != 2 || names[0] != "data.read" || names[1] != "rpc" {
		t.Fatalf("names = %v", names)
	}
	all := set.SnapshotAll()
	if all["data.read"].Count != 2 || all["rpc"].Count != 1 {
		t.Fatalf("snapshots = %+v", all)
	}
	if set.Get("missing") != nil {
		t.Fatal("Get of unknown name must be nil")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := &Histogram{}
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(time.Duration(w+1) * time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*each {
		t.Fatalf("count = %d, want %d", s.Count, workers*each)
	}
	if s.Max != time.Duration(workers)*time.Millisecond {
		t.Fatalf("max = %v", s.Max)
	}
}
