package metrics

// sizehist.go implements a tiny lock-free histogram over small integer
// sizes (batch sizes, frames per writev): power-of-two buckets, an exact
// sum and count. It backs the securestore_verify_batch_size and
// securestore_writev_frames_per_call histograms on /metrics, where the
// interesting question is "is the hot path actually batching, and how
// hard?" — the shape (all mass at 1 vs. spread across 8..64) answers it.

import "sync/atomic"

// sizeBucketCount fixes the bucket layout: bucket i counts observations
// n with 2^(i-1) < n <= 2^i (bucket 0 counts n <= 1), and anything past
// the last bound lands in the implicit +Inf bucket rendered from Count.
const sizeBucketCount = 12 // upper bounds 1, 2, 4, ..., 2048

// SizeHistogram counts integer observations in power-of-two buckets. The
// zero value is ready to use; a nil receiver is a no-op, matching the
// Counters convention.
type SizeHistogram struct {
	buckets [sizeBucketCount]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one observation of size n (negative observations are
// clamped to zero).
func (h *SizeHistogram) Observe(n int) {
	if h == nil {
		return
	}
	if n < 0 {
		n = 0
	}
	idx := 0
	for bound := 1; idx < sizeBucketCount-1 && n > bound; idx++ {
		bound <<= 1
	}
	if n > 1<<(sizeBucketCount-1) {
		idx = sizeBucketCount // +Inf only
	}
	if idx < sizeBucketCount {
		h.buckets[idx].Add(1)
	}
	h.count.Add(1)
	h.sum.Add(int64(n))
}

// SizeBucket is one cumulative histogram bucket: the count of
// observations with value <= Le.
type SizeBucket struct {
	Le    int64
	Count int64
}

// Buckets returns the cumulative bucket counts (Prometheus `le`
// semantics), excluding the implicit +Inf bucket — render that from
// Count. Nil receivers return nil.
func (h *SizeHistogram) Buckets() []SizeBucket {
	if h == nil {
		return nil
	}
	out := make([]SizeBucket, sizeBucketCount)
	var cum int64
	for i := range out {
		cum += h.buckets[i].Load()
		out[i] = SizeBucket{Le: 1 << i, Count: cum}
	}
	return out
}

// Count returns the total number of observations.
func (h *SizeHistogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed sizes.
func (h *SizeHistogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Reset zeroes the histogram.
func (h *SizeHistogram) Reset() {
	if h == nil {
		return
	}
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}
