// Package metrics provides the numeric half of the store's
// instrumentation: cost counters and latency histograms. The paper's
// performance analysis (Section 6) reasons about messages, signatures,
// verifications and encryptions per operation — Counters accounts for
// exactly those, while HistogramSet records where the wall-clock time
// goes, with interpolated p50/p95/p99 percentiles in every snapshot.
//
// Counters (metrics.go) are independent atomics plus a lock-free map of
// named custom counters; Snapshot is safe to take from any context,
// including hooks running inside an AddCustom caller, and
// Snapshot.Delta(prev) yields the cost of one measured window.
// Histograms (histogram.go) use fixed power-of-two buckets from 1 µs to
// ~134 s, so recording is one bit-length computation and an atomic
// increment — no allocation, no lock.
//
// Everything follows the repo's nil-safe convention: a nil *Counters,
// *Histogram or *HistogramSet no-ops, so hot paths record
// unconditionally. The enabled cost of the full instrumentation stack is
// measured by experiment O1 in EXPERIMENTS.md; the exported series are
// documented for operators in OPERATIONS.md.
package metrics
