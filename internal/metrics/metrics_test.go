package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCountersBasics(t *testing.T) {
	var c Counters
	c.AddMessage(100)
	c.AddMessage(50)
	c.AddSignature()
	c.AddVerification()
	c.AddVerification()
	c.AddEncryption()
	c.AddDecryption()
	c.AddCustom("retries", 3)

	snap := c.Snapshot()
	if snap.MessagesSent != 2 || snap.BytesSent != 150 {
		t.Fatalf("messages/bytes = %d/%d", snap.MessagesSent, snap.BytesSent)
	}
	if snap.Signatures != 1 || snap.Verifications != 2 {
		t.Fatalf("sig/verify = %d/%d", snap.Signatures, snap.Verifications)
	}
	if snap.Encryptions != 1 || snap.Decryptions != 1 {
		t.Fatalf("enc/dec = %d/%d", snap.Encryptions, snap.Decryptions)
	}
	if snap.Custom["retries"] != 3 || c.Custom("retries") != 3 {
		t.Fatalf("custom = %v", snap.Custom)
	}
}

func TestNilCountersNoops(t *testing.T) {
	var c *Counters
	c.AddMessage(1)
	c.AddSignature()
	c.AddVerification()
	c.AddEncryption()
	c.AddDecryption()
	c.AddCustom("x", 1)
	c.Reset()
	if c.MessagesSent() != 0 || c.Signatures() != 0 || c.Verifications() != 0 || c.Custom("x") != 0 {
		t.Fatal("nil counters returned non-zero")
	}
	if s := c.Snapshot(); s.MessagesSent != 0 {
		t.Fatal("nil snapshot non-zero")
	}
}

func TestReset(t *testing.T) {
	var c Counters
	c.AddMessage(1)
	c.AddCustom("x", 5)
	c.Reset()
	snap := c.Snapshot()
	if snap.MessagesSent != 0 || len(snap.Custom) != 0 {
		t.Fatalf("after reset: %+v", snap)
	}
}

func TestDiff(t *testing.T) {
	var c Counters
	c.AddMessage(1)
	before := c.Snapshot()
	c.AddMessage(1)
	c.AddSignature()
	c.AddCustom("x", 2)
	after := c.Snapshot()

	d := Diff(before, after)
	if d.MessagesSent != 1 || d.Signatures != 1 || d.Custom["x"] != 2 {
		t.Fatalf("diff = %+v", d)
	}
}

func TestDelta(t *testing.T) {
	var c Counters
	c.AddMessage(4)
	c.AddCustom("read.retries", 1)
	before := c.Snapshot()
	c.AddMessage(2)
	c.AddVerification()
	c.AddCustom("read.retries", 2)
	after := c.Snapshot()

	d := after.Delta(before)
	if d.MessagesSent != 1 || d.BytesSent != 2 || d.Verifications != 1 {
		t.Fatalf("delta = %+v", d)
	}
	if d.Custom["read.retries"] != 2 {
		t.Fatalf("delta custom = %v", d.Custom)
	}
}

// TestSnapshotDuringAddCustom is the regression test for the old
// mutex-guarded custom map: taking a snapshot while other goroutines hammer
// AddCustom must neither block nor race (run with -race).
func TestSnapshotDuringAddCustom(t *testing.T) {
	var c Counters
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := strings.Repeat("k", i+1)
			c.AddCustom(name, 1) // ensure every counter exists even on a slow scheduler
			for {
				select {
				case <-stop:
					return
				default:
					c.AddCustom(name, 1)
				}
			}
		}(i)
	}
	for i := 0; i < 200; i++ {
		snap := c.Snapshot()
		for name, v := range snap.Custom {
			if v < 0 {
				t.Fatalf("counter %q went negative: %d", name, v)
			}
		}
	}
	close(stop)
	wg.Wait()
	final := c.Snapshot()
	if len(final.Custom) != 4 {
		t.Fatalf("custom counters = %v", final.Custom)
	}
}

func TestSnapshotString(t *testing.T) {
	var c Counters
	c.AddMessage(10)
	c.AddCustom("zz", 1)
	c.AddCustom("aa", 2)
	s := c.Snapshot().String()
	if !strings.Contains(s, "msgs=1") || !strings.Contains(s, "aa=2") {
		t.Fatalf("string = %q", s)
	}
	// Custom keys sorted.
	if strings.Index(s, "aa=") > strings.Index(s, "zz=") {
		t.Fatalf("custom keys unsorted: %q", s)
	}
}

func TestCountersConcurrent(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.AddMessage(1)
				c.AddCustom("k", 1)
			}
		}()
	}
	wg.Wait()
	if c.MessagesSent() != 8000 || c.Custom("k") != 8000 {
		t.Fatalf("concurrent totals = %d/%d", c.MessagesSent(), c.Custom("k"))
	}
}

func TestLatencyRecorder(t *testing.T) {
	var l LatencyRecorder
	if l.Mean() != 0 || l.Percentile(50) != 0 || l.Count() != 0 {
		t.Fatal("empty recorder non-zero")
	}
	for i := 1; i <= 100; i++ {
		l.Record(time.Duration(i) * time.Millisecond)
	}
	if l.Count() != 100 {
		t.Fatalf("count = %d", l.Count())
	}
	if mean := l.Mean(); mean != 50500*time.Microsecond {
		t.Fatalf("mean = %v, want 50.5ms", mean)
	}
	if p50 := l.Percentile(50); p50 != 50*time.Millisecond {
		t.Fatalf("p50 = %v", p50)
	}
	if p99 := l.Percentile(99); p99 != 99*time.Millisecond {
		t.Fatalf("p99 = %v", p99)
	}
	if p100 := l.Percentile(100); p100 != 100*time.Millisecond {
		t.Fatalf("p100 = %v", p100)
	}
	l.Reset()
	if l.Count() != 0 {
		t.Fatal("reset did not clear samples")
	}
}

func TestLatencyRecorderNil(t *testing.T) {
	var l *LatencyRecorder
	l.Record(time.Second)
	if l.Mean() != 0 || l.Count() != 0 || l.Percentile(50) != 0 {
		t.Fatal("nil recorder returned non-zero")
	}
	l.Reset()
}
