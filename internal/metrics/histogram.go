package metrics

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// histogram.go implements fixed-bucket latency histograms: the aggregation
// layer between raw per-operation spans (internal/trace) and the
// percentile columns reported by benchtab and the /metrics endpoint.
// Buckets are fixed at construction (no per-sample allocation, no
// resizing), so recording is a single atomic increment and histograms are
// cheap enough to leave enabled on the hot path — experiment O1 in
// EXPERIMENTS.md quantifies the cost.

// bucketBounds are the upper bounds (inclusive) of the histogram buckets:
// 28 exponentially doubling bounds from 1µs to ~134s. Latencies in this
// system span from sub-millisecond in-memory quorum calls to multi-second
// retry loops, so a doubling scheme keeps relative error under 50% at
// every scale while the bucket count stays constant. One final overflow
// bucket catches anything slower.
const numBounds = 28

var bucketBounds = func() []time.Duration {
	bounds := make([]time.Duration, numBounds)
	d := time.Microsecond
	for i := range bounds {
		bounds[i] = d
		d *= 2
	}
	return bounds
}()

// BucketBounds returns a copy of the fixed upper bucket bounds shared by
// every Histogram. Exposed so the /metrics exporter and tests agree with
// the recorder about boundaries.
func BucketBounds() []time.Duration {
	return append([]time.Duration(nil), bucketBounds...)
}

// Histogram accumulates duration samples into fixed exponential buckets.
// The zero value is ready to use; a nil *Histogram no-ops, so hot paths
// record unconditionally. All methods are safe for concurrent use.
type Histogram struct {
	// counts[i] tallies samples <= bucketBounds[i]; the final slot is the
	// overflow bucket.
	counts [numBounds + 1]atomic.Uint64
	sum    atomic.Int64 // nanoseconds
	max    atomic.Int64 // nanoseconds
}

// Observe records one duration sample. Negative samples count as zero.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	// The bounds double from 1µs, so the bucket index is the bit length of
	// the duration in (rounded-up) microseconds — branch-free where a
	// binary search would cost several predicted branches per sample.
	idx := 0
	if d > time.Microsecond {
		idx = bits.Len64(uint64((d - 1) / time.Microsecond))
		if idx > numBounds {
			idx = numBounds // overflow bucket
		}
	}
	h.counts[idx].Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Reset zeroes every bucket, the sum and the max.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.sum.Store(0)
	h.max.Store(0)
}

// Snapshot copies the histogram state and precomputes the headline
// percentiles. The copy is not atomic across buckets — concurrent
// Observes may straddle it — but every count read is itself consistent,
// which is all a monitoring read needs.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = time.Duration(h.sum.Load())
	s.Max = time.Duration(h.max.Load())
	s.P50 = s.Percentile(50)
	s.P95 = s.Percentile(95)
	s.P99 = s.Percentile(99)
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram.
type HistSnapshot struct {
	// Count is the total number of samples recorded.
	Count uint64 `json:"count"`
	// Sum is the total of all samples.
	Sum time.Duration `json:"sumNanos"`
	// Max is the largest sample seen.
	Max time.Duration `json:"maxNanos"`
	// Counts holds the per-bucket tallies, parallel to BucketBounds plus a
	// final overflow bucket.
	Counts []uint64 `json:"counts,omitempty"`
	// P50, P95 and P99 are the interpolated percentiles at snapshot time.
	P50 time.Duration `json:"p50Nanos"`
	P95 time.Duration `json:"p95Nanos"`
	P99 time.Duration `json:"p99Nanos"`
}

// Mean returns the arithmetic mean of the samples, or zero when empty.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Percentile estimates the p-th percentile (0 < p <= 100) by linear
// interpolation within the bucket holding the target rank: the samples in
// a bucket are assumed uniformly spread between its bounds. The overflow
// bucket interpolates toward Max, and every estimate is clamped to Max,
// so the error is bounded by the bucket width (at most 2x, by the
// doubling scheme). Returns zero when the snapshot is empty.
func (s HistSnapshot) Percentile(p float64) time.Duration {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	target := p / 100 * float64(s.Count)
	if target < 1 {
		target = 1
	}
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < target {
			continue
		}
		var lower, upper time.Duration
		if i > 0 {
			lower = bucketBounds[i-1]
		}
		if i < len(bucketBounds) {
			upper = bucketBounds[i]
		} else {
			upper = s.Max // overflow bucket: interpolate toward the max seen
		}
		if upper < lower {
			upper = lower
		}
		frac := (target - prev) / float64(c)
		est := lower + time.Duration(frac*float64(upper-lower))
		if s.Max > 0 && est > s.Max {
			est = s.Max
		}
		return est
	}
	return s.Max
}

// HistogramSet is a concurrent map of named histograms — one per traced
// operation kind (e.g. "data.read", "server.write", "gossip.round"). The
// zero value is ready to use and a nil *HistogramSet no-ops, mirroring
// Counters.
type HistogramSet struct {
	m sync.Map // string -> *Histogram
}

// Observe records one sample under the named histogram, creating it on
// first use.
func (s *HistogramSet) Observe(name string, d time.Duration) {
	if s == nil {
		return
	}
	h, ok := s.m.Load(name)
	if !ok {
		h, _ = s.m.LoadOrStore(name, &Histogram{})
	}
	h.(*Histogram).Observe(d)
}

// Get returns the named histogram, or nil when nothing was recorded under
// that name yet.
func (s *HistogramSet) Get(name string) *Histogram {
	if s == nil {
		return nil
	}
	h, ok := s.m.Load(name)
	if !ok {
		return nil
	}
	return h.(*Histogram)
}

// Names returns the sorted names of all histograms in the set.
func (s *HistogramSet) Names() []string {
	if s == nil {
		return nil
	}
	var names []string
	s.m.Range(func(k, _ any) bool {
		names = append(names, k.(string))
		return true
	})
	sort.Strings(names)
	return names
}

// SnapshotAll copies every histogram in the set, keyed by name.
func (s *HistogramSet) SnapshotAll() map[string]HistSnapshot {
	if s == nil {
		return nil
	}
	out := make(map[string]HistSnapshot)
	s.m.Range(func(k, v any) bool {
		out[k.(string)] = v.(*Histogram).Snapshot()
		return true
	})
	return out
}
