// Package checker verifies consistency over recorded operation histories:
// an offline oracle for the guarantees the secure store promises. Tests
// and soak harnesses record every write (with its stamp and, under CC,
// its writer context) and every read (client, item, stamp returned), then
// ask the checker for violations of:
//
//   - integrity: every read returned the stamp of some recorded write
//     whose value digest matches — nothing fabricated;
//   - MRC: per client and item, returned stamps never decrease
//     (Section 4.2's monotonic-read consistency);
//   - CC: if a client read a write w of item x, then any of the client's
//     subsequent reads of an item y listed in w's writer context returns a
//     stamp at least as new as the context entry (the causal-floor rule
//     that "no read operation returns a causally overwritten value");
//   - RYW (read-your-writes): a client's read of an item it previously
//     wrote returns a stamp at least as new as its own last acknowledged
//     write — the session guarantee implied by the client updating its
//     context with every completed write.
//
// Failed writes can be recorded too (RecordFailedWrite): a write that
// missed its quorum may still have landed on some servers, so a later
// read returning its stamp is legitimate — the integrity and CC checks
// index such writes, but they raise no RYW floor (the client holds no
// acknowledgement).
//
// The checker is deliberately independent of the protocol code: it sees
// only the observable history, so a protocol bug cannot hide inside it.
package checker

import (
	"fmt"
	"sync"

	"securestore/internal/cryptoutil"
	"securestore/internal/sessionctx"
	"securestore/internal/timestamp"
)

// WriteEvent records one completed write.
type WriteEvent struct {
	Client string
	Item   string
	Stamp  timestamp.Stamp
	// Digest identifies the value written (so integrity can match values
	// without retaining them).
	Digest [32]byte
	// Ctx is the writer's context embedded in the write (CC only).
	Ctx sessionctx.Vector
	// Acked reports whether the write completed (reached its quorum).
	// Unacknowledged writes participate in integrity and CC checking —
	// they may surface in reads — but raise no read-your-writes floor.
	Acked bool
}

// ReadEvent records one completed read.
type ReadEvent struct {
	Client string
	Item   string
	Stamp  timestamp.Stamp
	Digest [32]byte
}

// Violation is one detected consistency breach.
type Violation struct {
	Kind   string // "integrity", "mrc", "cc", "ryw"
	Client string
	Item   string
	Detail string
}

// String renders the violation for test output.
func (v Violation) String() string {
	return fmt.Sprintf("%s violation: client %s item %s: %s", v.Kind, v.Client, v.Item, v.Detail)
}

// History accumulates events. Safe for concurrent recording; Check must
// be called after recording is quiescent.
type History struct {
	mu     sync.Mutex
	writes []WriteEvent
	// reads kept per client in arrival order (each client's session is
	// sequential, so per-client order is well defined even when clients
	// record concurrently).
	reads map[string][]ReadEvent
	// ops interleaves each client's acknowledged writes and reads in
	// session order, which the read-your-writes check needs (the global
	// writes slice does not order a client's writes against its reads).
	ops map[string][]opEvent
}

// opEvent is one entry of a client's sequential session history.
type opEvent struct {
	read  bool
	item  string
	stamp timestamp.Stamp
}

// New creates an empty history.
func New() *History {
	return &History{reads: make(map[string][]ReadEvent), ops: make(map[string][]opEvent)}
}

// RecordWrite logs a completed (quorum-acknowledged) write.
func (h *History) RecordWrite(client, item string, stamp timestamp.Stamp, value []byte, ctx sessionctx.Vector) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.writes = append(h.writes, WriteEvent{
		Client: client, Item: item, Stamp: stamp,
		Digest: cryptoutil.Digest(value), Ctx: ctx.Clone(), Acked: true,
	})
	h.ops[client] = append(h.ops[client], opEvent{item: item, stamp: stamp})
}

// RecordFailedWrite logs a write attempt that did not reach its quorum.
// The write may nevertheless have landed on some servers, so recording it
// keeps the integrity check sound when a later read returns its stamp;
// it raises no read-your-writes floor.
func (h *History) RecordFailedWrite(client, item string, stamp timestamp.Stamp, value []byte, ctx sessionctx.Vector) {
	if stamp.Zero() {
		return // the attempt never produced a signed write
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.writes = append(h.writes, WriteEvent{
		Client: client, Item: item, Stamp: stamp,
		Digest: cryptoutil.Digest(value), Ctx: ctx.Clone(),
	})
}

// RecordRead logs a completed read.
func (h *History) RecordRead(client, item string, stamp timestamp.Stamp, value []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.reads[client] = append(h.reads[client], ReadEvent{
		Client: client, Item: item, Stamp: stamp, Digest: cryptoutil.Digest(value),
	})
	h.ops[client] = append(h.ops[client], opEvent{read: true, item: item, stamp: stamp})
}

// Stats returns (writes, reads) recorded.
func (h *History) Stats() (writes, reads int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, rs := range h.reads {
		reads += len(rs)
	}
	return len(h.writes), reads
}

// Check returns every violation in the recorded history.
func (h *History) Check() []Violation {
	h.mu.Lock()
	defer h.mu.Unlock()

	var out []Violation
	out = append(out, h.checkIntegrityLocked()...)
	out = append(out, h.checkMRCLocked()...)
	out = append(out, h.checkCCLocked()...)
	out = append(out, h.checkRYWLocked()...)
	return out
}

type writeKey struct {
	item  string
	stamp timestamp.Stamp
}

// writeIndexLocked maps (item, stamp) to the write event.
func (h *History) writeIndexLocked() map[writeKey]WriteEvent {
	idx := make(map[writeKey]WriteEvent, len(h.writes))
	for _, w := range h.writes {
		idx[writeKey{item: w.Item, stamp: w.Stamp}] = w
	}
	return idx
}

// checkIntegrityLocked: every read corresponds to a recorded write with a
// matching digest.
func (h *History) checkIntegrityLocked() []Violation {
	idx := h.writeIndexLocked()
	var out []Violation
	for client, reads := range h.reads {
		for _, r := range reads {
			w, ok := idx[writeKey{item: r.Item, stamp: r.Stamp}]
			if !ok {
				out = append(out, Violation{
					Kind: "integrity", Client: client, Item: r.Item,
					Detail: fmt.Sprintf("read stamp %s matches no recorded write", r.Stamp),
				})
				continue
			}
			if w.Digest != r.Digest {
				out = append(out, Violation{
					Kind: "integrity", Client: client, Item: r.Item,
					Detail: fmt.Sprintf("read value differs from the write at stamp %s", r.Stamp),
				})
			}
		}
	}
	return out
}

// checkMRCLocked: per client and item, read stamps never decrease.
func (h *History) checkMRCLocked() []Violation {
	var out []Violation
	for client, reads := range h.reads {
		last := make(map[string]timestamp.Stamp)
		for i, r := range reads {
			if prev, ok := last[r.Item]; ok && r.Stamp.Less(prev) {
				out = append(out, Violation{
					Kind: "mrc", Client: client, Item: r.Item,
					Detail: fmt.Sprintf("read %d returned %s after %s", i, r.Stamp, prev),
				})
			}
			last[r.Item] = r.Stamp
		}
	}
	return out
}

// checkRYWLocked: a client's read of an item returns a stamp at least as
// new as the client's own last acknowledged write to that item (the
// read-your-writes session guarantee). Only acknowledged writes raise the
// floor — a failed write gives the client no such expectation.
func (h *History) checkRYWLocked() []Violation {
	var out []Violation
	for client, ops := range h.ops {
		floor := make(map[string]timestamp.Stamp)
		for i, op := range ops {
			if !op.read {
				if cur, ok := floor[op.item]; !ok || cur.Less(op.stamp) {
					floor[op.item] = op.stamp
				}
				continue
			}
			if f, ok := floor[op.item]; ok && op.stamp.Less(f) {
				out = append(out, Violation{
					Kind: "ryw", Client: client, Item: op.item,
					Detail: fmt.Sprintf("op %d read %s below own-write floor %s", i, op.stamp, f),
				})
			}
		}
	}
	return out
}

// checkCCLocked: after a client reads a write carrying context entry
// (y, ts), its later reads of y return stamps >= ts.
func (h *History) checkCCLocked() []Violation {
	idx := h.writeIndexLocked()
	var out []Violation
	for client, reads := range h.reads {
		floor := make(map[string]timestamp.Stamp)
		for i, r := range reads {
			if f, ok := floor[r.Item]; ok && r.Stamp.Less(f) {
				out = append(out, Violation{
					Kind: "cc", Client: client, Item: r.Item,
					Detail: fmt.Sprintf("read %d returned %s below causal floor %s", i, r.Stamp, f),
				})
			}
			// Raise floors from the writer context of the write just read.
			if w, ok := idx[writeKey{item: r.Item, stamp: r.Stamp}]; ok {
				for item, ts := range w.Ctx {
					if cur, ok := floor[item]; !ok || cur.Less(ts) {
						floor[item] = ts
					}
				}
			}
			if cur, ok := floor[r.Item]; !ok || cur.Less(r.Stamp) {
				floor[r.Item] = r.Stamp
			}
		}
	}
	return out
}
