package checker

import (
	"strings"
	"sync"
	"testing"

	"securestore/internal/sessionctx"
	"securestore/internal/timestamp"
)

func st(t uint64) timestamp.Stamp { return timestamp.Stamp{Time: t} }

func TestCleanHistoryPasses(t *testing.T) {
	h := New()
	h.RecordWrite("w", "x", st(1), []byte("v1"), nil)
	h.RecordWrite("w", "x", st(2), []byte("v2"), nil)
	h.RecordRead("r", "x", st(1), []byte("v1"))
	h.RecordRead("r", "x", st(2), []byte("v2"))
	h.RecordRead("r", "x", st(2), []byte("v2"))

	if v := h.Check(); len(v) != 0 {
		t.Fatalf("violations in clean history: %v", v)
	}
	writes, reads := h.Stats()
	if writes != 2 || reads != 3 {
		t.Fatalf("stats = %d/%d", writes, reads)
	}
}

func TestDetectsFabricatedRead(t *testing.T) {
	h := New()
	h.RecordWrite("w", "x", st(1), []byte("v1"), nil)
	// Read of a stamp nobody wrote.
	h.RecordRead("r", "x", st(9), []byte("forged"))
	v := h.Check()
	if len(v) != 1 || v[0].Kind != "integrity" {
		t.Fatalf("violations = %v", v)
	}
	if !strings.Contains(v[0].String(), "integrity") {
		t.Fatalf("string = %q", v[0].String())
	}
}

func TestDetectsValueSubstitution(t *testing.T) {
	h := New()
	h.RecordWrite("w", "x", st(1), []byte("genuine"), nil)
	// Correct stamp, wrong value.
	h.RecordRead("r", "x", st(1), []byte("swapped"))
	v := h.Check()
	if len(v) != 1 || v[0].Kind != "integrity" {
		t.Fatalf("violations = %v", v)
	}
}

func TestDetectsMRCViolation(t *testing.T) {
	h := New()
	h.RecordWrite("w", "x", st(1), []byte("v1"), nil)
	h.RecordWrite("w", "x", st(2), []byte("v2"), nil)
	h.RecordRead("r", "x", st(2), []byte("v2"))
	h.RecordRead("r", "x", st(1), []byte("v1")) // backwards!
	var kinds []string
	for _, v := range h.Check() {
		kinds = append(kinds, v.Kind)
	}
	joined := strings.Join(kinds, ",")
	if !strings.Contains(joined, "mrc") {
		t.Fatalf("violations = %v", kinds)
	}
}

func TestMRCIsPerClient(t *testing.T) {
	// Different clients may legitimately see different versions.
	h := New()
	h.RecordWrite("w", "x", st(1), []byte("v1"), nil)
	h.RecordWrite("w", "x", st(2), []byte("v2"), nil)
	h.RecordRead("r1", "x", st(2), []byte("v2"))
	h.RecordRead("r2", "x", st(1), []byte("v1")) // a different client: fine
	if v := h.Check(); len(v) != 0 {
		t.Fatalf("cross-client staleness flagged: %v", v)
	}
}

func TestDetectsCausalViolation(t *testing.T) {
	h := New()
	// dep@1, then doc@2 carrying a context naming dep@1.
	h.RecordWrite("w", "dep", st(1), []byte("d1"), nil)
	h.RecordWrite("w", "dep", st(5), []byte("d5"), nil)
	h.RecordWrite("w", "doc", st(2), []byte("doc"), sessionctx.Vector{"dep": st(5)})
	// Reader sees doc (deps: dep@5) then an older dep@1: CC violation.
	h.RecordRead("r", "doc", st(2), []byte("doc"))
	h.RecordRead("r", "dep", st(1), []byte("d1"))
	var found bool
	for _, v := range h.Check() {
		if v.Kind == "cc" && v.Item == "dep" {
			found = true
		}
	}
	if !found {
		t.Fatalf("causal violation not detected: %v", h.Check())
	}
}

func TestCausalFloorSatisfied(t *testing.T) {
	h := New()
	h.RecordWrite("w", "dep", st(5), []byte("d5"), nil)
	h.RecordWrite("w", "doc", st(2), []byte("doc"), sessionctx.Vector{"dep": st(5)})
	h.RecordRead("r", "doc", st(2), []byte("doc"))
	h.RecordRead("r", "dep", st(5), []byte("d5")) // exactly the floor: fine
	if v := h.Check(); len(v) != 0 {
		t.Fatalf("violations = %v", v)
	}
}

func TestMultiWriterStampsDistinct(t *testing.T) {
	// Two writers with the same time but different uids are distinct
	// writes, both readable without violations in either order by
	// different clients.
	h := New()
	sa := timestamp.Stamp{Time: 1, Writer: "a"}
	sb := timestamp.Stamp{Time: 1, Writer: "b"}
	h.RecordWrite("a", "x", sa, []byte("from-a"), nil)
	h.RecordWrite("b", "x", sb, []byte("from-b"), nil)
	h.RecordRead("r1", "x", sa, []byte("from-a"))
	h.RecordRead("r1", "x", sb, []byte("from-b")) // sb > sa (writer tiebreak)
	if v := h.Check(); len(v) != 0 {
		t.Fatalf("violations = %v", v)
	}
	// The reverse order within one client is an MRC violation.
	h2 := New()
	h2.RecordWrite("a", "x", sa, []byte("from-a"), nil)
	h2.RecordWrite("b", "x", sb, []byte("from-b"), nil)
	h2.RecordRead("r", "x", sb, []byte("from-b"))
	h2.RecordRead("r", "x", sa, []byte("from-a"))
	if v := h2.Check(); len(v) == 0 {
		t.Fatal("backwards multi-writer read not flagged")
	}
}

func TestConcurrentRecording(t *testing.T) {
	h := New()
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := string(rune('a' + c))
			for i := 1; i <= 50; i++ {
				h.RecordWrite(client, "x", timestamp.Stamp{Time: uint64(i), Writer: client}, []byte{byte(i)}, nil)
				h.RecordRead(client, "x", timestamp.Stamp{Time: uint64(i), Writer: client}, []byte{byte(i)})
			}
		}(c)
	}
	wg.Wait()
	writes, reads := h.Stats()
	if writes != 400 || reads != 400 {
		t.Fatalf("stats = %d/%d", writes, reads)
	}
	if v := h.Check(); len(v) != 0 {
		t.Fatalf("violations = %v", v)
	}
}

func TestDetectsRYWViolation(t *testing.T) {
	h := New()
	h.RecordWrite("w", "x", st(1), []byte("v1"), nil)
	h.RecordWrite("w", "x", st(5), []byte("v5"), nil)
	// The writer reads back something older than its own acked write.
	h.RecordRead("w", "x", st(1), []byte("v1"))
	v := h.Check()
	if len(v) != 1 || v[0].Kind != "ryw" {
		t.Fatalf("violations = %v, want one ryw", v)
	}
}

func TestRYWOnlyBindsTheWriter(t *testing.T) {
	h := New()
	h.RecordWrite("w", "x", st(1), []byte("v1"), nil)
	h.RecordWrite("w", "x", st(5), []byte("v5"), nil)
	// Another client reading the older write is fine (MRC permits it).
	h.RecordRead("r", "x", st(1), []byte("v1"))
	if v := h.Check(); len(v) != 0 {
		t.Fatalf("violations = %v", v)
	}
}

func TestFailedWriteRaisesNoRYWFloor(t *testing.T) {
	h := New()
	h.RecordWrite("w", "x", st(1), []byte("v1"), nil)
	// A quorum-failed attempt at stamp 5: the client holds no ack, so its
	// later read of stamp 1 is legitimate...
	h.RecordFailedWrite("w", "x", st(5), []byte("v5"), nil)
	h.RecordRead("w", "x", st(1), []byte("v1"))
	// ...and another client reading stamp 5 is not a fabrication — the
	// partial write may have landed on some servers.
	h.RecordRead("r", "x", st(5), []byte("v5"))
	if v := h.Check(); len(v) != 0 {
		t.Fatalf("violations = %v", v)
	}
}

func TestFailedWriteWithZeroStampIgnored(t *testing.T) {
	h := New()
	h.RecordFailedWrite("w", "x", timestamp.Stamp{}, []byte("v"), nil)
	if writes, _ := h.Stats(); writes != 0 {
		t.Fatalf("zero-stamp failed write recorded: %d writes", writes)
	}
}

func TestRYWFloorAlsoRaisedByReads(t *testing.T) {
	// The per-client op walk must treat an acked write as a floor even
	// when reads interleave: write(3), read(4) [someone else's], then a
	// read of 2 violates — it is below the writer's own write.
	h := New()
	h.RecordWrite("a", "x", st(2), []byte("v2"), nil)
	h.RecordWrite("a", "x", st(4), []byte("v4"), nil)
	h.RecordWrite("w", "x", st(3), []byte("v3"), nil)
	h.RecordRead("w", "x", st(4), []byte("v4"))
	h.RecordRead("w", "x", st(2), []byte("v2"))
	v := h.Check()
	// The read of stamp 2 is below w's own write (3): ryw. It is also an
	// MRC regression (4 then 2).
	kinds := map[string]int{}
	for _, violation := range v {
		kinds[violation.Kind]++
	}
	if kinds["ryw"] != 1 || kinds["mrc"] != 1 {
		t.Fatalf("violations = %v, want one ryw and one mrc", v)
	}
}
