package core

import (
	"bytes"
	"context"
	"testing"

	"securestore/internal/wire"
)

// TestPartitionMajoritySideOperates verifies availability during a
// network partition: a client that can reach n-b servers completes every
// operation, and after healing, dissemination brings the minority back up
// to date.
func TestPartitionMajoritySideOperates(t *testing.T) {
	cluster := newTestCluster(t, 7, 2)
	group := GroupSpec{Name: "g", Consistency: wire.MRC}
	cluster.RegisterGroup(group)

	alice, err := cluster.NewClient(fastSpec("alice", "g"), group)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	mustConnect(t, alice)
	if _, err := alice.Write(ctx, "x", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	cluster.Converge()

	// Cut off two servers (within b); alice stays with the majority.
	cluster.Net.Partition(1, "s00", "s01")
	cluster.Net.Partition(2, "alice", "s02", "s03", "s04", "s05", "s06")

	if _, err := alice.Write(ctx, "x", []byte("v2")); err != nil {
		t.Fatalf("write during partition: %v", err)
	}
	got, _, err := alice.Read(ctx, "x")
	if err != nil {
		t.Fatalf("read during partition: %v", err)
	}
	if !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("read = %q during partition", got)
	}
	if err := alice.Disconnect(ctx); err != nil {
		t.Fatalf("disconnect during partition: %v", err)
	}
	mustConnect(t, alice)
	if alice.ContextSeq() != 1 {
		t.Fatalf("context seq = %d after partitioned session", alice.ContextSeq())
	}

	// Heal: gossip repairs the minority.
	cluster.Net.Heal()
	cluster.Converge()
	for _, name := range []string{"s00", "s01"} {
		for _, srv := range cluster.Servers {
			if srv.ID() != name {
				continue
			}
			head := srv.Head("g", "x")
			if head == nil || !bytes.Equal(head.Value, []byte("v2")) {
				t.Fatalf("server %s not repaired after heal: %v", name, head)
			}
		}
	}
}

// TestPartitionMinoritySideFailsSafe verifies the other direction: a
// client stranded with fewer than the quorum cannot connect (or write),
// but fails cleanly rather than diverging.
func TestPartitionMinoritySideFailsSafe(t *testing.T) {
	cluster := newTestCluster(t, 4, 1)
	group := GroupSpec{Name: "g", Consistency: wire.MRC}
	cluster.RegisterGroup(group)

	bob, err := cluster.NewClient(fastSpec("bob", "g"), group)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	mustConnect(t, bob)
	if _, err := bob.Write(ctx, "x", []byte("v1")); err != nil {
		t.Fatal(err)
	}

	// Strand bob with a single server: context quorum is 3, write set 2.
	cluster.Net.Partition(1, "bob", "s00")
	cluster.Net.Partition(2, "s01", "s02", "s03")

	if _, err := bob.Write(ctx, "y", []byte("v")); err == nil {
		t.Fatal("write succeeded from minority partition (needs b+1 = 2 servers)")
	}
	if err := bob.Disconnect(ctx); err == nil {
		t.Fatal("disconnect succeeded from minority partition (needs quorum 3)")
	}

	// After healing everything works again.
	cluster.Net.Heal()
	if _, err := bob.Write(ctx, "y", []byte("v")); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
	if err := bob.Disconnect(ctx); err != nil {
		t.Fatalf("disconnect after heal: %v", err)
	}
}
