package core_test

import (
	"context"
	"fmt"
	"log"

	"securestore/internal/core"
	"securestore/internal/server"
	"securestore/internal/wire"
)

// Example walks the full session lifecycle: assemble a cluster, declare a
// group, connect, write, read under a Byzantine fault, and disconnect.
func Example() {
	ctx := context.Background()
	cluster, err := core.NewCluster(core.ClusterConfig{N: 4, B: 1, Seed: "example"})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	group := core.GroupSpec{Name: "notes", Consistency: wire.MRC}
	cluster.RegisterGroup(group)

	alice, err := cluster.NewClient(core.ClientSpec{ID: "alice", Group: "notes"}, group)
	if err != nil {
		log.Fatal(err)
	}
	if err := alice.Connect(ctx); err != nil {
		log.Fatal(err)
	}
	if _, err := alice.Write(ctx, "todo", []byte("water the plants")); err != nil {
		log.Fatal(err)
	}

	// One replica turns Byzantine; the read still returns the real value.
	cluster.InjectFaults(server.CorruptValue, 1)
	value, _, err := alice.Read(ctx, "todo")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read: %s\n", value)

	if err := alice.Disconnect(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("session context stored at a quorum")
	// Output:
	// read: water the plants
	// session context stored at a quorum
}

// ExampleCluster_NewFragStore shows keyless confidentiality through
// information dispersal.
func ExampleCluster_NewFragStore() {
	ctx := context.Background()
	cluster, err := core.NewCluster(core.ClusterConfig{N: 5, B: 1, Seed: "example"})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	group := core.GroupSpec{Name: "vault", Consistency: wire.MRC}
	cluster.RegisterGroup(group)
	vault, err := cluster.NewFragStore(core.ClientSpec{ID: "owner", Group: "vault"}, group, 0)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := vault.Write(ctx, "secret", []byte("dispersed, not encrypted")); err != nil {
		log.Fatal(err)
	}
	value, _, err := vault.Read(ctx, "secret")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconstructed from %d fragments: %s\n", vault.K(), value)
	// Output:
	// reconstructed from 2 fragments: dispersed, not encrypted
}
