package core

import (
	"context"
	"fmt"
	"testing"

	"securestore/internal/wire"
)

// TestGossipConvergenceHitsVerifyCache checks the verified-signature cache
// earns its keep on the dissemination path: a signed write is verified by
// the b+1 write-set servers at write time, and when gossip re-delivers the
// same signed message to the remaining servers, those verifications are
// cache hits instead of fresh Ed25519 operations (the cluster's servers
// share one keyring, hence one cache).
func TestGossipConvergenceHitsVerifyCache(t *testing.T) {
	cluster := newTestCluster(t, 4, 1)
	group := GroupSpec{Name: "g", Consistency: wire.MRC}
	cluster.RegisterGroup(group)
	ctx := context.Background()

	alice, err := cluster.NewClient(fastSpec("alice", "g"), group)
	if err != nil {
		t.Fatal(err)
	}
	mustConnect(t, alice)
	for i := 0; i < 5; i++ {
		if _, err := alice.Write(ctx, fmt.Sprintf("item%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Hits already occur at write time (the signed writer context reaches a
	// quorum of servers, all sharing the keyring); the claim under test is
	// that gossip re-delivery adds hits rather than fresh verifications.
	before := cluster.ServerMetrics.VerifyCacheHits()
	verifsBefore := cluster.ServerMetrics.Verifications()

	cluster.Converge()
	for _, srv := range cluster.Servers {
		if srv.Head("g", "item0") == nil {
			t.Fatalf("server %s missing item0 after Converge", srv.ID())
		}
	}
	if hits := cluster.ServerMetrics.VerifyCacheHits(); hits <= before {
		t.Fatalf("gossip convergence produced no verify-cache hits (before=%d after=%d); re-delivered signed writes are being re-verified", before, hits)
	}
	if verifs := cluster.ServerMetrics.Verifications(); verifs != verifsBefore {
		t.Fatalf("gossip convergence cost %d fresh Ed25519 verifications; every re-delivered message should hit the cache", verifs-verifsBefore)
	}
}

// TestVerifyCacheDisabledNeverHits pins the opt-out: with the cache
// disabled every delivery costs a real verification and the hit counter
// stays zero, so benchmarks measuring inherent crypto cost stay honest.
func TestVerifyCacheDisabledNeverHits(t *testing.T) {
	cluster, err := NewCluster(ClusterConfig{N: 4, B: 1, Seed: t.Name(), DisableVerifyCache: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	group := GroupSpec{Name: "g", Consistency: wire.MRC}
	cluster.RegisterGroup(group)
	ctx := context.Background()

	alice, err := cluster.NewClient(fastSpec("alice", "g"), group)
	if err != nil {
		t.Fatal(err)
	}
	mustConnect(t, alice)
	if _, err := alice.Write(ctx, "x", []byte("v")); err != nil {
		t.Fatal(err)
	}
	cluster.Converge()
	if hits := cluster.ServerMetrics.VerifyCacheHits(); hits != 0 {
		t.Fatalf("cache disabled but %d hits recorded", hits)
	}
	if misses := cluster.ServerMetrics.VerifyCacheMisses(); misses != 0 {
		t.Fatalf("cache disabled but %d misses recorded", misses)
	}
}
