package core

import (
	"context"
	"fmt"
	"testing"

	"securestore/internal/checker"
	"securestore/internal/cryptoutil"
	"securestore/internal/gossip"
	"securestore/internal/timestamp"
	"securestore/internal/wire"
)

// TestCrashDuringGossipRecoversFromWAL kills a replica between gossip
// rounds, keeps writing, restarts it from its write-ahead log and lets
// pull anti-entropy close the gap — then checks the full history for
// consistency violations.
func TestCrashDuringGossipRecoversFromWAL(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		N: 4, B: 1,
		DataDir:    t.TempDir(),
		GossipMode: gossip.Pull,
		Principals: []string{"w"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	group := GroupSpec{Name: "g", Consistency: wire.MRC}
	c.RegisterGroup(group)
	cl, err := c.NewClient(ClientSpec{ID: "w", Group: "g"}, group)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Connect(context.Background()); err != nil {
		t.Fatal(err)
	}

	hist := checker.New()
	ctx := context.Background()
	write := func(item, val string) {
		t.Helper()
		stamp, err := cl.Write(ctx, item, []byte(val))
		if err != nil {
			t.Fatalf("write %s: %v", item, err)
		}
		hist.RecordWrite("w", item, stamp, []byte(val), cl.Context())
	}

	// Phase 1: writes disseminate; victim participates in gossip.
	write("a", "a1")
	write("b", "b1")
	c.Converge()

	// The victim crashes mid-gossip; the cluster keeps accepting writes.
	victim := 3
	c.CrashServer(victim)
	write("a", "a2")
	write("c", "c1")
	c.Converge() // victim unreachable; the others converge around it

	// Restart from the WAL: pre-crash state must survive, and pull
	// anti-entropy must fetch what the victim missed.
	if err := c.RestartServer(victim); err != nil {
		t.Fatal(err)
	}
	c.Converge()

	for _, item := range []string{"a", "b", "c"} {
		want := c.Servers[0].Head("g", item)
		got := c.Servers[victim].Head("g", item)
		if want == nil || got == nil || got.Stamp != want.Stamp {
			t.Fatalf("item %s: restarted replica head %v, cluster head %v", item, got, want)
		}
	}

	for _, item := range []string{"a", "b", "c"} {
		val, stamp, err := cl.Read(ctx, item)
		if err != nil {
			t.Fatalf("read %s: %v", item, err)
		}
		hist.RecordRead("w", item, stamp, val)
	}
	for _, v := range hist.Check() {
		t.Errorf("violation: %s", v)
	}
}

// TestRestartedReplicaResyncsRenumberedLog forces the sequence-regression
// case the pull epoch exists for: a replica accumulates a long update log,
// its peers pull all of it, then it crashes and recovers from a compacted
// WAL — renumbering its log far below the peers' high-water marks. A
// write that lands only on the restarted replica must still disseminate:
// without the epoch reset the peers would pull past it forever.
func TestRestartedReplicaResyncsRenumberedLog(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		N: 4, B: 1,
		DataDir:     t.TempDir(),
		GossipMode:  gossip.Pull,
		DisableAuth: true,
		Principals:  []string{"w"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	group := GroupSpec{Name: "g", Consistency: wire.MRC}
	c.RegisterGroup(group)

	// 70 overwrites of one item through s00: enough records for its WAL to
	// compact (the log keeps one live head), so recovery renumbers its
	// update log from ~70 down to a handful.
	key := cryptoutil.DeterministicKeyPair("w", "seed")
	c.Ring.MustRegister("w", key.Public)
	put := func(srv int, ts uint64, val string) {
		t.Helper()
		w := &wire.SignedWrite{Group: "g", Item: "x", Stamp: timestamp.Stamp{Time: ts}, Value: []byte(val)}
		w.Sign(key, nil)
		if _, err := c.Servers[srv].ServeRequest(context.Background(), "w", wire.WriteReq{Write: w}); err != nil {
			t.Fatalf("direct write to %s: %v", c.Servers[srv].ID(), err)
		}
	}
	for i := 1; i <= 70; i++ {
		put(0, uint64(i), fmt.Sprintf("v%d", i))
	}
	c.Converge() // every peer's pull mark on s00 is now ~70

	c.CrashServer(0)
	if err := c.RestartServer(0); err != nil {
		t.Fatal(err)
	}

	// A fresh write lands only on the restarted replica, whose renumbered
	// log assigns it a sequence number far below the peers' old marks.
	put(0, 1000, "post-restart")
	c.Converge()
	for i, srv := range c.Servers {
		head := srv.Head("g", "x")
		if head == nil || head.Stamp.Time != 1000 {
			t.Fatalf("server %d head %v: peers skipped the restarted replica's renumbered updates", i, head)
		}
	}
}
