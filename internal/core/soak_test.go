package core

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"securestore/internal/client"
	"securestore/internal/server"
	"securestore/internal/wire"
)

// TestRandomizedFaultSoakMRC drives a writer and readers through random
// interleavings of writes, reads, gossip and fault injection (never more
// than b faulty at once), asserting the safety invariants that
// client-enforced consistency promises:
//
//   - integrity: every read returns a value the writer actually wrote;
//   - monotonicity: per reader, returned versions never go backwards.
//
// Availability may dip transiently (reads can fail while dissemination
// lags); safety must never.
func TestRandomizedFaultSoakMRC(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			runSoakMRC(t, seed)
		})
	}
}

func runSoakMRC(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	n, b := 4+rng.Intn(4), 1 // n in [4,7]
	if n >= 7 && rng.Intn(2) == 0 {
		b = 2
	}
	cluster, err := NewCluster(ClusterConfig{N: n, B: b, Seed: fmt.Sprintf("soak-%d", seed)})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	group := GroupSpec{Name: "g", Consistency: wire.MRC}
	cluster.RegisterGroup(group)

	ctx := context.Background()
	writer, err := cluster.NewClient(fastSpec("writer", "g"), group)
	if err != nil {
		t.Fatal(err)
	}
	mustConnect(t, writer)
	readers := make([]*readerState, 2)
	for i := range readers {
		cl, err := cluster.NewClient(fastSpec(fmt.Sprintf("reader%d", i), "g"), group)
		if err != nil {
			t.Fatal(err)
		}
		mustConnect(t, cl)
		readers[i] = &readerState{cl: cl, lastSeen: -1}
	}

	faultModes := []server.FaultMode{
		server.Crash, server.Stale, server.CorruptValue, server.CorruptMeta, server.Equivocate,
	}
	written := 0
	faulty := 0
	for round := 0; round < 60; round++ {
		switch rng.Intn(10) {
		case 0, 1, 2: // write
			written++
			if _, err := writer.Write(ctx, "x", []byte(fmt.Sprintf("%06d", written))); err != nil {
				// A write may fail only if reachable healthy servers are
				// scarce; with faults <= b it must succeed.
				t.Fatalf("round %d: write failed within fault bound: %v", round, err)
			}
		case 3, 4, 5, 6: // read from a random reader
			r := readers[rng.Intn(len(readers))]
			r.read(t, ctx, round)
		case 7: // disseminate
			cluster.Converge()
		case 8: // inject a fault if budget remains
			if faulty < b {
				idx := rng.Intn(n)
				if cluster.Servers[idx].Fault() == server.Healthy {
					cluster.Servers[idx].SetFault(faultModes[rng.Intn(len(faultModes))])
					faulty++
				}
			}
		case 9: // heal everyone
			cluster.HealAll()
			faulty = 0
		}
	}

	// Final sanity: heal, converge, and every reader catches up to the
	// newest write (eventual delivery).
	cluster.HealAll()
	cluster.Converge()
	if written > 0 {
		for i, r := range readers {
			got, _, err := r.cl.Read(ctx, "x")
			if err != nil {
				t.Fatalf("final read reader%d: %v", i, err)
			}
			trimmed := strings.TrimLeft(string(got), "0")
			if trimmed == "" {
				trimmed = "0"
			}
			seen, err := strconv.Atoi(trimmed)
			if err != nil {
				t.Fatalf("final read reader%d returned junk %q", i, got)
			}
			if seen != written {
				t.Fatalf("final read reader%d = %d, want latest %d", i, seen, written)
			}
		}
	}
}

type readerState struct {
	cl       *client.Client
	lastSeen int
}

// read performs one read and checks the safety invariants. A read error
// (stale or unreachable quorum) is acceptable mid-churn; a successful read
// must be well-formed and monotone.
func (r *readerState) read(t *testing.T, ctx context.Context, round int) {
	t.Helper()
	got, _, err := r.cl.Read(ctx, "x")
	if err != nil {
		return // transient unavailability is allowed; safety is not optional
	}
	trimmed := strings.TrimLeft(string(got), "0")
	if trimmed == "" {
		trimmed = "0"
	}
	seen, perr := strconv.Atoi(trimmed)
	if perr != nil {
		t.Fatalf("round %d: read returned junk %q (integrity violation)", round, got)
	}
	if seen < r.lastSeen {
		t.Fatalf("round %d: read went backwards: %d after %d (MRC violation)", round, seen, r.lastSeen)
	}
	r.lastSeen = seen
}

// TestRandomizedCausalSoak checks the CC invariant under churn: the writer
// always writes dep first, then doc embedding dep's current version; any
// reader that reads doc and then dep must see a dep at least as new as the
// embedded version.
func TestRandomizedCausalSoak(t *testing.T) {
	for _, mw := range []bool{false, true} {
		mw := mw
		name := "single-writer"
		if mw {
			name = "multi-writer"
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			runSoakCC(t, 7, mw)
		})
	}
}

func runSoakCC(t *testing.T, seed int64, multiWriter bool) {
	rng := rand.New(rand.NewSource(seed))
	cluster, err := NewCluster(ClusterConfig{N: 4, B: 1, Seed: fmt.Sprintf("ccsoak-%d-%v", seed, multiWriter)})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	group := GroupSpec{Name: "g", Consistency: wire.CC, MultiWriter: multiWriter}
	cluster.RegisterGroup(group)

	ctx := context.Background()
	writer, err := cluster.NewClient(fastSpec("writer", "g"), group)
	if err != nil {
		t.Fatal(err)
	}
	mustConnect(t, writer)
	reader, err := cluster.NewClient(fastSpec("reader", "g"), group)
	if err != nil {
		t.Fatal(err)
	}
	mustConnect(t, reader)

	parse := func(raw []byte) int {
		v, err := strconv.Atoi(strings.TrimPrefix(string(raw), "dep="))
		if err != nil {
			t.Fatalf("junk value %q", raw)
		}
		return v
	}

	version := 0
	for round := 0; round < 40; round++ {
		switch rng.Intn(6) {
		case 0, 1: // causal pair: dep then doc embedding dep's version
			version++
			if _, err := writer.Write(ctx, "dep", []byte(fmt.Sprintf("dep=%d", version))); err != nil {
				t.Fatalf("round %d write dep: %v", round, err)
			}
			if _, err := writer.Write(ctx, "doc", []byte(fmt.Sprintf("dep=%d", version))); err != nil {
				t.Fatalf("round %d write doc: %v", round, err)
			}
		case 2, 3, 4: // causal read pair
			doc, _, err := reader.Read(ctx, "doc")
			if err != nil {
				continue
			}
			embedded := parse(doc)
			dep, _, err := reader.Read(ctx, "dep")
			if err != nil {
				// Must not happen once doc was readable: the causal floor
				// says dep's write exists at >= b+1 honest servers only
				// after gating; but under MRC-less dissemination lag a
				// single-writer CC read CAN be transiently stale. Retry via
				// converge once — if it still fails, that is a violation of
				// the CC read availability argument.
				cluster.Converge()
				dep, _, err = reader.Read(ctx, "dep")
				if err != nil {
					t.Fatalf("round %d: doc readable but dep unreadable: %v", round, err)
				}
			}
			if got := parse(dep); got < embedded {
				t.Fatalf("round %d: causality violated: doc says dep=%d, read dep=%d", round, embedded, got)
			}
		case 5: // disseminate
			cluster.Converge()
		}
	}
}
